module wsstudy

go 1.24
