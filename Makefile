GO ?= go
BENCH_OUT ?= BENCH_PR10.json

.PHONY: check build vet fmt-check equivalence serve-smoke sweep-smoke chaos-smoke sample-smoke load-smoke test race fuzz bench bench-smoke

# Tier-1 gate: everything must build, `go vet ./...` clean, be
# gofmt-formatted, pass under -race, the batched pipeline must remain
# bit-identical to the legacy per-Ref path (short-mode equivalence run),
# the v1 HTTP server must boot, answer /v1/experiments with valid
# JSON, and drain (serve-smoke), a parameter-lattice sweep must run
# end to end over HTTP including its grain advice (sweep-smoke), the
# seeded chaos schedules must hold their invariants with every
# failpoint test-covered (chaos-smoke), one full-scale sampled kernel
# profile must land inside the smoke wall-clock budget (sample-smoke),
# a 2-node peer cluster must hold the load contract under a short
# measured wsload run (load-smoke), and every benchmark must still run
# for one iteration (bench-smoke).
check: build vet fmt-check race equivalence serve-smoke sweep-smoke chaos-smoke sample-smoke load-smoke bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Block/fan-out delivery must produce the same statistics — and, with a
# Recorder attached, the same per-stage metric counters — as per-Ref
# delivery for every kernel (see internal/core/equivalence_test.go).
# The sharded fanout is held to Tee on every kernel (including under
# GOMAXPROCS=1), the parallel cache bank to the serial Bank, and the
# region-sharded machine engine to the serial memory system (bit-identical
# statistics and run-to-run determinism, including under GOMAXPROCS=1).
equivalence:
	$(GO) test -short -run 'TestBlockEquivalence|TestFanoutMatchesTee|TestMetricsEquivalence|TestParallelBankMatchesSerialKernels|TestShardedMachineMatchesSerial|TestShardedDeterminism|TestSamplingEquivalenceRateOne' ./internal/core/

# Boot the real serving path (store + v1 API exactly as `wsstudy serve`
# wires it), GET /v1/experiments and a report, assert 200 + valid JSON,
# then drain gracefully.
serve-smoke:
	$(GO) test -race -count 1 -run TestServeSmoke ./cmd/wsstudy/

# Boot the same serving path, POST a 2x2 gridlu lattice to /v1/sweeps,
# poll the status resource to Done, and read the §8 grain advice — the
# sweep surface end to end over HTTP.
sweep-smoke:
	$(GO) test -race -count 1 -run TestSweepSmoke ./cmd/wsstudy/

# Seeded chaos schedules under -race (termination, no faulted result
# cached, post-disarm recovery to the byte-exact fault-free baseline),
# the SIGKILL crash-resume drills (suite journal and sweep lattice),
# and the failpoint lint (every registered failpoint referenced by at
# least one test).
chaos-smoke:
	$(GO) test -race -count 1 -run 'TestChaos|TestEveryFailpointExercised' .
	$(GO) test -race -count 1 -run 'TestCrashResumeSIGKILL|TestSuiteResumesFromJournal' ./internal/core/
	$(GO) test -race -count 1 -run TestSweepCrashResumeSIGKILL ./internal/sweep/

# The paper-scale promise of the sampling axis: a full-scale Figure 6
# profile at opt.sample=16 must complete inside the smoke budget (it
# runs in seconds; the 120s ceiling only catches a sampling path that
# silently fell back to exact-scale cost).
sample-smoke:
	timeout 120 $(GO) run ./cmd/wsstudy fig6 -opt sample=16 > /dev/null

# Boot a 2-node consistent-hash cluster in-process and hold it to the
# load contract: a short warmed wsload run must sustain a nonzero
# cached rate with zero wrong responses (each key computed exactly once
# cluster-wide, the second copy arriving by peer-fill), and an uncached
# overload storm must shed cleanly with 429 + Retry-After.
load-smoke:
	$(GO) test -race -count 1 -run 'TestLoadSmoke|TestLoadOverloadSheds' ./cmd/wsload/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Longer-running decoder fuzz (30s), as used in CI's extended job.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/trace/

# Delivery, sweep-engine, and serving-tier benchmarks (ring lookup,
# warm peer-fill, wsload cached-RPS and overload shedding); results are
# archived in $(BENCH_OUT) for comparison against the numbers quoted in
# DESIGN.md (BENCH_PR2.json holds the pre-sharding baseline). Three counted runs
# per benchmark so the archived file shows the spread — shared hosts
# swing several percent run to run; compare medians, not single samples.
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkRefDelivery|BenchmarkFanout|BenchmarkFanoutScaling|BenchmarkSuiteTraceReuse|BenchmarkAblationLRUBank|BenchmarkDirectoryShardScaling|BenchmarkMemsysSharded|BenchmarkSampledProfiler|BenchmarkClusterRingOwner|BenchmarkClusterPeerFetch|BenchmarkWsloadCachedRPS|BenchmarkWsloadOverloadShed' \
		-benchmem -benchtime 10x -count 3 -json . ./internal/cluster/ > $(BENCH_OUT)
	@grep -o '"Output":"[^"]*ns/op[^"]*"' $(BENCH_OUT) | head -40

# One iteration of every benchmark: proves the benchmark set still
# compiles and runs end to end without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkRefDelivery|BenchmarkFanout|BenchmarkFanoutScaling|BenchmarkSuiteTraceReuse|BenchmarkAblationLRUBank|BenchmarkDirectoryShardScaling|BenchmarkMemsysSharded|BenchmarkSampledProfiler|BenchmarkClusterRingOwner|BenchmarkClusterPeerFetch|BenchmarkWsloadCachedRPS|BenchmarkWsloadOverloadShed' \
		-benchtime 1x -count 1 . ./internal/cluster/ > /dev/null
