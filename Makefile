GO ?= go

.PHONY: check build vet test race fuzz

# Tier-1 gate: everything must build, vet clean, and pass under -race.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Longer-running decoder fuzz (30s), as used in CI's extended job.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/trace/
