GO ?= go

.PHONY: check build vet fmt-check equivalence serve-smoke test race fuzz bench

# Tier-1 gate: everything must build, `go vet ./...` clean, be
# gofmt-formatted, pass under -race, the batched pipeline must remain
# bit-identical to the legacy per-Ref path (short-mode equivalence run),
# and the v1 HTTP server must boot, answer /v1/experiments with valid
# JSON, and drain (serve-smoke).
check: build vet fmt-check race equivalence serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Block/fan-out delivery must produce the same statistics — and, with a
# Recorder attached, the same per-stage metric counters — as per-Ref
# delivery for every kernel (see internal/core/equivalence_test.go).
equivalence:
	$(GO) test -short -run 'TestBlockEquivalence|TestFanoutMatchesTee|TestMetricsEquivalence' ./internal/core/

# Boot the real serving path (store + v1 API exactly as `wsstudy serve`
# wires it), GET /v1/experiments and a report, assert 200 + valid JSON,
# then drain gracefully.
serve-smoke:
	$(GO) test -race -count 1 -run TestServeSmoke ./cmd/wsstudy/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Longer-running decoder fuzz (30s), as used in CI's extended job.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/trace/

# Reference-delivery benchmarks for this refactor; results are archived in
# BENCH_PR2.json for comparison against the numbers quoted in DESIGN.md.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRefDelivery|BenchmarkFanout' \
		-benchmem -count 1 -json . > BENCH_PR2.json
	@grep -o '"Output":"[^"]*ns/op[^"]*"' BENCH_PR2.json | head -20
