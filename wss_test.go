package wss

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Fatalf("got %d experiments, want 20", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), "nonsense", Options{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunAndRenderTable2(t *testing.T) {
	var sb strings.Builder
	if err := RunAndRender(context.Background(), "table2", Options{Scale: ScaleQuick}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"LU", "Barnes-Hut", "Volume Rendering", "8 KB"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table2 render missing %q", frag)
		}
	}
}

func TestToolkitRoundTrip(t *testing.T) {
	// A user-level working-set measurement through the public API only:
	// stream a strided kernel into a profiler and find its knee.
	p, err := NewStackProfiler(8)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEmitter(0, consumerFunc(func(r Ref) {
		p.Access(r.Addr, r.Size, r.Kind == Read)
	}))
	// Repeatedly sweep 64 words: the working set is 512 bytes.
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < 64; i++ {
			e.LoadDW(uint64(i) * 8)
		}
	}
	sizes := LogSizes(64, 4096, 1)
	curve := ProfileCurve("sweep", p, sizes, float64(p.Reads()), true)
	knees := FindKnees(curve, 2, 0.01)
	if len(knees) != 1 {
		t.Fatalf("knees = %+v, want exactly 1", knees)
	}
	if knees[0].CacheBytes != 512 {
		t.Errorf("knee at %d bytes, want 512", knees[0].CacheBytes)
	}
	if FormatBytes(knees[0].CacheBytes) != "512 B" {
		t.Errorf("FormatBytes = %q", FormatBytes(knees[0].CacheBytes))
	}
}

// TestServingFacade drives the result store and v1 server end to end
// through the public API only: compute once, hit the cache, serve over
// HTTP with an ETag, shut down.
func TestServingFacade(t *testing.T) {
	st, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := findExperiment(t, "table2")
	opt := Options{Scale: ScaleQuick}
	res, err := st.Get(context.Background(), e, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != ResultKey("table2", opt) {
		t.Errorf("store key disagrees with ResultKey")
	}
	if len(res.JSON) == 0 || !strings.Contains(string(res.JSON), fmt.Sprintf(`"schema_version": %d`, ReportSchemaVersion)) {
		t.Errorf("result JSON missing schema_version:\n%.200s", res.JSON)
	}
	var sb strings.Builder
	if err := res.Report.Render(&sb, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if srv.Handler() == nil {
		t.Fatal("no handler")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(context.Background(), e, opt); err == nil {
		t.Error("closed store accepted a Get")
	}
}

func findExperiment(t *testing.T, id string) (Experiment, bool) {
	t.Helper()
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	t.Fatalf("experiment %q not registered", id)
	return Experiment{}, false
}

type consumerFunc func(Ref)

func (f consumerFunc) Ref(r Ref) { f(r) }

func TestSystemThroughFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{PEs: 2, LineSize: 8, Profile: true, ProfilePE: 0})
	if err != nil {
		t.Fatal(err)
	}
	sys.Ref(Ref{PE: 0, Addr: 0, Size: 8, Kind: Read})
	sys.Ref(Ref{PE: 1, Addr: 0, Size: 8, Kind: Write})
	sys.Ref(Ref{PE: 0, Addr: 0, Size: 8, Kind: Read})
	cohR, _ := sys.Profiler(0).CoherenceMisses()
	if cohR != 1 {
		t.Fatalf("coherence misses = %d, want 1", cohR)
	}
}

func TestMachineFacade(t *testing.T) {
	if Paragon(1024).NearestNeighborRatio() != 8 {
		t.Error("Paragon ratio wrong through facade")
	}
	if CM5(1024).Name == "" {
		t.Error("CM5 empty")
	}
}

func TestCacheFacades(t *testing.T) {
	l, err := NewLRU(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	l.Access(0, true)
	if !l.Contains(0) {
		t.Error("LRU facade broken")
	}
	d, err := NewDirectMapped(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Assoc() != 1 {
		t.Error("direct-mapped facade broken")
	}
	if _, err := NewLRU(0, 8); err == nil {
		t.Error("NewLRU(0, 8) should reject zero capacity")
	}
	if _, err := NewDirectMapped(4, 7); err == nil {
		t.Error("NewDirectMapped with non-power-of-two line should error")
	}
}
