package wss

// One benchmark per paper artifact (figure/table), plus ablation and
// kernel micro-benchmarks. Each figure/table benchmark regenerates its
// artifact end to end in quick mode; `go test -bench=. -benchmem` is the
// reproduction sweep, and `wsstudy all` prints the full-scale renderings.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/cache"
	"wsstudy/internal/capture"
	"wsstudy/internal/coherence"
	"wsstudy/internal/core"
	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(context.Background(), core.Options{Scale: core.ScaleQuick})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Figures) == 0 && len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Figures.

func BenchmarkFig2LU(b *testing.B)                { benchExperiment(b, "fig2") }
func BenchmarkFig4CG(b *testing.B)                { benchExperiment(b, "fig4") }
func BenchmarkFig5FFT(b *testing.B)               { benchExperiment(b, "fig5") }
func BenchmarkFig6BarnesHut(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7Volrend(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkBarnesHutDirectMapped(b *testing.B) { benchExperiment(b, "fig6dm") }

// Tables and analyses.

func BenchmarkTable1Growth(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2Summary(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkMachines(b *testing.B)       { benchExperiment(b, "machines") }
func BenchmarkGrainScenarios(b *testing.B) { benchExperiment(b, "grain") }
func BenchmarkScalingBH(b *testing.B)      { benchExperiment(b, "scalingbh") }
func BenchmarkCostModel(b *testing.B)      { benchExperiment(b, "cost") }
func BenchmarkAssocSweep(b *testing.B)     { benchExperiment(b, "assoc") }
func BenchmarkLineSizeStudy(b *testing.B)  { benchExperiment(b, "linesize") }
func BenchmarkScalingAll(b *testing.B)     { benchExperiment(b, "scalingall") }
func BenchmarkPhases(b *testing.B)         { benchExperiment(b, "phases") }
func BenchmarkBusTraffic(b *testing.B)     { benchExperiment(b, "bus") }

// Ablation: one stack-distance pass versus a bank of exact LRU caches at
// 16 sizes, over the same random trace. The profiler should win by an
// order of magnitude while producing identical counts (asserted in the
// cache package's tests).
func ablationTrace(n int) []uint64 {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, n)
	for i := range addrs {
		// Mixture of a hot set and a cold stream, like a real kernel.
		if rng.Intn(4) == 0 {
			addrs[i] = uint64(rng.Intn(1<<16) * 8)
		} else {
			addrs[i] = uint64(rng.Intn(512) * 8)
		}
	}
	return addrs
}

func ablationSizes() []int {
	sizes := make([]int, 0, 16)
	for s := 4; s <= 1<<17; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

func BenchmarkAblationStackProfiler(b *testing.B) {
	addrs := ablationTrace(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := cache.MustStackProfiler(8)
		for _, a := range addrs {
			p.Access(a, 8, true)
		}
		p.Curve(ablationSizes())
	}
	b.ReportMetric(float64(len(addrs)), "refs/op")
}

func BenchmarkAblationLRUBank(b *testing.B) {
	addrs := ablationTrace(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := cache.MustBank(ablationSizes(), 8)
		for _, a := range addrs {
			bank.Access(a, 8, true)
		}
		bank.Curve()
	}
	b.ReportMetric(float64(len(addrs)), "refs/op")
}

// BenchmarkAblationLRUBankParallel is the same sweep through the sharded
// ParallelBank (bit-identical counts, proven in the equivalence suite),
// at one shard and at NumCPU shards.
func BenchmarkAblationLRUBankParallel(b *testing.B) {
	addrs := ablationTrace(200_000)
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bank := cache.MustParallelBank(ablationSizes(), 8, w)
				for _, a := range addrs {
					bank.Access(a, 8, true)
				}
				bank.Curve()
				bank.Close()
			}
			b.ReportMetric(float64(len(addrs)), "refs/op")
		})
	}
}

// Reference-delivery benchmarks: the cost of moving the stream from the
// kernel to the simulator, isolated from both. The captured LU trace is
// recorded once and replayed through each delivery mechanism.

var luTraceCache struct {
	once sync.Once
	refs []trace.Ref
	err  error
}

// luTrace records one LU factorization's reference stream.
func luTrace(b *testing.B) []trace.Ref {
	b.Helper()
	luTraceCache.once.Do(func() {
		rec := &trace.Recorder{}
		m := lu.NewBlockMatrix(64, 8, nil)
		m.FillRandomDominant(1)
		_, luTraceCache.err = lu.FactorTraced(m, lu.Grid{PR: 2, PC: 2}, rec)
		luTraceCache.refs = rec.Refs
	})
	if luTraceCache.err != nil {
		b.Fatal(luTraceCache.err)
	}
	return luTraceCache.refs
}

// BenchmarkRefDelivery measures the delivery chain `wstrace analyze`
// runs — context guard → PEFilter → counting consumer — over the captured
// LU trace. perRef is the legacy pipeline: every reference crosses the
// chain as a cascade of virtual calls. block is the refactored pipeline:
// one dispatch per DefaultBlockSize block, with the filter slicing out
// contiguous same-PE runs instead of re-dispatching each reference.
// batched pushes every reference through the kernel-boundary Batcher
// (buffer append plus one block delivery per 512), so the three rows
// separate buffering cost from delivery cost under an identical producer
// loop. The refactor's headline requirement is block ≥ 2× perRef
// throughput.
func BenchmarkRefDelivery(b *testing.B) {
	refs := luTrace(b)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.Run("perRef", func(b *testing.B) {
		var c trace.Counter
		sink := trace.WithContext(ctx, trace.PEFilter{PE: 1, Next: &c})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range refs {
				sink.Ref(refs[j])
			}
		}
		b.ReportMetric(float64(len(refs)), "refs/op")
	})
	b.Run("block", func(b *testing.B) {
		var c trace.BlockCounter
		sink := trace.WithContext(ctx, trace.PEFilter{PE: 1, Next: &c})
		blocks := trace.Blocks(refs, trace.DefaultBlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, blk := range blocks {
				trace.Deliver(sink, blk)
			}
		}
		b.ReportMetric(float64(len(refs)), "refs/op")
	})
	b.Run("batched", func(b *testing.B) {
		var c trace.BlockCounter
		batch := trace.NewBatcher(trace.WithContext(ctx, trace.PEFilter{PE: 1, Next: &c}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range refs {
				batch.Ref(refs[j])
			}
			batch.Flush()
		}
		b.ReportMetric(float64(len(refs)), "refs/op")
	})
}

// benchProfilers builds independent stack-distance profilers — the
// fig6dm shape: one kernel run fanned out to simulators whose
// per-reference work (Fenwick updates, hash lookups) dwarfs delivery
// cost, which is exactly when concurrent fan-out pays.
func benchProfilers(b *testing.B, n int) []trace.Consumer {
	b.Helper()
	cs := make([]trace.Consumer, n)
	for i := range cs {
		cs[i] = cache.MustStackProfiler(8)
	}
	return cs
}

// BenchmarkFanout compares serial Tee delivery against the sharded
// Fanout delivery of the captured LU trace into four independent
// profilers. Simulator construction happens with the timer stopped, so
// ns/op and B/op measure delivery plus simulation only (the PR2 numbers
// mixed in per-iteration profiler allocation; the steady-state alloc
// guarantee itself is pinned by AllocsPerRun guards in internal/trace).
func BenchmarkFanout(b *testing.B) {
	refs := luTrace(b)
	blocks := trace.Blocks(refs, trace.DefaultBlockSize)
	b.Run("tee", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tee := trace.Tee(benchProfilers(b, 4))
			b.StartTimer()
			for _, blk := range blocks {
				tee.Refs(blk)
			}
		}
		b.ReportMetric(float64(len(refs)), "refs/op")
	})
	b.Run("fanout", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cs := benchProfilers(b, 4)
			b.StartTimer()
			fan, err := trace.NewFanout(cs...)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				fan.Refs(blk)
			}
			if err := fan.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(refs)), "refs/op")
	})
}

// BenchmarkFanoutScaling sweeps the shard-worker count over the
// replayed LU stream fanned out to an 11-consumer sweep (the fig6dm
// width): 1 up through NumCPU, plus an oversubscribed point on
// single-core hosts so the curve always has two entries. On a
// single-core host the workers=1 row against the tee row measures the
// full cost of the engine's machinery (copies, ring handoff, chunked
// member-major delivery) against inline serial delivery — the shard
// concurrency itself needs cores to pay.
func BenchmarkFanoutScaling(b *testing.B) {
	refs := luTrace(b)
	blocks := trace.Blocks(refs, trace.DefaultBlockSize)
	nrefs := len(refs)
	workers := []int{1}
	for w := 2; w < runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	if n := runtime.NumCPU(); n > 1 {
		workers = append(workers, n)
	} else {
		workers = append(workers, 2) // oversubscription cost, measured honestly
	}
	b.Run("tee", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tee := trace.Tee(benchProfilers(b, 11))
			b.StartTimer()
			for _, blk := range blocks {
				tee.Refs(blk)
			}
		}
		b.ReportMetric(float64(nrefs), "refs/op")
	})
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cs := benchProfilers(b, 11)
				b.StartTimer()
				fan, err := trace.NewFanoutConfig(trace.FanoutConfig{Workers: w}, cs...)
				if err != nil {
					b.Fatal(err)
				}
				for _, blk := range blocks {
					fan.Refs(blk)
				}
				if err := fan.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nrefs), "refs/op")
		})
	}
}

// Sharded-machine benchmarks: the PR7 engine. BenchmarkDirectoryShardScaling
// isolates the directory layer — per-shard MSI state application with the
// line stream pre-partitioned by the region hash, one goroutine per shard —
// and sweeps the shard count so the archived curve shows what shard
// concurrency buys once delivery cost is out of the picture.
// BenchmarkMemsysSharded is the end-to-end machine at the paper's P=1024:
// a captured CG trace replayed through the serial engine and through the
// sharded engine at increasing shard counts (results are bit-identical by
// the equivalence suite; this measures only wall-clock).

func BenchmarkDirectoryShardScaling(b *testing.B) {
	const pes = 256
	type dirOp struct {
		line  uint64
		pe    int
		write bool
	}
	rng := rand.New(rand.NewSource(3))
	ops := make([]dirOp, 400_000)
	for i := range ops {
		// A hot sharing set plus a cold stream, with a 1:4 write mix, so
		// invalidation broadcasts and sharer-set churn are part of the cost.
		line := uint64(rng.Intn(1 << 14))
		if rng.Intn(4) == 0 {
			line = uint64(rng.Intn(256))
		}
		ops[i] = dirOp{line: line, pe: rng.Intn(pes), write: rng.Intn(4) == 0}
	}
	workers := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	if len(workers) == 1 {
		workers = append(workers, 2) // oversubscription cost, measured honestly
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("shards=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sd, err := coherence.NewShardedDirectory(pes, 8, w, nil)
				if err != nil {
					b.Fatal(err)
				}
				parts := make([][]dirOp, w)
				for _, op := range ops {
					s := sd.ShardOf(op.line)
					parts[s] = append(parts[s], op)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for s := 0; s < w; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						shard := sd.Shard(s)
						for _, op := range parts[s] {
							if op.write {
								shard.WriteLine(op.pe, op.line)
							} else {
								shard.ReadLine(op.pe, op.line)
							}
						}
					}(s)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(len(ops)), "ops/op")
		})
	}
}

// cgTrace1024 records one CG solve partitioned across 1024 processors —
// the paper-scale reference stream the sharded machine exists for.
var cgTraceCache struct {
	once sync.Once
	refs []trace.Ref
	err  error
}

func cgTrace1024(b *testing.B) []trace.Ref {
	b.Helper()
	cgTraceCache.once.Do(func() {
		part, err := cg.NewPartition2D(64, 32, 32, nil)
		if err != nil {
			cgTraceCache.err = err
			return
		}
		rec := &trace.Recorder{}
		s := cg.NewSolver2D(part, rec)
		rhs := make([]float64, 64*64)
		for i := range rhs {
			rhs[i] = 1
		}
		s.SetB(rhs)
		_, cgTraceCache.err = s.Solve(cg.Config{MaxIters: 2})
		cgTraceCache.refs = rec.Refs
	})
	if cgTraceCache.err != nil {
		b.Fatal(cgTraceCache.err)
	}
	return cgTraceCache.refs
}

func BenchmarkMemsysSharded(b *testing.B) {
	refs := cgTrace1024(b)
	blocks := trace.Blocks(refs, trace.DefaultBlockSize)
	shardCounts := []int{0, 1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, w := range shardCounts {
		name := fmt.Sprintf("shards=%d", w)
		if w == 0 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := memsys.Open(memsys.Config{
					PEs: 1024, LineSize: 8, Dist: memsys.Interleaved,
					CacheCapacity: 512, Assoc: 1, Shards: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, blk := range blocks {
					m.Refs(blk)
				}
				if err := m.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(refs)), "refs/op")
		})
	}
}

// BenchmarkSampledProfiler is the sampling error/throughput harness:
// the captured paper-scale CG stream (1024 PEs) pushed through the
// stack-distance profiler at spatial sampling rates 1 through 64. Each
// sampled row reports, besides wall-clock, the measured worst relative
// curve error against the exact run on the octave grid (restricted to
// capacities ≥ 32·R lines, the estimator's trusted region — see
// DESIGN.md §12) alongside the estimator's own 1/sqrt(n) population
// bound, so the archived BENCH file records both the speedup and the
// fidelity price at every rate.
func BenchmarkSampledProfiler(b *testing.B) {
	refs := cgTrace1024(b)
	var grid []int
	for c := 8; c <= 1<<18; c *= 2 {
		grid = append(grid, c)
	}
	feed := func(p cache.Profiler) {
		p.SetMeasuring(true)
		for i := range refs {
			p.Access(refs[i].Addr, refs[i].Size, refs[i].Kind == trace.Read)
		}
	}
	exact := cache.MustStackProfiler(8)
	feed(exact)
	exactCurve := exact.Curve(grid)

	for _, rate := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("rate=%d", rate), func(b *testing.B) {
			var p cache.Profiler
			for i := 0; i < b.N; i++ {
				var err error
				p, err = cache.NewProfiler(8, rate)
				if err != nil {
					b.Fatal(err)
				}
				feed(p)
			}
			b.ReportMetric(float64(len(refs)), "refs/op")
			if rate == 1 {
				return
			}
			curve := p.Curve(grid)
			worst := 0.0
			for i, c := range grid {
				if c < 32*rate {
					continue
				}
				e := float64(exactCurve[i].Misses())
				if e == 0 {
					continue
				}
				if rel := (float64(curve[i].Misses()) - e) / e; rel > worst {
					worst = rel
				} else if -rel > worst {
					worst = -rel
				}
			}
			b.ReportMetric(worst, "maxrelerr")
			b.ReportMetric(p.ErrorBound(), "errbound")
			b.ReportMetric(float64(p.SampledLines()), "sampledlines")
		})
	}
}

// BenchmarkSuiteTraceReuse measures end-to-end RunSuite wall-clock over
// the two experiments sharing a Barnes-Hut configuration, with the
// kernel-trace capture disabled vs enabled (fresh store per iteration, so
// each op pays one record and one replay). Workers=1 keeps the
// comparison a pure capture effect.
func BenchmarkSuiteTraceReuse(b *testing.B) {
	var exps []core.Experiment
	for _, id := range []string{"fig6", "fig6dm"} {
		e, ok := core.Find(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	run := func(b *testing.B, ctx context.Context) {
		rep := core.RunSuite(ctx, exps, core.SuiteOptions{
			Options: core.Options{Scale: core.ScaleQuick}, Workers: 1,
		})
		if s := rep.FailureSummary(); s != "" {
			b.Fatal(s)
		}
	}
	b.Run("capture=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, capture.With(context.Background(), nil))
		}
	})
	b.Run("capture=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, capture.With(context.Background(), capture.New(0)))
		}
	})
}

// Kernel micro-benchmarks: raw application throughput, untraced and
// traced, quantifying the cost of emitting the reference stream.

func BenchmarkLUFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := lu.NewBlockMatrix(128, 8, nil)
		m.FillRandomDominant(1)
		b.StartTimer()
		if err := lu.Factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUFactorTraced(b *testing.B) {
	var sink trace.Counter
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := lu.NewBlockMatrix(128, 8, nil)
		m.FillRandomDominant(1)
		b.StartTimer()
		if _, err := lu.FactorTraced(m, lu.Grid{PR: 2, PC: 2}, &sink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGIteration(b *testing.B) {
	part, err := cg.NewPartition2D(128, 2, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	s := cg.NewSolver2D(part, nil)
	rhs := make([]float64, 128*128)
	for i := range rhs {
		rhs[i] = 1
	}
	s.SetB(rhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(cg.Config{MaxIters: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT64K(b *testing.B) {
	f, err := fft.New(fft.Config{LogN: 16, P: 4, InternalRadix: 8}, nil)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 1<<16)
	for i := range x {
		x[i] = complex(float64(i%31), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SetInput(x)
		f.Run()
	}
}

func BenchmarkBarnesHutStep(b *testing.B) {
	bodies := barneshut.Plummer(1024, 1)
	sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
		Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var inter int
	for i := 0; i < b.N; i++ {
		st, err := sim.Step()
		if err != nil {
			b.Fatal(err)
		}
		inter = st.Interactions
	}
	b.ReportMetric(float64(inter), "interactions/step")
}

func BenchmarkVolrendFrame(b *testing.B) {
	vol := volrend.SyntheticHead(64, 64, 56)
	ren, err := volrend.NewRenderer(vol, volrend.Config{ImageW: 96, ImageH: 96, P: 4}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var samples int
	for i := 0; i < b.N; i++ {
		st, _ := ren.RenderFrame(0.03 * float64(i))
		samples = st.Samples
	}
	b.ReportMetric(float64(samples), "samples/frame")
}

// Design-choice ablation sweeps (the DESIGN.md section 4 items): each
// reports the knob's effect as a custom metric.

func BenchmarkAblationThetaSweep(b *testing.B) {
	for _, theta := range []float64{0.5, 0.8, 1.2} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			bodies := barneshut.Plummer(512, 1)
			sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
				Theta: theta, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			var inter float64
			for i := 0; i < b.N; i++ {
				st, err := sim.Step()
				if err != nil {
					b.Fatal(err)
				}
				inter = st.InteractionsPerBody(512)
			}
			b.ReportMetric(inter, "interactions/body")
		})
	}
}

func BenchmarkAblationRadixSweep(b *testing.B) {
	for _, radix := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("radix=%d", radix), func(b *testing.B) {
			f, err := fft.New(fft.Config{LogN: 14, P: 4, InternalRadix: radix}, nil)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]complex128, 1<<14)
			for i := range x {
				x[i] = complex(float64(i%31), 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.SetInput(x)
				f.Run()
			}
		})
	}
}

func BenchmarkAblationCGTileSweep(b *testing.B) {
	for _, tile := range []int{0, 8, 16} {
		b.Run(fmt.Sprintf("tile=%d", tile), func(b *testing.B) {
			part, err := cg.NewPartition2D(128, 2, 2, nil)
			if err != nil {
				b.Fatal(err)
			}
			s := cg.NewSolver2D(part, nil)
			if tile > 0 {
				s.SetTileSize(tile)
			}
			rhs := make([]float64, 128*128)
			for i := range rhs {
				rhs[i] = 1
			}
			s.SetB(rhs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(cg.Config{MaxIters: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
