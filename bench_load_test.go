package wss

// Load-harness benchmarks for the horizontal serving tier. Both drive
// a real 2-node in-process cluster through the facade (StartNode +
// RunLoad) exactly as `wsstudy serve` + `wsload` would over localhost.
//
//   - BenchmarkWsloadCachedRPS: warmed keys served from cache and
//     peer-fill. Reports cached_rps against compute_rps (the rate a
//     single key's kernel could sustain) — the archived ratio is the
//     serving tier's whole reason to exist.
//   - BenchmarkWsloadOverloadShed: an uncached open-loop storm against
//     one compute slot per node. Reports served vs cleanly shed RPS;
//     any contract-violating response fails the benchmark.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"wsstudy/internal/obs"
)

// benchKernelCost is the fixed cost of the synthetic load kernel; its
// inverse is the compute ceiling a cache-less tier could sustain on
// one key.
const benchKernelCost = 10 * time.Millisecond

func benchKernel() Experiment {
	return Experiment{
		ID:    "benchkern",
		Title: "fixed-cost kernel for load benchmarks",
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			select {
			case <-time.After(benchKernelCost):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r := &Report{Title: "benchkern"}
			r.AddNote("cache=%d", opt.CacheBytes)
			return r, nil
		},
	}
}

// bootLoadBench starts a 2-node cluster for load benchmarks and
// returns the nodes plus their recorders. Shut down via the returned
// stop func (benchmarks boot per-iteration clusters, so t.Cleanup
// ordering is not enough).
func bootLoadBench(b *testing.B, slots int, tweak func(cfg *NodeConfig)) ([]*Node, []*Recorder, func()) {
	b.Helper()
	lns := make([]net.Listener, 2)
	peers := make(map[string]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		peers[fmt.Sprintf("b%d", i)] = "http://" + ln.Addr().String()
	}
	nodes := make([]*Node, 2)
	recs := make([]*Recorder, 2)
	for i := range nodes {
		recs[i] = NewRecorder()
		cfg := NodeConfig{
			Listener:       lns[i],
			NodeID:         fmt.Sprintf("b%d", i),
			PeerAddrs:      peers,
			Store:          StoreConfig{Slots: slots},
			Registry:       []Experiment{benchKernel()},
			DefaultScale:   ScaleQuick,
			RequestTimeout: 30 * time.Second,
			Recorder:       recs[i],
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := StartNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = node
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, n := range nodes {
			_ = n.Shutdown(ctx)
		}
	}
	return nodes, recs, stop
}

func targetURLs(nodes []*Node) []string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.URL()
	}
	return urls
}

// BenchmarkWsloadCachedRPS measures sustained cached throughput: 4
// warmed keys spread over 2 nodes under open-loop load. Every key is
// computed exactly once cluster-wide (the second copy arrives by
// peer-fill), so extra_computes must report 0.
func BenchmarkWsloadCachedRPS(b *testing.B) {
	const keys = 4
	nodes, recs, stop := bootLoadBench(b, 4, nil)
	defer stop()

	var servedRPS float64
	for i := 0; i < b.N; i++ {
		res, err := RunLoad(context.Background(), LoadConfig{
			Targets:    targetURLs(nodes),
			Experiment: "benchkern",
			Keys:       keys,
			RPS:        2000,
			Duration:   250 * time.Millisecond,
			Warm:       true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Wrong != 0 {
			b.Fatalf("wrong = %d: %v", res.Wrong, res.WrongSample)
		}
		servedRPS += res.ServedRPS
	}

	var computes uint64
	for _, rec := range recs {
		computes += rec.Snapshot().Durations[obs.StoreComputeWall].Count
	}
	computeRPS := float64(time.Second) / float64(benchKernelCost)
	cachedRPS := servedRPS / float64(b.N)
	b.ReportMetric(cachedRPS, "cached_rps")
	b.ReportMetric(computeRPS, "compute_rps")
	b.ReportMetric(cachedRPS/computeRPS, "rps_ratio")
	b.ReportMetric(float64(computes-keys), "extra_computes")
	if computes != keys {
		b.Fatalf("cluster ran %d computes for %d keys (peer-fill should cover the rest)", computes, keys)
	}
}

// BenchmarkWsloadOverloadShed measures clean degradation: a fresh
// cluster per iteration (so every key is cold), one compute slot per
// node, and far more offered keys than the slots can absorb. The tier
// must split the storm into served and cleanly shed — zero wrong.
func BenchmarkWsloadOverloadShed(b *testing.B) {
	var servedRPS, shedRPS float64
	for i := 0; i < b.N; i++ {
		nodes, _, stop := bootLoadBench(b, 1, func(cfg *NodeConfig) {
			cfg.WaitBudget = 300 * time.Millisecond
			cfg.RequestTimeout = 10 * time.Second
		})
		res, err := RunLoad(context.Background(), LoadConfig{
			Targets:    targetURLs(nodes),
			Experiment: "benchkern",
			Keys:       64,
			RPS:        300,
			Duration:   500 * time.Millisecond,
			Timeout:    30 * time.Second,
		})
		stop()
		if err != nil {
			b.Fatal(err)
		}
		if res.Wrong != 0 {
			b.Fatalf("wrong = %d under overload: %v", res.Wrong, res.WrongSample)
		}
		servedRPS += res.ServedRPS
		shedRPS += res.ShedRPS
	}
	b.ReportMetric(servedRPS/float64(b.N), "served_rps")
	b.ReportMetric(shedRPS/float64(b.N), "shed_rps")
}
