package wss

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"wsstudy/internal/capture"
	"wsstudy/internal/core"
	"wsstudy/internal/fault"
	"wsstudy/internal/memsys"
	"wsstudy/internal/obs"
	"wsstudy/internal/sweep"
	"wsstudy/internal/trace"
)

// The chaos suite: randomized, seeded fault schedules over the full
// stack (store persistence, compute retry, kernel-trace capture, WST2
// framing, experiment execution), checked against three invariants:
//
//  1. Termination — every Get returns, fault or not.
//  2. Integrity — a Get that claims success returns bytes identical to
//     the fault-free baseline; no faulted result is ever cached.
//  3. Recovery — after the faults are disarmed, every key computes
//     cleanly and matches the baseline (degraded subsystems healed,
//     nothing poisoned).
//
// Schedules are deterministic per seed (math/rand with a fixed source,
// fault.Trigger.Seed for probabilistic firing), so a failing seed
// replays exactly.

// chaosSeeds is the schedule count; each seed arms a different subset of
// failpoints with different modes and probabilities.
var chaosSeeds = []int64{1, 2, 3, 4, 5}

// chaosExperiments builds deterministic synthetic experiments that
// between them traverse every chaos seam: pure model computation, and a
// kernel whose multi-frame reference stream rides trace encoding and
// the capture store.
func chaosExperiments() []Experiment {
	model := func(id string) Experiment {
		return Experiment{
			ID:    id,
			Title: "chaos model " + id,
			Run: func(ctx context.Context, opt Options) (*Report, error) {
				r := &Report{Title: "chaos model " + id}
				t := Table{Title: id, Header: []string{"cell", "value"}}
				for i := 0; i < 8; i++ {
					t.Rows = append(t.Rows, []string{
						fmt.Sprintf("r%d", i),
						fmt.Sprintf("%d", (i+len(id))*7),
					})
				}
				r.Tables = append(r.Tables, t)
				return r, nil
			},
		}
	}
	kernel := Experiment{
		ID:    "chaos-kernel",
		Title: "chaos kernel",
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			var refs uint64
			sink := chaosSink{refs: &refs}
			err := capture.From(ctx).Run(ctx, "chaos/kernel", 2, sink, func(out trace.Consumer) error {
				ec, _ := out.(trace.EpochConsumer)
				bc := trace.AdaptConsumer(out)
				block := make([]trace.Ref, 1024)
				for epoch := 0; epoch < 2; epoch++ {
					if ec != nil {
						ec.BeginEpoch(epoch)
					}
					for i := 0; i < 16; i++ {
						for j := range block {
							// Scattered addresses defeat delta encoding so the
							// recording spans several WST2 frames — a corrupt
							// frame fault has room to land.
							block[j] = trace.Ref{PE: j % 4, Addr: uint64((epoch*16+i)*1024+j) * 2654435761, Size: 8}
						}
						bc.Refs(block)
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			r := &Report{Title: "chaos kernel"}
			r.AddNote("refs=%d", refs)
			return r, nil
		},
	}
	// machine drives a deterministic reference stream through the
	// region-sharded memsys engine, so the shard-apply, shard-publish and
	// barrier failpoints have a live pipeline to land in. Injected errors
	// surface through Close and fail the run (nothing cached); injected
	// delays must leave the statistics bit-identical to the fault-free
	// baseline — the sharded engine's exactness guarantee under chaos.
	machine := Experiment{
		ID:    "chaos-machine",
		Title: "chaos sharded machine",
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			m, err := memsys.Open(memsys.Config{
				PEs: 8, LineSize: 8, CacheCapacity: 64, Assoc: 1,
				WarmupEpochs: 1, Shards: 3,
			})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(7))
			block := make([]trace.Ref, 256)
			for epoch := 0; epoch < 3; epoch++ {
				m.BeginEpoch(epoch)
				for i := 0; i < 8; i++ {
					for j := range block {
						kind := trace.Read
						if rng.Intn(4) == 0 {
							kind = trace.Write
						}
						block[j] = trace.Ref{
							PE:   rng.Intn(8),
							Addr: uint64(rng.Intn(2048)) * 8,
							Size: 8, Kind: kind,
						}
					}
					m.Refs(block)
				}
			}
			if err := m.Close(); err != nil {
				return nil, err
			}
			st, ds := m.Stats(), m.DirectoryStats()
			r := &Report{Title: "chaos sharded machine"}
			r.Tables = append(r.Tables, Table{
				Title:  "machine",
				Header: []string{"stat", "value"},
				Rows: [][]string{
					{"local", fmt.Sprint(st.LocalMisses)},
					{"remote", fmt.Sprint(st.RemoteMisses)},
					{"invalidations", fmt.Sprint(ds.Invalidations)},
					{"downgrades", fmt.Sprint(ds.Downgrades)},
				},
			})
			return r, nil
		},
	}
	// profiled drives a short stream through a sampled profiling machine,
	// so the cache.sample.select construction failpoint has a live seam:
	// an injected error surfaces from Open before any reference flows.
	// The curve it reports is deterministic (spatial hashing, no RNG), so
	// the byte-identical baseline invariant holds.
	profiled := Experiment{
		ID:    "chaos-profiled",
		Title: "chaos sampled profiler",
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			m, err := memsys.Open(memsys.Config{
				PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1,
				SampleRate: 16, Shards: 2,
			})
			if err != nil {
				return nil, err
			}
			block := make([]trace.Ref, 256)
			for i := 0; i < 8; i++ {
				for j := range block {
					block[j] = trace.Ref{
						PE:   j % 4,
						Addr: uint64((i*256+j)%4096) * 8,
						Size: 8, Kind: trace.Read,
					}
				}
				m.Refs(block)
			}
			if err := m.Close(); err != nil {
				return nil, err
			}
			p := m.Profiler(1)
			r := &Report{Title: "chaos sampled profiler"}
			tb := Table{Title: "sampled", Header: []string{"capacity", "misses"}}
			for _, mc := range p.Curve([]int{64, 512, 4096}) {
				tb.Rows = append(tb.Rows, []string{
					fmt.Sprint(mc.CapacityLines), fmt.Sprint(mc.Misses()),
				})
			}
			r.Tables = append(r.Tables, tb)
			return r, nil
		},
	}
	return []Experiment{model("chaos-a"), model("chaos-b"), kernel, machine, profiled}
}

type chaosSink struct{ refs *uint64 }

func (s chaosSink) Ref(trace.Ref)      { *s.refs++ }
func (s chaosSink) Refs(b []trace.Ref) { *s.refs += uint64(len(b)) }
func (s chaosSink) BeginEpoch(int)     {}

// chaosSweepSpec is the lattice the chaos storm drives through the
// sweep engine: four analytic gridlu cells, cheap enough to land (or
// fail and retry) many times per schedule.
func chaosSweepSpec() SweepSpec {
	return SweepSpec{Experiment: "gridlu", Scale: "quick", Axes: []SweepAxis{
		{Field: "cache", Values: []string{"4096", "16384"}},
		{Field: "pes", Values: []string{"16", "64"}},
	}}
}

// waitSweep polls a sweep until its current pass settles (Done).
func waitSweep(t *testing.T, eng *SweepEngine, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := eng.Get(id)
		if !ok {
			t.Fatalf("sweep %s vanished", id)
		}
		if st.Done {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never settled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosPlan arms a seeded random subset of the registered failpoints.
// Panic injection is confined to core.execute, the one seam whose
// caller (Execute) recovers panics by contract; everywhere else the
// modes are error, corrupt and short delay.
func chaosPlan(t *testing.T, rng *rand.Rand) []string {
	t.Helper()
	type site struct {
		name  string
		modes []fault.Mode
	}
	sites := []site{
		{"store.disk.load", []fault.Mode{fault.ModeError, fault.ModeCorrupt}},
		{"store.disk.save", []fault.Mode{fault.ModeError}},
		{"store.compute", []fault.Mode{fault.ModeError}},
		{"capture.commit", []fault.Mode{fault.ModeError}},
		{"capture.replay", []fault.Mode{fault.ModeError}},
		{"trace.write.chunk", []fault.Mode{fault.ModeCorrupt}},
		{"trace.replay.chunk", []fault.Mode{fault.ModeCorrupt, fault.ModeDelay}},
		{"core.execute", []fault.Mode{fault.ModeError, fault.ModePanic, fault.ModeDelay}},
		{"coherence.shard.apply", []fault.Mode{fault.ModeError, fault.ModeDelay}},
		{"memsys.shard.publish", []fault.Mode{fault.ModeError, fault.ModeDelay}},
		{"memsys.barrier", []fault.Mode{fault.ModeError, fault.ModeDelay}},
		{"sweep.cell.compute", []fault.Mode{fault.ModeError, fault.ModeDelay}},
		{"cache.sample.select", []fault.Mode{fault.ModeError}},
	}
	var armed []string
	for _, s := range sites {
		if rng.Float64() < 0.4 {
			continue
		}
		tr := fault.Trigger{
			Mode: s.modes[rng.Intn(len(s.modes))],
			Prob: 0.25 + rng.Float64()*0.5,
			Seed: rng.Int63(),
		}
		switch tr.Mode {
		case fault.ModeDelay:
			tr.Delay = time.Millisecond
		case fault.ModeError:
			// Half the injected errors are transient, so the retry
			// policy's classification sees both branches.
			if rng.Intn(2) == 0 {
				tr.Err = core.Transient(errors.New("chaos transient"))
			}
		}
		if err := fault.Arm(s.name, tr); err != nil {
			t.Fatal(err)
		}
		armed = append(armed, fmt.Sprintf("%s=%s p=%.2f", s.name, tr.Mode, tr.Prob))
	}
	return armed
}

func TestChaosSchedules(t *testing.T) {
	exps := chaosExperiments()
	opt := Options{Scale: ScaleQuick}

	// Fault-free baseline: the byte-exact JSON every successful chaos
	// Get must reproduce. No Recorder anywhere, so reports carry no
	// process-varying metrics.
	baseline := map[string][]byte{}
	base, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		res, err := base.Get(context.Background(), e, opt)
		if err != nil {
			t.Fatalf("baseline %s: %v", e.ID, err)
		}
		baseline[e.ID] = res.JSON
	}
	// Fault-free sweep baseline: the per-cell summaries every recovered
	// chaos sweep must reproduce.
	sweepBase := map[string]*sweep.CellSummary{}
	{
		beng, err := NewSweepEngine(SweepConfig{Store: base})
		if err != nil {
			t.Fatal(err)
		}
		st, err := beng.Submit(chaosSweepSpec())
		if err != nil {
			t.Fatal(err)
		}
		fin := waitSweep(t, beng, st.ID)
		if fin.Failed != 0 {
			t.Fatalf("fault-free baseline sweep failed cells: %+v", fin)
		}
		for _, c := range fin.Cells {
			sweepBase[c.Key] = c.Summary
		}
		if err := beng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := base.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(fault.DisarmAll)
			rng := rand.New(rand.NewSource(seed))
			st, err := NewStore(StoreConfig{
				Dir:            t.TempDir(),
				Slots:          4,
				ComputeRetries: 2,
				ProbeInterval:  time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close(context.Background())

			armed := chaosPlan(t, rng)
			t.Logf("schedule: %v", armed)

			// A sweep rides the storm: its cells race the same faults
			// (sweep.cell.compute included) as the direct Gets below.
			eng, err := NewSweepEngine(SweepConfig{Store: st, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			sw, err := eng.Submit(chaosSweepSpec())
			if err != nil {
				t.Fatal(err)
			}

			// Storm phase: concurrent repeated Gets while the faults
			// fire. Every error is acceptable; every success must be
			// byte-identical to the baseline.
			var wg sync.WaitGroup
			for round := 0; round < 4; round++ {
				for _, e := range exps {
					wg.Add(1)
					go func(e Experiment) {
						defer wg.Done()
						res, err := st.Get(context.Background(), e, opt)
						if err != nil {
							return // a surfaced fault, not a correctness failure
						}
						if !bytes.Equal(res.JSON, baseline[e.ID]) {
							t.Errorf("%s: faulted run served corrupted bytes", e.ID)
						}
					}(e)
				}
				wg.Wait()
			}

			// Recovery phase: disarm everything and demand clean,
			// baseline-identical results — proving no faulted result was
			// cached in memory or on disk and the degraded subsystems
			// heal (the millisecond probe interval has long expired).
			fault.DisarmAll()
			time.Sleep(2 * time.Millisecond)
			for _, e := range exps {
				res, err := st.Get(context.Background(), e, opt)
				if err != nil {
					t.Fatalf("%s after disarm: %v", e.ID, err)
				}
				if !bytes.Equal(res.JSON, baseline[e.ID]) {
					t.Errorf("%s: post-recovery bytes diverge from the fault-free baseline", e.ID)
				}
			}

			// Sweep recovery: cells the storm failed retry on
			// re-submission; the converged lattice must match the
			// fault-free baseline summaries cell for cell.
			fin := waitSweep(t, eng, sw.ID)
			for retries := 0; fin.Failed > 0; retries++ {
				if retries > 20 {
					t.Fatalf("sweep still failing cells after disarm: %+v", fin)
				}
				if _, err := eng.Submit(chaosSweepSpec()); err != nil {
					t.Fatal(err)
				}
				fin = waitSweep(t, eng, sw.ID)
			}
			for _, c := range fin.Cells {
				if !reflect.DeepEqual(c.Summary, sweepBase[c.Key]) {
					t.Errorf("sweep cell %s: post-recovery summary %+v diverges from baseline %+v",
						c.Canonical, c.Summary, sweepBase[c.Key])
				}
			}
		})
	}
}

// TestChaosNeverCachesFaultedResult pins invariant 2 in its sharpest
// form: with a persistent compute fault, nothing lands in memory or on
// disk, and the first clean run computes from scratch.
func TestChaosNeverCachesFaultedResult(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	exps := chaosExperiments()
	opt := Options{Scale: ScaleQuick}
	dir := t.TempDir()
	st, err := NewStore(StoreConfig{Dir: dir, ComputeRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close(context.Background())

	if err := fault.Arm("store.compute", fault.Trigger{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if _, err := st.Get(context.Background(), e, opt); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s under a persistent compute fault: err = %v, want the injected fault", e.ID, err)
		}
		if st.Cached(ResultKey(e.ID, opt)) {
			t.Errorf("%s: faulted result found in the memory cache", e.ID)
		}
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("store holds %d entries after all-faulted runs, want 0", n)
	}

	fault.DisarmAll()
	for _, e := range exps {
		if _, err := st.Get(context.Background(), e, opt); err != nil {
			t.Fatalf("%s after disarm: %v", e.ID, err)
		}
	}
}

// --- cluster peer-fault chaos ----------------------------------------

// bootChaosCluster starts a 2-node in-process cluster with crawlers on,
// tuned so degradation cooldowns cycle fast enough to exercise
// degrade → bypass → probe → heal within the test.
func bootChaosCluster(t *testing.T, recs []*Recorder) []*Node {
	t.Helper()
	lns := make([]net.Listener, 2)
	peers := make(map[string]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[fmt.Sprintf("c%d", i)] = "http://" + ln.Addr().String()
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		node, err := StartNode(NodeConfig{
			Listener:       lns[i],
			NodeID:         fmt.Sprintf("c%d", i),
			PeerAddrs:      peers,
			Store:          StoreConfig{Slots: 4},
			DefaultScale:   ScaleQuick,
			RequestTimeout: 30 * time.Second,
			WaitBudget:     300 * time.Millisecond,
			PeerProbe:      50 * time.Millisecond,
			Recorder:       recs[i],
			Crawl: &CrawlSpec{
				Experiment: "gridlu",
				Axes: []SweepAxis{
					{Field: "cache", Values: []string{"4096", "8192", "16384", "32768"}},
				},
				Interval: 5 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, n := range nodes {
			_ = n.Shutdown(ctx)
		}
	})
	return nodes
}

// TestChaosClusterPeerFaults holds the cluster to the tier's chaos
// invariant: injected peer faults — dead dials ("cluster.peer.dial"),
// corrupted transfers ("cluster.peer.fetch"), failing crawl steps
// ("cluster.crawl.step") — never produce a wrong or cached-faulted
// report. Every request on every node still answers 200 with bytes
// identical to the fault-free baseline; a fill that cannot be trusted
// falls back to local compute. After disarming, peers heal and
// peer-fill serves a fresh key cleanly.
func TestChaosClusterPeerFaults(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	if _, ok := core.Find("gridlu"); !ok {
		t.Fatal("gridlu not in registry")
	}

	recs := []*Recorder{NewRecorder(), NewRecorder()}
	nodes := bootChaosCluster(t, recs)

	// Fault-free baseline bodies, fetched over the same public endpoint
	// the storm uses so the byte-compare sees the exact HTTP rendering.
	caches := []uint64{4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288}
	baseline := map[uint64][]byte{}
	for _, cache := range caches {
		url := fmt.Sprintf("%s/v1/experiments/gridlu/report?format=json&opt.scale=quick&opt.cache=%d", nodes[0].URL(), cache)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fault-free baseline cache=%d answered %d: %s", cache, resp.StatusCode, body)
		}
		baseline[cache] = body
	}

	for name, tr := range map[string]fault.Trigger{
		"cluster.peer.dial":  {Mode: fault.ModeError, Prob: 0.5, Seed: 11},
		"cluster.peer.fetch": {Mode: fault.ModeCorrupt, Arg: -1, Prob: 0.5, Seed: 12},
		"cluster.crawl.step": {Mode: fault.ModeError, Prob: 0.5, Seed: 13},
	} {
		if err := fault.Arm(name, tr); err != nil {
			t.Fatal(err)
		}
	}

	// The storm: every key requested from every node, repeatedly, while
	// fills race injected dial failures and corrupted transfers.
	get := func(node *Node, cache uint64) {
		t.Helper()
		url := fmt.Sprintf("%s/v1/experiments/gridlu/report?format=json&opt.scale=quick&opt.cache=%d", node.URL(), cache)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("cache=%d: %v", cache, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cache=%d answered %d under peer faults, want 200: %s", cache, resp.StatusCode, body)
		}
		if !bytes.Equal(body, baseline[cache]) {
			t.Fatalf("cache=%d rendering differs from fault-free baseline under peer faults", cache)
		}
	}
	for round := 0; round < 3; round++ {
		for _, cache := range caches {
			for _, node := range nodes {
				get(node, cache)
			}
		}
		time.Sleep(60 * time.Millisecond) // let degradation cooldowns expire between rounds
	}

	// The seams actually fired (otherwise this proved nothing).
	for _, name := range []string{"cluster.peer.dial", "cluster.crawl.step"} {
		fp := fault.Lookup(name)
		if fp == nil || fp.Hits() == 0 {
			t.Errorf("failpoint %s never evaluated during the storm", name)
		}
	}

	// Recovery: disarm, then a fresh remote-owned key must peer-fill
	// (or compute) cleanly and the ring must heal.
	fault.DisarmAll()
	freshCache := uint64(1 << 21)
	key := ResultKey("gridlu", Options{Scale: ScaleQuick, CacheBytes: freshCache})
	ownerNode, follower := nodes[0], nodes[1]
	if nodes[0].Cluster.Ring().Owner(key) == "c1" {
		ownerNode, follower = nodes[1], nodes[0]
	}
	fetch := func(node *Node) (int, []byte) {
		t.Helper()
		url := fmt.Sprintf("%s/v1/experiments/gridlu/report?format=json&opt.scale=quick&opt.cache=%d", node.URL(), freshCache)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	poll := func(node *Node) []byte {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			code, body := fetch(node)
			if code == http.StatusOK {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("fresh key never served after disarm (last status %d)", code)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	followerBody := poll(follower)
	if ownerBody := poll(ownerNode); !bytes.Equal(followerBody, ownerBody) {
		t.Fatal("post-disarm fresh key renders differently on follower and owner")
	}
	healDeadline := time.Now().Add(5 * time.Second)
	probeCache := freshCache
	for {
		degraded := false
		for _, n := range nodes {
			if n.Cluster.Health().Degraded() {
				degraded = true
			}
		}
		if !degraded {
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatal("peers never healed after disarm")
		}
		// Fills only dial a peer on a local store miss, and the storm
		// left every key cached everywhere: touch a fresh key owned by
		// the *other* node from each node so the degraded peer is
		// actually probed.
		for i, node := range nodes {
			other := "c1"
			if i == 1 {
				other = "c0"
			}
			for {
				probeCache += 4096
				k := ResultKey("gridlu", Options{Scale: ScaleQuick, CacheBytes: probeCache})
				if node.Cluster.Ring().Owner(k) == other {
					break
				}
			}
			url := fmt.Sprintf("%s/v1/experiments/gridlu/report?format=json&opt.scale=quick&opt.cache=%d", node.URL(), probeCache)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(60 * time.Millisecond)
	}

	// The crawlers keep stepping after the faults are gone.
	steps := recs[0].Snapshot().Counter(obs.ClusterCrawlSteps) + recs[1].Snapshot().Counter(obs.ClusterCrawlSteps)
	time.Sleep(50 * time.Millisecond)
	after := recs[0].Snapshot().Counter(obs.ClusterCrawlSteps) + recs[1].Snapshot().Counter(obs.ClusterCrawlSteps)
	if after <= steps {
		t.Error("crawlers stopped stepping after disarm")
	}
}
