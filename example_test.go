package wss_test

import (
	"fmt"

	"wsstudy"
)

type sink struct{ p *wss.StackProfiler }

func (s sink) Ref(r wss.Ref) { s.p.Access(r.Addr, r.Size, r.Kind == wss.Read) }

// ExampleProfileCurve measures the working set of a kernel that sweeps a
// fixed 64-word region repeatedly: one pass yields the whole curve, and
// knee detection finds the 512-byte working set.
func ExampleProfileCurve() {
	prof, err := wss.NewStackProfiler(8)
	if err != nil {
		panic(err)
	}
	emit := wss.NewEmitter(0, sink{prof})
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 64; i++ {
			emit.LoadDW(uint64(i) * 8)
		}
	}
	curve := wss.ProfileCurve("sweep", prof,
		wss.LogSizes(64, 2048, 1), float64(prof.Reads()), true)
	for _, k := range wss.FindKnees(curve, 2, 0.01) {
		fmt.Printf("working set: %s\n", wss.FormatBytes(k.CacheBytes))
	}
	// Output:
	// working set: 512 B
}

// ExampleMachine reproduces the paper's Section 2.3 Paragon arithmetic.
func ExampleMachine() {
	m := wss.Paragon(1024)
	fmt.Printf("nearest-neighbor: %.0f FLOPs/word\n", m.NearestNeighborRatio())
	fmt.Printf("random: %.0f FLOPs/word\n", m.RandomRatio())
	// Output:
	// nearest-neighbor: 8 FLOPs/word
	// random: 64 FLOPs/word
}

// ExampleNewSystem shows inherent communication: a value written by one
// processor and read by another misses at any cache size.
func ExampleNewSystem() {
	sys, err := wss.NewSystem(wss.SystemConfig{
		PEs: 2, LineSize: 8, Profile: true, ProfilePE: 0,
	})
	if err != nil {
		panic(err)
	}
	sys.Ref(wss.Ref{PE: 0, Addr: 0, Size: 8, Kind: wss.Read})
	sys.Ref(wss.Ref{PE: 1, Addr: 0, Size: 8, Kind: wss.Write})
	sys.Ref(wss.Ref{PE: 0, Addr: 0, Size: 8, Kind: wss.Read})
	coh, _ := sys.Profiler(0).CoherenceMisses()
	fmt.Printf("coherence misses: %d\n", coh)
	// Output:
	// coherence misses: 1
}
