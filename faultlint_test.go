package wss

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsstudy/internal/fault"
)

// TestEveryFailpointExercised is the failpoint lint: a failpoint nobody
// arms in a test is dead chaos surface — it rots silently until the day
// an operator arms it in production and discovers the seam was never
// wired. Every registered name must appear in at least one _test.go
// file somewhere in the repo.
//
// Importing the packages that declare failpoints is enough to register
// them (package-level fault.New); this test package already pulls in
// the whole stack via the chaos suite.
func TestEveryFailpointExercised(t *testing.T) {
	names := fault.Names()
	if len(names) < 10 {
		t.Fatalf("only %d failpoints registered — did a package stop importing fault?", len(names))
	}

	referenced := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, n := range names {
			if !referenced[n] && strings.Contains(string(src), `"`+n+`"`) {
				referenced[n] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range names {
		if !referenced[n] {
			t.Errorf("failpoint %q is registered but no _test.go references it — add a fault-injection test or remove the seam", n)
		}
	}
}
