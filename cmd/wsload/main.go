// Command wsload drives a wsstudy serving tier with open-loop load and
// reports whether it held up: sustained served RPS, clean 429 shedding,
// latency quantiles, and a hard zero-wrong-responses verdict.
//
// Usage:
//
//	wsload -targets http://h1:8080,http://h2:8080 [-experiment gridlu]
//	       [-rps 200] [-duration 5s] [-keys 8] [-skew 1.2] [-inflight 512]
//	       [-timeout 10s] [-seed 1] [-warm]
//
// The result prints as JSON on stdout; the exit status is 1 when any
// response violated the serving contract (Wrong > 0), so CI can gate on
// a load run directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsstudy/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wsload", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated node base URLs (required)")
	experiment := fs.String("experiment", "gridlu", "experiment id to request")
	scale := fs.String("scale", "quick", "opt.scale for every request")
	rps := fs.Float64("rps", 200, "offered arrival rate (open loop)")
	duration := fs.Duration("duration", 5*time.Second, "measured window")
	keys := fs.Int("keys", 1, "distinct result keys to spread over")
	skew := fs.Float64("skew", 0, "key popularity: 0 = uniform, >1 = Zipf s parameter")
	inflight := fs.Int("inflight", 512, "max concurrent requests before client-side drop")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	seed := fs.Int64("seed", 1, "key-pick RNG seed")
	warm := fs.Bool("warm", false, "request every key from every target once, unmeasured, before the window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targets == "" {
		fs.Usage()
		return fmt.Errorf("-targets is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := load.Run(ctx, load.Config{
		Targets:     splitTargets(*targets),
		Experiment:  *experiment,
		Scale:       *scale,
		RPS:         *rps,
		Duration:    *duration,
		Keys:        *keys,
		Skew:        *skew,
		MaxInFlight: *inflight,
		Timeout:     *timeout,
		Seed:        *seed,
		Warm:        *warm,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if res.Wrong > 0 {
		return fmt.Errorf("%d wrong responses (first: %s)", res.Wrong, res.WrongSample[0])
	}
	return nil
}

func splitTargets(raw string) []string {
	var out []string
	for _, t := range strings.Split(raw, ",") {
		if t = strings.TrimSpace(strings.TrimSuffix(t, "/")); t != "" {
			out = append(out, t)
		}
	}
	return out
}
