package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/load"
	"wsstudy/internal/obs"
	"wsstudy/internal/serve"
	"wsstudy/internal/store"
)

// bootCluster starts an in-process n-node cluster and returns the node
// handles plus their recorders. Ports are pre-bound so every node sees
// the full peer map at boot.
func bootCluster(t *testing.T, n int, reg []core.Experiment, scfg store.Config, tweak func(cfg *serve.NodeConfig)) ([]*serve.Node, []*obs.Recorder) {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[fmt.Sprintf("n%d", i)] = "http://" + ln.Addr().String()
	}
	nodes := make([]*serve.Node, n)
	recs := make([]*obs.Recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = obs.New()
		cfg := serve.NodeConfig{
			Listener:       lns[i],
			NodeID:         fmt.Sprintf("n%d", i),
			PeerAddrs:      peers,
			Store:          scfg,
			Registry:       reg,
			DefaultScale:   core.ScaleQuick,
			RequestTimeout: 30 * time.Second,
			Recorder:       recs[i],
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := serve.StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, node := range nodes {
			_ = node.Shutdown(ctx)
		}
	})
	return nodes, recs
}

func targetsOf(nodes []*serve.Node) string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.URL()
	}
	return strings.Join(urls, ",")
}

// TestLoadSmoke is the tier-1 load gate: a 2-node cluster takes a
// short warmed wsload run with a measurable cached rate and zero
// contract violations, and every key is computed exactly once
// cluster-wide (the other node's copy arrives by peer-fill).
func TestLoadSmoke(t *testing.T) {
	nodes, recs := bootCluster(t, 2, core.Registry(), store.Config{Slots: 4}, nil)

	var out bytes.Buffer
	err := run([]string{
		"-targets", targetsOf(nodes),
		"-experiment", "gridlu",
		"-keys", "4",
		"-rps", "300",
		"-duration", "2s",
		"-warm",
	}, &out)
	if err != nil {
		t.Fatalf("wsload failed: %v\n%s", err, out.String())
	}

	var res load.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("wsload output is not a Result: %v\n%s", err, out.String())
	}
	if res.Wrong != 0 {
		t.Fatalf("wrong = %d: %v", res.Wrong, res.WrongSample)
	}
	if res.ServedRPS <= 0 {
		t.Fatalf("served RPS = %v, want > 0 against a warm cluster", res.ServedRPS)
	}
	if res.NetErrors != 0 {
		t.Fatalf("net errors = %d against a local cluster", res.NetErrors)
	}
	if res.P99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", res.P99)
	}

	// Content-addressing across the ring: 4 keys, each computed exactly
	// once cluster-wide — the second copy always arrived by peer-fill.
	var computes uint64
	for _, rec := range recs {
		computes += rec.Snapshot().Durations[obs.StoreComputeWall].Count
	}
	if computes != 4 {
		t.Fatalf("cluster ran %d computes for 4 keys, want exactly 4 (peer-fill covers the rest)", computes)
	}
}

// TestLoadOverloadSheds: a 2-node cluster with one compute slot per
// node and a deliberately slow kernel under an uncached open-loop storm
// answers every request inside the contract — some 200s, a meaningful
// number of clean 429s with Retry-After, and nothing wrong.
func TestLoadOverloadSheds(t *testing.T) {
	slow := core.Experiment{
		ID:    "slowload",
		Title: "slow kernel for overload drills",
		Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r := &core.Report{Title: "slowload"}
			r.AddNote("cache=%d", opt.CacheBytes)
			return r, nil
		},
	}
	// A short WaitBudget keeps follower fills from polling the
	// saturated owner longer than clients wait; a saturated cluster
	// must shed, not queue.
	nodes, _ := bootCluster(t, 2, []core.Experiment{slow}, store.Config{Slots: 1},
		func(cfg *serve.NodeConfig) {
			cfg.WaitBudget = 300 * time.Millisecond
			cfg.RequestTimeout = 10 * time.Second
		})

	res, err := load.Run(context.Background(), load.Config{
		Targets:    []string{nodes[0].URL(), nodes[1].URL()},
		Experiment: "slowload",
		Keys:       64, // uncached spread: far more distinct keys than slots
		RPS:        300,
		Duration:   1500 * time.Millisecond,
		Timeout:    30 * time.Second, // outlive the server's own deadlines: no client cancels
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wrong != 0 {
		t.Fatalf("wrong = %d under overload: %v", res.Wrong, res.WrongSample)
	}
	if res.Statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("overload produced no 429s: %+v", res.Statuses)
	}
	if res.Statuses[http.StatusOK] == 0 {
		t.Fatalf("overload starved every request: %+v", res.Statuses)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rps", "10"}, &out); err == nil {
		t.Fatal("run accepted a missing -targets")
	}
}
