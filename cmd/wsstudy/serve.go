package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/serve"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// serveParams are the `wsstudy serve` knobs, split from flag parsing so
// tests can drive the full serving path in-process.
type serveParams struct {
	addr         string
	slots        int
	entries      int
	maxBytes     int64
	dir          string
	sweepDir     string
	defaultScale core.Scale
	reqTimeout   time.Duration
	computeLimit time.Duration
	drain        time.Duration

	// Cluster membership: nodeID names this node in the peers map
	// (id=url,id=url,... — identical on every node, self included).
	// Empty nodeID serves standalone.
	nodeID        string
	peers         map[string]string
	vnodes        int
	fetchBudget   time.Duration
	waitBudget    time.Duration
	peerProbe     time.Duration
	crawl         string // experiment id; "" disables the crawler
	crawlAxes     []sweep.Axis
	crawlInterval time.Duration
}

// parsePeers decodes the -peers flag: "n1=http://h1:8080,n2=http://h2:8080".
func parsePeers(raw string) (map[string]string, error) {
	if raw == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(raw, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers: %q is not id=url", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("-peers: duplicate node id %q", id)
		}
		out[id] = addr
	}
	return out, nil
}

// runServe builds one serving node — result store, sweep engine,
// optional cluster membership and crawler, v1 HTTP server — serves
// until ctx is cancelled (SIGINT/SIGTERM in the CLI), then drains
// gracefully: the listener closes, in-flight requests and their
// computations get the drain budget to finish, and stragglers are
// cancelled through their kernels' cancellation polls. ready (when
// non-nil) receives the bound address once the server is accepting.
func runServe(ctx context.Context, rec *obs.Recorder, p serveParams, ready func(addr string)) error {
	cfg := serve.NodeConfig{
		Addr:   p.addr,
		NodeID: p.nodeID,
		Store: store.Config{
			MaxEntries: p.entries,
			MaxBytes:   p.maxBytes,
			Slots:      p.slots,
			Dir:        p.dir,
		},
		SweepDir:       p.sweepDir,
		DefaultScale:   p.defaultScale,
		RequestTimeout: p.reqTimeout,
		ComputeTimeout: p.computeLimit,
		Recorder:       rec,
	}
	if p.nodeID != "" {
		cfg.PeerAddrs = p.peers
		cfg.VNodes = p.vnodes
		cfg.FetchBudget = p.fetchBudget
		cfg.WaitBudget = p.waitBudget
		cfg.PeerProbe = p.peerProbe
		if p.crawl != "" {
			cfg.Crawl = &cluster.CrawlSpec{
				Experiment: p.crawl,
				Axes:       p.crawlAxes,
				Interval:   p.crawlInterval,
			}
		}
	} else if p.crawl != "" {
		return fmt.Errorf("-crawl requires cluster membership (-node-id and -peers)")
	}

	n, err := serve.StartNode(cfg)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(n.Addr())
	}

	<-ctx.Done()
	drainCtx, cancel := context.WithTimeout(context.Background(), p.drain)
	defer cancel()
	return n.Shutdown(drainCtx)
}

// serveFromFlags wires runServe to the process: signal-driven shutdown
// and a startup line on stderr.
func serveFromFlags(ctx context.Context, rec *obs.Recorder, p serveParams) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, rec, p, func(addr string) {
		if p.nodeID != "" {
			var ids []string
			for id := range p.peers {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "wsstudy: serving v1 API on http://%s/v1/experiments as cluster node %q (ring: %s; default scale %s; SIGTERM drains)\n",
				addr, p.nodeID, strings.Join(ids, ", "), p.defaultScale)
			return
		}
		fmt.Fprintf(os.Stderr, "wsstudy: serving v1 API on http://%s/v1/experiments (default scale %s; SIGTERM drains)\n",
			addr, p.defaultScale)
	})
}
