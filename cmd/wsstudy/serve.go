package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"path/filepath"

	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/serve"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// serveParams are the `wsstudy serve` knobs, split from flag parsing so
// tests can drive the full serving path in-process.
type serveParams struct {
	addr         string
	slots        int
	entries      int
	maxBytes     int64
	dir          string
	sweepDir     string
	defaultScale core.Scale
	reqTimeout   time.Duration
	computeLimit time.Duration
	drain        time.Duration
}

// runServe builds the result store and the v1 HTTP server, serves until
// ctx is cancelled (SIGINT/SIGTERM in the CLI), then drains gracefully:
// the listener closes, in-flight requests and their computations get
// the drain budget to finish, and stragglers are cancelled through
// their kernels' cancellation polls. ready (when non-nil) receives the
// bound address once the server is accepting.
func runServe(ctx context.Context, rec *obs.Recorder, p serveParams, ready func(addr string)) error {
	st, err := store.New(store.Config{
		MaxEntries: p.entries,
		MaxBytes:   p.maxBytes,
		Slots:      p.slots,
		Dir:        p.dir,
		Recorder:   rec,
	})
	if err != nil {
		return err
	}
	// The sweep engine's journal dir defaults to a sibling of the
	// store's persistence dir, so a persistent store gets resumable
	// sweeps without extra flags; a memory-only store still runs sweeps,
	// just without on-disk checkpoints.
	sweepDir := p.sweepDir
	if sweepDir == "" && p.dir != "" {
		sweepDir = filepath.Join(p.dir, "sweeps")
	}
	eng, err := sweep.NewEngine(sweep.Config{
		Store:       st,
		Dir:         sweepDir,
		Recorder:    rec,
		CellTimeout: p.computeLimit,
	})
	if err != nil {
		st.Close(context.Background())
		return err
	}
	srv, err := serve.New(serve.Config{
		Store:          st,
		Sweeps:         eng,
		Recorder:       rec,
		DefaultScale:   p.defaultScale,
		RequestTimeout: p.reqTimeout,
		ComputeTimeout: p.computeLimit,
	})
	if err != nil {
		eng.Close()
		st.Close(context.Background())
		return err
	}
	addr, err := srv.Start(p.addr)
	if err != nil {
		eng.Close()
		st.Close(context.Background())
		return err
	}
	if ready != nil {
		ready(addr)
	}

	<-ctx.Done()
	drainCtx, cancel := context.WithTimeout(context.Background(), p.drain)
	defer cancel()
	// Stop sweep passes first — landed cells are already checkpointed;
	// the HTTP drain then finishes in-flight requests before the store
	// closes.
	cerr := eng.Close()
	if serr := srv.Shutdown(drainCtx); serr != nil {
		return serr
	}
	return cerr
}

// serveFromFlags wires runServe to the process: signal-driven shutdown
// and a startup line on stderr.
func serveFromFlags(ctx context.Context, rec *obs.Recorder, p serveParams) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, rec, p, func(addr string) {
		fmt.Fprintf(os.Stderr, "wsstudy: serving v1 API on http://%s/v1/experiments (default scale %s; SIGTERM drains)\n",
			addr, p.defaultScale)
	})
}
