package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/sweep"
)

// TestSweepSmoke is the `make sweep-smoke` gate: boot the real serving
// path exactly as `wsstudy serve` wires it, POST a 2x2 gridlu lattice
// to /v1/sweeps, poll the status resource to Done, and read the grain
// advice — the whole sweep surface end to end over HTTP.
func TestSweepSmoke(t *testing.T) {
	rec := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, rec, serveParams{
			addr:         "127.0.0.1:0",
			slots:        2,
			sweepDir:     t.TempDir(),
			defaultScale: core.ScaleQuick,
			drain:        10 * time.Second,
		}, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	spec := `{
		"experiment": "gridlu",
		"scale": "quick",
		"axes": [
			{"field": "cache", "values": ["4096", "16384"]},
			{"field": "pes", "values": ["16", "64"]}
		]
	}`
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sweeps status = %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	resp.Body.Close()
	if loc == "" {
		t.Fatal("POST /v1/sweeps set no Location header")
	}

	var st sweep.Status
	deadline := time.Now().Add(30 * time.Second)
	for !st.Done {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", st)
		}
		if err := json.Unmarshal([]byte(get(t, base+loc)), &st); err != nil {
			t.Fatalf("sweep status not JSON: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Completed != 4 || st.Failed != 0 {
		t.Fatalf("sweep finished wrong: %+v", st)
	}
	if rec.Counter(obs.SweepCellsComputed).Value() != 4 {
		t.Errorf("sweep.cells.computed = %d, want 4", rec.Counter(obs.SweepCellsComputed).Value())
	}

	var adv struct {
		Best struct {
			Design struct {
				P int `json:"p"`
			} `json:"design"`
		} `json:"best"`
	}
	if err := json.Unmarshal([]byte(get(t, base+loc+"/grain")), &adv); err != nil {
		t.Fatalf("grain not JSON: %v", err)
	}
	if adv.Best.Design.P <= 0 {
		t.Errorf("grain advice picked no design: %+v", adv)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain")
	}
}
