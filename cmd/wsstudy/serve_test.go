package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/obs"
)

// TestServeSmoke is the `make serve-smoke` gate: boot the real serving
// path (store + v1 API, exactly as `wsstudy serve` wires it), hit
// /v1/experiments and a report, assert 200 + valid JSON, then shut down
// gracefully.
func TestServeSmoke(t *testing.T) {
	rec := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, rec, serveParams{
			addr:         "127.0.0.1:0",
			slots:        2,
			defaultScale: core.ScaleQuick,
			drain:        10 * time.Second,
		}, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp := get(t, base+"/v1/experiments")
	var list struct {
		SchemaVersion int `json:"schema_version"`
		Experiments   []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(resp), &list); err != nil {
		t.Fatalf("/v1/experiments not JSON: %v\n%.300s", err, resp)
	}
	if list.SchemaVersion != core.ReportSchemaVersion || len(list.Experiments) == 0 {
		t.Fatalf("experiment list wrong: %+v", list)
	}

	// A model-only experiment end to end: quick to compute, full JSON
	// report out, and the store counters move on the shared recorder.
	rep := get(t, fmt.Sprintf("%s/v1/experiments/%s/report?scale=quick", base, "scalingall"))
	var v core.ReportV1
	if err := json.Unmarshal([]byte(rep), &v); err != nil {
		t.Fatalf("report not ReportV1 JSON: %v\n%.300s", err, rep)
	}
	if v.SchemaVersion != core.ReportSchemaVersion {
		t.Errorf("schema_version = %d", v.SchemaVersion)
	}
	if rec.Counter(obs.StoreMisses).Value() != 1 {
		t.Errorf("store misses = %d, want 1", rec.Counter(obs.StoreMisses).Value())
	}

	// Graceful shutdown: cancelling the serve context drains and
	// returns nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Errorf("server still accepting after shutdown")
	}
}
