// Command wsstudy regenerates the figures and tables of Rothberg, Singh &
// Gupta (ISCA 1993) from this library's simulators and models.
//
// Usage:
//
//	wsstudy list                 # show available experiments
//	wsstudy verify               # audit every closed-form paper checkpoint
//	wsstudy all [-quick]         # run everything
//	wsstudy <id> [-quick]        # run one (fig2, fig4, fig5, fig6,
//	                             # fig6dm, fig7, table1, table2,
//	                             # machines, grain, scalingbh)
//
// -quick shrinks the simulated problems so the full suite finishes in
// seconds; without it the simulations run at the largest feasible scale
// (Figure 6 at the paper's exact n=1024 configuration, Figure 7 on the
// full 256x256x113 phantom).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"wsstudy/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wsstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wsstudy", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink simulated problem sizes")
	csvPath := fs.String("csv", "", "also write figure series as CSV to this file")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: wsstudy [list|all|<experiment-id>] [-quick] [-csv out.csv]")
		fs.PrintDefaults()
	}

	if len(args) == 0 {
		return list()
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opt := core.Options{Quick: *quick}

	switch cmd {
	case "list", "help", "-h", "--help":
		return list()
	case "verify":
		return verifyCheckpoints()
	case "all":
		for _, e := range core.Registry() {
			if err := runOne(e, opt, *csvPath); err != nil {
				return err
			}
		}
		return nil
	default:
		e, ok := core.Find(cmd)
		if !ok {
			list()
			return fmt.Errorf("unknown experiment %q", cmd)
		}
		return runOne(e, opt, *csvPath)
	}
}

func runOne(e core.Experiment, opt core.Options, csvPath string) error {
	start := time.Now()
	rep, err := e.Run(opt)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	rep.Render(os.Stdout)
	if csvPath != "" && len(rep.Figures) > 0 {
		f, err := os.OpenFile(csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := rep.RenderCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series appended to %s)\n", csvPath)
	}
	fmt.Printf("\n[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

func list() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTITLE")
	for _, e := range core.Registry() {
		fmt.Fprintf(tw, "%s\t%s\n", e.ID, e.Title)
	}
	return tw.Flush()
}
