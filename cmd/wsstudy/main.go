// Command wsstudy regenerates the figures and tables of Rothberg, Singh &
// Gupta (ISCA 1993) from this library's simulators and models.
//
// Usage:
//
//	wsstudy list                 # show available experiments
//	wsstudy verify               # audit every closed-form paper checkpoint
//	wsstudy all [-quick]         # run everything (-resume journal: checkpointed, crash-resumable)
//	wsstudy serve -addr :8080    # serve results over the v1 HTTP API
//	wsstudy sweep -experiment gridlu -axis cache=4096,16384 -axis pes=64,256
//	                             # run a parameter-lattice sweep (-resume dir
//	                             # revives landed cells across crashes)
//	wsstudy <id> [-quick]        # run one (fig2, fig4, fig5, fig6,
//	                             # fig6dm, fig7, table1, table2,
//	                             # machines, grain, scalingbh)
//
// -quick shrinks the simulated problems so the full suite finishes in
// seconds; without it the simulations run at the largest feasible scale
// (Figure 6 at the paper's exact n=1024 configuration, Figure 7 on the
// full 256x256x113 phantom).
//
// serve puts the content-addressed result store behind
// GET /v1/experiments, GET /v1/experiments/{id}/report?scale=quick|full
// and GET /v1/suite: identical requests never recompute (singleflight +
// LRU cache, optional -store-dir persistence), saturation answers 429,
// and SIGTERM drains in-flight runs. Combine with -listen for pprof and
// the live store/serve counters under /debug/vars.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wsstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wsstudy", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink simulated problem sizes")
	csvPath := fs.String("csv", "", "also write figure series as CSV to this file")
	timeout := fs.Duration("timeout", 0, "per-experiment deadline (0 = none)")
	machineShards := fs.Int("machine-shards", 0, "directory shards for the simulated machine (0 = serial engine; results are identical either way)")
	workers := fs.Int("workers", 2, "concurrent experiments for 'all'")
	retries := fs.Int("retries", 0, "retries for transiently failing experiments in 'all'")
	resume := fs.String("resume", "", "all: checkpoint journal path; completed cells revive, new ones append")
	metricsPath := fs.String("metrics", "", "write the run's metrics snapshot as JSON to this file")
	progress := fs.Bool("progress", false, "render live progress to stderr while experiments run")
	listen := fs.String("listen", "", "serve /debug/pprof/ and /debug/vars on this address while running")
	addr := fs.String("addr", "127.0.0.1:8080", "serve: v1 API listen address")
	slots := fs.Int("slots", 2, "serve: concurrent experiment computations")
	storeEntries := fs.Int("store-entries", 0, "serve: result-store LRU entry cap (0 = default 128)")
	storeBytes := fs.Int64("store-bytes", 0, "serve: result-store byte budget (0 = default 64 MiB)")
	storeDir := fs.String("store-dir", "", "serve: persist rendered reports in this directory")
	sweepDir := fs.String("sweep-dir", "", "serve: sweep checkpoint-journal directory (default <store-dir>/sweeps)")
	defaultScale := fs.String("default-scale", "quick", "serve: scale when a request has no ?scale= (quick|full)")
	sweepExp := fs.String("experiment", "gridlu", "sweep: experiment to evaluate at every lattice cell")
	var axes axisList
	fs.Var(&axes, "axis", "sweep: one lattice axis as field=v1,v2,... (repeatable; fields: "+strings.Join(core.AxisFields(), ", ")+")")
	var opts optList
	fs.Var(&opts, "opt", "one Options axis as field=value (repeatable; fields: "+strings.Join(core.AxisFields(), ", ")+"), e.g. -opt sample=16")
	dataBytes := fs.Uint64("data-bytes", 1<<30, "sweep: total problem size for the grain (perf-per-dollar) advice")
	nodeID := fs.String("node-id", "", "serve: this node's id in the -peers map (empty = standalone)")
	peersFlag := fs.String("peers", "", "serve: full cluster membership as id=url,id=url,... (identical on every node, self included)")
	vnodes := fs.Int("vnodes", 0, "serve: virtual nodes per ring member (0 = 128)")
	peerFetch := fs.Duration("peer-fetch-budget", 0, "serve: per-attempt peer-fill budget (0 = 2s; also capped at 10% of the request deadline)")
	peerWait := fs.Duration("peer-wait-budget", 0, "serve: total budget polling an owner that is still computing (0 = 15s)")
	peerProbe := fs.Duration("peer-probe", 0, "serve: cooldown before a degraded peer is probed again (0 = 15s)")
	crawl := fs.String("crawl", "", "serve: experiment id for the background precompute crawler over the -axis lattice (requires -node-id)")
	crawlInterval := fs.Duration("crawl-interval", 0, "serve: pacing between crawler steps (0 = 1s)")
	reqTimeout := fs.Duration("request-timeout", 0, "serve: per-request deadline (0 = none)")
	computeLimit := fs.Duration("compute-timeout", 0, "serve: per-computation deadline (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "serve: graceful-shutdown budget for in-flight runs")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: wsstudy [list|all|serve|sweep|<experiment-id>] [-quick] [-csv out.csv] [-timeout 2m] [-resume suite.journal] [-metrics out.json] [-progress] [-listen 127.0.0.1:6060] [-addr 127.0.0.1:8080] [-axis field=v1,v2]")
		fs.PrintDefaults()
	}

	if len(args) == 0 {
		return list()
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	scale := core.ScaleFull
	if *quick {
		scale = core.ScaleQuick
	}
	if *machineShards < 0 {
		return fmt.Errorf("-machine-shards must be >= 0, got %d", *machineShards)
	}
	opt := core.Options{Scale: scale, Timeout: *timeout, MachineShards: *machineShards}
	for _, kv := range opts {
		if err := opt.SetAxis(kv.field, kv.value); err != nil {
			return err
		}
	}
	if *quick && opt.Scale != scale {
		return fmt.Errorf("-quick and -opt scale=%s conflict; pick one", opt.Scale)
	}

	switch cmd {
	case "list", "help", "-h", "--help":
		return list()
	case "verify":
		return verifyCheckpoints()
	}

	// The remaining subcommands run experiments: give them a recorder, and
	// wire up the opt-in surfaces (live progress, a debug HTTP listener,
	// and a JSON metrics dump on exit).
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	// Fault injection: WSS_FAILPOINTS arms named failpoints for chaos
	// and recovery drills (see DESIGN.md §9); fired injections count on
	// the run recorder as fault.triggered.<name>.
	fault.SetRecorder(rec)
	if err := fault.ArmFromEnv(os.Getenv); err != nil {
		return err
	}
	if *listen != "" {
		addr, err := startDebugServer(*listen, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}
	if *progress {
		p := obs.StartProgress(rec, os.Stderr, time.Second)
		defer p.Stop()
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetrics(*metricsPath, rec); err != nil {
				fmt.Fprintln(os.Stderr, "wsstudy: writing metrics:", err)
			}
		}()
	}

	switch cmd {
	case "all":
		sopt := core.SuiteOptions{Options: opt, Workers: *workers, Retries: *retries}
		if *resume != "" {
			j, err := core.OpenJournal(*resume)
			if err != nil {
				return err
			}
			defer j.Close()
			if n := j.Len(); n > 0 {
				fmt.Fprintf(os.Stderr, "resuming: %d completed cells in %s\n", n, *resume)
			}
			sopt.Journal = j
		}
		return runAll(ctx, sopt, *csvPath)
	case "serve":
		scale, err := core.ParseScale(*defaultScale)
		if err != nil {
			return err
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		if (*nodeID == "") != (peers == nil) {
			return fmt.Errorf("-node-id and -peers must be set together")
		}
		return serveFromFlags(ctx, rec, serveParams{
			addr:          *addr,
			slots:         *slots,
			entries:       *storeEntries,
			maxBytes:      *storeBytes,
			dir:           *storeDir,
			sweepDir:      *sweepDir,
			defaultScale:  scale,
			reqTimeout:    *reqTimeout,
			computeLimit:  *computeLimit,
			drain:         *drain,
			nodeID:        *nodeID,
			peers:         peers,
			vnodes:        *vnodes,
			fetchBudget:   *peerFetch,
			waitBudget:    *peerWait,
			peerProbe:     *peerProbe,
			crawl:         *crawl,
			crawlAxes:     axes,
			crawlInterval: *crawlInterval,
		})
	case "sweep":
		return runSweep(ctx, rec, sweepParams{
			experiment: *sweepExp,
			axes:       axes,
			scale:      scale,
			resumeDir:  *resume,
			slots:      *slots,
			timeout:    *timeout,
			dataBytes:  *dataBytes,
			storeDir:   *storeDir,
		})
	default:
		e, ok := core.Find(cmd)
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid ids: %s)", cmd, strings.Join(validIDs(), ", "))
		}
		return runOne(ctx, e, opt, *csvPath)
	}
}

// writeMetrics dumps the recorder's final snapshot as indented JSON.
func writeMetrics(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	m := rec.Snapshot()
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// validIDs lists every registered experiment id.
func validIDs() []string {
	var ids []string
	for _, e := range core.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runAll executes the whole registry through the hardened suite runner:
// successful experiments render even when others time out, panic or fail,
// and the failures come back as a summary plus a nonzero exit.
func runAll(ctx context.Context, sopt core.SuiteOptions, csvPath string) error {
	start := time.Now()
	report := core.RunSuite(ctx, core.Registry(), sopt)
	for _, res := range report.Results {
		if res.Err != nil {
			continue
		}
		if err := renderOne(res.Report, csvPath); err != nil {
			return err
		}
		if res.Revived {
			fmt.Printf("\n[%s revived from checkpoint]\n\n", res.ID)
		} else {
			fmt.Printf("\n[%s completed in %v]\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
		}
	}
	if summary := report.FailureSummary(); summary != "" {
		return fmt.Errorf("%s(suite ran %v)", summary, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("[suite completed in %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runOne(ctx context.Context, e core.Experiment, opt core.Options, csvPath string) error {
	start := time.Now()
	rep, err := core.Execute(ctx, e, opt)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if err := renderOne(rep, csvPath); err != nil {
		return err
	}
	fmt.Printf("\n[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// renderOne writes a report to stdout and appends its series to csvPath if
// one was requested.
func renderOne(rep *core.Report, csvPath string) error {
	if err := rep.Render(os.Stdout, core.FormatText); err != nil {
		return err
	}
	if csvPath != "" && len(rep.Figures) > 0 {
		f, err := os.OpenFile(csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := rep.Render(f, core.FormatCSV); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series appended to %s)\n", csvPath)
	}
	return nil
}

func list() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTITLE")
	for _, e := range core.Registry() {
		fmt.Fprintf(tw, "%s\t%s\n", e.ID, e.Title)
	}
	return tw.Flush()
}
