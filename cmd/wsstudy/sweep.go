package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/cost"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
	"wsstudy/internal/workingset"
)

// axisList parses repeatable -axis field=v1,v2 flags into sweep axes.
type axisList []sweep.Axis

func (a *axisList) String() string {
	var parts []string
	for _, ax := range *a {
		parts = append(parts, ax.Field+"="+strings.Join(ax.Values, ","))
	}
	return strings.Join(parts, " ")
}

func (a *axisList) Set(raw string) error {
	field, vals, ok := strings.Cut(raw, "=")
	if !ok || field == "" || vals == "" {
		return fmt.Errorf("want field=v1,v2,... (fields: %s)", strings.Join(core.AxisFields(), ", "))
	}
	*a = append(*a, sweep.Axis{Field: field, Values: strings.Split(vals, ",")})
	return nil
}

// optList parses repeatable -opt field=value flags: single-point Options
// axes for one-shot runs (`wsstudy fig6 -opt sample=16`). Validation
// happens later through Options.SetAxis so the CLI and the HTTP decoder
// reject exactly the same inputs.
type optList []optKV

type optKV struct{ field, value string }

func (o *optList) String() string {
	var parts []string
	for _, kv := range *o {
		parts = append(parts, kv.field+"="+kv.value)
	}
	return strings.Join(parts, " ")
}

func (o *optList) Set(raw string) error {
	field, val, ok := strings.Cut(raw, "=")
	if !ok || field == "" || val == "" {
		return fmt.Errorf("want field=value (fields: %s)", strings.Join(core.AxisFields(), ", "))
	}
	*o = append(*o, optKV{field: field, value: val})
	return nil
}

// sweepParams are the `wsstudy sweep` knobs.
type sweepParams struct {
	experiment string
	axes       []sweep.Axis
	scale      core.Scale
	resumeDir  string // journal dir; "" = no on-disk checkpoints
	slots      int
	timeout    time.Duration
	dataBytes  uint64
	storeDir   string
}

// runSweep drives a lattice in-process: same engine the HTTP API uses,
// including journal resume — `-resume dir` twice across a crash revives
// every landed cell. Prints the cell grid as it finishes, then the §8
// grain advice when the lattice carries pes and cache axes.
func runSweep(ctx context.Context, rec *obs.Recorder, p sweepParams) error {
	st, err := store.New(store.Config{
		Slots:    p.slots,
		Dir:      p.storeDir,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	defer st.Close(context.Background())
	eng, err := sweep.NewEngine(sweep.Config{
		Store: st, Dir: p.resumeDir, Recorder: rec, CellTimeout: p.timeout,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	spec := sweep.Spec{Experiment: p.experiment, Scale: p.scale.String(), Axes: p.axes}
	status, err := eng.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Printf("sweep %s: %d cells (%s)\n", status.ID[:12], status.Total, describeAxes(status.Axes))

	start := time.Now()
	for !status.Done {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
		status, _ = eng.Get(status.ID)
	}
	fmt.Printf("completed %d/%d cells (%d revived, %d failed) in %v\n\n",
		status.Completed, status.Total, status.Revived, status.Failed,
		time.Since(start).Round(time.Millisecond))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tSTATE\tMISS RATE\tKEY")
	for _, c := range status.Cells {
		rate := ""
		if c.Summary != nil && c.Summary.Points == 1 {
			rate = fmt.Sprintf("%.6g", c.Summary.MissRate)
		} else if c.Summary != nil {
			rate = fmt.Sprintf("(%d-point curve)", c.Summary.Points)
		}
		state := string(c.State)
		if c.Revived {
			state += " (revived)"
		}
		if c.Error != "" {
			state += ": " + c.Error
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", trimCanon(c.Canonical), state, rate, c.Key[:12])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if status.Failed > 0 {
		return fmt.Errorf("%d cells failed; re-run with the same spec and -resume to retry them", status.Failed)
	}

	adv, err := eng.Grain(status.ID, p.dataBytes)
	if err != nil {
		// A lattice without pes × cache axes has no grain question to
		// answer; the sweep itself still succeeded.
		fmt.Printf("\n(no grain advice: %v)\n", err)
		return nil
	}
	printGrain(adv)
	return nil
}

// trimCanon drops the encoding version prefix and default-valued axes
// from a cell's canonical string so the table shows only what varies.
func trimCanon(canon string) string {
	parts := strings.Split(canon, ";")
	var kept []string
	for _, p := range parts[1:] {
		if strings.HasSuffix(p, "=0") || p == "scale=full" {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return "(defaults)"
	}
	return strings.Join(kept, " ")
}

func describeAxes(axes []sweep.Axis) string {
	var parts []string
	for _, ax := range axes {
		parts = append(parts, fmt.Sprintf("%s×%d", ax.Field, len(ax.Values)))
	}
	sort.Strings(parts)
	return strings.Join(parts, " · ")
}

// printGrain renders the §8 answer: the best measured design, the
// equal-cost-split design the paper conjectures about, and the scored
// lattice.
func printGrain(adv cost.GrainAdvice) {
	fmt.Printf("\n== node granularity per dollar (%s, %s problem) ==\n",
		adv.App, workingset.FormatBytes(adv.DataBytes))
	fmt.Printf("best:        %s\n", adv.Best.Describe())
	fmt.Printf("equal-split: %s\n", adv.EqualSplit.Describe())
	fmt.Printf("the equal-cost-split design is within %.2fx of optimal perf/$\n", adv.WithinFactor)
	fmt.Println("\nall designs:")
	for _, e := range adv.Evals {
		fmt.Printf("  %s\n", e.Describe())
	}
}
