package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsstudy/internal/obs"
)

// get fetches url and returns the body, failing the test on a non-200.
func get(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return string(body)
}

// TestDebugServerEndpoints is the -listen acceptance check: the debug
// server must serve the pprof index and expvar, and the expvar payload
// must include the live recorder snapshot under "wsstudy".
func TestDebugServerEndpoints(t *testing.T) {
	rec := obs.New()
	rec.Counter("trace.refs").Add(42)
	addr, err := startDebugServer("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}

	if body := get(t, fmt.Sprintf("http://%s/debug/pprof/", addr)); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%.300s", body)
	}

	body := get(t, fmt.Sprintf("http://%s/debug/vars", addr))
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar payload not JSON: %v\n%.300s", err, body)
	}
	ws, ok := vars["wsstudy"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing wsstudy snapshot: %v", vars["wsstudy"])
	}
	counters, ok := ws["counters"].(map[string]any)
	if !ok || counters["trace.refs"] != float64(42) {
		t.Errorf("wsstudy counters = %v, want trace.refs 42", ws["counters"])
	}

	// The counter keeps moving between polls: the endpoint serves live
	// state, not a boot-time copy.
	rec.Counter("trace.refs").Add(8)
	body = get(t, fmt.Sprintf("http://%s/debug/vars", addr))
	if !strings.Contains(body, "50") {
		t.Errorf("expvar did not reflect a live counter update:\n%.300s", body)
	}
}

// TestRunWritesMetricsFile runs a model-only experiment through the CLI
// entry point with -metrics and checks the JSON dump.
func TestRunWritesMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"scalingall", "-quick", "-metrics", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics file not valid JSON: %v\n%.300s", err, raw)
	}
	if m.Durations[obs.ExperimentWall].Count != 1 {
		t.Errorf("metrics dump %s count = %d, want 1", obs.ExperimentWall, m.Durations[obs.ExperimentWall].Count)
	}
	if m.Labels[obs.LabelExperiment] != "scalingall" {
		t.Errorf("metrics dump label = %q, want scalingall", m.Labels[obs.LabelExperiment])
	}
}
