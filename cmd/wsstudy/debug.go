package main

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"wsstudy/internal/obs"
)

// publishRecorder registers the recorder's live snapshot under the expvar
// name "wsstudy". expvar.Publish panics on duplicate names, so the
// registration happens once per process even when tests start several
// debug servers.
var publishRecorder = sync.OnceFunc(func() {
	expvar.Publish("wsstudy", expvar.Func(func() any {
		rec := currentRecorder.Load()
		if rec == nil {
			return nil
		}
		m := rec.Snapshot()
		// Round-trip through the snapshot's own JSON form so expvar
		// renders durations and labels the same way -metrics does.
		b, err := json.Marshal(m)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		var out any
		if err := json.Unmarshal(b, &out); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return out
	}))
})

// currentRecorder is the recorder the expvar endpoint snapshots; an atomic
// pointer because the expvar func may run on a request goroutine while a
// later startDebugServer call swaps recorders.
var currentRecorder atomicRecorder

type atomicRecorder struct {
	mu  sync.RWMutex
	rec *obs.Recorder
}

func (a *atomicRecorder) Load() *obs.Recorder {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.rec
}

func (a *atomicRecorder) Store(rec *obs.Recorder) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rec = rec
}

// startDebugServer serves net/http/pprof and expvar on addr (host:port;
// port 0 picks a free one) and returns the bound address. The server uses
// its own mux rather than http.DefaultServeMux so importing this package
// never mutates global handler state beyond the expvar publication.
func startDebugServer(addr string, rec *obs.Recorder) (string, error) {
	currentRecorder.Store(rec)
	publishRecorder()

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// The server lives for the process; errors after Close are noise.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
