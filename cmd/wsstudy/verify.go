package main

import (
	"fmt"
	"math"
	"os"

	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/machine"
	"wsstudy/internal/scaling"
)

// verifyCheckpoints evaluates every closed-form checkpoint the paper
// states as a number against this library's models and prints a PASS/FAIL
// line per claim — a fast sanity audit that needs no simulation.
func verifyCheckpoints() error {
	type check struct {
		name      string
		paper     float64 // the value as printed in the paper
		got       float64
		tolerance float64 // relative
	}
	luM := lu.Model{N: 10000, B: 16, P: 1024}
	cg2 := cg.Model2D{N: 4000, P: 1024}
	cg3 := cg.Model3D{N: 225, P: 1024}
	fftM := fft.Model{LogN: 26, P: 1024, InternalRadix: 8}
	checks := []check{
		{"LU lev1WS (B=16) ~260 B", 260, float64(luM.Lev1WS()), 0.1},
		{"LU lev2WS ~2200 B", 2200, float64(luM.Lev2WS()), 0.1},
		{"LU lev3WS ~80 KB", 80000, float64(luM.Lev3WS()), 0.05},
		{"LU ratio ~200 FLOPs/word", 200, luM.CommToCompRatio(), 0.1},
		{"LU blocks/PE ~380", 380, luM.BlocksPerPE(), 0.05},
		{"LU ratio @16K PEs ~50", 50, lu.Model{N: 10000, B: 16, P: 16384}.CommToCompRatio(), 0.1},
		{"LU blocks/PE @16K ~25", 25, lu.Model{N: 10000, B: 16, P: 16384}.BlocksPerPE(), 0.1},
		{"CG 2-D ratio ~300", 300, cg2.CommToCompRatio(), 0.1},
		{"CG 3-D ratio ~50", 50, cg3.CommToCompRatio(), 0.1},
		{"CG 2-D ratio @16K ~75", 75, cg.Model2D{N: 4000, P: 16384}.CommToCompRatio(), 0.1},
		{"CG 3-D ratio @16K ~20", 20, cg.Model3D{N: 225, P: 16384}.CommToCompRatio(), 0.1},
		{"FFT ratio 33", 33, fftM.CommToCompRatio(), 0.05},
		{"FFT radix-2 plateau 0.6", 0.6, fft.Model{LogN: 26, P: 1024, InternalRadix: 2}.RateAfterLev1(), 0.01},
		{"FFT radix-8 plateau 0.25", 0.25, fftM.RateAfterLev1(), 0.01},
		{"FFT radix-32 plateau ~0.15", 0.15, fft.Model{LogN: 26, P: 1024, InternalRadix: 32}.RateAfterLev1(), 0.1},
		{"FFT grain for R=60 ~270 MB", 270e6, fft.GrainForRatio(60), 0.1},
		{"FFT grain for R=100 ~18 TB", 18e12, fft.GrainForRatio(100), 0.1},
		{"BH lev2WS @64K particles 32 KB", 32000, float64(scaling.BHWorkingSet(65536, 1)), 0.1},
		{"BH lev2WS @1M particles 40 KB", 40000, float64(scaling.BHWorkingSet(1<<20, 1)), 0.1},
		{"BH lev2WS @1G particles 60 KB", 60000, float64(scaling.BHWorkingSet(1<<30, 1)), 0.1},
		{"BH MC 64->1K PEs: theta 0.71", 0.71,
			scaling.BHScaleMC(scaling.BHParams{N: 65536, Theta: 1, DT: 1}, 16).Theta, 0.01},
		{"Paragon nearest-neighbor 8", 8, machine.Paragon(1024).NearestNeighborRatio(), 0.001},
		{"Paragon random 64", 64, machine.Paragon(1024).RandomRatio(), 0.001},
		{"CM-5 nearest-neighbor ~50", 50, machine.CM5(1024).NearestNeighborRatio(), 0.05},
		{"VR lev2WS @600^3 70 KB", 70000, float64(volrend.Model{N: 600, P: 1024}.Lev2WS()), 0.05},
		{"VR rays/PE @1024 ~1000", 1000, volrend.Model{N: 600, P: 1024}.RaysPerPE(), 0.1},
		{"VR rays/PE @16K ~66", 66, volrend.Model{N: 600, P: 16384}.RaysPerPE(), 0.05},
		{"VR lev2WS @1024^3 ~116 KB", 116000, float64(volrend.Model{N: 1024, P: 1024}.Lev2WS()), 0.05},
	}
	failed := 0
	for _, c := range checks {
		rel := math.Abs(c.got-c.paper) / math.Abs(c.paper)
		status := "PASS"
		if rel > c.tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %-36s paper %-10.4g ours %-10.4g (%.1f%% off)\n",
			status, c.name, c.paper, c.got, 100*rel)
	}
	fmt.Printf("\n%d/%d checkpoints within tolerance\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
	return nil
}
