// Command wstrace captures application reference traces to compact binary
// files and analyzes them offline: one expensive kernel run, many cheap
// simulator configurations.
//
// Usage:
//
//	wstrace capture -app lu|cg|fft|barneshut|volrend -o trace.wst [-scale N]
//	wstrace info trace.wst
//	wstrace analyze [-pe 1] [-line 8] trace.wst
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wstrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "capture":
		return capture(args[1:])
	case "info":
		return info(args[1:])
	case "analyze":
		return analyze(args[1:])
	default:
		return usage()
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, `usage:
  wstrace capture -app lu|cg|fft|barneshut|volrend -o trace.wst [-scale N]
  wstrace info <trace.wst>
  wstrace analyze [-pe 1] [-line 8] <trace.wst>`)
	return fmt.Errorf("missing or unknown subcommand")
}

// capture runs one kernel at a small default scale and writes its trace.
func capture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ContinueOnError)
	app := fs.String("app", "", "application: lu, cg, fft, barneshut, volrend")
	out := fs.String("o", "trace.wst", "output file")
	scale := fs.Int("scale", 1, "problem scale multiplier (1 = seconds-fast default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be >= 1")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	if err := runApp(*app, *scale, w); err != nil {
		f.Close()
		return err
	}
	// A sink write failure (full disk, closed pipe) surfaces on Err before
	// the capture is declared good.
	if err := w.Err(); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d references to %s\n", w.Records(), *out)
	return nil
}

// runApp drives one application into the sink.
func runApp(app string, scale int, sink trace.Consumer) error {
	switch app {
	case "lu":
		n := 96 * scale
		b := 8
		m := lu.NewBlockMatrix(n, b, nil)
		m.FillRandomDominant(1)
		_, err := lu.FactorTraced(m, lu.Grid{PR: 2, PC: 2}, sink)
		return err
	case "cg":
		n := 64 * scale
		part, err := cg.NewPartition2D(n, 2, 2, nil)
		if err != nil {
			return err
		}
		s := cg.NewSolver2D(part, sink)
		rhs := make([]float64, n*n)
		for i := range rhs {
			rhs[i] = float64(i%9) - 4
		}
		s.SetB(rhs)
		_, err = s.Solve(cg.Config{MaxIters: 5})
		return err
	case "fft":
		logn := 12
		for s := scale; s > 1; s /= 2 {
			logn++
		}
		f, err := fft.New(fft.Config{LogN: logn, P: 4, InternalRadix: 8}, sink)
		if err != nil {
			return err
		}
		x := make([]complex128, 1<<logn)
		for i := range x {
			x[i] = complex(float64(i%13)-6, float64(i%7)-3)
		}
		f.SetInput(x)
		return f.Run()
	case "barneshut":
		bodies := barneshut.Plummer(256*scale, 42)
		sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
			Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
		}, sink)
		if err != nil {
			return err
		}
		for s := 0; s < 4; s++ {
			if _, err := sim.Step(); err != nil {
				return err
			}
		}
		return nil
	case "volrend":
		edge := 48 * scale
		vol := volrend.SyntheticHead(edge, edge, edge*7/8)
		ren, err := volrend.NewRenderer(vol, volrend.Config{
			ImageW: edge * 3 / 2, ImageH: edge * 3 / 2, P: 4,
		}, sink)
		if err != nil {
			return err
		}
		for f := 0; f < 3; f++ {
			if _, err := ren.RenderFrame(0.04 * float64(f)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown app %q", app)
	}
}

// info summarizes a trace file.
func info(args []string) error {
	if len(args) != 1 {
		return usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	type peStat struct{ reads, writes, bytes uint64 }
	stats := map[int]*peStat{}
	epochs := 0
	tally := func(r trace.Ref) {
		s := stats[r.PE]
		if s == nil {
			s = &peStat{}
			stats[r.PE] = s
		}
		if r.Kind == trace.Read {
			s.reads++
		} else {
			s.writes++
		}
		s.bytes += uint64(r.Size)
	}
	n, err := trace.Replay(f, epochCounter{tally, &epochs})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d references, %d epochs\n", args[0], n, epochs)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PE\treads\twrites\tbytes")
	for pe := 0; pe < 1024; pe++ {
		s, ok := stats[pe]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\n", pe, s.reads, s.writes,
			workingset.FormatBytes(s.bytes))
	}
	return tw.Flush()
}

// epochCounter counts epoch markers while forwarding refs. It accepts the
// replayer's blocks natively so the tally loop pays one dispatch per block.
type epochCounter struct {
	fn     trace.Func
	epochs *int
}

func (e epochCounter) Ref(r trace.Ref) { e.fn(r) }

func (e epochCounter) Refs(block []trace.Ref) {
	for _, r := range block {
		e.fn(r)
	}
}

func (e epochCounter) BeginEpoch(_ int) { *e.epochs++ }

// analyze replays a trace into a working-set profiler for one processor.
func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	pe := fs.Int("pe", 1, "processor to profile")
	line := fs.Int("line", 8, "cache line size (bytes, power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return usage()
	}
	f, err := os.Open(rest[0])
	if err != nil {
		return err
	}
	defer f.Close()

	prof, err := cache.NewStackProfiler(uint32(*line))
	if err != nil {
		return err
	}
	// The profiler is a trace.BlockConsumer, so the filtered stream flows
	// from the replayer's blocks straight into it — no per-reference
	// closure between the file and the simulator.
	sink := trace.PEFilter{PE: *pe, Next: prof}
	if _, err := trace.Replay(f, sink); err != nil {
		return err
	}
	if prof.Accesses() == 0 {
		return fmt.Errorf("PE %d issued no references in this trace", *pe)
	}

	fmt.Printf("PE %d: %d reads, %d writes (line %d B)\n",
		*pe, prof.Reads(), prof.Writes(), *line)
	curve := workingset.Curve{Label: "trace", Metric: "miss rate"}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cache size\tmiss rate\tread miss rate")
	for _, bytes := range workingset.LogSizes(64, 4<<20, 2) {
		mc := prof.MissesAt(int(bytes / uint64(*line)))
		rate := float64(mc.Misses()) / float64(prof.Accesses())
		rrate := float64(mc.ReadMisses) / float64(prof.Reads())
		curve.Points = append(curve.Points, workingset.Point{CacheBytes: bytes, MissRate: rate})
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\n", workingset.FormatBytes(bytes), rate, rrate)
	}
	tw.Flush()
	for _, k := range workingset.FindKnees(&curve, 1.5, 0.005) {
		fmt.Printf("knee: %s (%.3g -> %.3g)\n",
			workingset.FormatBytes(k.CacheBytes), k.Before, k.After)
	}
	return nil
}
