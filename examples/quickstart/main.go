// Quickstart: measure the working-set hierarchy of your own kernel with
// the public wss API, then regenerate one of the paper's tables.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"wsstudy"
)

// consumer adapts a function to the trace consumer interface.
type consumer func(wss.Ref)

func (f consumer) Ref(r wss.Ref) { f(r) }

func main() {
	// 1. A toy kernel: a tiled relaxation that sweeps each 32x32 tile
	// four times before moving on. Its working set is one tile:
	// 32*32*8 = 8 KB — a cache that holds a tile turns three of every
	// four sweeps into hits.
	prof, err := wss.NewStackProfiler(8)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit := wss.NewEmitter(0, consumer(func(r wss.Ref) {
		prof.Access(r.Addr, r.Size, r.Kind == wss.Read)
	}))
	const n, tile, sweeps = 256, 32, 4
	for bi := 0; bi < n; bi += tile {
		for bj := 0; bj < n; bj += tile {
			for s := 0; s < sweeps; s++ {
				for i := bi; i < bi+tile; i++ {
					for j := bj; j < bj+tile; j++ {
						addr := uint64(i*n+j) * 8
						emit.LoadDW(addr)
						emit.StoreDW(addr)
					}
				}
			}
		}
	}

	// 2. One pass gave us the exact miss rate at EVERY cache size.
	sizes := wss.LogSizes(256, 1<<21, 2)
	curve := wss.ProfileCurve("blocked transpose", prof, sizes,
		float64(prof.Accesses()), false)
	fmt.Println("cache size -> miss rate:")
	for _, p := range curve.Points {
		fmt.Printf("  %10s  %.4f\n", wss.FormatBytes(p.CacheBytes), p.MissRate)
	}
	for _, k := range wss.FindKnees(curve, 2, 0.01) {
		fmt.Printf("knee: fits at %s (rate %.3g -> %.3g)\n",
			wss.FormatBytes(k.CacheBytes), k.Before, k.After)
	}

	// 3. Regenerate a paper artifact through the same API.
	fmt.Println()
	if err := wss.RunAndRender(context.Background(), "table2", wss.Options{Scale: wss.ScaleQuick}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
