// Volume-rendering example: render the synthetic head phantom, write it
// out as a PGM image, and measure the renderer's working sets across
// slowly rotating frames (the paper's Figure 7 setup).
//
// Run with:
//
//	go run ./examples/volume [-size 64] [-image 96] [-p 4] [-o head.pgm]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/memsys"
	"wsstudy/internal/workingset"
)

func main() {
	size := flag.Int("size", 64, "volume edge (voxels)")
	img := flag.Int("image", 96, "image edge (pixels)")
	p := flag.Int("p", 4, "processors")
	out := flag.String("o", "head.pgm", "output image (PGM); empty to skip")
	flag.Parse()

	vol := volrend.SyntheticHead(*size, *size, *size*7/8)
	fmt.Printf("phantom: %dx%dx%d, %.0f%% voxels opaque\n",
		vol.NX, vol.NY, vol.NZ, 100*vol.OpaqueFraction())

	sys := memsys.MustNew(memsys.Config{
		PEs: *p, LineSize: 8, Dist: memsys.Interleaved,
		Profile: true, ProfilePE: 0, WarmupEpochs: 1,
	})
	ren, err := volrend.NewRenderer(vol, volrend.Config{
		ImageW: *img, ImageH: *img, P: *p,
	}, sys)
	if err != nil {
		log.Fatal(err)
	}

	var st volrend.FrameStats
	const frames = 4
	for f := 0; f < frames; f++ {
		if st, err = ren.RenderFrame(0.05 * float64(f)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("last frame: %d rays, %d samples, %d voxel reads, %d early-terminated, %d stolen\n",
		st.Rays, st.Samples, st.VoxelReads, st.EarlyTerminated, st.StolenRays)

	if *out != "" {
		if err := writePGM(*out, ren.Image(), *img, *img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	prof := sys.Profiler(0)
	curve := workingset.Curve{Label: "volrend", Metric: "read miss rate"}
	fmt.Println("\nread miss rate vs cache size (PE 0, frames 2-4):")
	for _, bytes := range workingset.LogSizes(64, 4<<20, 2) {
		rate := float64(prof.MissesAt(int(bytes/8)).ReadMisses) / float64(prof.Reads())
		curve.Points = append(curve.Points, workingset.Point{CacheBytes: bytes, MissRate: rate})
		fmt.Printf("  %10s  %.4f\n", workingset.FormatBytes(bytes), rate)
	}
	h := workingset.FromKnees("volrend", workingset.FindKnees(&curve, 1.6, 0.005))
	fmt.Println()
	fmt.Print(h)
	fmt.Println("paper landmarks: lev1WS ~0.4 KB (15%), lev2WS ~16 KB (2%), lev3WS ~700 KB (0.1%)")
}

// writePGM writes a grayscale image in the portable graymap format.
func writePGM(path string, img []float64, w, h int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", w, h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			v := img[j*w+i]
			if v > 1 {
				v = 1
			}
			fmt.Fprintf(bw, "%d ", int(v*255))
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}
