// Dense-family example: Section 3 claims the LU analysis "applies to a
// wider set of applications", naming QR and Cholesky. This example solves
// the same symmetric positive definite system with all three
// factorizations, verifies they agree, and measures each kernel's
// working-set curve to show the shared two-column / block structure.
//
// Run with:
//
//	go run ./examples/densefamily [-n 96] [-b 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"wsstudy/internal/apps/lu"
	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

func main() {
	n := flag.Int("n", 96, "matrix dimension (block size must divide it)")
	b := flag.Int("b", 8, "block size")
	flag.Parse()

	grid := lu.Grid{PR: 2, PC: 2}

	// One SPD system, one known solution.
	spd := lu.NewBlockMatrix(*n, *b, nil)
	spd.FillRandomSPD(1)
	want := make([]float64, *n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	rhs := spd.MulVec(want)

	// LU path.
	luM := spd.Clone()
	if err := lu.Factor(luM); err != nil {
		log.Fatal(err)
	}
	xLU, err := lu.Solve(luM, grid, rhs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU      : max error %.2e\n", maxErr(xLU, want))

	// Cholesky verifies the factorization identity (its triangular solves
	// are the same substitution kernels LU's are).
	chM := spd.Clone()
	if err := lu.Cholesky(chM); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cholesky: ||L L^T - A||_max %.2e\n", reconstructErr(chM, spd))

	// QR path: A = QR, x = R^{-1} Q^T b via the reflectors.
	dense := lu.NewDense(*n, *n, nil)
	for i := 0; i < *n; i++ {
		for j := 0; j < *n; j++ {
			dense.Set(i, j, spd.At(i, j))
		}
	}
	qr, err := lu.QRFactor(dense, grid, nil)
	if err != nil {
		log.Fatal(err)
	}
	qtb := qr.ApplyQT(rhs)
	xQR := backSolveR(qr.A, qtb)
	fmt.Printf("QR      : max error %.2e\n", maxErr(xQR, want))

	// Working-set curves of the three factorizations (PE 3 profiled).
	fmt.Printf("\nworking-set knees (n=%d, B=%d, P=4):\n", *n, *b)
	measure("LU", func(sink trace.Consumer) error {
		m := spd.Clone()
		_, err := lu.FactorTraced(m, grid, sink)
		return err
	})
	measure("Cholesky", func(sink trace.Consumer) error {
		m := spd.Clone()
		_, err := lu.CholeskyTraced(m, grid, sink)
		return err
	})
	measure("QR", func(sink trace.Consumer) error {
		d := lu.NewDense(*n, *n, nil)
		for i := 0; i < *n; i++ {
			for j := 0; j < *n; j++ {
				d.Set(i, j, spd.At(i, j))
			}
		}
		_, err := lu.QRFactor(d, grid, sink)
		return err
	})
}

func measure(name string, run func(trace.Consumer) error) {
	prof := cache.MustStackProfiler(8)
	sink := trace.PEFilter{PE: 3, Next: trace.Func(func(r trace.Ref) {
		prof.Access(r.Addr, r.Size, r.Kind == trace.Read)
	})}
	if err := run(sink); err != nil {
		log.Fatal(err)
	}
	curve := workingset.Curve{Label: name}
	for _, bytes := range workingset.LogSizes(64, 1<<20, 2) {
		rate := float64(prof.MissesAt(int(bytes/8)).Misses()) / float64(prof.Accesses())
		curve.Points = append(curve.Points, workingset.Point{CacheBytes: bytes, MissRate: rate})
	}
	fmt.Printf("  %-8s:", name)
	for _, k := range workingset.FindKnees(&curve, 1.5, 0.01) {
		fmt.Printf("  %s (%.2f->%.2f)", workingset.FormatBytes(k.CacheBytes), k.Before, k.After)
	}
	fmt.Println()
}

func maxErr(got, want []float64) float64 {
	m := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > m {
			m = d
		}
	}
	return m
}

func reconstructErr(factored, orig *lu.BlockMatrix) float64 {
	recon := factored.MulLLT()
	m := 0.0
	for i := 0; i < orig.N; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(recon.At(i, j) - orig.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}

// backSolveR solves R x = y for upper-triangular R (stored in a Dense).
func backSolveR(r *lu.Dense, y []float64) []float64 {
	n := r.N
	x := append([]float64(nil), y[:n]...)
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= r.At(i, j) * x[j]
		}
		x[i] /= r.At(i, i)
	}
	return x
}
