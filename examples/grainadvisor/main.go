// Grain advisor example: given a machine size, evaluate how each of the
// paper's five application classes would fare — computation-to-
// communication ratio, sustainability band, and load balance — and print
// the desirable node granularity.
//
// Run with:
//
//	go run ./examples/grainadvisor [-p 1024]
package main

import (
	"flag"
	"fmt"

	"wsstudy/internal/grain"
	"wsstudy/internal/machine"
)

func main() {
	p := flag.Int("p", 1024, "processors")
	flag.Parse()

	fmt.Println("reference machines (Section 2.3):")
	for _, m := range []machine.Machine{machine.Paragon(*p), machine.CM5(*p)} {
		fmt.Printf("  %s\n", m)
	}
	fmt.Printf("  bands: <15 FLOPs/word %s; 15-75 %s; >75 %s\n\n",
		machine.VeryHard, machine.Sustainable, machine.Easy)

	fmt.Printf("prototypical 1 GB problems on %d processors:\n", *p)
	scenarios := []grain.Scenario{
		grain.LU(10000, 16, *p),
		grain.CG2D(4000, *p),
		grain.CG3D(225, *p),
		grain.FFT(26, *p),
		grain.BarnesHut(4.5e6, 1.0, *p),
		grain.VolumeRendering(600, *p),
	}
	for _, s := range scenarios {
		flag := ""
		if !s.Healthy() {
			flag = "  <-- strained"
		}
		fmt.Printf("  %s%s\n", s.Describe(), flag)
	}

	fmt.Println("\nfull advisory (64 / 1024 / 16K processors):")
	for _, a := range grain.AdviseAll() {
		fmt.Printf("\n%s — desirable grain %s\n  limiting: %s\n",
			a.App, a.DesirableGrain, a.Limiting)
		for _, s := range a.Scenarios {
			fmt.Printf("    %s\n", s.Describe())
		}
	}
}
