// N-body example: run a Barnes-Hut galaxy simulation, check its physics,
// then attach the multiprocessor simulator and measure the per-processor
// working-set hierarchy the paper's Figure 6 describes.
//
// Run with:
//
//	go run ./examples/nbody [-n 512] [-theta 1.0] [-p 4] [-steps 6]
package main

import (
	"flag"
	"fmt"
	"log"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/memsys"
	"wsstudy/internal/workingset"
)

func main() {
	n := flag.Int("n", 512, "particles")
	theta := flag.Float64("theta", 1.0, "opening criterion")
	p := flag.Int("p", 4, "processors")
	steps := flag.Int("steps", 6, "time steps (first 2 are warm-up)")
	flag.Parse()

	cfg := barneshut.Config{
		Theta: *theta, Quadrupole: true, Eps: 0.05, DT: 0.003, P: *p,
	}

	// Physics check: untraced run, energy drift.
	bodies := barneshut.Plummer(*n, 1)
	e0 := barneshut.TotalEnergy(bodies, cfg.Eps)
	sim, err := barneshut.NewSimulation(bodies, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	var last barneshut.StepStats
	for s := 0; s < *steps; s++ {
		if last, err = sim.Step(); err != nil {
			log.Fatal(err)
		}
	}
	e1 := barneshut.TotalEnergy(sim.Bodies(), cfg.Eps)
	fmt.Printf("galaxy: n=%d theta=%.2f p=%d\n", *n, *theta, *p)
	fmt.Printf("  energy drift over %d steps: %+.3f%%\n", *steps, 100*(e1-e0)/(-e0))
	fmt.Printf("  interactions/body: %.0f   tree depth: %d   imbalance: %.2f\n",
		last.InteractionsPerBody(*n), last.Depth, last.Imbalance)

	// Working-set measurement: same run, traced through the simulated
	// multiprocessor, profiling processor 1 with 2 warm-up steps.
	sys := memsys.MustNew(memsys.Config{
		PEs: *p, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: 2,
	})
	sim2, err := barneshut.NewSimulation(barneshut.Plummer(*n, 1), cfg, sys)
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < *steps; s++ {
		if _, err := sim2.Step(); err != nil {
			log.Fatal(err)
		}
	}
	prof := sys.Profiler(1)
	fmt.Printf("\nper-processor read miss rate vs cache size (PE 1):\n")
	curve := workingset.Curve{Label: "barnes-hut", Metric: "read miss rate"}
	for _, bytes := range workingset.LogSizes(64, 2<<20, 2) {
		mc := prof.MissesAt(int(bytes / 8))
		rate := float64(mc.ReadMisses) / float64(prof.Reads())
		curve.Points = append(curve.Points, workingset.Point{CacheBytes: bytes, MissRate: rate})
		fmt.Printf("  %10s  %.4f\n", workingset.FormatBytes(bytes), rate)
	}
	h := workingset.FromKnees("Barnes-Hut", workingset.FindKnees(&curve, 1.35, 0.005))
	fmt.Println()
	fmt.Print(h)
	if imp, ok := h.Important(4); ok {
		fmt.Printf("important working set: %s at %s (paper: lev2WS, ~20 KB for n=1024)\n",
			imp.Name, workingset.FormatBytes(imp.SizeBytes))
	}
}
