// Package wss (working-set study) is the public face of this library: a
// full reproduction of Rothberg, Singh & Gupta, "Working Sets, Cache
// Sizes, and Node Granularity Issues for Large-Scale Multiprocessors"
// (ISCA 1993).
//
// The package re-exports four layers:
//
//   - Experiments: every figure and table of the paper as a runnable
//     artifact (Experiments, Run, RunAndRender).
//   - Serving: the content-addressed result store (NewStore) and the
//     stable v1 HTTP API over it (NewServer) — identical requests never
//     recompute, concurrent ones coalesce, overload answers 429.
//   - The measurement toolkit: memory-reference traces (delivered in
//     blocks, with optional parallel fan-out to independent simulators),
//     the single-pass stack-distance profiler, exact LRU / set-associative
//     caches, the write-invalidate multiprocessor simulator, and knee
//     detection.
//   - The application kernels and analytic models live under
//     internal/apps/...; examples in examples/ show how they compose.
package wss

import (
	"context"
	"fmt"
	"io"
	"time"

	"wsstudy/internal/cache"
	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/cost"
	"wsstudy/internal/load"
	"wsstudy/internal/machine"
	"wsstudy/internal/memsys"
	"wsstudy/internal/obs"
	"wsstudy/internal/serve"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// Experiment layer.

type (
	// Experiment is one reproducible artifact (figure or table).
	Experiment = core.Experiment
	// Options tunes a run; set Scale to ScaleQuick for second-scale
	// problem sizes and Timeout for a per-run deadline. Cancellation and
	// observability ride the context passed to Run.
	Options = core.Options
	// Scale selects the simulated problem sizes of a run; the zero value
	// is the full, paper-scale configuration.
	Scale = core.Scale
	// Report is an experiment's structured output.
	Report = core.Report
	// Figure is a set of miss-rate curves.
	Figure = core.Figure
	// Table is a titled text grid.
	Table = core.Table

	// SuiteOptions tunes RunSuite (workers, retries, per-run options).
	SuiteOptions = core.SuiteOptions
	// SuiteResult is one experiment's outcome within a suite run.
	SuiteResult = core.SuiteResult
	// SuiteReport aggregates a suite run: successes plus typed failures.
	SuiteReport = core.SuiteReport
	// DeadlineError reports a timed-out experiment; its Partial field
	// carries any Report data assembled before the deadline.
	DeadlineError = core.DeadlineError
	// PanicError reports a panic recovered from an experiment, with the
	// captured stack.
	PanicError = core.PanicError
	// CorruptError reports a deterministic binary-trace integrity failure
	// with its byte offset and the records decoded before it.
	CorruptError = trace.CorruptError

	// Recorder collects run-scope metrics: attach one to a run's context
	// with WithRecorder and every instrumented pipeline stage (trace
	// delivery, caches, directory, memory system, suite scheduling) counts
	// into it. Safe for concurrent use; a nil Recorder disables all
	// instrumentation at negligible cost.
	Recorder = obs.Recorder
	// Metrics is an immutable snapshot of a Recorder: counters, gauges,
	// duration histograms and labels. Reports carry one per run.
	Metrics = obs.Metrics
	// Progress periodically renders a one-line live status (refs
	// processed, throughput, experiments done, ETA) from a Recorder.
	Progress = obs.Progress
)

// Scales.
const (
	// ScaleFull runs paper-scale or largest-feasible configurations.
	ScaleFull = core.ScaleFull
	// ScaleQuick shrinks simulated problems so a suite runs in seconds.
	ScaleQuick = core.ScaleQuick
)

// Typed failure sentinels, for errors.Is classification.
var (
	// ErrDeadline matches experiments that exceeded their deadline.
	ErrDeadline = core.ErrDeadline
	// ErrCorrupt matches corrupt or truncated binary traces.
	ErrCorrupt = trace.ErrCorrupt
)

// Experiments lists every artifact in paper order.
func Experiments() []Experiment { return core.Registry() }

// Run executes the experiment with the given id ("fig2", "fig4", "fig5",
// "fig6", "fig6dm", "fig7", "table1", "table2", "machines", "grain",
// "scalingbh", "cost"). The run is hardened — panics are recovered,
// Options.Timeout maps to ErrDeadline — and stops cooperatively when ctx
// is cancelled. When ctx carries a Recorder (WithRecorder), the returned
// Report includes a Metrics snapshot of the run.
func Run(ctx context.Context, id string, opt Options) (*Report, error) {
	e, ok := core.Find(id)
	if !ok {
		return nil, fmt.Errorf("wss: unknown experiment %q", id)
	}
	return core.Execute(ctx, e, opt)
}

// RunSuite executes experiments in a bounded worker pool with panic
// isolation, per-experiment deadlines, and retry-with-backoff for failures
// marked transient — degrading gracefully: every successful Report is
// returned alongside typed errors for the failures.
func RunSuite(ctx context.Context, experiments []Experiment, opt SuiteOptions) *SuiteReport {
	return core.RunSuite(ctx, experiments, opt)
}

// RunAndRender executes an experiment and writes its text rendering to w.
// Use Report.Render with FormatCSV or FormatJSON for the other forms.
func RunAndRender(ctx context.Context, id string, opt Options, w io.Writer) error {
	rep, err := Run(ctx, id, opt)
	if err != nil {
		return err
	}
	return rep.Render(w, core.FormatText)
}

// Serving results.

type (
	// Format selects a Report rendering: FormatText, FormatCSV, or
	// FormatJSON (the frozen ReportV1 schema).
	Format = core.Format
	// ReportV1 is the frozen v1 JSON wire form of a Report
	// (schema_version, explicit field names), shared by the HTTP API,
	// the CLI and the result store's persistence.
	ReportV1 = core.ReportV1
	// ResultStore is the content-addressed experiment-result store:
	// singleflight computation dedup, bounded compute slots, LRU +
	// max-bytes eviction, optional disk persistence.
	ResultStore = store.Store
	// StoreConfig tunes a ResultStore.
	StoreConfig = store.Config
	// StoreKey is a result's content address: SHA-256 of the experiment
	// id, a frozen key-schema tag and the canonical Options encoding.
	// It is deliberately decoupled from ReportSchemaVersion so additive
	// wire-schema bumps do not orphan persisted results.
	StoreKey = store.Key
	// StoreResult is one stored outcome: the Report plus its rendered
	// v1 JSON.
	StoreResult = store.Result
	// Server is the stable v1 HTTP API over a ResultStore
	// (/v1/experiments, /v1/experiments/{id}/report, /v1/suite), with
	// ETag revalidation, 429 backpressure and graceful shutdown.
	Server = serve.Server
	// ServerConfig tunes a Server.
	ServerConfig = serve.Config
)

// Report format selectors.
const (
	FormatText = core.FormatText
	FormatCSV  = core.FormatCSV
	FormatJSON = core.FormatJSON
)

// ReportSchemaVersion is the current v1 wire schema version stamped
// into rendered JSON reports; MinReportSchemaVersion is the oldest
// persisted version the store will still revive (older versions lack
// the optional sampling block, which revives as null).
const (
	ReportSchemaVersion    = core.ReportSchemaVersion
	MinReportSchemaVersion = core.MinReportSchemaVersion
)

// Backpressure and lifecycle sentinels of the result store.
var (
	// ErrBusy reports saturated compute slots; shed load and retry.
	ErrBusy = store.ErrBusy
	// ErrStoreClosed reports a lookup against a closed store.
	ErrStoreClosed = store.ErrClosed
)

// NewStore builds a content-addressed result store.
func NewStore(cfg StoreConfig) (*ResultStore, error) { return store.New(cfg) }

// NewServer builds the v1 HTTP server over cfg.Store.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// ResultKey derives the content address the store, CLI and tests share
// for (experiment id, options).
func ResultKey(id string, opt Options) StoreKey { return store.KeyFor(id, opt) }

// Parameter-lattice sweeps.

type (
	// SweepSpec is a lattice request: one experiment evaluated at the
	// cartesian product of Options-axis values. Equivalent specs (any
	// axis/value order) canonicalize to the same sweep id.
	SweepSpec = sweep.Spec
	// SweepAxis is one swept dimension: a canonical Options field
	// ("scale", "cache", "line", "assoc", "pes", "problem") and its values.
	SweepAxis = sweep.Axis
	// SweepEngine enumerates a lattice's cells over a ResultStore and
	// checkpoints each landed cell; a re-submitted sweep revives cells
	// instead of recomputing them. Served as POST/GET /v1/sweeps.
	SweepEngine = sweep.Engine
	// SweepConfig tunes a SweepEngine.
	SweepConfig = sweep.Config
	// SweepStatus is a sweep's incremental aggregate.
	SweepStatus = sweep.Status
	// GrainAdvice is the §8 cost answer computed from a finished sweep:
	// best node granularity per dollar over the measured lattice.
	GrainAdvice = cost.GrainAdvice
)

// NewSweepEngine builds a lattice-sweep engine over an existing store.
func NewSweepEngine(cfg SweepConfig) (*SweepEngine, error) { return sweep.NewEngine(cfg) }

// Horizontal serving tier.

type (
	// Cluster is one node's view of the consistent-hash serving tier:
	// result keys map to ring owners, local misses peer-fill from the
	// owner before computing, and a background crawler precomputes the
	// cells this node owns. Wire it into a store via SetPeerFill, or let
	// StartNode do the full assembly.
	Cluster = cluster.Cluster
	// ClusterConfig assembles a Cluster from a static peer map.
	ClusterConfig = cluster.Config
	// ClusterRing is the immutable consistent-hash ring: ownership is a
	// pure function of the member set, so every node that is handed the
	// same peer list computes the same assignment.
	ClusterRing = cluster.Ring
	// ClusterHealth is the ring + per-peer status block embedded in
	// /healthz on cluster members.
	ClusterHealth = cluster.Health
	// CrawlSpec configures the background lattice-precompute crawler.
	CrawlSpec = cluster.CrawlSpec
	// Node is one fully assembled serving node: store, sweep engine,
	// optional cluster membership and crawler, HTTP server.
	Node = serve.Node
	// NodeConfig assembles a Node end to end (StartNode).
	NodeConfig = serve.NodeConfig
	// LoadConfig is one open-loop load run against a serving tier.
	LoadConfig = load.Config
	// LoadResult is a load run's verdict: sustained served RPS, clean
	// 429 shedding, latency quantiles, and a zero-wrong-responses gate.
	LoadResult = load.Result
)

// NewCluster builds a cluster member from a static peer map.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewRing builds a consistent-hash ring over member ids (vnodes <= 0
// uses the default of 128 points per member).
func NewRing(ids []string, vnodes int) (*ClusterRing, error) { return cluster.NewRing(ids, vnodes) }

// StartNode boots one serving node — standalone, or a cluster member
// when NodeID and PeerAddrs are set.
func StartNode(cfg NodeConfig) (*Node, error) { return serve.StartNode(cfg) }

// RunLoad executes one open-loop load run (the engine behind cmd/wsload).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) { return load.Run(ctx, cfg) }

// Observability.

// NewRecorder builds an empty metrics Recorder.
func NewRecorder() *Recorder { return obs.New() }

// WithRecorder attaches rec to ctx; every instrumented stage of a run
// under the returned context records into it.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return obs.With(ctx, rec)
}

// RecorderFrom returns the Recorder attached to ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder { return obs.From(ctx) }

// StartProgress begins rendering one-line live status updates from rec to
// w every interval (1s when zero) until Stop is called on the returned
// Progress. A nil rec returns a no-op Progress.
func StartProgress(rec *Recorder, w io.Writer, interval time.Duration) *Progress {
	return obs.StartProgress(rec, w, interval)
}

// Measurement toolkit.

type (
	// Ref is one memory reference in the simulated shared address space.
	Ref = trace.Ref
	// Consumer receives a reference stream.
	Consumer = trace.Consumer
	// BlockConsumer receives the stream a block at a time; consumers that
	// implement it skip per-reference dispatch. Any plain Consumer still
	// works behind a batched producer via the fallback in trace.Deliver.
	BlockConsumer = trace.BlockConsumer
	// Emitter issues references for one processor.
	Emitter = trace.Emitter
	// Batcher buffers any number of emitters into fixed-capacity blocks
	// while preserving the global emission order and epoch placement.
	Batcher = trace.Batcher
	// Fanout drives several independent consumers concurrently, one
	// goroutine each; Close is the barrier before reading their results.
	Fanout = trace.Fanout
	// Tee drives several consumers serially; required when they share state.
	Tee = trace.Tee
	// Profiler is the miss-rate-curve profiler contract satisfied by
	// both the exact StackProfiler and the sampled variant; consumers
	// that only read curves should accept this interface.
	Profiler = cache.Profiler
	// StackProfiler yields exact LRU miss counts at every cache size in
	// one trace pass.
	StackProfiler = cache.StackProfiler
	// SampledStackProfiler estimates the same curves from a spatially
	// hashed 1/R subset of line addresses, trading bounded error for a
	// ~R-fold reduction in profiling work.
	SampledStackProfiler = cache.SampledStackProfiler
	// LRU is an exact fully associative LRU cache.
	LRU = cache.LRU
	// SetAssoc is a set-associative (or direct-mapped) cache.
	SetAssoc = cache.SetAssoc
	// Bank is a per-size bank of exact LRU caches.
	Bank = cache.Bank
	// System is the cache-coherent multiprocessor simulator.
	System = memsys.System
	// SystemConfig parameterizes a System.
	SystemConfig = memsys.Config
	// Curve is a miss-rate-versus-cache-size curve.
	Curve = workingset.Curve
	// Point is one curve sample.
	Point = workingset.Point
	// Knee is a sharp drop in a curve.
	Knee = workingset.Knee
	// Hierarchy is a labelled working-set hierarchy.
	Hierarchy = workingset.Hierarchy
	// Machine is a §2.3-style machine model.
	Machine = machine.Machine
)

// Trace kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// NewEmitter builds an emitter issuing as processor pe into sink.
func NewEmitter(pe int, sink Consumer) *Emitter { return trace.NewEmitter(pe, sink) }

// NewBatcher wraps sink with a block buffer; emitters created from the
// Batcher deliver in DefaultBlockSize blocks. A nil sink yields a nil
// Batcher whose emitters drop every reference.
func NewBatcher(sink Consumer) *Batcher { return trace.NewBatcher(sink) }

// NewFanout runs each consumer on its own goroutine fed by a bounded
// channel. The consumers must be independent (no shared state); use Tee
// otherwise. Call Close before reading results from the consumers.
func NewFanout(consumers ...Consumer) (*Fanout, error) { return trace.NewFanout(consumers...) }

// NewStackProfiler builds a profiler with the given line size in bytes
// (a power of two; invalid sizes return an error).
func NewStackProfiler(lineSize uint32) (*StackProfiler, error) {
	return cache.NewStackProfiler(lineSize)
}

// NewProfiler builds a stack-distance profiler at the given sampling
// rate: rate 1 returns the exact StackProfiler, a power-of-two rate
// R >= 2 returns a SampledStackProfiler tracking 1/R of line space.
func NewProfiler(lineSize uint32, sampleRate int) (Profiler, error) {
	return cache.NewProfiler(lineSize, sampleRate)
}

// NewLRU builds a fully associative LRU cache of capacityLines lines.
// Invalid configurations return an error.
func NewLRU(capacityLines int, lineSize uint32) (*LRU, error) {
	return cache.NewLRU(capacityLines, lineSize)
}

// NewDirectMapped builds a direct-mapped cache. Invalid configurations
// return an error.
func NewDirectMapped(capacityLines int, lineSize uint32) (*SetAssoc, error) {
	return cache.NewDirectMapped(capacityLines, lineSize)
}

// NewSystem builds the multiprocessor simulator.
func NewSystem(cfg SystemConfig) (*System, error) { return memsys.New(cfg) }

// LogSizes returns a log-spaced cache-size grid in bytes.
func LogSizes(lo, hi uint64, pointsPerOctave int) []uint64 {
	return workingset.LogSizes(lo, hi, pointsPerOctave)
}

// FindKnees locates the working-set knees of a curve.
func FindKnees(c *Curve, minDrop, minAbs float64) []Knee {
	return workingset.FindKnees(c, minDrop, minAbs)
}

// FormatBytes renders a size the way the paper writes them ("2.2 KB").
func FormatBytes(n uint64) string { return workingset.FormatBytes(n) }

// Paragon and CM5 return the Section 2.3 machine models.
func Paragon(nodes int) Machine { return machine.Paragon(nodes) }

// CM5 returns the Thinking Machines CM-5 model.
func CM5(nodes int) Machine { return machine.CM5(nodes) }

// ProfileCurve extracts a miss-rate curve from a profiler: misses at each
// size divided by denom (e.g. FLOPs or the profiler's read count); with
// readOnly set, only read misses are counted (the paper's metric for the
// irregular applications). Works with exact and sampled profilers alike.
func ProfileCurve(label string, p Profiler, sizes []uint64, denom float64, readOnly bool) *Curve {
	caps := workingset.BytesToLines(sizes, p.LineSize())
	counts := p.Curve(caps)
	c := &Curve{Label: label, Metric: "misses"}
	for _, mc := range counts {
		v := float64(mc.Misses())
		if readOnly {
			v = float64(mc.ReadMisses)
		}
		c.Points = append(c.Points, Point{
			CacheBytes: uint64(mc.CapacityLines) * uint64(p.LineSize()),
			MissRate:   v / denom,
		})
	}
	return c
}
