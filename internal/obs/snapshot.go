package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Shared metric names. Stages that are wired together across packages
// (the trace guard feeding the progress reporter, the suite feeding the
// ETA estimate) agree on these; stage-local metrics use their own
// package-prefixed names ("coherence.invalidations", "trace.fanout.stalls")
// declared where they are incremented.
const (
	// RefsDelivered counts references through the context trace guard —
	// the run's primary rate signal.
	RefsDelivered = "trace.refs"
	// BlocksDelivered counts blocks through the context trace guard.
	BlocksDelivered = "trace.blocks"
	// EpochsDelivered counts epoch boundaries through the guard.
	EpochsDelivered = "trace.epochs"

	// SuiteTotal / SuiteDone / SuiteFailed count experiments scheduled,
	// finished, and failed; SuiteRetries counts transient-failure retries.
	SuiteTotal   = "suite.experiments.total"
	SuiteDone    = "suite.experiments.done"
	SuiteFailed  = "suite.experiments.failed"
	SuiteRetries = "suite.retries"
	// WorkersBusy gauges instantaneous suite-worker occupancy (its Max is
	// the high-water mark).
	WorkersBusy = "suite.workers.busy"
	// ExperimentWall is the per-experiment wall-time histogram.
	ExperimentWall = "experiment.wall"
	// LabelExperiment labels the most recently started experiment id.
	LabelExperiment = "experiment.current"

	// StoreHits / StoreMisses count result-store lookups served from
	// memory vs. lookups that had to compute (or read from disk).
	StoreHits   = "store.hits"
	StoreMisses = "store.misses"
	// StoreCoalesced counts lookups that joined an in-flight computation
	// of the same key instead of starting their own (singleflight).
	StoreCoalesced = "store.singleflight.coalesced"
	// StoreEvictions counts entries dropped by the LRU / max-bytes policy.
	StoreEvictions = "store.evictions"
	// StoreDiskHits counts misses satisfied by the persisted rendering
	// on disk, skipping the compute entirely.
	StoreDiskHits = "store.disk.hits"
	// StoreQueueDepth gauges computations waiting for a compute slot
	// (its Max is the backlog high-water mark).
	StoreQueueDepth = "store.queue.depth"
	// StoreBytes gauges the store's resident rendered-report bytes.
	StoreBytes = "store.bytes"
	// StoreComputeWall is the per-computation wall-time histogram
	// (slot wait excluded).
	StoreComputeWall = "store.compute.wall"

	// CaptureHits / CaptureMisses count kernel-trace capture lookups
	// answered by replaying a recorded stream vs. lookups that had to run
	// the kernel (and record it). CaptureReplayedRefs counts references
	// delivered from recordings — kernel work the suite did not repeat —
	// and CaptureBytes counts encoded snapshot bytes committed.
	// CaptureRerecords counts replays that failed before delivering
	// anything and safely fell through to re-recording.
	CaptureHits         = "capture.hits"
	CaptureMisses       = "capture.misses"
	CaptureReplayedRefs = "capture.refs.replayed"
	CaptureBytes        = "capture.bytes"
	CaptureRerecords    = "capture.rerecords"

	// FaultTriggeredPrefix prefixes per-failpoint fire counters:
	// "fault.triggered.<failpoint>" counts how often that injection site
	// actually fired (internal/fault increments it on the run's Recorder
	// when the site has one, else on the process recorder).
	FaultTriggeredPrefix = "fault.triggered."
	// CoreRetryAttempts counts re-attempts made by core.RetryPolicy
	// across every caller (suite runner, store compute).
	CoreRetryAttempts = "core.retry.attempts"
	// SuiteRevived counts suite cells revived from a checkpoint journal
	// instead of recomputed on a resumed run.
	SuiteRevived = "suite.cells.revived"
	// SuiteJournalErrors counts checkpoint-journal append failures the
	// suite survived (the cell still completes; only its checkpoint is
	// lost).
	SuiteJournalErrors = "suite.journal.errors"
	// StoreDegraded counts subsystem degradations in the result store
	// (disk persistence or kernel-trace capture flipping to
	// compute-without-cache).
	StoreDegraded = "store.degraded"
	// StoreQuarantined counts corrupt or schema-invalid persisted
	// reports renamed to <name>.quarantine during disk revival.
	StoreQuarantined = "store.quarantined"

	// SweepSubmitted counts lattice sweeps accepted by the sweep engine
	// (idempotent re-submissions of a running or clean sweep do not
	// count). SweepCellsTotal counts cells scheduled across all sweeps;
	// SweepCellsRevived the cells answered from the sweep journal or a
	// persisted store result with zero recompute, SweepCellsComputed the
	// cells that actually ran an experiment, and SweepCellsFailed the
	// cells whose compute failed (a re-submission retries only those).
	SweepSubmitted     = "sweep.submitted"
	SweepCellsTotal    = "sweep.cells.total"
	SweepCellsRevived  = "sweep.cells.revived"
	SweepCellsComputed = "sweep.cells.computed"
	SweepCellsFailed   = "sweep.cells.failed"
	// SweepJournalErrors counts sweep-checkpoint append failures the
	// sweep survived (the cell still lands; only its checkpoint is
	// lost, so a future resume revives it from the store instead).
	SweepJournalErrors = "sweep.journal.errors"

	// ServeRequests counts v1 API requests; ServeBusy counts the subset
	// rejected with 429 under compute-slot saturation, ServeNotModified
	// the conditional requests answered 304, and ServeErrors the 5xx
	// responses. ServeRequestWall is the request-latency histogram.
	ServeRequests    = "serve.requests"
	ServeBusy        = "serve.busy"
	ServeNotModified = "serve.not_modified"
	ServeErrors      = "serve.errors"
	ServeRequestWall = "serve.request.wall"
	// ServeDeprecated counts requests that used a deprecated parameter
	// (the bare ?scale= alias), so the alias's removal can be
	// data-driven.
	ServeDeprecated = "serve.deprecated"

	// ClusterPeerHits counts local store misses answered by fetching the
	// finished rendering from the key's ring owner — computations this
	// node did not run. ClusterPeerMisses counts peer-fill attempts that
	// came back empty (owner still computing past the wait budget, owner
	// shedding load) and fell through to local compute; ClusterPeerSkipped
	// counts fills skipped without any network traffic (peer degraded and
	// inside its cooldown); ClusterPeerDegraded counts peer degradation
	// incidents (transitions only, mirroring store.degraded); and
	// ClusterPeerCorrupt counts owner responses rejected by the digest or
	// schema check — never served, never cached.
	ClusterPeerHits     = "cluster.peer.hits"
	ClusterPeerMisses   = "cluster.peer.misses"
	ClusterPeerSkipped  = "cluster.peer.skipped"
	ClusterPeerDegraded = "cluster.peer.degraded"
	ClusterPeerCorrupt  = "cluster.peer.corrupt"
	// ClusterPeerFetchWall is the wall-time histogram of peer-fill
	// attempts, successful or not (the price of asking before computing).
	ClusterPeerFetchWall = "cluster.peer.fetch.wall"
	// ClusterInternalRequests counts /v1/internal/reports/{key} requests
	// served to peers; ClusterInternalComputing the subset answered 202
	// because the owner was still computing the key.
	ClusterInternalRequests  = "cluster.internal.requests"
	ClusterInternalComputing = "cluster.internal.computing"
	// ClusterCrawlSteps counts precompute-crawler steps taken (a step
	// considers one owned lattice cell); ClusterCrawlWarmed the steps
	// that actually computed-or-revived a cold cell into the local store;
	// ClusterCrawlErrors the steps that failed (injected faults included)
	// and were skipped without stopping the crawler.
	ClusterCrawlSteps  = "cluster.crawl.steps"
	ClusterCrawlWarmed = "cluster.crawl.warmed"
	ClusterCrawlErrors = "cluster.crawl.errors"
)

// GaugeValue is a gauge's level and high-water mark at snapshot time.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// DurationStats summarizes a duration histogram. Durations encode as
// integer nanoseconds in JSON. Buckets[0] counts sub-microsecond
// observations and Buckets[i] counts [2^(i-1), 2^i) microseconds; the
// slice is trimmed after the last non-empty bucket.
type DurationStats struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets []uint64      `json:"buckets,omitempty"`
}

// Mean is the average observed duration (0 when empty).
func (d DurationStats) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / time.Duration(d.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the power-of-two
// bucket counts. The estimate is conservative: it returns the upper edge
// of the bucket holding the q-th observation, clamped to [Min, Max], so
// a reported p99 is never below the true one by more than the bucket
// resolution (a factor of two). With no observations it returns 0.
func (d DurationStats) Quantile(q float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation we want.
	rank := uint64(q*float64(d.Count-1)) + 1
	var seen uint64
	for i, n := range d.Buckets {
		seen += n
		if seen >= rank {
			// Bucket 0 is sub-microsecond; bucket i covers
			// [2^(i-1), 2^i) microseconds — report the upper edge.
			upper := time.Microsecond
			if i > 0 {
				upper = time.Duration(1<<uint(i)) * time.Microsecond
			}
			if upper < d.Min {
				upper = d.Min
			}
			if upper > d.Max {
				upper = d.Max
			}
			return upper
		}
	}
	return d.Max
}

// Metrics is an immutable snapshot of a Recorder, the form metrics travel
// in: embedded in a core.Report, rendered by the text and CSV formatters,
// or dumped as JSON next to suite output.
type Metrics struct {
	Counters  map[string]uint64        `json:"counters,omitempty"`
	Gauges    map[string]GaugeValue    `json:"gauges,omitempty"`
	Durations map[string]DurationStats `json:"durations,omitempty"`
	Labels    map[string]string        `json:"labels,omitempty"`
}

// Empty reports whether the snapshot recorded nothing.
func (m Metrics) Empty() bool {
	return len(m.Counters) == 0 && len(m.Gauges) == 0 &&
		len(m.Durations) == 0 && len(m.Labels) == 0
}

// Counter reads a counter by name (0 when absent).
func (m Metrics) Counter(name string) uint64 { return m.Counters[name] }

// merge folds o into m in place, allocating maps as needed: counters add,
// gauge levels add with the high-water marks maxed, histograms combine,
// and o's labels win.
func (m *Metrics) merge(o Metrics) {
	for name, v := range o.Counters {
		if m.Counters == nil {
			m.Counters = make(map[string]uint64)
		}
		m.Counters[name] += v
	}
	for name, gv := range o.Gauges {
		if m.Gauges == nil {
			m.Gauges = make(map[string]GaugeValue)
		}
		cur := m.Gauges[name]
		cur.Value += gv.Value
		if gv.Max > cur.Max {
			cur.Max = gv.Max
		}
		m.Gauges[name] = cur
	}
	for name, ds := range o.Durations {
		if m.Durations == nil {
			m.Durations = make(map[string]DurationStats)
		}
		cur, ok := m.Durations[name]
		if !ok {
			cur = DurationStats{Min: ds.Min}
		}
		if ds.Count > 0 && (cur.Count == 0 || ds.Min < cur.Min) {
			cur.Min = ds.Min
		}
		if ds.Max > cur.Max {
			cur.Max = ds.Max
		}
		cur.Count += ds.Count
		cur.Sum += ds.Sum
		for i, n := range ds.Buckets {
			for len(cur.Buckets) <= i {
				cur.Buckets = append(cur.Buckets, 0)
			}
			cur.Buckets[i] += n
		}
		m.Durations[name] = cur
	}
	for k, v := range o.Labels {
		if m.Labels == nil {
			m.Labels = make(map[string]string)
		}
		m.Labels[k] = v
	}
}

// Render writes the snapshot as sorted, aligned text — the form the report
// formatter embeds under a "metrics" heading.
func (m Metrics) Render(w io.Writer) {
	for _, name := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "  %-36s %d\n", name, m.Counters[name])
	}
	for _, name := range sortedKeys(m.Gauges) {
		gv := m.Gauges[name]
		fmt.Fprintf(w, "  %-36s %d (max %d)\n", name, gv.Value, gv.Max)
	}
	for _, name := range sortedKeys(m.Durations) {
		ds := m.Durations[name]
		fmt.Fprintf(w, "  %-36s n=%d mean=%s min=%s max=%s\n",
			name, ds.Count, ds.Mean().Round(time.Microsecond),
			ds.Min.Round(time.Microsecond), ds.Max.Round(time.Microsecond))
	}
	for _, k := range sortedKeys(m.Labels) {
		fmt.Fprintf(w, "  %-36s %s\n", k, m.Labels[k])
	}
}

// WriteJSON writes the snapshot as indented JSON, the machine-readable
// dump emitted next to suite output.
func (m Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
