package obs

import (
	"testing"
	"time"
)

// TestDurationStatsQuantile: quantiles read the power-of-two bucket
// upper edges, clamped into [Min, Max], so a reported p99 is always a
// real (if coarse) upper bound on the 99th-percentile observation.
func TestDurationStatsQuantile(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var ds DurationStats
		if got := ds.Quantile(0.99); got != 0 {
			t.Fatalf("Quantile on empty stats = %v, want 0", got)
		}
	})

	t.Run("uniform spread", func(t *testing.T) {
		rec := New()
		h := rec.Histogram("q")
		// 90 fast observations and 10 slow ones: p50 must land in the
		// fast bucket, p99 in the slow one.
		for i := 0; i < 90; i++ {
			h.Observe(100 * time.Microsecond) // bucket [64µs, 128µs)
		}
		for i := 0; i < 10; i++ {
			h.Observe(50 * time.Millisecond) // bucket [32.768ms, 65.536ms)
		}
		ds := rec.Snapshot().Durations["q"]
		if p50 := ds.Quantile(0.50); p50 != 128*time.Microsecond {
			t.Errorf("p50 = %v, want the fast bucket's upper edge (128µs)", p50)
		}
		p99 := ds.Quantile(0.99)
		if p99 < 32*time.Millisecond || p99 > ds.Max {
			t.Errorf("p99 = %v, want within the slow bucket, clamped to max %v", p99, ds.Max)
		}
	})

	t.Run("clamped to observed range", func(t *testing.T) {
		rec := New()
		h := rec.Histogram("q")
		h.Observe(3 * time.Millisecond)
		h.Observe(5 * time.Millisecond)
		ds := rec.Snapshot().Durations["q"]
		if got := ds.Quantile(0); got < ds.Min {
			t.Errorf("q0 = %v below observed min %v", got, ds.Min)
		}
		if got := ds.Quantile(1); got > ds.Max {
			t.Errorf("q1 = %v above observed max %v", got, ds.Max)
		}
	})

	t.Run("monotone", func(t *testing.T) {
		rec := New()
		h := rec.Histogram("q")
		for i := 1; i <= 64; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
		ds := rec.Snapshot().Durations["q"]
		prev := time.Duration(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := ds.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile(%v) = %v < previous %v; quantiles must be monotone", q, v, prev)
			}
			prev = v
		}
	})
}
