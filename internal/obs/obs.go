// Package obs is the run-scoped observability layer: named counters,
// gauges, and duration histograms collected by a Recorder that rides the
// run's context.Context. The package is zero-dependency (stdlib only) and
// every handle is nil-safe: instrumented code asks the Recorder for a
// *Counter once at setup and increments it unconditionally — when no
// Recorder is attached the handle is nil and the increment is a single
// predictable branch, keeping instrumentation off the hot path.
//
// Recorders form a two-level tree. A suite run owns one root Recorder;
// Execute gives each experiment a child (NewChild) so concurrent workers
// never interleave their counts, then folds the child back into the root
// (Fold) when the experiment finishes. Snapshot aggregates the root's own
// state with every live child, which is what lets a progress reporter see
// references ticking while experiments are still in flight.
package obs

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is valid and drops every update, so instrumentation
// sites never test whether recording is enabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe for concurrent use; no-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (e.g. busy workers) that also
// tracks the high-water mark it has reached. A nil *Gauge drops updates.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bump(v)
}

// Add moves the level by d (negative to decrease) and raises the
// high-water mark if needed.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bump(g.v.Add(d))
}

func (g *Gauge) bump(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value reads the current level; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reads the high-water mark; 0 on a nil receiver.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the bucket count of a duration histogram: bucket 0 holds
// sub-microsecond observations, bucket i (i >= 1) holds durations in
// [2^(i-1), 2^i) microseconds, and the last bucket absorbs everything
// longer (2^38 us is about three days).
const histBuckets = 40

// Histogram records a distribution of durations: count, sum, min, max and
// power-of-two microsecond buckets. Observation takes a mutex — histograms
// instrument per-experiment and per-stage timings, not per-reference
// events. A nil *Histogram drops observations.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]uint64
}

// Observe records one duration. Safe for concurrent use; no-op on a nil
// receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// stats snapshots the histogram.
func (h *Histogram) stats() DurationStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := DurationStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	last := -1
	for i, n := range h.buckets {
		if n > 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), h.buckets[:last+1]...)
	}
	return s
}

// absorb merges a snapshot into the histogram (used when folding a child
// recorder into its parent).
func (h *Histogram) absorb(s DurationStats) {
	if h == nil || s.Count == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
	for i, n := range s.Buckets {
		if i >= histBuckets {
			break
		}
		h.buckets[i] += n
	}
	h.mu.Unlock()
}

// Recorder is a named registry of counters, gauges, duration histograms
// and string labels for one run. All methods are safe for concurrent use,
// and every method is a no-op (returning nil handles) on a nil receiver,
// so code can instrument unconditionally from a possibly-absent Recorder.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]string
	children map[*Recorder]struct{}
}

// New returns an empty Recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]string),
		children: make(map[*Recorder]struct{}),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid, dropping Counter) on a nil receiver.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

func (r *Recorder) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// receiver.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gaugeLocked(name)
}

func (r *Recorder) gaugeLocked(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use; nil on a nil receiver.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histLocked(name)
}

func (r *Recorder) histLocked(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records d into the named histogram; no-op on a nil receiver.
func (r *Recorder) Observe(name string, d time.Duration) {
	r.Histogram(name).Observe(d)
}

// SetLabel attaches a string fact to the run (current experiment id, sweep
// point); no-op on a nil receiver.
func (r *Recorder) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.labels[key] = value
	r.mu.Unlock()
}

// Label reads a label; "" on a nil receiver or an unset key.
func (r *Recorder) Label(key string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[key]
}

// NewChild creates a Recorder whose state is isolated from r but included
// in r.Snapshot while attached. Execute gives each experiment a child so
// concurrent suite workers cannot interleave counts, then calls Fold when
// the experiment finishes. Returns nil on a nil receiver.
func (r *Recorder) NewChild() *Recorder {
	if r == nil {
		return nil
	}
	c := New()
	r.mu.Lock()
	r.children[c] = struct{}{}
	r.mu.Unlock()
	return c
}

// Fold detaches child, absorbs its state into r, and returns the child's
// final snapshot (the per-experiment metrics). A nil receiver, nil child,
// or a child not attached to r folds nothing and returns the child's
// snapshot anyway.
func (r *Recorder) Fold(child *Recorder) Metrics {
	m := child.Snapshot()
	if r == nil || child == nil {
		return m
	}
	r.mu.Lock()
	delete(r.children, child)
	r.absorbLocked(m)
	r.mu.Unlock()
	return m
}

// absorbLocked merges a snapshot into r's own stores; r.mu must be held.
func (r *Recorder) absorbLocked(m Metrics) {
	for name, v := range m.Counters {
		r.counterLocked(name).Add(v)
	}
	for name, gv := range m.Gauges {
		g := r.gaugeLocked(name)
		g.Add(gv.Value)
		g.bump(gv.Max)
	}
	for name, ds := range m.Durations {
		r.histLocked(name).absorb(ds)
	}
	for k, v := range m.Labels {
		r.labels[k] = v
	}
}

// Snapshot captures the Recorder's current state — its own counters,
// gauges, histograms and labels plus those of every attached child — as an
// immutable Metrics value. Returns the zero Metrics on a nil receiver.
func (r *Recorder) Snapshot() Metrics {
	if r == nil {
		return Metrics{}
	}
	r.mu.Lock()
	m := Metrics{
		Counters:  make(map[string]uint64, len(r.counters)),
		Gauges:    make(map[string]GaugeValue, len(r.gauges)),
		Durations: make(map[string]DurationStats, len(r.hists)),
		Labels:    make(map[string]string, len(r.labels)),
	}
	for name, c := range r.counters {
		m.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		m.Durations[name] = h.stats()
	}
	for k, v := range r.labels {
		m.Labels[k] = v
	}
	children := make([]*Recorder, 0, len(r.children))
	for c := range r.children {
		children = append(children, c)
	}
	r.mu.Unlock()
	for _, c := range children {
		m.merge(c.Snapshot())
	}
	return m
}

// recorderKey carries the Recorder through a context.Context.
type recorderKey struct{}

// With returns a context carrying rec; With(ctx, nil) detaches any
// Recorder already present.
func With(ctx context.Context, rec *Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// From extracts the Recorder carried by ctx, or nil when none is attached.
// The nil result is directly usable: every Recorder method accepts a nil
// receiver.
func From(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
