package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every handle and the Recorder itself through nil
// receivers: the disabled mode must be callable from any instrumentation
// site without checks.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatalf("nil gauge = %d/%d", g.Value(), g.Max())
	}
	var h *Histogram
	h.Observe(time.Second)

	var r *Recorder
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil recorder must hand out nil handles")
	}
	r.Observe("x", time.Second)
	r.SetLabel("k", "v")
	if r.Label("k") != "" {
		t.Fatal("nil recorder label must be empty")
	}
	if r.NewChild() != nil {
		t.Fatal("nil recorder must not create children")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil recorder snapshot must be empty")
	}
	r.Fold(nil)
}

// TestRecorderConcurrency hammers one Recorder from many goroutines; run
// under -race this is the data-race gate for the whole layer.
func TestRecorderConcurrency(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("refs")
			g := r.Gauge("busy")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Counter("blocks").Add(2)
				g.Add(1)
				g.Add(-1)
				if i%1000 == 0 {
					r.Observe("wall", time.Duration(i)*time.Microsecond)
					r.SetLabel("current", "exp")
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	m := r.Snapshot()
	if got := m.Counter("refs"); got != workers*perWorker {
		t.Errorf("refs = %d, want %d", got, workers*perWorker)
	}
	if got := m.Counter("blocks"); got != 2*workers*perWorker {
		t.Errorf("blocks = %d, want %d", got, 2*workers*perWorker)
	}
	if m.Gauges["busy"].Value != 0 {
		t.Errorf("busy gauge = %d, want 0", m.Gauges["busy"].Value)
	}
	if m.Gauges["busy"].Max < 1 {
		t.Errorf("busy max = %d, want >= 1", m.Gauges["busy"].Max)
	}
	if m.Durations["wall"].Count != workers*perWorker/1000 {
		t.Errorf("wall count = %d", m.Durations["wall"].Count)
	}
}

// TestChildFold verifies isolation and aggregation: children are visible
// in the parent's live snapshot, folding moves their state into the parent
// and detaches them.
func TestChildFold(t *testing.T) {
	parent := New()
	parent.Counter("refs").Add(10)

	a := parent.NewChild()
	b := parent.NewChild()
	a.Counter("refs").Add(100)
	a.Observe("wall", 2*time.Millisecond)
	b.Counter("refs").Add(1000)
	b.SetLabel("current", "fig6")

	live := parent.Snapshot()
	if got := live.Counter("refs"); got != 1110 {
		t.Fatalf("live refs = %d, want 1110 (parent + both children)", got)
	}
	if live.Labels["current"] != "fig6" {
		t.Fatalf("live label missing: %q", live.Labels["current"])
	}

	ma := parent.Fold(a)
	if got := ma.Counter("refs"); got != 100 {
		t.Fatalf("folded child refs = %d, want 100", got)
	}
	if ma.Durations["wall"].Count != 1 {
		t.Fatalf("folded child wall count = %d", ma.Durations["wall"].Count)
	}
	// a's state moved into the parent; b still attached and counted once.
	after := parent.Snapshot()
	if got := after.Counter("refs"); got != 1110 {
		t.Fatalf("post-fold refs = %d, want 1110", got)
	}
	parent.Fold(b)
	final := parent.Snapshot()
	if got := final.Counter("refs"); got != 1110 {
		t.Fatalf("final refs = %d, want 1110", got)
	}
	if final.Durations["wall"].Count != 1 {
		t.Fatalf("final wall count = %d", final.Durations["wall"].Count)
	}
}

// TestContextPlumbing verifies With/From and that the absent case yields a
// usable nil Recorder.
func TestContextPlumbing(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("background context must carry no recorder")
	}
	if From(nil) != nil {
		t.Fatal("nil context must carry no recorder")
	}
	r := New()
	ctx := With(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("recorder lost in context round trip")
	}
	// Detach.
	if From(With(ctx, nil)) != nil {
		t.Fatal("With(ctx, nil) must detach the recorder")
	}
	// With(nil, rec) must not panic and must carry the recorder.
	if From(With(nil, r)) != r {
		t.Fatal("With(nil, rec) must still attach")
	}
}

// TestHistogramStats checks summary fields and bucket placement.
func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)  // bucket 2: [2us, 4us)
	h.Observe(time.Millisecond)
	s := h.stats()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 500*time.Nanosecond || s.Max != time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Sum != 500*time.Nanosecond+3*time.Microsecond+time.Millisecond {
		t.Fatalf("sum = %v", s.Sum)
	}
	if len(s.Buckets) == 0 || s.Buckets[0] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Mean() != s.Sum/3 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

// TestMetricsJSONRoundTrip ensures the machine-readable dump decodes back
// to the same snapshot.
func TestMetricsJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("trace.refs").Add(42)
	r.Gauge("suite.workers.busy").Add(3)
	r.Observe("experiment.wall", 5*time.Millisecond)
	r.SetLabel("experiment.current", "table2")
	m := r.Snapshot()

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("trace.refs") != 42 {
		t.Errorf("refs = %d", back.Counter("trace.refs"))
	}
	if back.Gauges["suite.workers.busy"].Max != 3 {
		t.Errorf("gauge max = %d", back.Gauges["suite.workers.busy"].Max)
	}
	if back.Durations["experiment.wall"].Sum != 5*time.Millisecond {
		t.Errorf("wall sum = %v", back.Durations["experiment.wall"].Sum)
	}
	if back.Labels["experiment.current"] != "table2" {
		t.Errorf("label = %q", back.Labels["experiment.current"])
	}
}

// TestMetricsRender sanity-checks the text rendering used by the report
// formatter.
func TestMetricsRender(t *testing.T) {
	r := New()
	r.Counter("b.counter").Inc()
	r.Counter("a.counter").Add(7)
	r.Observe("wall", time.Millisecond)
	var sb strings.Builder
	r.Snapshot().Render(&sb)
	out := sb.String()
	ia, ib := strings.Index(out, "a.counter"), strings.Index(out, "b.counter")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "n=1 mean=1ms") {
		t.Fatalf("histogram line missing:\n%s", out)
	}
}

// TestProgress drives the reporter with a tiny interval and checks the
// status line carries refs, experiment label, completion and an ETA.
func TestProgress(t *testing.T) {
	r := New()
	r.Counter(RefsDelivered).Add(12345)
	r.Counter(SuiteTotal).Add(4)
	r.Counter(SuiteDone).Add(2)
	r.Gauge(WorkersBusy).Add(1)
	r.Observe(ExperimentWall, 10*time.Millisecond)
	r.SetLabel(LabelExperiment, "fig6dm")

	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})

	p := StartProgress(r, w, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	p.Stop()

	mu.Lock()
	out := sb.String()
	mu.Unlock()
	for _, want := range []string{"refs=12345", "fig6dm", "experiments=2/4", "eta="} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// Nil-safe start/stop.
	StartProgress(nil, w, time.Millisecond).Stop()
	StartProgress(r, nil, time.Millisecond).Stop()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
