package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress periodically renders a one-line status from a Recorder: how
// many references the run has pushed and at what rate, which experiment is
// in flight, suite completion, and — once at least one experiment has
// finished — a crude ETA extrapolated from the mean completion time. It is
// the opt-in live view behind the CLI's -progress flag.
type Progress struct {
	rec      *Recorder
	w        io.Writer
	interval time.Duration

	stop chan struct{}
	done sync.WaitGroup

	start    time.Time
	lastRefs uint64
	lastTick time.Time
}

// StartProgress begins emitting a status line to w every interval (default
// one second when interval <= 0). Lines are terminated with a carriage
// return so a terminal shows a single updating line; call Stop to emit the
// final state with a newline. Returns nil when rec or w is nil — Stop on a
// nil *Progress is a no-op, so callers can defer it unconditionally.
func StartProgress(rec *Recorder, w io.Writer, interval time.Duration) *Progress {
	if rec == nil || w == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	p := &Progress{
		rec:      rec,
		w:        w,
		interval: interval,
		stop:     make(chan struct{}),
		start:    now,
		lastTick: now,
	}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			fmt.Fprintf(p.w, "\r%s", p.line(now))
		}
	}
}

// line formats one status line from the current snapshot.
func (p *Progress) line(now time.Time) string {
	m := p.rec.Snapshot()
	refs := m.Counter(RefsDelivered)
	elapsed := now.Sub(p.start)

	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", elapsed.Round(time.Second))
	if cur := m.Labels[LabelExperiment]; cur != "" {
		fmt.Fprintf(&b, " %s", cur)
	}
	fmt.Fprintf(&b, " refs=%d", refs)
	if dt := now.Sub(p.lastTick); dt > 0 && refs >= p.lastRefs {
		fmt.Fprintf(&b, " (%s refs/s)", rate(refs-p.lastRefs, dt))
	}
	p.lastRefs, p.lastTick = refs, now

	if total := m.Counter(SuiteTotal); total > 0 {
		done := m.Counter(SuiteDone)
		fmt.Fprintf(&b, " experiments=%d/%d", done, total)
		if eta, ok := estimateETA(m, elapsed); ok {
			fmt.Fprintf(&b, " eta=%s", eta.Round(time.Second))
		}
	}
	return b.String()
}

// estimateETA extrapolates remaining suite time from mean experiment wall
// time and worker occupancy. It reports ok=false until one experiment has
// completed.
func estimateETA(m Metrics, elapsed time.Duration) (time.Duration, bool) {
	total, done := m.Counter(SuiteTotal), m.Counter(SuiteDone)
	if done == 0 || done >= total {
		return 0, done >= total && total > 0
	}
	workers := m.Gauges[WorkersBusy].Max
	if workers < 1 {
		workers = 1
	}
	mean := m.Durations[ExperimentWall].Mean()
	if mean == 0 {
		mean = elapsed / time.Duration(done)
	}
	remaining := time.Duration(total-done) * mean / time.Duration(workers)
	return remaining, true
}

// rate renders events per second with a compact SI suffix.
func rate(n uint64, dt time.Duration) string {
	perSec := float64(n) / dt.Seconds()
	switch {
	case perSec >= 1e9:
		return fmt.Sprintf("%.1fG", perSec/1e9)
	case perSec >= 1e6:
		return fmt.Sprintf("%.1fM", perSec/1e6)
	case perSec >= 1e3:
		return fmt.Sprintf("%.1fk", perSec/1e3)
	default:
		return fmt.Sprintf("%.0f", perSec)
	}
}

// Stop halts the ticker and writes the final status followed by a newline.
// Safe on a nil receiver and idempotent is not required — call once.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	p.done.Wait()
	fmt.Fprintf(p.w, "\r%s\n", p.line(time.Now()))
}
