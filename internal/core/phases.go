package core

import (
	"context"
	"fmt"
	"math"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/trace"
)

// expPhases quantifies Section 6.4's second caveat: the force phase
// parallelizes essentially perfectly, but tree building and moment
// computation "do not yield quite as good speedups due to larger amounts
// of synchronization and contention ... [they] may become significant for
// very fine-grained machines with very large numbers of processors".
//
// The phase work is measured from a real simulation step (instruction
// estimates per work unit); the speedup projection gives the force and
// update phases perfect scaling and models the tree phases with a
// contention term that grows as log2(P) per unit of work — cells near the
// root serialize insertions. The qualitative claim under test: the tree
// phases are a small fraction of the time up to ~512 processors, and
// dominate at extreme P.
func expPhases() Experiment {
	return Experiment{
		ID:          "phases",
		Title:       "Section 6.4: Barnes-Hut phase breakdown and fine-grain speedup limit",
		Description: "Measured per-phase work and a projected speedup curve showing where tree building starts to bite.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n := 4096
			if o.Scale == ScaleQuick {
				n = 1024
			}
			bodies := barneshut.Plummer(n, 7)
			sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
				Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
			}, trace.WithContext(ctx, nil))
			if err != nil {
				return nil, err
			}
			var st barneshut.StepStats
			for s := 0; s < 2; s++ {
				if st, err = sim.Step(); err != nil {
					return nil, err
				}
			}

			// Instruction estimates per unit of work: the paper gives 80
			// per interaction; tree-cell visits and moment computations are
			// pointer-chasing plus a handful of FLOPs.
			const (
				instrPerInteraction = 80
				instrPerBuildVisit  = 20
				instrPerMomentCell  = 40
				instrPerBodyUpdate  = 12
			)
			force := float64(st.Interactions) * instrPerInteraction
			build := float64(st.BuildVisits) * instrPerBuildVisit
			moments := float64(st.Cells) * instrPerMomentCell
			update := float64(n) * instrPerBodyUpdate
			total := force + build + moments + update

			work := Table{
				Title:  fmt.Sprintf("measured per-step work, n=%d theta=1.0", n),
				Header: []string{"phase", "work units", "instr estimate", "fraction"},
			}
			addRow := func(name string, units int, instr float64) {
				work.Rows = append(work.Rows, []string{
					name, fmt.Sprint(units), fmt.Sprintf("%.3g", instr),
					fmt.Sprintf("%.1f%%", 100*instr/total),
				})
			}
			addRow("force computation", st.Interactions, force)
			addRow("tree build", st.BuildVisits, build)
			addRow("moments", st.Cells, moments)
			addRow("integration", n, update)

			// Speedup projection: force and update scale perfectly; the
			// tree phases pay a contention factor (1 + logP/8) and can use
			// at most n/8 processors effectively (an insertion path is a
			// critical section near the root).
			proj := Table{
				Title:  "projected speedup (force/update perfect; tree phases contended)",
				Header: []string{"P", "speedup", "efficiency", "tree-phase share of time"},
			}
			treeWork := build + moments
			for _, p := range []float64{64, 512, 4096, 32768, 262144} {
				fast := (force + update) / p
				pTree := math.Min(p, float64(n)/8)
				slow := treeWork * (1 + math.Log2(p)/8) / pTree
				time := fast + slow
				speedup := total / time
				proj.Rows = append(proj.Rows, []string{
					fmt.Sprintf("%.0f", p),
					fmt.Sprintf("%.0f", speedup),
					fmt.Sprintf("%.2f", speedup/p),
					fmt.Sprintf("%.1f%%", 100*slow/time),
				})
			}

			r := &Report{Title: "Barnes-Hut phase analysis (Section 6.4)"}
			r.Tables = append(r.Tables, work, proj)
			r.AddNote("paper: tree phases 'consume a small fraction of the execution time on moderately parallel machines (at least up to 512 processors for large problems), but may become significant for very fine-grained machines'")
			r.AddNote("projection assumptions: per-unit instruction costs above; tree-phase parallelism capped at n/8 with a log2(P)/8 contention factor")
			return r, nil
		},
	}
}
