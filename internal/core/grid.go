package core

import (
	"context"
	"fmt"

	"wsstudy/internal/apps/lu"
	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// The grid cell experiments are the sweepable point queries of the
// design space: unlike the paper-figure experiments, which pick their
// own parameters, gridlu and gridbh read every Options axis (cache,
// line, assoc, pes, problem) and evaluate exactly that configuration.
// A parameter-lattice sweep (internal/sweep) enumerates Options over
// axis values and runs one of these per cell; because every axis
// participates in Options.Canonical, each cell has its own content
// address, and because gridbh's kernel trace is capture-keyed by the
// kernel configuration only (n, p, theta), cells that differ just in
// cache geometry replay one recorded stream instead of re-running the
// N-body code.

// gridPoint builds the one-point "cell" figure every grid experiment
// reports: the miss metric at exactly the requested configuration.
func gridPoint(title, yLabel string, cacheBytes uint64, rate float64) Figure {
	return Figure{
		Title: title, XLabel: "cache size", YLabel: yLabel,
		Series: []Series{{Label: "cell", Points: []workingset.Point{
			{CacheBytes: cacheBytes, MissRate: rate},
		}}},
	}
}

// ---------------------------------------------------------------- gridlu

// expGridLU is the analytic design-space cell: the LU miss-rate model
// evaluated at one (problem, pes, cache) point. It is exact, instant
// and deterministic, which makes it the lattice engine's workhorse for
// large sweeps (and for the grain endpoint, which wants misses/FLOP at
// every (P, cache) candidate).
func expGridLU() Experiment {
	return Experiment{
		ID:    "gridlu",
		Title: "Design-space cell: LU analytic miss rate at one (n, P, cache) point",
		Description: "Evaluates the Figure 2 LU model at the Options axes: " +
			"problem = n (default 10000), pes = P (default 1024), cache = " +
			"per-PE cache bytes (0 sweeps the standard size grid), " +
			"line = blocking factor B in doublewords (default 16).",
		Run: func(_ context.Context, o Options) (*Report, error) {
			n, p, b := 10000, 1024, 16
			if o.Problem > 0 {
				n = o.Problem
			}
			if o.PEs > 0 {
				p = o.PEs
			}
			if o.LineBytes > 0 {
				b = o.LineBytes / 8
				if b < 1 {
					b = 1
				}
			}
			m := lu.Model{N: n, B: b, P: p}
			if n < b {
				return nil, fmt.Errorf("gridlu: problem %d smaller than block %d", n, b)
			}
			r := &Report{Title: fmt.Sprintf("LU cell n=%d B=%d P=%d", n, b, p)}
			if o.CacheBytes > 0 {
				r.Figures = append(r.Figures, gridPoint(
					fmt.Sprintf("LU model n=%d B=%d P=%d", n, b, p),
					"misses/FLOP", o.CacheBytes, m.MissRatePerFLOP(o.CacheBytes)))
			} else {
				fig := Figure{
					Title:  fmt.Sprintf("LU model n=%d B=%d P=%d", n, b, p),
					XLabel: "cache size", YLabel: "misses/FLOP",
				}
				fig.Series = append(fig.Series, modelSeries("model", sizesGrid(), m.MissRatePerFLOP))
				r.Figures = append(r.Figures, fig)
			}
			r.AddNote("lev1WS %s, lev2WS %s, data %s",
				workingset.FormatBytes(m.Lev1WS()), workingset.FormatBytes(m.Lev2WS()),
				workingset.FormatBytes(m.DataSetBytes()))
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- gridbh

// expGridBH is the simulated design-space cell: one Barnes-Hut run
// (capture-shared across cells with the same kernel configuration)
// measured against exactly the requested cache geometry.
func expGridBH() Experiment {
	return Experiment{
		ID:    "gridbh",
		Title: "Design-space cell: simulated Barnes-Hut miss rate at one configuration",
		Description: "Runs the Barnes-Hut kernel at the Options axes (problem = " +
			"particles, pes, cache, line, assoc; zeros take defaults) and reports " +
			"the aggregate read miss rate. Cells that share a kernel configuration " +
			"replay one captured trace; only the cache geometry re-simulates.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n, steps := 1024, 5
			if o.Scale == ScaleQuick {
				n, steps = 192, 3
			}
			if o.Problem > 0 {
				n = o.Problem
			}
			p := 4
			if o.PEs > 0 {
				p = o.PEs
			}
			line := 8
			if o.LineBytes > 0 {
				line = o.LineBytes
			}
			const warm, theta = 1, 1.0

			cfg := memsys.Config{PEs: p, LineSize: uint32(line), WarmupEpochs: warm, ProfilePE: -1}
			if o.CacheBytes > 0 {
				cfg.CacheCapacity = int(o.CacheBytes) / line
				if cfg.CacheCapacity < 1 {
					cfg.CacheCapacity = 1
				}
				cfg.Assoc = o.Assoc
			} else {
				// No concrete cache requested: profile the full curve on PE 1
				// (the fig6 treatment) so a cache=0 cell still says something.
				cfg.Profile = true
				cfg.ProfilePE = 1 % p
			}
			sys, err := openMachine(ctx, o, cfg)
			if err != nil {
				return nil, err
			}
			defer sys.Close()
			if err := runBHTraced(ctx, n, p, steps, theta, trace.WithContext(ctx, sys)); err != nil {
				return nil, err
			}
			if err := sys.Close(); err != nil {
				return nil, err
			}

			r := &Report{Title: fmt.Sprintf("Barnes-Hut cell n=%d p=%d", n, p)}
			if o.CacheBytes > 0 {
				st := sys.CacheStats()
				r.Figures = append(r.Figures, gridPoint(
					fmt.Sprintf("Barnes-Hut n=%d theta=1.0 p=%d line=%d assoc=%d", n, p, line, o.Assoc),
					"read miss rate", o.CacheBytes, st.ReadMissRate()))
				r.AddNote("reads=%d read misses=%d", st.Reads, st.ReadMisses)
			} else {
				prof := sys.Profiler(1 % p)
				fig := Figure{
					Title:  fmt.Sprintf("Barnes-Hut n=%d theta=1.0 p=%d (profiled)", n, p),
					XLabel: "cache size", YLabel: "read miss rate",
				}
				fig.Series = append(fig.Series, profCurve("measured", prof,
					workingset.LogSizes(64, 4<<20, 2), float64(prof.Reads()), true))
				r.Figures = append(r.Figures, fig)
				attachSampling(r, prof)
			}
			return r, nil
		},
	}
}
