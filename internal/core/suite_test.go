package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"wsstudy/internal/obs"
)

// okExp returns a trivially succeeding experiment.
func okExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(ctx context.Context, o Options) (*Report, error) {
			return &Report{Title: id}, nil
		},
	}
}

// panicExp panics mid-run.
func panicExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(ctx context.Context, o Options) (*Report, error) {
			panic("kaboom: " + id)
		},
	}
}

// deadlineExp assembles a partial report, then blocks until its context
// expires — the shape of a kernel whose cancellation poll fires.
func deadlineExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(ctx context.Context, o Options) (*Report, error) {
			r := &Report{Title: "partial " + id}
			r.AddNote("model figure computed before the simulation timed out")
			<-ctx.Done()
			return r, ctx.Err()
		},
	}
}

func TestExecutePanicIsolation(t *testing.T) {
	rep, err := Execute(context.Background(), panicExp("boom"), Options{})
	if rep != nil {
		t.Fatal("panicking experiment returned a report")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.ID != "boom" || pe.Value != "kaboom: boom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if pe.Stack == "" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("PanicError.Stack not captured: %q", pe.Stack)
	}
}

func TestExecuteDeadlinePartialReport(t *testing.T) {
	rep, err := Execute(context.Background(), deadlineExp("slow"),
		Options{Timeout: 20 * time.Millisecond})
	if rep != nil {
		t.Fatal("timed-out experiment returned a non-error report")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("deadline error must also match context.DeadlineExceeded")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.Partial == nil || de.Partial.Title != "partial slow" {
		t.Fatalf("DeadlineError.Partial = %+v, want the partial report", de.Partial)
	}
	if de.Timeout != 20*time.Millisecond {
		t.Fatalf("DeadlineError.Timeout = %v", de.Timeout)
	}
}

// TestSuiteGracefulDegradation is the issue's acceptance scenario: a suite
// holding one panicking and one deadline-exceeding experiment still returns
// every other experiment's Report, with typed errors for the failures.
func TestSuiteGracefulDegradation(t *testing.T) {
	exps := []Experiment{
		okExp("a"),
		panicExp("p"),
		deadlineExp("d"),
		okExp("b"),
	}
	report := RunSuite(context.Background(), exps, SuiteOptions{
		Options: Options{Timeout: 30 * time.Millisecond},
		Workers: 4,
	})
	if got := len(report.Reports()); got != 2 {
		t.Fatalf("successful reports = %d, want 2", got)
	}
	if report.Results[0].Report == nil || report.Results[3].Report == nil {
		t.Fatal("healthy experiments lost their reports")
	}
	var pe *PanicError
	if !errors.As(report.Results[1].Err, &pe) || pe.Stack == "" {
		t.Fatalf("panic result = %v, want *PanicError with stack", report.Results[1].Err)
	}
	var de *DeadlineError
	if !errors.As(report.Results[2].Err, &de) || de.Partial == nil {
		t.Fatalf("deadline result = %v, want *DeadlineError with partial", report.Results[2].Err)
	}
	summary := report.FailureSummary()
	if !strings.Contains(summary, "2 of 4") ||
		!strings.Contains(summary, "p:") || !strings.Contains(summary, "d:") {
		t.Fatalf("FailureSummary = %q", summary)
	}
}

func TestSuiteCancellationStopsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	blocker := Experiment{
		ID: "block", Title: "block",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	exps := make([]Experiment, 8)
	for i := range exps {
		exps[i] = blocker
	}
	done := make(chan *SuiteReport)
	go func() {
		done <- RunSuite(ctx, exps, SuiteOptions{Workers: 2})
	}()
	<-started // at least one experiment is in flight
	cancel()
	select {
	case report := <-done:
		for i, r := range report.Results {
			if r.Err == nil {
				t.Errorf("result %d: cancelled suite produced a success", i)
			} else if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled suite did not return promptly")
	}
}

func TestSuiteTransientRetry(t *testing.T) {
	var calls int
	flaky := Experiment{
		ID: "flaky", Title: "flaky",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			calls++
			if calls < 3 {
				return nil, Transient(errors.New("resource pressure"))
			}
			return &Report{Title: "flaky"}, nil
		},
	}
	report := RunSuite(context.Background(), []Experiment{flaky}, SuiteOptions{
		Retries: 3, Backoff: time.Millisecond,
	})
	res := report.Results[0]
	if res.Err != nil {
		t.Fatalf("flaky experiment failed after retries: %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if report.FailureSummary() != "" {
		t.Fatalf("clean suite has failure summary %q", report.FailureSummary())
	}
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(nil) || Transient(nil) != nil {
		t.Fatal("nil handling broken")
	}
	base := errors.New("x")
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient not detected")
	}
	if IsTransient(base) {
		t.Fatal("unwrapped error classified transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient must preserve errors.Is to the cause")
	}
	if IsTransient(&DeadlineError{ID: "x"}) || IsTransient(&PanicError{ID: "x"}) {
		t.Fatal("deadline/panic errors must never be transient")
	}
}

// TestRunContextCancelledSweep verifies a cancelled context stops a real
// experiment sweep (fig2's LU factorization polls inside its K loop) and
// the cancellation surfaces as context.Canceled.
func TestRunContextCancelledSweep(t *testing.T) {
	e, ok := Find("fig2")
	if !ok {
		t.Fatal("fig2 missing from registry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first kernel poll must abort
	start := time.Now()
	rep, err := Execute(ctx, e, Options{Scale: ScaleQuick})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (rep=%v)", err, rep != nil)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled experiment still ran %v", elapsed)
	}
}

// TestExecuteAttachesMetrics verifies the Recorder plumbing through
// Execute: the run happens under a child recorder, the child folds back
// into the parent, the Report carries the snapshot, and the parent records
// wall time and the current-experiment label.
func TestExecuteAttachesMetrics(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	counting := Experiment{
		ID: "counting", Title: "counting",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			obs.From(ctx).Counter("test.widgets").Add(7)
			return &Report{Title: "counting"}, nil
		},
	}
	rep, err := Execute(ctx, counting, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("Execute under a Recorder left Report.Metrics nil")
	}
	if got := rep.Metrics.Counters["test.widgets"]; got != 7 {
		t.Errorf("report counter = %d, want 7", got)
	}
	parent := rec.Snapshot()
	if got := parent.Counters["test.widgets"]; got != 7 {
		t.Errorf("folded parent counter = %d, want 7", got)
	}
	if ws := parent.Durations[obs.ExperimentWall]; ws.Count != 1 {
		t.Errorf("%s count = %d, want 1", obs.ExperimentWall, ws.Count)
	}
	if got := parent.Labels[obs.LabelExperiment]; got != "counting" {
		t.Errorf("experiment label = %q, want counting", got)
	}

	// Without a Recorder the report must stay metric-free.
	rep, err = Execute(context.Background(), counting, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Error("Execute without a Recorder attached metrics")
	}
}

// TestExecuteMetricsOnDeadlinePartial verifies a timed-out run still folds
// its child recorder into the partial report.
func TestExecuteMetricsOnDeadlinePartial(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	slow := Experiment{
		ID: "slow", Title: "slow",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			obs.From(ctx).Counter("test.before.deadline").Inc()
			r := &Report{Title: "partial slow"}
			<-ctx.Done()
			return r, ctx.Err()
		},
	}
	_, err := Execute(ctx, slow, Options{Timeout: 20 * time.Millisecond})
	var de *DeadlineError
	if !errors.As(err, &de) || de.Partial == nil {
		t.Fatalf("err = %v, want *DeadlineError with partial", err)
	}
	if de.Partial.Metrics == nil || de.Partial.Metrics.Counters["test.before.deadline"] != 1 {
		t.Fatalf("partial report metrics = %+v, want the pre-deadline counter", de.Partial.Metrics)
	}
}

// TestSuiteRecordsSchedulingMetrics verifies the suite-level counters:
// total/done/failed, retries, and peak worker occupancy.
func TestSuiteRecordsSchedulingMetrics(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	var calls int
	flaky := Experiment{
		ID: "flaky", Title: "flaky",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			calls++
			if calls < 2 {
				return nil, Transient(errors.New("pressure"))
			}
			return &Report{Title: "flaky"}, nil
		},
	}
	exps := []Experiment{okExp("a"), panicExp("p"), flaky}
	report := RunSuite(ctx, exps, SuiteOptions{
		Workers: 1, Retries: 2, Backoff: time.Millisecond,
	})
	if got := len(report.Reports()); got != 2 {
		t.Fatalf("successful reports = %d, want 2", got)
	}
	m := rec.Snapshot()
	checks := []struct {
		name string
		want uint64
	}{
		{obs.SuiteTotal, 3},
		{obs.SuiteDone, 3},
		{obs.SuiteFailed, 1},
		{obs.SuiteRetries, 1},
	}
	for _, c := range checks {
		if got := m.Counters[c.name]; got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if g := m.Gauges[obs.WorkersBusy]; g.Max != 1 || g.Value != 0 {
		t.Errorf("%s = %+v, want max 1 and settled 0", obs.WorkersBusy, g)
	}
	if ws := m.Durations[obs.ExperimentWall]; ws.Count < 3 {
		t.Errorf("%s count = %d, want >= 3 (one per attempt)", obs.ExperimentWall, ws.Count)
	}
}

// TestRenderIncludesMetrics verifies the text and CSV renderings surface a
// report's metrics section.
func TestRenderIncludesMetrics(t *testing.T) {
	m := obs.Metrics{
		Counters: map[string]uint64{"trace.refs": 1234},
		Labels:   map[string]string{"experiment.current": "demo"},
	}
	r := &Report{Title: "demo", Metrics: &m}
	r.Tables = append(r.Tables, Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}})

	var text strings.Builder
	r.Render(&text, FormatText)
	if !strings.Contains(text.String(), "-- metrics --") ||
		!strings.Contains(text.String(), "trace.refs") {
		t.Errorf("text render missing metrics section:\n%s", text.String())
	}

	var csv strings.Builder
	r.Figures = append(r.Figures, Figure{})
	if err := r.Render(&csv, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "metrics,trace.refs,,1234") {
		t.Errorf("csv render missing metrics rows:\n%s", csv.String())
	}
}
