package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// okExp returns a trivially succeeding experiment.
func okExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(o Options) (*Report, error) {
			return &Report{Title: id}, nil
		},
	}
}

// panicExp panics mid-run.
func panicExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(o Options) (*Report, error) {
			panic("kaboom: " + id)
		},
	}
}

// deadlineExp assembles a partial report, then blocks until its context
// expires — the shape of a kernel whose cancellation poll fires.
func deadlineExp(id string) Experiment {
	return Experiment{
		ID: id, Title: id,
		Run: func(o Options) (*Report, error) {
			r := &Report{Title: "partial " + id}
			r.AddNote("model figure computed before the simulation timed out")
			<-o.Context().Done()
			return r, o.Context().Err()
		},
	}
}

func TestExecutePanicIsolation(t *testing.T) {
	rep, err := Execute(context.Background(), panicExp("boom"), Options{})
	if rep != nil {
		t.Fatal("panicking experiment returned a report")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.ID != "boom" || pe.Value != "kaboom: boom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if pe.Stack == "" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("PanicError.Stack not captured: %q", pe.Stack)
	}
}

func TestExecuteDeadlinePartialReport(t *testing.T) {
	rep, err := Execute(context.Background(), deadlineExp("slow"),
		Options{Timeout: 20 * time.Millisecond})
	if rep != nil {
		t.Fatal("timed-out experiment returned a non-error report")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("deadline error must also match context.DeadlineExceeded")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.Partial == nil || de.Partial.Title != "partial slow" {
		t.Fatalf("DeadlineError.Partial = %+v, want the partial report", de.Partial)
	}
	if de.Timeout != 20*time.Millisecond {
		t.Fatalf("DeadlineError.Timeout = %v", de.Timeout)
	}
}

// TestSuiteGracefulDegradation is the issue's acceptance scenario: a suite
// holding one panicking and one deadline-exceeding experiment still returns
// every other experiment's Report, with typed errors for the failures.
func TestSuiteGracefulDegradation(t *testing.T) {
	exps := []Experiment{
		okExp("a"),
		panicExp("p"),
		deadlineExp("d"),
		okExp("b"),
	}
	report := RunSuite(context.Background(), exps, SuiteOptions{
		Options: Options{Timeout: 30 * time.Millisecond},
		Workers: 4,
	})
	if got := len(report.Reports()); got != 2 {
		t.Fatalf("successful reports = %d, want 2", got)
	}
	if report.Results[0].Report == nil || report.Results[3].Report == nil {
		t.Fatal("healthy experiments lost their reports")
	}
	var pe *PanicError
	if !errors.As(report.Results[1].Err, &pe) || pe.Stack == "" {
		t.Fatalf("panic result = %v, want *PanicError with stack", report.Results[1].Err)
	}
	var de *DeadlineError
	if !errors.As(report.Results[2].Err, &de) || de.Partial == nil {
		t.Fatalf("deadline result = %v, want *DeadlineError with partial", report.Results[2].Err)
	}
	summary := report.FailureSummary()
	if !strings.Contains(summary, "2 of 4") ||
		!strings.Contains(summary, "p:") || !strings.Contains(summary, "d:") {
		t.Fatalf("FailureSummary = %q", summary)
	}
}

func TestSuiteCancellationStopsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	blocker := Experiment{
		ID: "block", Title: "block",
		Run: func(o Options) (*Report, error) {
			started <- struct{}{}
			<-o.Context().Done()
			return nil, o.Context().Err()
		},
	}
	exps := make([]Experiment, 8)
	for i := range exps {
		exps[i] = blocker
	}
	done := make(chan *SuiteReport)
	go func() {
		done <- RunSuite(ctx, exps, SuiteOptions{Workers: 2})
	}()
	<-started // at least one experiment is in flight
	cancel()
	select {
	case report := <-done:
		for i, r := range report.Results {
			if r.Err == nil {
				t.Errorf("result %d: cancelled suite produced a success", i)
			} else if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled suite did not return promptly")
	}
}

func TestSuiteTransientRetry(t *testing.T) {
	var calls int
	flaky := Experiment{
		ID: "flaky", Title: "flaky",
		Run: func(o Options) (*Report, error) {
			calls++
			if calls < 3 {
				return nil, Transient(errors.New("resource pressure"))
			}
			return &Report{Title: "flaky"}, nil
		},
	}
	report := RunSuite(context.Background(), []Experiment{flaky}, SuiteOptions{
		Retries: 3, Backoff: time.Millisecond,
	})
	res := report.Results[0]
	if res.Err != nil {
		t.Fatalf("flaky experiment failed after retries: %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if report.FailureSummary() != "" {
		t.Fatalf("clean suite has failure summary %q", report.FailureSummary())
	}
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(nil) || Transient(nil) != nil {
		t.Fatal("nil handling broken")
	}
	base := errors.New("x")
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient not detected")
	}
	if IsTransient(base) {
		t.Fatal("unwrapped error classified transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient must preserve errors.Is to the cause")
	}
	if IsTransient(&DeadlineError{ID: "x"}) || IsTransient(&PanicError{ID: "x"}) {
		t.Fatal("deadline/panic errors must never be transient")
	}
}

// TestRunContextCancelledSweep verifies a cancelled context stops a real
// experiment sweep (fig2's LU factorization polls inside its K loop) and
// the cancellation surfaces as context.Canceled.
func TestRunContextCancelledSweep(t *testing.T) {
	e, ok := Find("fig2")
	if !ok {
		t.Fatal("fig2 missing from registry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first kernel poll must abort
	start := time.Now()
	rep, err := Execute(ctx, e, Options{Quick: true})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (rep=%v)", err, rep != nil)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled experiment still ran %v", elapsed)
	}
}
