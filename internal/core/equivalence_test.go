package core

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/cache"
	"wsstudy/internal/coherence"
	"wsstudy/internal/memsys"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

// The block-delivery refactor promises bit-identical simulation results:
// batching changes only the granularity of delivery, never the order, so
// every kernel must produce the same miss curves, knees and directory
// statistics whether its references arrive one at a time (the legacy
// per-Ref path), in blocks (the native path), or through a concurrent
// Fanout. This suite runs all five kernels at small sizes through all
// three paths and compares every statistic the experiments read.

// refOnly hides a memory system's block and stopper methods so the Batcher
// falls back to ref-by-ref delivery — reproducing the pre-block legacy
// path exactly, including where epoch boundaries land in the stream.
type refOnly struct{ sys *memsys.System }

func (r refOnly) Ref(t trace.Ref)  { r.sys.Ref(t) }
func (r refOnly) BeginEpoch(n int) { r.sys.BeginEpoch(n) }

// kernelCase runs one application kernel deterministically into sink.
// Every case uses 4 processors so one memsys.Config fits all.
type kernelCase struct {
	name string
	warm int // warmup epochs, to exercise mid-stream BeginEpoch placement
	run  func(t *testing.T, sink trace.Consumer)
}

func equivalenceKernels() []kernelCase {
	return []kernelCase{
		{name: "lu", warm: 0, run: func(t *testing.T, sink trace.Consumer) {
			m := lu.NewBlockMatrix(32, 8, nil)
			m.FillRandomDominant(1)
			if _, err := lu.FactorTraced(m, lu.Grid{PR: 2, PC: 2}, sink); err != nil {
				t.Fatalf("lu: %v", err)
			}
		}},
		{name: "cg", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			part, err := cg.NewPartition2D(16, 2, 2, nil)
			if err != nil {
				t.Fatalf("cg: %v", err)
			}
			solver := cg.NewSolver2D(part, sink)
			b := make([]float64, 16*16)
			for i := range b {
				b[i] = 1
			}
			solver.SetB(b)
			if _, err := solver.Solve(cg.Config{MaxIters: 4}); err != nil {
				t.Fatalf("cg: %v", err)
			}
		}},
		{name: "fft", warm: 0, run: func(t *testing.T, sink trace.Consumer) {
			f, err := fft.New(fft.Config{LogN: 8, P: 4, InternalRadix: 4}, sink)
			if err != nil {
				t.Fatalf("fft: %v", err)
			}
			x := make([]complex128, 1<<8)
			for i := range x {
				x[i] = complex(float64(i%17)-8, float64(i%13)-6)
			}
			f.SetInput(x)
			if err := f.Run(); err != nil {
				t.Fatalf("fft: %v", err)
			}
		}},
		{name: "barneshut", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			bodies := barneshut.Plummer(64, 42)
			sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
				Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
			}, sink)
			if err != nil {
				t.Fatalf("barneshut: %v", err)
			}
			for s := 0; s < 3; s++ {
				if _, err := sim.Step(); err != nil {
					t.Fatalf("barneshut: %v", err)
				}
			}
		}},
		{name: "volrend", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			vol := volrend.SyntheticHead(16, 16, 14)
			ren, err := volrend.NewRenderer(vol, volrend.Config{
				ImageW: 24, ImageH: 24, P: 4,
			}, sink)
			if err != nil {
				t.Fatalf("volrend: %v", err)
			}
			for f := 0; f < 2; f++ {
				if _, err := ren.RenderFrame(0.04 * float64(f)); err != nil {
					t.Fatalf("volrend: %v", err)
				}
			}
		}},
	}
}

// profSnapshot captures everything the experiments read from a profiling
// memory system. All fields are comparable with reflect.DeepEqual.
type profSnapshot struct {
	Curve        []cache.MissCount
	ColdR, ColdW uint64
	CohR, CohW   uint64
	Reads        uint64
	Writes       uint64
	Dir          coherence.Stats
	Sys          memsys.Stats
}

func profSnap(sys memsys.Machine, pe int, caps []int) profSnapshot {
	p := sys.Profiler(pe)
	return profSnapshot{
		Curve: p.Curve(caps),
		ColdR: func() uint64 { r, _ := p.ColdMisses(); return r }(),
		ColdW: func() uint64 { _, w := p.ColdMisses(); return w }(),
		CohR:  func() uint64 { r, _ := p.CoherenceMisses(); return r }(),
		CohW:  func() uint64 { _, w := p.CoherenceMisses(); return w }(),
		Reads: p.Reads(), Writes: p.Writes(),
		Dir: sys.DirectoryStats(),
		Sys: sys.Stats(),
	}
}

// cacheSnapshot captures the per-PE stats of a concrete-cache system.
type cacheSnapshot struct {
	Caches []cache.Stats
	Dir    coherence.Stats
	Sys    memsys.Stats
}

func cacheSnap(sys memsys.Machine) cacheSnapshot {
	s := cacheSnapshot{Dir: sys.DirectoryStats(), Sys: sys.Stats()}
	for pe := 0; pe < sys.PEs(); pe++ {
		s.Caches = append(s.Caches, sys.Cache(pe).Stats())
	}
	return s
}

// runPath runs a kernel into a fresh system wrapped by mk, closing any
// Fanout before snapshots are taken.
func runPath(t *testing.T, k kernelCase, cfg memsys.Config, mk func(*memsys.System) trace.Consumer) *memsys.System {
	t.Helper()
	sys := memsys.MustNew(cfg)
	sink := mk(sys)
	k.run(t, sink)
	if fan, ok := sink.(*trace.Fanout); ok {
		if err := fan.Close(); err != nil {
			t.Fatalf("fanout close: %v", err)
		}
	}
	return sys
}

func mkNative(s *memsys.System) trace.Consumer { return s }
func mkLegacy(s *memsys.System) trace.Consumer { return refOnly{s} }
func mkFanout(t *testing.T) func(*memsys.System) trace.Consumer {
	return func(s *memsys.System) trace.Consumer {
		fan, err := trace.NewFanout(s)
		if err != nil {
			t.Fatalf("fanout: %v", err)
		}
		return fan
	}
}

// TestBlockEquivalence proves the tentpole invariant: for every kernel,
// the native block path and the concurrent Fanout path produce statistics
// bit-identical to the legacy per-Ref path, under both a fully associative
// stack profiler and a concrete direct-mapped cache.
func TestBlockEquivalence(t *testing.T) {
	caps := []int{8, 64, 512, 4096} // lines; spans the kernels' knees
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			profCfg := memsys.Config{
				PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: k.warm,
			}
			legacy := profSnap(runPath(t, k, profCfg, mkLegacy), 1, caps)
			native := profSnap(runPath(t, k, profCfg, mkNative), 1, caps)
			fanned := profSnap(runPath(t, k, profCfg, mkFanout(t)), 1, caps)
			if !reflect.DeepEqual(native, legacy) {
				t.Errorf("profiler: block path diverged from per-Ref path\nblock:  %+v\nlegacy: %+v", native, legacy)
			}
			if !reflect.DeepEqual(fanned, legacy) {
				t.Errorf("profiler: fanout path diverged from per-Ref path\nfanout: %+v\nlegacy: %+v", fanned, legacy)
			}

			dmCfg := memsys.Config{
				PEs: 4, LineSize: 8, CacheCapacity: 256, Assoc: 1, WarmupEpochs: k.warm,
			}
			legacyDM := cacheSnap(runPath(t, k, dmCfg, mkLegacy))
			nativeDM := cacheSnap(runPath(t, k, dmCfg, mkNative))
			fannedDM := cacheSnap(runPath(t, k, dmCfg, mkFanout(t)))
			if !reflect.DeepEqual(nativeDM, legacyDM) {
				t.Errorf("direct-mapped: block path diverged from per-Ref path\nblock:  %+v\nlegacy: %+v", nativeDM, legacyDM)
			}
			if !reflect.DeepEqual(fannedDM, legacyDM) {
				t.Errorf("direct-mapped: fanout path diverged from per-Ref path\nfanout: %+v\nlegacy: %+v", fannedDM, legacyDM)
			}
		})
	}
}

// fanoutVsTee runs one kernel into a profiler system and a direct-mapped
// system attached first via the serial Tee and then via a sharded Fanout
// built by mk, and demands identical results from both — the guarantee
// that lets fig6dm replace its per-size reruns with one fanned run.
func fanoutVsTee(t *testing.T, k kernelCase, mk func(...trace.Consumer) (*trace.Fanout, error)) {
	t.Helper()
	build := func() (*memsys.System, *memsys.System) {
		prof := memsys.MustNew(memsys.Config{
			PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: k.warm,
		})
		dm := memsys.MustNew(memsys.Config{
			PEs: 4, LineSize: 8, CacheCapacity: 128, Assoc: 1, WarmupEpochs: k.warm,
		})
		return prof, dm
	}
	caps := []int{16, 128, 1024}

	profT, dmT := build()
	k.run(t, trace.Tee{profT, dmT})

	profF, dmF := build()
	fan, err := mk(profF, dmF)
	if err != nil {
		t.Fatal(err)
	}
	k.run(t, fan)
	if err := fan.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := profSnap(profF, 1, caps), profSnap(profT, 1, caps); !reflect.DeepEqual(got, want) {
		t.Errorf("fanout profiler diverged from tee\nfanout: %+v\ntee:    %+v", got, want)
	}
	if got, want := cacheSnap(dmF), cacheSnap(dmT); !reflect.DeepEqual(got, want) {
		t.Errorf("fanout direct-mapped stats diverged from tee\nfanout: %+v\ntee:    %+v", got, want)
	}
}

// TestFanoutMatchesTee proves the sharded engine equivalent to the serial
// Tee for every kernel, under the default configuration, under a forced
// multi-shard configuration with awkward ring/batch sizes (so shard
// boundaries are exercised even when GOMAXPROCS would pick one worker),
// and — because the rings must block rather than spin — under
// GOMAXPROCS=1 explicitly.
func TestFanoutMatchesTee(t *testing.T) {
	sharded := func(consumers ...trace.Consumer) (*trace.Fanout, error) {
		return trace.NewFanoutConfig(trace.FanoutConfig{Workers: 2, Ring: 8, Batch: 3}, consumers...)
	}
	// Sequential subtest first: it pins GOMAXPROCS, and parallel subtests
	// only start after the sequential ones (and the restore) finish.
	t.Run("gomaxprocs=1", func(t *testing.T) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		k := equivalenceKernels()[3] // barneshut: multi-epoch, order-sensitive
		fanoutVsTee(t, k, trace.NewFanout)
		fanoutVsTee(t, k, sharded)
	})
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			fanoutVsTee(t, k, trace.NewFanout)
			fanoutVsTee(t, k, sharded)
		})
	}
}

// runSharded runs a kernel into a machine opened with the given shard
// count and closes it — draining the shard pipeline — before snapshots.
func runSharded(t *testing.T, k kernelCase, cfg memsys.Config, shards int) memsys.Machine {
	t.Helper()
	cfg.Shards = shards
	m, err := memsys.Open(cfg)
	if err != nil {
		t.Fatalf("open (shards=%d): %v", shards, err)
	}
	k.run(t, m)
	if err := m.Close(); err != nil {
		t.Fatalf("close (shards=%d): %v", shards, err)
	}
	return m
}

// shardedVsSerial runs one kernel through the serial engine and through the
// region-sharded engine at the given shard count, under both the stack
// profiler and concrete direct-mapped caches, and demands bit-identical
// statistics — the machine-level face of the sharding invariant.
func shardedVsSerial(t *testing.T, k kernelCase, shards int) {
	t.Helper()
	caps := []int{8, 64, 512, 4096}
	profCfg := memsys.Config{
		PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: k.warm,
	}
	serial := profSnap(runPath(t, k, profCfg, mkNative), 1, caps)
	shard := profSnap(runSharded(t, k, profCfg, shards), 1, caps)
	if !reflect.DeepEqual(shard, serial) {
		t.Errorf("profiler: sharded machine (W=%d) diverged from serial\nsharded: %+v\nserial:  %+v", shards, shard, serial)
	}

	dmCfg := memsys.Config{
		PEs: 4, LineSize: 8, CacheCapacity: 256, Assoc: 1, WarmupEpochs: k.warm,
	}
	serialDM := cacheSnap(runPath(t, k, dmCfg, mkNative))
	shardDM := cacheSnap(runSharded(t, k, dmCfg, shards))
	if !reflect.DeepEqual(shardDM, serialDM) {
		t.Errorf("direct-mapped: sharded machine (W=%d) diverged from serial\nsharded: %+v\nserial:  %+v", shards, shardDM, serialDM)
	}
}

// TestShardedMachineMatchesSerial proves the region-sharded memsys engine
// bit-identical to the serial System for every kernel, at one shard (the
// degenerate pipeline) and at three (so cross-shard invalidation mailboxes
// and the merge order are exercised), and — because the shard rings must
// block rather than spin — under GOMAXPROCS=1 explicitly.
func TestShardedMachineMatchesSerial(t *testing.T) {
	// Sequential subtest first: it pins GOMAXPROCS, and parallel subtests
	// only start after the sequential ones (and the restore) finish.
	t.Run("gomaxprocs=1", func(t *testing.T) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		k := equivalenceKernels()[3] // barneshut: multi-epoch, order-sensitive
		shardedVsSerial(t, k, 3)
	})
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			shardedVsSerial(t, k, 1)
			shardedVsSerial(t, k, 3)
		})
	}
}

// TestShardedDeterminism runs the same kernel through the sharded engine
// twice and demands identical snapshots — scheduling of the shard workers
// must never leak into results — and then runs the sharing1024 experiment
// (which defaults to the sharded engine at P=1024) twice end to end and
// demands byte-identical JSON reports.
func TestShardedDeterminism(t *testing.T) {
	t.Run("kernel", func(t *testing.T) {
		t.Parallel()
		k := equivalenceKernels()[3] // barneshut
		cfg := memsys.Config{
			PEs: 4, LineSize: 8, CacheCapacity: 256, Assoc: 1, WarmupEpochs: k.warm,
		}
		a := cacheSnap(runSharded(t, k, cfg, 3))
		b := cacheSnap(runSharded(t, k, cfg, 3))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("sharded machine is nondeterministic\nfirst:  %+v\nsecond: %+v", a, b)
		}
	})
	t.Run("sharing1024", func(t *testing.T) {
		t.Parallel()
		e, ok := Find("sharing1024")
		if !ok {
			t.Fatal("sharing1024 not registered")
		}
		opt := Options{Scale: ScaleQuick, MachineShards: 3}
		render := func() []byte {
			rep, err := Execute(context.Background(), e, opt)
			if err != nil {
				t.Fatalf("sharing1024: %v", err)
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf, FormatJSON); err != nil {
				t.Fatalf("render: %v", err)
			}
			return buf.Bytes()
		}
		first := render()
		second := render()
		if !bytes.Equal(first, second) {
			t.Errorf("sharing1024 reports differ between runs\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}

// bankDriver feeds a kernel's reference stream into a Bank-shaped sweep,
// with the warmup boundary mapped to the measurement reset so the
// mid-stream SetMeasuring path is part of the equivalence claim.
type bankDriver struct {
	access func(addr uint64, size uint32, read bool)
	reset  func(on bool)
	warm   int
}

func (d bankDriver) Ref(r trace.Ref) {
	d.access(r.Addr, r.Size, r.Kind == trace.Read)
}

func (d bankDriver) BeginEpoch(n int) {
	if n == d.warm && n > 0 {
		d.reset(true)
	}
}

// TestParallelBankMatchesSerialKernels replays every kernel's stream into
// a serial Bank and a sharded ParallelBank and demands bit-identical
// per-capacity miss counts — the exact-LRU face of the parallel-sweep
// guarantee.
func TestParallelBankMatchesSerialKernels(t *testing.T) {
	caps := []int{8, 64, 512, 4096}
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			serial := cache.MustBank(caps, 8)
			k.run(t, bankDriver{access: serial.Access, reset: serial.SetMeasuring, warm: k.warm})

			par := cache.MustParallelBank(caps, 8, 3)
			defer par.Close()
			k.run(t, bankDriver{access: par.Access, reset: par.SetMeasuring, warm: k.warm})

			if got, want := par.Curve(), serial.Curve(); !reflect.DeepEqual(got, want) {
				t.Errorf("parallel bank curve diverged\nparallel: %+v\nserial:   %+v", got, want)
			}
			for i := range caps {
				if got, want := par.Stats(i), serial.Stats(i); got != want {
					t.Errorf("member %d stats diverged\nparallel: %+v\nserial:   %+v", i, got, want)
				}
			}
		})
	}
}

// runPathMetrics is runPath with a fresh obs.Recorder attached: the system
// is instrumented and the kernel's sink is a metrics-counting context
// guard, so the snapshot holds the full per-stage counter set (trace
// delivery, batcher, directory, profiler/caches, miss classification).
func runPathMetrics(t *testing.T, k kernelCase, cfg memsys.Config, mk func(*memsys.System) trace.Consumer) obs.Metrics {
	t.Helper()
	rec := obs.New()
	sys := memsys.MustNew(cfg)
	sys.Instrument(rec)
	inner := mk(sys)
	k.run(t, trace.WithContext(obs.With(context.Background(), rec), inner))
	if fan, ok := inner.(*trace.Fanout); ok {
		if err := fan.Close(); err != nil {
			t.Fatalf("fanout close: %v", err)
		}
	}
	return rec.Snapshot()
}

// TestMetricsEquivalence is the observability face of the block-delivery
// invariant: with a Recorder attached, every per-stage counter — references
// and blocks through the guard, batcher deliveries, directory transactions
// by MSI state change, profiler accesses and queries, local/remote miss
// classification — must be bit-identical whether the stream reaches the
// system per-Ref (legacy), in blocks (native), or through a Fanout. The
// counting point for delivery metrics is the guard, upstream of where the
// three paths diverge; everything else is deterministic simulation state.
func TestMetricsEquivalence(t *testing.T) {
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			cfg := memsys.Config{
				PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: k.warm,
			}
			legacy := runPathMetrics(t, k, cfg, mkLegacy)
			native := runPathMetrics(t, k, cfg, mkNative)
			fanned := runPathMetrics(t, k, cfg, mkFanout(t))
			if len(legacy.Counters) == 0 {
				t.Fatal("legacy path recorded no counters; instrumentation is dead")
			}
			for _, name := range []string{
				obs.RefsDelivered, obs.BlocksDelivered,
				coherence.MetricReads, coherence.MetricWrites,
				cache.MetricProfilerAccesses,
			} {
				if legacy.Counters[name] == 0 {
					t.Errorf("counter %q is zero on the legacy path", name)
				}
			}
			if !reflect.DeepEqual(native.Counters, legacy.Counters) {
				t.Errorf("block path counters diverged from per-Ref path\nblock:  %v\nlegacy: %v",
					native.Counters, legacy.Counters)
			}
			if !reflect.DeepEqual(fanned.Counters, legacy.Counters) {
				t.Errorf("fanout path counters diverged from per-Ref path\nfanout: %v\nlegacy: %v",
					fanned.Counters, legacy.Counters)
			}
		})
	}
}
