package core

import (
	"context"
	"fmt"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// expBus quantifies the paper's Section 1 motivation for large caches on
// small-scale bus-based machines: "the use of a shared bus interconnect
// and the need to reduce traffic on it". Bus traffic per processor is
// (misses + writebacks) * lineSize bytes; the experiment sweeps the cache
// size for a Barnes-Hut run and reports bytes of bus traffic per 1000
// memory references — the quantity a snoopy bus saturates on, and the
// reason bus machines buy multi-hundred-KB caches even though the
// working-set knees sit far lower.
func expBus() Experiment {
	return Experiment{
		ID:          "bus",
		Title:       "Section 1: bus traffic vs cache size (why bus machines buy big caches)",
		Description: "Per-processor bus bytes (miss fills + writebacks) per 1000 references across cache sizes.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n, steps := 256, 3
			if o.Scale != ScaleQuick {
				n, steps = 512, 4
			}
			const lineSize = 32 // bus machines use wide lines
			sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
			series := Series{Label: "Barnes-Hut"}
			var rows [][]string
			for _, bytes := range sizes {
				bodies := barneshut.Plummer(n, 42)
				sys, err := openMachine(ctx, o, memsys.Config{
					PEs: 4, LineSize: lineSize,
					CacheCapacity: int(bytes / lineSize), ProfilePE: -1,
					WarmupEpochs: 1,
				})
				if err != nil {
					return nil, err
				}
				sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
					Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
				}, trace.WithContext(ctx, sys))
				if err != nil {
					sys.Close()
					return nil, err
				}
				for s := 0; s < steps; s++ {
					if _, err := sim.Step(); err != nil {
						sys.Close()
						return nil, err
					}
				}
				if err := sys.Close(); err != nil {
					return nil, err
				}
				st := sys.Cache(1).Stats()
				traffic := float64(st.Misses()+st.Writebacks) * lineSize
				perK := traffic / float64(st.Accesses) * 1000
				series.Points = append(series.Points, workingset.Point{
					CacheBytes: bytes, MissRate: perK,
				})
				rows = append(rows, []string{
					workingset.FormatBytes(bytes),
					fmt.Sprint(st.Misses()),
					fmt.Sprint(st.Writebacks),
					fmt.Sprintf("%.0f", perK),
				})
			}
			r := &Report{Title: "Bus traffic vs cache size (Section 1)"}
			r.Figures = append(r.Figures, Figure{
				Title:  fmt.Sprintf("Barnes-Hut n=%d, %d-byte lines, PE 1", n, lineSize),
				XLabel: "cache size", YLabel: "bus bytes / 1000 refs",
				Series: []Series{series},
			})
			r.Tables = append(r.Tables, Table{
				Title:  "traffic components",
				Header: []string{"cache", "misses", "writebacks", "bus bytes/1000 refs"},
				Rows:   rows,
			})
			first := series.Points[0].MissRate
			last := series.Points[len(series.Points)-1].MissRate
			if last > 0 {
				r.AddNote("growing the cache %s -> %s cuts bus traffic %.0fx — the Section 1 rationale for large caches on bus machines, distinct from the working-set knees (which sit far below 1 MB)",
					workingset.FormatBytes(sizes[0]), workingset.FormatBytes(sizes[len(sizes)-1]), first/last)
			}
			return r, nil
		},
	}
}
