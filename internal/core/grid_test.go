package core

import (
	"context"
	"testing"
)

// TestGridLUCell checks the analytic cell experiment: a concrete cache
// size yields a single-point figure, cache=0 yields the full model
// curve, and the point agrees with the curve at the same size.
func TestGridLUCell(t *testing.T) {
	exp, ok := Find("gridlu")
	if !ok {
		t.Fatal("gridlu not registered")
	}
	opt := Options{Scale: ScaleQuick, CacheBytes: 1 << 14, Problem: 1000, PEs: 16}
	point, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(point.Figures) != 1 || len(point.Figures[0].Series[0].Points) != 1 {
		t.Fatalf("cell report shape: %+v", point.Figures)
	}
	got := point.Figures[0].Series[0].Points[0]
	if got.CacheBytes != 1<<14 || got.MissRate <= 0 {
		t.Fatalf("cell point = %+v", got)
	}

	opt.CacheBytes = 0
	curve, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Figures[0].Series[0].Points) < 2 {
		t.Fatalf("curve report has %d points", len(curve.Figures[0].Series[0].Points))
	}
	for _, p := range curve.Figures[0].Series[0].Points {
		if p.CacheBytes == 1<<14 && p.MissRate != got.MissRate {
			t.Errorf("curve disagrees with cell at 16KB: %v vs %v", p.MissRate, got.MissRate)
		}
	}
}

// TestGridBHCell runs the simulated cell at a tiny quick configuration
// and checks both the concrete-cache and profiled shapes.
func TestGridBHCell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated cell")
	}
	exp, ok := Find("gridbh")
	if !ok {
		t.Fatal("gridbh not registered")
	}
	opt := Options{Scale: ScaleQuick, Problem: 64, PEs: 2, CacheBytes: 1 << 12}
	r, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Figures[0].Series[0].Points[0]
	if p.CacheBytes != 1<<12 || p.MissRate < 0 || p.MissRate > 1 {
		t.Fatalf("cell point = %+v", p)
	}

	opt.CacheBytes = 0
	prof, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Figures[0].Series[0].Points) < 2 {
		t.Fatalf("profiled curve has %d points", len(prof.Figures[0].Series[0].Points))
	}
}

// TestGridCellsDeterministic pins that identical cell Options produce
// identical reports — the property content-addressed sweep revival
// depends on.
func TestGridCellsDeterministic(t *testing.T) {
	exp, ok := Find("gridlu")
	if !ok {
		t.Fatal("gridlu not registered")
	}
	opt := Options{Scale: ScaleQuick, CacheBytes: 1 << 13, Problem: 800, PEs: 8}
	a, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Figures[0].Series[0].Points[0] != b.Figures[0].Series[0].Points[0] {
		t.Errorf("gridlu not deterministic: %+v vs %+v",
			a.Figures[0].Series[0].Points[0], b.Figures[0].Series[0].Points[0])
	}
}
