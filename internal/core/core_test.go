package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"wsstudy/internal/workingset"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"fig2", "fig4", "fig5", "fig6", "fig6dm", "fig7",
		"table1", "table2", "machines", "grain", "scalingbh", "cost",
		"assoc", "linesize", "scalingall", "phases", "bus", "sharing1024",
		"gridlu", "gridbh"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Description == "" || reg[i].Run == nil {
			t.Errorf("experiment %q incomplete", reg[i].ID)
		}
	}
	if _, ok := Find("fig6"); !ok {
		t.Error("Find(fig6) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

// TestAllExperimentsRunQuick is the end-to-end integration test: every
// registered experiment must run in quick mode and render non-trivially.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(rep.Figures) == 0 && len(rep.Tables) == 0 {
				t.Fatalf("%s: empty report", e.ID)
			}
			var sb strings.Builder
			rep.Render(&sb, FormatText)
			out := sb.String()
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously short render:\n%s", e.ID, out)
			}
			for _, fig := range rep.Figures {
				for _, s := range fig.Series {
					if len(s.Points) == 0 {
						t.Errorf("%s: series %q empty", e.ID, s.Label)
					}
					c := workingset.Curve{Label: s.Label, Points: s.Points}
					if err := c.Validate(); err != nil {
						t.Errorf("%s: %v", e.ID, err)
					}
				}
			}
		})
	}
}

// TestFig6MeasuredShape checks paper-facing properties of the Figure 6
// reproduction: a big lev1 drop and a floor under 2%.
func TestFig6MeasuredShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	e, _ := Find("fig6")
	rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Figures[0].Series[0]
	c := workingset.Curve{Points: s.Points}
	tiny := c.RateAt(64)
	mid := c.RateAt(4096)
	floor := c.RateAt(4 << 20)
	if !(tiny > 2*mid && mid > floor) {
		t.Errorf("fig6 shape wrong: %v, %v, %v", tiny, mid, floor)
	}
	if floor > 0.02 {
		t.Errorf("fig6 floor = %v, want < 2%%", floor)
	}
}

// TestFig6DMRatio checks the Section 6.4 reproduction: direct-mapped needs
// a substantially larger cache than fully associative (paper: ~3x).
func TestFig6DMRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	e, _ := Find("fig6dm")
	rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "ratio") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fig6dm did not report a size ratio; notes: %v", rep.Notes)
	}
	// The DM curve should sit at or above the FA curve everywhere.
	fa := rep.Figures[0].Series[0]
	dm := rep.Figures[0].Series[1]
	worse := 0
	for i := range fa.Points {
		if dm.Points[i].MissRate >= fa.Points[i].MissRate-1e-9 {
			worse++
		}
	}
	if worse < len(fa.Points)*3/4 {
		t.Errorf("direct-mapped better than fully associative at %d/%d sizes",
			len(fa.Points)-worse, len(fa.Points))
	}
}

func TestTable2Values(t *testing.T) {
	e, _ := Find("table2")
	rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("table 2 has %d rows", len(tab.Rows))
	}
	// LU row: ours = 8 KB exactly (B=32 block).
	if tab.Rows[0][3] != "8 KB" {
		t.Errorf("LU cache(ours) = %q, want 8 KB", tab.Rows[0][3])
	}
	// VR row: ours = 70 KB (4000+110*600 = 70000 B).
	if !strings.Contains(tab.Rows[4][3], "68") && !strings.Contains(tab.Rows[4][3], "70") {
		t.Errorf("VR cache(ours) = %q, want ~70 KB", tab.Rows[4][3])
	}
}

func TestRenderFormats(t *testing.T) {
	r := &Report{Title: "demo"}
	r.Figures = append(r.Figures, Figure{
		Title: "f", XLabel: "cache size", YLabel: "rate",
		Series: []Series{{Label: "s", Points: []workingset.Point{
			{CacheBytes: 64, MissRate: 1}, {CacheBytes: 128, MissRate: 0.1},
		}}},
	})
	r.Tables = append(r.Tables, Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}})
	r.AddNote("note %d", 7)
	var sb strings.Builder
	r.Render(&sb, FormatText)
	out := sb.String()
	for _, frag := range []string{"demo", "64 B", "knees[s]", "note 7", "-- t --"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestScalingAllRows(t *testing.T) {
	e, _ := Find("scalingall")
	rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("want MC and TC tables, got %d", len(rep.Tables))
	}
	mc, tc := rep.Tables[0], rep.Tables[1]
	if len(mc.Rows) != 10 || len(tc.Rows) != 10 {
		t.Fatalf("want 5 apps x 2 machine sizes per model")
	}
	// LU MC at 16x: time 4x; LU TC at 16x: grain 0.40x.
	if mc.Rows[0][5] != "4.0x" {
		t.Errorf("LU MC time = %q, want 4.0x", mc.Rows[0][5])
	}
	if tc.Rows[0][3] != "0.40x" {
		t.Errorf("LU TC grain = %q, want 0.40x", tc.Rows[0][3])
	}
	// CG time constant under both models.
	if mc.Rows[1][5] != "1.0x" || tc.Rows[1][5] != "1.0x" {
		t.Error("CG time should be constant under both models")
	}
}

func TestPhasesNarrative(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation step")
	}
	e, _ := Find("phases")
	rep, err := e.Run(context.Background(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	work, proj := rep.Tables[0], rep.Tables[1]
	if len(work.Rows) != 4 || len(proj.Rows) != 5 {
		t.Fatalf("unexpected table shapes: %d, %d rows", len(work.Rows), len(proj.Rows))
	}
	// Force dominates the measured step.
	if work.Rows[0][0] != "force computation" {
		t.Fatal("first row should be the force phase")
	}
	// The paper's claim: tree phases small at 512 PEs, dominant at 256K.
	parse := func(s string) float64 {
		var v float64
		fmt.Sscanf(s, "%f%%", &v)
		return v
	}
	at512 := parse(proj.Rows[1][3])
	at256k := parse(proj.Rows[4][3])
	if at512 > 25 {
		t.Errorf("tree share at 512 PEs = %v%%, should be modest", at512)
	}
	if at256k < 50 {
		t.Errorf("tree share at 256K PEs = %v%%, should dominate", at256k)
	}
}

func TestRenderCSV(t *testing.T) {
	r := &Report{Title: "demo"}
	r.Figures = append(r.Figures, Figure{
		Title: "fig", Series: []Series{{Label: "s", Points: []workingset.Point{
			{CacheBytes: 64, MissRate: 0.5},
			{CacheBytes: 128, MissRate: 0.25},
		}}},
	})
	var sb strings.Builder
	if err := r.Render(&sb, FormatCSV); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "figure,series,cache_bytes,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "64,0.5") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSparklinesInRender(t *testing.T) {
	r := &Report{Title: "demo"}
	r.Figures = append(r.Figures, Figure{
		Title: "fig", XLabel: "cache size", YLabel: "rate",
		Series: []Series{{Label: "s", Points: []workingset.Point{
			{CacheBytes: 64, MissRate: 1}, {CacheBytes: 128, MissRate: 0.01},
		}}},
	})
	var sb strings.Builder
	r.Render(&sb, FormatText)
	if !strings.Contains(sb.String(), "log scale") {
		t.Fatalf("no sparkline in render:\n%s", sb.String())
	}
}
