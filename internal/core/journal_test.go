package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
)

// journalExp builds a small deterministic experiment for journal tests:
// the report depends only on (id, scale), like the real registry.
func journalExp(id string) Experiment {
	return Experiment{
		ID:    id,
		Title: "journal " + id,
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			r := &Report{Title: "journal " + id}
			r.Tables = append(r.Tables, Table{
				Title:  "cells",
				Header: []string{"id", "scale"},
				Rows:   [][]string{{id, opt.Scale.String()}},
			})
			r.AddNote("id=%s scale=%s", id, opt.Scale)
			return r, nil
		},
	}
}

func TestJournalRecordLookupReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	quick := Options{Scale: ScaleQuick}
	full := Options{}
	rep, _ := journalExp("a").Run(context.Background(), quick)
	if err := j.Record("a", quick, rep); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", quick, rep); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
	if _, ok := j.Lookup("a", full); ok {
		t.Error("a full-scale lookup revived a quick-scale cell")
	}
	if _, ok := j.Lookup("b", quick); ok {
		t.Error("a different experiment id revived the cell")
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := j2.Lookup("a", quick)
	if !ok {
		t.Fatal("reopened journal lost the cell")
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("revived report differs:\n got %+v\nwant %+v", got, rep)
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	quick := Options{Scale: ScaleQuick}
	for _, id := range []string{"a", "b"} {
		rep, _ := journalExp(id).Run(context.Background(), quick)
		if err := j.Record(id, quick, rep); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// A crash mid-append leaves a torn frame: a plausible header whose
	// payload never made it.
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xEE, 0x02, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 'p', 'a', 'r', 't'})
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open over a torn tail: %v", err)
	}
	if j2.Len() != 2 {
		t.Errorf("Len = %d after torn-tail recovery, want 2", j2.Len())
	}
	// The tail is gone from disk, and appending resumes cleanly.
	if data, _ := os.ReadFile(path); len(data) != len(intact) {
		t.Errorf("file is %d bytes after recovery, want %d", len(data), len(intact))
	}
	rep, _ := journalExp("c").Run(context.Background(), quick)
	if err := j2.Record("c", quick, rep); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 {
		t.Errorf("Len = %d after post-recovery append, want 3", j3.Len())
	}
}

func TestJournalCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	quick := Options{Scale: ScaleQuick}
	var ends []int64
	for _, id := range []string{"a", "b"} {
		rep, _ := journalExp(id).Run(context.Background(), quick)
		if err := j.Record(id, quick, rep); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		ends = append(ends, st.Size())
	}
	j.Close()

	// Flip a byte inside the second frame's payload: its CRC fails, so
	// replay keeps cell one and truncates from the damage on.
	data, _ := os.ReadFile(path)
	data[ends[0]+12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("Len = %d after corrupt second frame, want 1", j2.Len())
	}
	if _, ok := j2.Lookup("a", quick); !ok {
		t.Error("intact first cell lost")
	}
	if st, _ := os.Stat(path); st.Size() != ends[0] {
		t.Errorf("file is %d bytes, want truncation to %d", st.Size(), ends[0])
	}
}

func TestJournalForeignFileRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	if err := os.WriteFile(path, []byte("this is not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Errorf("foreign file revived %d cells", j.Len())
	}
	quick := Options{Scale: ScaleQuick}
	rep, _ := journalExp("a").Run(context.Background(), quick)
	if err := j.Record("a", quick, rep); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteResumesFromJournal is the in-process resume path: a second
// RunSuite over the same journal revives every cell, runs nothing, and
// produces the same reports.
func TestSuiteResumesFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	exps := []Experiment{journalExp("a"), journalExp("b"), journalExp("c")}
	opt := SuiteOptions{Options: Options{Scale: ScaleQuick}, Workers: 2}

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt.Journal = j1
	first := RunSuite(context.Background(), exps, opt)
	j1.Close()
	if s := first.FailureSummary(); s != "" {
		t.Fatal(s)
	}

	var runs atomic.Int32
	reran := make([]Experiment, len(exps))
	for i, e := range exps {
		run := e.Run
		e.Run = func(ctx context.Context, o Options) (*Report, error) {
			runs.Add(1)
			return run(ctx, o)
		}
		reran[i] = e
	}
	rec := obs.New()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt.Journal = j2
	second := RunSuite(obs.With(context.Background(), rec), reran, opt)
	if n := runs.Load(); n != 0 {
		t.Errorf("resumed suite ran %d experiments, want 0", n)
	}
	for _, r := range second.Results {
		if !r.Revived || r.Err != nil {
			t.Errorf("%s: revived=%v err=%v, want a revived cell", r.ID, r.Revived, r.Err)
		}
	}
	if got := rec.Snapshot().Counter(obs.SuiteRevived); got != 3 {
		t.Errorf("suite.cells.revived = %d, want 3", got)
	}
	if !reflect.DeepEqual(stripMetrics(second.Reports()), stripMetrics(first.Reports())) {
		t.Error("resumed reports differ from the original run")
	}
}

// TestSuiteSurvivesJournalAppendFault: checkpoint loss is not cell
// loss — the suite completes, counts the failures, and simply isn't
// resumable for those cells.
func TestSuiteSurvivesJournalAppendFault(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	path := filepath.Join(t.TempDir(), "suite.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := fault.Arm("core.journal.append", fault.Trigger{
		Mode: fault.ModeError, Err: errors.New("disk full"),
	}); err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	rep := RunSuite(obs.With(context.Background(), rec), []Experiment{journalExp("a"), journalExp("b")},
		SuiteOptions{Options: Options{Scale: ScaleQuick}, Workers: 1, Journal: j})
	if s := rep.FailureSummary(); s != "" {
		t.Fatalf("journal faults failed cells:\n%s", s)
	}
	m := rec.Snapshot()
	if m.Counter(obs.SuiteJournalErrors) != 2 {
		t.Errorf("suite.journal.errors = %d, want 2", m.Counter(obs.SuiteJournalErrors))
	}
	if j.Len() != 0 {
		t.Errorf("faulted appends still journaled %d cells", j.Len())
	}
}

// crashSuite is the experiment set the SIGKILL child and the resuming
// parent share. Order matters: with one worker, cells complete in
// slice order, so the delay failpoint's After count pins exactly where
// the child stalls.
func crashSuite() []Experiment {
	return []Experiment{
		journalExp("crash-a"), journalExp("crash-b"),
		journalExp("crash-c"), journalExp("crash-d"),
	}
}

// TestCrashResumeSIGKILL is the crash-resume proof from the issue: a
// child process runs the suite with a checkpoint journal and a delay
// failpoint that stalls the third cell; the parent SIGKILLs it
// mid-stall — no deferred cleanup, no flushing, the exact kill -9
// case — then resumes the suite in-process over the recovered journal
// and demands the completed cells revive and the merged report match a
// fault-free baseline bit for bit.
func TestCrashResumeSIGKILL(t *testing.T) {
	path := os.Getenv("WSS_CRASH_JOURNAL")
	if os.Getenv("WSS_CRASH_CHILD") == "1" {
		if err := fault.ArmFromEnv(os.Getenv); err != nil {
			fmt.Fprintln(os.Stderr, "child: arming failpoints:", err)
			os.Exit(2)
		}
		j, err := OpenJournal(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "child: opening journal:", err)
			os.Exit(2)
		}
		// Stalls on the third cell until the parent kills us.
		RunSuite(context.Background(), crashSuite(), SuiteOptions{
			Options: Options{Scale: ScaleQuick}, Workers: 1, Journal: j,
		})
		os.Exit(0) // only reached if the parent never kills us
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(t.TempDir(), "crash.journal")
	cmd := exec.Command(exe, "-test.run", "^TestCrashResumeSIGKILL$", "-test.v")
	cmd.Env = append(os.Environ(),
		"WSS_CRASH_CHILD=1",
		"WSS_CRASH_JOURNAL="+path,
		fault.EnvVar+"=core.execute=delay(120s)@2",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the journal holds both completed cells (the child is
	// then stalled inside cell three), then SIGKILL: no cleanup runs.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never journaled the first two cells")
		}
		probe, err := OpenJournal(copyFile(t, path))
		if err == nil {
			n := probe.Len()
			probe.Close()
			if n >= 2 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Resume in-process over the journal the kill left behind.
	rec := obs.New()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("opening journal after SIGKILL: %v", err)
	}
	defer j.Close()
	revivable := j.Len()
	if revivable < 2 {
		t.Fatalf("journal revived %d cells after SIGKILL, want >= 2", revivable)
	}
	resumed := RunSuite(obs.With(context.Background(), rec), crashSuite(), SuiteOptions{
		Options: Options{Scale: ScaleQuick}, Workers: 1, Journal: j,
	})
	if s := resumed.FailureSummary(); s != "" {
		t.Fatalf("resumed suite failed:\n%s", s)
	}
	if got := rec.Snapshot().Counter(obs.SuiteRevived); got != uint64(revivable) {
		t.Errorf("suite.cells.revived = %d, want %d", got, revivable)
	}

	// The merged report must be indistinguishable from a run that never
	// crashed.
	baseline := RunSuite(context.Background(), crashSuite(), SuiteOptions{
		Options: Options{Scale: ScaleQuick}, Workers: 1,
	})
	if !reflect.DeepEqual(stripMetrics(resumed.Reports()), stripMetrics(baseline.Reports())) {
		t.Error("resumed merged report differs from the fault-free baseline")
	}
}

// copyFile snapshots src so the parent can probe the child's live
// journal without OpenJournal's tail-truncation racing the child's
// appends.
func copyFile(t *testing.T, src string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		data = nil
	}
	dst := filepath.Join(t.TempDir(), "probe.journal")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}
