package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/cache"
	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
)

// Sampling gates. Two claims back the opt.sample axis:
//
//  1. Equivalence: SampleRate=1 is the exact profiler — bit-identical
//     statistics to a machine that never heard of sampling, for every
//     kernel, serial and sharded, including under GOMAXPROCS=1. This is
//     the entry the Makefile equivalence target runs.
//  2. Accuracy: at R ≤ 64, the sampled miss-rate curve's knee lands
//     within one grid sample of the exact curve's on every kernel.

// rateOneVsDefault runs one kernel through a profiling machine built
// with SampleRate unset (the pre-sampling default) and with SampleRate=1
// explicitly, and demands bit-identical snapshots.
func rateOneVsDefault(t *testing.T, k kernelCase, shards int) {
	t.Helper()
	caps := []int{8, 64, 512, 4096}
	base := memsys.Config{
		PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: k.warm,
		Shards: shards,
	}
	runCfg := func(cfg memsys.Config) profSnapshot {
		m, err := memsys.Open(cfg)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		k.run(t, m)
		if err := m.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return profSnap(m, 1, caps)
	}
	def := runCfg(base)
	one := base
	one.SampleRate = 1
	explicit := runCfg(one)
	if !reflect.DeepEqual(explicit, def) {
		t.Errorf("SampleRate=1 diverged from the default path (shards=%d)\nrate1:   %+v\ndefault: %+v",
			shards, explicit, def)
	}
}

// TestSamplingEquivalenceRateOne is the equivalence-gate entry for the
// sampling axis: requesting rate 1 must route through the exact
// profiler, bit-identically, on every kernel — serially, under the
// region-sharded engine, and under GOMAXPROCS=1.
func TestSamplingEquivalenceRateOne(t *testing.T) {
	t.Run("gomaxprocs=1", func(t *testing.T) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		k := equivalenceKernels()[3] // barneshut: multi-epoch, order-sensitive
		rateOneVsDefault(t, k, 0)
		rateOneVsDefault(t, k, 3)
	})
	for _, k := range equivalenceKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			rateOneVsDefault(t, k, 0)
			rateOneVsDefault(t, k, 3)
		})
	}
}

// samplingKernels are the five applications at sizes large enough that a
// 1/64 spatial sample still holds tens of lines — the regime the
// accuracy claim is about. (The equivalence kernels are smaller; exact
// equality needs no population.)
func samplingKernels() []kernelCase {
	return []kernelCase{
		{name: "lu", warm: 0, run: func(t *testing.T, sink trace.Consumer) {
			m := lu.NewBlockMatrix(128, 8, nil)
			m.FillRandomDominant(1)
			if _, err := lu.FactorTraced(m, lu.Grid{PR: 2, PC: 2}, sink); err != nil {
				t.Fatalf("lu: %v", err)
			}
		}},
		{name: "cg", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			part, err := cg.NewPartition2D(32, 2, 2, nil)
			if err != nil {
				t.Fatalf("cg: %v", err)
			}
			solver := cg.NewSolver2D(part, sink)
			b := make([]float64, 32*32)
			for i := range b {
				b[i] = 1
			}
			solver.SetB(b)
			if _, err := solver.Solve(cg.Config{MaxIters: 6}); err != nil {
				t.Fatalf("cg: %v", err)
			}
		}},
		{name: "fft", warm: 0, run: func(t *testing.T, sink trace.Consumer) {
			f, err := fft.New(fft.Config{LogN: 14, P: 4, InternalRadix: 4}, sink)
			if err != nil {
				t.Fatalf("fft: %v", err)
			}
			x := make([]complex128, 1<<14)
			for i := range x {
				x[i] = complex(float64(i%17)-8, float64(i%13)-6)
			}
			f.SetInput(x)
			if err := f.Run(); err != nil {
				t.Fatalf("fft: %v", err)
			}
		}},
		{name: "barneshut", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			bodies := barneshut.Plummer(512, 42)
			sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
				Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
			}, sink)
			if err != nil {
				t.Fatalf("barneshut: %v", err)
			}
			for s := 0; s < 3; s++ {
				if _, err := sim.Step(); err != nil {
					t.Fatalf("barneshut: %v", err)
				}
			}
		}},
		{name: "volrend", warm: 1, run: func(t *testing.T, sink trace.Consumer) {
			vol := volrend.SyntheticHead(32, 32, 28)
			ren, err := volrend.NewRenderer(vol, volrend.Config{
				ImageW: 48, ImageH: 48, P: 4,
			}, sink)
			if err != nil {
				t.Fatalf("volrend: %v", err)
			}
			for f := 0; f < 2; f++ {
				if _, err := ren.RenderFrame(0.04 * float64(f)); err != nil {
					t.Fatalf("volrend: %v", err)
				}
			}
		}},
	}
}

// kneeGrid is the capacity grid (in lines) the accuracy claim is stated
// on: one point per octave, so "within one grid sample" means within a
// factor of two in capacity.
func kneeGrid() []int {
	var caps []int
	for c := 8; c <= 1<<18; c *= 2 {
		caps = append(caps, c)
	}
	return caps
}

// kneeIndex locates the largest relative drop between consecutive grid
// samples of a miss curve — the working-set knee as the paper reads it
// off Figure 6-style plots.
func kneeIndex(counts []cache.MissCount) int {
	best, bi := -1.0, 0
	for i := 0; i+1 < len(counts); i++ {
		a, b := float64(counts[i].Misses()), float64(counts[i+1].Misses())
		if a <= 0 {
			continue
		}
		if drop := (a - b) / a; drop > best {
			best, bi = drop, i
		}
	}
	return bi
}

// profileKernel runs one kernel through a profiling machine at the given
// sampling rate and returns its curve on the knee grid.
func profileKernel(t *testing.T, k kernelCase, rate int) ([]cache.MissCount, cache.Profiler) {
	t.Helper()
	m, err := memsys.Open(memsys.Config{
		PEs: 4, LineSize: 8, Profile: true, ProfilePE: 1,
		WarmupEpochs: k.warm, SampleRate: rate,
	})
	if err != nil {
		t.Fatalf("open (rate=%d): %v", rate, err)
	}
	k.run(t, m)
	if err := m.Close(); err != nil {
		t.Fatalf("close (rate=%d): %v", rate, err)
	}
	p := m.Profiler(1)
	return p.Curve(kneeGrid()), p
}

// TestSampledKneeAccuracy is the measured-error harness: for every
// kernel and every rate up to 64, the sampled curve's knee must land
// within one grid sample of the exact curve's, the full-stream
// denominators must be exact, and the reported error bound must be
// finite and positive.
func TestSampledKneeAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy harness runs the larger sampling kernels")
	}
	for _, k := range samplingKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			_, exact := profileKernel(t, k, 1)
			for _, rate := range []int{4, 16, 64} {
				_, samp := profileKernel(t, k, rate)
				// The estimator is only meaningful where the scaled-down
				// stack holds a few dozen sampled lines; below that the
				// quantization of C/R dominates and the curve overshoots.
				// State the claim on the trusted region (exact curve
				// re-gridded so indices align). DESIGN.md §12 documents
				// the same floor for consumers.
				var grid []int
				for _, c := range kneeGrid() {
					if c >= 32*rate {
						grid = append(grid, c)
					}
				}
				ek := kneeIndex(exact.Curve(grid))
				sk := kneeIndex(samp.Curve(grid))
				if d := sk - ek; d < -1 || d > 1 {
					t.Errorf("rate %d: knee at grid index %d, exact at %d (>1 sample apart)", rate, sk, ek)
				}
				if samp.Reads() != exact.Reads() || samp.Writes() != exact.Writes() {
					t.Errorf("rate %d: denominators reads=%d writes=%d, exact %d/%d",
						rate, samp.Reads(), samp.Writes(), exact.Reads(), exact.Writes())
				}
				if samp.SampledLines() == 0 {
					t.Errorf("rate %d: no lines sampled; kernel too small for the claim", rate)
				}
				if eb := samp.ErrorBound(); eb <= 0 || eb >= 1 || math.IsNaN(eb) {
					t.Errorf("rate %d: implausible error bound %g", rate, eb)
				}
			}
		})
	}
}

// TestFig6SampledReport: the fig6 experiment run with opt.sample > 1
// must attach the sampling block to its report, and with the default
// rate must not — the ReportV1 contract the HTTP API serves.
func TestFig6SampledReport(t *testing.T) {
	e, ok := Find("gridbh")
	if !ok {
		t.Fatal("gridbh not registered")
	}
	rep, err := e.Run(t.Context(), Options{Scale: ScaleQuick, SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampling == nil {
		t.Fatal("sampled run attached no Sampling block")
	}
	if rep.Sampling.Rate != 16 || rep.Sampling.SampledLines <= 0 ||
		rep.Sampling.ErrorBound <= 0 || rep.Sampling.ErrorBound >= 1 {
		t.Errorf("sampling block = %+v", rep.Sampling)
	}
	v1 := rep.V1()
	if v1.Sampling == nil || v1.Sampling.Rate != 16 {
		t.Errorf("V1 sampling block = %+v", v1.Sampling)
	}
	back := v1.Report()
	if back.Sampling == nil || *back.Sampling != *rep.Sampling {
		t.Errorf("sampling round-trip lost: %+v vs %+v", back.Sampling, rep.Sampling)
	}

	exact, err := e.Run(t.Context(), Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sampling != nil {
		t.Errorf("exact run attached a sampling block: %+v", exact.Sampling)
	}
}
