package core

import (
	"context"
	"fmt"
	"math"

	"wsstudy/internal/apps/cg"
	"wsstudy/internal/machine"
	"wsstudy/internal/memsys"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// expSharing1024 simulates — rather than extrapolates — the paper's
// headline 1024-PE configuration: a CG solve partitioned across 1024
// processors with concrete per-PE caches, sweeping the line size to watch
// communication (remote misses, invalidations) grow with grain. The serial
// engine made this configuration intractable; the region-sharded machine
// is what lets a directory over 1024 caches run in CI time, so this
// experiment defaults to the sharded engine even when the run doesn't ask
// for one. Every statistic is engine-independent (the equivalence gate),
// so the default is a speed choice, not a semantic one.
func expSharing1024() Experiment {
	return Experiment{
		ID:    "sharing1024",
		Title: "Sharing at paper scale: CG on 1024 processors vs line size",
		Description: "Direct simulation of a 1024-PE cache-coherent machine " +
			"(region-sharded engine): remote misses, invalidations and the " +
			"resulting FLOPs-per-word ratio as the line size grows, classified " +
			"against the Section 2.3 sustainability bands.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			const p = 1024
			px := int(math.Sqrt(float64(p)))
			n, iters, warm := 64, 3, 1
			if o.Scale != ScaleQuick {
				n, iters, warm = 128, 4, 1
			}
			const cacheBytes = 4 << 10 // per-PE; sized well above the lev1WS knee
			lineSizes := []uint32{8, 16, 32, 64}

			r := &Report{Title: fmt.Sprintf("Sharing at P=%d (CG %dx%d)", p, n, n)}
			remote := Series{Label: "remote misses / FLOP"}
			tbl := Table{
				Title: "communication vs line size",
				Header: []string{
					"line", "local miss", "remote miss", "invalidations",
					"downgrades", "FLOPs/word", "sustainability",
				},
			}
			measuredFLOPs := float64(iters-warm) * 20 * float64(n) * float64(n)

			for _, ls := range lineSizes {
				cfg := memsys.Config{
					PEs: p, LineSize: ls, Dist: memsys.Interleaved,
					CacheCapacity: int(cacheBytes / ls), ProfilePE: -1,
					WarmupEpochs: warm,
				}
				if o.MachineShards == 0 {
					cfg.Shards = memsys.DefaultShards()
				} else {
					cfg.Shards = o.MachineShards
				}
				sys := memsys.MustOpen(cfg)
				sys.Instrument(obs.From(ctx))

				part, err := cg.NewPartition2D(n, px, p/px, nil)
				if err != nil {
					sys.Close()
					return nil, err
				}
				solver := cg.NewSolver2D(part, trace.WithContext(ctx, sys))
				b := make([]float64, n*n)
				for i := range b {
					b[i] = 1
				}
				solver.SetB(b)
				if _, err := solver.Solve(cg.Config{MaxIters: iters}); err != nil {
					sys.Close()
					return r, err
				}
				if err := sys.Close(); err != nil {
					return r, err
				}

				st := sys.Stats()
				ds := sys.DirectoryStats()
				words := float64(st.RemoteMisses) * float64(ls) / 8
				ratio := math.Inf(1)
				if words > 0 {
					ratio = measuredFLOPs / words
				}
				remote.Points = append(remote.Points, workingset.Point{
					CacheBytes: uint64(ls),
					MissRate:   float64(st.RemoteMisses) / measuredFLOPs,
				})
				tbl.Rows = append(tbl.Rows, []string{
					workingset.FormatBytes(uint64(ls)),
					fmt.Sprint(st.LocalMisses),
					fmt.Sprint(st.RemoteMisses),
					fmt.Sprint(ds.Invalidations),
					fmt.Sprint(ds.Downgrades),
					fmt.Sprintf("%.1f", ratio),
					machine.Classify(ratio).String(),
				})
			}

			r.Figures = append(r.Figures, Figure{
				Title:  fmt.Sprintf("CG %dx%d, P=%d, %s caches", n, n, p, workingset.FormatBytes(cacheBytes)),
				XLabel: "line size", YLabel: "remote misses / FLOP",
				Series: []Series{remote},
			})
			r.Tables = append(r.Tables, tbl)

			paragon := machine.Paragon(p)
			cm5 := machine.CM5(p)
			r.AddNote("machine context: %s; %s", paragon, cm5)
			r.AddNote("remote data moved counts measured epochs only (%d of %d iterations); words are double words, matching the Section 2.3 ratios", iters-warm, iters)
			return r, nil
		},
	}
}
