package core

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"wsstudy/internal/fault"
)

// The suite checkpoint journal is a CRC-framed append-only log of
// completed (experiment, options) cells. RunSuite appends each cell's
// report as it completes; a rerun opens the same journal and revives
// completed cells instead of recomputing them, so a suite killed
// mid-sweep — power loss, OOM kill, ^C — resumes where it stopped and
// still produces the same merged report a fault-free run would.
//
// Format: the magic line, then frames of
//
//	[4]byte little-endian payload length
//	[4]byte CRC-32C (Castagnoli) of the payload
//	payload: JSON journalCell
//
// A crash can only ever tear the final frame (appends are a single
// write), and OpenJournal truncates a torn or corrupt tail back to the
// last intact frame — recovery is built into opening the file.

// journalMagic identifies version 1 of the journal format.
const journalMagic = "wssjournal1\n"

// journalMaxFrame bounds a frame payload (a defense against reading a
// garbage length from a corrupt header, not a practical limit — cells
// are rendered reports, typically a few KB).
const journalMaxFrame = 64 << 20

// fpJournalAppend injects journal-append failures: a full disk while
// checkpointing. The suite treats an append failure as a lost
// checkpoint, not a lost cell — the run continues, only resumability
// suffers.
var fpJournalAppend = fault.New("core.journal.append")

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// journalCell is one completed cell's frame payload.
type journalCell struct {
	// ID and Canon identify the cell (experiment id + canonical
	// Options); Key is its hex content address under the current report
	// schema, so cells written by an incompatible schema are never
	// revived.
	ID     string    `json:"id"`
	Canon  string    `json:"canon"`
	Key    string    `json:"key"`
	Report *ReportV1 `json:"report"`
}

// Journal is a suite checkpoint log. Safe for concurrent use by the
// suite's workers. A nil *Journal is valid and records/revives nothing.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cells map[string]*Report // content address (hex) → revived report
}

// OpenJournal opens (or creates) the checkpoint journal at path,
// replaying its intact frames and truncating any torn or corrupt tail
// left by a crash mid-append. The returned journal serves lookups from
// the replayed cells and appends new ones at the recovered end.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, cells: make(map[string]*Report)}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading journal: %w", err)
	}
	good := int64(0)
	if len(data) > 0 {
		if !bytes.HasPrefix(data, []byte(journalMagic)) {
			// Not a journal (or a torn first write): start over.
			data = nil
		} else {
			good = int64(len(journalMagic))
			for _, frame := range decodeJournalFrames(data[good:]) {
				var c journalCell
				if json.Unmarshal(frame, &c) == nil && c.Report != nil &&
					c.Report.SchemaVersion == ReportSchemaVersion {
					j.cells[c.Key] = c.Report.Report()
				}
				good += int64(8 + len(frame))
			}
		}
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: seeking journal end: %w", err)
	}
	if good == 0 {
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: writing journal magic: %w", err)
		}
	}
	return j, nil
}

// decodeJournalFrames walks the frames in data, returning each intact
// payload in order and stopping at the first torn or corrupt frame —
// everything from there on is the tail the opener truncates.
func decodeJournalFrames(data []byte) [][]byte {
	var frames [][]byte
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data)
		sum := binary.LittleEndian.Uint32(data[4:])
		if n == 0 || n > journalMaxFrame || int(n) > len(data)-8 {
			break
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, journalCRC) != sum {
			break
		}
		frames = append(frames, payload)
		data = data[8+n:]
	}
	return frames
}

// Len reports how many distinct cells the journal holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Path reports the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Lookup revives the completed cell for (id, opt), or reports that the
// suite must compute it. Cells are matched by content address, so a
// journal written at a different scale — or under a different report
// schema — never aliases.
func (j *Journal) Lookup(id string, opt Options) (*Report, bool) {
	if j == nil {
		return nil, false
	}
	addr := ResultKey(id, opt)
	j.mu.Lock()
	defer j.mu.Unlock()
	rep, ok := j.cells[hex.EncodeToString(addr[:])]
	return rep, ok
}

// Record checkpoints a completed cell: one frame appended with a single
// write and synced, so a crash can tear at most the frame being
// written. Re-recording an already journaled cell is a no-op.
func (j *Journal) Record(id string, opt Options, rep *Report) error {
	if j == nil || rep == nil {
		return nil
	}
	addr := ResultKey(id, opt)
	key := hex.EncodeToString(addr[:])

	// Strip run metrics from the checkpoint: they describe the process
	// that computed the cell, not the cell, and a resumed run folds its
	// own metrics.
	stripped := *rep
	stripped.Metrics = nil
	v1 := stripped.V1()
	payload, err := json.Marshal(journalCell{
		ID: id, Canon: opt.Canonical(), Key: key, Report: v1,
	})
	if err != nil {
		return fmt.Errorf("core: encoding journal cell: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, journalCRC))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.cells[key]; ok {
		return nil
	}
	if err := fpJournalAppend.Inject(nil); err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("core: appending journal cell: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("core: syncing journal: %w", err)
	}
	j.cells[key] = v1.Report()
	return nil
}

// Close releases the journal file. The journal must not be used after.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
