package core

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"wsstudy/internal/capture"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

// RetryPolicy is the one retry loop the repo uses: jittered exponential
// backoff with typed-error classification and deadline budgeting. The
// suite runner, the result store's compute path, and (through the
// default classifier) capture re-recording all share it, so "what is
// worth retrying" is decided in exactly one place.
//
// The zero value is usable and means "one attempt, no retries"; set
// MaxAttempts to enable retrying.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, the first included
	// (<= 0 means 1: no retries).
	MaxAttempts int
	// Backoff is the delay before the first retry, doubling per attempt
	// (0 = 100ms).
	Backoff time.Duration
	// MaxBackoff caps the grown delay (0 = 30s).
	MaxBackoff time.Duration
	// Jitter spreads each delay uniformly across ±Jitter of its nominal
	// value (0.2 = ±20%), decorrelating retry storms across workers.
	// Zero means no jitter.
	Jitter float64
	// Classify reports whether an error is worth retrying
	// (nil = DefaultRetryable).
	Classify func(error) bool
}

// DefaultRetryable is the repo's shared transient-vs-permanent
// classification: failures explicitly marked Transient, trace
// corruption (a dropped capture entry re-records on the next attempt),
// and capture replay failures are retryable; deadline expiry,
// cancellation, panics, and everything else are permanent. Callers with
// more context (a test injecting a known-permanent fault) override via
// RetryPolicy.Classify.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return IsTransient(err) ||
		errors.Is(err, trace.ErrCorrupt) ||
		errors.Is(err, capture.ErrReplay)
}

// Do runs op until it succeeds, exhausts the attempt budget, fails
// permanently, or runs out of deadline. It returns the attempts made
// and the final error (nil on success). op receives the 1-based attempt
// number.
//
// Deadline budgeting: before sleeping, Do checks the context's
// deadline — a backoff the deadline cannot cover is not started, and
// the last real error is returned instead of burning the remaining
// budget on a sleep that ends in DeadlineExceeded. Cancellation during
// a backoff returns ctx.Err() immediately. Each retry increments the
// context Recorder's core.retry.attempts counter.
func (p RetryPolicy) Do(ctx context.Context, op func(attempt int) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxAttempts := p.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	backoff := p.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := p.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 30 * time.Second
	}
	classify := p.Classify
	if classify == nil {
		classify = DefaultRetryable
	}
	retries := obs.From(ctx).Counter(obs.CoreRetryAttempts)

	var err error
	for attempt := 1; ; attempt++ {
		err = op(attempt)
		if err == nil || attempt >= maxAttempts || !classify(err) {
			return attempt, err
		}
		delay := backoff << (attempt - 1)
		if delay <= 0 || delay > maxBackoff {
			delay = maxBackoff
		}
		if p.Jitter > 0 {
			spread := float64(delay) * p.Jitter
			delay = time.Duration(float64(delay) - spread + 2*spread*rand.Float64())
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return attempt, err
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return attempt, ctx.Err()
		case <-t.C:
		}
		retries.Inc()
	}
}
