package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wsstudy/internal/capture"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

func TestRetryPolicySucceedsWithoutRetry(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	attempts, err := RetryPolicy{MaxAttempts: 5}.Do(ctx, func(int) error { return nil })
	if err != nil || attempts != 1 {
		t.Fatalf("Do = (%d, %v), want (1, nil)", attempts, err)
	}
	if n := rec.Snapshot().Counter(obs.CoreRetryAttempts); n != 0 {
		t.Errorf("clean run counted %d retries", n)
	}
}

func TestRetryPolicyRetriesTransient(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	fails := 2
	attempts, err := RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}.Do(ctx, func(a int) error {
		if a != fails+1 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != fails+1 {
		t.Fatalf("Do = (%d, %v), want (%d, nil)", attempts, err, fails+1)
	}
	if n := rec.Snapshot().Counter(obs.CoreRetryAttempts); n != uint64(fails) {
		t.Errorf("retry counter = %d, want %d", n, fails)
	}
}

func TestRetryPolicyStopsOnPermanent(t *testing.T) {
	boom := errors.New("permanent")
	attempts, err := RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}.Do(
		context.Background(), func(int) error { return boom })
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("Do = (%d, %v), want (1, %v)", attempts, err, boom)
	}
}

func TestRetryPolicyExhaustsBudget(t *testing.T) {
	attempts, err := RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}.Do(
		context.Background(), func(int) error { return Transient(errors.New("always")) })
	if err == nil || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want 3 attempts and the final error", attempts, err)
	}
}

// TestDefaultRetryable pins the repo-wide transient-vs-permanent split.
func TestDefaultRetryable(t *testing.T) {
	corrupt := &trace.CorruptError{Offset: 7, Reason: "crc"}
	replay := &capture.ReplayError{Key: "k", Delivered: 3, Err: corrupt}
	injected := &fault.InjectedError{Name: "x", Err: errors.New("injected disk full")}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"transient", Transient(errors.New("boom")), true},
		{"trace corruption", corrupt, true},
		{"capture replay", replay, true},
		{"injected fault", injected, false},
		{"transient injected fault", &fault.InjectedError{Name: "x", Err: Transient(errors.New("b"))}, true},
		{"canceled", context.Canceled, false},
		{"deadline", &DeadlineError{ID: "x"}, false},
		// A deadline that expired while retrying a transient failure is
		// still a deadline: the budget is gone, so retrying is pointless.
		{"transient-wrapped deadline", Transient(context.DeadlineExceeded), false},
	}
	for _, c := range cases {
		if got := DefaultRetryable(c.err); got != c.want {
			t.Errorf("DefaultRetryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryPolicyClassifyOverride(t *testing.T) {
	boom := errors.New("special")
	calls := 0
	attempts, err := RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Classify:    func(err error) bool { calls++; return errors.Is(err, boom) },
	}.Do(context.Background(), func(int) error { return boom })
	if attempts != 3 || !errors.Is(err, boom) {
		t.Fatalf("Do = (%d, %v), want custom classifier to drive 3 attempts", attempts, err)
	}
	// The final attempt's error is returned on budget exhaustion without
	// consulting the classifier.
	if calls != 2 {
		t.Errorf("classifier consulted %d times, want 2", calls)
	}
}

// TestRetryPolicyDeadlineBudget proves Do never starts a backoff the
// deadline cannot cover: the real error comes back immediately instead
// of a sleep ending in DeadlineExceeded.
func TestRetryPolicyDeadlineBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	boom := Transient(errors.New("flaky"))
	start := time.Now()
	attempts, err := RetryPolicy{MaxAttempts: 5, Backoff: time.Hour}.Do(ctx, func(int) error { return boom })
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("Do = (%d, %v), want the real error after 1 attempt", attempts, err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Errorf("Do slept %v against a backoff the deadline cannot cover", el)
	}
}

func TestRetryPolicyCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := RetryPolicy{MaxAttempts: 3, Backoff: time.Hour, MaxBackoff: time.Hour}.Do(
		ctx, func(int) error { return Transient(errors.New("flaky")) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel during backoff: err = %v, want context.Canceled", err)
	}
}

// TestSuiteRetriesCorruptCapture wires the pieces together: an
// experiment whose first attempt fails with a capture replay error is
// retried by the suite without any Transient marking, because the
// default classifier knows the typed error.
func TestSuiteRetriesCorruptCapture(t *testing.T) {
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	calls := 0
	e := Experiment{
		ID: "retry-replay", Title: "retry replay",
		Run: func(ctx context.Context, opt Options) (*Report, error) {
			calls++
			if calls == 1 {
				return nil, &capture.ReplayError{Key: "k", Err: &trace.CorruptError{Reason: "crc"}}
			}
			return &Report{Title: "retry replay"}, nil
		},
	}
	rep := RunSuite(ctx, []Experiment{e}, SuiteOptions{
		Workers: 1, Retries: 2, Backoff: time.Millisecond,
	})
	r := rep.Results[0]
	if r.Err != nil || r.Attempts != 2 {
		t.Fatalf("suite result = attempts %d, err %v; want a clean second attempt", r.Attempts, r.Err)
	}
	m := rec.Snapshot()
	if m.Counter(obs.SuiteRetries) != 1 || m.Counter(obs.CoreRetryAttempts) != 1 {
		t.Errorf("retry counters = suite %d / core %d, want 1/1",
			m.Counter(obs.SuiteRetries), m.Counter(obs.CoreRetryAttempts))
	}
}
