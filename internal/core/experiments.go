package core

import (
	"context"
	"fmt"
	"math"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/cache"
	"wsstudy/internal/capture"
	"wsstudy/internal/cost"
	"wsstudy/internal/grain"
	"wsstudy/internal/machine"
	"wsstudy/internal/memsys"
	"wsstudy/internal/obs"
	"wsstudy/internal/scaling"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// sizesGrid is the common cache-size sweep: 64 B to 4 MB, two points per
// octave.
func sizesGrid() []uint64 { return workingset.LogSizes(64, 4<<20, 2) }

// openMachine builds the simulated machine an experiment runs on, honoring
// the run's -machine-shards override (zero keeps the serial engine; the
// sharded engine is bit-identical, so results never depend on the choice),
// and attaches run-scope observability. Callers must Close the machine —
// it is the sharded engine's worker shutdown and failure-propagation
// barrier — and forward a non-nil Close error into their Report.
func openMachine(ctx context.Context, o Options, cfg memsys.Config) (memsys.Machine, error) {
	cfg.Shards = o.MachineShards
	cfg.SampleRate = o.SampleRate
	m, err := memsys.Open(cfg)
	if err != nil {
		return nil, err
	}
	m.Instrument(obs.From(ctx))
	return m, nil
}

// attachSampling records the run's profiler fidelity on the report when
// the profiler is sampled; exact profilers (rate 1) leave Sampling nil,
// keeping pre-sampling reports byte-identical.
func attachSampling(r *Report, prof cache.Profiler) {
	if prof == nil || prof.SampleRate() <= 1 {
		return
	}
	r.Sampling = &Sampling{
		Rate:         prof.SampleRate(),
		SampledLines: prof.SampledLines(),
		ErrorBound:   prof.ErrorBound(),
	}
}

// profCurve converts a profiler's miss counts at the given byte sizes into
// a normalized curve: misses divided by denom (FLOPs, or read count when
// readRate is set).
func profCurve(label string, prof cache.Profiler, sizes []uint64, denom float64, readRate bool) Series {
	caps := workingset.BytesToLines(sizes, prof.LineSize())
	counts := prof.Curve(caps)
	pts := make([]workingset.Point, len(counts))
	for i, mc := range counts {
		v := float64(mc.Misses())
		if readRate {
			v = float64(mc.ReadMisses)
		}
		pts[i] = workingset.Point{
			CacheBytes: uint64(mc.CapacityLines) * uint64(prof.LineSize()),
			MissRate:   v / denom,
		}
	}
	return Series{Label: label, Points: pts}
}

func modelSeries(label string, sizes []uint64, f func(uint64) float64) Series {
	pts := make([]workingset.Point, len(sizes))
	for i, s := range sizes {
		pts[i] = workingset.Point{CacheBytes: s, MissRate: f(s)}
	}
	return Series{Label: label, Points: pts}
}

func hierarchyTable(title string, h workingset.Hierarchy) Table {
	t := Table{Title: title, Header: []string{"level", "size", "miss rate after", "what it is"}}
	for _, l := range h.Levels {
		t.Rows = append(t.Rows, []string{
			l.Name, workingset.FormatBytes(l.SizeBytes), fmt.Sprintf("%.4g", l.MissRate), l.Note,
		})
	}
	return t
}

// ---------------------------------------------------------------- fig2

func expFig2() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Figure 2: miss rates for LU factorization, n=10,000, PE=1024",
		Description: "Analytic misses/FLOP vs cache size for B=4,16,64 at paper " +
			"scale, cross-checked by simulating a scaled-down factorization.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			r := &Report{Title: "Figure 2 (LU working sets)"}
			sizes := sizesGrid()
			fig := Figure{Title: "LU model, n=10000 P=1024", XLabel: "cache size", YLabel: "misses/FLOP"}
			for _, b := range []int{4, 16, 64} {
				m := lu.Model{N: 10000, B: b, P: 1024}
				fig.Series = append(fig.Series, modelSeries(
					fmt.Sprintf("B=%d", b), sizes, m.MissRatePerFLOP))
			}
			r.Figures = append(r.Figures, fig)
			r.Tables = append(r.Tables, hierarchyTable(
				"LU working-set hierarchy (B=16)",
				lu.Model{N: 10000, B: 16, P: 1024}.WorkingSets()))

			// Simulation cross-check at reduced scale.
			n, b, pr, pc := 128, 8, 2, 2
			if o.Scale != ScaleQuick {
				n, b, pr, pc = 256, 16, 2, 2
			}
			m := lu.NewBlockMatrix(n, b, nil)
			m.FillRandomDominant(1)
			sys, err := openMachine(ctx, o, memsys.Config{
				PEs: pr * pc, LineSize: 8, Profile: true, ProfilePE: pr*pc - 1,
			})
			if err != nil {
				return r, err
			}
			defer sys.Close()
			stats, err := lu.FactorTraced(m, lu.Grid{PR: pr, PC: pc},
				trace.WithContext(ctx, sys))
			if err != nil {
				// The model figure and hierarchy table are already in r;
				// return them as partial data alongside the error.
				return r, err
			}
			if err := sys.Close(); err != nil {
				return r, err
			}
			prof := sys.Profiler(pr*pc - 1)
			simSizes := workingset.LogSizes(64, 1<<21, 2)
			sim := Figure{
				Title:  fmt.Sprintf("LU simulated, n=%d B=%d P=%d (PE %d)", n, b, pr*pc, pr*pc-1),
				XLabel: "cache size", YLabel: "misses/FLOP",
			}
			sim.Series = append(sim.Series,
				profCurve("measured", prof, simSizes, stats.FLOPsByPE[pr*pc-1], false),
				modelSeries("model", simSizes, lu.Model{N: n, B: b, P: pr * pc}.MissRatePerFLOP))
			r.Figures = append(r.Figures, sim)
			attachSampling(r, prof)
			r.AddNote("model plateaus: 1.0 before lev1WS, 0.5 to lev2WS, 1/B to lev3WS, 1/2B to lev4WS, then communication")
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- fig4

func expFig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4: miss rates for CG, 4000x4000 grid, P=1024",
		Description: "Analytic misses/FLOP for the 2-D (4000^2) and 3-D (225^3) " +
			"prototypical problems, cross-checked by a simulated 2-D solve.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			r := &Report{Title: "Figure 4 (CG working sets)"}
			sizes := sizesGrid()
			m2 := cg.Model2D{N: 4000, P: 1024}
			m3 := cg.Model3D{N: 225, P: 1024}
			fig := Figure{Title: "CG model, P=1024", XLabel: "cache size", YLabel: "misses/FLOP"}
			fig.Series = append(fig.Series,
				modelSeries("2-D 4000^2", sizes, m2.MissRatePerFLOP),
				modelSeries("3-D 225^3", sizes, m3.MissRatePerFLOP))
			r.Figures = append(r.Figures, fig)
			r.Tables = append(r.Tables,
				hierarchyTable("CG 2-D hierarchy", m2.WorkingSets()),
				hierarchyTable("CG 3-D hierarchy", m3.WorkingSets()))

			n, p, iters, warm := 64, 4, 6, 2
			if o.Scale != ScaleQuick {
				n, p, iters, warm = 128, 4, 8, 2
			}
			px := int(math.Sqrt(float64(p)))
			sys, err := openMachine(ctx, o, memsys.Config{
				PEs: p, LineSize: 8, Profile: true, ProfilePE: p - 1, WarmupEpochs: warm,
			})
			if err != nil {
				return r, err
			}
			defer sys.Close()
			part, err := cg.NewPartition2D(n, px, p/px, nil)
			if err != nil {
				return nil, err
			}
			solver := cg.NewSolver2D(part, trace.WithContext(ctx, sys))
			b := make([]float64, n*n)
			for i := range b {
				b[i] = 1
			}
			solver.SetB(b)
			if _, err := solver.Solve(cg.Config{MaxIters: iters}); err != nil {
				return r, err
			}
			if err := sys.Close(); err != nil {
				return r, err
			}
			prof := sys.Profiler(p - 1)
			flops := float64(iters-warm) * 20 * float64(n*n) / float64(p)
			simSizes := workingset.LogSizes(64, 1<<21, 2)
			sim := Figure{
				Title:  fmt.Sprintf("CG 2-D simulated, %dx%d P=%d", n, n, p),
				XLabel: "cache size", YLabel: "misses/FLOP",
			}
			sim.Series = append(sim.Series,
				profCurve("measured", prof, simSizes, flops, false),
				modelSeries("model", simSizes, cg.Model2D{N: n, P: p}.MissRatePerFLOP))
			r.Figures = append(r.Figures, sim)
			attachSampling(r, prof)
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- fig5

func expFig5() Experiment {
	return Experiment{
		ID:    "fig5",
		Title: "Figure 5: miss rates for 1D FFT, n=64M, PE=1024",
		Description: "Analytic misses/op for internal radices 2, 8 and 32 at " +
			"paper scale, cross-checked by simulated transforms.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			r := &Report{Title: "Figure 5 (FFT working sets)"}
			sizes := sizesGrid()
			fig := Figure{Title: "FFT model, n=2^26 P=1024", XLabel: "cache size", YLabel: "misses/op"}
			for _, radix := range []int{2, 8, 32} {
				m := fft.Model{LogN: 26, P: 1024, InternalRadix: radix}
				fig.Series = append(fig.Series, modelSeries(
					fmt.Sprintf("radix %d", radix), sizes, m.MissRatePerOp))
			}
			r.Figures = append(r.Figures, fig)
			r.Tables = append(r.Tables, hierarchyTable(
				"FFT hierarchy (radix 8)",
				fft.Model{LogN: 26, P: 1024, InternalRadix: 8}.WorkingSets()))

			logN := 12
			if o.Scale != ScaleQuick {
				logN = 16
			}
			const p, pe = 4, 1
			sim := Figure{
				Title:  fmt.Sprintf("FFT simulated, n=2^%d P=%d", logN, p),
				XLabel: "cache size", YLabel: "misses/op",
			}
			simSizes := workingset.LogSizes(64, 1<<22, 2)
			for _, radix := range []int{2, 8, 32} {
				sys, err := openMachine(ctx, o, memsys.Config{
					PEs: p, LineSize: 8, Profile: true, ProfilePE: pe,
				})
				if err != nil {
					return r, err
				}
				f, err := fft.New(fft.Config{LogN: logN, P: p, InternalRadix: radix},
					trace.WithContext(ctx, sys))
				if err != nil {
					sys.Close()
					return nil, err
				}
				x := make([]complex128, 1<<logN)
				for i := range x {
					x[i] = complex(float64(i%17)-8, float64(i%13)-6)
				}
				f.SetInput(x)
				if err := f.Run(); err != nil {
					sys.Close()
					return r, err
				}
				if err := sys.Close(); err != nil {
					return r, err
				}
				sim.Series = append(sim.Series, profCurve(
					fmt.Sprintf("radix %d", radix),
					sys.Profiler(pe), simSizes, f.FLOPs()/float64(p), false))
				attachSampling(r, sys.Profiler(pe))
			}
			r.Figures = append(r.Figures, sim)
			r.AddNote("measured curves include bit-reversal, twiddle scaling and the two exchanges; the paper's plateaus count the butterfly loop only (see EXPERIMENTS.md)")
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- fig6

// runBHTraced drives the experiments' shared Barnes-Hut configuration
// (Plummer seed 42, quadrupole, Eps 0.05, DT 0.003) into sink — through
// the context capture store when one is attached, so a suite runs each
// (n, p, theta) at most once and later requests replay the recorded
// stream, cut at their step count (fig6dm's quick run is an epoch prefix
// of fig6's).
func runBHTraced(ctx context.Context, n, p, steps int, theta float64, sink trace.Consumer) error {
	key := capture.Keyf("barneshut", "n=%d p=%d theta=%g eps=0.05 dt=0.003 quad seed=42", n, p, theta)
	return capture.From(ctx).Run(ctx, key, steps, sink, func(out trace.Consumer) error {
		bodies := barneshut.Plummer(n, 42)
		sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
			Theta: theta, Quadrupole: true, Eps: 0.05, DT: 0.003, P: p,
		}, out)
		if err != nil {
			return err
		}
		for s := 0; s < steps; s++ {
			if _, err := sim.Step(); err != nil {
				return err
			}
		}
		return nil
	})
}

// runBH runs a traced Barnes-Hut configuration under ctx and returns the
// profiler and the aggregate read count.
func runBH(ctx context.Context, o Options, n, p, profPE, warm, steps int, theta float64) (cache.Profiler, error) {
	sys, err := openMachine(ctx, o, memsys.Config{
		PEs: p, LineSize: 8, Profile: true, ProfilePE: profPE, WarmupEpochs: warm,
	})
	if err != nil {
		return nil, err
	}
	if err := runBHTraced(ctx, n, p, steps, theta, trace.WithContext(ctx, sys)); err != nil {
		sys.Close()
		return nil, err
	}
	if err := sys.Close(); err != nil {
		return nil, err
	}
	return sys.Profiler(profPE), nil
}

func expFig6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Figure 6: working sets for Barnes-Hut, n=1024, theta=1.0, p=4, quadrupole",
		Description: "Simulated per-processor read miss rate vs cache size for " +
			"the paper's exact configuration (Quick mode shrinks n).",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n := 1024
			steps := 5
			if o.Scale == ScaleQuick {
				n, steps = 256, 4
			}
			prof, err := runBH(ctx, o, n, 4, 1, 2, steps, 1.0)
			if err != nil {
				return nil, err
			}
			r := &Report{Title: "Figure 6 (Barnes-Hut working sets)"}
			simSizes := workingset.LogSizes(64, 4<<20, 2)
			fig := Figure{
				Title:  fmt.Sprintf("Barnes-Hut simulated, n=%d theta=1.0 p=4", n),
				XLabel: "cache size", YLabel: "read miss rate",
			}
			fig.Series = append(fig.Series,
				profCurve("measured", prof, simSizes, float64(prof.Reads()), true))
			r.Figures = append(r.Figures, fig)
			attachSampling(r, prof)

			// Extract the hierarchy from the measured curve.
			c := workingset.Curve{Label: "measured", Points: fig.Series[0].Points}
			h := workingset.FromKnees("Barnes-Hut", workingset.FindKnees(&c, 1.6, 0.005))
			r.Tables = append(r.Tables, hierarchyTable("measured hierarchy", h))
			r.AddNote("paper landmarks: lev1WS ~0.7 KB (to ~20%%), lev2WS ~20 KB for n=1024 (to near the ~0.2%% communication rate)")
			ws := scaling.BHWorkingSet(float64(n), 1.0)
			r.AddNote("scaling model lev2WS for n=%d: %s", n, workingset.FormatBytes(ws))
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- fig6dm

func expFig6DM() Experiment {
	return Experiment{
		ID:    "fig6dm",
		Title: "Section 6.4: direct-mapped vs fully associative caches for Barnes-Hut",
		Description: "Runs one trace through a fully associative profiler and " +
			"direct-mapped caches of every size concurrently (trace.Fanout) and " +
			"reports the size needed to match the fully associative lev2WS miss " +
			"rate (the paper finds about 3x).",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n, steps := 256, 3
			if o.Scale != ScaleQuick {
				n, steps = 512, 4
			}
			const p, pe, warm, theta = 4, 1, 1, 1.0

			// One simulation feeds every memory system at once: the fully
			// associative profiler plus one direct-mapped system per size.
			// The systems share no state, so each gets its own Fanout worker
			// instead of rerunning the N-body code per cache size.
			faSys, err := openMachine(ctx, o, memsys.Config{
				PEs: p, LineSize: 8, Profile: true, ProfilePE: pe, WarmupEpochs: warm,
			})
			if err != nil {
				return nil, err
			}
			sizes := workingset.LogSizes(1024, 1<<20, 1)
			dmSys := make([]memsys.Machine, len(sizes))
			defer func() {
				faSys.Close()
				for _, s := range dmSys {
					if s != nil {
						s.Close()
					}
				}
			}()
			consumers := []trace.Consumer{faSys}
			for i, bytes := range sizes {
				dmSys[i], err = openMachine(ctx, o, memsys.Config{
					PEs: p, LineSize: 8, CacheCapacity: int(bytes / 8), Assoc: 1,
					ProfilePE: -1, WarmupEpochs: warm,
				})
				if err != nil {
					return nil, err
				}
				consumers = append(consumers, dmSys[i])
			}
			fan, err := trace.NewFanout(consumers...)
			if err != nil {
				return nil, err
			}
			fan.Instrument(obs.From(ctx))
			defer fan.Close()

			if err := runBHTraced(ctx, n, p, steps, theta, trace.WithContext(ctx, fan)); err != nil {
				return nil, err
			}
			// Close is the barrier: it flushes, waits for every worker, and
			// surfaces any consumer failure. Only then are stats safe to read.
			if err := fan.Close(); err != nil {
				return nil, err
			}
			if err := faSys.Close(); err != nil {
				return nil, err
			}
			for _, s := range dmSys {
				if err := s.Close(); err != nil {
					return nil, err
				}
			}

			prof := faSys.Profiler(pe)
			reads := float64(prof.Reads())
			faSeries := profCurve("fully associative", prof, sizes, reads, true)
			dmSeries := Series{Label: "direct-mapped"}
			for i, bytes := range sizes {
				st := dmSys[i].Cache(pe).Stats()
				dmSeries.Points = append(dmSeries.Points, workingset.Point{
					CacheBytes: bytes, MissRate: st.ReadMissRate(),
				})
			}

			r := &Report{Title: "Direct-mapped vs fully associative (Barnes-Hut)"}
			attachSampling(r, prof)
			r.Figures = append(r.Figures, Figure{
				Title:  fmt.Sprintf("n=%d theta=1.0 p=4", n),
				XLabel: "cache size", YLabel: "read miss rate",
				Series: []Series{faSeries, dmSeries},
			})

			// Size ratio to reach the FA lev2WS plateau rate.
			faCurve := workingset.Curve{Points: faSeries.Points}
			target := faCurve.RateAt(64*1024) * 1.25
			faAt := firstSizeBelow(faSeries, target)
			dmAt := firstSizeBelow(dmSeries, target)
			if faAt > 0 && dmAt > 0 {
				r.AddNote("size to reach rate %.4g: FA %s vs DM %s (ratio %.1fx; paper: ~3x)",
					target, workingset.FormatBytes(faAt), workingset.FormatBytes(dmAt),
					float64(dmAt)/float64(faAt))
			}
			return r, nil
		},
	}
}

func firstSizeBelow(s Series, target float64) uint64 {
	for _, p := range s.Points {
		if p.MissRate <= target {
			return p.CacheBytes
		}
	}
	return 0
}

// ---------------------------------------------------------------- fig7

func expFig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: working sets for volume rendering, 256x256x113 head, p=4",
		Description: "Simulated per-processor read miss rate vs cache size " +
			"rendering the synthetic head phantom across slowly rotating frames.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			// The image must resolve the volume (ray spacing ~1 voxel,
			// as in the paper's renderer) or successive rays share no
			// voxels and the lev2WS reuse disappears: the image edge
			// tracks the volume diagonal.
			nx, ny, nz, img, frames := 64, 64, 56, 112, 3
			if o.Scale != ScaleQuick {
				nx, ny, nz, img, frames = 256, 256, 113, 384, 3
			}
			vol := volrend.SyntheticHead(nx, ny, nz)
			sys, err := openMachine(ctx, o, memsys.Config{
				PEs: 4, LineSize: 8, Dist: memsys.Interleaved,
				Profile: true, ProfilePE: 0, WarmupEpochs: 1,
			})
			if err != nil {
				return nil, err
			}
			defer sys.Close()
			ren, err := volrend.NewRenderer(vol, volrend.Config{
				ImageW: img, ImageH: img, P: 4,
			}, trace.WithContext(ctx, sys))
			if err != nil {
				return nil, err
			}
			for f := 0; f < frames; f++ {
				if _, err := ren.RenderFrame(0.04 * float64(f)); err != nil {
					return nil, err
				}
			}
			if err := sys.Close(); err != nil {
				return nil, err
			}
			prof := sys.Profiler(0)

			r := &Report{Title: "Figure 7 (volume rendering working sets)"}
			simSizes := workingset.LogSizes(64, 8<<20, 2)
			fig := Figure{
				Title:  fmt.Sprintf("volrend simulated, %dx%dx%d, image %d^2, p=4", nx, ny, nz, img),
				XLabel: "cache size", YLabel: "read miss rate",
			}
			fig.Series = append(fig.Series,
				profCurve("measured", prof, simSizes, float64(prof.Reads()), true))
			r.Figures = append(r.Figures, fig)
			attachSampling(r, prof)

			c := workingset.Curve{Points: fig.Series[0].Points}
			h := workingset.FromKnees("volrend", workingset.FindKnees(&c, 1.6, 0.005))
			r.Tables = append(r.Tables, hierarchyTable("measured hierarchy", h))
			m := volrend.Model{N: int(math.Cbrt(float64(nx * ny * nz))), P: 4}
			r.Tables = append(r.Tables, hierarchyTable("paper model", m.WorkingSets()))
			r.AddNote("paper landmarks: lev1WS ~0.4 KB (to ~15%%), lev2WS ~16 KB (to ~2%%), lev3WS ~700 KB (to ~0.1%%)")
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- table1

func expTable1() Experiment {
	return Experiment{
		ID:          "table1",
		Title:       "Table 1: important application growth rates",
		Description: "The paper's symbolic growth-rate table with model-derived spot checks.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Table 1 (growth rates)"}
			t := Table{
				Title:  "growth rates (n = problem parameter, P = processors)",
				Header: []string{"application", "data", "ops", "concurrency", "communication", "important WS"},
			}
			for _, row := range scaling.Table1() {
				t.Rows = append(t.Rows, []string{
					row.App, row.Data, row.Ops, row.Concurrency, row.Communication, row.WorkingSet,
				})
			}
			r.Tables = append(r.Tables, t)

			// Model-derived spot checks of the scaling laws.
			checks := Table{
				Title:  "spot checks (doubling n; model-evaluated)",
				Header: []string{"law", "expected factor", "model factor"},
			}
			addCheck := func(name string, want, got float64) {
				checks.Rows = append(checks.Rows, []string{
					name, fmt.Sprintf("%.3g", want), fmt.Sprintf("%.3g", got),
				})
			}
			luA := lu.Model{N: 10000, B: 16, P: 1024}
			luB := lu.Model{N: 20000, B: 16, P: 1024}
			addCheck("LU comm ~ n^2", 4, luB.CommVolumeWords()/luA.CommVolumeWords())
			addCheck("LU ops ~ n^3", 8, luB.FLOPs()/luA.FLOPs())
			cgA, cgB := cg.Model2D{N: 4000, P: 1024}, cg.Model2D{N: 8000, P: 1024}
			addCheck("CG ratio ~ n", 2, cgB.CommToCompRatio()/cgA.CommToCompRatio())
			fA := fft.Model{LogN: 20, P: 1024, InternalRadix: 8}
			fB := fft.Model{LogN: 21, P: 1024, InternalRadix: 8}
			addCheck("FFT ops ~ n log n", 2*21.0/20, fB.FLOPs()/fA.FLOPs())
			wsA := float64(scaling.BHWorkingSet(1<<20, 1))
			wsB := float64(scaling.BHWorkingSet(1<<40, 1))
			addCheck("BH WS ~ log n", 2, wsB/wsA)
			vA, vB := volrend.Model{N: 256, P: 4}, volrend.Model{N: 512, P: 4}
			addCheck("VR data ~ n^3", 8, float64(vB.DataSetBytes())/float64(vA.DataSetBytes()))
			r.Tables = append(r.Tables, checks)
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- table2

func expTable2() Experiment {
	return Experiment{
		ID:          "table2",
		Title:       "Table 2: summary of important application parameters",
		Description: "Cache sizes for the 1 GB / 1024-PE prototypes, growth rates, desirable grains.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Table 2 (summary)"}
			t := Table{
				Title: "prototypical 1 GB problem on 1024 processors",
				Header: []string{"application", "cache growth", "cache (paper)", "cache (ours)",
					"memory growth", "desirable grain"},
			}
			ours := []uint64{
				lu.Model{N: 10000, B: 32, P: 1024}.Lev2WS(),
				cg.Model2D{N: 4000, P: 1024}.Lev1WS(),
				fft.Model{LogN: 26, P: 1024, InternalRadix: 32}.Lev1WS(),
				scaling.BHWorkingSet(4.5e6, 1.0),
				volrend.Model{N: 600, P: 1024}.Lev2WS(),
			}
			rows := []struct {
				app, cGrowth, cPaper, mGrowth, grain string
			}{
				{"LU", "const", "8K", "const", "< 1M"},
				{"CG", "const", "5K", "const", "1M"},
				{"FFT", "const", "4K", "const", "1M"},
				{"Barnes-Hut", "log DS", "45K", "const", "< 1M"},
				{"Volume Rendering", "DS^(1/3)", "70K", "DS^(1/3)", "< 1M"},
			}
			for i, row := range rows {
				t.Rows = append(t.Rows, []string{
					row.app, row.cGrowth, row.cPaper,
					workingset.FormatBytes(ours[i]), row.mGrowth, row.grain,
				})
			}
			r.Tables = append(r.Tables, t)
			r.AddNote("'cache (ours)' evaluates this library's models at the prototypical point; FFT differs because the paper sizes the lev1WS for a larger internal radix than the 32-point group itself")
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- machines

func expMachines() Experiment {
	return Experiment{
		ID:          "machines",
		Title:       "Section 2.3: sustainable computation-to-communication ratios",
		Description: "The Paragon and CM-5 arithmetic behind the paper's 1-15/15-75/>75 bands.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Sustainable ratios (Section 2.3)"}
			t := Table{
				Title:  "machine models",
				Header: []string{"machine", "nodes", "nearest-neighbor (FLOPs/word)", "random (FLOPs/word)"},
			}
			for _, m := range []machine.Machine{machine.Paragon(1024), machine.CM5(1024)} {
				t.Rows = append(t.Rows, []string{
					m.Name, fmt.Sprint(m.Nodes),
					fmt.Sprintf("%.1f", m.NearestNeighborRatio()),
					fmt.Sprintf("%.1f", m.RandomRatio()),
				})
			}
			r.Tables = append(r.Tables, t)
			bands := Table{
				Title:  "sustainability bands",
				Header: []string{"ratio (FLOPs/word)", "classification"},
			}
			for _, v := range []float64{8, 33, 64, 200} {
				bands.Rows = append(bands.Rows, []string{
					fmt.Sprintf("%.0f", v), machine.Classify(v).String(),
				})
			}
			r.Tables = append(r.Tables, bands)
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- grain

func expGrain() Experiment {
	return Experiment{
		ID:          "grain",
		Title:       "Grain-size scenarios: 1 GB problems on 64 / 1024 / 16K processors",
		Description: "The per-application grain discussions of Sections 3.3-7.3.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Grain-size advisor"}
			for _, a := range grain.AdviseAll() {
				t := Table{
					Title:  a.App,
					Header: []string{"P", "grain", "ratio", "unit", "sustainability", "load proxy", "healthy"},
				}
				for _, s := range a.Scenarios {
					t.Rows = append(t.Rows, []string{
						fmt.Sprint(s.P),
						workingset.FormatBytes(s.GrainBytes),
						fmt.Sprintf("%.0f", s.Ratio),
						s.RatioUnit,
						s.Sustainability.String(),
						fmt.Sprintf("%s=%.0f", s.LoadProxyName, s.LoadProxy),
						fmt.Sprint(s.Healthy()),
					})
				}
				r.Tables = append(r.Tables, t)
				r.AddNote("%s: desirable grain %s; limiting factor: %s", a.App, a.DesirableGrain, a.Limiting)
			}
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- scalingbh

func expScalingBH() Experiment {
	return Experiment{
		ID:          "scalingbh",
		Title:       "Section 6.2: Barnes-Hut working sets under MC and TC scaling",
		Description: "The 64K-particle / 64-PE base scaled to 1K and 1M processors.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Barnes-Hut scaling (Section 6.2)"}
			base := scaling.BHParams{N: 65536, Theta: 1.0, DT: 1.0}
			machines := []float64{1, 16, 16384}
			for _, model := range []scaling.Model{scaling.MC, scaling.TC} {
				t := Table{
					Title:  model.String() + " scaling from 64K particles on 64 PEs",
					Header: []string{"machine (x64 PEs)", "particles", "theta", "lev2WS", "data set", "relative time"},
				}
				for _, sp := range scaling.BHTrajectory(base, model, machines) {
					t.Rows = append(t.Rows, []string{
						fmt.Sprintf("%.0fx", sp.Machine),
						fmt.Sprintf("%.3g", sp.Params.N),
						fmt.Sprintf("%.2f", sp.Params.Theta),
						workingset.FormatBytes(sp.WS),
						workingset.FormatBytes(sp.Data),
						fmt.Sprintf("%.2f", sp.RelTime),
					})
				}
				r.Tables = append(r.Tables, t)
			}
			r.AddNote("paper checkpoints: MC k=16 -> 1M particles theta~0.71; TC k=16 -> ~256K theta~0.84 (ours lands within ~1.6x on n); TC k=16384 -> ~32M theta=0.6, lev2WS ~140 KB")
			return r, nil
		},
	}
}

// ---------------------------------------------------------------- cost

func expCost() Experiment {
	return Experiment{
		ID:          "cost",
		Title:       "Section 8: performance per dollar vs node granularity",
		Description: "Evaluates the fixed 1 GB LU problem across grain sizes under 1993 component prices and tests the equal-cost-split conjecture.",
		Run: func(context.Context, Options) (*Report, error) {
			const n, b = 10000, 16
			app := cost.AppModel{
				Name: "LU",
				MissRate: func(p int, cacheBytes uint64) float64 {
					return lu.Model{N: n, B: b, P: p}.MissRatePerFLOP(cacheBytes)
				},
				CommRatio: func(p int) float64 {
					return lu.Model{N: n, B: b, P: p}.CommToCompRatio()
				},
				LoadProxy: func(p int) float64 {
					return lu.Model{N: n, B: b, P: p}.BlocksPerPE()
				},
				DataBytes: lu.Model{N: n, B: b, P: 1}.DataSetBytes(),
			}
			pr := cost.Defaults()
			par := cost.DefaultParams()
			cacheFor := func(p int) uint64 { return lu.Model{N: n, B: b, P: p}.Lev2WS() * 4 }
			evals := cost.SweepGranularity(app, 64, 65536, cacheFor, pr, par)

			r := &Report{Title: "Cost-effectiveness (Section 8)"}
			t := Table{
				Title:  "1 GB LU, $1000 processors, $40/MB DRAM, $1/KB SRAM",
				Header: []string{"P", "mem/PE", "cache/PE", "utilization", "perf", "cost ($)", "perf/k$", "proc share"},
			}
			for _, e := range evals {
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(e.Design.P),
					workingset.FormatBytes(e.Design.MemPerPE),
					workingset.FormatBytes(e.Design.CachePerPE),
					fmt.Sprintf("%.2f", e.Utilization),
					fmt.Sprintf("%.0f", e.Performance),
					fmt.Sprintf("%.0f", e.Cost),
					fmt.Sprintf("%.3f", e.PerfPerKiloUSD),
					fmt.Sprintf("%.2f", e.ProcShare),
				})
			}
			r.Tables = append(r.Tables, t)
			best, err := cost.Best(evals)
			if err != nil {
				return nil, err
			}
			eq, err := cost.EqualSplit(evals)
			if err != nil {
				return nil, err
			}
			r.AddNote("optimum: %s", best.Describe())
			r.AddNote("~equal-split design: %s (within %.1fx of optimal — the Section 8 conjecture)",
				eq.Describe(), cost.WithinFactor(eq, evals))
			return r, nil
		},
	}
}
