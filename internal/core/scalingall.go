package core

import (
	"context"
	"fmt"
	"math"

	"wsstudy/internal/scaling"
	"wsstudy/internal/workingset"
)

// expScalingAll tabulates every application's behaviour under MC and TC
// scaling from its prototypical 1 GB / 1024-PE configuration — the
// "Scaling" paragraphs of Sections 3.3, 4.3, 5.3, 6.3 and 7.3 in one
// table. The quantities per row: the scaled problem, the per-processor
// grain relative to the prototype, the important working set, and the
// execution-time multiple.
func expScalingAll() Experiment {
	return Experiment{
		ID:          "scalingall",
		Title:       "Scaling summary: all applications under MC and TC models",
		Description: "Problem growth, grain, working set and run time when the machine grows 16x and 1024x.",
		Run: func(context.Context, Options) (*Report, error) {
			r := &Report{Title: "Scaling all applications (prototypes on 1024 PEs)"}
			for _, model := range []scaling.Model{scaling.MC, scaling.TC} {
				t := Table{
					Title:  model.String() + " scaling",
					Header: []string{"application", "machine", "problem", "grain vs proto", "important WS", "time vs proto"},
				}
				for _, k := range []float64{16, 1024} {
					t.Rows = append(t.Rows, scaleRows(model, k)...)
				}
				r.Tables = append(r.Tables, t)
			}
			r.AddNote("LU under MC: time grows as sqrt(k) — the paper's reason MC 'may be unacceptable' for LU; under TC the grain shrinks as k^(-1/3), the time-constraint argument for finer nodes")
			r.AddNote("CG and volume rendering: ops scale with data, so MC and TC coincide (time constant at fixed grain)")
			r.AddNote("FFT under MC: time grows only as log; the ratio depends only on the grain, so utilization is preserved")
			r.AddNote("Barnes-Hut rows use the n-theta-dt co-scaling rule; see `wsstudy scalingbh` for the full trajectory")
			return r, nil
		},
	}
}

func scaleRows(model scaling.Model, k float64) [][]string {
	var rows [][]string
	machine := fmt.Sprintf("%.0fx", k)

	// LU: data n^2, ops n^3. Prototype n=10,000.
	{
		n0 := 10000.0
		var n, grain, time float64
		if model == scaling.MC {
			n = scaling.LUScaleMC(n0, k)
			grain = 1
			time = math.Sqrt(k)
		} else {
			n = scaling.LUScaleTC(n0, k)
			grain = scaling.LUGrainRatioTC(k)
			time = 1
		}
		rows = append(rows, []string{
			"LU", machine, fmt.Sprintf("n=%.0f", n),
			fmt.Sprintf("%.2fx", grain), "2 KB (const, B=16)",
			fmt.Sprintf("%.1fx", time),
		})
	}

	// CG 2-D: data and ops both n^2 — MC and TC coincide.
	{
		n := scaling.CGScaleMC(4000, k)
		ws := 7 * uint64(n/math.Sqrt(1024*k)*8)
		rows = append(rows, []string{
			"CG 2-D", machine, fmt.Sprintf("n=%.0f", n),
			"1.00x", workingset.FormatBytes(ws) + " (lev1WS, const at fixed grain)",
			"1.0x",
		})
	}

	// FFT: data N, ops N log N. MC: N *= k; TC solves N' log N' = k N log N.
	{
		n0 := math.Exp2(26)
		var n, time float64
		if model == scaling.MC {
			n = scaling.FFTScaleMC(n0, k)
			time = math.Log2(n) / math.Log2(n0)
		} else {
			n = n0
			target := k * n0 * math.Log2(n0)
			for i := 0; i < 60; i++ {
				n = target / math.Log2(n)
			}
			time = 1
		}
		grain := n / (k * n0)
		rows = append(rows, []string{
			"FFT", machine, fmt.Sprintf("N=2^%.1f", math.Log2(n)),
			fmt.Sprintf("%.2fx", grain), "1 KB (const, radix 32)",
			fmt.Sprintf("%.1fx", time),
		})
	}

	// Barnes-Hut: the co-scaled rule, prototype 4.5M particles.
	{
		base := scaling.BHParams{N: 4.5e6, Theta: 1.0, DT: 1.0}
		var p scaling.BHParams
		var time float64
		if model == scaling.MC {
			p = scaling.BHScaleMC(base, k)
			time = scaling.BHRelativeTime(base, 1, p, k)
		} else {
			p, _ = scaling.BHScaleTC(base, k)
			time = 1
		}
		grain := p.N / (k * base.N)
		rows = append(rows, []string{
			"Barnes-Hut", machine,
			fmt.Sprintf("n=%.3g theta=%.2f", p.N, p.Theta),
			fmt.Sprintf("%.2fx", grain),
			workingset.FormatBytes(scaling.BHWorkingSet(p.N, p.Theta)),
			fmt.Sprintf("%.1fx", time),
		})
	}

	// Volume rendering: data and time both n^3 — MC and TC coincide.
	{
		n := 600 * math.Cbrt(k)
		ws := uint64(4000 + 110*n)
		rows = append(rows, []string{
			"Volume Rendering", machine, fmt.Sprintf("n=%.0f^3", n),
			"1.00x", workingset.FormatBytes(ws) + " (lev2WS ~ DS^(1/3))",
			"1.0x",
		})
	}
	return rows
}
