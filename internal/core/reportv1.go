package core

import (
	"wsstudy/internal/obs"
	"wsstudy/internal/workingset"
)

// ReportSchemaVersion is the frozen wire-schema version of ReportV1.
// It participates in result-store key derivation, so bumping it
// invalidates every cached and persisted rendering at once.
const ReportSchemaVersion = 1

// ReportV1 is the frozen v1 JSON form of a Report: explicit snake_case
// field names with a self-describing schema_version, shared by the HTTP
// API, the CLI's JSON rendering, and the result store's on-disk format.
// New fields may be added (JSON readers must ignore unknown keys);
// existing fields never change meaning within v1.
type ReportV1 struct {
	SchemaVersion int          `json:"schema_version"`
	Title         string       `json:"title"`
	Figures       []FigureV1   `json:"figures,omitempty"`
	Tables        []TableV1    `json:"tables,omitempty"`
	Notes         []string     `json:"notes,omitempty"`
	Metrics       *obs.Metrics `json:"metrics,omitempty"`
}

// FigureV1 is the v1 form of a Figure.
type FigureV1 struct {
	Title  string     `json:"title"`
	XLabel string     `json:"x_label"`
	YLabel string     `json:"y_label"`
	Series []SeriesV1 `json:"series,omitempty"`
}

// SeriesV1 is the v1 form of one labelled curve.
type SeriesV1 struct {
	Label  string    `json:"label"`
	Points []PointV1 `json:"points,omitempty"`
}

// PointV1 is one curve sample: cache capacity in bytes and the miss
// metric there (misses per reference or per FLOP, as the figure labels).
type PointV1 struct {
	CacheBytes uint64  `json:"cache_bytes"`
	MissRate   float64 `json:"miss_rate"`
}

// TableV1 is the v1 form of a Table.
type TableV1 struct {
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
}

// V1 converts the report to its frozen wire form.
func (r *Report) V1() *ReportV1 {
	v := &ReportV1{
		SchemaVersion: ReportSchemaVersion,
		Title:         r.Title,
		Notes:         r.Notes,
		Metrics:       r.Metrics,
	}
	for _, f := range r.Figures {
		fv := FigureV1{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
		for _, s := range f.Series {
			sv := SeriesV1{Label: s.Label}
			for _, p := range s.Points {
				sv.Points = append(sv.Points, PointV1{CacheBytes: p.CacheBytes, MissRate: p.MissRate})
			}
			fv.Series = append(fv.Series, sv)
		}
		v.Figures = append(v.Figures, fv)
	}
	for _, t := range r.Tables {
		v.Tables = append(v.Tables, TableV1{Title: t.Title, Header: t.Header, Rows: t.Rows})
	}
	return v
}

// Report converts the wire form back to the in-memory Report — the
// inverse of V1, used when the result store revives a persisted
// rendering so text and CSV can still be derived from it.
func (v *ReportV1) Report() *Report {
	r := &Report{Title: v.Title, Notes: v.Notes, Metrics: v.Metrics}
	for _, fv := range v.Figures {
		f := Figure{Title: fv.Title, XLabel: fv.XLabel, YLabel: fv.YLabel}
		for _, sv := range fv.Series {
			s := Series{Label: sv.Label}
			for _, pv := range sv.Points {
				s.Points = append(s.Points, workingset.Point{CacheBytes: pv.CacheBytes, MissRate: pv.MissRate})
			}
			f.Series = append(f.Series, s)
		}
		r.Figures = append(r.Figures, f)
	}
	for _, tv := range v.Tables {
		r.Tables = append(r.Tables, Table{Title: tv.Title, Header: tv.Header, Rows: tv.Rows})
	}
	return r
}
