package core

import (
	"wsstudy/internal/obs"
	"wsstudy/internal/workingset"
)

// ReportSchemaVersion is the current wire-schema version of ReportV1.
// Version 2 added the optional `sampling` object; everything a version-1
// document carries means the same thing in version 2, so persisted v1
// renderings stay revivable (they read back with a nil Sampling) —
// MinReportSchemaVersion names the oldest version the store accepts.
// Result-store keys are derived from the separately frozen
// resultKeySchema (see canon.go), so an additive bump here does not
// orphan persisted reports.
const ReportSchemaVersion = 2

// MinReportSchemaVersion is the oldest persisted schema version the
// result store revives rather than quarantines. Versions 1 and 2 differ
// only by optional additive fields.
const MinReportSchemaVersion = 1

// ReportV1 is the frozen v1 JSON form of a Report: explicit snake_case
// field names with a self-describing schema_version, shared by the HTTP
// API, the CLI's JSON rendering, and the result store's on-disk format.
// New fields may be added (JSON readers must ignore unknown keys);
// existing fields never change meaning within v1.
type ReportV1 struct {
	SchemaVersion int          `json:"schema_version"`
	Title         string       `json:"title"`
	Figures       []FigureV1   `json:"figures,omitempty"`
	Tables        []TableV1    `json:"tables,omitempty"`
	Notes         []string     `json:"notes,omitempty"`
	Sampling      *SamplingV1  `json:"sampling,omitempty"`
	Metrics       *obs.Metrics `json:"metrics,omitempty"`
}

// SamplingV1 is the v1 form of a report's profiler-fidelity block,
// present only when the run used spatial sampling (schema version ≥ 2;
// version-1 documents revive with a nil Sampling).
type SamplingV1 struct {
	// Rate is the spatial sampling rate R: a hashed 1/R subset of the
	// line space was profiled exactly and counts were scaled by R.
	Rate int `json:"rate"`
	// SampledLines is how many distinct sampled lines backed the
	// estimate.
	SampledLines int `json:"sampled_lines"`
	// ErrorBound is the estimated relative error of the scaled miss
	// counts, ~1/sqrt(sampled_lines).
	ErrorBound float64 `json:"error_bound"`
}

// FigureV1 is the v1 form of a Figure.
type FigureV1 struct {
	Title  string     `json:"title"`
	XLabel string     `json:"x_label"`
	YLabel string     `json:"y_label"`
	Series []SeriesV1 `json:"series,omitempty"`
}

// SeriesV1 is the v1 form of one labelled curve.
type SeriesV1 struct {
	Label  string    `json:"label"`
	Points []PointV1 `json:"points,omitempty"`
}

// PointV1 is one curve sample: cache capacity in bytes and the miss
// metric there (misses per reference or per FLOP, as the figure labels).
type PointV1 struct {
	CacheBytes uint64  `json:"cache_bytes"`
	MissRate   float64 `json:"miss_rate"`
}

// TableV1 is the v1 form of a Table.
type TableV1 struct {
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
}

// V1 converts the report to its frozen wire form.
func (r *Report) V1() *ReportV1 {
	v := &ReportV1{
		SchemaVersion: ReportSchemaVersion,
		Title:         r.Title,
		Notes:         r.Notes,
		Metrics:       r.Metrics,
	}
	if r.Sampling != nil {
		v.Sampling = &SamplingV1{
			Rate:         r.Sampling.Rate,
			SampledLines: r.Sampling.SampledLines,
			ErrorBound:   r.Sampling.ErrorBound,
		}
	}
	for _, f := range r.Figures {
		fv := FigureV1{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
		for _, s := range f.Series {
			sv := SeriesV1{Label: s.Label}
			for _, p := range s.Points {
				sv.Points = append(sv.Points, PointV1{CacheBytes: p.CacheBytes, MissRate: p.MissRate})
			}
			fv.Series = append(fv.Series, sv)
		}
		v.Figures = append(v.Figures, fv)
	}
	for _, t := range r.Tables {
		v.Tables = append(v.Tables, TableV1{Title: t.Title, Header: t.Header, Rows: t.Rows})
	}
	return v
}

// Report converts the wire form back to the in-memory Report — the
// inverse of V1, used when the result store revives a persisted
// rendering so text and CSV can still be derived from it.
func (v *ReportV1) Report() *Report {
	r := &Report{Title: v.Title, Notes: v.Notes, Metrics: v.Metrics}
	if v.Sampling != nil {
		r.Sampling = &Sampling{
			Rate:         v.Sampling.Rate,
			SampledLines: v.Sampling.SampledLines,
			ErrorBound:   v.Sampling.ErrorBound,
		}
	}
	for _, fv := range v.Figures {
		f := Figure{Title: fv.Title, XLabel: fv.XLabel, YLabel: fv.YLabel}
		for _, sv := range fv.Series {
			s := Series{Label: sv.Label}
			for _, pv := range sv.Points {
				s.Points = append(s.Points, workingset.Point{CacheBytes: pv.CacheBytes, MissRate: pv.MissRate})
			}
			f.Series = append(f.Series, s)
		}
		r.Figures = append(r.Figures, f)
	}
	for _, tv := range v.Tables {
		r.Tables = append(r.Tables, Table{Title: tv.Title, Header: tv.Header, Rows: tv.Rows})
	}
	return r
}
