package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"wsstudy/internal/capture"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
)

// fpExecute sits at the head of every experiment run — the one seam that
// covers the whole sweep. Error mode fails an attempt before the kernel
// starts (arming a Transient-marked Err exercises the retry path), panic
// mode exercises the recover-to-PanicError path, and delay mode stalls a
// cell deterministically, which is how the crash-resume test parks a
// worker mid-suite before the SIGKILL.
var fpExecute = fault.New("core.execute")

// ErrDeadline is wrapped by every *DeadlineError, so callers can classify
// timed-out experiments with errors.Is(err, ErrDeadline).
var ErrDeadline = errors.New("core: experiment deadline exceeded")

// DeadlineError reports that an experiment exceeded its per-run timeout.
type DeadlineError struct {
	// ID names the experiment that timed out.
	ID string
	// Timeout is the per-experiment deadline that expired (zero when the
	// expiry came from the caller's context rather than Options.Timeout).
	Timeout time.Duration
	// Partial holds whatever Report data the experiment had assembled when
	// the deadline hit, or nil if nothing was salvageable.
	Partial *Report
}

// Error renders the failure.
func (e *DeadlineError) Error() string {
	if e.Timeout > 0 {
		return fmt.Sprintf("core: experiment %q exceeded its %v deadline", e.ID, e.Timeout)
	}
	return fmt.Sprintf("core: experiment %q deadline exceeded", e.ID)
}

// Unwrap ties the error to both ErrDeadline and context.DeadlineExceeded.
func (e *DeadlineError) Unwrap() []error {
	return []error{ErrDeadline, context.DeadlineExceeded}
}

// PanicError reports a panic recovered from an experiment's Run, with the
// goroutine stack captured at the panic site.
type PanicError struct {
	// ID names the experiment that panicked.
	ID string
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack captured during recovery.
	Stack string
}

// Error renders the panic value; the stack is available via the Stack field.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: experiment %q panicked: %v", e.ID, e.Value)
}

// transientError marks an error as transiently classified, asking the suite
// runner to retry the experiment.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true: the failure is believed
// temporary (resource pressure, a flaky backend) and the suite runner may
// retry the experiment. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient. Deadline expiry, cancellation and panics are never transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Execute runs one experiment under ctx with the hardening the suite relies
// on: Options.Timeout (when positive) bounds the run, a panic inside Run
// comes back as a *PanicError with the captured stack, and deadline expiry
// comes back as a *DeadlineError carrying whatever partial Report the
// experiment managed to assemble.
//
// Observability: when ctx carries an obs.Recorder, the experiment runs
// against a child Recorder (so concurrent suite workers never interleave
// counts), its wall time lands in the parent's ExperimentWall histogram,
// and the child's final snapshot is folded back into the parent and
// attached to the Report (or to a DeadlineError's partial report) as
// Report.Metrics. With no Recorder attached none of this machinery is
// created.
func Execute(ctx context.Context, e Experiment, opt Options) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	}
	defer cancel()

	parent := obs.From(ctx)
	var run *obs.Recorder
	if parent != nil {
		parent.SetLabel(obs.LabelExperiment, e.ID)
		run = parent.NewChild()
		ctx = obs.With(ctx, run)
	}
	start := time.Now()

	defer func() {
		if v := recover(); v != nil {
			rep = nil
			err = &PanicError{ID: e.ID, Value: v, Stack: string(debug.Stack())}
		} else if err != nil && errors.Is(err, context.DeadlineExceeded) {
			err = &DeadlineError{ID: e.ID, Timeout: opt.Timeout, Partial: rep}
			rep = nil
		}
		if parent != nil {
			parent.Observe(obs.ExperimentWall, time.Since(start))
			m := parent.Fold(run)
			if rep != nil {
				rep.Metrics = &m
			} else {
				var de *DeadlineError
				if errors.As(err, &de) && de.Partial != nil {
					de.Partial.Metrics = &m
				}
			}
		}
	}()
	if err := fpExecute.Inject(ctx); err != nil {
		return nil, err
	}
	return e.Run(ctx, opt)
}

// SuiteOptions tunes a RunSuite call.
type SuiteOptions struct {
	// Options is the base per-experiment configuration (Scale, Timeout).
	// Cancellation and observability ride the context passed to RunSuite.
	Options Options
	// Workers bounds the number of experiments running concurrently.
	// Zero or negative means 2.
	Workers int
	// Retries is how many additional attempts a transiently classified
	// failure gets. Zero means no retries.
	Retries int
	// Backoff is the initial retry delay, doubling per attempt. Zero means
	// 100ms.
	Backoff time.Duration
	// Journal, when non-nil, checkpoints each completed cell and revives
	// cells the journal already holds instead of recomputing them — the
	// resume path for a suite killed mid-sweep. A checkpoint-append
	// failure never fails the cell; it is counted (suite.journal.errors)
	// and the run continues with that cell unresumable.
	Journal *Journal
}

// SuiteResult is one experiment's outcome within a suite run.
type SuiteResult struct {
	ID       string
	Title    string
	Report   *Report // non-nil on success
	Err      error   // non-nil on failure (typed: *DeadlineError, *PanicError, ...)
	Attempts int     // run attempts made (>1 means retries happened; 0 means revived)
	Elapsed  time.Duration
	// Revived marks a cell served from the checkpoint journal: the
	// report was computed by an earlier (crashed or killed) run of the
	// same suite, not by this one.
	Revived bool
}

// SuiteReport aggregates a suite run: every experiment's result in input
// order, plus the success/failure split.
type SuiteReport struct {
	Results []SuiteResult
}

// Reports returns the successful reports in input order.
func (s *SuiteReport) Reports() []*Report {
	var out []*Report
	for _, r := range s.Results {
		if r.Err == nil && r.Report != nil {
			out = append(out, r.Report)
		}
	}
	return out
}

// Failures returns the failed results in input order.
func (s *SuiteReport) Failures() []SuiteResult {
	var out []SuiteResult
	for _, r := range s.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// FailureSummary renders the failures one per line, or "" when the suite
// was clean.
func (s *SuiteReport) FailureSummary() string {
	fails := s.Failures()
	if len(fails) == 0 {
		return ""
	}
	out := fmt.Sprintf("%d of %d experiments failed:\n", len(fails), len(s.Results))
	for _, f := range fails {
		out += fmt.Sprintf("  %s: %v (attempts: %d)\n", f.ID, f.Err, f.Attempts)
	}
	return out
}

// RunSuite executes the experiments in a bounded worker pool, degrading
// gracefully: one experiment panicking, timing out, or failing does not
// stop the others, and the returned SuiteReport carries every successful
// Report plus a typed error per failure. Cancelling ctx stops the suite
// promptly — queued experiments are marked with the context error without
// running, and in-flight ones stop at their kernels' next cancellation
// poll. RunSuite itself never returns an error; per-experiment outcomes
// live in the report.
func RunSuite(ctx context.Context, experiments []Experiment, opt SuiteOptions) *SuiteReport {
	if ctx == nil {
		ctx = context.Background()
	}
	// Suite-scope kernel-trace capture: experiments sharing a kernel
	// configuration replay one recorded stream instead of re-running the
	// kernel. Callers override by attaching their own store (or an
	// explicit nil, to disable) before calling RunSuite.
	if !capture.Attached(ctx) {
		ctx = capture.With(ctx, capture.New(0))
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 2
	}
	if workers > len(experiments) {
		workers = len(experiments)
	}
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	obs.From(ctx).Counter(obs.SuiteTotal).Add(uint64(len(experiments)))

	report := &SuiteReport{Results: make([]SuiteResult, len(experiments))}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := obs.From(ctx)
			for i := range jobs {
				e := experiments[i]
				if rep, ok := opt.Journal.Lookup(e.ID, opt.Options); ok {
					report.Results[i] = SuiteResult{
						ID: e.ID, Title: e.Title, Report: rep, Revived: true,
					}
					rec.Counter(obs.SuiteRevived).Inc()
					rec.Counter(obs.SuiteDone).Inc()
					continue
				}
				res := runOne(ctx, e, opt, backoff)
				if res.Err == nil {
					if err := opt.Journal.Record(e.ID, opt.Options, res.Report); err != nil {
						rec.Counter(obs.SuiteJournalErrors).Inc()
					}
				}
				report.Results[i] = res
			}
		}()
	}
feed:
	for i := range experiments {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark this and every unfed experiment as cancelled-before-run.
			for j := i; j < len(experiments); j++ {
				report.Results[j] = SuiteResult{
					ID:    experiments[j].ID,
					Title: experiments[j].Title,
					Err:   ctx.Err(),
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return report
}

// runOne executes a single experiment under the shared RetryPolicy:
// transiently classified failures (and retryable typed errors — trace
// corruption, capture replay loss) back off and re-attempt up to
// opt.Retries extra times.
func runOne(ctx context.Context, e Experiment, opt SuiteOptions, backoff time.Duration) SuiteResult {
	rec := obs.From(ctx)
	busy := rec.Gauge(obs.WorkersBusy)
	busy.Add(1)
	res := SuiteResult{ID: e.ID, Title: e.Title}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		busy.Add(-1)
		rec.Counter(obs.SuiteDone).Inc()
		if res.Err != nil {
			rec.Counter(obs.SuiteFailed).Inc()
		}
	}()
	policy := RetryPolicy{MaxAttempts: opt.Retries + 1, Backoff: backoff}
	res.Attempts, res.Err = policy.Do(ctx, func(int) error {
		rep, err := Execute(ctx, e, opt.Options)
		res.Report = rep
		return err
	})
	if res.Attempts > 1 {
		rec.Counter(obs.SuiteRetries).Add(uint64(res.Attempts - 1))
	}
	return res
}
