package core

import (
	"context"
	"reflect"
	"testing"

	"wsstudy/internal/capture"
	"wsstudy/internal/obs"
)

// stripMetrics clears the Metrics field of every report so the remaining
// comparison covers exactly what the study reads: figures, tables, notes.
// Delivery-granularity counters (trace.blocks, batcher flushes) may
// legitimately differ between a live kernel run and a capture replay; the
// statistics must not.
func stripMetrics(reps []*Report) []*Report {
	out := make([]*Report, len(reps))
	for i, r := range reps {
		cp := *r
		cp.Metrics = nil
		out[i] = &cp
	}
	return out
}

// TestSuiteTraceReuse runs the two experiments that share a Barnes-Hut
// configuration as a suite, with capture disabled and enabled, and
// demands (a) the capture run replayed at least one kernel stream, and
// (b) every figure, table and note is bit-identical either way.
func TestSuiteTraceReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale experiments")
	}
	var exps []Experiment
	for _, id := range []string{"fig6", "fig6dm"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	run := func(ctx context.Context) *SuiteReport {
		rep := RunSuite(ctx, exps, SuiteOptions{
			Options: Options{Scale: ScaleQuick}, Workers: 1,
		})
		if s := rep.FailureSummary(); s != "" {
			t.Fatal(s)
		}
		return rep
	}

	recOff := obs.New()
	off := run(capture.With(obs.With(context.Background(), recOff), nil))
	recOn := obs.New()
	on := run(obs.With(context.Background(), recOn))

	mOff, mOn := recOff.Snapshot(), recOn.Snapshot()
	if got := mOff.Counters[obs.CaptureHits] + mOff.Counters[obs.CaptureMisses]; got != 0 {
		t.Errorf("disabled capture recorded %d lookups", got)
	}
	if mOn.Counters[obs.CaptureMisses] == 0 {
		t.Error("capture suite recorded no kernel stream")
	}
	if mOn.Counters[obs.CaptureHits] == 0 {
		t.Error("capture suite replayed nothing: fig6dm should reuse fig6's stream")
	}
	if mOn.Counters[obs.CaptureReplayedRefs] == 0 {
		t.Error("capture hit delivered no references")
	}

	if got, want := stripMetrics(on.Reports()), stripMetrics(off.Reports()); !reflect.DeepEqual(got, want) {
		t.Errorf("capture replay changed experiment results\nwith:    %+v\nwithout: %+v", got, want)
	}
}
