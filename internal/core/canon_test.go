package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"wsstudy/internal/obs"
	"wsstudy/internal/workingset"
)

// TestCanonicalOptions pins the canonical encoding: defaults explicit,
// stable across runs, and insensitive to non-semantic fields.
func TestCanonicalOptions(t *testing.T) {
	const zeroWant = "optv2;assoc=0;cache=0;line=0;pes=0;problem=0;sample=1;scale=full"
	if got := (Options{}).Canonical(); got != zeroWant {
		t.Errorf("zero Options canonical = %q, want %s", got, zeroWant)
	}
	if got := (Options{Scale: ScaleQuick}).Canonical(); !strings.HasSuffix(got, ";scale=quick") {
		t.Errorf("quick canonical = %q", got)
	}
	// Timeout bounds a run; it cannot change a completed report, so it
	// must not change the key either.
	a := Options{Scale: ScaleQuick}
	b := Options{Scale: ScaleQuick, Timeout: 5 * time.Minute}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("Timeout changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if (Options{}).Fingerprint() == a.Fingerprint() {
		t.Errorf("full and quick scale share a fingerprint")
	}
	if fp := a.Fingerprint(); len(fp) != 64 {
		t.Errorf("fingerprint %q not 64 hex chars", fp)
	}
}

// TestAxisRoundTrip proves SetAxis is the inverse of AxisValue for
// every registered axis, that the canonical encoding covers exactly
// the axis registry, and that malformed values are rejected — the
// contract the sweep lattice and the HTTP decoder both build on.
func TestAxisRoundTrip(t *testing.T) {
	src := Options{
		Scale: ScaleQuick, CacheBytes: 1 << 16, LineBytes: 32,
		Assoc: 4, PEs: 64, Problem: 500,
	}
	var dst Options
	for _, f := range AxisFields() {
		v := src.AxisValue(f)
		if v == "" {
			t.Fatalf("AxisValue(%q) empty", f)
		}
		if err := dst.SetAxis(f, v); err != nil {
			t.Fatalf("SetAxis(%q, %q): %v", f, v, err)
		}
	}
	if dst.Canonical() != src.Canonical() {
		t.Errorf("round-trip canonical %q != %q", dst.Canonical(), src.Canonical())
	}
	// The canonical string mentions every axis exactly once.
	canon := src.Canonical()
	for _, f := range AxisFields() {
		if !strings.Contains(canon, ";"+f+"=") {
			t.Errorf("canonical %q missing axis %q", canon, f)
		}
	}

	var o Options
	for _, bad := range [][2]string{
		{"scale", "huge"}, {"cache", "-1"}, {"cache", "x"},
		{"pes", "-2"}, {"line", "1.5"}, {"nosuch", "1"},
	} {
		if err := o.SetAxis(bad[0], bad[1]); err == nil {
			t.Errorf("SetAxis(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"": ScaleFull, "full": ScaleFull, "FULL": ScaleFull,
		"quick": ScaleQuick, "Quick": ScaleQuick,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Errorf("ParseScale accepted an unknown scale")
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"": FormatText, "text": FormatText, "csv": FormatCSV, "JSON": FormatJSON,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Errorf("ParseFormat accepted an unknown format")
	}
}

// TestReportV1RoundTrip checks that Report -> V1 -> JSON -> V1 -> Report
// preserves everything the wire schema carries, and that the JSON is
// self-describing via schema_version.
func TestReportV1RoundTrip(t *testing.T) {
	r := &Report{
		Title: "demo",
		Figures: []Figure{{
			Title: "fig", XLabel: "cache size", YLabel: "miss rate",
			Series: []Series{{Label: "s", Points: []workingset.Point{
				{CacheBytes: 64, MissRate: 0.5},
				{CacheBytes: 128, MissRate: 0.25},
			}}},
		}},
		Tables: []Table{{Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Notes:  []string{"a note"},
		Metrics: &obs.Metrics{
			Counters: map[string]uint64{"trace.refs": 9},
		},
	}

	var sb strings.Builder
	if err := r.Render(&sb, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf(`"schema_version": %d`, ReportSchemaVersion)) {
		t.Errorf("JSON render missing schema_version:\n%.300s", sb.String())
	}
	var v ReportV1
	if err := json.Unmarshal([]byte(sb.String()), &v); err != nil {
		t.Fatalf("JSON render not a valid ReportV1: %v", err)
	}
	if v.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema_version = %d, want %d", v.SchemaVersion, ReportSchemaVersion)
	}

	back := v.Report()
	if back.Title != r.Title || len(back.Figures) != 1 || len(back.Tables) != 1 {
		t.Fatalf("round-trip lost structure: %+v", back)
	}
	if got := back.Figures[0].Series[0].Points[1]; got.CacheBytes != 128 || got.MissRate != 0.25 {
		t.Errorf("round-trip point = %+v", got)
	}
	if back.Tables[0].Rows[0][1] != "2" || back.Notes[0] != "a note" {
		t.Errorf("round-trip table/notes lost: %+v", back)
	}
	if back.Metrics == nil || back.Metrics.Counter("trace.refs") != 9 {
		t.Errorf("round-trip metrics lost: %+v", back.Metrics)
	}

	// The three formats all flow through the one Render method.
	var text, csv strings.Builder
	if err := back.Render(&text, FormatText); err != nil {
		t.Fatal(err)
	}
	if err := back.Render(&csv, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "== demo ==") {
		t.Errorf("text render wrong:\n%s", text.String())
	}
	if !strings.Contains(csv.String(), "fig,s,128,0.25") {
		t.Errorf("csv render wrong:\n%s", csv.String())
	}
}
