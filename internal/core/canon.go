package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// canonVersion tags the canonical Options encoding; bump it whenever an
// existing encoding string could alias a semantically different new one,
// so stale fingerprints can never collide with new configurations.
// Version 2 added the design-space axes (cache, line, assoc, pes,
// problem), invalidating every v1 key at once. Appending a brand-new key
// (sample, PR 9) stays within v2: old strings lack the key entirely, so
// they cannot alias any new encoding — they simply stop being produced.
const canonVersion = 2

// Canonical returns the stable textual encoding of the Options used to
// key experiment results: `optv2;key=value;...` with keys sorted,
// defaults written out explicitly, and zero values normalized, so any
// two Options that would produce the same Report encode identically.
//
// Only result-affecting fields participate. Timeout is deliberately
// excluded: a deadline bounds how long a run may take, but experiments
// are deterministic, so it cannot change the content of a report that
// completes — and excluding it lets a request with a 30s budget reuse a
// result computed under a 5m one. MachineShards is excluded for the same
// reason: the sharded engine is bit-identical to the serial one (the
// equivalence suite enforces it), so the shard count can only change
// wall-clock behaviour, never a report — a result computed serially is
// valid for a sharded request and vice versa.
func (o Options) Canonical() string {
	keys := AxisFields()
	var sb strings.Builder
	fmt.Fprintf(&sb, "optv%d", canonVersion)
	for _, k := range keys {
		sb.WriteByte(';')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(o.AxisValue(k))
	}
	return sb.String()
}

// The axis registry: every semantic Options field, by its canonical
// name. A sweep lattice's axes are validated against this set, and the
// HTTP layer derives its `opt.<axis>` query parameters from it, so the
// canonical encoding, the sweep surface and the request surface can
// never drift apart.
const (
	AxisScale   = "scale"
	AxisCache   = "cache"
	AxisLine    = "line"
	AxisAssoc   = "assoc"
	AxisPEs     = "pes"
	AxisProblem = "problem"
	AxisSample  = "sample"
)

// AxisFields lists the sweepable canonical Options fields in encoding
// order (sorted). The returned slice is the caller's to keep.
func AxisFields() []string {
	return []string{AxisAssoc, AxisCache, AxisLine, AxisPEs, AxisProblem, AxisSample, AxisScale}
}

// AxisValue reads the canonical string value of one axis field; ""
// for an unknown field name.
func (o Options) AxisValue(field string) string {
	switch field {
	case AxisScale:
		return o.Scale.String()
	case AxisCache:
		return strconv.FormatUint(o.CacheBytes, 10)
	case AxisLine:
		return strconv.Itoa(o.LineBytes)
	case AxisAssoc:
		return strconv.Itoa(o.Assoc)
	case AxisPEs:
		return strconv.Itoa(o.PEs)
	case AxisProblem:
		return strconv.Itoa(o.Problem)
	case AxisSample:
		// Zero (unset) normalizes to the exact profiler's rate 1, so
		// pre-sampling Options encode identically to an explicit exact run.
		if o.SampleRate <= 1 {
			return "1"
		}
		return strconv.Itoa(o.SampleRate)
	}
	return ""
}

// SetAxis sets the named canonical field from its string form — the
// inverse of AxisValue, used by the sweep lattice and the HTTP request
// decoder. Numeric axes accept non-negative integers (bytes for cache
// and line); scale accepts "quick" and "full". Unknown fields and
// malformed values are errors.
func (o *Options) SetAxis(field, value string) error {
	switch field {
	case AxisScale:
		s, err := ParseScale(value)
		if err != nil {
			return err
		}
		o.Scale = s
		return nil
	case AxisCache:
		v, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("core: axis %s: %q is not a non-negative byte count", field, value)
		}
		o.CacheBytes = v
		return nil
	case AxisLine, AxisAssoc, AxisPEs, AxisProblem:
		v, err := strconv.Atoi(value)
		if err != nil || v < 0 {
			return fmt.Errorf("core: axis %s: %q is not a non-negative integer", field, value)
		}
		switch field {
		case AxisLine:
			o.LineBytes = v
		case AxisAssoc:
			o.Assoc = v
		case AxisPEs:
			o.PEs = v
		case AxisProblem:
			o.Problem = v
		}
		return nil
	case AxisSample:
		v, err := strconv.Atoi(value)
		if err != nil || v < 1 || v&(v-1) != 0 {
			return fmt.Errorf("core: axis %s: %q is not a power-of-two sampling rate ≥ 1", field, value)
		}
		o.SampleRate = v
		return nil
	}
	return fmt.Errorf("core: unknown options axis %q (valid: %s)",
		field, strings.Join(AxisFields(), ", "))
}

// Fingerprint returns the hex SHA-256 of the canonical encoding — the
// stable identity the CLI, the result store, and tests all use to key a
// configuration. Equal Options always fingerprint equally; Options that
// differ only in non-semantic fields (Timeout) do too.
func (o Options) Fingerprint() string {
	sum := sha256.Sum256([]byte(o.Canonical()))
	return hex.EncodeToString(sum[:])
}

// resultKeySchema is the schema tag frozen into ResultKey derivation.
// It deliberately does NOT track ReportSchemaVersion: additive schema
// evolutions (new optional fields, like ReportV1's sampling block) keep
// old persisted reports revivable, so their content addresses must stay
// stable too. Bump this only for a breaking schema change that really
// must orphan every persisted rendering at once.
const resultKeySchema = 1

// ResultKey derives the content address of one (experiment id, Options)
// result: SHA-256 over the experiment id, the frozen result-key schema
// tag, and the canonical Options encoding. Options that canonicalize
// identically — regardless of Timeout or field order — always map to the
// same key. The result store and the suite checkpoint journal both key
// by this, so a journaled cell and a cached report for the same
// configuration can never disagree about identity.
func ResultKey(id string, o Options) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "wsstudy.result;schema=%d;experiment=%s;%s",
		resultKeySchema, id, o.Canonical())
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// ParseScale parses a scale name as used by the CLI and the HTTP API:
// "full" (or "") and "quick", case-insensitively.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "", "full":
		return ScaleFull, nil
	case "quick":
		return ScaleQuick, nil
	}
	return 0, fmt.Errorf("core: unknown scale %q (valid: full, quick)", s)
}
