package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// canonVersion tags the canonical Options encoding; bump it whenever a
// field is added to (or its default changes in) the encoding, so stale
// fingerprints can never alias new configurations.
const canonVersion = 1

// Canonical returns the stable textual encoding of the Options used to
// key experiment results: `optv1;key=value;...` with keys sorted,
// defaults written out explicitly, and zero values normalized, so any
// two Options that would produce the same Report encode identically.
//
// Only result-affecting fields participate. Timeout is deliberately
// excluded: a deadline bounds how long a run may take, but experiments
// are deterministic, so it cannot change the content of a report that
// completes — and excluding it lets a request with a 30s budget reuse a
// result computed under a 5m one. MachineShards is excluded for the same
// reason: the sharded engine is bit-identical to the serial one (the
// equivalence suite enforces it), so the shard count can only change
// wall-clock behaviour, never a report — a result computed serially is
// valid for a sharded request and vice versa.
func (o Options) Canonical() string {
	fields := map[string]string{
		"scale": o.Scale.String(),
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "optv%d", canonVersion)
	for _, k := range keys {
		sb.WriteByte(';')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(fields[k])
	}
	return sb.String()
}

// Fingerprint returns the hex SHA-256 of the canonical encoding — the
// stable identity the CLI, the result store, and tests all use to key a
// configuration. Equal Options always fingerprint equally; Options that
// differ only in non-semantic fields (Timeout) do too.
func (o Options) Fingerprint() string {
	sum := sha256.Sum256([]byte(o.Canonical()))
	return hex.EncodeToString(sum[:])
}

// ResultKey derives the content address of one (experiment id, Options)
// result: SHA-256 over the experiment id, the frozen report schema
// version, and the canonical Options encoding. Options that canonicalize
// identically — regardless of Timeout or field order — always map to the
// same key; bumping ReportSchemaVersion changes every key at once,
// invalidating stale persisted renderings. The result store and the
// suite checkpoint journal both key by this, so a journaled cell and a
// cached report for the same configuration can never disagree about
// identity.
func ResultKey(id string, o Options) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "wsstudy.result;schema=%d;experiment=%s;%s",
		ReportSchemaVersion, id, o.Canonical())
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// ParseScale parses a scale name as used by the CLI and the HTTP API:
// "full" (or "") and "quick", case-insensitively.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "", "full":
		return ScaleFull, nil
	case "quick":
		return ScaleQuick, nil
	}
	return 0, fmt.Errorf("core: unknown scale %q (valid: full, quick)", s)
}
