// Package core orchestrates the paper's experiments: each figure and table
// of the evaluation maps to a registered Experiment whose Run method drives
// the kernels, simulators and models and assembles a Report.
package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"wsstudy/internal/workingset"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []workingset.Point
}

// Figure is a set of curves over cache size, plus any knees found.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Report is an experiment's full output.
type Report struct {
	Title   string
	Figures []Figure
	Tables  []Table
	Notes   []string
}

// AddNote appends a free-text note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	for fi := range r.Figures {
		renderFigure(w, &r.Figures[fi])
	}
	for ti := range r.Tables {
		renderTable(w, &r.Tables[ti])
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w, "\nNotes:")
		for _, n := range r.Notes {
			fmt.Fprintf(w, "  - %s\n", n)
		}
	}
}

func renderFigure(w io.Writer, f *Figure) {
	fmt.Fprintf(w, "\n-- %s --\n", f.Title)
	fmt.Fprintf(w, "   (%s vs %s)\n", f.YLabel, f.XLabel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// Header: union of sizes comes from the first series; the sweeps all
	// use the same grid.
	fmt.Fprintf(tw, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(tw, "%s", workingset.FormatBytes(f.Series[0].Points[i].CacheBytes))
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(tw, "\t%.4g", s.Points[i].MissRate)
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	renderSparklines(w, f)
	// Knee summary per series.
	for _, s := range f.Series {
		c := workingset.Curve{Label: s.Label, Points: s.Points}
		knees := workingset.FindKnees(&c, 1.5, 0.002)
		if len(knees) == 0 {
			continue
		}
		var parts []string
		for _, k := range knees {
			parts = append(parts, fmt.Sprintf("%s (%.3g->%.3g)",
				workingset.FormatBytes(k.CacheBytes), k.Before, k.After))
		}
		fmt.Fprintf(w, "   knees[%s]: %s\n", s.Label, strings.Join(parts, ", "))
	}
}

// renderSparklines draws each series as a log-scale bar strip so the knee
// structure is visible at a glance in a terminal.
func renderSparklines(w io.Writer, f *Figure) {
	marks := []rune(" .:-=+*#%@")
	for _, s := range f.Series {
		lo, hi := math.Inf(1), 0.0
		for _, p := range s.Points {
			if p.MissRate > 0 && p.MissRate < lo {
				lo = p.MissRate
			}
			if p.MissRate > hi {
				hi = p.MissRate
			}
		}
		if hi == 0 || math.IsInf(lo, 1) || hi <= lo {
			continue
		}
		var sb strings.Builder
		for _, p := range s.Points {
			if p.MissRate <= 0 {
				sb.WriteRune(marks[0])
				continue
			}
			frac := math.Log(p.MissRate/lo) / math.Log(hi/lo)
			idx := int(frac * float64(len(marks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			sb.WriteRune(marks[idx])
		}
		fmt.Fprintf(w, "   [%s] %s (log scale, %s..%s)\n",
			sb.String(), s.Label,
			strconv.FormatFloat(lo, 'g', 3, 64), strconv.FormatFloat(hi, 'g', 3, 64))
	}
}

// RenderCSV writes every figure series as rows of
// (figure, series, cache_bytes, value) — machine-readable output for
// external plotting.
func (r *Report) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "cache_bytes", "value"}); err != nil {
		return err
	}
	for _, f := range r.Figures {
		for _, s := range f.Series {
			for _, p := range s.Points {
				if err := cw.Write([]string{
					f.Title, s.Label,
					strconv.FormatUint(p.CacheBytes, 10),
					strconv.FormatFloat(p.MissRate, 'g', -1, 64),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderTable(w io.Writer, t *Table) {
	fmt.Fprintf(w, "\n-- %s --\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks simulated problem sizes so the whole suite runs in
	// seconds (used by tests); full runs use the paper-scale or
	// largest-feasible configurations.
	Quick bool
	// Ctx, when non-nil, cancels the run cooperatively: kernels poll it at
	// their outer-loop boundaries, so a cancelled or expired context stops
	// an experiment within one loop body. Nil means context.Background.
	Ctx context.Context
	// Timeout, when positive, bounds the experiment's run time. Execute
	// derives a deadline-carrying context from Ctx and maps expiry to
	// ErrDeadline.
	Timeout time.Duration
}

// Context returns the run's context, never nil.
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Err reports the run context's cancellation state.
func (o Options) Err() error { return o.Context().Err() }

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID          string // "fig2", "table1", ...
	Title       string
	Description string
	Run         func(Options) (*Report, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		expFig2(), expFig4(), expFig5(), expFig6(), expFig6DM(), expFig7(),
		expTable1(), expTable2(), expMachines(), expGrain(), expScalingBH(),
		expCost(), expAssoc(), expLineSize(), expScalingAll(), expPhases(),
		expBus(),
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
