// Package core orchestrates the paper's experiments: each figure and table
// of the evaluation maps to a registered Experiment whose Run method drives
// the kernels, simulators and models and assembles a Report.
package core

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"wsstudy/internal/obs"
	"wsstudy/internal/workingset"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []workingset.Point
}

// Figure is a set of curves over cache size, plus any knees found.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Sampling describes the fidelity of a report computed with a sampled
// profiler: the spatial sampling rate, how many distinct sampled lines
// backed the estimate, and the estimated relative error bound
// (~1/sqrt(sampled lines)). Exact runs carry a nil Sampling.
type Sampling struct {
	Rate         int
	SampledLines int
	ErrorBound   float64
}

// Report is an experiment's full output.
type Report struct {
	Title   string
	Figures []Figure
	Tables  []Table
	Notes   []string
	// Sampling records the profiler fidelity when the run used spatial
	// sampling (Options.SampleRate > 1); nil for exact runs.
	Sampling *Sampling
	// Metrics is the run's observability snapshot — per-stage counters,
	// timings and labels — populated by Execute when the run's context
	// carries an obs.Recorder, nil otherwise.
	Metrics *obs.Metrics
}

// AddNote appends a free-text note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format selects a Report rendering. The zero value is the aligned-text
// form the CLI prints.
type Format uint8

const (
	// FormatText renders aligned tables, sparklines and knee summaries.
	FormatText Format = iota
	// FormatCSV renders (figure, series, cache_bytes, value) rows plus
	// metrics pseudo-rows — the machine-readable plotting output.
	FormatCSV
	// FormatJSON renders the frozen ReportV1 schema.
	FormatJSON
)

// String names the format ("text", "csv", "json").
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSON:
		return "json"
	}
	return "text"
}

// ContentType is the MIME type of the rendering, as the HTTP layer
// serves it.
func (f Format) ContentType() string {
	switch f {
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatJSON:
		return "application/json"
	}
	return "text/plain; charset=utf-8"
}

// ParseFormat parses a format name ("text", "csv", "json"),
// case-insensitively; "" means FormatText.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "json":
		return FormatJSON, nil
	}
	return 0, fmt.Errorf("core: unknown report format %q (valid: text, csv, json)", s)
}

// Render writes the report in the given format. Every consumer — the
// CLI, the HTTP API, and the result store's persistence — goes through
// this one method, so the three renderings can never drift apart.
func (r *Report) Render(w io.Writer, f Format) error {
	switch f {
	case FormatCSV:
		return r.renderCSV(w)
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r.V1())
	default:
		r.renderText(w)
		return nil
	}
}

// renderText writes the report as aligned text.
func (r *Report) renderText(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	for fi := range r.Figures {
		renderFigure(w, &r.Figures[fi])
	}
	for ti := range r.Tables {
		renderTable(w, &r.Tables[ti])
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w, "\nNotes:")
		for _, n := range r.Notes {
			fmt.Fprintf(w, "  - %s\n", n)
		}
	}
	if r.Sampling != nil {
		fmt.Fprintf(w, "\nsampling: rate=1/%d sampled_lines=%d est_error<=%.3g\n",
			r.Sampling.Rate, r.Sampling.SampledLines, r.Sampling.ErrorBound)
	}
	if r.Metrics != nil && !r.Metrics.Empty() {
		fmt.Fprintln(w, "\n-- metrics --")
		r.Metrics.Render(w)
	}
}

func renderFigure(w io.Writer, f *Figure) {
	fmt.Fprintf(w, "\n-- %s --\n", f.Title)
	fmt.Fprintf(w, "   (%s vs %s)\n", f.YLabel, f.XLabel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// Header: union of sizes comes from the first series; the sweeps all
	// use the same grid.
	fmt.Fprintf(tw, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(tw, "%s", workingset.FormatBytes(f.Series[0].Points[i].CacheBytes))
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(tw, "\t%.4g", s.Points[i].MissRate)
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	renderSparklines(w, f)
	// Knee summary per series.
	for _, s := range f.Series {
		c := workingset.Curve{Label: s.Label, Points: s.Points}
		knees := workingset.FindKnees(&c, 1.5, 0.002)
		if len(knees) == 0 {
			continue
		}
		var parts []string
		for _, k := range knees {
			parts = append(parts, fmt.Sprintf("%s (%.3g->%.3g)",
				workingset.FormatBytes(k.CacheBytes), k.Before, k.After))
		}
		fmt.Fprintf(w, "   knees[%s]: %s\n", s.Label, strings.Join(parts, ", "))
	}
}

// renderSparklines draws each series as a log-scale bar strip so the knee
// structure is visible at a glance in a terminal.
func renderSparklines(w io.Writer, f *Figure) {
	marks := []rune(" .:-=+*#%@")
	for _, s := range f.Series {
		lo, hi := math.Inf(1), 0.0
		for _, p := range s.Points {
			if p.MissRate > 0 && p.MissRate < lo {
				lo = p.MissRate
			}
			if p.MissRate > hi {
				hi = p.MissRate
			}
		}
		if hi == 0 || math.IsInf(lo, 1) || hi <= lo {
			continue
		}
		var sb strings.Builder
		for _, p := range s.Points {
			if p.MissRate <= 0 {
				sb.WriteRune(marks[0])
				continue
			}
			frac := math.Log(p.MissRate/lo) / math.Log(hi/lo)
			idx := int(frac * float64(len(marks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			sb.WriteRune(marks[idx])
		}
		fmt.Fprintf(w, "   [%s] %s (log scale, %s..%s)\n",
			sb.String(), s.Label,
			strconv.FormatFloat(lo, 'g', 3, 64), strconv.FormatFloat(hi, 'g', 3, 64))
	}
}

// renderCSV writes every figure series as rows of
// (figure, series, cache_bytes, value). When the report carries Metrics,
// they follow as rows under the pseudo-figure "metrics" with an empty
// cache_bytes column.
func (r *Report) renderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "cache_bytes", "value"}); err != nil {
		return err
	}
	for _, f := range r.Figures {
		for _, s := range f.Series {
			for _, p := range s.Points {
				if err := cw.Write([]string{
					f.Title, s.Label,
					strconv.FormatUint(p.CacheBytes, 10),
					strconv.FormatFloat(p.MissRate, 'g', -1, 64),
				}); err != nil {
					return err
				}
			}
		}
	}
	if r.Metrics != nil {
		if err := renderMetricsCSV(cw, r.Metrics); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// renderMetricsCSV emits a report's metrics snapshot as CSV rows: one per
// counter and gauge, and count/sum rows per duration histogram.
func renderMetricsCSV(cw *csv.Writer, m *obs.Metrics) error {
	row := func(name, value string) error {
		return cw.Write([]string{"metrics", name, "", value})
	}
	names := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := row(name, strconv.FormatUint(m.Counters[name], 10)); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range m.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := row(name+".max", strconv.FormatInt(m.Gauges[name].Max, 10)); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range m.Durations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ds := m.Durations[name]
		if err := row(name+".count", strconv.FormatUint(ds.Count, 10)); err != nil {
			return err
		}
		if err := row(name+".sum_ns", strconv.FormatInt(int64(ds.Sum), 10)); err != nil {
			return err
		}
	}
	return nil
}

func renderTable(w io.Writer, t *Table) {
	fmt.Fprintf(w, "\n-- %s --\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// Scale selects the simulated problem sizes of a run. The zero value is
// the full, paper-scale configuration, so a zero Options keeps meaning
// "run it for real"; intermediate scales can be added without another
// signature change.
type Scale uint8

const (
	// ScaleFull runs the paper-scale or largest-feasible configurations.
	ScaleFull Scale = iota
	// ScaleQuick shrinks simulated problem sizes so the whole suite runs
	// in seconds (used by tests and smoke runs).
	ScaleQuick
)

// String names the scale.
func (s Scale) String() string {
	if s == ScaleQuick {
		return "quick"
	}
	return "full"
}

// Options tunes an experiment run. Cancellation and observability do not
// live here: the run's context.Context — the first argument of every Run —
// carries both (deadline/cancel natively, the obs.Recorder via obs.With).
//
// Beyond Scale, Options carries the design-space axes of a parameter
// sweep: cache capacity, line size, associativity, processor count and
// problem size. Every axis is zero-defaulted — a zero means "the
// experiment's own default" — and every axis participates in the
// canonical encoding, so two cells of a lattice can never alias one
// result key. The paper-figure experiments pick their own parameters
// and ignore the axes; the grid cell experiments (gridlu, gridbh)
// consume all of them, which is what the sweep engine enumerates.
type Options struct {
	// Scale selects the simulated problem sizes (ScaleFull by default).
	Scale Scale
	// CacheBytes, when positive, is the per-PE cache capacity of a grid
	// cell. Zero keeps the experiment's default (typically a profiled
	// full curve rather than one concrete cache).
	CacheBytes uint64
	// LineBytes, when positive, is the cache line size in bytes of a
	// grid cell (zero = the experiment default, 8).
	LineBytes int
	// Assoc, when positive, is the cache associativity of a grid cell
	// (1 = direct-mapped); zero means fully associative.
	Assoc int
	// PEs, when positive, overrides the simulated (or modeled) processor
	// count of a grid cell.
	PEs int
	// Problem, when positive, overrides the application problem size of
	// a grid cell (n for LU and Barnes-Hut).
	Problem int
	// SampleRate selects profiler fidelity: 0 or 1 runs the exact
	// stack-distance profiler; a power of two ≥ 2 profiles a hashed 1/R
	// subset of the line space with counts scaled back up (see
	// cache.SampledStackProfiler). Sampling changes reported numbers, so
	// unlike MachineShards it IS part of the canonical encoding and the
	// result key.
	SampleRate int
	// Timeout, when positive, bounds the experiment's run time. Execute
	// derives a deadline-carrying context and maps expiry to ErrDeadline.
	Timeout time.Duration
	// MachineShards selects the simulated machine's engine: 0 the serial
	// memory system, a positive count the region-sharded engine with that
	// many directory shards. The sharded engine is bit-identical to the
	// serial one, so — like Timeout — this is a non-semantic knob and is
	// deliberately excluded from Canonical(): the same experiment at any
	// shard count shares one result key.
	MachineShards int
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID          string // "fig2", "table1", ...
	Title       string
	Description string
	Run         func(ctx context.Context, opt Options) (*Report, error)
}

// registry builds the experiment list and its id index exactly once; the
// constructors are pure, so there is no reason to re-run all eighteen on
// every Find.
var registry = sync.OnceValue(func() *registryData {
	d := &registryData{
		list: []Experiment{
			expFig2(), expFig4(), expFig5(), expFig6(), expFig6DM(), expFig7(),
			expTable1(), expTable2(), expMachines(), expGrain(), expScalingBH(),
			expCost(), expAssoc(), expLineSize(), expScalingAll(), expPhases(),
			expBus(), expSharing1024(), expGridLU(), expGridBH(),
		},
	}
	d.byID = make(map[string]Experiment, len(d.list))
	for _, e := range d.list {
		d.byID[e.ID] = e
	}
	return d
})

type registryData struct {
	list []Experiment
	byID map[string]Experiment
}

// Registry lists every experiment in paper order. The returned slice is
// the caller's to reorder or filter.
func Registry() []Experiment {
	d := registry()
	out := make([]Experiment, len(d.list))
	copy(out, d.list)
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	e, ok := registry().byID[id]
	return e, ok
}
