package core

import (
	"context"
	"fmt"

	"wsstudy/internal/apps/barneshut"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

// Ablation experiments beyond the paper's figures: the associativity sweep
// Section 6.4 gestures at, and a line-size study for the two irregular
// applications (the paper measures double-word lines only; real caches
// must pick a line size, and spatial locality differs sharply between the
// 2-byte-voxel renderer and the record-structured N-body code).

// runBHConcrete runs a Barnes-Hut configuration under ctx against concrete
// per-PE caches and returns PE 1's read miss rate.
func runBHConcrete(ctx context.Context, o Options, n, steps, warm, capacityLines, assoc int, lineSize uint32) (float64, error) {
	bodies := barneshut.Plummer(n, 42)
	sys, err := openMachine(ctx, o, memsys.Config{
		PEs: 4, LineSize: lineSize, CacheCapacity: capacityLines, Assoc: assoc,
		ProfilePE: -1, WarmupEpochs: warm,
	})
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	sim, err := barneshut.NewSimulation(bodies, barneshut.Config{
		Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.003, P: 4,
	}, trace.WithContext(ctx, sys))
	if err != nil {
		return 0, err
	}
	for s := 0; s < steps; s++ {
		if _, err := sim.Step(); err != nil {
			return 0, err
		}
	}
	if err := sys.Close(); err != nil {
		return 0, err
	}
	st := sys.Cache(1).Stats()
	return st.ReadMissRate(), nil
}

func expAssoc() Experiment {
	return Experiment{
		ID:    "assoc",
		Title: "Associativity sweep for Barnes-Hut (Section 6.4 extension)",
		Description: "Read miss rate vs cache size at associativity 1, 2, 4 " +
			"and full: how much associativity recovers of the direct-mapped " +
			"size penalty.",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			n, steps := 256, 3
			if o.Scale != ScaleQuick {
				n, steps = 512, 4
			}
			const warm = 1
			sizes := []uint64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
			assocs := []struct {
				label string
				ways  int // 0 = fully associative
			}{
				{"direct-mapped", 1}, {"2-way", 2}, {"4-way", 4}, {"fully assoc", 0},
			}
			fig := Figure{
				Title:  fmt.Sprintf("Barnes-Hut n=%d theta=1.0 p=4, 8 B lines", n),
				XLabel: "cache size", YLabel: "read miss rate",
			}
			for _, a := range assocs {
				series := Series{Label: a.label}
				for _, bytes := range sizes {
					rate, err := runBHConcrete(ctx, o, n, steps, warm, int(bytes/8), a.ways, 8)
					if err != nil {
						return nil, err
					}
					series.Points = append(series.Points, workingset.Point{
						CacheBytes: bytes, MissRate: rate,
					})
				}
				fig.Series = append(fig.Series, series)
			}
			r := &Report{Title: "Associativity sweep (Barnes-Hut)"}
			r.Figures = append(r.Figures, fig)

			// Size needed to reach the fully associative 64 KB rate.
			fa := workingset.Curve{Points: fig.Series[3].Points}
			target := fa.RateAt(64*1024) * 1.25
			for i, a := range assocs {
				at := firstSizeBelow(fig.Series[i], target)
				if at > 0 {
					r.AddNote("%s reaches rate %.4g at %s", a.label, target,
						workingset.FormatBytes(at))
				} else {
					r.AddNote("%s never reaches rate %.4g in the sweep", a.label, target)
				}
			}
			return r, nil
		},
	}
}

func expLineSize() Experiment {
	return Experiment{
		ID:    "linesize",
		Title: "Line-size study: Barnes-Hut and volume rendering",
		Description: "Read miss rate at a fixed 16 KB cache as the line grows " +
			"from the paper's 8-byte double words to 64 bytes: spatial " +
			"locality (renderer voxels) versus record structure (N-body).",
		Run: func(ctx context.Context, o Options) (*Report, error) {
			bhN, frames := 256, 3
			volEdge, img := 48, 80
			if o.Scale != ScaleQuick {
				bhN, volEdge, img = 512, 64, 112
			}
			lineSizes := []uint32{8, 16, 32, 64}
			const cacheBytes = 16 << 10

			bh := Series{Label: "Barnes-Hut"}
			for _, ls := range lineSizes {
				rate, err := runBHConcrete(ctx, o, bhN, frames, 1, int(cacheBytes/int(ls)), 0, ls)
				if err != nil {
					return nil, err
				}
				bh.Points = append(bh.Points, workingset.Point{
					CacheBytes: uint64(ls), MissRate: rate,
				})
			}

			vr := Series{Label: "volume rendering"}
			for _, ls := range lineSizes {
				vol := volrend.SyntheticHead(volEdge, volEdge, volEdge*7/8)
				sys, err := openMachine(ctx, o, memsys.Config{
					PEs: 4, LineSize: ls, Dist: memsys.Interleaved,
					CacheCapacity: int(cacheBytes / int(ls)), ProfilePE: -1,
					WarmupEpochs: 1,
				})
				if err != nil {
					return nil, err
				}
				ren, err := volrend.NewRenderer(vol, volrend.Config{
					ImageW: img, ImageH: img, P: 4,
				}, trace.WithContext(ctx, sys))
				if err != nil {
					sys.Close()
					return nil, err
				}
				for f := 0; f < 3; f++ {
					if _, err := ren.RenderFrame(0.04 * float64(f)); err != nil {
						sys.Close()
						return nil, err
					}
				}
				if err := sys.Close(); err != nil {
					return nil, err
				}
				st := sys.Cache(0).Stats()
				vr.Points = append(vr.Points, workingset.Point{
					CacheBytes: uint64(ls), MissRate: st.ReadMissRate(),
				})
			}

			r := &Report{Title: "Line-size study (16 KB caches)"}
			r.Figures = append(r.Figures, Figure{
				Title:  "read miss rate vs line size",
				XLabel: "line size", YLabel: "read miss rate",
				Series: []Series{bh, vr},
			})
			r.AddNote("the renderer's 2-byte voxels convert line growth directly into hits; the N-body records (24-192 B) gain less and eventually pay capacity for unused record fields")
			return r, nil
		},
	}
}
