// Package sweep turns the experiment engine into a design-space
// service. A Spec names one experiment and a lattice of Options axes
// (cache size × processor count × problem size × ...); the Engine
// enumerates the lattice's cells and runs each through the
// content-addressed result store, checkpointing every landed cell in a
// core.Journal keyed by core.ResultKey. Because cells are content
// addressed, a re-submitted sweep — same canonical spec, same sweep id
// — revives finished cells from the journal or the store's persisted
// renderings instead of recomputing them, across process restarts: the
// same resume contract core.Journal already provides for suites,
// applied to the paper's actual product, the design space itself.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wsstudy/internal/core"
	"wsstudy/internal/store"
)

// MaxCells bounds a single lattice: axes multiply, and a spec that
// asks for more cells than any reasonable study is a mistake, not a
// workload.
const MaxCells = 4096

// Axis is one swept dimension: a canonical core.Options field (see
// core.AxisFields) and the values it takes, in canonical string form.
type Axis struct {
	Field  string   `json:"field"`
	Values []string `json:"values"`
}

// Spec is a sweep request: one experiment evaluated at every cell of
// the cartesian lattice of Axes, at a base Scale. A Spec is accepted
// in any axis/value order; Canonicalize normalizes it so equivalent
// requests derive the same sweep id.
type Spec struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Axes       []Axis `json:"axes"`
}

// Canonicalize validates a spec against the experiment registry and
// the Options axis registry and returns its normal form: axes sorted
// by field, values parsed-then-reprinted through Options.SetAxis (so
// "1024" and "01024" are the same value), deduplicated, and sorted
// numerically where numeric. Two specs that canonicalize identically
// describe the same lattice and will share a sweep id.
func (s Spec) Canonicalize() (Spec, error) {
	exp, ok := core.Find(s.Experiment)
	if !ok {
		return Spec{}, fmt.Errorf("sweep: unknown experiment %q", s.Experiment)
	}
	scale, err := core.ParseScale(s.Scale)
	if err != nil {
		return Spec{}, fmt.Errorf("sweep: %w", err)
	}
	if len(s.Axes) == 0 {
		return Spec{}, fmt.Errorf("sweep: a lattice needs at least one axis")
	}

	out := Spec{Experiment: exp.ID, Scale: scale.String()}
	seen := make(map[string]bool, len(s.Axes))
	cells := 1
	for _, ax := range s.Axes {
		if seen[ax.Field] {
			return Spec{}, fmt.Errorf("sweep: duplicate axis %q", ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return Spec{}, fmt.Errorf("sweep: axis %q has no values", ax.Field)
		}
		canon := make(map[string]bool, len(ax.Values))
		var vals []string
		for _, raw := range ax.Values {
			var probe core.Options
			if err := probe.SetAxis(ax.Field, raw); err != nil {
				return Spec{}, fmt.Errorf("sweep: %w", err)
			}
			v := probe.AxisValue(ax.Field)
			if !canon[v] {
				canon[v] = true
				vals = append(vals, v)
			}
		}
		sortAxisValues(vals)
		out.Axes = append(out.Axes, Axis{Field: ax.Field, Values: vals})
		cells *= len(vals)
		if cells > MaxCells {
			return Spec{}, fmt.Errorf("sweep: lattice exceeds %d cells", MaxCells)
		}
	}
	sort.Slice(out.Axes, func(i, j int) bool { return out.Axes[i].Field < out.Axes[j].Field })
	return out, nil
}

// sortAxisValues orders values numerically when every value parses as
// an unsigned integer (so cache sizes read 64, 128, 1024 rather than
// lexically) and lexically otherwise (scale names).
func sortAxisValues(vals []string) {
	nums := make(map[string]uint64, len(vals))
	numeric := true
	for _, v := range vals {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			numeric = false
			break
		}
		nums[v] = n
	}
	sort.Slice(vals, func(i, j int) bool {
		if numeric {
			return nums[vals[i]] < nums[vals[j]]
		}
		return vals[i] < vals[j]
	})
}

// Canonical renders the canonical spec string the sweep id is derived
// from: "sweepv1;experiment=<id>;scale=<scale>;axis=<field>:v,v;...".
// Call it on a Canonicalize result; an un-normalized spec's string is
// not stable.
func (s Spec) Canonical() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweepv1;experiment=%s;scale=%s", s.Experiment, s.Scale)
	for _, ax := range s.Axes {
		sb.WriteString(";axis=")
		sb.WriteString(ax.Field)
		sb.WriteByte(':')
		sb.WriteString(strings.Join(ax.Values, ","))
	}
	return sb.String()
}

// ID derives the sweep id: the hex SHA-256 of the canonical spec
// string. Equivalent lattices — same experiment, scale, axes and
// values in any submission order — share an id, which is what makes
// POST idempotent and resume automatic.
func (s Spec) ID() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Cell is one lattice point: the fully-assembled Options and its
// content address — the same core.ResultKey the result store and the
// checkpoint journal use, so a cell landed by any path is a cell this
// sweep never recomputes.
type Cell struct {
	Options core.Options
	Key     store.Key
}

// Cells enumerates the lattice in canonical row-major order (axes
// sorted by field, values in sorted order), so cell indexes are stable
// across submissions of equivalent specs. Call on a Canonicalize
// result.
func (s Spec) Cells() []Cell {
	scale, _ := core.ParseScale(s.Scale)
	base := core.Options{Scale: scale}
	cells := []core.Options{base}
	for _, ax := range s.Axes {
		next := make([]core.Options, 0, len(cells)*len(ax.Values))
		for _, o := range cells {
			for _, v := range ax.Values {
				c := o
				if err := c.SetAxis(ax.Field, v); err != nil {
					// Canonicalize already vetted every value.
					panic(fmt.Sprintf("sweep: canonical value %q rejected: %v", v, err))
				}
				next = append(next, c)
			}
		}
		cells = next
	}
	out := make([]Cell, len(cells))
	for i, o := range cells {
		out[i] = Cell{Options: o, Key: store.KeyFor(s.Experiment, o)}
	}
	return out
}
