package sweep

import (
	"context"
	"testing"
	"time"

	"wsstudy/internal/store"
)

// testSleep is the poll interval for waitDone.
func testSleep() { time.Sleep(2 * time.Millisecond) }

// closeStore drains and closes a test store, failing the test on error.
func closeStore(t *testing.T, s *store.Store) {
	t.Helper()
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("closing store: %v", err)
	}
}
