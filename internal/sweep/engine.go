package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/cost"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/workingset"
)

// fpCellCompute sits in front of every cell computation (never in
// front of a revival), so chaos runs can fail, delay, or stall exactly
// the compute path resume is supposed to make redundant.
var fpCellCompute = fault.New("sweep.cell.compute")

// Config assembles an Engine.
type Config struct {
	// Store executes cells: singleflight, compute slots, capture
	// sharing and persisted renderings all apply per cell. Required.
	Store *store.Store
	// Dir holds one checkpoint journal per sweep id. "" disables
	// journaling; resume then relies on the store's persistence alone.
	Dir string
	// Recorder receives the sweep.* metrics (nil uses the process
	// recorder).
	Recorder *obs.Recorder
	// Workers bounds concurrent cells per sweep (0 = the store's
	// compute-slot count — fanning out wider would only queue).
	Workers int
	// CellTimeout bounds each cell's computation (0 = no bound).
	CellTimeout time.Duration
}

// Engine runs sweeps. Safe for concurrent use.
type Engine struct {
	cfg    Config
	base   context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	sweeps map[string]*sweepRun
	wg     sync.WaitGroup

	submitted, total, revived, computed, failed *obs.Counter
}

// sweepRun is one sweep's live state.
type sweepRun struct {
	id      string
	spec    Spec // canonical
	exp     core.Experiment
	cells   []Cell
	journal *core.Journal

	mu      sync.Mutex
	status  []CellStatus // parallel to cells
	passing bool         // a pass goroutine is running
}

// NewEngine builds a sweep engine over an existing result store.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("sweep: Config.Store is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Store.Slots()
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: creating journal dir: %w", err)
		}
	}
	rec := cfg.Recorder
	base, cancel := context.WithCancel(obs.With(context.Background(), rec))
	return &Engine{
		cfg: cfg, base: base, cancel: cancel,
		sweeps:    make(map[string]*sweepRun),
		submitted: rec.Counter(obs.SweepSubmitted),
		total:     rec.Counter(obs.SweepCellsTotal),
		revived:   rec.Counter(obs.SweepCellsRevived),
		computed:  rec.Counter(obs.SweepCellsComputed),
		failed:    rec.Counter(obs.SweepCellsFailed),
	}, nil
}

// CellState is a cell's lifecycle position.
type CellState string

const (
	CellPending CellState = "pending"
	CellRunning CellState = "running"
	CellDone    CellState = "done"
	CellFailed  CellState = "failed"
)

// CellSummary condenses a landed cell's report for the incremental
// aggregate: single-point cells carry the measured rate, curve cells
// carry their knees.
type CellSummary struct {
	Points   int               `json:"points"`
	MissRate float64           `json:"miss_rate,omitempty"`
	Knees    []workingset.Knee `json:"knees,omitempty"`
}

// CellStatus is one cell of a sweep's status aggregate.
type CellStatus struct {
	Key       string       `json:"key"`
	Canonical string       `json:"canonical"`
	State     CellState    `json:"state"`
	Revived   bool         `json:"revived,omitempty"`
	Error     string       `json:"error,omitempty"`
	Summary   *CellSummary `json:"summary,omitempty"`
}

// Status is a sweep's incremental aggregate, safe to serve while cells
// are still landing.
type Status struct {
	ID         string       `json:"id"`
	Experiment string       `json:"experiment"`
	Scale      string       `json:"scale"`
	Axes       []Axis       `json:"axes"`
	Total      int          `json:"total"`
	Completed  int          `json:"completed"`
	Failed     int          `json:"failed"`
	Revived    int          `json:"revived"`
	Done       bool         `json:"done"`
	Cells      []CellStatus `json:"cells"`
}

// Submit accepts a spec, returning the sweep's id and current status.
// Submission is idempotent by content: an equivalent spec maps to the
// same id, and re-submitting while the sweep runs — or after it
// finished cleanly — just returns its status. Re-submitting a sweep
// that finished with failures starts a new pass over the failed cells
// only; completed cells are never recomputed (that is the journal /
// content-address contract).
func (e *Engine) Submit(spec Spec) (Status, error) {
	cspec, err := spec.Canonicalize()
	if err != nil {
		return Status{}, err
	}
	id := cspec.ID()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Status{}, fmt.Errorf("sweep: engine closed")
	}
	run, ok := e.sweeps[id]
	if !ok {
		exp, _ := core.Find(cspec.Experiment)
		run = &sweepRun{id: id, spec: cspec, exp: exp, cells: cspec.Cells()}
		run.status = make([]CellStatus, len(run.cells))
		for i, c := range run.cells {
			run.status[i] = CellStatus{
				Key:       c.Key.String(),
				Canonical: c.Options.Canonical(),
				State:     CellPending,
			}
		}
		if e.cfg.Dir != "" {
			j, jerr := core.OpenJournal(filepath.Join(e.cfg.Dir, id+".journal"))
			if jerr != nil {
				e.mu.Unlock()
				return Status{}, fmt.Errorf("sweep: opening journal: %w", jerr)
			}
			run.journal = j
		}
		e.sweeps[id] = run
	}
	e.mu.Unlock()

	if e.startPass(run) {
		e.submitted.Inc()
	}
	return run.snapshot(), nil
}

// startPass launches a pass goroutine if one is needed: the sweep has
// pending or failed cells and no pass is currently running. Failed
// cells are reset to pending so the new pass retries them.
func (e *Engine) startPass(run *sweepRun) bool {
	run.mu.Lock()
	if run.passing {
		run.mu.Unlock()
		return false
	}
	var todo []int
	for i := range run.status {
		if run.status[i].State == CellFailed {
			run.status[i] = CellStatus{
				Key: run.status[i].Key, Canonical: run.status[i].Canonical,
				State: CellPending,
			}
		}
		if run.status[i].State == CellPending {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		run.mu.Unlock()
		return false
	}
	run.passing = true
	run.mu.Unlock()

	e.total.Add(uint64(len(todo)))
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.runPass(run, todo)
		run.mu.Lock()
		run.passing = false
		run.mu.Unlock()
	}()
	return true
}

// runPass drives todo's cells through revive-or-compute with bounded
// workers. Cells are claimed in canonical order, so interrupt points
// are deterministic under fault injection.
func (e *Engine) runPass(run *sweepRun, todo []int) {
	workers := e.cfg.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				e.runCell(run, i)
			}
		}()
	}
	for _, i := range todo {
		select {
		case idx <- i:
		case <-e.base.Done():
			close(idx)
			wg.Wait()
			return
		}
	}
	close(idx)
	wg.Wait()
}

// runCell lands one cell: journal revival first, then the store's
// memory/disk revival, then — only if neither holds the key — a real
// computation through the store (singleflight, capture sharing and
// persistence included). Every landed cell is checkpointed, so the
// journal converges to the full lattice regardless of which path
// landed each cell.
func (e *Engine) runCell(run *sweepRun, i int) {
	cell := run.cells[i]
	run.setState(i, CellRunning)

	if rep, ok := run.journal.Lookup(run.exp.ID, cell.Options); ok {
		e.revived.Inc()
		run.finishCell(i, rep, true, nil)
		return
	}
	if res, ok := e.cfg.Store.Peek(cell.Key, run.exp.ID); ok {
		e.revived.Inc()
		e.journalCell(run, cell, res.Report)
		run.finishCell(i, res.Report, true, nil)
		return
	}

	opt := cell.Options
	opt.Timeout = e.cfg.CellTimeout
	if err := fpCellCompute.Inject(e.base); err != nil {
		e.failed.Inc()
		run.finishCell(i, nil, false, err)
		return
	}
	res, err := e.cfg.Store.Get(e.base, run.exp, opt)
	if err != nil {
		e.failed.Inc()
		run.finishCell(i, nil, false, err)
		return
	}
	e.computed.Inc()
	e.journalCell(run, cell, res.Report)
	run.finishCell(i, res.Report, false, nil)
}

// journalCell checkpoints a landed cell; a checkpoint failure never
// fails the cell, it only means a future resume re-revives it from the
// store instead.
func (e *Engine) journalCell(run *sweepRun, cell Cell, rep *core.Report) {
	if err := run.journal.Record(run.exp.ID, cell.Options, rep); err != nil {
		e.cfg.Recorder.Counter(obs.SweepJournalErrors).Inc()
	}
}

func (r *sweepRun) setState(i int, s CellState) {
	r.mu.Lock()
	r.status[i].State = s
	r.mu.Unlock()
}

func (r *sweepRun) finishCell(i int, rep *core.Report, revived bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.status[i].State = CellFailed
		r.status[i].Error = err.Error()
		return
	}
	r.status[i].State = CellDone
	r.status[i].Revived = revived
	r.status[i].Summary = summarize(rep)
}

// summarize condenses a cell report: the first figure's first series
// is the cell's measurement by the grid-experiment convention.
func summarize(rep *core.Report) *CellSummary {
	if rep == nil || len(rep.Figures) == 0 || len(rep.Figures[0].Series) == 0 {
		return nil
	}
	pts := rep.Figures[0].Series[0].Points
	s := &CellSummary{Points: len(pts)}
	if len(pts) == 1 {
		s.MissRate = pts[0].MissRate
	} else if len(pts) > 1 {
		curve := workingset.Curve{Label: "cell", Points: pts}
		s.Knees = workingset.FindKnees(&curve, 2, 1e-6)
	}
	return s
}

// snapshot builds an immutable status copy.
func (r *sweepRun) snapshot() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:         r.id,
		Experiment: r.spec.Experiment,
		Scale:      r.spec.Scale,
		Axes:       r.spec.Axes,
		Total:      len(r.cells),
		Cells:      make([]CellStatus, len(r.status)),
	}
	copy(st.Cells, r.status)
	for _, c := range r.status {
		switch c.State {
		case CellDone:
			st.Completed++
			if c.Revived {
				st.Revived++
			}
		case CellFailed:
			st.Failed++
		}
	}
	st.Done = !r.passing && st.Completed+st.Failed == st.Total
	return st
}

// Get returns a sweep's current status by id.
func (e *Engine) Get(id string) (Status, bool) {
	e.mu.Lock()
	run, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return run.snapshot(), true
}

// List returns the ids of every sweep this engine knows, sorted.
func (e *Engine) List() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.sweeps))
	for id := range e.sweeps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Grain answers §8 for a finished sweep: every completed single-point
// cell with explicit processor-count and cache axes becomes a measured
// (P, cache, miss rate) candidate design, scored by the cost model at
// the given total problem size. The sweep must be fully done — grain
// advice from a partial lattice would silently prefer whatever landed
// first.
func (e *Engine) Grain(id string, dataBytes uint64) (cost.GrainAdvice, error) {
	e.mu.Lock()
	run, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return cost.GrainAdvice{}, fmt.Errorf("sweep: unknown sweep %q", id)
	}
	st := run.snapshot()
	if !st.Done {
		return cost.GrainAdvice{}, ErrUnfinished
	}
	if st.Failed > 0 {
		return cost.GrainAdvice{}, fmt.Errorf("sweep: %d cells failed; re-submit to retry them", st.Failed)
	}
	// Cells that differ only in non-grain axes (problem size, line
	// size) collapse onto one (P, cache) design; their rates are
	// averaged, i.e. the measured curve is marginalized over the axes
	// the cost model doesn't see.
	type pc struct {
		p int
		c uint64
	}
	sum := make(map[pc]float64)
	n := make(map[pc]int)
	for i, c := range st.Cells {
		o := run.cells[i].Options
		if c.State != CellDone || c.Summary == nil || c.Summary.Points != 1 {
			continue
		}
		if o.PEs <= 0 || o.CacheBytes == 0 {
			continue
		}
		k := pc{o.PEs, o.CacheBytes}
		sum[k] += c.Summary.MissRate
		n[k]++
	}
	var pts []cost.CellPoint
	for k, s := range sum {
		pts = append(pts, cost.CellPoint{
			P: k.p, CacheBytes: k.c, MissRate: s / float64(n[k]),
		})
	}
	if len(pts) == 0 {
		return cost.GrainAdvice{}, fmt.Errorf(
			"sweep: no single-point cells with pes and cache axes; sweep pes × cache to use grain")
	}
	return cost.GrainFromCells(run.exp.ID, dataBytes, pts, cost.Defaults(), cost.DefaultParams())
}

// ErrUnfinished reports a grain query against a sweep that is still
// landing cells; the HTTP layer maps it to 409.
var ErrUnfinished = fmt.Errorf("sweep: not finished")

// Close stops the engine: in-flight passes are cancelled (their cells
// remain checkpointed) and journals are released.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
	var first error
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, run := range e.sweeps {
		if err := run.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
