package sweep

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// crashSpec is the lattice the SIGKILL child and the resuming parent
// share: a 3-axis, eight-cell gridlu lattice (the acceptance shape).
// With Workers=1 cells land in canonical order, so the delay
// failpoint's After count pins exactly where the child stalls.
func crashSpec() Spec {
	return Spec{Experiment: "gridlu", Scale: "quick", Axes: []Axis{
		{Field: "cache", Values: []string{"4096", "16384"}},
		{Field: "line", Values: []string{"64", "128"}},
		{Field: "pes", Values: []string{"16", "64"}},
	}}
}

// TestSweepCrashResumeSIGKILL is the sweep half of the crash-resume
// proof (the suite half lives in core): a child process runs a sweep
// with a checkpoint journal and a delay failpoint stalling the third
// cell's computation; the parent SIGKILLs it mid-stall — no deferred
// cleanup, no flushing — then re-submits the identical spec in-process
// over a fresh engine and a cold, memory-only store. Every journaled
// cell must revive (sweep.cells.revived), only the missing ones may
// compute, and the finished lattice must match a fault-free baseline.
func TestSweepCrashResumeSIGKILL(t *testing.T) {
	dir := os.Getenv("WSS_SWEEP_CRASH_DIR")
	if os.Getenv("WSS_SWEEP_CRASH_CHILD") == "1" {
		if err := fault.ArmFromEnv(os.Getenv); err != nil {
			fmt.Fprintln(os.Stderr, "child: arming failpoints:", err)
			os.Exit(2)
		}
		st, err := store.New(store.Config{Slots: 1, CaptureBytes: -1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child: store:", err)
			os.Exit(2)
		}
		eng, err := NewEngine(Config{Store: st, Dir: dir, Workers: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child: engine:", err)
			os.Exit(2)
		}
		// Stalls inside cell three's compute until the parent kills us.
		if _, err := eng.Submit(crashSpec()); err != nil {
			fmt.Fprintln(os.Stderr, "child: submit:", err)
			os.Exit(2)
		}
		time.Sleep(5 * time.Minute)
		os.Exit(0) // only reached if the parent never kills us
	}

	cspec, err := crashSpec().Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	id := cspec.ID()
	total := len(cspec.Cells())

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestSweepCrashResumeSIGKILL$", "-test.v")
	cmd.Env = append(os.Environ(),
		"WSS_SWEEP_CRASH_CHILD=1",
		"WSS_SWEEP_CRASH_DIR="+dir,
		fault.EnvVar+"=sweep.cell.compute=delay(120s)@2",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the sweep's journal holds two landed cells (the child
	// is then stalled inside cell three), then SIGKILL: no cleanup runs.
	path := filepath.Join(dir, id+".journal")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never journaled the first two cells")
		}
		probe, err := core.OpenJournal(copyJournal(t, path))
		if err == nil {
			n := probe.Len()
			probe.Close()
			if n >= 2 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	probe, err := core.OpenJournal(copyJournal(t, path))
	if err != nil {
		t.Fatalf("opening journal after SIGKILL: %v", err)
	}
	revivable := probe.Len()
	probe.Close()
	if revivable < 2 || revivable >= total {
		t.Fatalf("journal holds %d cells after SIGKILL, want in [2, %d)", revivable, total)
	}

	// Resume in-process: fresh engine, cold memory-only store, the
	// identical spec. Revival can only come from the journal the kill
	// left behind.
	rec := obs.New()
	st := newTestStore(t, rec, "")
	defer closeStore(t, st)
	eng, err := NewEngine(Config{Store: st, Dir: dir, Recorder: rec, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := eng.Submit(crashSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != id {
		t.Fatalf("re-submitted spec mapped to %s, want %s", s.ID, id)
	}
	fin := waitDone(t, eng, id)
	if fin.Failed != 0 {
		t.Fatalf("resumed sweep failed %d cells: %+v", fin.Failed, fin.Cells)
	}
	if fin.Revived != revivable {
		t.Errorf("status revived = %d, want %d", fin.Revived, revivable)
	}
	m := rec.Snapshot()
	if got := m.Counter(obs.SweepCellsRevived); got != uint64(revivable) {
		t.Errorf("%s = %d, want %d", obs.SweepCellsRevived, got, revivable)
	}
	if got := m.Counter(obs.SweepCellsComputed); got != uint64(total-revivable) {
		t.Errorf("%s = %d, want %d", obs.SweepCellsComputed, got, total-revivable)
	}

	// The finished lattice must be indistinguishable from a sweep that
	// never crashed (modulo which cells say "revived").
	baseRec := obs.New()
	baseSt := newTestStore(t, baseRec, "")
	defer closeStore(t, baseSt)
	baseEng, err := NewEngine(Config{Store: baseSt, Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer baseEng.Close()
	bs, err := baseEng.Submit(crashSpec())
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitDone(t, baseEng, bs.ID)
	if !reflect.DeepEqual(stripRevived(fin.Cells), stripRevived(baseline.Cells)) {
		t.Errorf("resumed lattice differs from the fault-free baseline:\n%+v\n%+v",
			fin.Cells, baseline.Cells)
	}
}

// stripRevived clears the revival marker so resumed and fault-free
// lattices compare on content alone.
func stripRevived(cells []CellStatus) []CellStatus {
	out := make([]CellStatus, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].Revived = false
	}
	return out
}

// copyJournal snapshots src so the parent can probe the child's live
// journal without OpenJournal's tail-truncation racing the child's
// appends.
func copyJournal(t *testing.T, src string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		data = nil
	}
	dst := filepath.Join(t.TempDir(), "probe.journal")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}
