package sweep

import (
	"testing"

	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

func newTestStore(t *testing.T, rec *obs.Recorder, dir string) *store.Store {
	t.Helper()
	s, err := store.New(store.Config{
		MaxEntries: 256, Slots: 4, Dir: dir, Recorder: rec, CaptureBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSpecCanonicalization pins the lattice normal form: axis and
// value order don't matter, values are canonicalized and deduped, and
// equivalent specs share an id.
func TestSpecCanonicalization(t *testing.T) {
	a := Spec{Experiment: "gridlu", Scale: "quick", Axes: []Axis{
		{Field: "pes", Values: []string{"64", "16"}},
		{Field: "cache", Values: []string{"8192", "4096", "8192"}},
	}}
	b := Spec{Experiment: "gridlu", Scale: "quick", Axes: []Axis{
		{Field: "cache", Values: []string{"4096", "8192"}},
		{Field: "pes", Values: []string{"16", "64"}},
	}}
	ca, err := a.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if ca.Canonical() != cb.Canonical() || ca.ID() != cb.ID() {
		t.Errorf("equivalent specs diverge:\n%s\n%s", ca.Canonical(), cb.Canonical())
	}
	want := "sweepv1;experiment=gridlu;scale=quick;axis=cache:4096,8192;axis=pes:16,64"
	if ca.Canonical() != want {
		t.Errorf("canonical = %q, want %q", ca.Canonical(), want)
	}
	if cells := ca.Cells(); len(cells) != 4 {
		t.Errorf("4 cells expected, got %d", len(cells))
	}

	for _, bad := range []Spec{
		{Experiment: "nope", Axes: []Axis{{Field: "cache", Values: []string{"1"}}}},
		{Experiment: "gridlu"},
		{Experiment: "gridlu", Axes: []Axis{{Field: "cache", Values: nil}}},
		{Experiment: "gridlu", Axes: []Axis{{Field: "bogus", Values: []string{"1"}}}},
		{Experiment: "gridlu", Axes: []Axis{{Field: "cache", Values: []string{"x"}}}},
		{Experiment: "gridlu", Axes: []Axis{
			{Field: "cache", Values: []string{"1"}}, {Field: "cache", Values: []string{"2"}}}},
		{Experiment: "gridlu", Scale: "huge", Axes: []Axis{{Field: "cache", Values: []string{"1"}}}},
	} {
		if _, err := bad.Canonicalize(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

// waitDone polls a sweep until Done (the engine has no blocking wait —
// the HTTP surface is poll-based by design).
func waitDone(t *testing.T, e *Engine, id string) Status {
	t.Helper()
	for i := 0; i < 2000; i++ {
		st, ok := e.Get(id)
		if !ok {
			t.Fatalf("sweep %s unknown", id)
		}
		if st.Done {
			return st
		}
		testSleep()
	}
	t.Fatalf("sweep %s never finished", id)
	return Status{}
}

// TestSweepRunsAndResumes is the engine's core contract: a sweep
// lands every cell; a second engine over the same journal dir and a
// re-submitted equivalent spec revives every cell without recompute.
func TestSweepRunsAndResumes(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Experiment: "gridlu", Scale: "quick", Axes: []Axis{
		{Field: "cache", Values: []string{"4096", "16384"}},
		{Field: "pes", Values: []string{"16", "64"}},
		{Field: "problem", Values: []string{"500", "1000"}},
	}}

	rec1 := obs.New()
	st1 := newTestStore(t, rec1, "")
	e1, err := NewEngine(Config{Store: st1, Dir: dir, Recorder: rec1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 8 {
		t.Fatalf("total = %d, want 8", s.Total)
	}
	fin := waitDone(t, e1, s.ID)
	if fin.Completed != 8 || fin.Failed != 0 {
		t.Fatalf("first pass: %+v", fin)
	}
	m1 := rec1.Snapshot()
	if got := m1.Counter(obs.SweepCellsComputed); got != 8 {
		t.Errorf("computed = %d, want 8", got)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new engine (fresh process, fresh store) resumes from the journal.
	rec2 := obs.New()
	st2 := newTestStore(t, rec2, "")
	e2, err := NewEngine(Config{Store: st2, Dir: dir, Recorder: rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Same lattice, different submission order: same id.
	spec.Axes[0], spec.Axes[2] = spec.Axes[2], spec.Axes[0]
	s2, err := e2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID != s.ID {
		t.Fatalf("resubmission changed id: %s vs %s", s2.ID, s.ID)
	}
	fin2 := waitDone(t, e2, s2.ID)
	if fin2.Completed != 8 || fin2.Revived != 8 {
		t.Fatalf("resume pass: %+v", fin2)
	}
	m2 := rec2.Snapshot()
	if got := m2.Counter(obs.SweepCellsRevived); got != 8 {
		t.Errorf("revived = %d, want 8", got)
	}
	if got := m2.Counter(obs.SweepCellsComputed); got != 0 {
		t.Errorf("resume computed %d cells", got)
	}
	for i, c := range fin2.Cells {
		if c.Key != fin.Cells[i].Key || c.Summary == nil || c.Summary.MissRate <= 0 {
			t.Errorf("cell %d mismatch: %+v vs %+v", i, c, fin.Cells[i])
		}
	}
}

// TestSweepGrain checks the §8 hand-off: a finished pes × cache sweep
// yields cost advice with a best design drawn from the lattice.
func TestSweepGrain(t *testing.T) {
	rec := obs.New()
	st := newTestStore(t, rec, "")
	e, err := NewEngine(Config{Store: st, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := Spec{Experiment: "gridlu", Scale: "quick", Axes: []Axis{
		{Field: "cache", Values: []string{"16384", "262144"}},
		{Field: "pes", Values: []string{"64", "256", "1024"}},
	}}
	s, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, e, s.ID)
	if fin.Failed != 0 {
		t.Fatalf("sweep failed cells: %+v", fin)
	}
	adv, err := e.Grain(s.ID, 800<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Evals) != 6 {
		t.Errorf("evals = %d, want 6", len(adv.Evals))
	}
	if adv.Best.Design.P == 0 || adv.Best.PerfPerKiloUSD <= 0 {
		t.Errorf("best = %+v", adv.Best)
	}
	if adv.WithinFactor < 1 {
		t.Errorf("within factor %v < 1", adv.WithinFactor)
	}

	if _, err := e.Grain("deadbeef", 1<<30); err == nil {
		t.Error("unknown sweep id accepted")
	}
}
