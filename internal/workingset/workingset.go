// Package workingset turns miss-rate-versus-cache-size data into the
// paper's working-set hierarchies: it represents the curves, finds their
// knees, and labels the levels (lev1WS, lev2WS, ...).
package workingset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a working-set curve.
type Point struct {
	CacheBytes uint64  // cache capacity in bytes
	MissRate   float64 // misses per reference, or misses per FLOP
}

// Curve is a miss-rate curve sampled at increasing cache sizes.
type Curve struct {
	Label  string
	Metric string // e.g. "read miss rate", "misses/FLOP"
	Points []Point
}

// Validate checks that the curve is well-formed: ascending sizes and
// non-negative rates.
func (c *Curve) Validate() error {
	var prev uint64
	for i, p := range c.Points {
		if i > 0 && p.CacheBytes <= prev {
			return fmt.Errorf("workingset: curve %q not ascending at index %d", c.Label, i)
		}
		prev = p.CacheBytes
		if p.MissRate < 0 || math.IsNaN(p.MissRate) {
			return fmt.Errorf("workingset: curve %q has invalid rate at index %d", c.Label, i)
		}
	}
	return nil
}

// RateAt interpolates the miss rate at an arbitrary cache size
// (step interpolation: the rate of the largest sampled size <= bytes; the
// first sample's rate below it). Returns NaN for an empty curve.
func (c *Curve) RateAt(bytes uint64) float64 {
	if len(c.Points) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(c.Points), func(i int) bool {
		return c.Points[i].CacheBytes > bytes
	})
	if i == 0 {
		return c.Points[0].MissRate
	}
	return c.Points[i-1].MissRate
}

// Knee is a sharp drop in a working-set curve: growing the cache past
// CacheBytes divides the miss rate by roughly Drop.
type Knee struct {
	CacheBytes uint64  // size at which the drop completes
	Before     float64 // rate just before the knee
	After      float64 // rate at the knee
	Drop       float64 // Before/After
}

// FindKnees locates knees: consecutive samples whose rate falls by at least
// minDrop (a ratio, e.g. 1.5) and by at least minAbs in absolute terms
// (suppressing "knees" in the noise floor). Adjacent qualifying samples are
// merged into a single knee spanning the whole drop.
func FindKnees(c *Curve, minDrop, minAbs float64) []Knee {
	if minDrop <= 1 {
		minDrop = 1.5
	}
	var knees []Knee
	lastDropIdx := -2 // sample index that completed the previous knee
	pts := c.Points
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		drops := false
		if b.MissRate <= 0 {
			drops = a.MissRate > minAbs
		} else {
			drops = a.MissRate/b.MissRate >= minDrop && a.MissRate-b.MissRate >= minAbs
		}
		if !drops {
			continue
		}
		if lastDropIdx == i-1 {
			// The drop continues the previous sample's drop: same knee.
			k := &knees[len(knees)-1]
			k.CacheBytes = b.CacheBytes
			k.After = b.MissRate
			k.Drop = ratio(k.Before, k.After)
		} else {
			knees = append(knees, Knee{
				CacheBytes: b.CacheBytes,
				Before:     a.MissRate,
				After:      b.MissRate,
				Drop:       ratio(a.MissRate, b.MissRate),
			})
		}
		lastDropIdx = i
	}
	return knees
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// Level is one level of a working-set hierarchy.
type Level struct {
	Name      string  // "lev1WS", "lev2WS", ...
	SizeBytes uint64  // cache size needed to hold it
	MissRate  float64 // rate once it fits
	Note      string  // what the level physically is
}

// Hierarchy is an ordered list of working-set levels, smallest first.
type Hierarchy struct {
	App    string
	Levels []Level
}

// FromKnees labels detected knees as hierarchy levels lev1WS, lev2WS, ...
func FromKnees(app string, knees []Knee) Hierarchy {
	h := Hierarchy{App: app}
	for i, k := range knees {
		h.Levels = append(h.Levels, Level{
			Name:      fmt.Sprintf("lev%dWS", i+1),
			SizeBytes: k.CacheBytes,
			MissRate:  k.After,
		})
	}
	return h
}

// Important returns the level the paper would call the important working
// set: the smallest level after which the miss rate is within factor (e.g.
// 4x) of the final level's rate. Returns the last level when none
// qualifies earlier, and false for an empty hierarchy.
func (h Hierarchy) Important(factor float64) (Level, bool) {
	if len(h.Levels) == 0 {
		return Level{}, false
	}
	final := h.Levels[len(h.Levels)-1].MissRate
	for _, l := range h.Levels {
		if final <= 0 {
			if l.MissRate == 0 {
				return l, true
			}
			continue
		}
		if l.MissRate <= final*factor {
			return l, true
		}
	}
	return h.Levels[len(h.Levels)-1], true
}

// String renders the hierarchy as a small table.
func (h Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s working sets:\n", h.App)
	for _, l := range h.Levels {
		fmt.Fprintf(&b, "  %-8s %10s  rate %.4g", l.Name, FormatBytes(l.SizeBytes), l.MissRate)
		if l.Note != "" {
			fmt.Fprintf(&b, "  (%s)", l.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LogSizes returns cache sizes in bytes from lo to hi (inclusive),
// pointsPerOctave samples per doubling, deduplicated and ascending. It is
// the sampling grid for every working-set sweep.
func LogSizes(lo, hi uint64, pointsPerOctave int) []uint64 {
	if lo == 0 {
		lo = 1
	}
	if pointsPerOctave <= 0 {
		pointsPerOctave = 1
	}
	var out []uint64
	step := math.Pow(2, 1/float64(pointsPerOctave))
	for x := float64(lo); ; x *= step {
		v := uint64(math.Round(x))
		if v > hi {
			break
		}
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	if len(out) == 0 || out[len(out)-1] < hi {
		out = append(out, hi)
	}
	return out
}

// BytesToLines converts byte sizes to line counts (rounding down, min 1).
func BytesToLines(sizes []uint64, lineSize uint32) []int {
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		l := int(s / uint64(lineSize))
		if l < 1 {
			l = 1
		}
		if len(out) == 0 || l > out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// FormatBytes renders a byte count with binary units (2.2 KB style, as the
// paper writes sizes).
func FormatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return trimZero(fmt.Sprintf("%.1f GB", float64(n)/(1<<30)))
	case n >= 1<<20:
		return trimZero(fmt.Sprintf("%.1f MB", float64(n)/(1<<20)))
	case n >= 1<<10:
		return trimZero(fmt.Sprintf("%.1f KB", float64(n)/(1<<10)))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func trimZero(s string) string {
	return strings.Replace(s, ".0 ", " ", 1)
}
