package workingset

import (
	"math"
	"testing"
)

func mkCurve(pts ...Point) *Curve {
	return &Curve{Label: "test", Metric: "miss rate", Points: pts}
}

func TestValidate(t *testing.T) {
	good := mkCurve(Point{8, 1.0}, Point{16, 0.5})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := mkCurve(Point{16, 1.0}, Point{8, 0.5})
	if err := bad.Validate(); err == nil {
		t.Fatal("descending sizes accepted")
	}
	nan := mkCurve(Point{8, math.NaN()})
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN rate accepted")
	}
}

func TestRateAt(t *testing.T) {
	c := mkCurve(Point{8, 1.0}, Point{64, 0.5}, Point{512, 0.1})
	cases := []struct {
		bytes uint64
		want  float64
	}{
		{4, 1.0},   // below first sample
		{8, 1.0},   // exact
		{63, 1.0},  // step interpolation
		{64, 0.5},  // exact
		{100, 0.5}, // between
		{1 << 20, 0.1},
	}
	for _, cse := range cases {
		if got := c.RateAt(cse.bytes); got != cse.want {
			t.Errorf("RateAt(%d) = %v, want %v", cse.bytes, got, cse.want)
		}
	}
	empty := mkCurve()
	if !math.IsNaN(empty.RateAt(8)) {
		t.Error("empty curve should yield NaN")
	}
}

func TestFindKneesSimple(t *testing.T) {
	// One clean knee at 256 bytes: 1.0 -> 0.1.
	c := mkCurve(Point{64, 1.0}, Point{128, 1.0}, Point{256, 0.1}, Point{512, 0.1})
	knees := FindKnees(c, 2, 0.01)
	if len(knees) != 1 {
		t.Fatalf("knees = %+v, want exactly 1", knees)
	}
	k := knees[0]
	if k.CacheBytes != 256 || k.Before != 1.0 || k.After != 0.1 {
		t.Fatalf("knee = %+v", k)
	}
	if math.Abs(k.Drop-10) > 1e-9 {
		t.Fatalf("drop = %v, want 10", k.Drop)
	}
}

func TestFindKneesMergesAdjacentDrops(t *testing.T) {
	// A drop spanning two consecutive samples is one knee, not two.
	c := mkCurve(Point{64, 1.0}, Point{128, 0.4}, Point{256, 0.1}, Point{512, 0.1})
	knees := FindKnees(c, 2, 0.01)
	if len(knees) != 1 {
		t.Fatalf("knees = %+v, want 1 merged knee", knees)
	}
	if knees[0].CacheBytes != 256 || knees[0].Before != 1.0 || knees[0].After != 0.1 {
		t.Fatalf("merged knee = %+v", knees[0])
	}
}

func TestFindKneesTwoLevels(t *testing.T) {
	c := mkCurve(
		Point{64, 1.0}, Point{128, 0.5}, Point{256, 0.5},
		Point{1024, 0.5}, Point{2048, 0.05}, Point{4096, 0.05},
	)
	knees := FindKnees(c, 1.8, 0.01)
	if len(knees) != 2 {
		t.Fatalf("knees = %+v, want 2", knees)
	}
	if knees[0].CacheBytes != 128 || knees[1].CacheBytes != 2048 {
		t.Fatalf("knee sizes = %d, %d", knees[0].CacheBytes, knees[1].CacheBytes)
	}
}

func TestFindKneesIgnoresNoiseFloor(t *testing.T) {
	// A 10x relative drop at a negligible absolute level is not a knee.
	c := mkCurve(Point{64, 0.001}, Point{128, 0.0001})
	if knees := FindKnees(c, 2, 0.01); len(knees) != 0 {
		t.Fatalf("noise-floor knee detected: %+v", knees)
	}
}

func TestFindKneesDropToZero(t *testing.T) {
	c := mkCurve(Point{64, 0.5}, Point{128, 0})
	knees := FindKnees(c, 2, 0.01)
	if len(knees) != 1 {
		t.Fatalf("knees = %+v, want 1", knees)
	}
	if !math.IsInf(knees[0].Drop, 1) {
		t.Fatalf("drop to zero should be +Inf, got %v", knees[0].Drop)
	}
}

func TestHierarchyFromKneesAndImportant(t *testing.T) {
	knees := []Knee{
		{CacheBytes: 256, Before: 1.0, After: 0.5, Drop: 2},
		{CacheBytes: 2048, Before: 0.5, After: 0.06, Drop: 8.3},
		{CacheBytes: 1 << 20, Before: 0.06, After: 0.03, Drop: 2},
	}
	h := FromKnees("LU", knees)
	if len(h.Levels) != 3 || h.Levels[0].Name != "lev1WS" || h.Levels[2].Name != "lev3WS" {
		t.Fatalf("hierarchy = %+v", h)
	}
	// Important: first level within 4x of the final 0.03 is lev2WS (0.06).
	imp, ok := h.Important(4)
	if !ok || imp.Name != "lev2WS" {
		t.Fatalf("important = %+v, ok=%v; want lev2WS", imp, ok)
	}
	if s := h.String(); s == "" {
		t.Fatal("String should render something")
	}
}

func TestImportantEdgeCases(t *testing.T) {
	empty := Hierarchy{App: "x"}
	if _, ok := empty.Important(4); ok {
		t.Fatal("empty hierarchy should report no important level")
	}
	// Final rate zero: first zero-rate level qualifies.
	h := FromKnees("x", []Knee{
		{CacheBytes: 64, Before: 1, After: 0.5},
		{CacheBytes: 128, Before: 0.5, After: 0},
	})
	imp, ok := h.Important(4)
	if !ok || imp.SizeBytes != 128 {
		t.Fatalf("important = %+v", imp)
	}
	// No level within factor: fall back to the last.
	h2 := FromKnees("y", []Knee{{CacheBytes: 64, Before: 1, After: 0.5}})
	h2.Levels[0].MissRate = 0.5
	h2.Levels = append(h2.Levels, Level{Name: "lev2WS", SizeBytes: 128, MissRate: 0.1})
	h2.Levels[1].MissRate = 0.0001
	imp2, _ := h2.Important(1.0001)
	if imp2.Name != "lev2WS" {
		t.Fatalf("fallback important = %+v", imp2)
	}
}

func TestLogSizes(t *testing.T) {
	sizes := LogSizes(64, 1024, 1)
	want := []uint64{64, 128, 256, 512, 1024}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	// Finer grid includes intermediate points and stays ascending.
	fine := LogSizes(64, 1024, 4)
	if len(fine) <= len(sizes) {
		t.Fatal("4 points/octave should produce more samples")
	}
	for i := 1; i < len(fine); i++ {
		if fine[i] <= fine[i-1] {
			t.Fatalf("not strictly ascending: %v", fine)
		}
	}
	if fine[len(fine)-1] != 1024 {
		t.Fatalf("must end at hi: %v", fine)
	}
	// Degenerate input.
	z := LogSizes(0, 4, 0)
	if z[0] != 1 || z[len(z)-1] != 4 {
		t.Fatalf("degenerate = %v", z)
	}
}

func TestBytesToLines(t *testing.T) {
	lines := BytesToLines([]uint64{4, 8, 16, 20, 24}, 8)
	want := []int{1, 2, 3}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %v, want %v", lines, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		100:       "100 B",
		1024:      "1 KB",
		2253:      "2.2 KB",
		1 << 20:   "1 MB",
		3 << 30:   "3 GB",
		80 * 1024: "80 KB",
		1536:      "1.5 KB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
