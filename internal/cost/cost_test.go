package cost

import (
	"math"
	"strings"
	"testing"

	"wsstudy/internal/apps/lu"
)

// luApp builds the AppModel for the prototypical 1 GB LU problem.
func luApp() AppModel {
	const n, b = 10000, 16
	return AppModel{
		Name: "LU",
		MissRate: func(p int, cacheBytes uint64) float64 {
			return lu.Model{N: n, B: b, P: p}.MissRatePerFLOP(cacheBytes)
		},
		CommRatio: func(p int) float64 {
			return lu.Model{N: n, B: b, P: p}.CommToCompRatio()
		},
		LoadProxy: func(p int) float64 {
			return lu.Model{N: n, B: b, P: p}.BlocksPerPE()
		},
		DataBytes: lu.Model{N: n, B: b, P: 1}.DataSetBytes(),
	}
}

func TestDesignCosts(t *testing.T) {
	pr := Defaults()
	d := Design{P: 1024, MemPerPE: 1 << 20, CachePerPE: 64 << 10}
	// Node: $1000 + $40 + $64 = $1104.
	if got := d.NodeCost(pr); math.Abs(got-1104) > 1e-9 {
		t.Fatalf("node cost = %v, want 1104", got)
	}
	if got := d.TotalCost(pr); math.Abs(got-1104*1024) > 1e-6 {
		t.Fatalf("total cost = %v", got)
	}
	if got := d.ProcessorCostShare(pr); math.Abs(got-1000.0/1104) > 1e-9 {
		t.Fatalf("share = %v", got)
	}
}

func TestUtilizationFactors(t *testing.T) {
	app := luApp()
	par := DefaultParams()
	big := Design{P: 1024, MemPerPE: 1 << 20, CachePerPE: 64 << 10}
	small := Design{P: 1024, MemPerPE: 1 << 20, CachePerPE: 64}
	uBig := Utilization(app, big, par)
	uSmall := Utilization(app, small, par)
	if uBig <= uSmall {
		t.Fatalf("larger cache should raise utilization: %v vs %v", uBig, uSmall)
	}
	if uBig <= 0 || uBig > 1 {
		t.Fatalf("utilization out of range: %v", uBig)
	}
	// At extreme P, LU's load proxy collapses and utilization with it.
	fine := Design{P: 1 << 20, MemPerPE: 1024, CachePerPE: 1024}
	if u := Utilization(app, fine, par); u >= uBig {
		t.Fatalf("million-PE LU should lose utilization: %v", u)
	}
}

func TestSweepFindsInteriorOptimum(t *testing.T) {
	app := luApp()
	pr := Defaults()
	par := DefaultParams()
	cacheFor := func(p int) uint64 { return lu.Model{N: 10000, B: 16, P: p}.Lev2WS() * 4 }
	evals := SweepGranularity(app, 64, 65536, cacheFor, pr, par)
	if len(evals) < 8 {
		t.Fatalf("sweep too short: %d", len(evals))
	}
	best, err := Best(evals)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum is neither the coarsest nor the finest grain: few fat
	// nodes waste money on DRAM, too many starved nodes lose utilization.
	if best.Design.P == evals[0].Design.P {
		t.Errorf("optimum at the coarsest grain: %s", best.Describe())
	}
	if best.Design.P == evals[len(evals)-1].Design.P {
		t.Errorf("optimum at the finest grain: %s", best.Describe())
	}
	// Section 8's conjecture: the ~equal-split design is within a small
	// constant factor of optimal.
	eq, err := EqualSplit(evals)
	if err != nil {
		t.Fatal(err)
	}
	if f := WithinFactor(eq, evals); f > 3 {
		t.Errorf("equal-split design %s is %vx off optimal", eq.Describe(), f)
	}
}

func TestBestAndEqualSplitErrors(t *testing.T) {
	if _, err := Best(nil); err == nil {
		t.Error("Best(nil) should error")
	}
	if _, err := EqualSplit(nil); err == nil {
		t.Error("EqualSplit(nil) should error")
	}
}

func TestDescribe(t *testing.T) {
	e := Evaluate(luApp(), Design{P: 1024, MemPerPE: 1 << 20, CachePerPE: 8192},
		Defaults(), DefaultParams())
	d := e.Describe()
	for _, frag := range []string{"P=1024", "util", "procShare"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe %q missing %q", d, frag)
		}
	}
}

func TestCacheClampedToMemory(t *testing.T) {
	app := luApp()
	evals := SweepGranularity(app, 1<<16, 1<<18,
		func(int) uint64 { return 1 << 30 }, Defaults(), DefaultParams())
	for _, e := range evals {
		if e.Design.CachePerPE > e.Design.MemPerPE {
			t.Fatalf("cache exceeds memory: %+v", e.Design)
		}
	}
}
