package cost

import "testing"

// TestGrainFromCells scores a small measured lattice: lower miss rate
// at equal price must win, determinism must hold across cell order,
// and degenerate inputs must be rejected.
func TestGrainFromCells(t *testing.T) {
	cells := []CellPoint{
		{P: 64, CacheBytes: 1 << 18, MissRate: 0.02},
		{P: 256, CacheBytes: 1 << 18, MissRate: 0.02},
		{P: 256, CacheBytes: 1 << 14, MissRate: 0.30},
		{P: 64, CacheBytes: 1 << 14, MissRate: 0.30},
	}
	adv, err := GrainFromCells("demo", 1<<30, cells, Defaults(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Evals) != 4 {
		t.Fatalf("evals = %d", len(adv.Evals))
	}
	if adv.Best.Design.CachePerPE != 1<<18 {
		t.Errorf("best design picked the high-miss cache: %+v", adv.Best.Design)
	}
	if adv.WithinFactor < 1 {
		t.Errorf("within factor %v < 1", adv.WithinFactor)
	}

	// Cell order must not matter.
	rev := []CellPoint{cells[3], cells[2], cells[1], cells[0]}
	adv2, err := GrainFromCells("demo", 1<<30, rev, Defaults(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if adv2.Best != adv.Best || adv2.EqualSplit != adv.EqualSplit {
		t.Errorf("cell order changed the advice")
	}

	if _, err := GrainFromCells("demo", 1<<30, nil, Defaults(), DefaultParams()); err == nil {
		t.Error("empty cells accepted")
	}
	if _, err := GrainFromCells("demo", 0, cells, Defaults(), DefaultParams()); err == nil {
		t.Error("zero problem size accepted")
	}
	only := []CellPoint{{P: 0, CacheBytes: 0, MissRate: 1}}
	if _, err := GrainFromCells("demo", 1<<30, only, Defaults(), DefaultParams()); err == nil {
		t.Error("axis-free cells accepted")
	}
}
