package cost

import (
	"fmt"
	"sort"
)

// CellPoint is one measured sweep cell: the miss rate observed (or
// modeled) at a (processor count, per-PE cache size) configuration.
// The sweep service extracts these from a finished lattice and feeds
// them here, replacing §8's analytic AppModel.MissRate with data.
type CellPoint struct {
	P          int     `json:"p"`
	CacheBytes uint64  `json:"cache_bytes"`
	MissRate   float64 `json:"miss_rate"`
}

// GrainAdvice is the §8 answer computed from measured cells: the
// best-perf-per-dollar design, the equal-cost-split design the paper
// conjectures is near-optimal, how far the conjecture falls short on
// this data, and the full scored sweep for inspection.
type GrainAdvice struct {
	App          string       `json:"app"`
	DataBytes    uint64       `json:"data_bytes"`
	Best         Evaluation   `json:"best"`
	EqualSplit   Evaluation   `json:"equal_split"`
	WithinFactor float64      `json:"within_factor"` // equal-split shortfall vs best (1 = it IS the best)
	Evals        []Evaluation `json:"evals"`
}

// GrainFromCells runs the §8 cost model over measured sweep cells
// instead of an analytic application model. Each cell becomes one
// candidate Design: P processors, the problem's per-PE memory share
// (never smaller than the cache), and the cell's cache. Communication
// and load-balance factors are neutral — the miss-rate curve is the
// measured quantity; the other two would need their own sweeps — so
// the scoring isolates the cache-size-versus-granularity trade the
// lattice actually explored. Cells are evaluated in (P, cache) order,
// making the advice deterministic for a given cell set.
func GrainFromCells(name string, dataBytes uint64, cells []CellPoint, pr Prices, par Params) (GrainAdvice, error) {
	if len(cells) == 0 {
		return GrainAdvice{}, fmt.Errorf("cost: no measured cells")
	}
	if dataBytes == 0 {
		return GrainAdvice{}, fmt.Errorf("cost: zero problem size")
	}
	sorted := make([]CellPoint, len(cells))
	copy(sorted, cells)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].P != sorted[j].P {
			return sorted[i].P < sorted[j].P
		}
		return sorted[i].CacheBytes < sorted[j].CacheBytes
	})

	type ck struct {
		p int
		c uint64
	}
	rates := make(map[ck]float64, len(sorted))
	for _, c := range sorted {
		rates[ck{c.P, c.CacheBytes}] = c.MissRate
	}
	app := AppModel{
		Name:      name,
		MissRate:  func(p int, cacheBytes uint64) float64 { return rates[ck{p, cacheBytes}] },
		CommRatio: func(int) float64 { return par.Machine.RandomRatio() }, // neutral
		LoadProxy: func(int) float64 { return par.LoadKnee },              // neutral
		DataBytes: dataBytes,
	}

	var evals []Evaluation
	for _, c := range sorted {
		if c.P <= 0 || c.CacheBytes == 0 {
			continue
		}
		mem := dataBytes / uint64(c.P)
		if mem < c.CacheBytes {
			mem = c.CacheBytes // the cache is memory too; a node holds at least it
		}
		evals = append(evals, Evaluate(app, Design{
			P: c.P, MemPerPE: mem, CachePerPE: c.CacheBytes,
		}, pr, par))
	}
	if len(evals) == 0 {
		return GrainAdvice{}, fmt.Errorf("cost: no usable cells (need P > 0 and cache > 0)")
	}
	best, err := Best(evals)
	if err != nil {
		return GrainAdvice{}, err
	}
	eq, err := EqualSplit(evals)
	if err != nil {
		return GrainAdvice{}, err
	}
	return GrainAdvice{
		App: name, DataBytes: dataBytes,
		Best: best, EqualSplit: eq,
		WithinFactor: WithinFactor(eq, evals),
		Evals:        evals,
	}, nil
}
