// Package cost models the paper's Section 8 economics: given hardware
// prices for processors, cache and main memory, what node granularity
// maximizes performance per dollar for a fixed problem? The section
// conjectures that "designs that split the cost equally between processors
// and memory will be the most competitive, in that they will be within a
// small constant factor of the optimal design for any given application";
// this package lets that be computed instead of conjectured.
package cost

import (
	"fmt"
	"math"

	"wsstudy/internal/machine"
	"wsstudy/internal/workingset"
)

// Prices captures component economics. Defaults mirror the paper's
// anecdote of "$50 worth of memory on a $1000 node" (early-90s DRAM at
// roughly $40/MB, SRAM an order of magnitude dearer).
type Prices struct {
	ProcessorUSD   float64 // one processor + glue logic
	MemoryUSDPerMB float64 // DRAM
	CacheUSDPerKB  float64 // SRAM
}

// Defaults returns the 1993-flavored price point.
func Defaults() Prices {
	return Prices{ProcessorUSD: 1000, MemoryUSDPerMB: 40, CacheUSDPerKB: 1}
}

// Design is one machine configuration for a fixed total problem.
type Design struct {
	P          int    `json:"p"`
	MemPerPE   uint64 `json:"mem_per_pe"`   // bytes
	CachePerPE uint64 `json:"cache_per_pe"` // bytes
}

// NodeCost is the price of one node.
func (d Design) NodeCost(pr Prices) float64 {
	return pr.ProcessorUSD +
		pr.MemoryUSDPerMB*float64(d.MemPerPE)/(1<<20) +
		pr.CacheUSDPerKB*float64(d.CachePerPE)/1024
}

// TotalCost is the machine price.
func (d Design) TotalCost(pr Prices) float64 {
	return float64(d.P) * d.NodeCost(pr)
}

// ProcessorCostShare is the fraction of a node's cost spent on the
// processor (the §8 split).
func (d Design) ProcessorCostShare(pr Prices) float64 {
	return pr.ProcessorUSD / d.NodeCost(pr)
}

// AppModel is what the cost analysis needs from an application: the
// miss-rate curve (misses per operation at a cache size), the
// communication ratio and the load proxy at a processor count.
type AppModel struct {
	Name string
	// MissRate returns misses per operation for a per-PE cache size.
	MissRate func(p int, cacheBytes uint64) float64
	// CommRatio returns FLOPs per communicated word at p processors.
	CommRatio func(p int) float64
	// LoadProxy returns work units per processor at p processors.
	LoadProxy func(p int) float64
	// DataBytes is the fixed total problem size.
	DataBytes uint64
}

// Params tunes the utilization model.
type Params struct {
	MissPenaltyOps float64 // stall, in operation-times, per miss (memory latency)
	LoadKnee       float64 // work units per PE below which utilization decays
	Machine        machine.Machine
}

// DefaultParams uses a 50-operation miss penalty (DASH-era remote latency
// over a multi-cycle FLOP) and the paper's ~100-unit load knee on a
// 1024-node Paragon.
func DefaultParams() Params {
	return Params{MissPenaltyOps: 50, LoadKnee: 100, Machine: machine.Paragon(1024)}
}

// Utilization estimates per-processor efficiency in [0,1] as the product
// of three penalties: memory stalls (miss rate times penalty),
// communication (demanded ratio versus the machine's sustainable random
// ratio) and load balance.
func Utilization(app AppModel, d Design, par Params) float64 {
	miss := app.MissRate(d.P, d.CachePerPE)
	memFactor := 1 / (1 + miss*par.MissPenaltyOps)

	need := par.Machine.RandomRatio()
	have := app.CommRatio(d.P)
	commFactor := 1.0
	if have < need {
		commFactor = have / need
	}

	load := app.LoadProxy(d.P)
	loadFactor := 1.0
	if load < par.LoadKnee {
		loadFactor = load / par.LoadKnee
	}
	return memFactor * commFactor * loadFactor
}

// Evaluation scores one design.
type Evaluation struct {
	Design         Design  `json:"design"`
	Utilization    float64 `json:"utilization"`
	Performance    float64 `json:"performance"` // P * utilization, in processor-equivalents
	Cost           float64 `json:"cost_usd"`
	PerfPerKiloUSD float64 `json:"perf_per_kilo_usd"`
	ProcShare      float64 `json:"proc_share"` // processor fraction of node cost
}

// Evaluate scores a design for an application.
func Evaluate(app AppModel, d Design, pr Prices, par Params) Evaluation {
	u := Utilization(app, d, par)
	c := d.TotalCost(pr)
	return Evaluation{
		Design:         d,
		Utilization:    u,
		Performance:    float64(d.P) * u,
		Cost:           c,
		PerfPerKiloUSD: float64(d.P) * u / (c / 1000),
		ProcShare:      d.ProcessorCostShare(pr),
	}
}

// SweepGranularity evaluates the fixed problem across a range of
// processor counts (powers of two from pMin to pMax). The per-PE memory
// is the problem's share (grain), and the cache is sized to the
// application's important working set at that configuration via
// cacheFor (e.g. the model's lev2WS), clamped to [1KB, mem].
func SweepGranularity(app AppModel, pMin, pMax int, cacheFor func(p int) uint64, pr Prices, par Params) []Evaluation {
	var out []Evaluation
	for p := pMin; p <= pMax; p *= 2 {
		mem := app.DataBytes / uint64(p)
		if mem == 0 {
			break
		}
		cache := cacheFor(p)
		if cache < 1024 {
			cache = 1024
		}
		if cache > mem {
			cache = mem
		}
		out = append(out, Evaluate(app, Design{P: p, MemPerPE: mem, CachePerPE: cache}, pr, par))
	}
	return out
}

// Best returns the evaluation with the highest performance per dollar.
func Best(evals []Evaluation) (Evaluation, error) {
	if len(evals) == 0 {
		return Evaluation{}, fmt.Errorf("cost: empty sweep")
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if e.PerfPerKiloUSD > best.PerfPerKiloUSD {
			best = e
		}
	}
	return best, nil
}

// WithinFactor reports how far an evaluation's perf/$ falls below the
// sweep's best (1 = optimal; 2 = half the optimal efficiency).
func WithinFactor(e Evaluation, evals []Evaluation) float64 {
	best, err := Best(evals)
	if err != nil || e.PerfPerKiloUSD == 0 {
		return math.Inf(1)
	}
	return best.PerfPerKiloUSD / e.PerfPerKiloUSD
}

// EqualSplit finds the sweep point whose processor/memory cost split is
// closest to 50/50 — the §8 conjecture's design — so callers can check
// how close to optimal it lands.
func EqualSplit(evals []Evaluation) (Evaluation, error) {
	if len(evals) == 0 {
		return Evaluation{}, fmt.Errorf("cost: empty sweep")
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if math.Abs(e.ProcShare-0.5) < math.Abs(best.ProcShare-0.5) {
			best = e
		}
	}
	return best, nil
}

// Describe renders an evaluation row.
func (e Evaluation) Describe() string {
	return fmt.Sprintf("P=%-6d mem=%-8s cache=%-7s util=%.2f perf=%6.0f cost=$%-9.0f perf/k$=%.3f procShare=%.2f",
		e.Design.P, workingset.FormatBytes(e.Design.MemPerPE),
		workingset.FormatBytes(e.Design.CachePerPE),
		e.Utilization, e.Performance, e.Cost, e.PerfPerKiloUSD, e.ProcShare)
}
