package serve

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// NodeConfig assembles one serving node end to end: store → sweep
// engine → (optional) cluster → HTTP server → (optional) crawler. It
// is the one wiring `wsstudy serve` and the cluster tests share, so
// "what a node is" is defined exactly once.
type NodeConfig struct {
	// Addr is the listen address (host:port; port 0 picks a free one).
	// Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is served directly. Cluster tests
	// pre-bind every node's port so the full peer map is known before
	// any node boots.
	Listener net.Listener

	// NodeID and PeerAddrs turn the node into a cluster member:
	// PeerAddrs maps member id -> base URL for every ring member, this
	// node included, and NodeID names which entry is this process.
	// Empty NodeID means a standalone node (no ring, no peer-fill).
	NodeID    string
	PeerAddrs map[string]string
	// VNodes is the per-member virtual-node count (0 = cluster.DefaultVNodes).
	VNodes int
	// FetchBudget / WaitBudget / PeerProbe tune peer-fill; see
	// cluster.Config.
	FetchBudget, WaitBudget, PeerProbe time.Duration
	// Crawl, when non-nil on a cluster member, starts the background
	// precompute crawler over its lattice.
	Crawl *cluster.CrawlSpec

	// Store configures the local result store. Recorder is overridden
	// with NodeConfig.Recorder.
	Store store.Config
	// SweepDir is the sweep engine's checkpoint-journal directory
	// ("" = <Store.Dir>/sweeps when the store persists, else none).
	SweepDir string

	// Registry, DefaultScale, RequestTimeout, ComputeTimeout and
	// RetryAfter configure the HTTP layer; see Config.
	Registry       []core.Experiment
	DefaultScale   core.Scale
	RequestTimeout time.Duration
	ComputeTimeout time.Duration
	RetryAfter     time.Duration

	// Recorder receives every layer's metrics (store.*, serve.*,
	// cluster.*, sweep.*). Nil disables them.
	Recorder *obs.Recorder
}

// Node is one running serving node.
type Node struct {
	Store   *store.Store
	Sweeps  *sweep.Engine
	Cluster *cluster.Cluster // nil on standalone nodes
	Server  *Server

	addr string
}

// StartNode builds and boots a node. On success the node is accepting
// requests on Addr()/the provided listener; stop it with Shutdown.
func StartNode(cfg NodeConfig) (*Node, error) {
	cfg.Store.Recorder = cfg.Recorder
	st, err := store.New(cfg.Store)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Node, error) {
		_ = st.Close(context.Background())
		return nil, err
	}

	sweepDir := cfg.SweepDir
	if sweepDir == "" && cfg.Store.Dir != "" {
		sweepDir = filepath.Join(cfg.Store.Dir, "sweeps")
	}
	eng, err := sweep.NewEngine(sweep.Config{
		Store:       st,
		Dir:         sweepDir,
		Recorder:    cfg.Recorder,
		CellTimeout: cfg.ComputeTimeout,
	})
	if err != nil {
		return fail(err)
	}

	var cl *cluster.Cluster
	if cfg.NodeID != "" {
		cl, err = cluster.New(cluster.Config{
			Self:          cfg.NodeID,
			Peers:         cfg.PeerAddrs,
			VNodes:        cfg.VNodes,
			Store:         st,
			Registry:      cfg.Registry,
			Recorder:      cfg.Recorder,
			FetchBudget:   cfg.FetchBudget,
			WaitBudget:    cfg.WaitBudget,
			ProbeInterval: cfg.PeerProbe,
		})
		if err != nil {
			eng.Close()
			return fail(err)
		}
		st.SetPeerFill(cl.Fill)
	} else if cfg.Crawl != nil {
		eng.Close()
		return fail(fmt.Errorf("serve: Crawl requires a cluster NodeID"))
	}

	srv, err := New(Config{
		Store:          st,
		Sweeps:         eng,
		Cluster:        cl,
		Registry:       cfg.Registry,
		Recorder:       cfg.Recorder,
		DefaultScale:   cfg.DefaultScale,
		RequestTimeout: cfg.RequestTimeout,
		ComputeTimeout: cfg.ComputeTimeout,
		RetryAfter:     cfg.RetryAfter,
	})
	if err != nil {
		if cl != nil {
			cl.Close()
		}
		eng.Close()
		return fail(err)
	}

	n := &Node{Store: st, Sweeps: eng, Cluster: cl, Server: srv}
	if cfg.Listener != nil {
		n.addr = srv.StartListener(cfg.Listener)
	} else {
		addr, err := srv.Start(cfg.Addr)
		if err != nil {
			if cl != nil {
				cl.Close()
			}
			eng.Close()
			return fail(err)
		}
		n.addr = addr
	}
	if cl != nil && cfg.Crawl != nil {
		if _, err := cl.StartCrawler(*cfg.Crawl); err != nil {
			_ = n.Shutdown(context.Background())
			return nil, err
		}
	}
	return n, nil
}

// Addr is the node's bound listen address.
func (n *Node) Addr() string { return n.addr }

// URL is the node's base URL ("http://host:port").
func (n *Node) URL() string { return "http://" + n.addr }

// Shutdown drains the node in dependency order: crawler and peer-fill
// polling stop first, then sweep passes, then the HTTP listener and
// the store (via Server.Shutdown's drain).
func (n *Node) Shutdown(ctx context.Context) error {
	if n.Cluster != nil {
		n.Cluster.Close()
	}
	err := n.Sweeps.Close()
	if serr := n.Server.Shutdown(ctx); err == nil {
		err = serr
	}
	return err
}
