package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// testCluster is an in-process N-node cluster: every node is a full
// StartNode stack (store, sweep engine, cluster, HTTP server) bound to
// a real loopback port, sharing one experiment registry.
type testCluster struct {
	nodes []*Node
	recs  []*obs.Recorder
	ids   []string
}

// startTestCluster boots n nodes. Ports are pre-bound before any node
// starts so the full peer map is known up front — the same chicken-and-
// egg a production deployment solves with static configuration. tweak
// (optional) edits each NodeConfig before boot.
func startTestCluster(t *testing.T, n int, reg []core.Experiment, tweak func(i int, cfg *NodeConfig)) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make(map[string]string, n)
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		id := fmt.Sprintf("node-%d", i)
		tc.ids = append(tc.ids, id)
		peers[id] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		rec := obs.New()
		cfg := NodeConfig{
			Listener:       lns[i],
			NodeID:         tc.ids[i],
			PeerAddrs:      peers,
			Store:          store.Config{Slots: 4},
			Registry:       reg,
			DefaultScale:   core.ScaleQuick,
			RequestTimeout: 30 * time.Second,
			Recorder:       rec,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		node, err := StartNode(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		tc.nodes = append(tc.nodes, node)
		tc.recs = append(tc.recs, rec)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, node := range tc.nodes {
			_ = node.Shutdown(ctx)
		}
	})
	return tc
}

// ownerOf finds which node owns the key for (id, opt).
func (tc *testCluster) ownerOf(id string, opt core.Options) int {
	key := store.KeyFor(id, opt)
	owner := tc.nodes[0].Cluster.Ring().Owner(key)
	for i, nid := range tc.ids {
		if nid == owner {
			return i
		}
	}
	return -1
}

// reportURL builds the public report URL for node i.
func (tc *testCluster) reportURL(i int, expID string, opt core.Options) string {
	u := fmt.Sprintf("%s/v1/experiments/%s/report?opt.scale=%s", tc.nodes[i].URL(), expID, opt.Scale)
	if opt.CacheBytes > 0 {
		u += fmt.Sprintf("&opt.cache=%d", opt.CacheBytes)
	}
	return u
}

// slowCountingExp is a registry experiment that counts executions and
// takes real wall time, so a thundering herd has a window to pile up.
func slowCountingExp(id string, execs *atomic.Int64, d time.Duration) core.Experiment {
	return core.Experiment{
		ID:    id,
		Title: "slow counting " + id,
		Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
			execs.Add(1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r := &core.Report{Title: id}
			r.AddNote("cache=%d", opt.CacheBytes)
			return r, nil
		},
	}
}

// TestClusterColdKeySingleflight is the cross-node singleflight drill:
// 32 concurrent clients spread over a 3-node cluster all ask for one
// cold key. The ring sends every node to the same owner, the owner's
// store singleflight admits one computation, and the followers' fills
// poll until it lands — the storm costs exactly one kernel run
// cluster-wide, and every client gets an identical rendering.
func TestClusterColdKeySingleflight(t *testing.T) {
	var execs atomic.Int64
	reg := []core.Experiment{slowCountingExp("cold", &execs, 300*time.Millisecond)}
	tc := startTestCluster(t, 3, reg, nil)
	opt := core.Options{Scale: core.ScaleQuick, CacheBytes: 4096}

	const clients = 32
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(tc.reportURL(i%3, "cold", opt))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d got a different rendering than client 0", i)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("cold-key storm executed the kernel %d times cluster-wide, want exactly 1", got)
	}

	// The non-owner nodes must have peer-filled, not computed: their
	// compute-wall histograms saw zero executions.
	owner := tc.ownerOf("cold", opt)
	var peerHits uint64
	for i, rec := range tc.recs {
		m := rec.Snapshot()
		if i == owner {
			continue
		}
		if n := m.Durations[obs.StoreComputeWall].Count; n != 0 {
			t.Errorf("non-owner node-%d ran %d local computes, want 0", i, n)
		}
		peerHits += m.Counter(obs.ClusterPeerHits)
	}
	if peerHits < 2 {
		t.Errorf("followers recorded %d peer-fill hits, want >= 2 (one per follower)", peerHits)
	}
}

// TestClusterWarmPeerFill: with the owner already warm, a miss on a
// follower is answered entirely by peer-fill — zero local computes on
// the follower, one hit counter, and the rendering is byte-identical
// to the owner's.
func TestClusterWarmPeerFill(t *testing.T) {
	var execs atomic.Int64
	reg := []core.Experiment{slowCountingExp("warm", &execs, 10*time.Millisecond)}
	tc := startTestCluster(t, 2, reg, nil)
	opt := core.Options{Scale: core.ScaleQuick, CacheBytes: 4096}
	owner := tc.ownerOf("warm", opt)
	follower := 1 - owner

	get := func(i int) []byte {
		t.Helper()
		resp, err := http.Get(tc.reportURL(i, "warm", opt))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node-%d answered %d", i, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	ownerBody := get(owner)
	if execs.Load() != 1 {
		t.Fatalf("warming the owner ran %d computes, want 1", execs.Load())
	}
	followerBody := get(follower)
	if string(followerBody) != string(ownerBody) {
		t.Fatal("peer-filled rendering differs from the owner's")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("follower miss ran a local compute (total %d), want peer-fill only", got)
	}
	m := tc.recs[follower].Snapshot()
	if n := m.Durations[obs.StoreComputeWall].Count; n != 0 {
		t.Fatalf("follower ran %d local computes, want 0", n)
	}
	if got := m.Counter(obs.ClusterPeerHits); got != 1 {
		t.Fatalf("follower peer hits = %d, want 1", got)
	}
}

// TestClusterOwnerDeath is the kill-the-owner drill: clients ask the
// two followers for a key whose owner dies mid-computation. The
// followers' polls hit the dead socket, the peer degrades, and both
// fall back to local compute — every client is answered, no one fails.
func TestClusterOwnerDeath(t *testing.T) {
	var execs atomic.Int64
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	reg := []core.Experiment{{
		ID:    "doomed",
		Title: "owner dies during this",
		Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
			execs.Add(1)
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r := &core.Report{Title: "doomed"}
			r.AddNote("cache=%d", opt.CacheBytes)
			return r, nil
		},
	}}
	tc := startTestCluster(t, 3, reg, func(i int, cfg *NodeConfig) {
		cfg.PeerProbe = time.Hour // once degraded, stays degraded for the test
	})
	opt := core.Options{Scale: core.ScaleQuick, CacheBytes: 4096}
	owner := tc.ownerOf("doomed", opt)

	var followers []int
	for i := range tc.nodes {
		if i != owner {
			followers = append(followers, i)
		}
	}

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 8)
	for _, f := range followers {
		go func(f int) {
			resp, err := http.Get(tc.reportURL(f, "doomed", opt))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			results <- result{status: resp.StatusCode}
		}(f)
	}

	// The followers' fills make the owner start computing in the
	// background; once its kernel is running, kill the owner abruptly
	// (no drain — the in-process stand-in for a crashed node).
	<-started
	tc.nodes[owner].Server.Abort()
	close(gate)

	for range followers {
		r := <-results
		if r.err != nil {
			t.Fatalf("follower client failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("follower client got %d, want 200", r.status)
		}
	}
	// Each follower computed locally (the owner's aborted run may or
	// may not have counted before dying, so assert per-node).
	for _, f := range followers {
		m := tc.recs[f].Snapshot()
		if n := m.Durations[obs.StoreComputeWall].Count; n != 1 {
			t.Errorf("follower node-%d ran %d local computes, want 1", f, n)
		}
	}
	// The dead owner shows up degraded in at least one follower's
	// health document.
	degraded := 0
	for _, f := range followers {
		h := tc.nodes[f].Cluster.Health()
		for _, p := range h.Peers {
			if p.ID == tc.ids[owner] && p.State == cluster.StateDegraded {
				degraded++
			}
		}
	}
	if degraded == 0 {
		t.Error("no follower marked the dead owner degraded")
	}
}

// TestClusterHealthz: cluster membership appears in /healthz, and a
// degraded peer flips the top-level status without failing the node.
func TestClusterHealthz(t *testing.T) {
	var execs atomic.Int64
	reg := []core.Experiment{slowCountingExp("hz", &execs, time.Millisecond)}
	tc := startTestCluster(t, 2, reg, nil)

	var doc struct {
		Status  string          `json:"status"`
		Cluster *cluster.Health `json:"cluster"`
	}
	resp, err := http.Get(tc.nodes[0].URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster == nil {
		t.Fatal("/healthz has no cluster section on a cluster member")
	}
	if doc.Cluster.Self != "node-0" || len(doc.Cluster.Peers) != 2 {
		t.Fatalf("cluster section = %+v", doc.Cluster)
	}
	var shares float64
	for _, p := range doc.Cluster.Peers {
		shares += p.Share
		want := cluster.StateOK
		if p.ID == "node-0" {
			want = cluster.StateSelf
		}
		if p.State != want {
			t.Errorf("peer %s state = %q, want %q", p.ID, p.State, want)
		}
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("peer shares sum to %v, want 1", shares)
	}
}

// --- internal endpoint unit tests -----------------------------------

// internalFixture: a standalone server (the internal route is always
// registered) plus helpers to build internal URLs.
func internalURL(base string, key store.Key, id string, opt core.Options) string {
	u := base + cluster.InternalReportPath + key.String() + "?id=" + id
	for _, f := range core.AxisFields() {
		u += "&opt." + f + "=" + opt.AxisValue(f)
	}
	return u
}

func TestInternalReportEndpoint(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	_, ts := newTestServer(t, store.Config{Slots: 2}, testRegistry(&execs, nil, nil), rec)
	opt := core.Options{Scale: core.ScaleQuick}
	key := store.KeyFor("inst", opt)

	t.Run("malformed key", func(t *testing.T) {
		resp, err := http.Get(ts.URL + cluster.InternalReportPath + "zzzz?id=inst")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown experiment", func(t *testing.T) {
		resp, err := http.Get(internalURL(ts.URL, key, "nope", opt))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("key mismatch", func(t *testing.T) {
		wrong := store.KeyFor("inst", core.Options{Scale: core.ScaleQuick, CacheBytes: 999424})
		resp, err := http.Get(internalURL(ts.URL, wrong, "inst", opt))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (options derive a different key)", resp.StatusCode)
		}
	})
	t.Run("cold answers 202 and warms", func(t *testing.T) {
		resp, err := http.Get(internalURL(ts.URL, key, "inst", opt))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cold status %d, want 202", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("202 without Retry-After")
		}
		var body struct {
			Status string `json:"status"`
			Key    string `json:"key"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Status != "computing" || body.Key != key.String() {
			t.Fatalf("202 body = %+v", body)
		}
		// The background warm lands; a follow-up answers 200.
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(internalURL(ts.URL, key, "inst", opt))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				sum := sha256.Sum256(raw)
				if got := resp.Header.Get(cluster.DigestHeader); got != hex.EncodeToString(sum[:]) {
					t.Fatalf("digest header %q does not match body", got)
				}
				if resp.Header.Get("Etag") == "" {
					t.Fatal("200 without an ETag")
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("warm never landed (last status %d)", resp.StatusCode)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if got := execs.Load(); got != 1 {
			t.Fatalf("warm ran %d computes, want 1", got)
		}
	})
	t.Run("304 on matching etag", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodGet, internalURL(ts.URL, key, "inst", opt), nil)
		if err != nil {
			t.Fatal(err)
		}
		first, err := http.Get(internalURL(ts.URL, key, "inst", opt))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		req.Header.Set("If-None-Match", first.Header.Get("Etag"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("status %d, want 304", resp.StatusCode)
		}
	})
}
