package serve

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// Coverage for the opt.sample axis on the HTTP surface: validation
// through the one typed decoder, key separation, sweep-lattice
// acceptance, and the /v1/sweeps deprecation-header fix (bare ?scale=
// used to bypass applyDeprecations on the sweep routes).

// TestOptSampleValidation: every malformed sample rate answers 400 with
// the standard envelope; a valid rate computes and caches under its own
// key.
func TestOptSampleValidation(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)

	for _, bad := range []string{"3", "0", "-4", "banana", "12"} {
		resp := get(t, hs.URL+"/v1/experiments/inst/report?opt.sample="+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("opt.sample=%s status = %d, want 400", bad, resp.StatusCode)
		}
		decodeEnvelope(t, resp)
	}
	if execs.Load() != 0 {
		t.Fatalf("rejected requests executed the experiment %d times", execs.Load())
	}

	resp := get(t, hs.URL+"/v1/experiments/inst/report?opt.sample=16&opt.scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opt.sample=16 status = %d, want 200", resp.StatusCode)
	}
	if execs.Load() != 1 {
		t.Fatalf("execs = %d, want 1", execs.Load())
	}
	// The sample rate is part of the result key: a different rate is a
	// different computation, the same rate is a cache hit.
	resp = get(t, hs.URL+"/v1/experiments/inst/report?opt.sample=64&opt.scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK || execs.Load() != 2 {
		t.Fatalf("opt.sample=64: status %d execs %d, want 200/2", resp.StatusCode, execs.Load())
	}
	resp = get(t, hs.URL+"/v1/experiments/inst/report?opt.sample=16&opt.scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK || execs.Load() != 2 {
		t.Fatalf("repeat opt.sample=16: status %d execs %d, want a cache hit", resp.StatusCode, execs.Load())
	}
	// Rate 1 is the exact profiler — the canonical form of the default.
	resp = get(t, hs.URL+"/v1/experiments/inst/report?opt.scale=quick", nil)
	body(t, resp)
	if execs.Load() != 3 {
		t.Fatalf("default-rate run: execs = %d, want 3", execs.Load())
	}
	resp = get(t, hs.URL+"/v1/experiments/inst/report?opt.sample=1&opt.scale=quick", nil)
	body(t, resp)
	if execs.Load() != 3 {
		t.Fatalf("opt.sample=1 must share the default's key; execs = %d", execs.Load())
	}
}

// TestSweepSampleAxis: the lattice accepts sample as a first-class axis
// and rejects invalid rates at submission, before any cell computes.
func TestSweepSampleAxis(t *testing.T) {
	hs, _ := newSweepServer(t, nil, t.TempDir())

	st, resp := postSweep(t, hs.URL, `{
		"experiment": "gridlu",
		"scale": "quick",
		"axes": [
			{"field": "cache", "values": ["4096"]},
			{"field": "sample", "values": ["1", "16"]}
		]
	}`)
	body(t, resp)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("sample-axis sweep status = %d", resp.StatusCode)
	}
	if st.Total != 2 {
		t.Fatalf("lattice size = %d, want 2", st.Total)
	}
	fin := pollSweep(t, hs.URL, st.ID)
	if fin.Failed != 0 || fin.Completed != 2 {
		t.Fatalf("sample-axis sweep finished %+v", fin)
	}

	badResp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(`{
		"experiment": "gridlu",
		"scale": "quick",
		"axes": [{"field": "sample", "values": ["3"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sample=3 lattice status = %d, want 400", badResp.StatusCode)
	}
	decodeEnvelope(t, badResp)
}

// TestSweepRoutesApplyDeprecations pins the fix for the ?scale=
// loophole: the sweep routes used to skip query decoding entirely, so a
// bare ?scale= rode along with neither validation nor the Deprecation
// and Sunset headers the experiment routes answer. All /v1/sweeps
// routes now run the one typed decoder.
func TestSweepRoutesApplyDeprecations(t *testing.T) {
	rec := obs.New()
	hs, _ := newSweepServer(t, rec, t.TempDir())

	resp := get(t, hs.URL+"/v1/sweeps?scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list with bare scale status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" || resp.Header.Get("Sunset") == "" {
		t.Errorf("bare ?scale= on /v1/sweeps answered without Deprecation/Sunset: %v", resp.Header)
	}
	if got := rec.Snapshot().Counter(obs.ServeDeprecated); got != 1 {
		t.Errorf("%s = %d, want 1", obs.ServeDeprecated, got)
	}

	// Unknown and malformed parameters now fail loudly on sweep routes
	// instead of being ignored.
	resp = get(t, hs.URL+"/v1/sweeps?speed=fast", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown parameter on /v1/sweeps status = %d, want 400", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
	resp = get(t, hs.URL+"/v1/sweeps?opt.sample=3", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("opt.sample=3 on /v1/sweeps status = %d, want 400", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
}
