package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// envelope is the one JSON error shape every v1 failure uses.
type envelope struct {
	Error      string `json:"error"`
	Status     int    `json:"status"`
	RetryAfter int    `json:"retry_after"`
}

// decodeEnvelope demands the response body is a well-formed error
// envelope whose status field echoes the HTTP code.
func decodeEnvelope(t *testing.T, resp *http.Response) envelope {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var env envelope
	if err := json.Unmarshal([]byte(body(t, resp)), &env); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if env.Error == "" {
		t.Error("envelope has an empty error message")
	}
	if env.Status != resp.StatusCode {
		t.Errorf("envelope status = %d, HTTP status = %d", env.Status, resp.StatusCode)
	}
	return env
}

// TestErrorEnvelopeEverywhere sweeps the failure surface: every error —
// including the mux-level 404 and 405 that ServeMux would answer in
// text — must come back as the one JSON envelope.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)

	cases := []struct {
		name   string
		method string
		path   string
		want   int
	}{
		{"catch-all 404", http.MethodGet, "/nope", http.StatusNotFound},
		{"unknown experiment", http.MethodGet, "/v1/experiments/bogus/report", http.StatusNotFound},
		{"method not allowed", http.MethodPost, "/v1/experiments", http.StatusMethodNotAllowed},
		{"unknown parameter", http.MethodGet, "/v1/experiments/inst/report?speed=fast", http.StatusBadRequest},
		{"repeated parameter", http.MethodGet, "/v1/experiments/inst/report?opt.scale=quick&opt.scale=full", http.StatusBadRequest},
		{"bad axis value", http.MethodGet, "/v1/experiments/inst/report?opt.cache=lots", http.StatusBadRequest},
		{"sweep unconfigured", http.MethodGet, "/v1/sweeps", http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			decodeEnvelope(t, resp)
			if tc.want == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}
}

// TestHeadRidesGet: HEAD answers like GET (status and headers, ETag
// included) on every GET route — header-only revalidation probes
// (`curl -sI`) depend on it.
func TestHeadRidesGet(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	for _, path := range []string{
		"/v1/experiments",
		"/v1/experiments/inst/report?opt.scale=quick",
		"/v1/suite?opt.scale=quick",
		"/healthz",
	} {
		req, err := http.NewRequest(http.MethodHead, hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s = %d, want 200", path, resp.StatusCode)
		}
		if strings.Contains(path, "report") && resp.Header.Get("Etag") == "" {
			t.Errorf("HEAD %s answered without an ETag", path)
		}
	}
}

// TestDeprecatedBareScale pins the ?scale= migration path: the bare
// parameter still works but carries Deprecation and Sunset headers and
// counts on serve.deprecated; the replacement ?opt.scale= is silent;
// sending both is a conflict.
func TestDeprecatedBareScale(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), rec)

	resp := get(t, hs.URL+"/v1/experiments/inst/report?scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare scale status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" || resp.Header.Get("Sunset") == "" {
		t.Errorf("bare ?scale= answered without Deprecation/Sunset headers: %v", resp.Header)
	}
	if got := rec.Snapshot().Counter(obs.ServeDeprecated); got != 1 {
		t.Errorf("%s = %d, want 1", obs.ServeDeprecated, got)
	}

	resp = get(t, hs.URL+"/v1/experiments/inst/report?opt.scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opt.scale status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
		t.Error("opt.scale= wrongly marked deprecated")
	}

	resp = get(t, hs.URL+"/v1/experiments/inst/report?scale=quick&opt.scale=full", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting scales status = %d, want 400", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
}

// TestSuiteETagConditional: the suite document carries a strong ETag
// over its member keys, and If-None-Match short-circuits to 304 before
// any member computes.
func TestSuiteETagConditional(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)

	resp := get(t, hs.URL+"/v1/suite?opt.scale=quick", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("suite answered without an ETag")
	}
	ran := execs.Load()

	cond := get(t, hs.URL+"/v1/suite?opt.scale=quick", map[string]string{"If-None-Match": etag})
	body(t, cond)
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional suite status = %d, want 304", cond.StatusCode)
	}
	if execs.Load() != ran {
		t.Errorf("304 recomputed members: executions %d -> %d", ran, execs.Load())
	}

	// A different scale is a different document: the ETag must miss.
	other := get(t, hs.URL+"/v1/suite?opt.scale=full", map[string]string{"If-None-Match": etag})
	body(t, other)
	if other.StatusCode != http.StatusOK {
		t.Fatalf("cross-scale conditional status = %d, want 200", other.StatusCode)
	}
	if got := other.Header.Get("Etag"); got == etag {
		t.Error("full and quick suites share an ETag")
	}
}

// newSweepServer wires a server whose sweep engine journals under dir.
func newSweepServer(t *testing.T, rec *obs.Recorder, dir string) (*httptest.Server, *sweep.Engine) {
	t.Helper()
	st, err := store.New(store.Config{Slots: 2, Recorder: rec, CaptureBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sweep.NewEngine(sweep.Config{Store: st, Dir: dir, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Sweeps: eng, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		eng.Close()
		st.Close(context.Background())
	})
	return hs, eng
}

// sweepSpecJSON is the lattice every sweep HTTP test submits.
const sweepSpecJSON = `{
	"experiment": "gridlu",
	"scale": "quick",
	"axes": [
		{"field": "cache", "values": ["4096", "16384"]},
		{"field": "pes", "values": ["16", "64"]}
	]
}`

// postSweep submits a spec and returns the decoded status.
func postSweep(t *testing.T, base, spec string) (sweep.Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st sweep.Status
	if err := json.Unmarshal([]byte(body(t, resp)), &st); err != nil {
		t.Fatalf("sweep status not JSON: %v", err)
	}
	return st, resp
}

// pollSweep polls the status resource until Done.
func pollSweep(t *testing.T, base, id string) sweep.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := get(t, base+"/v1/sweeps/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep poll status = %d", resp.StatusCode)
		}
		var st sweep.Status
		if err := json.Unmarshal([]byte(body(t, resp)), &st); err != nil {
			t.Fatalf("sweep status not JSON: %v", err)
		}
		if st.Done {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepHTTPFlow drives the whole resource lifecycle over HTTP:
// POST answers 202 with a Location, the status resource converges to
// Done, the grain endpoint scores the lattice, and the list endpoint
// names the sweep. Degenerate requests answer enveloped errors.
func TestSweepHTTPFlow(t *testing.T) {
	hs, _ := newSweepServer(t, nil, t.TempDir())

	st, resp := postSweep(t, hs.URL, sweepSpecJSON)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Errorf("Location = %q, want /v1/sweeps/%s", loc, st.ID)
	}
	if st.Total != 4 {
		t.Fatalf("total = %d, want 4", st.Total)
	}
	fin := pollSweep(t, hs.URL, st.ID)
	if fin.Completed != 4 || fin.Failed != 0 {
		t.Fatalf("finished sweep = %+v", fin)
	}

	// Grain: a 409 is impossible now (done), the advice must score the
	// 2x2 pes-cache lattice.
	gresp := get(t, hs.URL+"/v1/sweeps/"+st.ID+"/grain?data_bytes=1048576", nil)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("grain status = %d: %s", gresp.StatusCode, body(t, gresp))
	}
	var adv struct {
		Best struct {
			Design struct {
				P int `json:"p"`
			} `json:"design"`
		} `json:"best"`
		Evals []json.RawMessage `json:"evals"`
	}
	if err := json.Unmarshal([]byte(body(t, gresp)), &adv); err != nil {
		t.Fatalf("grain not JSON: %v", err)
	}
	if adv.Best.Design.P <= 0 || len(adv.Evals) != 4 {
		t.Errorf("grain advice = %+v, want a best design over 4 evals", adv)
	}

	list := get(t, hs.URL+"/v1/sweeps", nil)
	var ls sweepListResponse
	if err := json.Unmarshal([]byte(body(t, list)), &ls); err != nil {
		t.Fatalf("sweep list not JSON: %v", err)
	}
	if len(ls.Sweeps) != 1 || ls.Sweeps[0].ID != st.ID || !ls.Sweeps[0].Done {
		t.Errorf("sweep list = %+v", ls)
	}

	for _, bad := range []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"unknown sweep", func() *http.Response {
			return get(t, hs.URL+"/v1/sweeps/deadbeef", nil)
		}, http.StatusNotFound},
		{"unknown grain", func() *http.Response {
			return get(t, hs.URL+"/v1/sweeps/deadbeef/grain", nil)
		}, http.StatusNotFound},
		{"bad data_bytes", func() *http.Response {
			return get(t, hs.URL+"/v1/sweeps/"+st.ID+"/grain?data_bytes=banana", nil)
		}, http.StatusBadRequest},
		{"unknown spec field", func() *http.Response {
			resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"experiment":"gridlu","lattice":[]}`))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"bogus experiment", func() *http.Response {
			resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"experiment":"bogus","axes":[{"field":"cache","values":["1"]}]}`))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
	} {
		t.Run(bad.name, func(t *testing.T) {
			resp := bad.do()
			if resp.StatusCode != bad.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, bad.want)
			}
			decodeEnvelope(t, resp)
		})
	}
}

// TestSweepHTTPRestartResume is satellite four over the wire: finish a
// sweep, tear the whole serving stack down, bring up a fresh one over
// the same journal dir with a cold store, re-POST the identical spec,
// and demand every cell revives without recomputation.
func TestSweepHTTPRestartResume(t *testing.T) {
	dir := t.TempDir()

	first, eng1 := newSweepServer(t, nil, dir)
	st, _ := postSweep(t, first.URL, sweepSpecJSON)
	fin := pollSweep(t, first.URL, st.ID)
	if fin.Failed != 0 {
		t.Fatalf("first pass failed cells: %+v", fin)
	}
	first.Close()
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	rec := obs.New()
	second, _ := newSweepServer(t, rec, dir)
	st2, _ := postSweep(t, second.URL, sweepSpecJSON)
	if st2.ID != st.ID {
		t.Fatalf("identical spec mapped to %s, want %s", st2.ID, st.ID)
	}
	fin2 := pollSweep(t, second.URL, st2.ID)
	if fin2.Revived != fin2.Total || fin2.Failed != 0 {
		t.Fatalf("resumed sweep = %+v, want all %d cells revived", fin2, fin2.Total)
	}
	m := rec.Snapshot()
	if got := m.Counter(obs.SweepCellsRevived); got != uint64(fin2.Total) {
		t.Errorf("%s = %d, want %d", obs.SweepCellsRevived, got, fin2.Total)
	}
	if got := m.Counter(obs.SweepCellsComputed); got != 0 {
		t.Errorf("%s = %d, want 0 — resume recomputed journaled cells", obs.SweepCellsComputed, got)
	}
}
