// Package serve exposes the working-set study over a stable v1 HTTP
// API, backed by the content-addressed result store:
//
//	GET  /v1/experiments              list every experiment (id, title, ...)
//	GET  /v1/experiments/{id}/report  one experiment's Report
//	GET  /v1/suite                    every experiment, one summary document
//	POST /v1/sweeps                   submit a parameter-lattice sweep
//	GET  /v1/sweeps                   list known sweeps
//	GET  /v1/sweeps/{id}              one sweep's incremental aggregate
//	GET  /v1/sweeps/{id}/grain        §8 cost advice from a finished sweep
//	GET  /healthz                     liveness probe
//
// Query parameters flow through one typed decoder (RequestV1):
// ?format= picks the rendering (else the Accept header), ?opt.<axis>=
// sets any canonical Options axis (opt.scale, opt.cache, opt.line,
// opt.assoc, opt.pes, opt.problem), unknown parameters are rejected
// with 400, and the pre-v1.1 bare ?scale= survives as a deprecated
// alias answered with a Deprecation header. Every error, on every
// endpoint, is the same JSON envelope {error, status, retry_after?}.
//
// Because results are content-addressed, the report ETag is derived
// from the store key — known before any computation happens, so a
// matching If-None-Match answers 304 without touching the store at
// all. The suite ETag is the hash of its member keys, equally
// computable pre-compute. Saturated compute slots surface as 429 with
// Retry-After; per-request deadlines ride the request context;
// Shutdown drains in-flight runs.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// fpReport sits at the head of the report endpoint's store lookup —
// the seam for exercising the 5xx mapping and error instrumentation
// without faulting the store itself.
var fpReport = fault.New("serve.report")

// Config tunes a Server.
type Config struct {
	// Store computes and caches results. Required.
	Store *store.Store
	// Sweeps runs parameter-lattice sweeps. Nil disables the
	// /v1/sweeps surface (503 on access).
	Sweeps *sweep.Engine
	// Registry is the experiment list to serve (nil = core.Registry()).
	Registry []core.Experiment
	// Recorder receives request instrumentation (latency histogram,
	// request/429/304/5xx counters). Nil disables it.
	Recorder *obs.Recorder
	// DefaultScale applies when a request has no ?scale= parameter.
	// The server defaults to ScaleQuick — interactive latency first;
	// clients opt into paper-scale runs with ?scale=full.
	DefaultScale core.Scale
	// RequestTimeout, when positive, bounds each request's context; an
	// expired request answers 504 while the underlying computation
	// (bounded separately by ComputeTimeout) keeps warming the store.
	RequestTimeout time.Duration
	// ComputeTimeout, when positive, becomes Options.Timeout for every
	// computation, so runaway experiments end in DeadlineError instead
	// of holding a compute slot forever.
	ComputeTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// Cluster, when non-nil, reports the node's ring and per-peer
	// state in /healthz. The internal peer-fill endpoint is served
	// either way (it is just a Peek-or-warm view of the store), but
	// only clustered nodes have peers to call it.
	Cluster *cluster.Cluster
}

// Server is the v1 HTTP front of the result store.
type Server struct {
	cfg     Config
	byID    map[string]core.Experiment
	list    []core.Experiment
	handler http.Handler

	mu   sync.Mutex
	http *http.Server
	ln   net.Listener

	// warming tracks keys being computed in the background for peers
	// (the internal endpoint's 202 path), deduplicating the spawned
	// store.Get per key.
	warmMu  sync.Mutex
	warming map[store.Key]bool

	requests, busy, notModified, errs, deprecated *obs.Counter
	internalReqs, internalComputing               *obs.Counter
	latency                                       *obs.Histogram
}

// New builds a Server around cfg.Store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	if cfg.Registry == nil {
		cfg.Registry = core.Registry()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	rec := cfg.Recorder
	s := &Server{
		cfg:               cfg,
		list:              cfg.Registry,
		byID:              make(map[string]core.Experiment, len(cfg.Registry)),
		warming:           make(map[store.Key]bool),
		requests:          rec.Counter(obs.ServeRequests),
		busy:              rec.Counter(obs.ServeBusy),
		notModified:       rec.Counter(obs.ServeNotModified),
		errs:              rec.Counter(obs.ServeErrors),
		deprecated:        rec.Counter(obs.ServeDeprecated),
		internalReqs:      rec.Counter(obs.ClusterInternalRequests),
		internalComputing: rec.Counter(obs.ClusterInternalComputing),
		latency:           rec.Histogram(obs.ServeRequestWall),
	}
	for _, e := range cfg.Registry {
		s.byID[e.ID] = e
	}
	mux := http.NewServeMux()
	// Routes are registered without method patterns so that unknown
	// paths AND wrong methods both produce the v1 error envelope —
	// ServeMux's own 404/405 responses are text.
	route(mux, "/v1/experiments", "GET", s.handleList)
	route(mux, "/v1/experiments/{id}/report", "GET", s.handleReport)
	route(mux, "/v1/suite", "GET", s.handleSuite)
	mux.HandleFunc("/v1/sweeps", s.handleSweeps) // GET (list) and POST (submit)
	route(mux, "/v1/sweeps/{id}", "GET", s.handleSweepGet)
	route(mux, "/v1/sweeps/{id}/grain", "GET", s.handleSweepGrain)
	route(mux, cluster.InternalReportPath+"{key}", "GET", s.handleInternalReport)
	route(mux, "/healthz", "GET", s.handleHealth)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	s.handler = s.instrument(mux)
	return s, nil
}

// route registers a single-method handler that answers other methods
// with an enveloped 405.
func route(mux *http.ServeMux, pattern, method string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		// HEAD rides every GET route: net/http discards the body, the
		// headers (ETag included) are what a HEAD caller is after.
		if r.Method != method && !(method == http.MethodGet && r.Method == http.MethodHead) {
			allow := method
			if method == http.MethodGet {
				allow = "GET, HEAD"
			}
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed for %s", r.Method, pattern)
			return
		}
		h(w, r)
	})
}

// Handler returns the instrumented v1 API handler, for embedding or
// httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Start listens on addr (host:port; port 0 picks a free one), serves in
// a background goroutine, and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.StartListener(ln), nil
}

// StartListener serves on an already-bound listener and returns its
// address. Cluster tests use it to hand every node a pre-bound port so
// the full peer map is known before any node boots.
func (s *Server) StartListener(ln net.Listener) string {
	hs := &http.Server{Handler: s.handler}
	s.mu.Lock()
	s.http, s.ln = hs, ln
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// would already have surfaced to clients as connection errors.
		_ = hs.Serve(ln)
	}()
	return ln.Addr().String()
}

// Abort force-closes the HTTP side — listener and all live
// connections — without draining and without touching the store. It is
// the in-process stand-in for SIGKILLing a node: peers observe
// connection errors mid-request, exactly as the owner-death drill
// needs. The store keeps running; use Shutdown for a real drain.
func (s *Server) Abort() {
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: the listener stops accepting, in-flight
// requests (and the computations they wait on) get until ctx expires to
// finish, then the store cancels any stragglers through their kernels'
// cancellation polls. The store is closed as part of shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	if cerr := s.cfg.Store.Close(ctx); err == nil {
		err = cerr
	}
	return err
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request metrics and the per-request
// deadline.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		if s.cfg.Recorder != nil {
			// Request contexts carry the server recorder so seams that
			// count on the context — the handler failpoints, most
			// notably — land on the same recorder as the rest of the
			// serve metrics.
			r = r.WithContext(obs.With(r.Context(), s.cfg.Recorder))
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.latency.Observe(time.Since(start))
		switch {
		case sw.status == http.StatusTooManyRequests:
			s.busy.Inc()
		case sw.status == http.StatusNotModified:
			s.notModified.Inc()
		case sw.status >= 500:
			s.errs.Inc()
		}
	})
}

// apiError is the one v1 error envelope: every endpoint, every
// failure. The status echoes the HTTP code so a body that outlives
// its response (a log line, a proxy buffer) stays self-describing;
// retry_after (seconds) appears only on 429.
type apiError struct {
	Error      string `json:"error"`
	Status     int    `json:"status"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

// writeBusy is the 429 variant: Retry-After rides both the header and
// the envelope.
func writeBusy(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, apiError{
		Error:      "compute slots saturated, retry shortly",
		Status:     http.StatusTooManyRequests,
		RetryAfter: secs,
	})
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	ReportPath  string `json:"report_path"`
}

// listResponse is the GET /v1/experiments document.
type listResponse struct {
	SchemaVersion int              `json:"schema_version"`
	Experiments   []experimentInfo `json:"experiments"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := listResponse{SchemaVersion: core.ReportSchemaVersion}
	for _, e := range s.list {
		resp.Experiments = append(resp.Experiments, experimentInfo{
			ID:          e.ID,
			Title:       e.Title,
			Description: e.Description,
			ReportPath:  "/v1/experiments/" + e.ID + "/report",
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the GET /healthz document: an overall verdict plus
// the store's per-subsystem detail. "degraded" still answers 200 — the
// server is serving, just without one of its caches — so liveness
// probes don't restart a self-healing process; "down" (store closed)
// answers 503.
type healthResponse struct {
	Status string       `json:"status"` // "ok" | "degraded" | "down"
	Store  store.Health `json:"store"`
	// Cluster reports the ring and per-peer state on clustered nodes.
	// A degraded peer marks the node degraded-but-serving: requests
	// that would have peer-filled compute locally instead.
	Cluster *cluster.Health `json:"cluster,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.Store.Health()
	resp := healthResponse{Status: "ok", Store: h}
	status := http.StatusOK
	if h.Disk.State == store.StateDegraded || h.Capture.State == store.StateDegraded {
		resp.Status = "degraded"
	}
	if s.cfg.Cluster != nil {
		ch := s.cfg.Cluster.Health()
		resp.Cluster = &ch
		if ch.Degraded() {
			resp.Status = "degraded"
		}
	}
	if h.Closed {
		resp.Status = "down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// etagFor derives the strong ETag of a response: the content address of
// the configuration plus the negotiated format (the same key rendered
// as CSV and JSON are different representations, so they must not share
// a validator).
func etagFor(key store.Key, f core.Format) string {
	return `"` + key.String() + "-" + f.String() + `"`
}

// etagMatches implements the If-None-Match comparison for strong ETags.
func etagMatches(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == etag || candidate == "*" {
			return true
		}
	}
	return false
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.byID[id]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	req, err := s.decodeRequestV1(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	opt, format := req.Options, req.Format

	key := store.KeyFor(e.ID, opt)
	etag := etagFor(key, format)
	w.Header().Set("Etag", etag)
	// The key is the content address of the request configuration, so a
	// revalidation needs no lookup at all: same key, same statistics
	// (experiments are deterministic — the equivalence gate's guarantee).
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	if err := fpReport.Inject(r.Context()); err != nil {
		s.writeStoreError(w, err)
		return
	}
	res, err := s.cfg.Store.Get(r.Context(), e, opt)
	if err != nil {
		s.writeStoreError(w, err)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	w.Header().Set("X-Wsstudy-Key", key.String())
	if format == core.FormatJSON {
		_, _ = w.Write(res.JSON)
		return
	}
	_ = res.Report.Render(w, format)
}

// writeStoreError maps store/compute failures to v1 status codes.
func (s *Server) writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrBusy):
		writeBusy(w, s.cfg.RetryAfter)
	case errors.Is(err, store.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, core.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "experiment exceeded its deadline: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "computation cancelled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// suiteResult is one experiment's row in GET /v1/suite.
type suiteResult struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	OK    bool   `json:"ok"`
	ETag  string `json:"etag,omitempty"`
	Error string `json:"error,omitempty"`
}

// suiteResponse is the GET /v1/suite document.
type suiteResponse struct {
	SchemaVersion int           `json:"schema_version"`
	Scale         string        `json:"scale"`
	Results       []suiteResult `json:"results"`
}

// suiteEtag derives the suite document's strong ETag: the hash of its
// member result keys (in registry order) plus the representation. Keys
// are computable before any result exists, so — exactly like the
// report endpoint — a matching If-None-Match answers 304 with zero
// store access, and any change to the registry, the schema version, or
// the canonical Options encoding changes the validator.
func suiteEtag(list []core.Experiment, opt core.Options) string {
	h := sha256.New()
	for _, e := range list {
		k := store.KeyFor(e.ID, opt)
		h.Write(k[:])
	}
	return `"` + hex.EncodeToString(h.Sum(nil)) + `-suite-json"`
}

// handleSuite computes (or re-serves) every experiment at the requested
// scale and returns one summary document. Fan-out concurrency is sized
// to the store's compute slots so one suite request fills the pool but
// never trips its own backpressure queue; singleflight makes the whole
// request cheap when the per-experiment endpoints already warmed the
// cache.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequestV1(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	opt := req.Options

	etag := suiteEtag(s.list, opt)
	w.Header().Set("Etag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	results := make([]suiteResult, len(s.list))
	sem := make(chan struct{}, s.cfg.Store.Slots())
	var wg sync.WaitGroup
	for i, e := range s.list {
		wg.Add(1)
		go func(i int, e core.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sr := suiteResult{ID: e.ID, Title: e.Title}
			if res, err := s.cfg.Store.Get(r.Context(), e, opt); err != nil {
				sr.Error = err.Error()
			} else {
				sr.OK = true
				sr.ETag = etagFor(res.Key, core.FormatJSON)
			}
			results[i] = sr
		}(i, e)
	}
	wg.Wait()
	for _, sr := range results {
		if !sr.OK {
			// A document with failed members must not be cached against
			// the pre-computed validator: the next request should retry,
			// not revalidate.
			w.Header().Del("Etag")
			break
		}
	}
	writeJSON(w, http.StatusOK, suiteResponse{
		SchemaVersion: core.ReportSchemaVersion,
		Scale:         opt.Scale.String(),
		Results:       results,
	})
}
