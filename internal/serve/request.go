package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"wsstudy/internal/core"
)

// RequestV1 is the decoded form of a v1 query string — the one request
// surface the report, suite and sweep endpoints share. The recognized
// parameters are derived from the core Options axis registry
// (opt.<axis> for every core.AxisFields entry) plus format, so the
// request surface can never drift from the canonical encoding that
// keys results.
type RequestV1 struct {
	Options core.Options
	Format  core.Format
	// Deprecations lists warnings about accepted-but-deprecated
	// parameters; the caller surfaces them as a Deprecation header.
	Deprecations []string
}

// recognizedParams names every query parameter the v1 surface accepts,
// beyond any endpoint-specific extras.
func recognizedParams() []string {
	out := []string{"format"}
	for _, f := range core.AxisFields() {
		out = append(out, "opt."+f)
	}
	return out
}

// decodeRequestV1 parses and validates a request's query string.
// Unknown and repeated parameters are rejected — a misspelled
// opt.cahce must fail loudly, not silently key a default-configured
// result. The bare scale parameter (the pre-sweep API) is accepted as
// a deprecated alias for opt.scale. extra lists endpoint-specific
// parameters to accept (the grain endpoint's data_bytes); their values
// are read by the caller.
func (s *Server) decodeRequestV1(r *http.Request, extra ...string) (RequestV1, error) {
	q := r.URL.Query()
	known := map[string]bool{"scale": true}
	for _, p := range recognizedParams() {
		known[p] = true
	}
	for _, p := range extra {
		known[p] = true
	}
	for k, vs := range q {
		if !known[k] {
			return RequestV1{}, fmt.Errorf("unknown parameter %q (recognized: %s)",
				k, strings.Join(append(recognizedParams(), extra...), ", "))
		}
		if len(vs) > 1 {
			return RequestV1{}, fmt.Errorf("parameter %q repeated", k)
		}
	}

	req := RequestV1{
		Options: core.Options{Scale: s.cfg.DefaultScale, Timeout: s.cfg.ComputeTimeout},
	}
	if raw := q.Get("scale"); raw != "" {
		if q.Get("opt."+core.AxisScale) != "" {
			return RequestV1{}, fmt.Errorf("scale and opt.scale both set; use opt.scale")
		}
		if err := req.Options.SetAxis(core.AxisScale, raw); err != nil {
			return RequestV1{}, err
		}
		req.Deprecations = append(req.Deprecations,
			`the bare "scale" parameter is deprecated; use "opt.scale"`)
	}
	for _, f := range core.AxisFields() {
		if raw := q.Get("opt." + f); raw != "" {
			if err := req.Options.SetAxis(f, raw); err != nil {
				return RequestV1{}, err
			}
		}
	}
	format, err := negotiateFormat(r)
	if err != nil {
		return RequestV1{}, err
	}
	req.Format = format
	return req, nil
}

// applyDeprecations surfaces accepted-but-deprecated parameters:
// Deprecation marks the request (RFC 9745 form), Sunset names the
// API version that will drop the alias, and the serve.deprecated
// counter tracks remaining traffic so removal can be data-driven.
func (s *Server) applyDeprecations(w http.ResponseWriter, req RequestV1) {
	if len(req.Deprecations) == 0 {
		return
	}
	w.Header().Set("Deprecation", "@"+strconv.FormatInt(deprecationEpoch, 10))
	w.Header().Set("Sunset", deprecationSunset)
	s.deprecated.Inc()
}

const (
	// deprecationEpoch is when the bare scale parameter was
	// deprecated (the sweep API release), as a Unix timestamp for the
	// Deprecation header.
	deprecationEpoch int64 = 1754611200 // 2025-08-08
	// deprecationSunset is the earliest date the alias may be removed.
	deprecationSunset = "Sat, 08 Aug 2026 00:00:00 GMT"
)

// negotiateFormat picks the rendering: an explicit ?format= wins, then
// the Accept header (text/csv, text/plain, application/json), then JSON.
func negotiateFormat(r *http.Request) (core.Format, error) {
	if raw := r.URL.Query().Get("format"); raw != "" {
		return core.ParseFormat(raw)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/csv"):
		return core.FormatCSV, nil
	case strings.Contains(accept, "text/plain"):
		return core.FormatText, nil
	default:
		return core.FormatJSON, nil
	}
}
