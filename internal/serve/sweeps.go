package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"wsstudy/internal/sweep"
)

// defaultGrainDataBytes is the total problem size the grain endpoint
// assumes when ?data_bytes= is absent: 1 GB, the paper's large-problem
// order of magnitude.
const defaultGrainDataBytes = 1 << 30

// sweepListEntry is one row of GET /v1/sweeps.
type sweepListEntry struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Total      int    `json:"total"`
	Completed  int    `json:"completed"`
	Failed     int    `json:"failed"`
	Done       bool   `json:"done"`
	Path       string `json:"path"`
}

// sweepListResponse is the GET /v1/sweeps document.
type sweepListResponse struct {
	Sweeps []sweepListEntry `json:"sweeps"`
}

// sweeps returns the engine, or answers 503: the sweep surface is
// present but unconfigured (no engine wired), which is an operational
// state, not a client error.
func (s *Server) sweeps(w http.ResponseWriter) *sweep.Engine {
	if s.cfg.Sweeps == nil {
		writeError(w, http.StatusServiceUnavailable, "sweep engine not configured")
		return nil
	}
	return s.cfg.Sweeps
}

// handleSweeps dispatches the collection endpoint: POST submits a
// lattice, GET lists known sweeps.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSweepPost(w, r)
	case http.MethodGet, http.MethodHead:
		s.handleSweepList(w, r)
	default:
		w.Header().Set("Allow", "GET, HEAD, POST")
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed for /v1/sweeps", r.Method)
	}
}

// handleSweepPost accepts a JSON lattice spec, submits it, and answers
// with the sweep's status: 202 while cells are landing, 200 when the
// submission was already complete (an idempotent re-POST of a finished
// sweep). The Location header names the status resource either way.
// Unknown JSON fields are rejected for the same reason unknown query
// parameters are: a misspelled axis must not silently shrink a lattice.
func (s *Server) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	eng := s.sweeps(w)
	if eng == nil {
		return
	}
	req, err := s.decodeRequestV1(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	var spec sweep.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding sweep spec: %v", err)
		return
	}
	if spec.Scale == "" {
		spec.Scale = s.cfg.DefaultScale.String()
	}
	st, err := eng.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+st.ID)
	code := http.StatusAccepted
	if st.Done {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	eng := s.sweeps(w)
	if eng == nil {
		return
	}
	req, err := s.decodeRequestV1(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	resp := sweepListResponse{Sweeps: []sweepListEntry{}}
	for _, id := range eng.List() {
		st, ok := eng.Get(id)
		if !ok {
			continue
		}
		resp.Sweeps = append(resp.Sweeps, sweepListEntry{
			ID: st.ID, Experiment: st.Experiment,
			Total: st.Total, Completed: st.Completed, Failed: st.Failed,
			Done: st.Done, Path: "/v1/sweeps/" + st.ID,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweepGet serves a sweep's incremental aggregate — poll it
// while cells land; Done reports convergence.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	eng := s.sweeps(w)
	if eng == nil {
		return
	}
	req, err := s.decodeRequestV1(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	st, ok := eng.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q (re-POST its spec to resume it)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSweepGrain answers §8 for a finished sweep: best node
// granularity per dollar over the measured lattice. ?data_bytes= sets
// the fixed total problem size (default 1 GB). A sweep still landing
// cells answers 409 — partial advice would silently prefer whatever
// happened to finish first.
func (s *Server) handleSweepGrain(w http.ResponseWriter, r *http.Request) {
	eng := s.sweeps(w)
	if eng == nil {
		return
	}
	req, err := s.decodeRequestV1(r, "data_bytes")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyDeprecations(w, req)
	dataBytes := uint64(defaultGrainDataBytes)
	if raw := r.URL.Query().Get("data_bytes"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil || v == 0 {
			writeError(w, http.StatusBadRequest, "data_bytes: %q is not a positive byte count", raw)
			return
		}
		dataBytes = v
	}
	id := r.PathValue("id")
	if _, ok := eng.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q (re-POST its spec to resume it)", id)
		return
	}
	adv, err := eng.Grain(id, dataBytes)
	switch {
	case errors.Is(err, sweep.ErrUnfinished):
		writeError(w, http.StatusConflict, "sweep still running; poll /v1/sweeps/%s until done", id)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, adv)
}
