package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"

	"wsstudy/internal/cluster"
	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// handleInternalReport is the peer-fill endpoint:
//
//	GET /v1/internal/reports/{key}?id=<experiment>&opt.<axis>=...
//
// It answers from the local store without ever making the calling peer
// wait for a computation: a resident or persisted rendering returns
// 200 with the frozen ReportV1 bytes, a body digest header, and the
// same strong ETag the public endpoint uses; a cold key spawns one
// deduplicated background store.Get and answers 202 + Retry-After so
// the peer polls — the store's singleflight underneath makes the whole
// cluster's interest in the key cost one compute. The {key} path
// element is authoritative: the owner re-derives the key from the
// explicit opt.* parameters and rejects a mismatch, so a version- or
// registry-skewed peer can never be served (or cache) bytes filed
// under the wrong address.
func (s *Server) handleInternalReport(w http.ResponseWriter, r *http.Request) {
	s.internalReqs.Inc()
	raw := r.PathValue("key")
	kb, err := hex.DecodeString(raw)
	if err != nil || len(kb) != len(store.Key{}) {
		writeError(w, http.StatusBadRequest, "malformed result key %q", raw)
		return
	}
	key := store.Key(kb)

	id := r.URL.Query().Get("id")
	e, ok := s.byID[id]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	opt := core.Options{Timeout: s.cfg.ComputeTimeout}
	for _, f := range core.AxisFields() {
		if v := r.URL.Query().Get("opt." + f); v != "" {
			if err := opt.SetAxis(f, v); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}
	if derived := store.KeyFor(id, opt); derived != key {
		writeError(w, http.StatusBadRequest,
			"key mismatch: request names %s but options derive %s", key, derived)
		return
	}

	etag := etagFor(key, core.FormatJSON)
	w.Header().Set("Etag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	if res, ok := s.cfg.Store.Peek(key, id); ok {
		sum := sha256.Sum256(res.JSON)
		w.Header().Set("Content-Type", core.FormatJSON.ContentType())
		w.Header().Set("X-Wsstudy-Key", key.String())
		w.Header().Set(cluster.DigestHeader, hex.EncodeToString(sum[:]))
		_, _ = w.Write(res.JSON)
		return
	}
	if s.cfg.Store.Health().Closed {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	// Cold: warm in the background, tell the peer to poll. The peer's
	// retry loop owns the waiting; this handler never blocks on compute.
	s.warmAsync(key, e, opt)
	s.internalComputing.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusAccepted, struct {
		Status string `json:"status"`
		Key    string `json:"key"`
	}{Status: "computing", Key: key.String()})
}

// warmAsync spawns at most one background store.Get per key. The Get
// runs detached from the triggering request (peers poll; none of them
// is "the" client) on a context carrying the server recorder; the
// store's own singleflight and slot queue bound the real work. ErrBusy
// and compute errors are dropped here — the next poll re-kicks the
// warm, and the store does not cache errors.
func (s *Server) warmAsync(key store.Key, e core.Experiment, opt core.Options) {
	s.warmMu.Lock()
	if s.warming[key] {
		s.warmMu.Unlock()
		return
	}
	s.warming[key] = true
	s.warmMu.Unlock()
	go func() {
		defer func() {
			s.warmMu.Lock()
			delete(s.warming, key)
			s.warmMu.Unlock()
		}()
		ctx := obs.With(context.Background(), s.cfg.Recorder)
		_, _ = s.cfg.Store.Get(ctx, e, opt)
	}()
}
