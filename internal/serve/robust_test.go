package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// TestHealthzDegradedStore: a disk fault degrades the store but not the
// service — /healthz stays 200 (a liveness restart would not help) while
// reporting the degraded subsystem, and reports keep serving.
func TestHealthzDegradedStore(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	var execs atomic.Int64
	rec := obs.New()
	_, hs := newTestServer(t, store.Config{Dir: t.TempDir()}, testRegistry(&execs, nil, nil), rec)

	if err := fault.Arm("store.disk.save", fault.Trigger{
		Mode: fault.ModeError, Err: errors.New("disk full"), Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp := get(t, hs.URL+"/v1/experiments/inst/report", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report during disk fault = %d, want 200 (degraded, not down)", resp.StatusCode)
	}

	resp = get(t, hs.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded = %d, want 200", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal([]byte(body(t, resp)), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Store.Disk.State != store.StateDegraded {
		t.Errorf("healthz = %+v, want overall degraded with a degraded disk", h)
	}
	if h.Store.Disk.Reason == "" {
		t.Error("degraded disk reported no reason")
	}
}

// TestHealthzDownWhenClosed: a closed store is the one condition that
// answers 503 — the process really cannot serve.
func TestHealthzDownWhenClosed(t *testing.T) {
	var execs atomic.Int64
	srv, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	if err := srv.cfg.Store.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := get(t, hs.URL+"/healthz", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close = %d, want 503", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "down" || !h.Store.Closed {
		t.Errorf("healthz = %+v, want down/closed", h)
	}
}

// TestReportFaultStatusMapping: the serve.report failpoint exercises
// writeStoreError end to end — an injected error wrapping a typed store
// error maps to that error's status, and a plain one to 500 with the
// error counter incremented.
func TestReportFaultStatusMapping(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	var execs atomic.Int64
	rec := obs.New()
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), rec)

	if err := fault.Arm("serve.report", fault.Trigger{
		Mode: fault.ModeError, Err: store.ErrBusy, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp := get(t, hs.URL+"/v1/experiments/inst/report", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("injected ErrBusy = %d, want 429", resp.StatusCode)
	}

	if err := fault.Arm("serve.report", fault.Trigger{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	resp = get(t, hs.URL+"/v1/experiments/inst/report", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("injected plain fault = %d, want 500", resp.StatusCode)
	}
	m := rec.Snapshot()
	if m.Counter(obs.ServeErrors) != 1 {
		t.Errorf("serve.errors = %d, want 1", m.Counter(obs.ServeErrors))
	}
	if m.Counter(obs.FaultTriggeredPrefix+"serve.report") != 2 {
		t.Errorf("fault.triggered.serve.report = %d, want 2",
			m.Counter(obs.FaultTriggeredPrefix+"serve.report"))
	}
	if execs.Load() != 0 {
		t.Errorf("faulted report requests still computed %d times", execs.Load())
	}
}

// TestShutdownRacesInflightSuite is the SIGTERM drain race under -race:
// Shutdown lands while /v1/suite is mid-fan-out with an experiment
// parked inside its Run. The drain must wait for the suite response,
// the response must be complete (every row present, the parked one OK),
// and the shutdown must finish clean once the run unblocks.
func TestShutdownRacesInflightSuite(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	st, err := store.New(store.Config{Recorder: rec, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	gate := make(chan struct{})
	srv, err := New(Config{Store: st, Registry: testRegistry(&execs, started, gate), Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type suiteOutcome struct {
		code int
		body string
	}
	suiteDone := make(chan suiteOutcome, 1)
	go func() {
		resp := get(t, "http://"+addr+"/v1/suite", nil)
		suiteDone <- suiteOutcome{resp.StatusCode, body(t, resp)}
	}()
	<-started // the suite fan-out reached the parked experiment

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while /v1/suite was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}

	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	out := <-suiteDone
	if out.code != http.StatusOK {
		t.Fatalf("in-flight suite finished %d, want 200 (drained)", out.code)
	}
	var sr suiteResponse
	if err := json.Unmarshal([]byte(out.body), &sr); err != nil {
		t.Fatalf("suite response did not parse after drain: %v", err)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("drained suite has %d rows, want 2", len(sr.Results))
	}
	for _, row := range sr.Results {
		if !row.OK {
			t.Errorf("drained suite row %s failed: %s", row.ID, row.Error)
		}
	}
}
