package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// testRegistry builds a tiny registry: "inst" counts executions, and
// "blocked" (when gate is non-nil) parks inside Run until released.
func testRegistry(execs *atomic.Int64, started chan<- struct{}, gate <-chan struct{}) []core.Experiment {
	reg := []core.Experiment{{
		ID:    "inst",
		Title: "instant experiment",
		Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
			execs.Add(1)
			r := &core.Report{Title: "instant"}
			r.Tables = append(r.Tables, core.Table{
				Title: "t", Header: []string{"scale"}, Rows: [][]string{{opt.Scale.String()}},
			})
			return r, nil
		},
	}}
	if gate != nil {
		reg = append(reg, core.Experiment{
			ID:    "blocked",
			Title: "parks until released",
			Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
				if started != nil {
					started <- struct{}{}
				}
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return &core.Report{Title: "blocked"}, nil
			},
		})
	}
	return reg
}

// newTestServer wires a server + store over the given registry.
func newTestServer(t *testing.T, scfg store.Config, reg []core.Experiment, rec *obs.Recorder) (*Server, *httptest.Server) {
	t.Helper()
	scfg.Recorder = rec
	st, err := store.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Registry: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		st.Close(context.Background())
	})
	return srv, hs
}

func get(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := (&http.Client{Timeout: 10 * time.Second}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	buf := make([]byte, 0, 4096)
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	return string(buf)
}

func TestListExperiments(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	resp := get(t, hs.URL+"/v1/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Experiments   []struct {
			ID         string `json:"id"`
			ReportPath string `json:"report_path"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &doc); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if doc.SchemaVersion != core.ReportSchemaVersion || len(doc.Experiments) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Experiments[0].ReportPath != "/v1/experiments/inst/report" {
		t.Errorf("report_path = %q", doc.Experiments[0].ReportPath)
	}
}

// TestReportJSONAndConditional covers the acceptance criterion: a first
// request computes and carries an ETag; repeating it is a store hit
// with the same ETag; revalidating with If-None-Match answers 304
// without executing anything.
func TestReportJSONAndConditional(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), rec)
	url := hs.URL + "/v1/experiments/inst/report?scale=quick"

	resp := get(t, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing/weak ETag %q", etag)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var v core.ReportV1
	if err := json.Unmarshal([]byte(body(t, resp)), &v); err != nil {
		t.Fatalf("report body not ReportV1 JSON: %v", err)
	}
	if v.SchemaVersion != core.ReportSchemaVersion || v.Title != "instant" {
		t.Errorf("report = %+v", v)
	}

	// Repeat: a store hit with a matching ETag.
	resp2 := get(t, url, nil)
	body(t, resp2)
	if resp2.Header.Get("Etag") != etag {
		t.Errorf("repeat ETag %q != %q", resp2.Header.Get("Etag"), etag)
	}
	if execs.Load() != 1 {
		t.Fatalf("repeat request recomputed (%d executions)", execs.Load())
	}
	if rec.Counter(obs.StoreHits).Value() != 1 {
		t.Errorf("store hits = %d, want 1", rec.Counter(obs.StoreHits).Value())
	}

	// Revalidation: 304, no body, nothing executed.
	resp3 := get(t, url, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status = %d, want 304", resp3.StatusCode)
	}
	if b := body(t, resp3); b != "" {
		t.Errorf("304 carried a body: %q", b)
	}
	if execs.Load() != 1 {
		t.Errorf("revalidation executed the experiment")
	}
	if rec.Counter(obs.ServeNotModified).Value() != 1 {
		t.Errorf("304 not counted")
	}

	// A different scale is different content: different ETag.
	respFull := get(t, hs.URL+"/v1/experiments/inst/report?scale=full", nil)
	body(t, respFull)
	if respFull.Header.Get("Etag") == etag {
		t.Errorf("quick and full share an ETag")
	}
}

// TestFormatNegotiation: ?format= and Accept drive the rendering, and
// CSV/JSON ETags differ (different representations).
func TestFormatNegotiation(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	base := hs.URL + "/v1/experiments/inst/report?scale=quick"

	jsonETag := ""
	{
		resp := get(t, base, nil)
		jsonETag = resp.Header.Get("Etag")
		body(t, resp)
	}
	{
		resp := get(t, base+"&format=text", nil)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("text Content-Type = %q", ct)
		}
		if b := body(t, resp); !strings.Contains(b, "== instant ==") {
			t.Errorf("text body wrong:\n%s", b)
		}
	}
	{
		resp := get(t, base, map[string]string{"Accept": "text/csv"})
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("csv Content-Type = %q", ct)
		}
		if resp.Header.Get("Etag") == jsonETag {
			t.Errorf("csv and json share an ETag")
		}
		body(t, resp)
	}
	{
		resp := get(t, base+"&format=xml", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown format status = %d, want 400", resp.StatusCode)
		}
		body(t, resp)
	}
	{
		resp := get(t, hs.URL+"/v1/experiments/inst/report?scale=mega", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown scale status = %d, want 400", resp.StatusCode)
		}
		body(t, resp)
	}
	{
		resp := get(t, hs.URL+"/v1/experiments/nosuch/report", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
		}
		body(t, resp)
	}
}

// TestBackpressure429: with the single slot held and no queue, a
// different key answers 429 with Retry-After.
func TestBackpressure429(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	started := make(chan struct{})
	gate := make(chan struct{})
	_, hs := newTestServer(t, store.Config{Slots: 1, MaxQueue: -1},
		testRegistry(&execs, started, gate), rec)

	blockedDone := make(chan int, 1)
	go func() {
		resp := get(t, hs.URL+"/v1/experiments/blocked/report", nil)
		body(t, resp)
		blockedDone <- resp.StatusCode
	}()
	<-started // the blocked run owns the only slot

	resp := get(t, hs.URL+"/v1/experiments/inst/report", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 missing Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &e); err != nil || e.Error == "" {
		t.Errorf("429 body not a JSON error: %v", err)
	}
	if rec.Counter(obs.ServeBusy).Value() != 1 {
		t.Errorf("429 not counted")
	}

	close(gate)
	if code := <-blockedDone; code != http.StatusOK {
		t.Fatalf("blocked request finished %d", code)
	}
}

// TestSuiteEndpoint: one document summarizing every experiment, with
// per-result ETags that match the report endpoint's.
func TestSuiteEndpoint(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	resp := get(t, hs.URL+"/v1/suite?scale=quick", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Scale   string `json:"scale"`
		Results []struct {
			ID   string `json:"id"`
			OK   bool   `json:"ok"`
			ETag string `json:"etag"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &doc); err != nil {
		t.Fatalf("suite not JSON: %v", err)
	}
	if doc.Scale != "quick" || len(doc.Results) != 1 || !doc.Results[0].OK {
		t.Fatalf("suite doc = %+v", doc)
	}

	rep := get(t, hs.URL+"/v1/experiments/inst/report?scale=quick", nil)
	body(t, rep)
	if rep.Header.Get("Etag") != doc.Results[0].ETag {
		t.Errorf("suite etag %q != report etag %q", doc.Results[0].ETag, rep.Header.Get("Etag"))
	}
	// The suite warmed the cache; the report request reused it.
	if execs.Load() != 1 {
		t.Errorf("executions = %d, want 1", execs.Load())
	}
}

// TestGracefulShutdown: Shutdown drains an in-flight request (the
// response completes), then the store refuses further work.
func TestGracefulShutdown(t *testing.T) {
	var execs atomic.Int64
	rec := obs.New()
	st, err := store.New(store.Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	gate := make(chan struct{})
	srv, err := New(Config{Store: st, Registry: testRegistry(&execs, started, gate), Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}

	inflight := make(chan int, 1)
	go func() {
		resp := get(t, "http://"+addr+"/v1/experiments/blocked/report", nil)
		body(t, resp)
		inflight <- resp.StatusCode
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight run, not cut it off.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while a request was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200 (drained)", code)
	}
	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Errorf("post-shutdown request succeeded")
	}
}

func TestHealthz(t *testing.T) {
	var execs atomic.Int64
	_, hs := newTestServer(t, store.Config{}, testRegistry(&execs, nil, nil), nil)
	resp := get(t, hs.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	body(t, resp)
}
