// Package memsys assembles the simulated multiprocessor: one cache (or
// working-set profiler) per processor, a write-invalidate directory tying
// them together, and a home-node map classifying misses as local or remote.
// It consumes a trace.Consumer stream, so any application kernel plugs in
// unchanged.
package memsys

import (
	"errors"
	"fmt"

	"wsstudy/internal/cache"
	"wsstudy/internal/coherence"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

// Metric names recorded by an instrumented System.
const (
	// MetricLocalMisses counts measured misses homed at the issuing
	// processor.
	MetricLocalMisses = "memsys.local_misses"
	// MetricRemoteMisses counts measured misses homed elsewhere — the
	// communication the paper's node-granularity analysis prices.
	MetricRemoteMisses = "memsys.remote_misses"
)

// ErrInvalidConfig is wrapped by every configuration error New returns, so
// callers can classify bad-configuration failures with errors.Is.
var ErrInvalidConfig = errors.New("memsys: invalid configuration")

// Distribution says how the shared address space maps to home nodes.
type Distribution uint8

const (
	// Interleaved assigns consecutive lines to consecutive processors
	// round-robin, the paper's choice for volume rendering (minimizes
	// hot-spotting when access patterns shift between frames).
	Interleaved Distribution = iota
	// Blocked splits the address space into one contiguous chunk per
	// processor, modelling "each processor's partition lives in its own
	// local memory" for the regular applications.
	Blocked
)

// Config parameterizes a System.
type Config struct {
	PEs      int          // number of processors (must be positive)
	LineSize uint32       // cache line size in bytes (power of two)
	Dist     Distribution // home-node mapping
	// Extent is the size in bytes of the address space for Blocked
	// distribution (ignored for Interleaved). Zero defaults to 1 GiB.
	Extent uint64
	// WarmupEpochs is how many leading epochs update state without being
	// measured (the paper's cold-start exclusion). Epoch boundaries come
	// from the kernel via BeginEpoch.
	WarmupEpochs int
	// Profile selects working-set profiling (a StackProfiler per PE)
	// instead of concrete caches. Exactly one of Profile or
	// CacheCapacity must be set.
	Profile bool
	// CacheCapacity is the per-PE cache capacity in lines when Profile is
	// false.
	CacheCapacity int
	// Assoc is the cache associativity when Profile is false; 0 means
	// fully associative.
	Assoc int
	// ProfilePE, when >= 0 with Profile set, attaches a profiler to that
	// single processor only (the paper measures per-processor working
	// sets; profiling one PE of a symmetric computation is cheaper and
	// equivalent). -1 profiles every PE.
	ProfilePE int
	// Shards selects the engine Open builds: 0 is the serial System, a
	// positive count is the region-sharded engine with that many
	// directory shards. The sharded engine is bit-identical to the serial
	// one — Shards changes wall-clock behaviour only, never a statistic —
	// which is why it is excluded from core's canonical option encoding.
	Shards int
	// SampleRate selects profiler fidelity when Profile is set: 0 or 1
	// attaches exact stack-distance profilers, a power of two ≥ 2
	// attaches spatially-sampled ones (cache.SampledStackProfiler) that
	// profile a hashed 1/R subset of the line space. Unlike Shards this
	// changes reported statistics, so core includes it in the canonical
	// option encoding.
	SampleRate int
}

// Stats aggregates the system-level classification of misses.
type Stats struct {
	LocalMisses  uint64 // misses homed at the issuing processor
	RemoteMisses uint64 // misses homed elsewhere
}

// System is the simulated cache-coherent multiprocessor.
type System struct {
	cfg       Config
	shift     uint             // log2(LineSize), precomputed once
	caches    []cache.Cache    // per PE when !Profile (nil entries never occur)
	profilers []cache.Profiler // per PE when Profile (nil when not profiled)
	dir       *coherence.Directory
	stats     Stats
	epoch     int
	measuring bool

	// Run-scope miss-classification counters, live only after Instrument.
	mLocal  *obs.Counter
	mRemote *obs.Counter
}

// Instrument attaches run-scope counters from rec to the system and every
// component it owns: local/remote miss classification here, transaction
// counters on the directory, access/query counters on the profilers, and
// eviction counters on the concrete caches. A nil rec leaves everything
// uninstrumented; experiments call it unconditionally with obs.From(ctx).
func (s *System) Instrument(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	s.mLocal = rec.Counter(MetricLocalMisses)
	s.mRemote = rec.Counter(MetricRemoteMisses)
	s.dir.Instrument(rec)
	for _, p := range s.profilers {
		if p != nil {
			p.Instrument(rec)
		}
	}
	for _, c := range s.caches {
		cache.InstrumentCache(c, rec)
	}
}

// normalize validates cfg and fills defaults; New and Open share it so the
// serial and sharded engines accept exactly the same configurations.
func normalize(cfg Config) (Config, error) {
	if cfg.PEs <= 0 {
		return cfg, fmt.Errorf("%w: PEs must be positive, got %d", ErrInvalidConfig, cfg.PEs)
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 8
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		return cfg, fmt.Errorf("%w: line size %d is not a power of two", ErrInvalidConfig, cfg.LineSize)
	}
	if cfg.Extent == 0 {
		cfg.Extent = 1 << 30
	}
	if cfg.Profile == (cfg.CacheCapacity > 0) {
		return cfg, fmt.Errorf("%w: exactly one of Profile or CacheCapacity must be set", ErrInvalidConfig)
	}
	if cfg.CacheCapacity < 0 {
		return cfg, fmt.Errorf("%w: CacheCapacity must not be negative, got %d", ErrInvalidConfig, cfg.CacheCapacity)
	}
	if cfg.Assoc < 0 {
		return cfg, fmt.Errorf("%w: Assoc must not be negative, got %d", ErrInvalidConfig, cfg.Assoc)
	}
	if cfg.Profile && (cfg.ProfilePE < -1 || cfg.ProfilePE >= cfg.PEs) {
		return cfg, fmt.Errorf("%w: ProfilePE %d out of range [-1, %d)", ErrInvalidConfig, cfg.ProfilePE, cfg.PEs)
	}
	if cfg.Shards < 0 {
		return cfg, fmt.Errorf("%w: Shards must not be negative, got %d", ErrInvalidConfig, cfg.Shards)
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 1
	}
	if cfg.SampleRate < 1 || cfg.SampleRate&(cfg.SampleRate-1) != 0 {
		return cfg, fmt.Errorf("%w: SampleRate %d is not a power of two ≥ 1", ErrInvalidConfig, cfg.SampleRate)
	}
	return cfg, nil
}

// buildPEs constructs the per-processor machinery — concrete caches or
// working-set profilers — plus the invalidator slice that wires them to a
// directory. The serial and sharded engines share it so both simulate the
// identical machine; cfg must already be normalized. Slots without a unit
// (unprofiled PEs) stay nil in every returned slice.
func buildPEs(cfg Config, measuring bool) (caches []cache.Cache, profilers []cache.Profiler, inv []coherence.Invalidator, err error) {
	inv = make([]coherence.Invalidator, cfg.PEs)
	if cfg.Profile {
		profilers = make([]cache.Profiler, cfg.PEs)
		for pe := 0; pe < cfg.PEs; pe++ {
			if cfg.ProfilePE >= 0 && pe != cfg.ProfilePE {
				continue
			}
			p, perr := cache.NewProfiler(cfg.LineSize, cfg.SampleRate)
			if perr != nil {
				return nil, nil, nil, fmt.Errorf("%w: %w", ErrInvalidConfig, perr)
			}
			p.SetMeasuring(measuring)
			profilers[pe] = p
			inv[pe] = p
		}
		return nil, profilers, inv, nil
	}
	caches = make([]cache.Cache, cfg.PEs)
	for pe := 0; pe < cfg.PEs; pe++ {
		var c cache.Cache
		var cerr error
		if cfg.Assoc > 0 {
			c, cerr = cache.NewSetAssoc(cfg.CacheCapacity, cfg.Assoc, cfg.LineSize)
		} else {
			c, cerr = cache.NewLRU(cfg.CacheCapacity, cfg.LineSize)
		}
		if cerr != nil {
			return nil, nil, nil, fmt.Errorf("%w: %w", ErrInvalidConfig, cerr)
		}
		caches[pe] = c
		inv[pe] = c
	}
	return caches, nil, inv, nil
}

// homeOf is the home-node map shared by both engines: the processor whose
// local memory holds addr under cfg's distribution.
func homeOf(cfg *Config, shift uint, addr uint64) int {
	switch cfg.Dist {
	case Interleaved:
		return int((addr >> shift) % uint64(cfg.PEs))
	default: // Blocked
		per := cfg.Extent / uint64(cfg.PEs)
		if per == 0 {
			per = 1
		}
		pe := addr / per
		if pe >= uint64(cfg.PEs) {
			pe = uint64(cfg.PEs) - 1
		}
		return int(pe)
	}
}

// accessPE touches one line in pe's cache or profiler and reports whether
// it (certainly) missed; both engines classify misses through it. Profiled
// PEs report misses only in the infinite-cache sense (cold or coherence),
// since per-size misses are resolved after the fact. A PE with no unit
// attached never misses.
func accessPE(caches []cache.Cache, profilers []cache.Profiler, pe int, addr uint64, read bool) bool {
	if caches != nil {
		return caches[pe].Access(addr, read).Miss()
	}
	p := profilers[pe]
	if p == nil {
		return false
	}
	coldR, coldW := p.ColdMisses()
	cohR, cohW := p.CoherenceMisses()
	before := coldR + coldW + cohR + cohW
	p.Access(addr, 1, read)
	coldR, coldW = p.ColdMisses()
	cohR, cohW = p.CoherenceMisses()
	return coldR+coldW+cohR+cohW > before
}

// New builds a serial System from cfg. All configuration errors wrap
// ErrInvalidConfig (and, where a subsystem rejected the input, that
// subsystem's own invalid-configuration sentinel). Open is the
// engine-selecting factory; New always returns the serial engine.
func New(cfg Config) (*System, error) {
	cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, shift: lineShift(cfg.LineSize), measuring: cfg.WarmupEpochs == 0}
	var invalidators []coherence.Invalidator
	s.caches, s.profilers, invalidators, err = buildPEs(cfg, s.measuring)
	if err != nil {
		return nil, err
	}
	dir, err := coherence.NewDirectory(cfg.PEs, cfg.LineSize, invalidators)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	s.dir = dir
	return s, nil
}

// MustNew is New for configurations known statically valid.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Home reports the processor whose local memory holds addr.
func (s *System) Home(addr uint64) int {
	return homeOf(&s.cfg, s.shift, addr)
}

// Ref consumes one reference: the issuing PE's cache is accessed line by
// line, the directory sees the transaction, and misses are classified
// local or remote by home node.
func (s *System) Ref(r trace.Ref) {
	if r.Size == 0 {
		return
	}
	s.refOne(r)
}

// Refs consumes a block of references in emission order. Each reference is
// still processed to completion — cache access, directory transaction,
// invalidation delivery — before the next begins: deferring directory work
// to the end of a block would reorder invalidations relative to accesses
// and change every coherence statistic. The win is the hoisted dispatch
// and per-call prologue, not a changed algorithm.
func (s *System) Refs(block []trace.Ref) {
	for i := range block {
		if block[i].Size == 0 {
			continue
		}
		s.refOne(block[i])
	}
}

func (s *System) refOne(r trace.Ref) {
	read := r.Kind == trace.Read
	first := r.Addr >> s.shift
	last := (r.Addr + uint64(r.Size) - 1) >> s.shift
	for line := first; ; line++ {
		addr := line << s.shift
		miss := s.accessOne(r.PE, addr, read)
		if read {
			s.dir.ReadLine(r.PE, line)
		} else {
			s.dir.WriteLine(r.PE, line)
		}
		if miss && s.measuring {
			if s.Home(addr) == r.PE {
				s.stats.LocalMisses++
				s.mLocal.Inc()
			} else {
				s.stats.RemoteMisses++
				s.mRemote.Inc()
			}
		}
		if line == last {
			break
		}
	}
}

// accessOne touches one line in the issuing PE's cache or profiler and
// reports whether it (certainly) missed; see accessPE.
func (s *System) accessOne(pe int, addr uint64, read bool) bool {
	return accessPE(s.caches, s.profilers, pe, addr, read)
}

// BeginEpoch advances the epoch counter and flips measurement on once the
// warm-up epochs have passed.
func (s *System) BeginEpoch(n int) {
	s.epoch = n
	on := n >= s.cfg.WarmupEpochs
	if on == s.measuring {
		return
	}
	s.measuring = on
	for _, p := range s.profilers {
		if p != nil {
			p.SetMeasuring(on)
		}
	}
	if on {
		for _, c := range s.caches {
			c.ResetStats()
		}
		s.dir.ResetStats()
		s.stats = Stats{}
	}
}

// Measuring reports whether statistics are currently collected.
func (s *System) Measuring() bool { return s.measuring }

// Profiler returns the profiler attached to pe, or nil.
func (s *System) Profiler(pe int) cache.Profiler {
	if s.profilers == nil {
		return nil
	}
	return s.profilers[pe]
}

// Cache returns the concrete cache of pe (nil in profile mode).
func (s *System) Cache(pe int) cache.Cache {
	if s.caches == nil {
		return nil
	}
	return s.caches[pe]
}

// CacheStats aggregates the stats of all concrete caches.
func (s *System) CacheStats() cache.Stats {
	var total cache.Stats
	for _, c := range s.caches {
		total.Add(c.Stats())
	}
	return total
}

// Directory exposes the coherence directory (for protocol statistics).
func (s *System) Directory() *coherence.Directory { return s.dir }

// DirectoryStats returns the coherence protocol statistics. It is the
// engine-neutral accessor Machine callers use instead of Directory().
func (s *System) DirectoryStats() coherence.Stats { return s.dir.Stats() }

// Stats returns the local/remote miss classification.
func (s *System) Stats() Stats { return s.stats }

// PEs reports the processor count.
func (s *System) PEs() int { return s.cfg.PEs }

// LineSize reports the configured line size.
func (s *System) LineSize() uint32 { return s.cfg.LineSize }

// Close satisfies Machine; the serial engine owns no goroutines, so it is
// a no-op that never fails.
func (s *System) Close() error { return nil }

func lineShift(lineSize uint32) uint {
	s := uint(0)
	for l := lineSize; l > 1; l >>= 1 {
		s++
	}
	return s
}

var _ trace.EpochConsumer = (*System)(nil)
var _ trace.BlockConsumer = (*System)(nil)
