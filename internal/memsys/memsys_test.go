package memsys

import (
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{PEs: 0, Profile: true},
		{PEs: 2}, // neither profile nor capacity
		{PEs: 2, Profile: true, CacheCapacity: 4}, // both
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := New(Config{PEs: 2, CacheCapacity: 4, ProfilePE: -1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{PEs: 0})
}

func TestHomeInterleaved(t *testing.T) {
	s := MustNew(Config{PEs: 4, LineSize: 8, Dist: Interleaved, CacheCapacity: 4, ProfilePE: -1})
	// Lines 0,1,2,3,4 -> PEs 0,1,2,3,0.
	for line, want := range []int{0, 1, 2, 3, 0} {
		if got := s.Home(uint64(line) * 8); got != want {
			t.Errorf("Home(line %d) = %d, want %d", line, got, want)
		}
	}
}

func TestHomeBlocked(t *testing.T) {
	s := MustNew(Config{PEs: 4, LineSize: 8, Dist: Blocked, Extent: 4096, CacheCapacity: 4, ProfilePE: -1})
	if got := s.Home(0); got != 0 {
		t.Errorf("Home(0) = %d, want 0", got)
	}
	if got := s.Home(1024); got != 1 {
		t.Errorf("Home(1024) = %d, want 1", got)
	}
	if got := s.Home(4095); got != 3 {
		t.Errorf("Home(4095) = %d, want 3", got)
	}
	// Addresses beyond the extent clamp to the last PE.
	if got := s.Home(1 << 20); got != 3 {
		t.Errorf("Home(huge) = %d, want 3", got)
	}
}

func TestLocalRemoteClassification(t *testing.T) {
	s := MustNew(Config{PEs: 2, LineSize: 8, Dist: Blocked, Extent: 1024, CacheCapacity: 4, ProfilePE: -1})
	// PE0 touches its own half: local miss.
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read})
	// PE0 touches PE1's half: remote miss.
	s.Ref(trace.Ref{PE: 0, Addr: 512, Size: 8, Kind: trace.Read})
	st := s.Stats()
	if st.LocalMisses != 1 || st.RemoteMisses != 1 {
		t.Fatalf("stats = %+v, want 1 local + 1 remote", st)
	}
	// Re-access hits: no new misses.
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read})
	if got := s.Stats(); got != st {
		t.Fatalf("hit changed miss stats: %+v", got)
	}
}

func TestCoherenceAcrossPEs(t *testing.T) {
	s := MustNew(Config{PEs: 2, LineSize: 8, CacheCapacity: 64, ProfilePE: -1})
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read})
	s.Ref(trace.Ref{PE: 1, Addr: 0, Size: 8, Kind: trace.Write})
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read})
	cs := s.Cache(0).Stats()
	if cs.Coherence != 1 {
		t.Fatalf("PE0 coherence misses = %d, want 1 (stats %+v)", cs.Coherence, cs)
	}
}

func TestProfileModeSinglePE(t *testing.T) {
	s := MustNew(Config{PEs: 4, LineSize: 8, Profile: true, ProfilePE: 2})
	if s.Profiler(0) != nil || s.Profiler(2) == nil {
		t.Fatal("only PE 2 should carry a profiler")
	}
	if s.Cache(0) != nil {
		t.Fatal("profile mode must not build concrete caches")
	}
	s.Ref(trace.Ref{PE: 2, Addr: 0, Size: 8, Kind: trace.Read})
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Write}) // invalidates PE2
	s.Ref(trace.Ref{PE: 2, Addr: 0, Size: 8, Kind: trace.Read})
	cohR, _ := s.Profiler(2).CoherenceMisses()
	if cohR != 1 {
		t.Fatalf("profiler coherence read misses = %d, want 1", cohR)
	}
}

func TestWarmupEpochs(t *testing.T) {
	s := MustNew(Config{PEs: 1, LineSize: 8, Profile: true, ProfilePE: 0, WarmupEpochs: 2})
	gen := func() {
		for i := 0; i < 8; i++ {
			s.Ref(trace.Ref{PE: 0, Addr: uint64(i) * 8, Size: 8, Kind: trace.Read})
		}
	}
	for epoch := 0; epoch < 4; epoch++ {
		s.BeginEpoch(epoch)
		gen()
	}
	p := s.Profiler(0)
	// 2 measured epochs x 8 refs.
	if p.Accesses() != 16 {
		t.Fatalf("measured accesses = %d, want 16", p.Accesses())
	}
	cr, _ := p.ColdMisses()
	if cr != 0 {
		t.Fatalf("cold misses = %d, want 0 (warmed up)", cr)
	}
	if got := p.MissesAt(8).ReadMisses; got != 0 {
		t.Fatalf("8-line cache misses = %d, want 0", got)
	}
	if !s.Measuring() {
		t.Fatal("should be measuring after warm-up")
	}
}

func TestWarmupResetsCacheStats(t *testing.T) {
	s := MustNew(Config{PEs: 1, LineSize: 8, CacheCapacity: 4, ProfilePE: -1, WarmupEpochs: 1})
	s.BeginEpoch(0)
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read})
	s.BeginEpoch(1)
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 8, Kind: trace.Read}) // warmed: hit
	cs := s.CacheStats()
	if cs.Accesses != 1 || cs.Misses() != 0 {
		t.Fatalf("cache stats = %+v, want 1 access 0 misses", cs)
	}
}

func TestSetAssociativeMode(t *testing.T) {
	s := MustNew(Config{PEs: 1, LineSize: 8, CacheCapacity: 4, Assoc: 1, ProfilePE: -1})
	if _, ok := s.Cache(0).(*cache.SetAssoc); !ok {
		t.Fatalf("Assoc=1 should build a SetAssoc cache, got %T", s.Cache(0))
	}
}

func TestMultiLineRef(t *testing.T) {
	s := MustNew(Config{PEs: 1, LineSize: 8, CacheCapacity: 16, ProfilePE: -1})
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 24, Kind: trace.Read}) // 3 lines
	cs := s.CacheStats()
	if cs.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3 (one per line)", cs.Accesses)
	}
	if s.Stats().LocalMisses != 3 {
		t.Fatalf("local misses = %d, want 3", s.Stats().LocalMisses)
	}
}

func TestZeroSizeRefIgnored(t *testing.T) {
	s := MustNew(Config{PEs: 1, LineSize: 8, CacheCapacity: 4, ProfilePE: -1})
	s.Ref(trace.Ref{PE: 0, Addr: 0, Size: 0, Kind: trace.Read})
	if s.CacheStats().Accesses != 0 {
		t.Fatal("zero-size ref must be ignored")
	}
}

func TestDefaults(t *testing.T) {
	s := MustNew(Config{PEs: 2, CacheCapacity: 4, ProfilePE: -1})
	if s.LineSize() != 8 {
		t.Fatalf("default line size = %d, want 8", s.LineSize())
	}
	if s.PEs() != 2 {
		t.Fatalf("PEs = %d", s.PEs())
	}
	if s.Directory() == nil {
		t.Fatal("directory must exist")
	}
}
