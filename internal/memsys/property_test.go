package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wsstudy/internal/trace"
)

// TestHomeMappingProperties: every address maps to a valid processor;
// Blocked homes are monotone in the address; Interleaved homes cycle with
// period PEs*lineSize.
func TestHomeMappingProperties(t *testing.T) {
	check := func(pesRaw, distRaw uint8, addr uint64) bool {
		pes := int(pesRaw%16) + 1
		dist := Interleaved
		if distRaw%2 == 1 {
			dist = Blocked
		}
		s := MustNew(Config{
			PEs: pes, LineSize: 8, Dist: dist, Extent: 1 << 20,
			CacheCapacity: 4, ProfilePE: -1,
		})
		addr %= 1 << 21 // include out-of-extent addresses for Blocked
		h := s.Home(addr)
		if h < 0 || h >= pes {
			return false
		}
		switch dist {
		case Interleaved:
			// Every byte of a line shares the home; the next line is on
			// the next processor (mod PEs).
			line := addr &^ 7
			for off := uint64(0); off < 8; off++ {
				if s.Home(line+off) != s.Home(line) {
					return false
				}
			}
			if s.Home(line+8) != (s.Home(line)+1)%pes {
				return false
			}
		case Blocked:
			if addr+512 < 1<<21 && s.Home(addr+512) < h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMissConservation: for any trace, local+remote misses equal the sum
// of per-cache miss counts (every miss is classified exactly once).
func TestMissConservation(t *testing.T) {
	check := func(seed int64) bool {
		const pes = 4
		s := MustNew(Config{
			PEs: pes, LineSize: 8, Dist: Interleaved,
			CacheCapacity: 8, ProfilePE: -1,
		})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			kind := trace.Read
			if rng.Intn(3) == 0 {
				kind = trace.Write
			}
			s.Ref(trace.Ref{
				PE:   rng.Intn(pes),
				Addr: uint64(rng.Intn(256)) * 8,
				Size: 8,
				Kind: kind,
			})
		}
		st := s.Stats()
		cs := s.CacheStats()
		return st.LocalMisses+st.RemoteMisses == cs.Misses()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceSingleWriterProperty: after any trace, a line the directory
// says is dirty has exactly one sharer, and re-reading it from another PE
// downgrades it.
func TestCoherenceSingleWriterProperty(t *testing.T) {
	check := func(seed int64) bool {
		const pes = 3
		s := MustNew(Config{PEs: pes, LineSize: 8, CacheCapacity: 16, ProfilePE: -1})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			kind := trace.Read
			if rng.Intn(2) == 0 {
				kind = trace.Write
			}
			s.Ref(trace.Ref{
				PE: rng.Intn(pes), Addr: uint64(rng.Intn(64)) * 8, Size: 8, Kind: kind,
			})
		}
		for line := uint64(0); line < 64; line++ {
			addr := line * 8
			if s.Directory().IsDirty(addr) && s.Directory().Sharers(addr) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
