package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wsstudy/internal/trace"
)

// TestHomeMappingProperties: every address maps to a valid processor;
// Blocked homes are monotone in the address; Interleaved homes cycle with
// period PEs*lineSize.
func TestHomeMappingProperties(t *testing.T) {
	check := func(pesRaw, distRaw uint8, addr uint64) bool {
		pes := int(pesRaw%16) + 1
		dist := Interleaved
		if distRaw%2 == 1 {
			dist = Blocked
		}
		s := MustNew(Config{
			PEs: pes, LineSize: 8, Dist: dist, Extent: 1 << 20,
			CacheCapacity: 4, ProfilePE: -1,
		})
		addr %= 1 << 21 // include out-of-extent addresses for Blocked
		h := s.Home(addr)
		if h < 0 || h >= pes {
			return false
		}
		switch dist {
		case Interleaved:
			// Every byte of a line shares the home; the next line is on
			// the next processor (mod PEs).
			line := addr &^ 7
			for off := uint64(0); off < 8; off++ {
				if s.Home(line+off) != s.Home(line) {
					return false
				}
			}
			if s.Home(line+8) != (s.Home(line)+1)%pes {
				return false
			}
		case Blocked:
			if addr+512 < 1<<21 && s.Home(addr+512) < h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMissConservation: for any trace, local+remote misses equal the sum
// of per-cache miss counts (every miss is classified exactly once).
func TestMissConservation(t *testing.T) {
	check := func(seed int64) bool {
		const pes = 4
		s := MustNew(Config{
			PEs: pes, LineSize: 8, Dist: Interleaved,
			CacheCapacity: 8, ProfilePE: -1,
		})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			kind := trace.Read
			if rng.Intn(3) == 0 {
				kind = trace.Write
			}
			s.Ref(trace.Ref{
				PE:   rng.Intn(pes),
				Addr: uint64(rng.Intn(256)) * 8,
				Size: 8,
				Kind: kind,
			})
		}
		st := s.Stats()
		cs := s.CacheStats()
		return st.LocalMisses+st.RemoteMisses == cs.Misses()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// randTrace generates the reference stream shared by the sharded-vs-serial
// properties: random PE, small hot address range (to force sharing),
// mixed read/write, occasional multi-line references, epoch boundaries
// every epochLen refs.
func randTrace(rng *rand.Rand, pes, refs, epochLen int, m Machine) {
	epoch := 0
	m.BeginEpoch(0)
	for i := 0; i < refs; i++ {
		if epochLen > 0 && i > 0 && i%epochLen == 0 {
			epoch++
			m.BeginEpoch(epoch)
		}
		kind := trace.Read
		if rng.Intn(3) == 0 {
			kind = trace.Write
		}
		size := uint32(8)
		if rng.Intn(16) == 0 {
			size = 8 * uint32(1+rng.Intn(4)) // straddle lines
		}
		m.Ref(trace.Ref{
			PE:   rng.Intn(pes),
			Addr: uint64(rng.Intn(512)) * 8,
			Size: size,
			Kind: kind,
		})
	}
}

// TestShardedMatchesSerialProperty: across random P / shard-count /
// distribution / cache-vs-profile combinations, the sharded engine's miss
// classification, cache stats, and coherence protocol stats (invalidations,
// downgrades included) are bit-identical to the serial engine's on the
// same trace.
func TestShardedMatchesSerialProperty(t *testing.T) {
	check := func(seed int64, pesRaw, shardsRaw, distRaw, modeRaw uint8) bool {
		pes := int(pesRaw%12) + 1
		shards := int(shardsRaw%6) + 1
		cfg := Config{
			PEs:          pes,
			LineSize:     8,
			Dist:         Interleaved,
			Extent:       1 << 16,
			WarmupEpochs: int(seed&1) + 1,
		}
		if distRaw%2 == 1 {
			cfg.Dist = Blocked
		}
		profile := modeRaw%2 == 1
		if profile {
			cfg.Profile = true
			cfg.ProfilePE = -1
			if modeRaw%4 == 3 {
				cfg.ProfilePE = pes - 1 // single-PE profiling, nil slots elsewhere
			}
		} else {
			cfg.CacheCapacity = 16
			cfg.Assoc = int(modeRaw % 3) // FA, direct-mapped, 2-way
			cfg.ProfilePE = -1
		}

		serial := MustOpen(cfg)
		shCfg := cfg
		shCfg.Shards = shards
		sharded := MustOpen(shCfg)

		const refs, epochLen = 3000, 700
		randTrace(rand.New(rand.NewSource(seed)), pes, refs, epochLen, serial)
		randTrace(rand.New(rand.NewSource(seed)), pes, refs, epochLen, sharded)

		if err := sharded.Close(); err != nil {
			t.Logf("close: %v", err)
			return false
		}
		if serial.Stats() != sharded.Stats() {
			t.Logf("pes=%d shards=%d: sys stats %+v vs %+v", pes, shards, serial.Stats(), sharded.Stats())
			return false
		}
		if serial.DirectoryStats() != sharded.DirectoryStats() {
			t.Logf("pes=%d shards=%d: dir stats %+v vs %+v", pes, shards, serial.DirectoryStats(), sharded.DirectoryStats())
			return false
		}
		if !profile {
			if serial.CacheStats() != sharded.CacheStats() {
				t.Logf("pes=%d shards=%d: cache stats %+v vs %+v", pes, shards, serial.CacheStats(), sharded.CacheStats())
				return false
			}
			for pe := 0; pe < pes; pe++ {
				if serial.Cache(pe).Stats() != sharded.Cache(pe).Stats() {
					return false
				}
			}
		} else {
			for pe := 0; pe < pes; pe++ {
				sp, pp := serial.Profiler(pe), sharded.Profiler(pe)
				if (sp == nil) != (pp == nil) {
					return false
				}
				if sp == nil {
					continue
				}
				scR, scW := sp.ColdMisses()
				pcR, pcW := pp.ColdMisses()
				shR, shW := sp.CoherenceMisses()
				phR, phW := pp.CoherenceMisses()
				if scR != pcR || scW != pcW || shR != phR || shW != phW {
					return false
				}
				if sp.MissesAt(64) != pp.MissesAt(64) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDeterminismProperty: the same seed twice through the sharded
// engine yields identical statistics — no dependence on goroutine timing.
func TestShardedDeterminismProperty(t *testing.T) {
	check := func(seed int64, shardsRaw uint8) bool {
		const pes = 6
		shards := int(shardsRaw%5) + 1
		run := func() (Stats, interface{}) {
			m := MustOpen(Config{
				PEs: pes, LineSize: 8, CacheCapacity: 12, ProfilePE: -1,
				WarmupEpochs: 1, Shards: shards,
			})
			randTrace(rand.New(rand.NewSource(seed)), pes, 4000, 900, m)
			st := m.Stats()
			ds := m.DirectoryStats()
			if err := m.Close(); err != nil {
				t.Logf("close: %v", err)
			}
			return st, ds
		}
		s1, d1 := run()
		s2, d2 := run()
		return s1 == s2 && d1 == d2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceSingleWriterProperty: after any trace, a line the directory
// says is dirty has exactly one sharer, and re-reading it from another PE
// downgrades it.
func TestCoherenceSingleWriterProperty(t *testing.T) {
	check := func(seed int64) bool {
		const pes = 3
		s := MustNew(Config{PEs: pes, LineSize: 8, CacheCapacity: 16, ProfilePE: -1})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			kind := trace.Read
			if rng.Intn(2) == 0 {
				kind = trace.Write
			}
			s.Ref(trace.Ref{
				PE: rng.Intn(pes), Addr: uint64(rng.Intn(64)) * 8, Size: 8, Kind: kind,
			})
		}
		for line := uint64(0); line < 64; line++ {
			addr := line * 8
			if s.Directory().IsDirty(addr) && s.Directory().Sharers(addr) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
