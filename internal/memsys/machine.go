package memsys

import (
	"wsstudy/internal/cache"
	"wsstudy/internal/coherence"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

// Machine is the engine-neutral face of the simulated multiprocessor.
// System (serial) and Sharded (region-partitioned, W directory shards)
// both satisfy it and are bit-identical in every statistic; Open picks
// between them by Config.Shards, so experiments are written once against
// Machine and scale to paper-size P by flipping one knob.
//
// Engine-specific caveats live behind the accessors: on the sharded
// engine, every statistics read (Stats, CacheStats, DirectoryStats,
// Profiler, Cache) drains the pipeline to a barrier first, so results are
// always a consistent post-barrier snapshot. Close releases engine
// resources (worker goroutines on the sharded engine) and reports any
// failure-injection error the run recorded; it is idempotent, and the
// sharded engine must be closed before its results are discarded.
type Machine interface {
	trace.EpochConsumer // Ref + BeginEpoch
	trace.BlockConsumer // Ref + Refs

	// Instrument attaches run-scope counters from rec to the engine and
	// every component it owns. Nil leaves the machine uninstrumented.
	Instrument(rec *obs.Recorder)
	// Home reports the processor whose local memory holds addr.
	Home(addr uint64) int
	// Measuring reports whether statistics are currently collected.
	Measuring() bool
	// Profiler returns pe's working-set profiler — exact or sampled per
	// Config.SampleRate — or nil.
	Profiler(pe int) cache.Profiler
	// Cache returns pe's concrete cache (nil in profile mode).
	Cache(pe int) cache.Cache
	// CacheStats aggregates the stats of all concrete caches.
	CacheStats() cache.Stats
	// DirectoryStats returns the coherence protocol statistics.
	DirectoryStats() coherence.Stats
	// Stats returns the local/remote miss classification.
	Stats() Stats
	// PEs reports the processor count.
	PEs() int
	// LineSize reports the configured line size.
	LineSize() uint32
	// Close releases engine resources and reports any recorded error.
	Close() error
}

// Open builds the machine cfg selects: the serial System when cfg.Shards
// is zero, the region-sharded engine when it is positive. Negative shard
// counts are rejected with ErrInvalidConfig.
func Open(cfg Config) (Machine, error) {
	cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		return New(cfg)
	}
	return newSharded(cfg)
}

// MustOpen is Open for configurations known statically valid.
func MustOpen(cfg Config) Machine {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

var _ Machine = (*System)(nil)
