package memsys

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"wsstudy/internal/fault"
	"wsstudy/internal/trace"
)

// feedShardedTrace drives a short deterministic trace with an epoch flip
// (so memsys.barrier fires) through a fresh sharded machine and returns
// the machine un-closed.
func feedShardedTrace(t *testing.T) Machine {
	t.Helper()
	m := MustOpen(Config{
		PEs: 4, LineSize: 8, CacheCapacity: 8, ProfilePE: -1,
		WarmupEpochs: 1, Shards: 3,
	})
	randTrace(rand.New(rand.NewSource(9)), 4, 3000, 800, m)
	return m
}

// TestShardedFailpointsSurfaceErrors arms each sharded-engine failpoint in
// error mode and checks the contract: the run's statistics are still the
// serial engine's exactly (an injected error never skips work or forks
// state), while the failure surfaces through the Stopper poll and Close.
func TestShardedFailpointsSurfaceErrors(t *testing.T) {
	serial := MustOpen(Config{
		PEs: 4, LineSize: 8, CacheCapacity: 8, ProfilePE: -1, WarmupEpochs: 1,
	})
	randTrace(rand.New(rand.NewSource(9)), 4, 3000, 800, serial)
	want := serial.Stats()
	wantDir := serial.DirectoryStats()

	for _, name := range []string{
		"coherence.shard.apply",
		"memsys.shard.publish",
		"memsys.barrier",
	} {
		t.Run(name, func(t *testing.T) {
			defer fault.DisarmAll()
			if err := fault.Arm(name, fault.Trigger{Mode: fault.ModeError}); err != nil {
				t.Fatal(err)
			}
			m := feedShardedTrace(t)
			if err := trace.Canceled(m); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Canceled = %v, want ErrInjected via the Stopper poll", err)
			}
			st, ds := m.Stats(), m.DirectoryStats()
			if err := m.Close(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Close = %v, want ErrInjected", err)
			}
			if st != want || ds != wantDir {
				t.Fatalf("injected %s changed statistics: %+v/%+v, want %+v/%+v",
					name, st, ds, want, wantDir)
			}
			// Idempotent: a second Close still reports the recorded error.
			if err := m.Close(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("second Close = %v, want ErrInjected", err)
			}
		})
	}
}

// TestShardedFailpointDelayKeepsExactness arms delay mode at each seam —
// skewing shard progress and stalling the driver — and checks the pipeline
// still terminates with serial-identical statistics and no error.
func TestShardedFailpointDelayKeepsExactness(t *testing.T) {
	serial := MustOpen(Config{
		PEs: 4, LineSize: 8, CacheCapacity: 8, ProfilePE: -1, WarmupEpochs: 1,
	})
	randTrace(rand.New(rand.NewSource(9)), 4, 3000, 800, serial)

	for _, name := range []string{"coherence.shard.apply", "memsys.shard.publish", "memsys.barrier"} {
		t.Run(name, func(t *testing.T) {
			defer fault.DisarmAll()
			if err := fault.Arm(name, fault.Trigger{
				Mode: fault.ModeDelay, Delay: 500 * time.Microsecond, Prob: 0.3, Seed: 1,
			}); err != nil {
				t.Fatal(err)
			}
			m := feedShardedTrace(t)
			if m.Stats() != serial.Stats() || m.DirectoryStats() != serial.DirectoryStats() {
				t.Fatalf("delay at %s changed statistics", name)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("Close after delay-only injection = %v, want nil", err)
			}
		})
	}
}

// TestShardedRecoversAfterDisarm: a machine built after the fault is
// disarmed behaves as if nothing happened.
func TestShardedRecoversAfterDisarm(t *testing.T) {
	if err := fault.Arm("memsys.shard.publish", fault.Trigger{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	broken := feedShardedTrace(t)
	if err := broken.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed run Close = %v, want ErrInjected", err)
	}
	fault.DisarmAll()

	clean := feedShardedTrace(t)
	serial := MustOpen(Config{
		PEs: 4, LineSize: 8, CacheCapacity: 8, ProfilePE: -1, WarmupEpochs: 1,
	})
	randTrace(rand.New(rand.NewSource(9)), 4, 3000, 800, serial)
	if clean.Stats() != serial.Stats() {
		t.Fatal("post-disarm machine diverges from serial")
	}
	if err := clean.Close(); err != nil {
		t.Fatalf("post-disarm Close = %v, want nil", err)
	}
}

// TestOpenValidation pins the factory contract: negative shard counts are
// rejected, zero selects the serial engine, positive the sharded one.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{PEs: 2, CacheCapacity: 4, ProfilePE: -1, Shards: -1}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Shards=-1: err = %v, want ErrInvalidConfig", err)
	}
	m0, err := Open(Config{PEs: 2, CacheCapacity: 4, ProfilePE: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m0.(*System); !ok {
		t.Fatalf("Shards=0: got %T, want *System", m0)
	}
	m1, err := Open(Config{PEs: 2, CacheCapacity: 4, ProfilePE: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := m1.(*Sharded)
	if !ok {
		t.Fatalf("Shards=2: got %T, want *Sharded", m1)
	}
	if sh.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", sh.Shards())
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if w := DefaultShards(); w < 2 || w > 8 {
		t.Fatalf("DefaultShards() = %d out of [2, 8]", w)
	}
}
