package memsys

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wsstudy/internal/cache"
	"wsstudy/internal/coherence"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/spsc"
	"wsstudy/internal/trace"
)

// Failpoints at the sharded engine's seams. memsys.shard.publish fires in
// the driver each time an op block is published to the worker rings;
// memsys.barrier fires at the head of every drain barrier (epoch
// boundaries and statistics reads). Neither ever skips the work it guards
// — an injected error poisons the run (recorded once, surfaced through
// Err and Close) while the block is still published and the barrier still
// completes, so the simulated state never diverges and the pipeline never
// wedges. Delay mode stalls the driver, exercising ring backpressure.
var (
	fpPublish = fault.New("memsys.shard.publish")
	fpBarrier = fault.New("memsys.barrier")
)

// Metric names recorded by an instrumented Sharded engine, alongside the
// serial System's. Counters are exact and deterministic; the queue-depth
// gauge is timing-dependent (it samples ring occupancy) and is therefore
// excluded from every determinism claim.
const (
	// MetricShardBlocks counts op blocks published to the shard pipeline.
	MetricShardBlocks = "memsys.shard.blocks"
	// MetricShardOps counts line-granular operations routed to directory
	// shards.
	MetricShardOps = "memsys.shard.ops"
	// MetricShardInvals counts cross-shard invalidation messages carried
	// from directory shards to cache workers through block mailboxes.
	MetricShardInvals = "memsys.shard.invals"
	// MetricShardStalls counts ring-full producer stalls across all rings.
	MetricShardStalls = "memsys.shard.stalls"
	// MetricBarriers counts drain barriers (epoch flips + stat reads).
	MetricBarriers = "memsys.barriers"
	// MetricShardQueueDepth samples ring occupancy at publish time; its
	// Max is the high-water mark. Timing-dependent, not deterministic.
	MetricShardQueueDepth = "memsys.shard.queue.depth"
)

const (
	// shardBlockSeqs is how many line-granular operations one op block
	// carries before the driver publishes it.
	shardBlockSeqs = 2048
	// shardRingCap bounds in-flight blocks per worker ring.
	shardRingCap = 8
)

// shardDirOp is one directory transaction routed to its owning shard.
type shardDirOp struct {
	line uint64
	seq  int32 // position in the block's global operation order
	pe   int32
	read bool
}

// shardEvent is one cache-worker event: the issuing PE's own access, or an
// invalidation message captured from a directory shard. Events are applied
// in (seq, pe) order, which provably reproduces the serial interleaving:
// one operation yields either an access for its issuer or invalidations
// for other PEs — never both for the same PE — so (seq, pe) is unique per
// target and totally orders each PE's event stream exactly as the serial
// engine would.
type shardEvent struct {
	addr uint64
	seq  int32
	pe   int32
	kind uint8
}

const (
	evRead uint8 = iota
	evWrite
	evInval
)

// opBlock is one pooled unit of pipeline work: per-directory-shard op
// lists, per-cache-worker access lists, and per-directory-shard
// invalidation mailboxes (written by shard w during phase one, read by
// cache workers in phase two; the dirDone WaitGroup is the happens-before
// edge between the phases). The last worker to release a block returns it
// to the engine's pool and closes the attached barrier, if any.
type opBlock struct {
	dirOps    [][]shardDirOp // len W, indexed by directory shard
	accOps    [][]shardEvent // len V, indexed by cache worker
	invals    [][]shardEvent // len W mailboxes, one writer each
	n         int32          // operations recorded (next seq)
	measuring bool           // snapshot; constant across a block by the barrier rule
	dirDone   sync.WaitGroup // counts down as directory shards finish phase one
	rc        atomic.Int32
	done      chan struct{} // non-nil on a drain barrier block
}

func (b *opBlock) reset() {
	for i := range b.dirOps {
		b.dirOps[i] = b.dirOps[i][:0]
	}
	for i := range b.accOps {
		b.accOps[i] = b.accOps[i][:0]
	}
	for i := range b.invals {
		b.invals[i] = b.invals[i][:0]
	}
	b.n = 0
}

// capInval is the per-(shard, PE) invalidation capturer: directory shard
// workers deliver invalidations through it instead of touching caches, and
// it records them — with the op's seq and the target PE — into the owning
// shard's mailbox slot of the current block. Only PEs that have a cache or
// profiler get a capturer, mirroring the serial engine's nil invalidator
// slots exactly (the directory counts invalidations regardless).
type capInval struct {
	w  *dirWorker
	pe int32
}

func (c *capInval) Invalidate(addr uint64) {
	c.w.cur.invals[c.w.id] = append(c.w.cur.invals[c.w.id], shardEvent{
		addr: addr, seq: c.w.seq, pe: c.pe, kind: evInval,
	})
}

// dirWorker owns one directory shard: a ring of blocks plus the capture
// cursor (cur, seq) its capInvals read during phase one.
type dirWorker struct {
	id   int
	ring *spsc.Ring[*opBlock]
	cur  *opBlock
	seq  int32
}

// cacheWorker owns the caches/profilers of the PEs mapped to it (pe % V)
// and accumulates their measured miss classification.
type cacheWorker struct {
	id      int
	ring    *spsc.Ring[*opBlock]
	scratch []shardEvent
	local   uint64
	remote  uint64
	_       [6]uint64 // keep workers off each other's cache line
}

// Sharded is the region-partitioned engine: the driver (the goroutine
// feeding the trace) expands references into line-granular operations,
// routes each to the directory shard owning its line, and mirrors the
// issuer's access to the cache worker owning its PE. Directory shards
// apply transactions and capture invalidations into per-block mailboxes;
// cache workers wait for the block's directory phase, merge their PEs'
// accesses with the invalidations addressed to them in (seq, pe) order,
// and apply them. Every statistic is bit-identical to the serial System's
// (the equivalence and property suites prove it); only wall-clock
// behaviour changes with Shards.
//
// The producer side (Ref, Refs, BeginEpoch, statistics reads, Close) must
// be called from a single goroutine, the same contract as the serial
// engine's.
type Sharded struct {
	cfg   Config
	shift uint

	dir       *coherence.ShardedDirectory
	caches    []cache.Cache
	profilers []cache.Profiler
	hasUnit   []bool

	dirWorkers   []*dirWorker
	cacheWorkers []*cacheWorker
	wg           sync.WaitGroup

	pool   sync.Pool
	cur    *opBlock
	closed bool

	epoch     int
	measuring bool

	err  atomic.Pointer[error]
	ictx atomic.Pointer[context.Context]

	// Run-scope counters, live only after Instrument; nil-safe.
	mLocal      *obs.Counter
	mRemote     *obs.Counter
	mBlocks     *obs.Counter
	mOps        *obs.Counter
	mInvals     *obs.Counter
	mStalls     *obs.Counter
	mBarriers   *obs.Counter
	mQueueDepth *obs.Gauge
}

// newSharded builds the sharded engine; cfg is already normalized and
// cfg.Shards is positive. Cache workers number min(Shards, PEs-with-units)
// — more would idle, since a PE's events are pinned to one worker.
func newSharded(cfg Config) (*Sharded, error) {
	s := &Sharded{
		cfg:       cfg,
		shift:     lineShift(cfg.LineSize),
		measuring: cfg.WarmupEpochs == 0,
	}
	bg := context.Background()
	s.ictx.Store(&bg)

	var invalidators []coherence.Invalidator
	var err error
	s.caches, s.profilers, invalidators, err = buildPEs(cfg, s.measuring)
	if err != nil {
		return nil, err
	}
	s.hasUnit = make([]bool, cfg.PEs)
	units := 0
	for pe, inv := range invalidators {
		if inv != nil {
			s.hasUnit[pe] = true
			units++
		}
	}

	w := cfg.Shards
	v := w
	if v > units {
		v = units
	}

	s.dirWorkers = make([]*dirWorker, w)
	for i := range s.dirWorkers {
		ring, rerr := spsc.New[*opBlock](shardRingCap)
		if rerr != nil {
			return nil, fmt.Errorf("%w: shard ring: %v", ErrInvalidConfig, rerr)
		}
		s.dirWorkers[i] = &dirWorker{id: i, ring: ring}
	}
	s.dir, err = coherence.NewShardedDirectory(cfg.PEs, cfg.LineSize, w, func(shard int) []coherence.Invalidator {
		inv := make([]coherence.Invalidator, cfg.PEs)
		for pe := range inv {
			if s.hasUnit[pe] {
				inv[pe] = &capInval{w: s.dirWorkers[shard], pe: int32(pe)}
			}
		}
		return inv
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}

	s.cacheWorkers = make([]*cacheWorker, v)
	for i := range s.cacheWorkers {
		ring, rerr := spsc.New[*opBlock](shardRingCap)
		if rerr != nil {
			return nil, fmt.Errorf("%w: cache ring: %v", ErrInvalidConfig, rerr)
		}
		s.cacheWorkers[i] = &cacheWorker{id: i, ring: ring}
	}

	s.pool.New = func() any {
		b := &opBlock{
			dirOps: make([][]shardDirOp, w),
			accOps: make([][]shardEvent, v),
			invals: make([][]shardEvent, w),
		}
		return b
	}

	for _, dw := range s.dirWorkers {
		s.wg.Add(1)
		go s.runDir(dw)
	}
	for _, cw := range s.cacheWorkers {
		s.wg.Add(1)
		go s.runCache(cw)
	}
	return s, nil
}

// fail records the run's first error; later ones are dropped. Workers keep
// applying their work after a failure so the pipeline always terminates
// and the simulated state never forks from the serial engine's.
func (s *Sharded) fail(err error) {
	if err == nil {
		return
	}
	s.err.CompareAndSwap(nil, &err)
}

// Err reports why the trace should stop, or nil; it makes the engine a
// trace.Stopper, so kernels polling trace.Canceled abort within one loop
// body of an injected failure.
func (s *Sharded) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Sharded) injectCtx() context.Context { return *s.ictx.Load() }

// runDir is phase one: apply this shard's transactions in block order,
// capturing invalidations into the block's mailbox, then signal dirDone.
func (s *Sharded) runDir(w *dirWorker) {
	defer s.wg.Done()
	batch := make([]*opBlock, w.ring.Cap())
	shard := s.dir.Shard(w.id)
	for {
		n, open := w.ring.Recv(batch)
		for _, blk := range batch[:n] {
			s.fail(s.dir.CheckApply(s.injectCtx()))
			w.cur = blk
			for _, op := range blk.dirOps[w.id] {
				w.seq = op.seq
				if op.read {
					shard.ReadLine(int(op.pe), op.line)
				} else {
					shard.WriteLine(int(op.pe), op.line)
				}
			}
			s.mInvals.Add(uint64(len(blk.invals[w.id])))
			w.cur = nil
			blk.dirDone.Done()
			blk.release(s)
		}
		if !open {
			return
		}
	}
}

// runCache is phase two: once a block's directory phase is complete, merge
// this worker's accesses with the invalidations addressed to its PEs in
// (seq, pe) order and apply them to the caches/profilers it owns.
func (s *Sharded) runCache(w *cacheWorker) {
	defer s.wg.Done()
	batch := make([]*opBlock, w.ring.Cap())
	v := len(s.cacheWorkers)
	for {
		n, open := w.ring.Recv(batch)
		for _, blk := range batch[:n] {
			blk.dirDone.Wait()
			ev := w.scratch[:0]
			ev = append(ev, blk.accOps[w.id]...)
			for _, mail := range blk.invals {
				for _, e := range mail {
					if int(e.pe)%v == w.id {
						ev = append(ev, e)
					}
				}
			}
			sort.Slice(ev, func(i, j int) bool {
				if ev[i].seq != ev[j].seq {
					return ev[i].seq < ev[j].seq
				}
				return ev[i].pe < ev[j].pe
			})
			for _, e := range ev {
				if e.kind == evInval {
					if s.caches != nil {
						s.caches[e.pe].Invalidate(e.addr)
					} else {
						s.profilers[e.pe].Invalidate(e.addr)
					}
					continue
				}
				miss := accessPE(s.caches, s.profilers, int(e.pe), e.addr, e.kind == evRead)
				if miss && blk.measuring {
					if homeOf(&s.cfg, s.shift, e.addr) == int(e.pe) {
						w.local++
						s.mLocal.Inc()
					} else {
						w.remote++
						s.mRemote.Inc()
					}
				}
			}
			w.scratch = ev[:0]
			blk.release(s)
		}
		if !open {
			return
		}
	}
}

// release returns the block to the pool once every worker is done with it,
// closing the attached barrier if this was a drain block.
func (b *opBlock) release(s *Sharded) {
	if b.rc.Add(-1) == 0 {
		done := b.done
		b.done = nil
		b.reset()
		s.pool.Put(b)
		if done != nil {
			close(done)
		}
	}
}

// record routes one line-granular operation, publishing the block when it
// fills.
func (s *Sharded) record(pe int, line uint64, read bool) {
	blk := s.cur
	if blk == nil {
		blk = s.pool.Get().(*opBlock)
		s.cur = blk
	}
	seq := blk.n
	blk.n++
	w := s.dir.ShardOf(line)
	blk.dirOps[w] = append(blk.dirOps[w], shardDirOp{line: line, seq: seq, pe: int32(pe), read: read})
	if s.hasUnit[pe] {
		kind := evWrite
		if read {
			kind = evRead
		}
		v := pe % len(s.cacheWorkers)
		blk.accOps[v] = append(blk.accOps[v], shardEvent{
			addr: line << s.shift, seq: seq, pe: int32(pe), kind: kind,
		})
	}
	if blk.n == shardBlockSeqs {
		s.publish(nil)
	}
}

// publish hands the current block to every directory shard and cache
// worker. The driver is the sole producer on all rings (the SPSC
// contract); directory shards never publish, which is what keeps block
// order identical on every ring.
func (s *Sharded) publish(done chan struct{}) {
	s.fail(fpPublish.Inject(s.injectCtx()))
	blk := s.cur
	s.cur = nil
	if blk == nil {
		if done == nil {
			return
		}
		blk = s.pool.Get().(*opBlock)
	}
	blk.measuring = s.measuring
	blk.done = done
	blk.dirDone.Add(len(s.dirWorkers))
	blk.rc.Store(int32(len(s.dirWorkers) + len(s.cacheWorkers)))
	s.mBlocks.Inc()
	s.mOps.Add(uint64(blk.n))
	one := [1]*opBlock{blk}
	stalls := 0
	depth := 0
	for _, dw := range s.dirWorkers {
		stalls += dw.ring.Send(one[:])
		if d := dw.ring.Len(); d > depth {
			depth = d
		}
	}
	for _, cw := range s.cacheWorkers {
		stalls += cw.ring.Send(one[:])
		if d := cw.ring.Len(); d > depth {
			depth = d
		}
	}
	s.mStalls.Add(uint64(stalls))
	s.mQueueDepth.Set(int64(depth))
}

// drain publishes everything pending plus a barrier block and waits until
// every worker has fully processed it. On return the pipeline is empty and
// every worker-side write is visible to the driver (the barrier channel
// close is the happens-before edge), so statistics reads and epoch flips
// see a consistent quiescent machine.
func (s *Sharded) drain() {
	if s.closed {
		return
	}
	s.fail(fpBarrier.Inject(s.injectCtx()))
	s.mBarriers.Inc()
	done := make(chan struct{})
	s.publish(done)
	<-done
}

// Ref consumes one reference.
func (s *Sharded) Ref(r trace.Ref) {
	if r.Size == 0 || s.closed {
		return
	}
	s.refOne(r)
}

// Refs consumes a block of references in emission order.
func (s *Sharded) Refs(block []trace.Ref) {
	if s.closed {
		return
	}
	for i := range block {
		if block[i].Size == 0 {
			continue
		}
		s.refOne(block[i])
	}
}

func (s *Sharded) refOne(r trace.Ref) {
	read := r.Kind == trace.Read
	first := r.Addr >> s.shift
	last := (r.Addr + uint64(r.Size) - 1) >> s.shift
	for line := first; ; line++ {
		s.record(r.PE, line, read)
		if line == last {
			break
		}
	}
}

// BeginEpoch advances the epoch counter; when measurement flips it drains
// the pipeline first, so the flip lands between exactly the same two
// references as on the serial engine, then applies the serial engine's
// flip verbatim against the quiescent machine.
func (s *Sharded) BeginEpoch(n int) {
	s.epoch = n
	on := n >= s.cfg.WarmupEpochs
	if on == s.measuring {
		return
	}
	s.drain()
	s.measuring = on
	for _, p := range s.profilers {
		if p != nil {
			p.SetMeasuring(on)
		}
	}
	if on {
		for _, c := range s.caches {
			c.ResetStats()
		}
		s.dir.ResetStats()
		for _, cw := range s.cacheWorkers {
			cw.local, cw.remote = 0, 0
		}
	}
}

// Instrument attaches run-scope counters from rec to the engine, its
// directory shards, and every cache/profiler. It also rebinds the
// failpoint-injection context so fault-trigger counters land on rec. Call
// it before feeding references, from the driver goroutine.
func (s *Sharded) Instrument(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	ictx := obs.With(context.Background(), rec)
	s.ictx.Store(&ictx)
	s.mLocal = rec.Counter(MetricLocalMisses)
	s.mRemote = rec.Counter(MetricRemoteMisses)
	s.mBlocks = rec.Counter(MetricShardBlocks)
	s.mOps = rec.Counter(MetricShardOps)
	s.mInvals = rec.Counter(MetricShardInvals)
	s.mStalls = rec.Counter(MetricShardStalls)
	s.mBarriers = rec.Counter(MetricBarriers)
	s.mQueueDepth = rec.Gauge(MetricShardQueueDepth)
	s.dir.Instrument(rec)
	for _, p := range s.profilers {
		if p != nil {
			p.Instrument(rec)
		}
	}
	for _, c := range s.caches {
		cache.InstrumentCache(c, rec)
	}
}

// Home reports the processor whose local memory holds addr.
func (s *Sharded) Home(addr uint64) int { return homeOf(&s.cfg, s.shift, addr) }

// Measuring reports whether statistics are currently collected.
func (s *Sharded) Measuring() bool { return s.measuring }

// Profiler drains the pipeline and returns pe's profiler, or nil.
func (s *Sharded) Profiler(pe int) cache.Profiler {
	if s.profilers == nil {
		return nil
	}
	s.drain()
	return s.profilers[pe]
}

// Cache drains the pipeline and returns pe's concrete cache (nil in
// profile mode).
func (s *Sharded) Cache(pe int) cache.Cache {
	if s.caches == nil {
		return nil
	}
	s.drain()
	return s.caches[pe]
}

// CacheStats drains the pipeline and aggregates all concrete cache stats.
func (s *Sharded) CacheStats() cache.Stats {
	s.drain()
	var total cache.Stats
	for _, c := range s.caches {
		total.Add(c.Stats())
	}
	return total
}

// DirectoryStats drains the pipeline and aggregates the protocol
// statistics across every directory shard (a consistent post-barrier
// snapshot).
func (s *Sharded) DirectoryStats() coherence.Stats {
	s.drain()
	return s.dir.Stats()
}

// Stats drains the pipeline and returns the local/remote miss
// classification (summed across cache workers; uint64 sums are
// order-independent, so the totals are bit-identical to the serial
// engine's).
func (s *Sharded) Stats() Stats {
	s.drain()
	var total Stats
	for _, cw := range s.cacheWorkers {
		total.LocalMisses += cw.local
		total.RemoteMisses += cw.remote
	}
	return total
}

// PEs reports the processor count.
func (s *Sharded) PEs() int { return s.cfg.PEs }

// LineSize reports the configured line size.
func (s *Sharded) LineSize() uint32 { return s.cfg.LineSize }

// Shards reports the directory shard count W.
func (s *Sharded) Shards() int { return s.dir.Shards() }

// Close drains the pipeline, stops every worker, and reports the first
// error the run recorded (nil normally). It is idempotent; references
// consumed after Close are dropped.
func (s *Sharded) Close() error {
	if !s.closed {
		s.drain()
		s.closed = true
		for _, dw := range s.dirWorkers {
			dw.ring.Close()
		}
		for _, cw := range s.cacheWorkers {
			cw.ring.Close()
		}
		s.wg.Wait()
	}
	return s.Err()
}

// DefaultShards is the shard count CLI and experiments fall back to when
// the user asks for a sharded machine without naming a width: enough to
// engage the pipeline without oversubscribing small CI hosts.
func DefaultShards() int {
	w := runtime.GOMAXPROCS(0) / 2
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	return w
}

var _ Machine = (*Sharded)(nil)
var _ trace.Stopper = (*Sharded)(nil)
