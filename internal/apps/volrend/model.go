package volrend

import (
	"fmt"
	"math"

	"wsstudy/internal/workingset"
)

// Model is the paper's Section 7 analysis: working-set sizes and their
// scaling, the communication accounting, and the load-balance proxy.
// N is the voxel count along one dimension (the paper treats the volume
// as an n-cube for scaling; for a non-cubic volume use the cube root of
// the voxel count), P the processor count.
type Model struct {
	N, P int
}

// Lev1WS is the voxel and octree data reused between neighboring samples
// on one ray: about 0.4 KB, independent of n and P.
func (m Model) Lev1WS() uint64 { return 400 }

// Lev2WS is the data reused between successive rays: the paper fits
// 4000 + 110*n bytes (110 bytes per voxel-length along the ray).
func (m Model) Lev2WS() uint64 { return uint64(4000 + 110*m.N) }

// Lev3WS is the voxel data a processor references in one frame, reused
// across frames when the viewing angle changes slowly: roughly the
// processor's share of the interesting voxels (2 bytes each, times a
// small overlap factor). About 700 KB for the paper's head on 4 PEs.
func (m Model) Lev3WS() uint64 {
	voxels := math.Pow(float64(m.N), 3)
	return uint64(voxels * 2 * 1.5 / float64(m.P))
}

// Plateau read miss rates from the paper's Figure 7.

// RateAfterLev1 is ~15%: still too high, and the misses are irregular.
func (m Model) RateAfterLev1() float64 { return 0.15 }

// RateAfterLev2 is ~2%: the important knee.
func (m Model) RateAfterLev2() float64 { return 0.02 }

// CommRate is the ~0.1% floor once cross-frame reuse is captured.
func (m Model) CommRate() float64 { return 0.001 }

// MissRate evaluates the Figure 7 step curve (read miss rate).
func (m Model) MissRate(cacheBytes uint64) float64 {
	switch {
	case cacheBytes < m.Lev1WS():
		return 0.5
	case cacheBytes < m.Lev2WS():
		return m.RateAfterLev1()
	case cacheBytes < m.Lev3WS():
		return m.RateAfterLev2()
	default:
		return m.CommRate()
	}
}

// Curve samples the model.
func (m Model) Curve(sizes []uint64) *workingset.Curve {
	c := &workingset.Curve{
		Label:  fmt.Sprintf("volrend n=%d P=%d", m.N, m.P),
		Metric: "read miss rate",
	}
	for _, s := range sizes {
		c.Points = append(c.Points, workingset.Point{CacheBytes: s, MissRate: m.MissRate(s)})
	}
	return c
}

// WorkingSets lists the three-level hierarchy.
func (m Model) WorkingSets() workingset.Hierarchy {
	return workingset.Hierarchy{
		App: "Volume Rendering",
		Levels: []workingset.Level{
			{Name: "lev1WS", SizeBytes: m.Lev1WS(), MissRate: m.RateAfterLev1(),
				Note: "voxel+octree data shared by adjacent samples"},
			{Name: "lev2WS", SizeBytes: m.Lev2WS(), MissRate: m.RateAfterLev2(),
				Note: "data shared by successive rays (4000+110n)"},
			{Name: "lev3WS", SizeBytes: m.Lev3WS(), MissRate: m.CommRate(),
				Note: "a PE's voxels for one frame (cross-frame reuse)"},
		},
	}
}

// DataSetBytes is the paper's ~4 bytes per voxel.
func (m Model) DataSetBytes() uint64 {
	return uint64(4 * math.Pow(float64(m.N), 3))
}

// InstructionsPerFrame is the paper's >300 n^3.
func (m Model) InstructionsPerFrame() float64 {
	return 300 * math.Pow(float64(m.N), 3)
}

// CommBytesPerFrame is "somewhat larger than 2n^3" (2 bytes per voxel
// read once per frame).
func (m Model) CommBytesPerFrame() float64 {
	return 2 * math.Pow(float64(m.N), 3)
}

// CommToCompRatio is instructions per communicated word: ~600,
// independent of n and P.
func (m Model) CommToCompRatio() float64 {
	words := m.CommBytesPerFrame() / 8
	return m.InstructionsPerFrame() / words
}

// RaysPerPE is the concurrency / load-balance proxy: the image plane
// projected from the volume has about 3n^2 pixels (the bounding-sphere
// diagonal squared), one ray each. 1000 at the prototypical granularity;
// 66 on the 16K-processor machine — too few for cheap stealing.
func (m Model) RaysPerPE() float64 {
	return 3 * float64(m.N) * float64(m.N) / float64(m.P)
}

// GrainBytes is the per-processor share of the data set.
func (m Model) GrainBytes() uint64 { return m.DataSetBytes() / uint64(m.P) }
