package volrend

// minmax octree: each node records the maximum opacity under a cubic
// region of the volume, letting rays skip fully transparent space and
// letting samples test whether their neighborhood is interesting — the
// data structure the paper's renderer uses for both purposes.

type mmNode struct {
	maxOpacity uint8
}

// mmOctree stores the pyramid as flat per-level arrays: level 0 covers
// the volume with leafSize-cubed blocks; each higher level halves the
// resolution.
type mmOctree struct {
	leafSize int
	levels   [][]mmNode
	dims     [][3]int // node-grid dimensions per level
}

const leafSize = 4

// buildOctree constructs the min-max pyramid of a volume.
func buildOctree(v *Volume) *mmOctree {
	o := &mmOctree{leafSize: leafSize}
	nx := (v.NX + leafSize - 1) / leafSize
	ny := (v.NY + leafSize - 1) / leafSize
	nz := (v.NZ + leafSize - 1) / leafSize

	// Level 0: max over each leaf block, dilated by one voxel on every
	// side so that a sample whose trilinear neighborhood touches opacity
	// is never inside a "transparent" block.
	lvl := make([]mmNode, nx*ny*nz)
	clamp := func(a, lo, hi int) int {
		if a < lo {
			return lo
		}
		if a > hi {
			return hi
		}
		return a
	}
	for bz := 0; bz < nz; bz++ {
		for by := 0; by < ny; by++ {
			for bx := 0; bx < nx; bx++ {
				var max uint8
				z0, z1 := clamp(bz*leafSize-1, 0, v.NZ-1), clamp((bz+1)*leafSize, 0, v.NZ-1)
				y0, y1 := clamp(by*leafSize-1, 0, v.NY-1), clamp((by+1)*leafSize, 0, v.NY-1)
				x0, x1 := clamp(bx*leafSize-1, 0, v.NX-1), clamp((bx+1)*leafSize, 0, v.NX-1)
				for z := z0; z <= z1; z++ {
					for y := y0; y <= y1; y++ {
						for x := x0; x <= x1; x++ {
							if op := v.Opacity(x, y, z); op > max {
								max = op
							}
						}
					}
				}
				lvl[(bz*ny+by)*nx+bx] = mmNode{maxOpacity: max}
			}
		}
	}
	o.levels = append(o.levels, lvl)
	o.dims = append(o.dims, [3]int{nx, ny, nz})

	// Higher levels: max over 2x2x2 children.
	for nx > 1 || ny > 1 || nz > 1 {
		px, py, pz := nx, ny, nz
		nx, ny, nz = (nx+1)/2, (ny+1)/2, (nz+1)/2
		prev := o.levels[len(o.levels)-1]
		lvl := make([]mmNode, nx*ny*nz)
		for bz := 0; bz < nz; bz++ {
			for by := 0; by < ny; by++ {
				for bx := 0; bx < nx; bx++ {
					var max uint8
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								cx, cy, cz := bx*2+dx, by*2+dy, bz*2+dz
								if cx >= px || cy >= py || cz >= pz {
									continue
								}
								if m := prev[(cz*py+cy)*px+cx].maxOpacity; m > max {
									max = m
								}
							}
						}
					}
					lvl[(bz*ny+by)*nx+bx] = mmNode{maxOpacity: max}
				}
			}
		}
		o.levels = append(o.levels, lvl)
		o.dims = append(o.dims, [3]int{nx, ny, nz})
	}
	return o
}

// nodeIndex returns (level-local index, ok) of the node containing voxel
// (x,y,z) at the given level.
func (o *mmOctree) nodeIndex(level, x, y, z int) (int, bool) {
	span := o.leafSize << uint(level)
	bx, by, bz := x/span, y/span, z/span
	d := o.dims[level]
	if bx < 0 || by < 0 || bz < 0 || bx >= d[0] || by >= d[1] || bz >= d[2] {
		return 0, false
	}
	return (bz*d[1]+by)*d[0] + bx, true
}

// transparentSpan reports the largest block span (in voxels) around
// (x,y,z) that is fully transparent, walking up the pyramid, together
// with the number of pyramid nodes inspected. Zero span means the leaf
// block is not transparent.
func (o *mmOctree) transparentSpan(x, y, z int) (span, nodesVisited int) {
	best := 0
	for level := 0; level < len(o.levels); level++ {
		idx, ok := o.nodeIndex(level, x, y, z)
		if !ok {
			break
		}
		nodesVisited++
		if o.levels[level][idx].maxOpacity != 0 {
			break
		}
		best = o.leafSize << uint(level)
	}
	return best, nodesVisited
}

// nodeAddrOffset gives a stable flat offset (in nodes) for simulated
// addressing of node idx at the given level.
func (o *mmOctree) nodeAddrOffset(level, idx int) int {
	off := 0
	for l := 0; l < level; l++ {
		off += len(o.levels[l])
	}
	return off + idx
}

// totalNodes reports the pyramid size.
func (o *mmOctree) totalNodes() int {
	n := 0
	for _, l := range o.levels {
		n += len(l)
	}
	return n
}
