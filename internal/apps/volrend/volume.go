// Package volrend implements the paper's fifth application class (Section
// 7): an optimized ray-casting volume renderer in the style of Nieh and
// Levoy — trilinear resampling along rays, an octree for skipping
// transparent space, early ray termination, an image-plane block
// partitioning, and ray stealing for load balance.
//
// The paper renders a proprietary 256x256x113 CT head; we substitute a
// synthetic head phantom (nested ellipsoidal shells) with the same
// properties the working sets depend on: a mostly transparent surround,
// thin dense shells, and a contiguous interior that terminates rays early.
package volrend

import "fmt"

// Volume is a voxel grid. Each voxel carries a density byte and a
// classified opacity byte; the renderer reads both (two bytes per voxel,
// matching the paper's communication accounting).
type Volume struct {
	NX, NY, NZ int
	density    []uint8
	opacity    []uint8
}

// NewVolume allocates an empty (transparent) volume.
func NewVolume(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volrend: bad volume dims %dx%dx%d", nx, ny, nz))
	}
	n := nx * ny * nz
	return &Volume{NX: nx, NY: ny, NZ: nz, density: make([]uint8, n), opacity: make([]uint8, n)}
}

func (v *Volume) idx(x, y, z int) int { return (z*v.NY+y)*v.NX + x }

// Density returns the raw scalar at a voxel.
func (v *Volume) Density(x, y, z int) uint8 { return v.density[v.idx(x, y, z)] }

// Opacity returns the classified opacity byte at a voxel.
func (v *Volume) Opacity(x, y, z int) uint8 { return v.opacity[v.idx(x, y, z)] }

// SetDensity assigns a voxel and classifies its opacity with the default
// transfer function.
func (v *Volume) SetDensity(x, y, z int, d uint8) {
	i := v.idx(x, y, z)
	v.density[i] = d
	v.opacity[i] = classify(d)
}

// classify is the opacity transfer function: air is transparent, tissue
// semi-transparent, bone nearly opaque.
func classify(d uint8) uint8 {
	switch {
	case d < 30:
		return 0
	case d < 100:
		return d / 3
	default:
		return d / 2
	}
}

// Voxels reports the voxel count.
func (v *Volume) Voxels() int { return v.NX * v.NY * v.NZ }

// SyntheticHead builds the head phantom: an ellipsoidal "skin" shell, a
// denser "skull" shell, "brain" tissue inside, and low-density
// "ventricles" — the structural stand-in for the paper's CT head.
func SyntheticHead(nx, ny, nz int) *Volume {
	v := NewVolume(nx, ny, nz)
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	// Semi-axes: head occupies ~80% of the volume.
	ax, ay, az := 0.42*float64(nx), 0.45*float64(ny), 0.46*float64(nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Normalized ellipsoidal radius.
				dx := (float64(x) - cx) / ax
				dy := (float64(y) - cy) / ay
				dz := (float64(z) - cz) / az
				r := dx*dx + dy*dy + dz*dz
				var d uint8
				switch {
				case r > 1.0:
					d = 0 // air
				case r > 0.92:
					d = 70 // skin
				case r > 0.75:
					d = 220 // skull
				case r > 0.12:
					d = 110 // brain
				default:
					d = 20 // ventricle (transparent-ish)
				}
				v.SetDensity(x, y, z, d)
			}
		}
	}
	return v
}

// OpaqueFraction reports the fraction of voxels with nonzero opacity
// (tests use it to confirm the phantom is mostly empty space plus a solid
// interior, like the CT head).
func (v *Volume) OpaqueFraction() float64 {
	n := 0
	for _, o := range v.opacity {
		if o > 0 {
			n++
		}
	}
	return float64(n) / float64(len(v.opacity))
}
