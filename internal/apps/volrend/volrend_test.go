package volrend

import (
	"math"
	"math/rand"
	"testing"

	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
)

func TestVolumeBasics(t *testing.T) {
	v := NewVolume(8, 8, 8)
	v.SetDensity(1, 2, 3, 150)
	if v.Density(1, 2, 3) != 150 {
		t.Fatal("density readback failed")
	}
	if v.Opacity(1, 2, 3) != 75 {
		t.Fatalf("opacity = %d, want 75 (density/2 for bone)", v.Opacity(1, 2, 3))
	}
	if v.Opacity(0, 0, 0) != 0 {
		t.Fatal("air must be transparent")
	}
	if v.Voxels() != 512 {
		t.Fatal("voxel count wrong")
	}
}

func TestVolumeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad dims")
		}
	}()
	NewVolume(0, 4, 4)
}

func TestClassifyTransfer(t *testing.T) {
	if classify(0) != 0 || classify(29) != 0 {
		t.Error("air should be transparent")
	}
	if classify(60) != 20 {
		t.Errorf("tissue opacity = %d, want 20", classify(60))
	}
	if classify(200) != 100 {
		t.Errorf("bone opacity = %d, want 100", classify(200))
	}
}

func TestSyntheticHeadStructure(t *testing.T) {
	v := SyntheticHead(32, 32, 28)
	// Mostly air around a solid interior, like the CT head.
	frac := v.OpaqueFraction()
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("opaque fraction = %v, want ~0.1-0.6", frac)
	}
	// Corners are air; center is ventricle (low density).
	if v.Density(0, 0, 0) != 0 {
		t.Error("corner should be air")
	}
	if d := v.Density(16, 16, 14); d != 20 {
		t.Errorf("center density = %d, want 20 (ventricle)", d)
	}
	// A mid-shell point on the +x axis should be skull-dense somewhere.
	foundSkull := false
	for x := 16; x < 32; x++ {
		if v.Density(x, 16, 14) == 220 {
			foundSkull = true
			break
		}
	}
	if !foundSkull {
		t.Error("no skull shell found along +x")
	}
}

func TestOctreeTransparentSpanSound(t *testing.T) {
	// Property: if transparentSpan says a block of span s around (x,y,z)
	// is transparent, every voxel in that block (and its 1-voxel dilation)
	// must have zero opacity.
	v := SyntheticHead(24, 24, 20)
	oct := buildOctree(v)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		x, y, z := rng.Intn(24), rng.Intn(24), rng.Intn(20)
		span, visited := oct.transparentSpan(x, y, z)
		if visited == 0 {
			t.Fatal("no nodes visited")
		}
		if span == 0 {
			continue
		}
		bx, by, bz := (x/span)*span, (y/span)*span, (z/span)*span
		for zz := bz; zz < bz+span && zz < v.NZ; zz++ {
			for yy := by; yy < by+span && yy < v.NY; yy++ {
				for xx := bx; xx < bx+span && xx < v.NX; xx++ {
					if v.Opacity(xx, yy, zz) != 0 {
						t.Fatalf("span %d at (%d,%d,%d) covers opaque voxel (%d,%d,%d)",
							span, x, y, z, xx, yy, zz)
					}
				}
			}
		}
	}
}

func TestOctreePyramidConsistency(t *testing.T) {
	v := SyntheticHead(16, 16, 16)
	oct := buildOctree(v)
	// Every parent's max must dominate its children's.
	for level := 1; level < len(oct.levels); level++ {
		d := oct.dims[level]
		pd := oct.dims[level-1]
		for bz := 0; bz < d[2]; bz++ {
			for by := 0; by < d[1]; by++ {
				for bx := 0; bx < d[0]; bx++ {
					parent := oct.levels[level][(bz*d[1]+by)*d[0]+bx]
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								cx, cy, cz := bx*2+dx, by*2+dy, bz*2+dz
								if cx >= pd[0] || cy >= pd[1] || cz >= pd[2] {
									continue
								}
								child := oct.levels[level-1][(cz*pd[1]+cy)*pd[0]+cx]
								if child.maxOpacity > parent.maxOpacity {
									t.Fatalf("child max %d exceeds parent %d", child.maxOpacity, parent.maxOpacity)
								}
							}
						}
					}
				}
			}
		}
	}
	if oct.totalNodes() == 0 {
		t.Fatal("empty pyramid")
	}
}

func TestRendererConfigValidation(t *testing.T) {
	v := SyntheticHead(8, 8, 8)
	for _, cfg := range []Config{
		{ImageW: 0, ImageH: 8, P: 1},
		{ImageW: 8, ImageH: 8, P: 0},
		{ImageW: 2, ImageH: 2, P: 16},
	} {
		if _, err := NewRenderer(v, cfg, nil); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

// TestOctreeSkippingExact is the renderer's central correctness property:
// skipping transparent space must produce the identical image to marching
// every lattice sample.
func TestOctreeSkippingExact(t *testing.T) {
	v := SyntheticHead(32, 32, 28)
	with, err := NewRenderer(v, Config{ImageW: 48, ImageH: 48, P: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewRenderer(v, Config{ImageW: 48, ImageH: 48, P: 2, DisableOctree: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sWith, _ := with.RenderFrame(0.3)
	sWithout, _ := without.RenderFrame(0.3)
	for i := range with.Image() {
		if d := math.Abs(with.Image()[i] - without.Image()[i]); d > 1e-12 {
			t.Fatalf("pixel %d differs by %g with octree skipping", i, d)
		}
	}
	// And skipping must actually skip: fewer samples, some octree reads.
	if sWith.Samples >= sWithout.Samples {
		t.Fatalf("octree did not reduce samples: %d vs %d", sWith.Samples, sWithout.Samples)
	}
	if sWith.OctreeReads == 0 {
		t.Fatal("no octree traffic recorded")
	}
}

func TestRenderedImageLooksLikeAHead(t *testing.T) {
	v := SyntheticHead(32, 32, 28)
	r, err := NewRenderer(v, Config{ImageW: 64, ImageH: 64, P: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.RenderFrame(0)
	img := r.Image()
	center := img[32*64+32]
	corner := img[2*64+2]
	if center <= 0 {
		t.Fatal("center pixel should be lit")
	}
	if corner != 0 {
		t.Fatalf("corner pixel = %v, want 0 (air)", corner)
	}
	if st.EarlyTerminated == 0 {
		t.Error("opaque skull should terminate rays early")
	}
	if st.Rays != 64*64 {
		t.Errorf("rays = %d, want %d", st.Rays, 64*64)
	}
}

func TestViewRotationChangesImage(t *testing.T) {
	// The phantom is not rotationally symmetric about Y (different axes),
	// so a large rotation should change the image.
	v := SyntheticHead(24, 32, 20)
	r, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 1}, nil)
	r.RenderFrame(0)
	img0 := append([]float64(nil), r.Image()...)
	r.RenderFrame(math.Pi / 2)
	diff := 0.0
	for i := range img0 {
		diff += math.Abs(img0[i] - r.Image()[i])
	}
	if diff < 0.1 {
		t.Fatalf("rotated image identical (diff %v)", diff)
	}
}

func TestRayStealingBalancesLoad(t *testing.T) {
	// With the head off-center in the image, corner blocks finish early
	// and must steal; every PE ends up with a similar ray count.
	v := SyntheticHead(32, 32, 28)
	r, _ := NewRenderer(v, Config{ImageW: 64, ImageH: 64, P: 4}, nil)
	st, _ := r.RenderFrame(0.2)
	min, max := st.RaysByPE[0], st.RaysByPE[0]
	for _, c := range st.RaysByPE[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin stealing should equalize ray counts: %v", st.RaysByPE)
	}
	total := 0
	for _, c := range st.RaysByPE {
		total += c
	}
	if total != st.Rays {
		t.Fatalf("per-PE rays %d != total %d", total, st.Rays)
	}
}

func TestTracedRenderEmits(t *testing.T) {
	v := SyntheticHead(16, 16, 16)
	var counter trace.Counter
	r, err := NewRenderer(v, Config{ImageW: 16, ImageH: 16, P: 2}, &counter)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.RenderFrame(0.1)
	if counter.Refs == 0 || st.VoxelReads == 0 {
		t.Fatal("traced render emitted nothing")
	}
	// Voxel reads are 2 bytes each (the paper's accounting): reads ==
	// voxelReads + octreeReads (1 byte) and writes == pixels.
	if counter.Writes != uint64(st.Rays) {
		t.Errorf("writes = %d, want %d (one per pixel)", counter.Writes, st.Rays)
	}
}

func TestModelPaperNumbers(t *testing.T) {
	// The paper's head: treat 256x256x113 as n ~ 204 (cube root of the
	// voxel count).
	n := int(math.Round(math.Cbrt(256 * 256 * 113)))
	m := Model{N: n, P: 4}
	// lev2WS = 4000 + 110n ~ 26 KB (paper reports ~16 KB measured; same
	// order).
	if ws := m.Lev2WS(); ws < 16_000 || ws > 32_000 {
		t.Errorf("lev2WS = %d, want ~16-32 KB", ws)
	}
	// 1024^3 problem: lev2WS ~ 116 KB.
	big := Model{N: 1024, P: 1024}
	if ws := big.Lev2WS(); ws < 110_000 || ws > 120_000 {
		t.Errorf("1024^3 lev2WS = %d, want ~116 KB", ws)
	}
	// Ratio ~600 instructions/word, independent of n and P.
	if got := m.CommToCompRatio(); math.Abs(got-1200) > 1 {
		// 300n^3 instr / (2n^3/8 words) = 1200 by strict arithmetic; the
		// paper quotes ~600 instructions per *word of communicated data*
		// counting 4-byte words. Accept the paper's convention:
		t.Logf("8-byte-word ratio = %v (paper's 4-byte-word ratio: %v)", got, got/2)
	}
	// Prototypical 600^3 on 1024 PEs: ~1000 rays per PE; on 16K: ~66.
	proto := Model{N: 600, P: 1024}
	if got := proto.RaysPerPE(); math.Abs(got-1054) > 5 {
		t.Errorf("rays/PE = %v, want ~1054", got)
	}
	fine := Model{N: 600, P: 16384}
	if got := fine.RaysPerPE(); math.Abs(got-65.9) > 1 {
		t.Errorf("fine-grain rays/PE = %v, want ~66", got)
	}
	// Scaling: lev2WS grows as the cube root of the data set.
	if m8 := (Model{N: 2 * n, P: 4}); float64(m8.Lev2WS()) > 2.2*float64(m.Lev2WS()) {
		t.Error("lev2WS should grow linearly in n (cube root of data)")
	}
}

// TestWorkingSetShape measures the Figure 7 structure on a scaled-down
// head: knees near lev1WS and lev2WS and a low cross-frame floor.
func TestWorkingSetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("working-set measurement is slow")
	}
	v := SyntheticHead(48, 48, 42)
	sys := memsys.MustNew(memsys.Config{
		PEs: 4, LineSize: 8, Dist: memsys.Interleaved,
		Profile: true, ProfilePE: 0, WarmupEpochs: 1,
	})
	r, err := NewRenderer(v, Config{ImageW: 48, ImageH: 48, P: 4}, sys)
	if err != nil {
		t.Fatal(err)
	}
	// Slowly rotating frames, as in the paper's lev3WS measurement.
	for f := 0; f < 4; f++ {
		r.RenderFrame(0.05 * float64(f))
	}
	prof := sys.Profiler(0)
	if prof.Reads() == 0 {
		t.Fatal("nothing measured")
	}
	rate := func(bytes uint64) float64 {
		return float64(prof.MissesAt(int(bytes/8)).ReadMisses) / float64(prof.Reads())
	}
	r0 := rate(64)        // below lev1
	r1 := rate(2 * 1024)  // past lev1 (0.4 KB), below lev2 (~9 KB here)
	r2 := rate(64 * 1024) // past lev2, below lev3
	r3 := rate(2 << 20)   // past everything

	if r0 < 0.2 {
		t.Errorf("tiny-cache rate %v, want > 0.2", r0)
	}
	if !(r0 > 1.5*r1) {
		t.Errorf("lev1 knee missing: %v -> %v", r0, r1)
	}
	if !(r1 > 1.5*r2) {
		t.Errorf("lev2 knee missing: %v -> %v", r1, r2)
	}
	if r2 > 0.1 {
		t.Errorf("post-lev2 rate %v, want < 0.1", r2)
	}
	if r3 > 0.02 {
		t.Errorf("floor %v, want < 0.02 (cross-frame reuse)", r3)
	}
}

func TestShadingChangesImageDeterministically(t *testing.T) {
	v := SyntheticHead(24, 24, 20)
	flat, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 1}, nil)
	lit, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 1, Shading: true}, nil)
	sFlat, _ := flat.RenderFrame(0.2)
	sLit, _ := lit.RenderFrame(0.2)
	diff := 0.0
	for i := range flat.Image() {
		diff += math.Abs(flat.Image()[i] - lit.Image()[i])
	}
	if diff == 0 {
		t.Fatal("shading had no effect on the image")
	}
	// Shading reads the six gradient neighbors per contributing sample.
	if sLit.VoxelReads <= sFlat.VoxelReads {
		t.Fatalf("shading voxel reads %d should exceed flat %d", sLit.VoxelReads, sFlat.VoxelReads)
	}
	// Deterministic.
	lit2, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 1, Shading: true}, nil)
	lit2.RenderFrame(0.2)
	for i := range lit.Image() {
		if lit.Image()[i] != lit2.Image()[i] {
			t.Fatal("shaded render not deterministic")
		}
	}
}

func TestShadingPreservesOctreeExactness(t *testing.T) {
	v := SyntheticHead(24, 24, 20)
	with, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 2, Shading: true}, nil)
	without, _ := NewRenderer(v, Config{ImageW: 32, ImageH: 32, P: 2, Shading: true, DisableOctree: true}, nil)
	with.RenderFrame(0.1)
	without.RenderFrame(0.1)
	for i := range with.Image() {
		if d := math.Abs(with.Image()[i] - without.Image()[i]); d > 1e-12 {
			t.Fatalf("pixel %d differs by %g with shading + skipping", i, d)
		}
	}
}
