package volrend

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Config parameterizes the renderer.
type Config struct {
	ImageW, ImageH int
	P              int     // processors
	TermOpacity    float64 // early-termination threshold (default 0.95)
	DisableOctree  bool    // march every lattice sample (tests/ablation)
	// Shading applies Lambertian shading from the density gradient
	// (central differences: six extra voxel reads per contributing
	// sample), as in the Levoy renderer the paper parallelizes.
	Shading bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ImageW <= 0 || c.ImageH <= 0 {
		return fmt.Errorf("volrend: bad image %dx%d", c.ImageW, c.ImageH)
	}
	if c.P <= 0 {
		return fmt.Errorf("volrend: P must be positive")
	}
	if c.P > c.ImageW*c.ImageH {
		return fmt.Errorf("volrend: more processors than pixels")
	}
	return nil
}

// FrameStats summarizes one rendered frame.
type FrameStats struct {
	Rays            int
	Samples         int
	VoxelReads      int
	OctreeReads     int
	EarlyTerminated int
	StolenRays      int
	RaysByPE        []int
}

// Renderer casts rays through a volume. With a trace sink attached it
// emits every processor's reference stream; the image-plane partition
// gives each processor a contiguous pixel block, and idle processors
// steal rays (the paper's load-balancing scheme).
type Renderer struct {
	vol   *Volume
	oct   *mmOctree
	cfg   Config
	batch *trace.Batcher
	em    []*trace.Emitter

	voxBase, octBase, imgBase uint64

	img   []float64
	frame int
}

// NewRenderer builds a renderer over the volume.
func NewRenderer(vol *Volume, cfg Config, sink trace.Consumer) (*Renderer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TermOpacity == 0 {
		cfg.TermOpacity = 0.95
	}
	r := &Renderer{
		vol:   vol,
		oct:   buildOctree(vol),
		cfg:   cfg,
		batch: trace.NewBatcher(sink),
		img:   make([]float64, cfg.ImageW*cfg.ImageH),
	}
	var arena trace.Arena
	r.voxBase = arena.MustAlloc(uint64(vol.Voxels())*2, 8)
	r.octBase = arena.MustAlloc(uint64(r.oct.totalNodes()), 8)
	r.imgBase = arena.MustAlloc(uint64(cfg.ImageW*cfg.ImageH)*4, 8)
	r.em = make([]*trace.Emitter, cfg.P)
	for pe := range r.em {
		r.em[pe] = r.batch.Emitter(pe)
	}
	return r, nil
}

// Image returns the last rendered frame, row-major intensities in [0,1].
func (r *Renderer) Image() []float64 { return r.img }

func (r *Renderer) voxAddr(x, y, z int) uint64 {
	return r.voxBase + uint64(r.vol.idx(x, y, z))*2
}

func (r *Renderer) octAddr(level, idx int) uint64 {
	return r.octBase + uint64(r.oct.nodeAddrOffset(level, idx))
}

func (r *Renderer) imgAddr(i, j int) uint64 {
	return r.imgBase + uint64(j*r.cfg.ImageW+i)*4
}

// blockOf returns the processor owning pixel (i,j): the image is split
// into a near-square grid of contiguous blocks.
func (r *Renderer) blocks() (pr, pc int) {
	pc = int(math.Sqrt(float64(r.cfg.P)))
	for r.cfg.P%pc != 0 {
		pc--
	}
	return r.cfg.P / pc, pc
}

// ray holds one pixel's ray task.
type ray struct{ i, j int }

// RenderFrame renders with the viewing direction rotated angle radians
// about the volume's vertical axis (successive frames with slowly varying
// angles reproduce the paper's cross-frame reuse, lev3WS). It returns the
// frame statistics. When the sink reports cancellation the frame stops
// between scheduling rounds, returning the partial statistics and the
// sink's stop reason.
func (r *Renderer) RenderFrame(angle float64) (FrameStats, error) {
	defer r.batch.Flush()
	r.batch.BeginEpoch(r.frame)
	r.frame++
	for i := range r.img {
		r.img[i] = 0
	}

	// Build per-PE ray queues from the block partition.
	pr, pc := r.blocks()
	w, h := r.cfg.ImageW, r.cfg.ImageH
	queues := make([][]ray, r.cfg.P)
	for pe := 0; pe < r.cfg.P; pe++ {
		bi, bj := pe%pc, pe/pc
		i0, i1 := bi*w/pc, (bi+1)*w/pc
		j0, j1 := bj*h/pr, (bj+1)*h/pr
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				queues[pe] = append(queues[pe], ray{i, j})
			}
		}
	}

	stats := FrameStats{RaysByPE: make([]int, r.cfg.P)}
	view := newView(r.vol, angle, w, h)

	// Round-robin scheduling with stealing: each processor casts from its
	// own queue; once empty it steals from the currently longest queue.
	next := make([]int, r.cfg.P)
	for {
		if err := r.batch.Err(); err != nil {
			return stats, fmt.Errorf("volrend: frame %d: %w", r.frame-1, err)
		}
		idle := 0
		for pe := 0; pe < r.cfg.P; pe++ {
			var task ray
			if next[pe] < len(queues[pe]) {
				task = queues[pe][next[pe]]
				next[pe]++
			} else {
				// Steal from the victim with the most remaining rays.
				victim, best := -1, 0
				for v := 0; v < r.cfg.P; v++ {
					if rem := len(queues[v]) - next[v]; rem > best {
						victim, best = v, rem
					}
				}
				if victim < 0 {
					idle++
					continue
				}
				last := len(queues[victim]) - 1
				task = queues[victim][last]
				queues[victim] = queues[victim][:last]
				stats.StolenRays++
			}
			r.castRay(task, view, r.em[pe], &stats)
			stats.RaysByPE[pe]++
			stats.Rays++
		}
		if idle == r.cfg.P {
			break
		}
	}
	return stats, nil
}

// view precomputes the orthographic camera for a frame.
type view struct {
	origin     Vec3 // center of the image plane
	dir        Vec3 // ray direction
	u, v       Vec3 // image-plane basis, scaled per pixel
	w, h       int
	tMax       float64
	nx, ny, nz float64
}

// Vec3 is a small local vector type (volrend needs no shared linear
// algebra beyond this).
type Vec3 struct{ X, Y, Z float64 }

func (a Vec3) add(b Vec3) Vec3      { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec3) scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

func newView(vol *Volume, angle float64, w, h int) view {
	nx, ny, nz := float64(vol.NX), float64(vol.NY), float64(vol.NZ)
	center := Vec3{nx / 2, ny / 2, nz / 2}
	diag := math.Sqrt(nx*nx + ny*ny + nz*nz)
	dir := Vec3{math.Sin(angle), 0, math.Cos(angle)}
	u := Vec3{math.Cos(angle), 0, -math.Sin(angle)}
	v := Vec3{0, 1, 0}
	// The image plane spans the bounding sphere (the paper's 3n^2 rays).
	su, sv := diag/float64(w), diag/float64(h)
	origin := center.add(dir.scale(-diag/2 - 2))
	return view{
		origin: origin, dir: dir,
		u: u.scale(su), v: v.scale(sv),
		w: w, h: h, tMax: diag + 4,
		nx: nx, ny: ny, nz: nz,
	}
}

// entryExit clips the ray starting at p along d to the volume box,
// returning the [t0,t1) parameter range (empty if it misses).
func (vw view) entryExit(p Vec3, d Vec3) (float64, float64) {
	t0, t1 := 0.0, vw.tMax
	clip := func(p0, dd, lo, hi float64) bool {
		if dd == 0 {
			return p0 >= lo && p0 < hi
		}
		ta, tb := (lo-p0)/dd, (hi-p0)/dd
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		return t0 < t1
	}
	if !clip(p.X, d.X, 0, vw.nx-1) || !clip(p.Y, d.Y, 0, vw.ny-1) || !clip(p.Z, d.Z, 0, vw.nz-1) {
		return 0, -1
	}
	return t0, t1
}

// castRay marches one ray, compositing into the image and emitting the
// processor's references.
func (r *Renderer) castRay(task ray, vw view, e *trace.Emitter, stats *FrameStats) {
	p0 := vw.origin.
		add(vw.u.scale(float64(task.i - vw.w/2))).
		add(vw.v.scale(float64(task.j - vw.h/2)))
	t0, t1 := vw.entryExit(p0, vw.dir)
	transmit := 1.0
	color := 0.0
	// Samples sit on the integer-t lattice so that octree skipping (which
	// jumps to the next lattice point past a transparent block) composites
	// exactly the same samples as a full march.
	for t := math.Ceil(t0); t0 >= 0 && t < t1; {
		pos := p0.add(vw.dir.scale(t))
		x, y, z := int(pos.X), int(pos.Y), int(pos.Z)
		if !r.cfg.DisableOctree {
			// Octree query: how much transparent space surrounds this
			// sample?
			span, visited := r.oct.transparentSpan(x, y, z)
			for l := 0; l < visited; l++ {
				idx, _ := r.oct.nodeIndex(l, x, y, z)
				e.Load(r.octAddr(l, idx), 1)
			}
			stats.OctreeReads += visited
			if span > 0 {
				// Jump to the first lattice point past the block exit.
				exit := r.blockExit(pos, vw.dir, x, y, z, span, t)
				nt := math.Floor(exit) + 1
				if nt <= t {
					nt = t + 1
				}
				t = nt
				continue
			}
		}
		// Interesting neighborhood: trilinear resample (8 voxel reads).
		sampleO, sampleD := r.trilinear(pos, e, stats)
		stats.Samples++
		alpha := sampleO / 255
		if alpha > 0 {
			shade := 1.0
			if r.cfg.Shading {
				shade = r.shadeAt(x, y, z, vw.dir, e, stats)
			}
			color += transmit * alpha * (sampleD / 255) * shade
			transmit *= 1 - alpha
			if 1-transmit >= r.cfg.TermOpacity {
				stats.EarlyTerminated++
				break
			}
		}
		t++
	}
	r.img[task.j*r.cfg.ImageW+task.i] = color
	e.Store(r.imgAddr(task.i, task.j), 4)
}

// blockExit returns the ray parameter at which the ray leaves the
// transparent block of the given span containing voxel (x,y,z).
func (r *Renderer) blockExit(pos, dir Vec3, x, y, z, span int, t float64) float64 {
	bx, by, bz := (x/span)*span, (y/span)*span, (z/span)*span
	exit := math.Inf(1)
	axis := func(p, d float64, lo, hi float64) float64 {
		switch {
		case d > 0:
			return (hi - p) / d
		case d < 0:
			return (lo - p) / d
		default:
			return math.Inf(1)
		}
	}
	exit = math.Min(exit, axis(pos.X, dir.X, float64(bx), float64(bx+span)))
	exit = math.Min(exit, axis(pos.Y, dir.Y, float64(by), float64(by+span)))
	exit = math.Min(exit, axis(pos.Z, dir.Z, float64(bz), float64(bz+span)))
	if math.IsInf(exit, 1) {
		exit = 0
	}
	return t + math.Max(exit, 0)
}

// trilinear reads the 8 surrounding voxels (two bytes each) and returns
// the interpolated opacity and density.
func (r *Renderer) trilinear(pos Vec3, e *trace.Emitter, stats *FrameStats) (opacity, density float64) {
	x0, y0, z0 := int(pos.X), int(pos.Y), int(pos.Z)
	fx, fy, fz := pos.X-float64(x0), pos.Y-float64(y0), pos.Z-float64(z0)
	for dz := 0; dz < 2; dz++ {
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				x, y, z := x0+dx, y0+dy, z0+dz
				if x >= r.vol.NX {
					x = r.vol.NX - 1
				}
				if y >= r.vol.NY {
					y = r.vol.NY - 1
				}
				if z >= r.vol.NZ {
					z = r.vol.NZ - 1
				}
				e.Load(r.voxAddr(x, y, z), 2)
				stats.VoxelReads++
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				wy := fy
				if dy == 0 {
					wy = 1 - fy
				}
				wz := fz
				if dz == 0 {
					wz = 1 - fz
				}
				w := wx * wy * wz
				opacity += w * float64(r.vol.Opacity(x, y, z))
				density += w * float64(r.vol.Density(x, y, z))
			}
		}
	}
	return opacity, density
}

// shadeAt returns a Lambertian factor in [ambient, 1] from the density
// gradient at the voxel, reading the six axis neighbors (two bytes each).
func (r *Renderer) shadeAt(x, y, z int, dir Vec3, e *trace.Emitter, stats *FrameStats) float64 {
	clamp := func(a, hi int) int {
		if a < 0 {
			return 0
		}
		if a >= hi {
			return hi - 1
		}
		return a
	}
	read := func(xx, yy, zz int) float64 {
		xx, yy, zz = clamp(xx, r.vol.NX), clamp(yy, r.vol.NY), clamp(zz, r.vol.NZ)
		e.Load(r.voxAddr(xx, yy, zz), 2)
		stats.VoxelReads++
		return float64(r.vol.Density(xx, yy, zz))
	}
	g := Vec3{
		X: read(x+1, y, z) - read(x-1, y, z),
		Y: read(x, y+1, z) - read(x, y-1, z),
		Z: read(x, y, z+1) - read(x, y, z-1),
	}
	n2 := g.X*g.X + g.Y*g.Y + g.Z*g.Z
	const ambient = 0.3
	if n2 == 0 {
		return ambient
	}
	// Headlight: the light rides the view direction; flat regions stay
	// ambient, surfaces facing the viewer brighten.
	dot := g.X*dir.X + g.Y*dir.Y + g.Z*dir.Z
	if dot < 0 {
		dot = -dot
	}
	return ambient + (1-ambient)*dot/math.Sqrt(n2)
}
