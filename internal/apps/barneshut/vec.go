// Package barneshut implements the paper's fourth application class
// (Section 6): a three-dimensional galactic Barnes-Hut simulation with
// center-of-mass and quadrupole moments, a theta-criterion tree traversal,
// Morton-order costzone partitioning, and leapfrog integration.
//
// The simulation is numerically real — forces are verified against direct
// summation and energy conservation is tested — and, when a trace sink is
// attached, emits the per-processor reference stream of the parallel
// force-computation phase, the stream behind the paper's Figure 6.
package barneshut

import "math"

// Vec3 is a 3-vector of float64.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v*s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Quadrupole is the symmetric traceless quadrupole tensor
// Q_ij = sum_b m_b (3 x_i x_j - |x|^2 delta_ij) about the center of mass,
// stored as its six independent components.
type Quadrupole struct {
	XX, YY, ZZ, XY, XZ, YZ float64
}

// Add accumulates q += o.
func (q *Quadrupole) Add(o Quadrupole) {
	q.XX += o.XX
	q.YY += o.YY
	q.ZZ += o.ZZ
	q.XY += o.XY
	q.XZ += o.XZ
	q.YZ += o.YZ
}

// Apply returns Q*r.
func (q Quadrupole) Apply(r Vec3) Vec3 {
	return Vec3{
		X: q.XX*r.X + q.XY*r.Y + q.XZ*r.Z,
		Y: q.XY*r.X + q.YY*r.Y + q.YZ*r.Z,
		Z: q.XZ*r.X + q.YZ*r.Y + q.ZZ*r.Z,
	}
}

// pointQuad is the quadrupole of a point mass m at offset d from the
// reference point.
func pointQuad(m float64, d Vec3) Quadrupole {
	n2 := d.Norm2()
	return Quadrupole{
		XX: m * (3*d.X*d.X - n2),
		YY: m * (3*d.Y*d.Y - n2),
		ZZ: m * (3*d.Z*d.Z - n2),
		XY: m * 3 * d.X * d.Y,
		XZ: m * 3 * d.X * d.Z,
		YZ: m * 3 * d.Y * d.Z,
	}
}

// shiftQuad translates a quadrupole of an aggregate with mass m and
// center-of-mass offset d (old center minus new center) using the
// parallel-axis theorem for the traceless tensor.
func shiftQuad(q Quadrupole, m float64, d Vec3) Quadrupole {
	s := pointQuad(m, d)
	q.Add(s)
	return q
}
