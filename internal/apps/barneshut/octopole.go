package barneshut

import "math"

// Octopole moments. Section 6.2's scaling rule floors theta at about 0.6
// and then increases force accuracy with higher-order (octopole) moments
// instead; this file supplies that next order. Cell octopoles are
// accumulated directly from the bodies beneath each cell (one root-to-leaf
// walk per body), which is O(n log n) and sidesteps the error-prone
// parallel-axis algebra for rank-3 tensors.

// Octopole is the symmetric traceless rank-3 tensor
// O_ijk = sum_b m_b (15 x_i x_j x_k - 3 |x|^2 (x_i d_jk + x_j d_ik + x_k d_ij))
// about the cell's center of mass, stored by its ten independent
// components.
type Octopole struct {
	XXX, XXY, XXZ, XYY, XYZ, XZZ, YYY, YYZ, YZZ, ZZZ float64
}

// Add accumulates o += p.
func (o *Octopole) Add(p Octopole) {
	o.XXX += p.XXX
	o.XXY += p.XXY
	o.XXZ += p.XXZ
	o.XYY += p.XYY
	o.XYZ += p.XYZ
	o.XZZ += p.XZZ
	o.YYY += p.YYY
	o.YYZ += p.YYZ
	o.YZZ += p.YZZ
	o.ZZZ += p.ZZZ
}

// pointOct is the octopole of a point mass m at offset x.
func pointOct(m float64, x Vec3) Octopole {
	r2 := x.Norm2()
	f := func(a, b, c float64, da, db, dc float64) float64 {
		// 15 x_i x_j x_k - 3 r^2 (x_i d_jk + x_j d_ik + x_k d_ij)
		return m * (15*a*b*c - 3*r2*(a*da+b*db+c*dc))
	}
	// d_jk terms: for component (i,j,k), da multiplies x_i and is
	// delta(j,k), etc.
	return Octopole{
		XXX: f(x.X, x.X, x.X, 1, 1, 1),
		XXY: f(x.X, x.X, x.Y, 0, 0, 1),
		XXZ: f(x.X, x.X, x.Z, 0, 0, 1),
		XYY: f(x.X, x.Y, x.Y, 1, 0, 0),
		XYZ: f(x.X, x.Y, x.Z, 0, 0, 0),
		XZZ: f(x.X, x.Z, x.Z, 1, 0, 0),
		YYY: f(x.Y, x.Y, x.Y, 1, 1, 1),
		YYZ: f(x.Y, x.Y, x.Z, 0, 0, 1),
		YZZ: f(x.Y, x.Z, x.Z, 1, 0, 0),
		ZZZ: f(x.Z, x.Z, x.Z, 1, 1, 1),
	}
}

// contract computes v_i = O_ijk d_j d_k and t = O_ijk d_i d_j d_k.
func (o Octopole) contract(d Vec3) (v Vec3, t float64) {
	x, y, z := d.X, d.Y, d.Z
	v.X = o.XXX*x*x + 2*o.XXY*x*y + 2*o.XXZ*x*z + o.XYY*y*y + 2*o.XYZ*y*z + o.XZZ*z*z
	v.Y = o.XXY*x*x + 2*o.XYY*x*y + 2*o.XYZ*x*z + o.YYY*y*y + 2*o.YYZ*y*z + o.YZZ*z*z
	v.Z = o.XXZ*x*x + 2*o.XYZ*x*y + 2*o.XZZ*x*z + o.YYZ*y*y + 2*o.YZZ*y*z + o.ZZZ*z*z
	t = v.Dot(d)
	return v, t
}

// computeOctopoles accumulates every cell's octopole about its center of
// mass by walking each body's root-to-leaf path. computeMoments must have
// run first (it establishes the centers of mass).
func (t *tree) computeOctopoles(bodies []Body, octs []Octopole) []Octopole {
	if cap(octs) < len(t.cells) {
		octs = make([]Octopole, len(t.cells))
	} else {
		octs = octs[:len(t.cells)]
		for i := range octs {
			octs[i] = Octopole{}
		}
	}
	for bi := range bodies {
		pos := bodies[bi].Pos
		m := bodies[bi].Mass
		ci := t.root
		for {
			c := &t.cells[ci]
			if c.body >= 0 {
				// Leaf: a point mass about its own COM has no moments.
				break
			}
			octs[ci].Add(pointOct(m, pos.Sub(c.com)))
			next := c.child[c.octant(pos)]
			if next == nilCell {
				break
			}
			ci = next
		}
	}
	return octs
}

// octAccel returns the octopole acceleration correction of the field at
// the body, with d = src - pos (matching interact's convention) and
// r2 = |d|^2 + softening:
//
//	a += (1/2) (O:dd)/r^7 - (7/6) (O:ddd) d / r^9
//
// derived from phi = -(O:xxx)/(6 r^7) at x = -d. Checked against the
// exact far-field series of an asymmetric two-mass system (the -4 S3/x^5
// term) in the tests.
func octAccel(o Octopole, d Vec3, r2 float64) Vec3 {
	r7 := r2 * r2 * r2 * math.Sqrt(r2)
	r9 := r7 * r2
	v, t := o.contract(d)
	return v.Scale(0.5 / r7).Sub(d.Scale(7.0 / 6.0 * t / r9))
}
