package barneshut

import (
	"math"

	"wsstudy/internal/trace"
)

// Simulated data layout. Sizes are in double words; records are padded to
// fixed strides so addresses are easy to audit.
const (
	bodyStride = 16 // pos 3, vel 3, acc 3, mass 1, cost 1, pad
	cellStride = 24 // center 3, half 1, com 3, mass 1, quad 6, children 8, pad
	frameDW    = 6  // traversal stack frame: cell ref, body ref, scratch
	maxFrames  = 128
	// scratchDW models the temporaries of one interaction (the paper's
	// ~80-instruction kernel): sized so the per-interaction local state
	// (scratch + active stack frames + the body's own record) is about
	// 0.7 KB, the paper's lev1WS, and so that tree data is ~20% of reads
	// once it fits.
	scratchDW = 48
)

// layout assigns simulated addresses to every structure the force phase
// touches.
type layout struct {
	bodyBase    uint64
	cellBase    uint64
	octBase     uint64   // octopole records, 10 dw per cell
	stackBase   []uint64 // per PE
	scratchBase []uint64 // per PE
}

func newLayout(n, p int, maxCells int, arena *trace.Arena) *layout {
	if arena == nil {
		arena = &trace.Arena{}
	}
	l := &layout{
		bodyBase:    arena.AllocDW(uint64(n * bodyStride)),
		cellBase:    arena.AllocDW(uint64(maxCells * cellStride)),
		octBase:     arena.AllocDW(uint64(maxCells * 10)),
		stackBase:   make([]uint64, p),
		scratchBase: make([]uint64, p),
	}
	for pe := 0; pe < p; pe++ {
		l.stackBase[pe] = arena.AllocDW(frameDW * maxFrames)
		l.scratchBase[pe] = arena.AllocDW(scratchDW)
	}
	return l
}

func (l *layout) bodyAddr(i int) uint64   { return l.bodyBase + uint64(i*bodyStride)*8 }
func (l *layout) bodyPos(i int) uint64    { return l.bodyAddr(i) }
func (l *layout) bodyVel(i int) uint64    { return l.bodyAddr(i) + 3*8 }
func (l *layout) bodyAcc(i int) uint64    { return l.bodyAddr(i) + 6*8 }
func (l *layout) bodyMass(i int) uint64   { return l.bodyAddr(i) + 9*8 }
func (l *layout) cellAddr(c int32) uint64 { return l.cellBase + uint64(c)*cellStride*8 }
func (l *layout) cellGeom(c int32) uint64 { return l.cellAddr(c) }        // center+half
func (l *layout) cellCom(c int32) uint64  { return l.cellAddr(c) + 4*8 }  // com+mass
func (l *layout) cellQuad(c int32) uint64 { return l.cellAddr(c) + 8*8 }  // 6 dw
func (l *layout) cellKids(c int32) uint64 { return l.cellAddr(c) + 14*8 } // 8 dw
func (l *layout) cellOct(c int32) uint64  { return l.octBase + uint64(c)*10*8 }
func (l *layout) frameAddr(pe, d int) uint64 {
	if d >= maxFrames {
		d = maxFrames - 1
	}
	return l.stackBase[pe] + uint64(d*frameDW)*8
}

// forceResult carries per-body traversal statistics.
type forceResult struct {
	interactions int // body-body or body-cell interactions
	visits       int // cells visited (opening tests performed)
}

// forceOn computes the acceleration on body bi by traversing the tree,
// emitting the reference stream of processor pe. Quadrupole corrections
// are applied to accepted cells when quad is set. Returns the traversal
// statistics.
func (s *Simulation) forceOn(bi, pe int, e *trace.Emitter) forceResult {
	b := &s.bodies[bi]
	// The body's own position is part of the per-body context.
	e.Load(s.lay.bodyPos(bi), 24)
	var acc Vec3
	res := forceResult{}
	s.walk(s.tr.root, bi, b.Pos, &acc, e, pe, 0, &res)
	b.Acc = acc
	e.Store(s.lay.bodyAcc(bi), 24)
	return res
}

func (s *Simulation) walk(ci int32, bi int, pos Vec3, acc *Vec3, e *trace.Emitter, pe, depth int, res *forceResult) {
	c := &s.tr.cells[ci]
	if c.mass == 0 {
		return
	}
	// Stack frame for this traversal level.
	e.Store(s.lay.frameAddr(pe, depth), frameDW*8)
	res.visits++
	if c.body >= 0 {
		if c.body == bi {
			return
		}
		// Direct body-body interaction.
		e.Load(s.lay.bodyPos(c.body), 24)
		e.Load(s.lay.bodyMass(c.body), 8)
		s.interact(acc, pos, c.com, c.mass, nil, nil, e, pe)
		res.interactions++
		return
	}
	// Opening test: load the cell's center of mass and geometry.
	e.Load(s.lay.cellCom(ci), 32)
	e.Load(s.lay.cellGeom(ci), 8)
	d := pos.Sub(c.com).Norm()
	if d > 0 && 2*c.half/d < s.cfg.Theta {
		// Far enough: one aggregate interaction.
		var q *Quadrupole
		if s.cfg.Quadrupole {
			e.Load(s.lay.cellQuad(ci), 48)
			q = &c.quad
		}
		var oct *Octopole
		if s.cfg.Octopole {
			e.Load(s.lay.cellOct(ci), 80)
			oct = &s.octs[ci]
		}
		s.interact(acc, pos, c.com, c.mass, q, oct, e, pe)
		res.interactions++
		return
	}
	// Open the cell: read the child pointers, recurse.
	e.Load(s.lay.cellKids(ci), 64)
	for _, ch := range c.child {
		if ch != nilCell {
			s.walk(ch, bi, pos, acc, e, pe, depth+1, res)
		}
	}
}

// interact accumulates the (softened) gravitational pull of an aggregate
// at position src with the given mass and optional quadrupole onto acc.
// The scratch traffic models the interaction's temporaries (the paper's
// lev1WS component).
func (s *Simulation) interact(acc *Vec3, pos, src Vec3, mass float64, q *Quadrupole, oct *Octopole, e *trace.Emitter, pe int) {
	e.Load(s.lay.scratchBase[pe], scratchDW*8)
	e.Store(s.lay.scratchBase[pe], scratchDW*8)
	d := src.Sub(pos)
	r2 := d.Norm2() + s.cfg.Eps*s.cfg.Eps
	r := math.Sqrt(r2)
	inv3 := 1 / (r2 * r)
	*acc = acc.Add(d.Scale(mass * inv3))
	if q != nil {
		// Quadrupole correction of the field at pos, from
		// phi = -M/r - (x.Q.x)/(2 r^5) with x = pos-src = -d:
		// a += -Q.d / r^5 + (5/2) d (d.Q.d) / r^7.
		// (Checked against the exact two-point-mass expansion.)
		r5 := r2 * r2 * r
		qd := q.Apply(d)
		dqd := d.Dot(qd)
		*acc = acc.Sub(qd.Scale(1 / r5)).Add(d.Scale(2.5 * dqd / (r5 * r2)))
	}
	if oct != nil {
		*acc = acc.Add(octAccel(*oct, d, r2))
	}
}

// DirectForces computes exact pairwise accelerations (the ground truth for
// accuracy tests), untraced.
func DirectForces(bodies []Body, eps float64) []Vec3 {
	acc := make([]Vec3, len(bodies))
	for i := range bodies {
		for j := range bodies {
			if i == j {
				continue
			}
			d := bodies[j].Pos.Sub(bodies[i].Pos)
			r2 := d.Norm2() + eps*eps
			r := math.Sqrt(r2)
			acc[i] = acc[i].Add(d.Scale(bodies[j].Mass / (r2 * r)))
		}
	}
	return acc
}
