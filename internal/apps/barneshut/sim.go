package barneshut

import (
	"fmt"

	"wsstudy/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	Theta      float64 // opening criterion (0.5-1.2 typical); 0 forces exact summation
	Quadrupole bool    // apply quadrupole corrections to accepted cells
	Octopole   bool    // additionally apply octopole corrections (Section 6.2's high-accuracy regime)
	Eps        float64 // Plummer softening
	DT         float64 // leapfrog time step
	P          int     // processors
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Theta < 0 || c.Theta > 2 {
		return fmt.Errorf("barneshut: theta %v out of range [0,2]", c.Theta)
	}
	if c.P <= 0 {
		return fmt.Errorf("barneshut: P must be positive")
	}
	if c.DT <= 0 {
		return fmt.Errorf("barneshut: DT must be positive")
	}
	return nil
}

// StepStats summarizes one time step.
type StepStats struct {
	Interactions int     // total body-body + body-cell interactions
	Visits       int     // total opening tests
	Cells        int     // octree cells this step
	Depth        int     // tree depth
	Imbalance    float64 // max/mean partition cost
	BuildVisits  int     // cells touched while building the tree
}

// InteractionsPerBody is the paper's working-set driver, (1/theta^2)*log n.
func (s StepStats) InteractionsPerBody(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.Interactions) / float64(n)
}

// Simulation is a traced Barnes-Hut run.
type Simulation struct {
	cfg    Config
	bodies []Body
	tr     tree
	lay    *layout
	octs   []Octopole
	em     []*trace.Emitter
	batch  *trace.Batcher
	assign []int
	byPE   [][]int
	step   int
}

// NewSimulation builds a simulation over the given bodies. sink may be nil
// for a pure numeric run.
func NewSimulation(bodies []Body, cfg Config, sink trace.Consumer) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(bodies)
	s := &Simulation{
		cfg:    cfg,
		bodies: append([]Body(nil), bodies...),
		batch:  trace.NewBatcher(sink),
	}
	// The cell pool never exceeds a small multiple of n in practice; the
	// layout reserves a generous fixed region so addresses stay stable.
	s.lay = newLayout(n, cfg.P, 4*n+64, nil)
	s.em = make([]*trace.Emitter, cfg.P)
	for pe := range s.em {
		s.em[pe] = s.batch.Emitter(pe)
	}
	return s, nil
}

// Bodies exposes the current particle state.
func (s *Simulation) Bodies() []Body { return s.bodies }

// Step advances the simulation one leapfrog step: partition, build tree,
// compute moments, compute forces (the measured phase), integrate. The
// sink receives BeginEpoch(step) so cold-start exclusion can skip the
// first steps, exactly as the paper does.
func (s *Simulation) Step() (StepStats, error) {
	if err := s.batch.Err(); err != nil {
		return StepStats{}, fmt.Errorf("barneshut: step %d: %w", s.step, err)
	}
	defer s.batch.Flush()
	s.batch.BeginEpoch(s.step)
	s.step++
	n := len(s.bodies)

	// Phase 1: costzone partition (cost = last step's interactions).
	s.assign, s.byPE = Partition(s.bodies, s.cfg.P)

	// Phase 2: tree build. Each insertion is charged to the inserting
	// body's owner, approximating the parallel build the paper describes
	// as the less-scalable phase.
	s.tr.build(s.bodies)
	for bi := range s.bodies {
		e := s.em[s.assign[bi]]
		e.Load(s.lay.bodyPos(bi), 24)
		e.Store(s.lay.cellAddr(0), 8) // root update, shared write traffic
	}
	if int32(len(s.tr.cells)) > int32(4*n+64) {
		return StepStats{}, fmt.Errorf("barneshut: cell pool overflow (%d cells)", len(s.tr.cells))
	}

	// Phase 3: moments, bottom-up. Charged to the owner of each cell's
	// first body (a static approximation of the parallel upward pass).
	s.tr.computeMoments(s.tr.root, s.bodies)
	if s.cfg.Octopole {
		s.octs = s.tr.computeOctopoles(s.bodies, s.octs)
	}
	for ci := range s.tr.cells {
		c := &s.tr.cells[ci]
		owner := 0
		if c.body >= 0 {
			owner = s.assign[c.body]
		}
		e := s.em[owner]
		e.Store(s.lay.cellCom(int32(ci)), 32)
		if s.cfg.Quadrupole {
			e.Store(s.lay.cellQuad(int32(ci)), 48)
		}
	}

	// Phase 4: force computation — the phase whose working sets Figure 6
	// shows. Processors sweep their curve-ordered bodies.
	stats := StepStats{Cells: len(s.tr.cells), Depth: s.tr.maxDepth(s.tr.root), BuildVisits: s.tr.buildVisits}
	for pe := 0; pe < s.cfg.P; pe++ {
		if err := s.batch.Err(); err != nil {
			return stats, fmt.Errorf("barneshut: step %d force phase pe %d: %w", s.step-1, pe, err)
		}
		for _, bi := range s.byPE[pe] {
			r := s.forceOn(bi, pe, s.em[pe])
			s.bodies[bi].Cost = r.interactions
			stats.Interactions += r.interactions
			stats.Visits += r.visits
		}
	}
	stats.Imbalance = costImbalance(s.bodies, s.byPE)

	// Phase 5: leapfrog kick+drift, charged to owners.
	dt := s.cfg.DT
	for pe := 0; pe < s.cfg.P; pe++ {
		e := s.em[pe]
		for _, bi := range s.byPE[pe] {
			b := &s.bodies[bi]
			e.Load(s.lay.bodyVel(bi), 24)
			e.Load(s.lay.bodyAcc(bi), 24)
			b.Vel = b.Vel.Add(b.Acc.Scale(dt))
			e.Store(s.lay.bodyVel(bi), 24)
			e.Load(s.lay.bodyPos(bi), 24)
			b.Pos = b.Pos.Add(b.Vel.Scale(dt))
			e.Store(s.lay.bodyPos(bi), 24)
		}
	}
	return stats, nil
}

// ComputeForcesOnly builds the tree and computes accelerations without
// integrating — used by accuracy tests.
func (s *Simulation) ComputeForcesOnly() (StepStats, error) {
	defer s.batch.Flush()
	s.assign, s.byPE = Partition(s.bodies, s.cfg.P)
	s.tr.build(s.bodies)
	s.tr.computeMoments(s.tr.root, s.bodies)
	if s.cfg.Octopole {
		s.octs = s.tr.computeOctopoles(s.bodies, s.octs)
	}
	stats := StepStats{Cells: len(s.tr.cells), Depth: s.tr.maxDepth(s.tr.root), BuildVisits: s.tr.buildVisits}
	for pe := 0; pe < s.cfg.P; pe++ {
		for _, bi := range s.byPE[pe] {
			r := s.forceOn(bi, pe, s.em[pe])
			s.bodies[bi].Cost = r.interactions
			stats.Interactions += r.interactions
			stats.Visits += r.visits
		}
	}
	return stats, nil
}

// TreeIntegrity verifies structural invariants (every body reachable
// exactly once; moment mass equals total mass). Used by tests.
func (s *Simulation) TreeIntegrity() error {
	if got := s.tr.countBodies(s.tr.root); got != len(s.bodies) {
		return fmt.Errorf("barneshut: tree holds %d bodies, want %d", got, len(s.bodies))
	}
	var total float64
	for _, b := range s.bodies {
		total += b.Mass
	}
	root := &s.tr.cells[s.tr.root]
	if diff := root.mass - total; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("barneshut: root mass %v, want %v", root.mass, total)
	}
	return nil
}
