package barneshut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
)

func TestVec3Arithmetic(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("Add/Sub wrong")
	}
	if a.Dot(b) != 32 || a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Dot/Scale wrong")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Fatal("Norm wrong")
	}
}

func TestQuadrupolePointMassPair(t *testing.T) {
	// Two point masses m at +/-a on the x-axis about their COM: the exact
	// quadrupole is diag(4ma^2, -2ma^2, -2ma^2), and it must be traceless.
	m, a := 0.5, 1.5
	var q Quadrupole
	q.Add(pointQuad(m, Vec3{a, 0, 0}))
	q.Add(pointQuad(m, Vec3{-a, 0, 0}))
	if math.Abs(q.XX-4*m*a*a) > 1e-12 || math.Abs(q.YY+2*m*a*a) > 1e-12 {
		t.Fatalf("quad = %+v", q)
	}
	if tr := q.XX + q.YY + q.ZZ; math.Abs(tr) > 1e-12 {
		t.Fatalf("trace = %v, want 0", tr)
	}
}

func TestQuadrupoleShiftConsistency(t *testing.T) {
	// Property: computing the quadrupole of random masses directly about
	// a new origin equals shifting the COM-referenced quadrupole there.
	check := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		const k = 5
		pos := make([]Vec3, k)
		mass := make([]float64, k)
		var com Vec3
		var mtot float64
		for i := range pos {
			pos[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			mass[i] = rng.Float64() + 0.1
			com = com.Add(pos[i].Scale(mass[i]))
			mtot += mass[i]
		}
		com = com.Scale(1 / mtot)
		origin := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		var direct, aboutCOM Quadrupole
		for i := range pos {
			direct.Add(pointQuad(mass[i], pos[i].Sub(origin)))
			aboutCOM.Add(pointQuad(mass[i], pos[i].Sub(com)))
		}
		shifted := shiftQuad(aboutCOM, mtot, com.Sub(origin))
		for _, d := range []float64{
			shifted.XX - direct.XX, shifted.YY - direct.YY, shifted.ZZ - direct.ZZ,
			shifted.XY - direct.XY, shifted.XZ - direct.XZ, shifted.YZ - direct.YZ,
		} {
			if math.Abs(d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlummerProperties(t *testing.T) {
	bodies := Plummer(512, 1)
	if len(bodies) != 512 {
		t.Fatal("wrong count")
	}
	var mass float64
	for _, b := range bodies {
		mass += b.Mass
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("total mass = %v, want 1", mass)
	}
	if p := TotalMomentum(bodies).Norm(); p > 1e-9 {
		t.Fatalf("net momentum = %v, want ~0", p)
	}
	// The system should be gravitationally bound (negative total energy).
	if e := TotalEnergy(bodies, 0.05); e >= 0 {
		t.Fatalf("total energy = %v, want negative", e)
	}
	// Determinism.
	again := Plummer(512, 1)
	if again[100].Pos != bodies[100].Pos {
		t.Fatal("Plummer not deterministic")
	}
}

func TestTreeIntegrity(t *testing.T) {
	bodies := Plummer(300, 2)
	var tr tree
	tr.build(bodies)
	if got := tr.countBodies(tr.root); got != 300 {
		t.Fatalf("tree holds %d bodies", got)
	}
	tr.computeMoments(tr.root, bodies)
	root := &tr.cells[tr.root]
	if math.Abs(root.mass-1) > 1e-9 {
		t.Fatalf("root mass = %v", root.mass)
	}
	// Root COM matches the direct center of mass.
	var com Vec3
	for _, b := range bodies {
		com = com.Add(b.Pos.Scale(b.Mass))
	}
	if root.com.Sub(com).Norm() > 1e-9 {
		t.Fatalf("root COM off by %v", root.com.Sub(com).Norm())
	}
	// Rebuild reuses the pool without leaking.
	cellsBefore := len(tr.cells)
	tr.build(bodies)
	if len(tr.cells) != cellsBefore {
		t.Fatalf("rebuild changed cell count %d -> %d", cellsBefore, len(tr.cells))
	}
}

func TestThetaZeroMatchesDirect(t *testing.T) {
	// theta=0 never accepts a cell: the traversal degenerates to exact
	// pairwise summation.
	bodies := Plummer(128, 3)
	sim, err := NewSimulation(bodies, Config{Theta: 0, Eps: 0.05, DT: 0.01, P: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ComputeForcesOnly(); err != nil {
		t.Fatal(err)
	}
	want := DirectForces(bodies, 0.05)
	for i := range want {
		if d := sim.Bodies()[i].Acc.Sub(want[i]).Norm(); d > 1e-9 {
			t.Fatalf("body %d: theta=0 force off by %g", i, d)
		}
	}
}

func forceErrors(t *testing.T, theta float64, quad bool) float64 {
	t.Helper()
	bodies := Plummer(256, 4)
	sim, err := NewSimulation(bodies, Config{Theta: theta, Quadrupole: quad, Eps: 0.05, DT: 0.01, P: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ComputeForcesOnly(); err != nil {
		t.Fatal(err)
	}
	exact := DirectForces(bodies, 0.05)
	sumErr, sumMag := 0.0, 0.0
	for i := range exact {
		sumErr += sim.Bodies()[i].Acc.Sub(exact[i]).Norm()
		sumMag += exact[i].Norm()
	}
	return sumErr / sumMag
}

func TestForceAccuracy(t *testing.T) {
	// Approximation error grows with theta and is small at practical
	// settings.
	e05 := forceErrors(t, 0.5, true)
	e10 := forceErrors(t, 1.0, true)
	if e05 > 0.01 {
		t.Errorf("theta=0.5 relative error %v, want < 1%%", e05)
	}
	if e10 > 0.05 {
		t.Errorf("theta=1.0 relative error %v, want < 5%%", e10)
	}
	if e10 <= e05 {
		t.Errorf("error should grow with theta: %v vs %v", e05, e10)
	}
}

func TestQuadrupoleImprovesAccuracy(t *testing.T) {
	mono := forceErrors(t, 1.0, false)
	quad := forceErrors(t, 1.0, true)
	if quad >= mono {
		t.Fatalf("quadrupole error %v should beat monopole %v", quad, mono)
	}
}

func TestEnergyConservation(t *testing.T) {
	bodies := Plummer(128, 5)
	cfg := Config{Theta: 0.5, Quadrupole: true, Eps: 0.1, DT: 0.002, P: 2}
	sim, err := NewSimulation(bodies, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	e0 := TotalEnergy(sim.Bodies(), cfg.Eps)
	for step := 0; step < 50; step++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	e1 := TotalEnergy(sim.Bodies(), cfg.Eps)
	drift := math.Abs((e1 - e0) / e0)
	if drift > 0.02 {
		t.Fatalf("energy drift %v over 50 steps, want < 2%%", drift)
	}
}

func TestPartitionProperties(t *testing.T) {
	bodies := Plummer(1000, 6)
	rng := rand.New(rand.NewSource(1))
	for i := range bodies {
		bodies[i].Cost = rng.Intn(100) + 1
	}
	for _, p := range []int{1, 2, 4, 7, 16} {
		assign, byPE := Partition(bodies, p)
		seen := make([]bool, len(bodies))
		for pe, list := range byPE {
			for _, bi := range list {
				if seen[bi] {
					t.Fatalf("body %d assigned twice", bi)
				}
				seen[bi] = true
				if assign[bi] != pe {
					t.Fatalf("assign/byPE disagree for body %d", bi)
				}
			}
		}
		for bi, ok := range seen {
			if !ok {
				t.Fatalf("body %d unassigned (p=%d)", bi, p)
			}
		}
		if imb := costImbalance(bodies, byPE); imb > 1.5 {
			t.Errorf("p=%d: cost imbalance %v, want <= 1.5", p, imb)
		}
	}
}

func TestPartitionSpatialLocality(t *testing.T) {
	// A partition along the Morton curve should give each PE a compact
	// region: the mean intra-PE pairwise distance must be well under the
	// global mean.
	bodies := Plummer(512, 7)
	_, byPE := Partition(bodies, 8)
	meanDist := func(list []int) float64 {
		if len(list) < 2 {
			return 0
		}
		sum, cnt := 0.0, 0
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				sum += bodies[list[i]].Pos.Sub(bodies[list[j]].Pos).Norm()
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	all := make([]int, len(bodies))
	for i := range all {
		all[i] = i
	}
	global := meanDist(all)
	intra := 0.0
	for _, list := range byPE {
		intra += meanDist(list)
	}
	intra /= 8
	if intra > 0.8*global {
		t.Fatalf("intra-PE mean distance %v vs global %v: partition not spatial", intra, global)
	}
}

func TestConfigValidation(t *testing.T) {
	bodies := Plummer(16, 8)
	for _, cfg := range []Config{
		{Theta: -1, P: 1, DT: 0.01},
		{Theta: 0.5, P: 0, DT: 0.01},
		{Theta: 0.5, P: 1, DT: 0},
		{Theta: 3, P: 1, DT: 0.01},
	} {
		if _, err := NewSimulation(bodies, cfg, nil); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestTracedStepEmitsPerPE(t *testing.T) {
	bodies := Plummer(200, 9)
	var counter trace.Counter
	perPE := make([]uint64, 4)
	sink := trace.Tee{&counter, trace.Func(func(r trace.Ref) { perPE[r.PE]++ })}
	sim, err := NewSimulation(bodies, Config{Theta: 0.8, Quadrupole: true, Eps: 0.05, DT: 0.01, P: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if counter.Refs == 0 || stats.Interactions == 0 {
		t.Fatal("no work traced")
	}
	for pe, c := range perPE {
		if c == 0 {
			t.Errorf("PE %d emitted nothing", pe)
		}
	}
	if err := sim.TreeIntegrity(); err != nil {
		t.Fatal(err)
	}
	if stats.Imbalance > 2.0 {
		t.Errorf("imbalance %v too high", stats.Imbalance)
	}
}

func TestInteractionCountScalesWithTheta(t *testing.T) {
	// Interactions per body ~ (1/theta^2) log n: smaller theta, more work.
	count := func(theta float64) float64 {
		bodies := Plummer(512, 10)
		sim, _ := NewSimulation(bodies, Config{Theta: theta, Eps: 0.05, DT: 0.01, P: 1}, nil)
		st, err := sim.ComputeForcesOnly()
		if err != nil {
			t.Fatal(err)
		}
		return st.InteractionsPerBody(512)
	}
	c12, c06 := count(1.2), count(0.6)
	if c06 <= c12 {
		t.Fatalf("interactions should grow as theta shrinks: %v vs %v", c06, c12)
	}
	// The paper's 1/theta^2 law: halving theta should give roughly 4x,
	// within a loose band (tree discreteness).
	ratio := c06 / c12
	if ratio < 2 || ratio > 8 {
		t.Errorf("theta scaling ratio %v, want in [2,8]", ratio)
	}
}

// TestWorkingSetShape measures the Figure 6 structure on a scaled-down
// problem: a small lev1WS knee (high rate before, ~15-40%% after), the
// dominant lev2WS knee (to near the communication floor), and a floor
// under 2%%.
func TestWorkingSetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("working-set measurement is slow")
	}
	const n, p = 512, 4
	bodies := Plummer(n, 11)
	sys := memsys.MustNew(memsys.Config{
		PEs: p, LineSize: 8, Profile: true, ProfilePE: 1, WarmupEpochs: 2,
	})
	sim, err := NewSimulation(bodies, Config{Theta: 1.0, Quadrupole: true, Eps: 0.05, DT: 0.005, P: p}, sys)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	prof := sys.Profiler(1)
	reads := prof.Reads()
	if reads == 0 {
		t.Fatal("nothing measured")
	}
	readRate := func(bytes uint64) float64 {
		return float64(prof.MissesAt(int(bytes/8)).ReadMisses) / float64(reads)
	}
	tiny := readRate(64)
	afterLev1 := readRate(2 * 1024)
	afterLev2 := readRate(64 * 1024)
	floor := readRate(8 << 20)

	if tiny < 0.5 {
		t.Errorf("tiny-cache read miss rate %v, want > 0.5", tiny)
	}
	// Paper: lev1WS ~ 0.7 KB cuts the rate to ~20%.
	if afterLev1 > 0.45 || afterLev1 < floor {
		t.Errorf("post-lev1 rate %v, want well below tiny %v", afterLev1, tiny)
	}
	if tiny < 2*afterLev1 {
		t.Errorf("lev1 knee too shallow: %v -> %v", tiny, afterLev1)
	}
	// lev2WS (~20 KB at paper scale) takes it near the floor.
	if afterLev2 > 0.1 {
		t.Errorf("post-lev2 rate %v, want < 0.1", afterLev2)
	}
	// Inherent communication floor is small but nonzero.
	if floor > 0.02 {
		t.Errorf("floor %v, want < 2%%", floor)
	}
	if floor <= 0 {
		t.Error("floor should be nonzero (bodies move and are rewritten)")
	}
}

func TestTwoGalaxiesProperties(t *testing.T) {
	bodies := TwoGalaxies(400, 3)
	if len(bodies) != 400 {
		t.Fatal("wrong count")
	}
	var mass float64
	for _, b := range bodies {
		mass += b.Mass
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("total mass = %v, want 1", mass)
	}
	// Antisymmetric setup: net momentum ~ 0.
	if p := TotalMomentum(bodies).Norm(); p > 1e-9 {
		t.Fatalf("net momentum = %v", p)
	}
	// Two distinct clumps: mean |x| well away from zero.
	left, right := 0, 0
	for _, b := range bodies {
		if b.Pos.X < 0 {
			left++
		} else {
			right++
		}
	}
	if left < 150 || right < 150 {
		t.Fatalf("clump split %d/%d, want near even", left, right)
	}
	// And it simulates stably for a few steps.
	sim, err := NewSimulation(bodies, Config{Theta: 0.8, Quadrupole: true, Eps: 0.1, DT: 0.005, P: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.TreeIntegrity(); err != nil {
		t.Fatal(err)
	}
}
