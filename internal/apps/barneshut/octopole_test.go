package barneshut

import (
	"math"
	"testing"
)

// TestOctopoleAxisSeries validates the tensor convention against the exact
// far-field expansion: for masses m1 at (a,0,0) and m2 at (-b,0,0) about
// their COM, the octopole force term at (x,0,0) must be -4*S3/x^5 with
// S3 = m1 a^3 - m2 b^3.
func TestOctopoleAxisSeries(t *testing.T) {
	m1, m2 := 3.0, 1.0
	a := 1.0
	b := m1 * a / m2 // COM at origin
	var oct Octopole
	oct.Add(pointOct(m1, Vec3{a, 0, 0}))
	oct.Add(pointOct(m2, Vec3{-b, 0, 0}))
	s3 := m1*a*a*a - m2*b*b*b

	x := 50.0
	d := Vec3{-x, 0, 0} // src (COM) - pos
	got := octAccel(oct, d, x*x)
	want := -4 * s3 / math.Pow(x, 5)
	if math.Abs(got.X-want)/math.Abs(want) > 1e-9 {
		t.Fatalf("octopole axis term = %v, want %v", got.X, want)
	}
	if got.Y != 0 || got.Z != 0 {
		t.Fatalf("off-axis components should vanish: %+v", got)
	}
}

// TestOctopoleSeriesConvergence: monopole+quad+oct must approach the exact
// two-body field one order faster than monopole+quad.
func TestOctopoleSeriesConvergence(t *testing.T) {
	m1, m2 := 3.0, 1.0
	a := 1.0
	b := m1 * a / m2
	p1, p2 := Vec3{a, 0.3, -0.2}, Vec3{-b, -0.9, 0.6}
	// Recenter to the COM.
	com := p1.Scale(m1).Add(p2.Scale(m2)).Scale(1 / (m1 + m2))
	p1, p2 = p1.Sub(com), p2.Sub(com)

	var q Quadrupole
	q.Add(pointQuad(m1, p1))
	q.Add(pointQuad(m2, p2))
	var oct Octopole
	oct.Add(pointOct(m1, p1))
	oct.Add(pointOct(m2, p2))

	errAt := func(x float64, withOct bool) float64 {
		pos := Vec3{x, 0.4 * x, -0.3 * x}
		r := pos.Norm()
		d := pos.Scale(-1) // src (COM at origin) - pos
		// Exact field.
		exact := Vec3{}
		for _, mp := range []struct {
			m float64
			p Vec3
		}{{m1, p1}, {m2, p2}} {
			dd := mp.p.Sub(pos)
			rr := dd.Norm()
			exact = exact.Add(dd.Scale(mp.m / (rr * rr * rr)))
		}
		// Multipole approximation.
		approx := d.Scale((m1 + m2) / (r * r * r))
		r5 := math.Pow(r, 5)
		qd := q.Apply(d)
		dqd := d.Dot(qd)
		approx = approx.Sub(qd.Scale(1 / r5)).Add(d.Scale(2.5 * dqd / (r5 * r * r)))
		if withOct {
			approx = approx.Add(octAccel(oct, d, r*r))
		}
		return approx.Sub(exact).Norm() / exact.Norm()
	}

	for _, x := range []float64{8, 16, 32} {
		quadErr := errAt(x, false)
		octErr := errAt(x, true)
		if octErr >= quadErr {
			t.Errorf("x=%v: octopole error %g not below quadrupole %g", x, octErr, quadErr)
		}
	}
	// Order check: doubling the distance should shrink the quad-only
	// error ~16x (next term ~r^-4 relative) vs oct ~32x. Verify the
	// octopole error falls strictly faster.
	qRatio := errAt(8, false) / errAt(32, false)
	oRatio := errAt(8, true) / errAt(32, true)
	if oRatio <= qRatio {
		t.Errorf("octopole error should fall faster: quad ratio %g, oct ratio %g", qRatio, oRatio)
	}
}

func TestOctopoleImprovesTreeForces(t *testing.T) {
	// Full-simulation accuracy: octopole < quadrupole at the same theta.
	errWith := func(octopole bool) float64 {
		bodies := Plummer(256, 4)
		sim, err := NewSimulation(bodies, Config{
			Theta: 1.0, Quadrupole: true, Octopole: octopole,
			Eps: 0.05, DT: 0.01, P: 2,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.ComputeForcesOnly(); err != nil {
			t.Fatal(err)
		}
		exact := DirectForces(bodies, 0.05)
		sumErr, sumMag := 0.0, 0.0
		for i := range exact {
			sumErr += sim.Bodies()[i].Acc.Sub(exact[i]).Norm()
			sumMag += exact[i].Norm()
		}
		return sumErr / sumMag
	}
	quad := errWith(false)
	oct := errWith(true)
	if oct >= quad {
		t.Fatalf("octopole error %g should beat quadrupole %g", oct, quad)
	}
}

// TestOctopoleMatchesScalingNarrative reproduces the Section 6.2 claim:
// octopole moments at the theta floor (0.6) reach accuracy comparable to
// quadrupole at a substantially smaller theta.
func TestOctopoleMatchesScalingNarrative(t *testing.T) {
	run := func(theta float64, octopole bool) float64 {
		bodies := Plummer(256, 7)
		sim, _ := NewSimulation(bodies, Config{
			Theta: theta, Quadrupole: true, Octopole: octopole,
			Eps: 0.05, DT: 0.01, P: 1,
		}, nil)
		if _, err := sim.ComputeForcesOnly(); err != nil {
			t.Fatal(err)
		}
		exact := DirectForces(bodies, 0.05)
		sumErr, sumMag := 0.0, 0.0
		for i := range exact {
			sumErr += sim.Bodies()[i].Acc.Sub(exact[i]).Norm()
			sumMag += exact[i].Norm()
		}
		return sumErr / sumMag
	}
	octAtFloor := run(0.6, true)
	quadSmaller := run(0.45, false)
	quadAtFloor := run(0.6, false)
	// "Comparable" within 2x of quadrupole at the much finer theta, and
	// strictly better than quadrupole at the same theta.
	if octAtFloor > 2*quadSmaller {
		t.Errorf("octopole at theta=0.6 (%g) should be comparable to quadrupole at theta=0.45 (%g)",
			octAtFloor, quadSmaller)
	}
	if octAtFloor >= quadAtFloor {
		t.Errorf("octopole (%g) should beat quadrupole (%g) at theta=0.6", octAtFloor, quadAtFloor)
	}
}

func TestComputeOctopolesReuse(t *testing.T) {
	// The accumulation buffer is reused without leaking stale values.
	bodies := Plummer(64, 8)
	var tr tree
	tr.build(bodies)
	tr.computeMoments(tr.root, bodies)
	octs := tr.computeOctopoles(bodies, nil)
	first := octs[tr.root]
	// Re-run on the same tree: identical result, same backing array.
	octs2 := tr.computeOctopoles(bodies, octs)
	if octs2[tr.root] != first {
		t.Fatal("octopole recomputation differs")
	}
}
