package barneshut

// The octree. Cells are allocated from a pool whose simulated addresses
// are stable across rebuilds (as in the SPLASH implementation the paper
// measures), so cross-time-step reuse is visible to the cache simulators.

// cell is one octree node. Leaves reference a single body (body >= 0);
// internal cells have body == -1 and up to eight children.
type cell struct {
	center Vec3
	half   float64
	body   int // body index for leaves, -1 for internal cells
	child  [8]int32
	// Moments, filled by computeMoments.
	mass float64
	com  Vec3
	quad Quadrupole
	n    int // bodies under this cell
}

const nilCell = int32(-1)

// tree is the octree over a body set.
type tree struct {
	cells       []cell
	root        int32
	buildVisits int // cells touched during the last build (work measure)
}

// reset prepares the pool for a rebuild, keeping capacity (and therefore
// simulated addresses).
func (t *tree) reset(center Vec3, half float64) {
	t.cells = t.cells[:0]
	t.root = t.newCell(center, half)
}

func (t *tree) newCell(center Vec3, half float64) int32 {
	idx := int32(len(t.cells))
	c := cell{center: center, half: half, body: -1}
	for i := range c.child {
		c.child[i] = nilCell
	}
	t.cells = append(t.cells, c)
	return idx
}

// octant returns which child octant of c the position falls in.
func (c *cell) octant(p Vec3) int {
	o := 0
	if p.X >= c.center.X {
		o |= 1
	}
	if p.Y >= c.center.Y {
		o |= 2
	}
	if p.Z >= c.center.Z {
		o |= 4
	}
	return o
}

// childCenter returns the center of octant o of c.
func (c *cell) childCenter(o int) Vec3 {
	h := c.half / 2
	ctr := c.center
	if o&1 != 0 {
		ctr.X += h
	} else {
		ctr.X -= h
	}
	if o&2 != 0 {
		ctr.Y += h
	} else {
		ctr.Y -= h
	}
	if o&4 != 0 {
		ctr.Z += h
	} else {
		ctr.Z -= h
	}
	return ctr
}

// insert adds body bi (at position p) below cell ci.
func (t *tree) insert(ci int32, bi int, bodies []Body) {
	t.buildVisits++
	c := &t.cells[ci]
	if c.body == -1 && c.n == 0 && !t.hasChildren(ci) {
		// Empty cell: make it a leaf.
		c.body = bi
		c.n = 1
		return
	}
	if c.body >= 0 {
		// Occupied leaf: push the resident down, then fall through.
		resident := c.body
		c.body = -1
		t.pushDown(ci, resident, bodies)
		c = &t.cells[ci] // pushDown may grow the pool
	}
	c.n++
	t.pushDown(ci, bi, bodies)
}

func (t *tree) pushDown(ci int32, bi int, bodies []Body) {
	c := &t.cells[ci]
	o := c.octant(bodies[bi].Pos)
	if c.child[o] == nilCell {
		ctr := c.childCenter(o)
		nc := t.newCell(ctr, c.half/2)
		t.cells[ci].child[o] = nc // newCell may have moved the slice
	}
	t.insert(t.cells[ci].child[o], bi, bodies)
}

func (t *tree) hasChildren(ci int32) bool {
	for _, ch := range t.cells[ci].child {
		if ch != nilCell {
			return true
		}
	}
	return false
}

// build constructs the tree over the bodies.
func (t *tree) build(bodies []Body) {
	center, half := boundingCube(bodies)
	t.reset(center, half)
	t.cells[t.root].n = 0
	t.buildVisits = 0
	for i := range bodies {
		t.insert(t.root, i, bodies)
	}
}

// computeMoments fills mass, center of mass and quadrupole moments bottom
// up. Leaf moments are the body's; internal moments aggregate children via
// the parallel-axis shift.
func (t *tree) computeMoments(ci int32, bodies []Body) {
	c := &t.cells[ci]
	if c.body >= 0 {
		b := &bodies[c.body]
		c.mass = b.Mass
		c.com = b.Pos
		c.quad = Quadrupole{}
		c.n = 1
		return
	}
	c.mass = 0
	c.com = Vec3{}
	c.n = 0
	for _, ch := range c.child {
		if ch == nilCell {
			continue
		}
		t.computeMoments(ch, bodies)
		cc := &t.cells[ch]
		c = &t.cells[ci] // recursion cannot grow the pool, but stay safe
		c.mass += cc.mass
		c.com = c.com.Add(cc.com.Scale(cc.mass))
		c.n += cc.n
	}
	if c.mass > 0 {
		c.com = c.com.Scale(1 / c.mass)
	}
	c.quad = Quadrupole{}
	for _, ch := range c.child {
		if ch == nilCell {
			continue
		}
		cc := &t.cells[ch]
		c.quad.Add(shiftQuad(cc.quad, cc.mass, cc.com.Sub(c.com)))
	}
}

// countBodies verifies structural integrity: the number of bodies reachable
// below ci (used by tests).
func (t *tree) countBodies(ci int32) int {
	c := &t.cells[ci]
	if c.body >= 0 {
		return 1
	}
	total := 0
	for _, ch := range c.child {
		if ch != nilCell {
			total += t.countBodies(ch)
		}
	}
	return total
}

// maxDepth reports the deepest leaf below ci.
func (t *tree) maxDepth(ci int32) int {
	c := &t.cells[ci]
	if c.body >= 0 {
		return 1
	}
	deepest := 0
	for _, ch := range c.child {
		if ch != nilCell {
			if d := t.maxDepth(ch); d > deepest {
				deepest = d
			}
		}
	}
	return deepest + 1
}
