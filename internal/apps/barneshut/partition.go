package barneshut

import "sort"

// Costzone partitioning (Singh et al., the scheme the paper's measurements
// rely on for locality): bodies are ordered along a Morton (Z-order)
// space-filling curve and split into contiguous segments of roughly equal
// cost, where a body's cost is the number of interactions it needed last
// step. Contiguity along the curve gives each processor a spatially
// compact region, which is what makes the lev2WS reusable across
// successive bodies.

// mortonKey interleaves the top bits of the quantized coordinates.
func mortonKey(p Vec3, center Vec3, half float64) uint64 {
	const bitsPer = 16
	quant := func(v, c float64) uint64 {
		// Map [c-half, c+half) to [0, 2^bitsPer).
		x := (v - (c - half)) / (2 * half)
		if x < 0 {
			x = 0
		}
		if x >= 1 {
			x = 0.999999999
		}
		return uint64(x * (1 << bitsPer))
	}
	ix, iy, iz := quant(p.X, center.X), quant(p.Y, center.Y), quant(p.Z, center.Z)
	var key uint64
	for b := bitsPer - 1; b >= 0; b-- {
		key = key<<3 | (ix>>uint(b))&1<<2 | (iy>>uint(b))&1<<1 | (iz>>uint(b))&1
	}
	return key
}

// Partition assigns each body to one of p processors. It returns
// assign[bodyIndex] = pe and the per-processor body lists in curve order.
func Partition(bodies []Body, p int) (assign []int, byPE [][]int) {
	n := len(bodies)
	assign = make([]int, n)
	byPE = make([][]int, p)
	if n == 0 {
		return assign, byPE
	}
	center, half := boundingCube(bodies)
	order := make([]int, n)
	keys := make([]uint64, n)
	totalCost := 0
	for i := range bodies {
		order[i] = i
		keys[i] = mortonKey(bodies[i].Pos, center, half)
		c := bodies[i].Cost
		if c <= 0 {
			c = 1
		}
		totalCost += c
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	// Walk the curve, cutting a segment whenever the running cost passes
	// the next 1/p boundary.
	pe := 0
	running := 0
	for _, bi := range order {
		c := bodies[bi].Cost
		if c <= 0 {
			c = 1
		}
		// Advance to the segment this cumulative position belongs to,
		// never beyond the last processor.
		for pe < p-1 && running >= (pe+1)*totalCost/p {
			pe++
		}
		assign[bi] = pe
		byPE[pe] = append(byPE[pe], bi)
		running += c
	}
	return assign, byPE
}

// costImbalance reports max/mean segment cost (1.0 is perfect), used by
// tests and the grain analysis.
func costImbalance(bodies []Body, byPE [][]int) float64 {
	if len(byPE) == 0 {
		return 1
	}
	total, max := 0, 0
	for _, list := range byPE {
		c := 0
		for _, bi := range list {
			w := bodies[bi].Cost
			if w <= 0 {
				w = 1
			}
			c += w
		}
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(byPE))
	return float64(max) / mean
}
