package barneshut

import (
	"math"
	"math/rand"
)

// Body is one particle.
type Body struct {
	Pos, Vel, Acc Vec3
	Mass          float64
	Cost          int // interactions computed last step (costzone weight)
}

// Plummer generates n bodies from the Plummer model — the standard
// galactic initial condition of Barnes-Hut studies — deterministically
// from seed, with total mass 1 and the center of mass at rest at the
// origin.
func Plummer(n int, seed int64) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	const rcut = 8.0 // truncate the halo to keep the box bounded
	for i := range bodies {
		m := 1.0 / float64(n)
		// Radius from the inverse cumulative mass profile.
		var r float64
		for {
			u := rng.Float64()
			if u == 0 {
				continue
			}
			r = 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
			if r < rcut {
				break
			}
		}
		pos := randomDirection(rng).Scale(r)
		// Speed by von Neumann rejection on g(q) = q^2 (1-q^2)^(7/2).
		var q float64
		for {
			q = rng.Float64()
			g := 0.1 * rng.Float64()
			if g < q*q*math.Pow(1-q*q, 3.5) {
				break
			}
		}
		vesc := math.Sqrt2 * math.Pow(1+r*r, -0.25)
		vel := randomDirection(rng).Scale(q * vesc)
		bodies[i] = Body{Pos: pos, Vel: vel, Mass: m}
	}
	// Zero the aggregate momentum and recentre.
	var cm, cv Vec3
	for _, b := range bodies {
		cm = cm.Add(b.Pos.Scale(b.Mass))
		cv = cv.Add(b.Vel.Scale(b.Mass))
	}
	for i := range bodies {
		bodies[i].Pos = bodies[i].Pos.Sub(cm)
		bodies[i].Vel = bodies[i].Vel.Sub(cv)
	}
	return bodies
}

func randomDirection(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		n2 := v.Norm2()
		if n2 > 1e-6 && n2 <= 1 {
			return v.Scale(1 / math.Sqrt(n2))
		}
	}
}

// boundingCube returns the center and half-width of a cube containing all
// bodies (with a little slack so boundary comparisons stay strict).
func boundingCube(bodies []Body) (center Vec3, half float64) {
	if len(bodies) == 0 {
		return Vec3{}, 1
	}
	min := bodies[0].Pos
	max := bodies[0].Pos
	for _, b := range bodies[1:] {
		min.X = math.Min(min.X, b.Pos.X)
		min.Y = math.Min(min.Y, b.Pos.Y)
		min.Z = math.Min(min.Z, b.Pos.Z)
		max.X = math.Max(max.X, b.Pos.X)
		max.Y = math.Max(max.Y, b.Pos.Y)
		max.Z = math.Max(max.Z, b.Pos.Z)
	}
	center = min.Add(max).Scale(0.5)
	half = math.Max(max.X-min.X, math.Max(max.Y-min.Y, max.Z-min.Z))/2 + 1e-9
	return center, half * 1.001
}

// TotalEnergy computes kinetic plus (exact pairwise, softened) potential
// energy — the conservation invariant the integrator tests check.
func TotalEnergy(bodies []Body, eps float64) float64 {
	e := 0.0
	for i := range bodies {
		e += 0.5 * bodies[i].Mass * bodies[i].Vel.Norm2()
		for j := i + 1; j < len(bodies); j++ {
			d := bodies[i].Pos.Sub(bodies[j].Pos)
			e -= bodies[i].Mass * bodies[j].Mass / math.Sqrt(d.Norm2()+eps*eps)
		}
	}
	return e
}

// TotalMomentum returns the aggregate momentum vector.
func TotalMomentum(bodies []Body) Vec3 {
	var p Vec3
	for _, b := range bodies {
		p = p.Add(b.Vel.Scale(b.Mass))
	}
	return p
}

// TwoGalaxies builds a colliding pair: two Plummer spheres of n/2 bodies,
// offset and given approach velocities, a classic stress workload — the
// costzone partition must track mass as the systems interpenetrate.
func TwoGalaxies(n int, seed int64) []Body {
	a := Plummer(n/2, seed)
	b := Plummer(n-n/2, seed+1)
	const sep, speed = 4.0, 0.3
	for i := range a {
		a[i].Pos.X -= sep / 2
		a[i].Vel.X += speed / 2
		a[i].Mass /= 2
	}
	for i := range b {
		b[i].Pos.X += sep / 2
		b[i].Vel.X -= speed / 2
		b[i].Mass /= 2
	}
	return append(a, b...)
}
