package lu

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Householder QR, the third member of Section 3's family ("dense QR
// factorization ... [has] very similar structure"). The kernel is
// column-oriented reflector application, so the level-1 working set is
// again two columns — the same shape as LU's, which is the family claim
// this file lets the tests check.

// Dense is an m x n column-major matrix with simulated addresses.
type Dense struct {
	M, N int
	a    []float64
	base uint64
}

// NewDense allocates an m x n dense matrix with addresses from arena
// (nil for a private arena).
func NewDense(m, n int, arena *trace.Arena) *Dense {
	if m <= 0 || n <= 0 {
		panic("lu: dense dimensions must be positive")
	}
	if arena == nil {
		arena = &trace.Arena{}
	}
	return &Dense{M: m, N: n, a: make([]float64, m*n), base: arena.AllocDW(uint64(m * n))}
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.a[j*d.M+i] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.a[j*d.M+i] = v }

// addr returns the simulated address of element (i,j).
func (d *Dense) addr(i, j int) uint64 { return d.base + uint64(j*d.M+i)*8 }

// Clone deep-copies the matrix (same simulated addresses).
func (d *Dense) Clone() *Dense {
	c := &Dense{M: d.M, N: d.N, a: append([]float64(nil), d.a...), base: d.base}
	return c
}

// QRResult carries the factorization output: R sits in the upper triangle
// of A; V holds the unit-norm Householder vectors (column j's reflector in
// V[j:m, j]).
type QRResult struct {
	A, V  *Dense
	Stats TraceStats
}

// QRFactor computes A = Q*R with Householder reflections, columns
// distributed cyclically over grid.P() processors (the standard 1-D QR
// decomposition: column j's reflector is built by its owner; every trailing
// column's owner applies it). sink may be nil.
func QRFactor(a *Dense, grid Grid, sink trace.Consumer) (*QRResult, error) {
	if grid.PR <= 0 || grid.PC <= 0 {
		return nil, fmt.Errorf("lu: invalid grid %+v", grid)
	}
	if a.M < a.N {
		return nil, fmt.Errorf("lu: QR requires m >= n (got %dx%d)", a.M, a.N)
	}
	p := grid.P()
	batch := trace.NewBatcher(sink)
	defer batch.Flush()
	em := make([]*trace.Emitter, p)
	for pe := range em {
		em[pe] = batch.Emitter(pe)
	}
	v := NewDense(a.M, a.N, nil)
	res := &QRResult{A: a, V: v}
	res.Stats.FLOPsByPE = make([]float64, p)
	res.Stats.FLOPsByK = make([]float64, a.N)

	for j := 0; j < a.N; j++ {
		batch.BeginEpoch(j)
		owner := j % p
		e := em[owner]
		flops := 0.0
		// Build the reflector from column j below the diagonal.
		norm2 := 0.0
		for i := j; i < a.M; i++ {
			e.LoadDW(a.addr(i, j))
			norm2 += a.At(i, j) * a.At(i, j)
			flops += 2
		}
		norm := math.Sqrt(norm2)
		if norm == 0 {
			return nil, fmt.Errorf("lu: rank-deficient column %d", j)
		}
		alpha := -norm
		if a.At(j, j) < 0 {
			alpha = norm
		}
		// v = x - alpha*e1, normalized.
		vnorm2 := norm2 - 2*alpha*a.At(j, j) + alpha*alpha
		vn := math.Sqrt(vnorm2)
		for i := j; i < a.M; i++ {
			x := a.At(i, j)
			if i == j {
				x -= alpha
			}
			v.Set(i, j, x/vn)
			e.StoreDW(v.addr(i, j))
			flops++
		}
		// Column j of R: alpha on the diagonal, zeros below.
		a.Set(j, j, alpha)
		e.StoreDW(a.addr(j, j))
		for i := j + 1; i < a.M; i++ {
			a.Set(i, j, 0)
			e.StoreDW(a.addr(i, j))
		}
		res.Stats.FLOPsByPE[owner] += flops
		res.Stats.FLOPsByK[j] += flops

		// Apply I - 2 v v^T to each trailing column, owner-computes.
		for c := j + 1; c < a.N; c++ {
			co := c % p
			ce := em[co]
			w := 0.0
			for i := j; i < a.M; i++ {
				ce.LoadDW(v.addr(i, j))
				ce.LoadDW(a.addr(i, c))
				w += v.At(i, j) * a.At(i, c)
			}
			for i := j; i < a.M; i++ {
				ce.LoadDW(v.addr(i, j))
				ce.LoadDW(a.addr(i, c))
				a.Set(i, c, a.At(i, c)-2*w*v.At(i, j))
				ce.StoreDW(a.addr(i, c))
			}
			f := 4 * float64(a.M-j)
			res.Stats.FLOPsByPE[co] += f
			res.Stats.FLOPsByK[j] += f
		}
	}
	return res, nil
}

// ApplyQ computes Q*x (len m) by applying the reflectors in reverse,
// untraced — used for verification and least-squares style consumers.
func (r *QRResult) ApplyQ(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j := r.A.N - 1; j >= 0; j-- {
		w := 0.0
		for i := j; i < r.A.M; i++ {
			w += r.V.At(i, j) * out[i]
		}
		for i := j; i < r.A.M; i++ {
			out[i] -= 2 * w * r.V.At(i, j)
		}
	}
	return out
}

// ApplyQT computes Q^T*x by applying the reflectors in forward order.
func (r *QRResult) ApplyQT(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j := 0; j < r.A.N; j++ {
		w := 0.0
		for i := j; i < r.A.M; i++ {
			w += r.V.At(i, j) * out[i]
		}
		for i := j; i < r.A.M; i++ {
			out[i] -= 2 * w * r.V.At(i, j)
		}
	}
	return out
}
