package lu

import (
	"math"
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

func TestBlockMatrixAddressing(t *testing.T) {
	m := NewBlockMatrix(8, 4, nil)
	m.Set(5, 6, 3.5)
	if got := m.At(5, 6); got != 3.5 {
		t.Fatalf("At(5,6) = %v", got)
	}
	// Column-major within block: (i+1,j) is 8 bytes after (i,j).
	if m.elemAddr(0, 0, 1, 0)-m.elemAddr(0, 0, 0, 0) != 8 {
		t.Fatal("within-column stride should be 8")
	}
	if m.elemAddr(0, 0, 0, 1)-m.elemAddr(0, 0, 0, 0) != 8*4 {
		t.Fatal("column stride should be B*8")
	}
	// Distinct blocks occupy distinct address ranges.
	if m.BlockAddr(0, 1) == m.BlockAddr(1, 0) {
		t.Fatal("blocks must not alias")
	}
}

func TestBlockMatrixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when B does not divide N")
		}
	}()
	NewBlockMatrix(10, 4, nil)
}

func TestGridOwner(t *testing.T) {
	g := Grid{PR: 2, PC: 3}
	if g.P() != 6 {
		t.Fatalf("P = %d", g.P())
	}
	// (I mod 2, J mod 3) flattened as r*PC+c.
	if got := g.Owner(0, 0); got != 0 {
		t.Fatalf("Owner(0,0) = %d", got)
	}
	if got := g.Owner(1, 2); got != 5 {
		t.Fatalf("Owner(1,2) = %d", got)
	}
	if got := g.Owner(2, 3); got != 0 {
		t.Fatalf("Owner(2,3) = %d (wraps)", got)
	}
}

// TestFactorReconstructs is the numeric ground truth: L*U must reproduce
// the original matrix to tight tolerance.
func TestFactorReconstructs(t *testing.T) {
	for _, cfg := range []struct{ n, b int }{{8, 4}, {16, 4}, {24, 8}, {32, 16}} {
		m := NewBlockMatrix(cfg.n, cfg.b, nil)
		m.FillRandomDominant(1)
		orig := m.Clone()
		if err := Factor(m); err != nil {
			t.Fatalf("n=%d b=%d: %v", cfg.n, cfg.b, err)
		}
		if diff := m.MulLU().MaxAbsDiff(orig); diff > 1e-9*float64(cfg.n) {
			t.Errorf("n=%d b=%d: reconstruction error %g", cfg.n, cfg.b, diff)
		}
	}
}

func TestFactorMatchesUnblocked(t *testing.T) {
	// Blocked LU with B=n is plain LU; different block sizes must agree.
	a := NewBlockMatrix(16, 16, nil)
	a.FillRandomDominant(7)
	b := NewBlockMatrix(16, 4, nil)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			b.Set(i, j, a.At(i, j))
		}
	}
	if err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if err := Factor(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > 1e-9 {
				t.Fatalf("factors disagree at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func TestFactorZeroPivot(t *testing.T) {
	m := NewBlockMatrix(8, 4, nil) // all zeros
	if err := Factor(m); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func TestFactorTracedFLOPs(t *testing.T) {
	m := NewBlockMatrix(32, 8, nil)
	m.FillRandomDominant(3)
	var counter trace.Counter
	stats, err := FactorTraced(m, Grid{2, 2}, &counter)
	if err != nil {
		t.Fatal(err)
	}
	// Total FLOPs should be near 2n^3/3 (within the O(n^2) boundary terms
	// of the triangular-solve and diagonal-factor corrections).
	want := 2.0 * 32 * 32 * 32 / 3
	got := stats.TotalFLOPs()
	if math.Abs(got-want)/want > 0.30 {
		t.Fatalf("total FLOPs = %v, want within 30%% of %v", got, want)
	}
	if counter.Refs == 0 {
		t.Fatal("traced run emitted no references")
	}
	// Epoch FLOPs decrease with K (shrinking trailing matrix).
	if stats.FLOPsByK[0] <= stats.FLOPsByK[len(stats.FLOPsByK)-1] {
		t.Fatal("first K iteration should dominate the last")
	}
	// Work is spread over all 4 PEs.
	for pe, f := range stats.FLOPsByPE {
		if f == 0 {
			t.Errorf("PE %d did no work", pe)
		}
	}
}

func TestFactorTracedSameNumbers(t *testing.T) {
	// Tracing must not change the arithmetic.
	a := NewBlockMatrix(16, 4, nil)
	a.FillRandomDominant(9)
	b := a.Clone()
	if err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if _, err := FactorTraced(b, Grid{2, 2}, trace.Discard); err != nil {
		t.Fatal(err)
	}
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("traced factorization changed results by %g", d)
	}
}

func TestModelPaperNumbers(t *testing.T) {
	// The paper's prototypical problem: n=10,000, B=16, P=1024.
	mo := Model{N: 10000, B: 16, P: 1024}
	if err := mo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := mo.Lev1WS(); got != 256 { // paper: "roughly 260 bytes"
		t.Errorf("lev1WS = %d, want 256", got)
	}
	if got := mo.Lev2WS(); got != 2048 { // paper: "roughly 2200 bytes"
		t.Errorf("lev2WS = %d, want 2048", got)
	}
	if got := mo.Lev3WS(); got != 80000 { // paper: "roughly 80 Kbytes"
		t.Errorf("lev3WS = %d, want 80000", got)
	}
	// Comm/comp ratio: 2n/(3*sqrt(P)) ~ 208 ("roughly 200 FLOPs/word").
	if got := mo.CommToCompRatio(); math.Abs(got-208.33) > 0.5 {
		t.Errorf("comm/comp = %v, want ~208.3", got)
	}
	// ~380 blocks per PE ("roughly 380").
	if got := mo.BlocksPerPE(); math.Abs(got-381.5) > 1 {
		t.Errorf("blocks/PE = %v, want ~381", got)
	}
	// 1 Mbyte grain ("1 Gbyte data set ... 1 Mbyte per node").
	if got := mo.GrainBytes(); got != 781250 { // 10000^2*8/1024
		t.Errorf("grain = %d", got)
	}
}

func TestModelScaleInvariance(t *testing.T) {
	// Section 3.3: fixing the grain size fixes the ratio and the load
	// balance. 20,000^2 on 4096 PEs matches 10,000^2 on 1024.
	a := Model{N: 10000, B: 16, P: 1024}
	b := Model{N: 20000, B: 16, P: 4096}
	if math.Abs(a.CommToCompRatio()-b.CommToCompRatio()) > 1e-9 {
		t.Error("comm/comp should depend only on grain size")
	}
	if math.Abs(a.BlocksPerPE()-b.BlocksPerPE()) > 1e-9 {
		t.Error("blocks/PE should be unchanged under MC scaling")
	}
	// And the important working set is independent of n and P entirely.
	if a.Lev2WS() != b.Lev2WS() {
		t.Error("lev2WS must depend only on B")
	}
}

func TestModelGrainScenario16K(t *testing.T) {
	// Section 3.3: same 1 GB problem on 16K processors: ratio drops ~4x
	// to ~50 and blocks/PE to ~25.
	mo := Model{N: 10000, B: 16, P: 16384}
	if got := mo.CommToCompRatio(); math.Abs(got-52.1) > 0.5 {
		t.Errorf("comm/comp at 16K PEs = %v, want ~52", got)
	}
	if got := mo.BlocksPerPE(); math.Abs(got-23.8) > 1 {
		t.Errorf("blocks/PE at 16K PEs = %v, want ~24", got)
	}
}

func TestModelCurveShape(t *testing.T) {
	mo := Model{N: 1024, B: 16, P: 16}
	sizes := workingset.LogSizes(64, 1<<20, 2)
	curve := mo.Curve(sizes)
	if err := curve.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rates step down monotonically.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].MissRate > curve.Points[i-1].MissRate {
			t.Fatal("model curve must be non-increasing")
		}
	}
	// Knees appear at lev1 and lev2 at least.
	knees := workingset.FindKnees(curve, 1.5, 0.001)
	if len(knees) < 2 {
		t.Fatalf("expected >=2 knees, got %+v", knees)
	}
}

// TestSimulationMatchesModel cross-validates the traced simulation against
// the analytic plateaus on a small instance: the measured misses/FLOP at
// cache sizes between lev2WS and lev3WS should sit near 1/B, and beyond
// lev4WS near the cold/communication floor.
func TestSimulationMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check is slow")
	}
	const (
		n  = 128
		b  = 8
		pr = 2
		pc = 2
	)
	mo := Model{N: n, B: b, P: pr * pc}
	m := NewBlockMatrix(n, b, nil)
	m.FillRandomDominant(5)

	const pe = 3
	prof := cache.MustStackProfiler(8)
	sink := trace.PEFilter{PE: pe, Next: profConsumer{prof}}
	stats, err := FactorTraced(m, Grid{pr, pc}, sink)
	if err != nil {
		t.Fatal(err)
	}
	flops := stats.FLOPsByPE[pe]
	if flops == 0 {
		t.Fatal("profiled PE did no work")
	}

	missPerFLOP := func(bytes uint64) float64 {
		lines := int(bytes / 8)
		return float64(prof.MissesAt(lines).Misses()) / flops
	}

	// Plateau between lev2WS (512 B) and lev3WS (2*128*8*8/2 = 8192 B):
	// model says 1/B = 0.125.
	got := missPerFLOP(2048)
	if got < 0.5/float64(b) || got > 2.0/float64(b) {
		t.Errorf("plateau at 2KB: %v, want near %v", got, 1/float64(b))
	}
	// Tiny cache: near 1 miss/FLOP (within a factor ~1.6: loop overheads
	// in the panel phases shift it a little).
	got0 := missPerFLOP(8)
	if got0 < 0.6 || got0 > 1.7 {
		t.Errorf("tiny-cache rate = %v, want near 1.0", got0)
	}
	// Huge cache: at most the cold+communication floor, well below 1/(2B).
	gotInf := missPerFLOP(1 << 26)
	if gotInf > 1/(2*float64(b)) {
		t.Errorf("infinite-cache rate = %v, want < %v", gotInf, 1/(2*float64(b)))
	}
	// And the ordering of plateaus is monotone like the model's.
	if !(got0 > got && got > gotInf) {
		t.Errorf("plateaus not ordered: %v, %v, %v", got0, got, gotInf)
	}
	_ = mo
}

// profConsumer adapts a StackProfiler to trace.Consumer.
type profConsumer struct{ p *cache.StackProfiler }

func (c profConsumer) Ref(r trace.Ref) {
	c.p.Access(r.Addr, r.Size, r.Kind == trace.Read)
}

func TestSolveRecoversKnownSolution(t *testing.T) {
	for _, cfg := range []struct{ n, b int }{{16, 4}, {32, 8}} {
		m := NewBlockMatrix(cfg.n, cfg.b, nil)
		m.FillRandomDominant(13)
		orig := m.Clone()
		want := make([]float64, cfg.n)
		for i := range want {
			want[i] = float64(i%7) - 3
		}
		rhs := orig.MulVec(want)
		if err := Factor(m); err != nil {
			t.Fatal(err)
		}
		x, err := Solve(m, Grid{2, 2}, rhs, trace.Discard)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := math.Abs(x[i] - want[i]); d > 1e-8 {
				t.Fatalf("n=%d: x[%d] off by %g", cfg.n, i, d)
			}
		}
		// The RHS must be untouched.
		check := orig.MulVec(want)
		for i := range rhs {
			if rhs[i] != check[i] {
				t.Fatal("Solve modified its input")
			}
		}
	}
}

func TestSolveValidation(t *testing.T) {
	m := NewBlockMatrix(8, 4, nil)
	m.FillRandomDominant(1)
	if err := Factor(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(m, Grid{1, 1}, make([]float64, 3), nil); err == nil {
		t.Error("wrong rhs length accepted")
	}
	if _, err := Solve(m, Grid{0, 1}, make([]float64, 8), nil); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestSolveTracedEmits(t *testing.T) {
	m := NewBlockMatrix(16, 4, nil)
	m.FillRandomDominant(2)
	if err := Factor(m); err != nil {
		t.Fatal(err)
	}
	var counter trace.Counter
	if _, err := Solve(m, Grid{2, 2}, make([]float64, 16), &counter); err != nil {
		t.Fatal(err)
	}
	if counter.Refs == 0 {
		t.Fatal("traced solve emitted nothing")
	}
}
