package lu

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Band (skyline) Cholesky — Section 3's final family member: "and in many
// respects sparse Cholesky factorization". The canonical sparse SPD source
// is the naturally-ordered grid Laplacian, whose factor fills the band, so
// band storage captures the classic sparse direct solver's behaviour: the
// per-row kernel sweeps the previous `w` rows, making the working set two
// band rows (O(w) = O(sqrt n) for a 2-D grid) — bigger than dense LU's
// constant blocks, smaller than the data set, exactly the intermediate
// regime the paper's "in many respects" hedges at.

// BandMatrix is a symmetric banded matrix stored by rows: row i holds
// entries for columns [i-w, i] in a fixed-stride slab (entries left of the
// matrix are zero padding).
type BandMatrix struct {
	N, W int // dimension, half bandwidth
	a    []float64
	base uint64
}

// NewBandMatrix allocates an n x n symmetric band matrix with half
// bandwidth w, with simulated addresses from arena (nil for private).
func NewBandMatrix(n, w int, arena *trace.Arena) *BandMatrix {
	if n <= 0 || w < 0 || w >= n {
		panic(fmt.Sprintf("lu: bad band matrix n=%d w=%d", n, w))
	}
	if arena == nil {
		arena = &trace.Arena{}
	}
	return &BandMatrix{
		N: n, W: w,
		a:    make([]float64, n*(w+1)),
		base: arena.AllocDW(uint64(n * (w + 1))),
	}
}

// slot maps (i,j) with i-w <= j <= i to storage.
func (m *BandMatrix) slot(i, j int) int { return i*(m.W+1) + (j - i + m.W) }

// addr returns the simulated address of entry (i,j).
func (m *BandMatrix) addr(i, j int) uint64 { return m.base + uint64(m.slot(i, j))*8 }

// At returns entry (i,j) of the lower triangle (zero outside the band).
func (m *BandMatrix) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	if j < i-m.W {
		return 0
	}
	return m.a[m.slot(i, j)]
}

// Set assigns entry (i,j) of the lower triangle (j <= i, within the band).
func (m *BandMatrix) Set(i, j int, v float64) {
	if j > i || j < i-m.W {
		panic("lu: band entry out of range")
	}
	m.a[m.slot(i, j)] = v
}

// Clone deep-copies the matrix.
func (m *BandMatrix) Clone() *BandMatrix {
	return &BandMatrix{N: m.N, W: m.W, a: append([]float64(nil), m.a...), base: m.base}
}

// GridLaplacian fills the matrix with the 5-point Laplacian of an s x s
// grid in natural order (n = s^2, w = s): the textbook sparse SPD system.
func GridLaplacian(s int, arena *trace.Arena) *BandMatrix {
	n := s * s
	m := NewBandMatrix(n, s, arena)
	for i := 0; i < n; i++ {
		m.Set(i, i, 4)
		if i%s != 0 {
			m.Set(i, i-1, -1)
		}
		if i >= s {
			m.Set(i, i-s, -1)
		}
	}
	return m
}

// BandCholesky factors the matrix in place (A = L L^T, L in the band) with
// rows distributed cyclically over grid.P() processors, emitting each
// owner's references. sink may be nil.
func BandCholesky(m *BandMatrix, grid Grid, sink trace.Consumer) (TraceStats, error) {
	if grid.PR <= 0 || grid.PC <= 0 {
		return TraceStats{}, fmt.Errorf("lu: invalid grid %+v", grid)
	}
	p := grid.P()
	batch := trace.NewBatcher(sink)
	defer batch.Flush()
	em := make([]*trace.Emitter, p)
	for pe := range em {
		em[pe] = batch.Emitter(pe)
	}
	stats := TraceStats{FLOPsByPE: make([]float64, p), FLOPsByK: make([]float64, m.N)}

	for i := 0; i < m.N; i++ {
		if i%m.W == 0 {
			batch.BeginEpoch(i / m.W)
		}
		owner := i % p
		e := em[owner]
		flops := 0.0
		lo := i - m.W
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			// L[i][j] = (A[i][j] - sum_k L[i][k] L[j][k]) / L[j][j].
			e.LoadDW(m.addr(i, j))
			sum := m.a[m.slot(i, j)]
			klo := j - m.W
			if klo < lo {
				klo = lo
			}
			for k := klo; k < j; k++ {
				e.LoadDW(m.addr(i, k))
				e.LoadDW(m.addr(j, k))
				sum -= m.a[m.slot(i, k)] * m.a[m.slot(j, k)]
				flops += 2
			}
			if j == i {
				if sum <= 0 {
					return stats, fmt.Errorf("lu: band matrix not positive definite at row %d", i)
				}
				m.a[m.slot(i, j)] = math.Sqrt(sum)
			} else {
				e.LoadDW(m.addr(j, j))
				m.a[m.slot(i, j)] = sum / m.a[m.slot(j, j)]
				flops++
			}
			e.StoreDW(m.addr(i, j))
		}
		stats.FLOPsByPE[owner] += flops
		stats.FLOPsByK[i/m.W] += flops
	}
	return stats, nil
}

// MulLLTBand reconstructs A = L L^T from a factored band matrix (dense
// output for verification on small systems).
func (m *BandMatrix) MulLLTBand() [][]float64 {
	out := make([][]float64, m.N)
	for i := range out {
		out[i] = make([]float64, m.N)
	}
	lAt := func(i, j int) float64 {
		if j > i || j < i-m.W {
			return 0
		}
		return m.a[m.slot(i, j)]
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += lAt(i, k) * lAt(j, k)
			}
			out[i][j] = sum
			out[j][i] = sum
		}
	}
	return out
}

// BandModel summarizes the band kernel's working sets: the important set is
// two band rows (16(w+1) bytes, O(sqrt n) for grids), and the FLOP count is
// about n*w^2 (each row sweeps a w x w triangle of the band).
type BandModel struct {
	N, W, P int
}

// Lev1WS is two band rows.
func (m BandModel) Lev1WS() uint64 { return uint64(2 * (m.W + 1) * 8) }

// Lev2WS is the active window: w band rows.
func (m BandModel) Lev2WS() uint64 { return uint64((m.W + 1) * (m.W + 1) * 8) }

// FLOPs is about n*w^2.
func (m BandModel) FLOPs() float64 {
	return float64(m.N) * float64(m.W) * float64(m.W)
}

// DataSetBytes is the band storage.
func (m BandModel) DataSetBytes() uint64 { return uint64(m.N*(m.W+1)) * 8 }
