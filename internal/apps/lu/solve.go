package lu

import (
	"fmt"

	"wsstudy/internal/trace"
)

// Triangular solves: the paper's motivating radar-cross-section problems
// factor once and then solve for many right-hand sides, so a usable direct
// solver needs Ax=b on top of the factorization. The solves stream the
// factored blocks once (no block reuse), which is why the paper's analysis
// concentrates on the factorization.

// Solve computes x with A x = b, where f holds the in-place LU factors of
// A (from Factor or FactorTraced). b is not modified. The traced variant
// charges the work to block owners under grid; pass a nil sink (or
// Grid{1,1}) for a plain numeric solve.
func Solve(f *BlockMatrix, grid Grid, b []float64, sink trace.Consumer) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("lu: rhs length %d != n=%d", len(b), f.N)
	}
	if grid.PR <= 0 || grid.PC <= 0 {
		return nil, fmt.Errorf("lu: invalid grid %+v", grid)
	}
	batch := trace.NewBatcher(sink)
	defer batch.Flush()
	em := make([]*trace.Emitter, grid.P())
	for pe := range em {
		em[pe] = batch.Emitter(pe)
	}
	// The solution vector lives in one contiguous region; which PE holds
	// an element is irrelevant to the working-set story (the vector is
	// tiny next to the matrix).
	var arena trace.Arena
	xBase := arena.AllocDW(uint64(f.N))
	x := append([]float64(nil), b...)

	// Forward substitution: L y = b (unit diagonal).
	for bj := 0; bj < f.NB; bj++ {
		for bi := bj; bi < f.NB; bi++ {
			e := em[grid.Owner(bi, bj)]
			f.solveForwardBlock(bi, bj, x, xBase, e)
		}
	}
	// Back substitution: U x = y.
	for bj := f.NB - 1; bj >= 0; bj-- {
		for bi := bj; bi >= 0; bi-- {
			e := em[grid.Owner(bi, bj)]
			f.solveBackwardBlock(bi, bj, x, xBase, e)
		}
	}
	return x, nil
}

// solveForwardBlock applies block (bi,bj) of L during forward substitution:
// the diagonal block solves its span; off-diagonal blocks subtract their
// contribution from the rows below.
func (m *BlockMatrix) solveForwardBlock(bi, bj int, x []float64, xBase uint64, e *trace.Emitter) {
	b := m.B
	r0, c0 := bi*b, bj*b
	if bi == bj {
		// Unit-lower triangular solve within the block.
		for j := 0; j < b; j++ {
			e.LoadDW(xBase + uint64(c0+j)*8)
			for i := j + 1; i < b; i++ {
				e.LoadDW(m.elemAddr(bi, bj, i, j))
				e.LoadDW(xBase + uint64(r0+i)*8)
				x[r0+i] -= m.block(bi, bj)[j*b+i] * x[c0+j]
				e.StoreDW(xBase + uint64(r0+i)*8)
			}
		}
		return
	}
	// x[rows of bi] -= L[bi][bj] * x[cols of bj].
	blk := m.block(bi, bj)
	for j := 0; j < b; j++ {
		e.LoadDW(xBase + uint64(c0+j)*8)
		v := x[c0+j]
		for i := 0; i < b; i++ {
			e.LoadDW(m.elemAddr(bi, bj, i, j))
			e.LoadDW(xBase + uint64(r0+i)*8)
			x[r0+i] -= blk[j*b+i] * v
			e.StoreDW(xBase + uint64(r0+i)*8)
		}
	}
}

// solveBackwardBlock applies block (bi,bj) of U during back substitution.
func (m *BlockMatrix) solveBackwardBlock(bi, bj int, x []float64, xBase uint64, e *trace.Emitter) {
	b := m.B
	r0, c0 := bi*b, bj*b
	blk := m.block(bi, bj)
	if bi == bj {
		for j := b - 1; j >= 0; j-- {
			e.LoadDW(m.elemAddr(bi, bj, j, j))
			e.LoadDW(xBase + uint64(c0+j)*8)
			x[c0+j] /= blk[j*b+j]
			e.StoreDW(xBase + uint64(c0+j)*8)
			for i := j - 1; i >= 0; i-- {
				e.LoadDW(m.elemAddr(bi, bj, i, j))
				e.LoadDW(xBase + uint64(r0+i)*8)
				x[r0+i] -= blk[j*b+i] * x[c0+j]
				e.StoreDW(xBase + uint64(r0+i)*8)
			}
		}
		return
	}
	for j := 0; j < b; j++ {
		e.LoadDW(xBase + uint64(c0+j)*8)
		v := x[c0+j]
		for i := 0; i < b; i++ {
			e.LoadDW(m.elemAddr(bi, bj, i, j))
			e.LoadDW(xBase + uint64(r0+i)*8)
			x[r0+i] -= blk[j*b+i] * v
			e.StoreDW(xBase + uint64(r0+i)*8)
		}
	}
}

// MulVec computes A*x for an unfactored matrix (verification helper).
func (m *BlockMatrix) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic("lu: vector length mismatch")
	}
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for j := 0; j < m.N; j++ {
			sum += m.At(i, j) * x[j]
		}
		out[i] = sum
	}
	return out
}
