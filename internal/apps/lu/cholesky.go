package lu

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Blocked Cholesky factorization. Section 3 notes that the LU analysis
// "applies to a wider set of applications", naming dense Cholesky
// explicitly; this file provides that sibling kernel on the same
// BlockMatrix substrate, with the same 2-D scatter decomposition and the
// same traced-reference machinery, so the working-set claims can be
// checked on a second member of the class.
//
// The factorization computes A = L * L^T in the lower triangle (the upper
// triangle is ignored); A must be symmetric positive definite.

// Cholesky performs in-place blocked Cholesky factorization, leaving L in
// the lower triangle (diagonal included).
func Cholesky(m *BlockMatrix) error {
	_, err := cholesky(m, Grid{1, 1}, nil)
	return err
}

// CholeskyTraced factors with the parallel structure of the 2-D scatter
// decomposition, emitting every processor's references, exactly like
// FactorTraced.
func CholeskyTraced(m *BlockMatrix, grid Grid, sink trace.Consumer) (TraceStats, error) {
	if grid.PR <= 0 || grid.PC <= 0 {
		return TraceStats{}, fmt.Errorf("lu: invalid grid %+v", grid)
	}
	return cholesky(m, grid, sink)
}

func cholesky(m *BlockMatrix, grid Grid, sink trace.Consumer) (TraceStats, error) {
	stats := TraceStats{
		FLOPsByPE: make([]float64, grid.P()),
		FLOPsByK:  make([]float64, m.NB),
	}
	batch := trace.NewBatcher(sink)
	defer batch.Flush()
	emitters := make([]*trace.Emitter, grid.P())
	for pe := range emitters {
		emitters[pe] = batch.Emitter(pe)
	}

	for k := 0; k < m.NB; k++ {
		batch.BeginEpoch(k)
		flops := 0.0
		// Factor the diagonal block: A_kk = L_kk L_kk^T.
		pe := grid.Owner(k, k)
		f, err := m.cholDiag(k, emitters[pe])
		if err != nil {
			return stats, fmt.Errorf("lu: cholesky K=%d: %w", k, err)
		}
		stats.FLOPsByPE[pe] += f
		flops += f

		// Panel: A_ik <- A_ik * L_kk^-T for i > k.
		for i := k + 1; i < m.NB; i++ {
			pe := grid.Owner(i, k)
			f := m.cholPanel(i, k, emitters[pe])
			stats.FLOPsByPE[pe] += f
			flops += f
		}

		// Trailing update on the lower triangle only:
		// A_ij -= A_ik * A_jk^T for k < j <= i.
		for i := k + 1; i < m.NB; i++ {
			for j := k + 1; j <= i; j++ {
				pe := grid.Owner(i, j)
				f := m.cholUpdate(i, j, k, emitters[pe])
				stats.FLOPsByPE[pe] += f
				flops += f
			}
		}
		stats.FLOPsByK[k] = flops
	}
	return stats, nil
}

// cholDiag runs unblocked Cholesky on diagonal block (k,k).
func (m *BlockMatrix) cholDiag(k int, e *trace.Emitter) (float64, error) {
	blk := m.block(k, k)
	b := m.B
	flops := 0.0
	for p := 0; p < b; p++ {
		// Diagonal element: sqrt(a_pp - sum of squares of the row).
		app := m.elemAddr(k, k, p, p)
		e.LoadDW(app)
		sum := blk[p*b+p]
		for c := 0; c < p; c++ {
			apc := m.elemAddr(k, k, p, c)
			e.LoadDW(apc)
			v := blk[c*b+p]
			sum -= v * v
			flops += 2
		}
		if sum <= 0 {
			return flops, fmt.Errorf("matrix not positive definite at block element %d", p)
		}
		d := math.Sqrt(sum)
		blk[p*b+p] = d
		e.StoreDW(app)
		inv := 1 / d
		for i := p + 1; i < b; i++ {
			aip := m.elemAddr(k, k, i, p)
			e.LoadDW(aip)
			s := blk[p*b+i]
			for c := 0; c < p; c++ {
				e.LoadDW(m.elemAddr(k, k, i, c))
				e.LoadDW(m.elemAddr(k, k, p, c))
				s -= blk[c*b+i] * blk[c*b+p]
				flops += 2
			}
			blk[p*b+i] = s * inv
			e.StoreDW(aip)
			flops++
		}
	}
	return flops, nil
}

// cholPanel computes X <- X * L^-T for X = A_ik and L the factored
// diagonal block, column by column (forward substitution in c).
func (m *BlockMatrix) cholPanel(bi, bk int, e *trace.Emitter) float64 {
	x := m.block(bi, bk)
	l := m.block(bk, bk)
	b := m.B
	flops := 0.0
	// X L^T = A  =>  column j of X depends on columns c < j.
	for j := 0; j < b; j++ {
		for c := 0; c < j; c++ {
			ljc := m.elemAddr(bk, bk, j, c)
			e.LoadDW(ljc)
			v := l[c*b+j]
			for i := 0; i < b; i++ {
				xic := m.elemAddr(bi, bk, i, c)
				xij := m.elemAddr(bi, bk, i, j)
				e.LoadDW(xic)
				e.LoadDW(xij)
				x[j*b+i] -= x[c*b+i] * v
				e.StoreDW(xij)
				flops += 2
			}
		}
		ljj := m.elemAddr(bk, bk, j, j)
		e.LoadDW(ljj)
		inv := 1 / l[j*b+j]
		for i := 0; i < b; i++ {
			xij := m.elemAddr(bi, bk, i, j)
			e.LoadDW(xij)
			x[j*b+i] *= inv
			e.StoreDW(xij)
			flops++
		}
	}
	return flops
}

// cholUpdate performs C -= A * B^T for C = A_ij, A = A_ik, B = A_jk, in
// the same axpy form as the LU update so the working sets match.
func (m *BlockMatrix) cholUpdate(bi, bj, bk int, e *trace.Emitter) float64 {
	c := m.block(bi, bj)
	a := m.block(bi, bk)
	bb := m.block(bj, bk)
	b := m.B
	for j := 0; j < b; j++ {
		cj := c[j*b : j*b+b]
		for k := 0; k < b; k++ {
			// B^T element (k, j) is B(j, k).
			e.LoadDW(m.elemAddr(bj, bk, j, k))
			bjk := bb[k*b+j]
			ak := a[k*b : k*b+b]
			for i := 0; i < b; i++ {
				e.LoadDW(m.elemAddr(bi, bk, i, k))
				cij := m.elemAddr(bi, bj, i, j)
				e.LoadDW(cij)
				cj[i] -= ak[i] * bjk
				e.StoreDW(cij)
			}
		}
	}
	return float64(2 * b * b * b)
}

// MulLLT computes L * L^T from the lower-triangular factor, for
// verification.
func (m *BlockMatrix) MulLLT() *BlockMatrix {
	out := NewBlockMatrix(m.N, m.B, nil)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			kmax := i
			if j < i {
				kmax = j
			}
			sum := 0.0
			for k := 0; k <= kmax; k++ {
				sum += m.At(i, k) * m.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// FillRandomSPD fills the matrix with a random symmetric positive definite
// matrix (diagonally dominant symmetric construction).
func (m *BlockMatrix) FillRandomSPD(seed int64) {
	m.FillRandomDominant(seed)
	// Symmetrize: A <- (A + A^T)/2, keeping the dominant diagonal.
	for i := 0; i < m.N; i++ {
		for j := 0; j < i; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// CholeskyModel adapts the Section 3 analysis to Cholesky: the working
// sets are identical (the kernels share the block update); only the
// operation and communication counts halve (n^3/3 FLOPs, triangular
// traffic).
type CholeskyModel struct {
	N, B, P int
}

// FLOPs is n^3/3.
func (mo CholeskyModel) FLOPs() float64 {
	n := float64(mo.N)
	return n * n * n / 3
}

// CommVolumeWords is half the LU volume (only the lower triangle moves).
func (mo CholeskyModel) CommVolumeWords() float64 {
	return luModel(mo).CommVolumeWords() / 2
}

// CommToCompRatio matches LU's 2n/(3 sqrt(P)) — both halve.
func (mo CholeskyModel) CommToCompRatio() float64 {
	return mo.FLOPs() / mo.CommVolumeWords()
}

// WorkingSets reuses the LU hierarchy (identical block kernels).
func (mo CholeskyModel) WorkingSets() interface{ String() string } {
	return luModel(mo).WorkingSets()
}

// MissRatePerFLOP reuses the LU step curve.
func (mo CholeskyModel) MissRatePerFLOP(cacheBytes uint64) float64 {
	return luModel(mo).MissRatePerFLOP(cacheBytes)
}

func luModel(mo CholeskyModel) Model { return Model{N: mo.N, B: mo.B, P: mo.P} }
