package lu

import (
	"math"
	"testing"

	"wsstudy/internal/trace"
)

func TestCholeskyReconstructs(t *testing.T) {
	for _, cfg := range []struct{ n, b int }{{8, 4}, {16, 4}, {24, 8}, {32, 16}} {
		m := NewBlockMatrix(cfg.n, cfg.b, nil)
		m.FillRandomSPD(1)
		orig := m.Clone()
		if err := Cholesky(m); err != nil {
			t.Fatalf("n=%d b=%d: %v", cfg.n, cfg.b, err)
		}
		recon := m.MulLLT()
		// Compare against the lower triangle of the original (Cholesky
		// only reads/writes it; symmetry makes that the whole matrix).
		maxDiff := 0.0
		for i := 0; i < cfg.n; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(recon.At(i, j) - orig.At(i, j)); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > 1e-9*float64(cfg.n) {
			t.Errorf("n=%d b=%d: reconstruction error %g", cfg.n, cfg.b, maxDiff)
		}
	}
}

func TestCholeskyMatchesUnblocked(t *testing.T) {
	a := NewBlockMatrix(16, 16, nil)
	a.FillRandomSPD(3)
	b := NewBlockMatrix(16, 4, nil)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			b.Set(i, j, a.At(i, j))
		}
	}
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > 1e-9 {
				t.Fatalf("factors disagree at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewBlockMatrix(8, 4, nil)
	// Negative diagonal: not SPD.
	for i := 0; i < 8; i++ {
		m.Set(i, i, -1)
	}
	if err := Cholesky(m); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestCholeskyTracedConsistency(t *testing.T) {
	a := NewBlockMatrix(24, 8, nil)
	a.FillRandomSPD(5)
	b := a.Clone()
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	var counter trace.Counter
	stats, err := CholeskyTraced(b, Grid{2, 2}, &counter)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		for j := 0; j <= i; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("traced Cholesky changed results at (%d,%d)", i, j)
			}
		}
	}
	if counter.Refs == 0 {
		t.Fatal("no references emitted")
	}
	// FLOPs near n^3/3.
	want := 24.0 * 24 * 24 / 3
	if got := stats.TotalFLOPs(); math.Abs(got-want)/want > 0.4 {
		t.Errorf("FLOPs = %v, want within 40%% of %v", got, want)
	}
	// Work is distributed.
	for pe, f := range stats.FLOPsByPE {
		if f == 0 {
			t.Errorf("PE %d idle", pe)
		}
	}
}

func TestCholeskyModelHalvesLU(t *testing.T) {
	cm := CholeskyModel{N: 10000, B: 16, P: 1024}
	lm := Model{N: 10000, B: 16, P: 1024}
	if math.Abs(cm.FLOPs()-lm.FLOPs()/2) > 1 {
		t.Error("Cholesky FLOPs should be half of LU")
	}
	// Ratio identical: both computation and communication halve.
	if math.Abs(cm.CommToCompRatio()-lm.CommToCompRatio()) > 1e-9 {
		t.Error("Cholesky ratio should equal LU's")
	}
	// Working sets identical (same block kernels).
	if cm.MissRatePerFLOP(4096) != lm.MissRatePerFLOP(4096) {
		t.Error("Cholesky working sets should match LU")
	}
	if cm.WorkingSets().String() == "" {
		t.Error("empty hierarchy")
	}
}
