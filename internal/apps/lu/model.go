package lu

import (
	"fmt"
	"math"

	"wsstudy/internal/workingset"
)

// Model is the paper's closed-form analysis of dense blocked LU (Section
// 3): working-set sizes, the miss-rate-versus-cache-size step curve of
// Figure 2, and the grain-size quantities of Section 3.3. N is the matrix
// dimension, B the block size and P the processor count (assumed an
// approximately square grid, as the 2-D scatter decomposition wants).
type Model struct {
	N, B, P int
}

// Validate reports whether the parameters make sense.
func (mo Model) Validate() error {
	if mo.N <= 0 || mo.B <= 0 || mo.P <= 0 {
		return fmt.Errorf("lu: model parameters must be positive: %+v", mo)
	}
	if mo.N%mo.B != 0 {
		return fmt.Errorf("lu: block size %d must divide n=%d", mo.B, mo.N)
	}
	return nil
}

const dw = 8 // bytes per double word

// Working-set sizes (bytes), Section 3.2.

// Lev1WS is two columns of a block: once they fit, one column is reused
// and the miss rate halves. Roughly 260 bytes for B=16.
func (mo Model) Lev1WS() uint64 { return uint64(2 * mo.B * dw) }

// Lev2WS is an entire B x B block; once it fits the miss rate drops to
// about 1/B. Roughly 2200 bytes for B=16.
func (mo Model) Lev2WS() uint64 { return uint64(mo.B * mo.B * dw) }

// Lev3WS is all blocks of row and column K that a processor uses within
// one K iteration: 2*n*B/sqrt(P) double words (about 80 KB for B=16,
// n=10,000, P=1024). Fitting it halves the rate again to 1/(2B).
func (mo Model) Lev3WS() uint64 {
	return uint64(2 * float64(mo.N) * float64(mo.B) * dw / math.Sqrt(float64(mo.P)))
}

// Lev4WS is a processor's entire partition, n^2/P double words. Beyond it
// only communication misses remain.
func (mo Model) Lev4WS() uint64 {
	return uint64(float64(mo.N) * float64(mo.N) * dw / float64(mo.P))
}

// Miss rates (double-word misses per FLOP) on each plateau.

// CommMissRate is the inherent communication miss rate per FLOP: the total
// communication volume n^2*sqrt(P) words over 2n^3/3 operations.
func (mo Model) CommMissRate() float64 {
	return 3 * math.Sqrt(float64(mo.P)) / (2 * float64(mo.N))
}

// MissRatePerFLOP evaluates the Figure 2 step curve at one cache size.
func (mo Model) MissRatePerFLOP(cacheBytes uint64) float64 {
	b := float64(mo.B)
	switch {
	case cacheBytes < mo.Lev1WS():
		return 1.0
	case cacheBytes < mo.Lev2WS():
		return 0.5
	case cacheBytes < mo.Lev3WS():
		return 1 / b
	case cacheBytes < mo.Lev4WS():
		return 1 / (2 * b)
	default:
		return mo.CommMissRate()
	}
}

// Curve samples the model at the given cache sizes.
func (mo Model) Curve(sizes []uint64) *workingset.Curve {
	c := &workingset.Curve{
		Label:  fmt.Sprintf("LU n=%d B=%d P=%d", mo.N, mo.B, mo.P),
		Metric: "misses/FLOP",
	}
	for _, s := range sizes {
		c.Points = append(c.Points, workingset.Point{CacheBytes: s, MissRate: mo.MissRatePerFLOP(s)})
	}
	return c
}

// WorkingSets lists the hierarchy with the paper's descriptions.
func (mo Model) WorkingSets() workingset.Hierarchy {
	return workingset.Hierarchy{
		App: "LU",
		Levels: []workingset.Level{
			{Name: "lev1WS", SizeBytes: mo.Lev1WS(), MissRate: 0.5, Note: "two columns of a block"},
			{Name: "lev2WS", SizeBytes: mo.Lev2WS(), MissRate: 1 / float64(mo.B), Note: "one BxB block"},
			{Name: "lev3WS", SizeBytes: mo.Lev3WS(), MissRate: 1 / (2 * float64(mo.B)), Note: "row/column K blocks used by one PE"},
			{Name: "lev4WS", SizeBytes: mo.Lev4WS(), MissRate: mo.CommMissRate(), Note: "a PE's whole partition"},
		},
	}
}

// Grain-size quantities, Section 3.3.

// FLOPs is the operation count of the factorization, 2n^3/3.
func (mo Model) FLOPs() float64 {
	n := float64(mo.N)
	return 2 * n * n * n / 3
}

// CommVolumeWords is the total interprocessor communication: every block
// travels to a row or column of sqrt(P) processors, n^2*sqrt(P) words.
func (mo Model) CommVolumeWords() float64 {
	n := float64(mo.N)
	return n * n * math.Sqrt(float64(mo.P))
}

// CommToCompRatio is FLOPs per communicated word, 2n/(3*sqrt(P)): about
// 200 for the prototypical 1-Mbyte-per-PE problem.
func (mo Model) CommToCompRatio() float64 {
	return mo.FLOPs() / mo.CommVolumeWords()
}

// DataSetBytes is the total problem size, 8n^2.
func (mo Model) DataSetBytes() uint64 {
	return uint64(mo.N) * uint64(mo.N) * dw
}

// GrainBytes is the per-processor memory, n^2*8/P.
func (mo Model) GrainBytes() uint64 { return mo.DataSetBytes() / uint64(mo.P) }

// BlocksPerPE is the average number of matrix blocks per processor; the
// paper uses it as the load-balance proxy (380 blocks is comfortable, 25
// is not).
func (mo Model) BlocksPerPE() float64 {
	nb := float64(mo.N / mo.B)
	return nb * nb / float64(mo.P)
}
