package lu

import (
	"fmt"

	"wsstudy/internal/trace"
)

// TraceStats summarizes a traced factorization.
type TraceStats struct {
	FLOPsByPE []float64 // floating-point operations performed by each PE
	FLOPsByK  []float64 // operations per K iteration (epoch)
}

// TotalFLOPs sums the per-PE operation counts.
func (s TraceStats) TotalFLOPs() float64 {
	total := 0.0
	for _, f := range s.FLOPsByPE {
		total += f
	}
	return total
}

// Factor performs in-place blocked LU factorization (no pivoting; intended
// for diagonally dominant systems) and returns an error if a zero pivot
// appears. After it returns, the matrix holds L below the diagonal (unit
// diagonal implicit) and U on and above it.
func Factor(m *BlockMatrix) error {
	_, err := factor(m, Grid{1, 1}, nil)
	return err
}

// FactorTraced factors m with the parallel structure of the paper's
// Section 3 — 2-D scatter decomposition over grid, owner-computes — and
// emits every processor's memory references into sink. The serial emission
// order within one K iteration (factor, then row/column scaling, then
// trailing updates) respects the data dependences of the parallel program,
// so write-before-read orderings seen by the coherence layer are correct.
//
// sink may implement trace.EpochConsumer; it then receives BeginEpoch(K)
// at each outer iteration, which drives cold-start exclusion.
func FactorTraced(m *BlockMatrix, grid Grid, sink trace.Consumer) (TraceStats, error) {
	if grid.PR <= 0 || grid.PC <= 0 {
		return TraceStats{}, fmt.Errorf("lu: invalid grid %+v", grid)
	}
	return factor(m, grid, sink)
}

func factor(m *BlockMatrix, grid Grid, sink trace.Consumer) (TraceStats, error) {
	stats := TraceStats{
		FLOPsByPE: make([]float64, grid.P()),
		FLOPsByK:  make([]float64, m.NB),
	}
	batch := trace.NewBatcher(sink)
	defer batch.Flush()
	emitters := make([]*trace.Emitter, grid.P())
	for pe := range emitters {
		emitters[pe] = batch.Emitter(pe)
	}

	for k := 0; k < m.NB; k++ {
		if err := batch.Err(); err != nil {
			return stats, fmt.Errorf("lu: K=%d: %w", k, err)
		}
		batch.BeginEpoch(k)
		flops := 0.0
		// Step 1: factor the diagonal block.
		pe := grid.Owner(k, k)
		f, err := m.factorDiag(k, emitters[pe])
		if err != nil {
			return stats, fmt.Errorf("lu: K=%d: %w", k, err)
		}
		stats.FLOPsByPE[pe] += f
		flops += f

		// Step 2: scale column K blocks (L panel) and row K blocks (U panel).
		for i := k + 1; i < m.NB; i++ {
			pe := grid.Owner(i, k)
			f := m.solveColumnBlock(i, k, emitters[pe])
			stats.FLOPsByPE[pe] += f
			flops += f
		}
		for j := k + 1; j < m.NB; j++ {
			pe := grid.Owner(k, j)
			f := m.solveRowBlock(k, j, emitters[pe])
			stats.FLOPsByPE[pe] += f
			flops += f
		}

		// Step 3: trailing update, the dominant matrix-multiply phase.
		for i := k + 1; i < m.NB; i++ {
			for j := k + 1; j < m.NB; j++ {
				pe := grid.Owner(i, j)
				f := m.updateBlock(i, j, k, emitters[pe])
				stats.FLOPsByPE[pe] += f
				flops += f
			}
		}
		stats.FLOPsByK[k] = flops
	}
	return stats, nil
}

// factorDiag runs unblocked LU on diagonal block (k,k).
func (m *BlockMatrix) factorDiag(k int, e *trace.Emitter) (float64, error) {
	blk := m.block(k, k)
	b := m.B
	flops := 0.0
	for p := 0; p < b; p++ {
		pivAddr := m.elemAddr(k, k, p, p)
		e.LoadDW(pivAddr)
		piv := blk[p*b+p]
		if piv == 0 {
			return flops, fmt.Errorf("zero pivot at block element %d", p)
		}
		inv := 1 / piv
		for i := p + 1; i < b; i++ {
			a := m.elemAddr(k, k, i, p)
			e.LoadDW(a)
			blk[p*b+i] *= inv
			e.StoreDW(a)
			flops++
		}
		for j := p + 1; j < b; j++ {
			upj := m.elemAddr(k, k, p, j)
			e.LoadDW(upj)
			upjv := blk[j*b+p]
			for i := p + 1; i < b; i++ {
				lip := m.elemAddr(k, k, i, p)
				cij := m.elemAddr(k, k, i, j)
				e.LoadDW(lip)
				e.LoadDW(cij)
				blk[j*b+i] -= blk[p*b+i] * upjv
				e.StoreDW(cij)
				flops += 2
			}
		}
	}
	return flops, nil
}

// solveColumnBlock computes A[I][K] <- A[I][K] * U_KK^{-1} (right solve
// with the upper-triangular factor of the diagonal block), column by
// column so the reference stream reuses one result column at a time.
func (m *BlockMatrix) solveColumnBlock(bi, bk int, e *trace.Emitter) float64 {
	x := m.block(bi, bk)
	u := m.block(bk, bk)
	b := m.B
	flops := 0.0
	for j := 0; j < b; j++ {
		// x[:,j] = (x[:,j] - sum_{c<j} x[:,c]*U[c][j]) / U[j][j]
		for c := 0; c < j; c++ {
			ucj := m.elemAddr(bk, bk, c, j)
			e.LoadDW(ucj)
			ucjv := u[j*b+c]
			for i := 0; i < b; i++ {
				xic := m.elemAddr(bi, bk, i, c)
				xij := m.elemAddr(bi, bk, i, j)
				e.LoadDW(xic)
				e.LoadDW(xij)
				x[j*b+i] -= x[c*b+i] * ucjv
				e.StoreDW(xij)
				flops += 2
			}
		}
		ujj := m.elemAddr(bk, bk, j, j)
		e.LoadDW(ujj)
		inv := 1 / u[j*b+j]
		for i := 0; i < b; i++ {
			xij := m.elemAddr(bi, bk, i, j)
			e.LoadDW(xij)
			x[j*b+i] *= inv
			e.StoreDW(xij)
			flops++
		}
	}
	return flops
}

// solveRowBlock computes A[K][J] <- L_KK^{-1} * A[K][J] (left solve with
// the unit-lower-triangular factor), column by column.
func (m *BlockMatrix) solveRowBlock(bk, bj int, e *trace.Emitter) float64 {
	x := m.block(bk, bj)
	l := m.block(bk, bk)
	b := m.B
	flops := 0.0
	for c := 0; c < b; c++ {
		for i := 1; i < b; i++ {
			xic := m.elemAddr(bk, bj, i, c)
			e.LoadDW(xic)
			sum := x[c*b+i]
			for k := 0; k < i; k++ {
				lik := m.elemAddr(bk, bk, i, k)
				xkc := m.elemAddr(bk, bj, k, c)
				e.LoadDW(lik)
				e.LoadDW(xkc)
				sum -= l[k*b+i] * x[c*b+k]
				flops += 2
			}
			x[c*b+i] = sum
			e.StoreDW(xic)
		}
	}
	return flops
}

// updateBlock performs C -= A*Bk for C = A[I][J], A = A[I][K],
// Bk = A[K][J]: the paper's Step 6, in axpy form (j outer, k middle,
// i inner) so that lev1WS is two block columns and lev2WS the A block.
func (m *BlockMatrix) updateBlock(bi, bj, bk int, e *trace.Emitter) float64 {
	c := m.block(bi, bj)
	a := m.block(bi, bk)
	bb := m.block(bk, bj)
	b := m.B
	for j := 0; j < b; j++ {
		cj := c[j*b : j*b+b]
		for k := 0; k < b; k++ {
			e.LoadDW(m.elemAddr(bk, bj, k, j))
			bkj := bb[j*b+k]
			ak := a[k*b : k*b+b]
			for i := 0; i < b; i++ {
				e.LoadDW(m.elemAddr(bi, bk, i, k))
				cij := m.elemAddr(bi, bj, i, j)
				e.LoadDW(cij)
				cj[i] -= ak[i] * bkj
				e.StoreDW(cij)
			}
		}
	}
	return float64(2 * b * b * b)
}
