package lu

import (
	"math"
	"math/rand"
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
)

func randomDense(m, n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(m, n, nil)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	return d
}

// TestQRReconstructs: Q*R must equal the original matrix.
func TestQRReconstructs(t *testing.T) {
	for _, shape := range []struct{ m, n int }{{8, 8}, {16, 12}, {24, 24}, {30, 7}} {
		a := randomDense(shape.m, shape.n, int64(shape.m))
		orig := a.Clone()
		res, err := QRFactor(a, Grid{2, 2}, nil)
		if err != nil {
			t.Fatalf("%dx%d: %v", shape.m, shape.n, err)
		}
		// R must be upper triangular.
		for j := 0; j < shape.n; j++ {
			for i := j + 1; i < shape.m; i++ {
				if a.At(i, j) != 0 {
					t.Fatalf("R(%d,%d) = %v, want 0", i, j, a.At(i, j))
				}
			}
		}
		// Reconstruct column by column: Q * R[:,j] == orig[:,j].
		for j := 0; j < shape.n; j++ {
			rcol := make([]float64, shape.m)
			for i := 0; i <= j; i++ {
				rcol[i] = a.At(i, j)
			}
			got := res.ApplyQ(rcol)
			for i := 0; i < shape.m; i++ {
				if d := math.Abs(got[i] - orig.At(i, j)); d > 1e-9 {
					t.Fatalf("%dx%d: QR(%d,%d) off by %g", shape.m, shape.n, i, j, d)
				}
			}
		}
	}
}

// TestQROrthogonality: Q^T Q = I via the reflector applications.
func TestQROrthogonality(t *testing.T) {
	const m, n = 16, 16
	a := randomDense(m, n, 5)
	res, err := QRFactor(a, Grid{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, m)
		rng := rand.New(rand.NewSource(int64(trial)))
		var norm2 float64
		for i := range x {
			x[i] = rng.NormFloat64()
			norm2 += x[i] * x[i]
		}
		// Orthogonal maps preserve norms, and Q^T undoes Q.
		qx := res.ApplyQ(x)
		var qnorm2 float64
		for _, v := range qx {
			qnorm2 += v * v
		}
		if math.Abs(qnorm2-norm2) > 1e-9*norm2 {
			t.Fatalf("Q does not preserve norms: %v vs %v", qnorm2, norm2)
		}
		back := res.ApplyQT(qx)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("Q^T Q x != x at %d", i)
			}
		}
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := QRFactor(randomDense(4, 8, 1), Grid{1, 1}, nil); err == nil {
		t.Error("m < n accepted")
	}
	if _, err := QRFactor(randomDense(4, 4, 1), Grid{0, 1}, nil); err == nil {
		t.Error("bad grid accepted")
	}
	zero := NewDense(4, 4, nil)
	if _, err := QRFactor(zero, Grid{1, 1}, nil); err == nil {
		t.Error("rank-deficient matrix accepted")
	}
}

func TestQRTracedWorkDistribution(t *testing.T) {
	a := randomDense(32, 32, 9)
	var counter trace.Counter
	res, err := QRFactor(a, Grid{2, 2}, &counter)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Refs == 0 {
		t.Fatal("no references emitted")
	}
	// Cyclic column distribution puts work on every PE.
	for pe, f := range res.Stats.FLOPsByPE {
		if f == 0 {
			t.Errorf("PE %d idle", pe)
		}
	}
	// Total ~ 2mn^2 - (2/3)n^3 = (4/3)n^3 for square: within 40%.
	n := 32.0
	want := 4 * n * n * n / 3
	if got := res.Stats.TotalFLOPs(); math.Abs(got-want)/want > 0.4 {
		t.Errorf("FLOPs = %v, want near %v", got, want)
	}
}

// TestQRWorkingSetFamily: the Section 3 family claim — QR's column-axpy
// kernel has a two-column lev1WS knee like LU's, visible as a sharp drop
// once two columns (2*m*8 bytes) fit.
func TestQRWorkingSetFamily(t *testing.T) {
	const m, n = 64, 64
	a := randomDense(m, n, 11)
	prof := cache.MustStackProfiler(8)
	sink := trace.PEFilter{PE: 1, Next: trace.Func(func(r trace.Ref) {
		prof.Access(r.Addr, r.Size, r.Kind == trace.Read)
	})}
	if _, err := QRFactor(a, Grid{2, 2}, sink); err != nil {
		t.Fatal(err)
	}
	rate := func(bytes uint64) float64 {
		return float64(prof.MissesAt(int(bytes/8)).Misses()) / float64(prof.Accesses())
	}
	// Two columns = 2*64*8 = 1 KB; probe either side.
	before := rate(256)
	after := rate(4096)
	if before < 1.5*after {
		t.Fatalf("no two-column knee: %v -> %v", before, after)
	}
}
