package lu

import (
	"math"
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
)

func TestBandMatrixBasics(t *testing.T) {
	m := NewBandMatrix(6, 2, nil)
	m.Set(3, 1, 7)
	if m.At(3, 1) != 7 || m.At(1, 3) != 7 {
		t.Fatal("symmetric readback failed")
	}
	if m.At(5, 0) != 0 {
		t.Fatal("outside-band entry should be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-band Set accepted")
		}
	}()
	m.Set(5, 0, 1)
}

func TestBandMatrixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad dims accepted")
		}
	}()
	NewBandMatrix(4, 4, nil)
}

func TestGridLaplacianStructure(t *testing.T) {
	m := GridLaplacian(3, nil) // 9x9, w=3
	if m.N != 9 || m.W != 3 {
		t.Fatalf("dims %d/%d", m.N, m.W)
	}
	if m.At(4, 4) != 4 {
		t.Fatal("diagonal should be 4")
	}
	if m.At(4, 3) != -1 || m.At(4, 1) != -1 {
		t.Fatal("neighbor couplings should be -1")
	}
	// Row boundary: point 3 (start of row 1) has no left neighbor.
	if m.At(3, 2) != 0 {
		t.Fatal("grid row boundary should break the -1 chain")
	}
}

func TestBandCholeskyReconstructs(t *testing.T) {
	for _, s := range []int{3, 4, 6} {
		m := GridLaplacian(s, nil)
		orig := m.Clone()
		if _, err := BandCholesky(m, Grid{2, 2}, nil); err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		recon := m.MulLLTBand()
		for i := 0; i < m.N; i++ {
			for j := 0; j < m.N; j++ {
				if d := math.Abs(recon[i][j] - orig.At(i, j)); d > 1e-9 {
					t.Fatalf("s=%d: LL^T(%d,%d) off by %g", s, i, j, d)
				}
			}
		}
	}
}

func TestBandCholeskyMatchesDense(t *testing.T) {
	// Factor the same Laplacian densely (blocked Cholesky) and banded:
	// the factors must agree within the band.
	const s = 4
	band := GridLaplacian(s, nil)
	dense := NewBlockMatrix(16, 4, nil)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			dense.Set(i, j, band.At(i, j))
		}
	}
	if _, err := BandCholesky(band, Grid{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(dense); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := maxInt(0, i-band.W); j <= i; j++ {
			if d := math.Abs(band.At(i, j) - dense.At(i, j)); d > 1e-9 {
				t.Fatalf("factors disagree at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBandCholeskyRejectsIndefinite(t *testing.T) {
	m := NewBandMatrix(4, 1, nil)
	m.Set(0, 0, -1)
	if _, err := BandCholesky(m, Grid{1, 1}, nil); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

// TestBandWorkingSetScalesWithBandwidth: the family contrast — the sparse
// kernel's important working set is two band rows, O(sqrt n) for grids,
// unlike dense LU's constant blocks. Doubling the grid side doubles the
// knee location.
func TestBandWorkingSetScalesWithBandwidth(t *testing.T) {
	knee := func(s int) float64 {
		m := GridLaplacian(s, nil)
		prof := cache.MustStackProfiler(8)
		sink := trace.Func(func(r trace.Ref) {
			prof.Access(r.Addr, r.Size, r.Kind == trace.Read)
		})
		if _, err := BandCholesky(m, Grid{1, 1}, sink); err != nil {
			t.Fatal(err)
		}
		// Rate at a probe sized for the SMALL problem's two band rows.
		probe := uint64(2 * (s + 1) * 8)
		return float64(prof.MissesAt(int(probe/8)).Misses()) / float64(prof.Accesses())
	}
	model := BandModel{N: 32 * 32, W: 32, P: 1}
	if model.Lev1WS() != uint64(2*33*8) {
		t.Fatalf("model lev1WS = %d", model.Lev1WS())
	}
	// A cache sized for s=16's two band rows works at s=16 but not s=32
	// (where the band rows are twice as long).
	at16 := knee(16)
	m32 := GridLaplacian(32, nil)
	prof := cache.MustStackProfiler(8)
	sink := trace.Func(func(r trace.Ref) {
		prof.Access(r.Addr, r.Size, r.Kind == trace.Read)
	})
	if _, err := BandCholesky(m32, Grid{1, 1}, sink); err != nil {
		t.Fatal(err)
	}
	probe16 := 2 * (16 + 1) * 8 / 8
	at32small := float64(prof.MissesAt(probe16).Misses()) / float64(prof.Accesses())
	probe32 := 2 * (32 + 1) * 8 / 8
	at32right := float64(prof.MissesAt(probe32).Misses()) / float64(prof.Accesses())
	if at32small < 1.5*at32right {
		t.Errorf("s=32 rate at an s=16-sized cache (%v) should be well above its own knee (%v)",
			at32small, at32right)
	}
	if at16 > 1.8*at32right {
		t.Errorf("both problems should reach similar post-knee rates: %v vs %v", at16, at32right)
	}
}
