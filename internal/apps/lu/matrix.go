// Package lu implements the paper's first application class (Section 3):
// blocked dense LU factorization with a 2-D scatter decomposition.
//
// The package carries three faces of the same computation:
//
//   - a real numeric kernel (BlockMatrix, Factor) that factors matrices and
//     is verified against reconstruction, so the traced reference stream is
//     the stream of a correct program;
//   - a trace generator (FactorTraced) emitting the per-processor memory
//     references of the parallel computation for the cache simulators;
//   - an analytic model (Model) of miss rate versus cache size, working-set
//     sizes, and communication, which is how the paper itself evaluates LU
//     at the prototypical 10,000 x 10,000 / 1024-processor scale.
package lu

import (
	"fmt"
	"math/rand"

	"wsstudy/internal/trace"
)

// BlockMatrix is an N x N dense matrix stored as an NB x NB array of B x B
// blocks; each block is contiguous and column-major, matching the layout
// the paper's working-set analysis assumes (lev1WS = two block columns).
// Every block also carries an address in the simulated address space so
// kernels can emit references while they compute.
type BlockMatrix struct {
	N, B, NB int
	blocks   [][]float64
	addrs    []uint64
}

// NewBlockMatrix allocates an n x n matrix of b x b blocks (b must divide
// n) with addresses from arena. A nil arena lays blocks out contiguously
// from a private arena.
func NewBlockMatrix(n, b int, arena *trace.Arena) *BlockMatrix {
	if n <= 0 || b <= 0 || n%b != 0 {
		panic(fmt.Sprintf("lu: block size %d must divide matrix size %d", b, n))
	}
	if arena == nil {
		arena = &trace.Arena{}
	}
	nb := n / b
	m := &BlockMatrix{
		N: n, B: b, NB: nb,
		blocks: make([][]float64, nb*nb),
		addrs:  make([]uint64, nb*nb),
	}
	for i := range m.blocks {
		m.blocks[i] = make([]float64, b*b)
		m.addrs[i] = arena.AllocDW(uint64(b * b))
	}
	return m
}

// block returns the storage of block (I,J).
func (m *BlockMatrix) block(bi, bj int) []float64 {
	return m.blocks[bi*m.NB+bj]
}

// BlockAddr returns the base address of block (I,J).
func (m *BlockMatrix) BlockAddr(bi, bj int) uint64 {
	return m.addrs[bi*m.NB+bj]
}

// elemAddr returns the address of element (i,j) within block (bi,bj),
// column-major.
func (m *BlockMatrix) elemAddr(bi, bj, i, j int) uint64 {
	return m.addrs[bi*m.NB+bj] + uint64(j*m.B+i)*8
}

// At returns element (i,j) in global coordinates.
func (m *BlockMatrix) At(i, j int) float64 {
	b := m.B
	return m.block(i/b, j/b)[(j%b)*b+(i%b)]
}

// Set assigns element (i,j) in global coordinates.
func (m *BlockMatrix) Set(i, j int, v float64) {
	b := m.B
	m.block(i/b, j/b)[(j%b)*b+(i%b)] = v
}

// Clone deep-copies the matrix (sharing no storage; addresses are copied,
// so the clone aliases the same simulated address space).
func (m *BlockMatrix) Clone() *BlockMatrix {
	c := &BlockMatrix{
		N: m.N, B: m.B, NB: m.NB,
		blocks: make([][]float64, len(m.blocks)),
		addrs:  append([]uint64(nil), m.addrs...),
	}
	for i, blk := range m.blocks {
		c.blocks[i] = append([]float64(nil), blk...)
	}
	return c
}

// FillRandomDominant fills the matrix with uniform random values in
// [-1, 1) and adds 2n to the diagonal, making it strictly diagonally
// dominant so LU factorization without pivoting is numerically stable.
func (m *BlockMatrix) FillRandomDominant(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			m.Set(i, j, 2*rng.Float64()-1)
		}
		m.Set(i, i, m.At(i, i)+2*float64(m.N))
	}
}

// MulLU computes the product of the L and U factors stored in a factored
// matrix (L unit lower triangular, U upper triangular), for verification.
func (m *BlockMatrix) MulLU() *BlockMatrix {
	out := NewBlockMatrix(m.N, m.B, nil)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			kmax := i
			if j < i {
				kmax = j + 1 // L[i][k] for k<=i has U[k][j]=0 when k>j
			}
			sum := 0.0
			for k := 0; k < kmax; k++ {
				sum += m.At(i, k) * m.At(k, j)
			}
			// Diagonal of L is an implicit 1.
			if i <= j {
				sum += m.At(i, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// MaxAbsDiff reports the largest elementwise absolute difference between
// two matrices of identical shape.
func (m *BlockMatrix) MaxAbsDiff(o *BlockMatrix) float64 {
	if m.N != o.N {
		panic("lu: shape mismatch")
	}
	max := 0.0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			d := m.At(i, j) - o.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Grid is the PR x PC processor grid of the 2-D scatter decomposition:
// block (I,J) belongs to processor (I mod PR, J mod PC).
type Grid struct {
	PR, PC int
}

// P reports the processor count.
func (g Grid) P() int { return g.PR * g.PC }

// Owner returns the flat processor id owning block (I,J).
func (g Grid) Owner(bi, bj int) int {
	return (bi%g.PR)*g.PC + bj%g.PC
}
