package cg

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Solver3D is conjugate gradient on the 7-point Laplacian of an n^3 grid
// over a cube of processors — the paper's "important trend toward 3-D
// problems". Structure mirrors Solver2D; the stencil and partition differ.
type Solver3D struct {
	part    *Partition3D
	coeffs  []float64 // n^3*7
	x, b    []float64
	r, p, q []float64
	em      []*trace.Emitter
	batch   *trace.Batcher
}

// NewSolver3D builds the 3-D solver (diagonal 6, off-diagonals -1,
// Dirichlet boundaries). sink may be nil for a pure numeric run.
func NewSolver3D(part *Partition3D, sink trace.Consumer) *Solver3D {
	n := part.N
	pts := n * n * n
	s := &Solver3D{
		part:   part,
		coeffs: make([]float64, pts*coeffsPerPoint3D),
		x:      make([]float64, pts),
		b:      make([]float64, pts),
		r:      make([]float64, pts),
		p:      make([]float64, pts),
		q:      make([]float64, pts),
		batch:  trace.NewBatcher(sink),
	}
	s.em = make([]*trace.Emitter, part.P())
	for pe := range s.em {
		s.em[pe] = s.batch.Emitter(pe)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c := s.coeffs[s.idx(i, j, k)*coeffsPerPoint3D:]
				c[0] = 6
				if i > 0 {
					c[1] = -1
				}
				if i < n-1 {
					c[2] = -1
				}
				if j > 0 {
					c[3] = -1
				}
				if j < n-1 {
					c[4] = -1
				}
				if k > 0 {
					c[5] = -1
				}
				if k < n-1 {
					c[6] = -1
				}
			}
		}
	}
	return s
}

func (s *Solver3D) idx(i, j, k int) int {
	n := s.part.N
	return (i*n+j)*n + k
}

// SetB assigns the right-hand side.
func (s *Solver3D) SetB(b []float64) {
	if len(b) != len(s.b) {
		panic("cg: rhs length mismatch")
	}
	copy(s.b, b)
}

// X returns the current solution estimate.
func (s *Solver3D) X() []float64 { return s.x }

// ApplyA computes dst = A*src (untraced), for testing and RHS setup.
func (s *Solver3D) ApplyA(dst, src []float64) {
	n := s.part.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				idx := s.idx(i, j, k)
				c := s.coeffs[idx*coeffsPerPoint3D:]
				sum := c[0] * src[idx]
				if i > 0 {
					sum += c[1] * src[idx-n*n]
				}
				if i < n-1 {
					sum += c[2] * src[idx+n*n]
				}
				if j > 0 {
					sum += c[3] * src[idx-n]
				}
				if j < n-1 {
					sum += c[4] * src[idx+n]
				}
				if k > 0 {
					sum += c[5] * src[idx-1]
				}
				if k < n-1 {
					sum += c[6] * src[idx+1]
				}
				dst[idx] = sum
			}
		}
	}
}

// Solve runs CG with tracing, exactly as Solver2D.Solve does.
func (s *Solver3D) Solve(cfg Config) (Result, error) {
	if cfg.MaxIters <= 0 {
		return Result{}, fmt.Errorf("cg: MaxIters must be positive")
	}
	res := Result{}
	defer s.batch.Flush()
	pts := float64(len(s.x))

	copy(s.r, s.b)
	copy(s.p, s.r)
	rr := s.dotSelf(s.r, vecR)
	res.FLOPs += 2 * pts

	for iter := 0; iter < cfg.MaxIters; iter++ {
		if err := s.batch.Err(); err != nil {
			return res, fmt.Errorf("cg: iteration %d: %w", iter, err)
		}
		s.batch.BeginEpoch(iter)
		if rr == 0 {
			// Exact solution already reached (e.g. the RHS was an
			// eigenvector); a zero search direction is convergence, not
			// breakdown.
			res.Converged = true
			break
		}
		s.matvec()
		pq := s.dot(s.p, s.q, vecP, vecQ)
		if pq == 0 {
			return res, fmt.Errorf("cg: breakdown (p.q = 0) at iteration %d", iter)
		}
		alpha := rr / pq
		s.axpy(s.x, s.p, alpha, vecX, vecP)
		s.axpy(s.r, s.q, -alpha, vecR, vecQ)
		rr2 := s.dotSelf(s.r, vecR)
		beta := rr2 / rr
		rr = rr2
		s.xpby(s.p, s.r, beta, vecP, vecR)
		res.FLOPs += pts * (2*coeffsPerPoint3D + 2*2 + 3*2)
		res.Iterations++
		norm := math.Sqrt(rr)
		res.Residuals = append(res.Residuals, norm)
		if cfg.Tol > 0 && norm < cfg.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// matvec computes q = A*p, each processor sweeping its subcube.
func (s *Solver3D) matvec() {
	n := s.part.N
	side := s.part.Side()
	for pe := 0; pe < s.part.P(); pe++ {
		e := s.em[pe]
		pi := pe / (s.part.Pc * s.part.Pc)
		pj := (pe / s.part.Pc) % s.part.Pc
		pk := pe % s.part.Pc
		for i := pi * side; i < (pi+1)*side; i++ {
			for j := pj * side; j < (pj+1)*side; j++ {
				for k := pk * side; k < (pk+1)*side; k++ {
					idx := s.idx(i, j, k)
					c := s.coeffs[idx*coeffsPerPoint3D:]
					for cc := 0; cc < coeffsPerPoint3D; cc++ {
						e.LoadDW(s.part.CoeffAddr(cc, i, j, k))
					}
					e.LoadDW(s.part.VecAddr(vecP, i, j, k))
					sum := c[0] * s.p[idx]
					if i > 0 {
						e.LoadDW(s.part.VecAddr(vecP, i-1, j, k))
						sum += c[1] * s.p[idx-n*n]
					}
					if i < n-1 {
						e.LoadDW(s.part.VecAddr(vecP, i+1, j, k))
						sum += c[2] * s.p[idx+n*n]
					}
					if j > 0 {
						e.LoadDW(s.part.VecAddr(vecP, i, j-1, k))
						sum += c[3] * s.p[idx-n]
					}
					if j < n-1 {
						e.LoadDW(s.part.VecAddr(vecP, i, j+1, k))
						sum += c[4] * s.p[idx+n]
					}
					if k > 0 {
						e.LoadDW(s.part.VecAddr(vecP, i, j, k-1))
						sum += c[5] * s.p[idx-1]
					}
					if k < n-1 {
						e.LoadDW(s.part.VecAddr(vecP, i, j, k+1))
						sum += c[6] * s.p[idx+1]
					}
					s.q[idx] = sum
					e.StoreDW(s.part.VecAddr(vecQ, i, j, k))
				}
			}
		}
	}
}

// sweep visits every point PE by PE in subcube sweep order.
func (s *Solver3D) sweep(f func(e *trace.Emitter, i, j, k, idx int)) {
	side := s.part.Side()
	for pe := 0; pe < s.part.P(); pe++ {
		e := s.em[pe]
		pi := pe / (s.part.Pc * s.part.Pc)
		pj := (pe / s.part.Pc) % s.part.Pc
		pk := pe % s.part.Pc
		for i := pi * side; i < (pi+1)*side; i++ {
			for j := pj * side; j < (pj+1)*side; j++ {
				for k := pk * side; k < (pk+1)*side; k++ {
					f(e, i, j, k, s.idx(i, j, k))
				}
			}
		}
	}
}

func (s *Solver3D) dot(a, b []float64, va, vb int) float64 {
	total := 0.0
	s.sweep(func(e *trace.Emitter, i, j, k, idx int) {
		e.LoadDW(s.part.VecAddr(va, i, j, k))
		e.LoadDW(s.part.VecAddr(vb, i, j, k))
		total += a[idx] * b[idx]
	})
	return total
}

func (s *Solver3D) dotSelf(a []float64, va int) float64 {
	total := 0.0
	s.sweep(func(e *trace.Emitter, i, j, k, idx int) {
		e.LoadDW(s.part.VecAddr(va, i, j, k))
		total += a[idx] * a[idx]
	})
	return total
}

func (s *Solver3D) axpy(dst, src []float64, alpha float64, vd, vs int) {
	s.sweep(func(e *trace.Emitter, i, j, k, idx int) {
		e.LoadDW(s.part.VecAddr(vd, i, j, k))
		e.LoadDW(s.part.VecAddr(vs, i, j, k))
		dst[idx] += alpha * src[idx]
		e.StoreDW(s.part.VecAddr(vd, i, j, k))
	})
}

func (s *Solver3D) xpby(dst, src []float64, beta float64, vd, vs int) {
	s.sweep(func(e *trace.Emitter, i, j, k, idx int) {
		e.LoadDW(s.part.VecAddr(vd, i, j, k))
		e.LoadDW(s.part.VecAddr(vs, i, j, k))
		dst[idx] = src[idx] + beta*dst[idx]
		e.StoreDW(s.part.VecAddr(vd, i, j, k))
	})
}
