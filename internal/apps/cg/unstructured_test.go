package cg

import (
	"math"
	"math/rand"
	"testing"

	"wsstudy/internal/memsys"
)

func TestRandomMeshStructure(t *testing.T) {
	m := RandomMesh(500, 6, 1)
	if m.N() != 500 {
		t.Fatal("wrong vertex count")
	}
	// Symmetry: j in adj(i) iff i in adj(j).
	for i := 0; i < m.N(); i++ {
		for _, j := range m.adj[i] {
			found := false
			for _, back := range m.adj[j] {
				if int(back) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", i, j)
			}
		}
	}
	// Degrees are near k (symmetrization can raise them modestly).
	if m.MaxDegree() > 24 {
		t.Errorf("max degree %d suspiciously high", m.MaxDegree())
	}
	if m.Edges() < 500*6/2 {
		t.Errorf("edges = %d, want >= %d", m.Edges(), 500*3)
	}
	// Determinism.
	m2 := RandomMesh(500, 6, 1)
	if m2.Edges() != m.Edges() {
		t.Error("mesh generation not deterministic")
	}
}

func TestRandomMeshValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomMesh(10, 10, 1)
}

func TestSpatialPartitionBeatsRandom(t *testing.T) {
	// The paper's point: irregular problems need sophisticated
	// partitioning. Spatial partitioning should cut far fewer edges.
	m := RandomMesh(2000, 6, 2)
	const p = 16
	aS, byS := m.PartitionSpatial(p)
	aR, byR := m.PartitionRandom(p, 3)
	cutS, cutR := m.EdgeCut(aS), m.EdgeCut(aR)
	if cutS*3 > cutR {
		t.Fatalf("spatial cut %d should be well below random cut %d", cutS, cutR)
	}
	// Both partitions balance vertex counts reasonably.
	if LoadImbalance(byS) > 1.05 || LoadImbalance(byR) > 1.4 {
		t.Errorf("imbalance: spatial %v random %v", LoadImbalance(byS), LoadImbalance(byR))
	}
	// Every vertex assigned exactly once.
	seen := make([]bool, m.N())
	for _, list := range byS {
		for _, v := range list {
			if seen[v] {
				t.Fatal("vertex assigned twice")
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestUnstructuredCGConverges(t *testing.T) {
	m := RandomMesh(400, 5, 4)
	assign, byPE := m.PartitionSpatial(4)
	s := NewSolverU(m, assign, byPE, nil)
	rng := rand.New(rand.NewSource(5))
	want := make([]float64, m.N())
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, m.N())
	s.ApplyA(b, want)
	s.SetB(b)
	res, err := s.Solve(Config{MaxIters: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; last residual %g", res.Residuals[len(res.Residuals)-1])
	}
	for i := range want {
		if math.Abs(s.X()[i]-want[i]) > 1e-6 {
			t.Fatalf("solution error at %d: %g", i, s.X()[i]-want[i])
		}
	}
}

func TestUnstructuredMatrixSPD(t *testing.T) {
	m := RandomMesh(200, 5, 6)
	assign, byPE := m.PartitionSpatial(2)
	s := NewSolverU(m, assign, byPE, nil)
	rng := rand.New(rand.NewSource(7))
	u := make([]float64, m.N())
	v := make([]float64, m.N())
	au := make([]float64, m.N())
	av := make([]float64, m.N())
	for i := range u {
		u[i], v[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	s.ApplyA(au, u)
	s.ApplyA(av, v)
	var uav, vau, uau float64
	for i := range u {
		uav += u[i] * av[i]
		vau += v[i] * au[i]
		uau += u[i] * au[i]
	}
	if math.Abs(uav-vau) > 1e-9 {
		t.Fatalf("not symmetric: %v vs %v", uav, vau)
	}
	if uau <= 0 {
		t.Fatalf("not positive definite: %v", uau)
	}
}

// TestPartitionQualityDrivesCoherence runs the same unstructured solve
// through the coherence simulator with both partitions: the random
// partition's invalidation traffic must exceed the spatial one roughly in
// proportion to the edge cuts.
func TestPartitionQualityDrivesCoherence(t *testing.T) {
	if testing.Short() {
		t.Skip("coherence simulation")
	}
	m := RandomMesh(800, 5, 8)
	const p = 8
	run := func(assign []int, byPE [][]int) uint64 {
		sys := memsys.MustNew(memsys.Config{
			PEs: p, LineSize: 8, Profile: true, ProfilePE: -1, WarmupEpochs: 1,
		})
		s := NewSolverU(m, assign, byPE, sys)
		rng := rand.New(rand.NewSource(11))
		b := make([]float64, m.N())
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		s.SetB(b)
		if _, err := s.Solve(Config{MaxIters: 5}); err != nil {
			t.Fatal(err)
		}
		return sys.Directory().Stats().Invalidations
	}
	aS, byS := m.PartitionSpatial(p)
	aR, byR := m.PartitionRandom(p, 9)
	invS := run(aS, byS)
	invR := run(aR, byR)
	if invS == 0 || invR == 0 {
		t.Fatalf("expected nonzero invalidations: %d, %d", invS, invR)
	}
	if invR < 2*invS {
		t.Errorf("random partition invalidations %d should far exceed spatial %d", invR, invS)
	}
	cutS, cutR := m.EdgeCut(aS), m.EdgeCut(aR)
	// The invalidation ratio should be on the order of the cut ratio.
	gotRatio := float64(invR) / float64(invS)
	wantRatio := float64(cutR) / float64(cutS)
	if gotRatio < wantRatio/3 || gotRatio > wantRatio*3 {
		t.Errorf("invalidation ratio %v vs cut ratio %v: out of band", gotRatio, wantRatio)
	}
}
