package cg

import (
	"fmt"
	"math"

	"wsstudy/internal/workingset"
)

// Model2D is the analytic working-set and grain model for CG on an n x n
// grid over P processors (Section 4 of the paper).
//
// Working-set constants follow this package's kernel, whose per-point
// traffic per iteration is: matvec 5 coefficients + 5 p-values (10 FLOPs),
// two dot products (3 loads, 4 FLOPs) and three vector updates (6 loads,
// 6 FLOPs) — 19 loads and 20 FLOPs per point. The paper's Figure 4 counts
// only the x-vector rows in lev1WS (3 subrows, "roughly 5 KB"); our lev1WS
// is the reuse distance of the row-below p value, about 7 words per point
// per subrow, the same O(n/sqrt(P)) quantity with a slightly larger
// constant.
type Model2D struct {
	N, P int
}

const dw = 8

// SubrowBytes is one subrow of one vector, (n/sqrt(P)) double words.
func (m Model2D) SubrowBytes() uint64 {
	return uint64(float64(m.N) / math.Sqrt(float64(m.P)) * dw)
}

// Lev1WS is the cache size at which the vertical stencil reuse is
// captured: roughly 7 streamed words per point over one subrow.
func (m Model2D) Lev1WS() uint64 { return 7 * m.SubrowBytes() }

// Lev2WS is a processor's entire partition: 5 coefficients and 5 vector
// elements per point.
func (m Model2D) Lev2WS() uint64 {
	pts := float64(m.N) * float64(m.N) / float64(m.P)
	return uint64(pts * (coeffsPerPoint2D + numVecs) * dw)
}

// Side is the owned square's edge, n/sqrt(P).
func (m Model2D) Side() float64 { return float64(m.N) / math.Sqrt(float64(m.P)) }

// Plateau miss rates (misses per FLOP) for the kernel in this package.

// RateTiny applies when nothing is reused: 19 loads per 20 FLOPs.
func (m Model2D) RateTiny() float64 { return 19.0 / 20 }

// RateRowReuse applies once in-row stencil reuse fits (a few dozen words):
// the self and left p-loads hit, 17 loads per 20 FLOPs.
func (m Model2D) RateRowReuse() float64 { return 17.0 / 20 }

// RateAfterLev1 applies once lev1WS fits: each p value's first touch per
// sweep still misses, as do the 5 coefficients and the 9 streamed-phase
// loads: 15 loads per 20 FLOPs.
func (m Model2D) RateAfterLev1() float64 { return 15.0 / 20 }

// CommRate is the inherent communication floor: the 4*(n/sqrt(P)) boundary
// p-values re-read each iteration, over 20*(n^2/P) FLOPs.
func (m Model2D) CommRate() float64 {
	s := m.Side()
	return 4 * s / (20 * s * s)
}

// MissRatePerFLOP evaluates the model's step curve.
func (m Model2D) MissRatePerFLOP(cacheBytes uint64) float64 {
	switch {
	case cacheBytes < 32*dw:
		return m.RateTiny()
	case cacheBytes < m.Lev1WS():
		return m.RateRowReuse()
	case cacheBytes < m.Lev2WS():
		return m.RateAfterLev1()
	default:
		return m.CommRate()
	}
}

// Curve samples the model at the given sizes.
func (m Model2D) Curve(sizes []uint64) *workingset.Curve {
	c := &workingset.Curve{
		Label:  fmt.Sprintf("CG 2-D n=%d P=%d", m.N, m.P),
		Metric: "misses/FLOP",
	}
	for _, s := range sizes {
		c.Points = append(c.Points, workingset.Point{CacheBytes: s, MissRate: m.MissRatePerFLOP(s)})
	}
	return c
}

// WorkingSets lists the hierarchy.
func (m Model2D) WorkingSets() workingset.Hierarchy {
	return workingset.Hierarchy{
		App: "CG 2-D",
		Levels: []workingset.Level{
			{Name: "lev1WS", SizeBytes: m.Lev1WS(), MissRate: m.RateAfterLev1(),
				Note: "streamed words spanning adjacent subrows"},
			{Name: "lev2WS", SizeBytes: m.Lev2WS(), MissRate: m.CommRate(),
				Note: "a PE's entire partition"},
		},
	}
}

// Grain quantities, paper conventions (matvec FLOPs only, Section 4.3).

// CommToCompRatio is 5n/(2*sqrt(P)) FLOPs per communicated word: about
// 300 for the prototypical 1-Mbyte-grain problem.
func (m Model2D) CommToCompRatio() float64 {
	return 5 * float64(m.N) / (2 * math.Sqrt(float64(m.P)))
}

// DataSetBytes is the total problem size in this package's layout.
func (m Model2D) DataSetBytes() uint64 { return m.Lev2WS() * uint64(m.P) }

// GrainBytes is the per-processor memory.
func (m Model2D) GrainBytes() uint64 { return m.Lev2WS() }

// Model3D is the 3-D analog on an n^3 grid over P = pc^3 processors.
type Model3D struct {
	N, P int
}

// Side is the owned subcube's edge, n/P^(1/3).
func (m Model3D) Side() float64 { return float64(m.N) / math.Cbrt(float64(m.P)) }

// CrossSectionBytes is one 2-D cross-section of one vector of the subcube.
func (m Model3D) CrossSectionBytes() uint64 {
	s := m.Side()
	return uint64(s * s * dw)
}

// Lev1WS captures the plane-to-plane stencil reuse: roughly 9 streamed
// words per point over one cross-section.
func (m Model3D) Lev1WS() uint64 { return 9 * m.CrossSectionBytes() }

// Lev2WS is the whole partition: 7 coefficients + 5 vectors per point.
func (m Model3D) Lev2WS() uint64 {
	pts := math.Pow(float64(m.N), 3) / float64(m.P)
	return uint64(pts * (coeffsPerPoint3D + numVecs) * dw)
}

// RateTiny is 23 loads per 24 FLOPs.
func (m Model3D) RateTiny() float64 { return 23.0 / 24 }

// RateRowReuse applies once in-row reuse fits: of the 7 touches each p
// value receives per sweep, the three separated by a plane-sized gap
// still miss: 19 loads per 24 FLOPs.
func (m Model3D) RateRowReuse() float64 { return 19.0 / 24 }

// RateAfterLev1 applies once cross-section reuse fits: 17 per 24.
func (m Model3D) RateAfterLev1() float64 { return 17.0 / 24 }

// CommRate is the 6*side^2 face exchange over 24*side^3 FLOPs.
func (m Model3D) CommRate() float64 {
	s := m.Side()
	return 6 * s * s / (24 * s * s * s)
}

// MissRatePerFLOP evaluates the model's step curve.
func (m Model3D) MissRatePerFLOP(cacheBytes uint64) float64 {
	switch {
	case cacheBytes < 32*dw:
		return m.RateTiny()
	case cacheBytes < m.Lev1WS():
		return m.RateRowReuse()
	case cacheBytes < m.Lev2WS():
		return m.RateAfterLev1()
	default:
		return m.CommRate()
	}
}

// Curve samples the model at the given sizes.
func (m Model3D) Curve(sizes []uint64) *workingset.Curve {
	c := &workingset.Curve{
		Label:  fmt.Sprintf("CG 3-D n=%d P=%d", m.N, m.P),
		Metric: "misses/FLOP",
	}
	for _, s := range sizes {
		c.Points = append(c.Points, workingset.Point{CacheBytes: s, MissRate: m.MissRatePerFLOP(s)})
	}
	return c
}

// WorkingSets lists the hierarchy.
func (m Model3D) WorkingSets() workingset.Hierarchy {
	return workingset.Hierarchy{
		App: "CG 3-D",
		Levels: []workingset.Level{
			{Name: "lev1WS", SizeBytes: m.Lev1WS(), MissRate: m.RateAfterLev1(),
				Note: "streamed words spanning adjacent cross-sections"},
			{Name: "lev2WS", SizeBytes: m.Lev2WS(), MissRate: m.CommRate(),
				Note: "a PE's entire partition"},
		},
	}
}

// CommToCompRatio is 7n/(3*P^(1/3)) FLOPs per word (paper convention):
// about 50 for the prototypical 225^3 problem on 1024 processors.
func (m Model3D) CommToCompRatio() float64 {
	return 7 * float64(m.N) / (3 * math.Cbrt(float64(m.P)))
}

// DataSetBytes is the total problem size in this package's layout.
func (m Model3D) DataSetBytes() uint64 { return m.Lev2WS() * uint64(m.P) }

// GrainBytes is the per-processor memory.
func (m Model3D) GrainBytes() uint64 { return m.Lev2WS() }
