package cg

import (
	"fmt"
	"math"

	"wsstudy/internal/trace"
)

// Result summarizes a CG run.
type Result struct {
	Iterations int
	Residuals  []float64 // 2-norm of the residual after each iteration
	FLOPs      float64   // total floating-point operations, all PEs
	Converged  bool
}

// Config controls a traced CG solve.
type Config struct {
	MaxIters int     // hard iteration cap (required)
	Tol      float64 // stop when ||r|| < Tol (0 disables early stop)
}

// Solver2D is conjugate gradient on the 5-point Laplacian of an n x n grid,
// partitioned as the paper's Section 4 describes. The matrix is held as
// per-point coefficient rows, exactly what the reference stream touches.
type Solver2D struct {
	part    *Partition2D
	coeffs  []float64 // n*n*5, stencil rows
	x, b    []float64
	r, p, q []float64
	em      []*trace.Emitter
	batch   *trace.Batcher
	tile    int // matvec sweep tile edge; 0 = plain row sweep
}

// NewSolver2D builds the solver with the standard Dirichlet Laplacian
// (diagonal 4, off-diagonals -1, missing neighbors dropped) and the given
// right-hand side layout. sink may be nil for a pure numeric run.
func NewSolver2D(part *Partition2D, sink trace.Consumer) *Solver2D {
	n := part.N
	s := &Solver2D{
		part:   part,
		coeffs: make([]float64, n*n*coeffsPerPoint2D),
		x:      make([]float64, n*n),
		b:      make([]float64, n*n),
		r:      make([]float64, n*n),
		p:      make([]float64, n*n),
		q:      make([]float64, n*n),
		batch:  trace.NewBatcher(sink),
	}
	s.em = make([]*trace.Emitter, part.P())
	for pe := range s.em {
		s.em[pe] = s.batch.Emitter(pe)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := s.coeffs[(i*n+j)*coeffsPerPoint2D:]
			c[0] = 4
			if i > 0 {
				c[1] = -1
			}
			if i < n-1 {
				c[2] = -1
			}
			if j > 0 {
				c[3] = -1
			}
			if j < n-1 {
				c[4] = -1
			}
		}
	}
	return s
}

// SetTileSize switches the matvec sweep to t x t tiles. Section 4.2 notes
// that "the size of lev1WS can actually be kept constant through the use
// of blocking techniques": with a tiled sweep the vertical stencil reuse
// distance is one tile row (~7t words) instead of one partition row
// (~7(n/sqrt P) words), independent of the problem size. Zero restores
// the plain row sweep. The numeric results are unchanged (matvec order is
// irrelevant); only the reference order moves.
func (s *Solver2D) SetTileSize(t int) {
	if t < 0 {
		panic("cg: negative tile size")
	}
	s.tile = t
}

// SetB assigns the right-hand side.
func (s *Solver2D) SetB(b []float64) {
	if len(b) != len(s.b) {
		panic("cg: rhs length mismatch")
	}
	copy(s.b, b)
}

// X returns the current solution estimate.
func (s *Solver2D) X() []float64 { return s.x }

// ApplyA computes dst = A*src for testing and RHS construction (untraced).
func (s *Solver2D) ApplyA(dst, src []float64) {
	n := s.part.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			c := s.coeffs[idx*coeffsPerPoint2D:]
			sum := c[0] * src[idx]
			if i > 0 {
				sum += c[1] * src[idx-n]
			}
			if i < n-1 {
				sum += c[2] * src[idx+n]
			}
			if j > 0 {
				sum += c[3] * src[idx-1]
			}
			if j < n-1 {
				sum += c[4] * src[idx+1]
			}
			dst[idx] = sum
		}
	}
}

// Solve runs CG, emitting the reference stream of every processor phase by
// phase (the serial order respects the parallel program's dependences:
// the matvec reads of the shared p vector precede its update each
// iteration, so the coherence layer sees correct write-before-read).
func (s *Solver2D) Solve(cfg Config) (Result, error) {
	if cfg.MaxIters <= 0 {
		return Result{}, fmt.Errorf("cg: MaxIters must be positive")
	}
	res := Result{}
	defer s.batch.Flush()
	n := s.part.N

	// x = 0, r = b, p = r. Setup phase; counted as epoch -1 is avoided by
	// starting epochs at 0 with the first iteration.
	copy(s.r, s.b)
	copy(s.p, s.r)
	rr := s.dotSelf(s.r, vecR)
	res.FLOPs += 2 * float64(n*n)

	for iter := 0; iter < cfg.MaxIters; iter++ {
		if err := s.batch.Err(); err != nil {
			return res, fmt.Errorf("cg: iteration %d: %w", iter, err)
		}
		s.batch.BeginEpoch(iter)
		if rr == 0 {
			// Exact solution already reached (e.g. the RHS was an
			// eigenvector); a zero search direction is convergence, not
			// breakdown.
			res.Converged = true
			break
		}
		s.matvec()
		pq := s.dot(s.p, s.q, vecP, vecQ)
		if pq == 0 {
			return res, fmt.Errorf("cg: breakdown (p.q = 0) at iteration %d", iter)
		}
		alpha := rr / pq
		s.axpy(s.x, s.p, alpha, vecX, vecP)  // x += alpha p
		s.axpy(s.r, s.q, -alpha, vecR, vecQ) // r -= alpha q
		rr2 := s.dotSelf(s.r, vecR)
		beta := rr2 / rr
		rr = rr2
		s.xpby(s.p, s.r, beta, vecP, vecR) // p = r + beta p
		res.FLOPs += s.iterFLOPs()
		res.Iterations++
		norm := math.Sqrt(rr)
		res.Residuals = append(res.Residuals, norm)
		if cfg.Tol > 0 && norm < cfg.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// iterFLOPs counts one iteration's operations: 10/point matvec (2-D),
// 2/point for each of two dots and three vector updates.
func (s *Solver2D) iterFLOPs() float64 {
	pts := float64(s.part.N * s.part.N)
	return pts * (2*coeffsPerPoint2D + 2*2 + 3*2)
}

// matvec computes q = A*p, sweeping each processor's rectangle row-major,
// or tile by tile when a tile size is set.
func (s *Solver2D) matvec() {
	for pe := 0; pe < s.part.P(); pe++ {
		r0, r1, c0, c1 := s.part.Bounds(pe)
		if s.tile > 0 {
			for ti := r0; ti < r1; ti += s.tile {
				for tj := c0; tj < c1; tj += s.tile {
					i1, j1 := min(ti+s.tile, r1), min(tj+s.tile, c1)
					s.matvecRect(pe, ti, i1, tj, j1)
				}
			}
		} else {
			s.matvecRect(pe, r0, r1, c0, c1)
		}
	}
}

// matvecRect processes one rectangle of points for pe.
func (s *Solver2D) matvecRect(pe, r0, r1, c0, c1 int) {
	n := s.part.N
	{
		e := s.em[pe]
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				idx := i*n + j
				c := s.coeffs[idx*coeffsPerPoint2D:]
				for k := 0; k < coeffsPerPoint2D; k++ {
					e.LoadDW(s.part.CoeffAddr(k, i, j))
				}
				e.LoadDW(s.part.VecAddr(vecP, i, j))
				sum := c[0] * s.p[idx]
				if i > 0 {
					e.LoadDW(s.part.VecAddr(vecP, i-1, j))
					sum += c[1] * s.p[idx-n]
				}
				if i < n-1 {
					e.LoadDW(s.part.VecAddr(vecP, i+1, j))
					sum += c[2] * s.p[idx+n]
				}
				if j > 0 {
					e.LoadDW(s.part.VecAddr(vecP, i, j-1))
					sum += c[3] * s.p[idx-1]
				}
				if j < n-1 {
					e.LoadDW(s.part.VecAddr(vecP, i, j+1))
					sum += c[4] * s.p[idx+1]
				}
				s.q[idx] = sum
				e.StoreDW(s.part.VecAddr(vecQ, i, j))
			}
		}
	}
}

// sweep visits every point PE by PE in sweep order.
func (s *Solver2D) sweep(f func(e *trace.Emitter, i, j, idx int)) {
	n := s.part.N
	for pe := 0; pe < s.part.P(); pe++ {
		e := s.em[pe]
		r0, r1, c0, c1 := s.part.Bounds(pe)
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				f(e, i, j, i*n+j)
			}
		}
	}
}

// dot computes sum(a[i]*b[i]) with loads of both vectors.
func (s *Solver2D) dot(a, b []float64, va, vb int) float64 {
	total := 0.0
	s.sweep(func(e *trace.Emitter, i, j, idx int) {
		e.LoadDW(s.part.VecAddr(va, i, j))
		e.LoadDW(s.part.VecAddr(vb, i, j))
		total += a[idx] * b[idx]
	})
	return total
}

// dotSelf computes sum(a[i]^2) with a single load per point.
func (s *Solver2D) dotSelf(a []float64, va int) float64 {
	total := 0.0
	s.sweep(func(e *trace.Emitter, i, j, idx int) {
		e.LoadDW(s.part.VecAddr(va, i, j))
		total += a[idx] * a[idx]
	})
	return total
}

// axpy computes dst += alpha*src.
func (s *Solver2D) axpy(dst, src []float64, alpha float64, vd, vs int) {
	s.sweep(func(e *trace.Emitter, i, j, idx int) {
		e.LoadDW(s.part.VecAddr(vd, i, j))
		e.LoadDW(s.part.VecAddr(vs, i, j))
		dst[idx] += alpha * src[idx]
		e.StoreDW(s.part.VecAddr(vd, i, j))
	})
}

// xpby computes dst = src + beta*dst (the search-direction update).
func (s *Solver2D) xpby(dst, src []float64, beta float64, vd, vs int) {
	s.sweep(func(e *trace.Emitter, i, j, idx int) {
		e.LoadDW(s.part.VecAddr(vd, i, j))
		e.LoadDW(s.part.VecAddr(vs, i, j))
		dst[idx] = src[idx] + beta*dst[idx]
		e.StoreDW(s.part.VecAddr(vd, i, j))
	})
}
