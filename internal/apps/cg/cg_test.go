package cg

import (
	"math"
	"math/rand"
	"testing"

	"wsstudy/internal/memsys"
	"wsstudy/internal/trace"
	"wsstudy/internal/workingset"
)

func TestPartition2DValidation(t *testing.T) {
	if _, err := NewPartition2D(10, 3, 2, nil); err == nil {
		t.Fatal("3 must not divide 10")
	}
	if _, err := NewPartition2D(0, 1, 1, nil); err == nil {
		t.Fatal("zero n accepted")
	}
	p, err := NewPartition2D(16, 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 8 || p.RowsPerPE() != 8 || p.ColsPerPE() != 4 {
		t.Fatalf("partition dims wrong: %+v", p)
	}
}

func TestPartition2DOwnershipAndBounds(t *testing.T) {
	p, _ := NewPartition2D(8, 2, 2, nil)
	if got := p.Owner(0, 0); got != 0 {
		t.Errorf("Owner(0,0) = %d", got)
	}
	if got := p.Owner(7, 7); got != 3 {
		t.Errorf("Owner(7,7) = %d", got)
	}
	if got := p.Owner(0, 4); got != 1 {
		t.Errorf("Owner(0,4) = %d", got)
	}
	// Every point lies inside its owner's bounds.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pe := p.Owner(i, j)
			r0, r1, c0, c1 := p.Bounds(pe)
			if i < r0 || i >= r1 || j < c0 || j >= c1 {
				t.Fatalf("point (%d,%d) outside owner %d bounds", i, j, pe)
			}
		}
	}
}

func TestPartition2DAddressesDisjoint(t *testing.T) {
	p, _ := NewPartition2D(8, 2, 2, nil)
	seen := map[uint64]string{}
	record := func(addr uint64, what string) {
		if prev, ok := seen[addr]; ok {
			t.Fatalf("address collision: %s and %s at %#x", prev, what, addr)
		}
		seen[addr] = what
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for v := 0; v < numVecs; v++ {
				record(p.VecAddr(v, i, j), "vec")
			}
			for c := 0; c < coeffsPerPoint2D; c++ {
				record(p.CoeffAddr(c, i, j), "coeff")
			}
		}
	}
	// Partition rows are contiguous in sweep order.
	if p.VecAddr(vecP, 0, 1)-p.VecAddr(vecP, 0, 0) != 8 {
		t.Fatal("adjacent in-row points should be 8 bytes apart")
	}
}

func TestPartition3DBasics(t *testing.T) {
	p, err := NewPartition3D(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 8 || p.Side() != 4 {
		t.Fatalf("3-D partition dims wrong")
	}
	if got := p.Owner(0, 0, 0); got != 0 {
		t.Errorf("Owner(0,0,0) = %d", got)
	}
	if got := p.Owner(7, 7, 7); got != 7 {
		t.Errorf("Owner(7,7,7) = %d", got)
	}
	if _, err := NewPartition3D(9, 2, nil); err == nil {
		t.Fatal("2 must not divide 9")
	}
}

func TestApplyASymmetricPositive(t *testing.T) {
	// The Laplacian must be symmetric (u.Av == v.Au) and positive
	// definite (x.Ax > 0) — CG's preconditions.
	part, _ := NewPartition2D(8, 1, 1, nil)
	s := NewSolver2D(part, nil)
	rng := rand.New(rand.NewSource(2))
	n2 := 64
	u, v, au, av := make([]float64, n2), make([]float64, n2), make([]float64, n2), make([]float64, n2)
	for i := range u {
		u[i], v[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	s.ApplyA(au, u)
	s.ApplyA(av, v)
	var uav, vau, uau float64
	for i := range u {
		uav += u[i] * av[i]
		vau += v[i] * au[i]
		uau += u[i] * au[i]
	}
	if math.Abs(uav-vau) > 1e-9 {
		t.Fatalf("A not symmetric: %v vs %v", uav, vau)
	}
	if uau <= 0 {
		t.Fatalf("A not positive definite: x.Ax = %v", uau)
	}
}

func solveKnown2D(t *testing.T, n, px, py int, sink trace.Consumer) (Result, float64) {
	t.Helper()
	part, err := NewPartition2D(n, px, py, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver2D(part, sink)
	rng := rand.New(rand.NewSource(4))
	want := make([]float64, n*n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n*n)
	s.ApplyA(b, want)
	s.SetB(b)
	res, err := s.Solve(Config{MaxIters: 5 * n, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range want {
		if d := math.Abs(s.X()[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	return res, maxErr
}

func TestSolve2DConverges(t *testing.T) {
	res, maxErr := solveKnown2D(t, 16, 2, 2, nil)
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations (residuals %v...)", res.Iterations, res.Residuals[:3])
	}
	if maxErr > 1e-6 {
		t.Fatalf("solution error %g", maxErr)
	}
	// Residuals should shrink overall.
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if last >= first {
		t.Fatalf("residual did not decrease: %v -> %v", first, last)
	}
}

func TestSolve2DPartitionInvariance(t *testing.T) {
	// The numeric answer must not depend on the processor grid.
	_, err1 := solveKnown2D(t, 16, 1, 1, nil)
	_, err4 := solveKnown2D(t, 16, 2, 2, nil)
	if math.Abs(err1-err4) > 1e-9 {
		t.Fatalf("partitioning changed the numerics: %g vs %g", err1, err4)
	}
}

func TestSolve3DConverges(t *testing.T) {
	part, err := NewPartition3D(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver3D(part, nil)
	rng := rand.New(rand.NewSource(6))
	n3 := 8 * 8 * 8
	want := make([]float64, n3)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n3)
	s.ApplyA(b, want)
	s.SetB(b)
	res, err := s.Solve(Config{MaxIters: 200, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("3-D CG did not converge")
	}
	for i := range want {
		if math.Abs(s.X()[i]-want[i]) > 1e-6 {
			t.Fatalf("3-D solution error at %d", i)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	part, _ := NewPartition2D(8, 1, 1, nil)
	s := NewSolver2D(part, nil)
	if _, err := s.Solve(Config{}); err == nil {
		t.Fatal("MaxIters=0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetB with wrong length should panic")
		}
	}()
	s.SetB(make([]float64, 3))
}

func TestModelPaperNumbers2D(t *testing.T) {
	// Prototypical 2-D problem: 4000x4000 on 1024 PEs.
	m := Model2D{N: 4000, P: 1024}
	// Paper: comm/comp ~ 300 FLOPs/word (5*4000/(2*32) = 312.5).
	if got := m.CommToCompRatio(); math.Abs(got-312.5) > 1e-9 {
		t.Errorf("2-D ratio = %v, want 312.5", got)
	}
	// lev1WS is O(n/sqrt(P)) and in the "several KB" range the paper
	// reports (it says ~5 KB counting 3 x-subrows; our kernel constant
	// gives 7 subrows = 7 KB).
	if ws := m.Lev1WS(); ws < 3000 || ws > 10000 {
		t.Errorf("2-D lev1WS = %d, want a few KB", ws)
	}
	// 16K-PE scenario: ratio ~ 75.
	m16k := Model2D{N: 4000, P: 16384}
	if got := m16k.CommToCompRatio(); math.Abs(got-78.125) > 1e-9 {
		t.Errorf("16K-PE ratio = %v, want 78.125", got)
	}
}

func TestModelPaperNumbers3D(t *testing.T) {
	// Prototypical 3-D problem: 225^3 on 1024 PEs.
	m := Model3D{N: 225, P: 1024}
	// Paper: ratio ~ 50 (7*225/(3*10.08) = 52.1).
	if got := m.CommToCompRatio(); math.Abs(got-52.08) > 0.1 {
		t.Errorf("3-D ratio = %v, want ~52.1", got)
	}
	// lev1WS ~ 18 KB in the paper (3 cross-sections); ours is 9 sections
	// of streamed words: (225/10.08)^2*9*8 = 35 KB, same order.
	if ws := m.Lev1WS(); ws < 10_000 || ws > 60_000 {
		t.Errorf("3-D lev1WS = %d, want tens of KB", ws)
	}
	// 16K-PE scenario: ratio ~ 20.
	m16k := Model3D{N: 225, P: 16384}
	if got := m16k.CommToCompRatio(); math.Abs(got-20.67) > 0.1 {
		t.Errorf("3-D 16K ratio = %v, want ~20.7", got)
	}
}

func TestModelGrainSizeIndependence(t *testing.T) {
	// Section 4.3: the ratio depends only on per-PE volume: doubling both
	// the problem (n -> n*sqrt(2)) and P leaves it unchanged.
	a := Model2D{N: 4000, P: 1024}
	b := Model2D{N: 5657, P: 2048} // 4000*sqrt(2) ~ 5657
	ra, rb := a.CommToCompRatio(), b.CommToCompRatio()
	if math.Abs(ra-rb)/ra > 0.001 {
		t.Errorf("ratio should be grain-determined: %v vs %v", ra, rb)
	}
}

func TestModelCurvesMonotone(t *testing.T) {
	sizes := []uint64{8, 64, 1024, 1 << 14, 1 << 18, 1 << 24}
	c2 := Model2D{N: 256, P: 16}.Curve(sizes)
	c3 := Model3D{N: 64, P: 8}.Curve(sizes)
	for _, c := range []*workingset.Curve{c2, c3} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].MissRate > c.Points[i-1].MissRate {
				t.Fatalf("%s not monotone", c.Label)
			}
		}
	}
}

// TestSimulationMatchesModel2D runs the traced solver through the
// multiprocessor simulator and checks the measured plateaus against the
// analytic model: the structural claim of Section 4.
func TestSimulationMatchesModel2D(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check is slow")
	}
	const (
		n       = 64
		px, py  = 2, 2
		warmup  = 2
		iters   = 6
		profile = 3
	)
	model := Model2D{N: n, P: px * py}
	sys := memsys.MustNew(memsys.Config{
		PEs: px * py, LineSize: 8, Profile: true, ProfilePE: profile,
		WarmupEpochs: warmup,
	})
	part, err := NewPartition2D(n, px, py, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver2D(part, sys)
	b := make([]float64, n*n)
	for i := range b {
		b[i] = 1
	}
	s.SetB(b)
	if _, err := s.Solve(Config{MaxIters: iters}); err != nil {
		t.Fatal(err)
	}
	prof := sys.Profiler(profile)
	measuredIters := float64(iters - warmup)
	flops := measuredIters * 20 * float64(n*n) / float64(px*py)

	rate := func(bytes uint64) float64 {
		return float64(prof.MissesAt(int(bytes/8)).Misses()) / flops
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}

	// Tiny cache: everything misses.
	if got := rate(16); !within(got, model.RateTiny(), 0.10) {
		t.Errorf("tiny-cache rate = %v, want ~%v", got, model.RateTiny())
	}
	// Row-reuse plateau (between 32 words and lev1WS).
	if got := rate(512); !within(got, model.RateRowReuse(), 0.12) {
		t.Errorf("row-reuse rate = %v, want ~%v", got, model.RateRowReuse())
	}
	// After lev1WS (1792B), before lev2WS (80KB): 0.75 plateau.
	if got := rate(4096); !within(got, model.RateAfterLev1(), 0.12) {
		t.Errorf("post-lev1 rate = %v, want ~%v", got, model.RateAfterLev1())
	}
	// Beyond the partition: only the boundary communication remains.
	if got := rate(1 << 21); !within(got, model.CommRate(), 0.5) {
		t.Errorf("comm floor = %v, want ~%v", got, model.CommRate())
	}
}
