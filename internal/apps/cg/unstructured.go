package cg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"wsstudy/internal/trace"
)

// Unstructured problems. Section 4.3 warns that "many important problems
// ... will not be nearly as regular as the 2-D and 3-D grids considered
// here", with three consequences: worse load balance, a higher
// communication-to-computation ratio at the same data-set size, and a
// partitioning step with limited parallelism. This file makes those
// claims measurable: a random geometric mesh, a general sparse CG solver
// over it, and two partitioners (spatial and random) whose edge cuts
// quantify the communication difference.

// Point2 is a mesh vertex location.
type Point2 struct {
	X, Y float64
}

// Mesh is an undirected graph over random points in the unit square, the
// sparse-matrix structure of an unstructured problem.
type Mesh struct {
	Pts []Point2
	adj [][]int32 // symmetric, sorted neighbor lists
}

// N reports the vertex count.
func (m *Mesh) N() int { return len(m.Pts) }

// Degree reports vertex i's neighbor count.
func (m *Mesh) Degree(i int) int { return len(m.adj[i]) }

// MaxDegree reports the largest degree.
func (m *Mesh) MaxDegree() int {
	max := 0
	for _, a := range m.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Edges reports the undirected edge count.
func (m *Mesh) Edges() int {
	total := 0
	for _, a := range m.adj {
		total += len(a)
	}
	return total / 2
}

// RandomMesh builds a k-nearest-neighbor geometric graph over n uniformly
// random points (symmetrized), deterministic in seed. It approximates the
// meshes of unstructured finite-element problems: bounded degree, spatial
// edges, irregular structure.
func RandomMesh(n, k int, seed int64) *Mesh {
	if n <= 0 || k <= 0 || k >= n {
		panic(fmt.Sprintf("cg: bad mesh parameters n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Mesh{Pts: make([]Point2, n), adj: make([][]int32, n)}
	for i := range m.Pts {
		m.Pts[i] = Point2{rng.Float64(), rng.Float64()}
	}
	// Bucket grid for neighbor queries.
	side := int(math.Sqrt(float64(n)/4)) + 1
	buckets := make([][]int32, side*side)
	bidx := func(p Point2) int {
		bx := int(p.X * float64(side))
		by := int(p.Y * float64(side))
		if bx >= side {
			bx = side - 1
		}
		if by >= side {
			by = side - 1
		}
		return by*side + bx
	}
	for i, p := range m.Pts {
		b := bidx(p)
		buckets[b] = append(buckets[b], int32(i))
	}
	type cand struct {
		j int32
		d float64
	}
	for i, p := range m.Pts {
		bx := int(p.X * float64(side))
		by := int(p.Y * float64(side))
		var cands []cand
		for ring := 0; len(cands) < k+1 && ring <= side; ring++ {
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					if maxAbs(dx, dy) != ring {
						continue
					}
					x, y := bx+dx, by+dy
					if x < 0 || y < 0 || x >= side || y >= side {
						continue
					}
					for _, j := range buckets[y*side+x] {
						if int(j) == i {
							continue
						}
						q := m.Pts[j]
						ddx, ddy := q.X-p.X, q.Y-p.Y
						cands = append(cands, cand{j, ddx*ddx + ddy*ddy})
					}
				}
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, c := range cands {
			m.addEdge(int32(i), c.j)
		}
	}
	for i := range m.adj {
		sort.Slice(m.adj[i], func(a, b int) bool { return m.adj[i][a] < m.adj[i][b] })
	}
	return m
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func (m *Mesh) addEdge(i, j int32) {
	for _, x := range m.adj[i] {
		if x == j {
			return
		}
	}
	m.adj[i] = append(m.adj[i], j)
	m.adj[j] = append(m.adj[j], i)
}

// EdgeCut counts edges whose endpoints live on different processors: the
// per-iteration communication volume of the unstructured CG.
func (m *Mesh) EdgeCut(assign []int) int {
	cut := 0
	for i, neigh := range m.adj {
		for _, j := range neigh {
			if int32(i) < j && assign[i] != assign[j] {
				cut++
			}
		}
	}
	return cut
}

// PartitionSpatial assigns vertices to p processors by Morton order over
// their coordinates — the "sophisticated strategy" class of partitioners.
// Returns assign and per-PE vertex lists in curve order.
func (m *Mesh) PartitionSpatial(p int) (assign []int, byPE [][]int) {
	n := m.N()
	order := make([]int, n)
	keys := make([]uint64, n)
	for i, pt := range m.Pts {
		order[i] = i
		keys[i] = morton2(pt.X, pt.Y)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	assign = make([]int, n)
	byPE = make([][]int, p)
	for rank, v := range order {
		pe := rank * p / n
		if pe >= p {
			pe = p - 1
		}
		assign[v] = pe
		byPE[pe] = append(byPE[pe], v)
	}
	return assign, byPE
}

// PartitionRandom assigns vertices uniformly at random: the naive baseline
// whose edge cut shows why partitioning quality matters.
func (m *Mesh) PartitionRandom(p int, seed int64) (assign []int, byPE [][]int) {
	rng := rand.New(rand.NewSource(seed))
	n := m.N()
	assign = make([]int, n)
	byPE = make([][]int, p)
	for i := 0; i < n; i++ {
		pe := rng.Intn(p)
		assign[i] = pe
		byPE[pe] = append(byPE[pe], i)
	}
	return assign, byPE
}

// morton2 interleaves 16 bits of each coordinate.
func morton2(x, y float64) uint64 {
	q := func(v float64) uint64 {
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = 0.999999999
		}
		return uint64(v * 65536)
	}
	ix, iy := q(x), q(y)
	var key uint64
	for b := 15; b >= 0; b-- {
		key = key<<2 | (ix>>uint(b))&1<<1 | (iy>>uint(b))&1
	}
	return key
}

// SolverU is conjugate gradient on the mesh Laplacian (diagonal degree+1,
// off-diagonals -1: symmetric, strictly diagonally dominant, hence SPD),
// partitioned by the supplied assignment.
type SolverU struct {
	mesh    *Mesh
	assign  []int
	byPE    [][]int
	slot    []int // vertex -> slot within its PE's region
	bases   []uint64
	maxDeg  int
	x, b    []float64
	r, p, q []float64
	em      []*trace.Emitter
	batch   *trace.Batcher
}

// NewSolverU builds the unstructured solver over mesh with the given
// partition (from PartitionSpatial or PartitionRandom).
func NewSolverU(mesh *Mesh, assign []int, byPE [][]int, sink trace.Consumer) *SolverU {
	n := mesh.N()
	s := &SolverU{
		mesh: mesh, assign: assign, byPE: byPE,
		slot: make([]int, n),
		x:    make([]float64, n), b: make([]float64, n),
		r: make([]float64, n), p: make([]float64, n), q: make([]float64, n),
		maxDeg: mesh.MaxDegree(),
		batch:  trace.NewBatcher(sink),
	}
	var arena trace.Arena
	s.bases = make([]uint64, len(byPE))
	s.em = make([]*trace.Emitter, len(byPE))
	for pe, list := range byPE {
		// Per node: padded coefficient row (maxDeg+1) plus 5 vector slots.
		s.bases[pe] = arena.AllocDW(uint64(len(list) * (s.maxDeg + 1 + numVecs)))
		s.em[pe] = s.batch.Emitter(pe)
		for slot, v := range list {
			s.slot[v] = slot
		}
	}
	return s
}

// vecAddr gives the address of vector element vec[v].
func (s *SolverU) vecAddr(vec, v int) uint64 {
	pe := s.assign[v]
	nodes := len(s.byPE[pe])
	return s.bases[pe] + uint64(nodes*(s.maxDeg+1)+vec*nodes+s.slot[v])*8
}

// coeffAddr gives the address of the c-th coefficient of vertex v.
func (s *SolverU) coeffAddr(c, v int) uint64 {
	pe := s.assign[v]
	return s.bases[pe] + uint64(s.slot[v]*(s.maxDeg+1)+c)*8
}

// ApplyA computes dst = A*src, untraced.
func (s *SolverU) ApplyA(dst, src []float64) {
	for i := range src {
		sum := float64(s.mesh.Degree(i)+1) * src[i]
		for _, j := range s.mesh.adj[i] {
			sum -= src[j]
		}
		dst[i] = sum
	}
}

// SetB assigns the right-hand side.
func (s *SolverU) SetB(b []float64) {
	if len(b) != len(s.b) {
		panic("cg: rhs length mismatch")
	}
	copy(s.b, b)
}

// X returns the current solution estimate.
func (s *SolverU) X() []float64 { return s.x }

// Solve runs CG exactly like the regular solvers, sweeping each
// processor's vertex list in partition order.
func (s *SolverU) Solve(cfg Config) (Result, error) {
	if cfg.MaxIters <= 0 {
		return Result{}, fmt.Errorf("cg: MaxIters must be positive")
	}
	res := Result{}
	defer s.batch.Flush()
	n := float64(s.mesh.N())

	copy(s.r, s.b)
	copy(s.p, s.r)
	rr := s.udotSelf(s.r, vecR)
	res.FLOPs += 2 * n

	for iter := 0; iter < cfg.MaxIters; iter++ {
		if err := s.batch.Err(); err != nil {
			return res, fmt.Errorf("cg: iteration %d: %w", iter, err)
		}
		s.batch.BeginEpoch(iter)
		if rr == 0 {
			// Exact solution already reached (e.g. the RHS was an
			// eigenvector); a zero search direction is convergence, not
			// breakdown.
			res.Converged = true
			break
		}
		s.umatvec()
		pq := s.udot(s.p, s.q, vecP, vecQ)
		if pq == 0 {
			return res, fmt.Errorf("cg: breakdown at iteration %d", iter)
		}
		alpha := rr / pq
		s.uaxpy(s.x, s.p, alpha, vecX, vecP)
		s.uaxpy(s.r, s.q, -alpha, vecR, vecQ)
		rr2 := s.udotSelf(s.r, vecR)
		beta := rr2 / rr
		rr = rr2
		s.uxpby(s.p, s.r, beta, vecP, vecR)
		res.FLOPs += n * float64(2*(s.mesh.Edges()*2/s.mesh.N()+1)+10)
		res.Iterations++
		norm := math.Sqrt(rr)
		res.Residuals = append(res.Residuals, norm)
		if cfg.Tol > 0 && norm < cfg.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

func (s *SolverU) umatvec() {
	for pe, list := range s.byPE {
		e := s.em[pe]
		for _, v := range list {
			e.LoadDW(s.coeffAddr(0, v)) // diagonal
			sum := float64(s.mesh.Degree(v)+1) * s.p[v]
			e.LoadDW(s.vecAddr(vecP, v))
			for c, j := range s.mesh.adj[v] {
				e.LoadDW(s.coeffAddr(c+1, v))
				e.LoadDW(s.vecAddr(vecP, int(j)))
				sum -= s.p[j]
			}
			s.q[v] = sum
			e.StoreDW(s.vecAddr(vecQ, v))
		}
	}
}

func (s *SolverU) usweep(f func(e *trace.Emitter, v int)) {
	for pe, list := range s.byPE {
		e := s.em[pe]
		for _, v := range list {
			f(e, v)
		}
	}
}

func (s *SolverU) udot(a, b []float64, va, vb int) float64 {
	total := 0.0
	s.usweep(func(e *trace.Emitter, v int) {
		e.LoadDW(s.vecAddr(va, v))
		e.LoadDW(s.vecAddr(vb, v))
		total += a[v] * b[v]
	})
	return total
}

func (s *SolverU) udotSelf(a []float64, va int) float64 {
	total := 0.0
	s.usweep(func(e *trace.Emitter, v int) {
		e.LoadDW(s.vecAddr(va, v))
		total += a[v] * a[v]
	})
	return total
}

func (s *SolverU) uaxpy(dst, src []float64, alpha float64, vd, vs int) {
	s.usweep(func(e *trace.Emitter, v int) {
		e.LoadDW(s.vecAddr(vd, v))
		e.LoadDW(s.vecAddr(vs, v))
		dst[v] += alpha * src[v]
		e.StoreDW(s.vecAddr(vd, v))
	})
}

func (s *SolverU) uxpby(dst, src []float64, beta float64, vd, vs int) {
	s.usweep(func(e *trace.Emitter, v int) {
		e.LoadDW(s.vecAddr(vd, v))
		e.LoadDW(s.vecAddr(vs, v))
		dst[v] = src[v] + beta*dst[v]
		e.StoreDW(s.vecAddr(vd, v))
	})
}

// LoadImbalance reports max/mean vertices per processor.
func LoadImbalance(byPE [][]int) float64 {
	if len(byPE) == 0 {
		return 1
	}
	total, max := 0, 0
	for _, l := range byPE {
		total += len(l)
		if len(l) > max {
			max = len(l)
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) / (float64(total) / float64(len(byPE)))
}
