package cg

import (
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
)

// profSink adapts a StackProfiler to trace.Consumer for one PE.
type profSink struct {
	pe int
	p  *cache.StackProfiler
}

func (s profSink) Ref(r trace.Ref) {
	if r.PE == s.pe {
		s.p.Access(r.Addr, r.Size, r.Kind == trace.Read)
	}
}

// matvecMissCurve runs a few traced iterations at grid size n (P=4) and
// returns the profiler.
func matvecMissCurve(t *testing.T, n, tile int) *cache.StackProfiler {
	t.Helper()
	prof := cache.MustStackProfiler(8)
	part, err := NewPartition2D(n, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver2D(part, profSink{pe: 3, p: prof})
	if tile > 0 {
		s.SetTileSize(tile)
	}
	b := make([]float64, n*n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	s.SetB(b)
	if _, err := s.Solve(Config{MaxIters: 3}); err != nil {
		t.Fatal(err)
	}
	return prof
}

// rateAt reports the total miss rate at a cache of the given size.
func rateAt(p *cache.StackProfiler, bytes uint64) float64 {
	return float64(p.MissesAt(int(bytes/8)).Misses()) / float64(p.Accesses())
}

// TestTiledSweepNumericsUnchanged: tiling must not change the answer.
func TestTiledSweepNumericsUnchanged(t *testing.T) {
	run := func(tile int) []float64 {
		part, _ := NewPartition2D(32, 2, 2, nil)
		s := NewSolver2D(part, nil)
		if tile > 0 {
			s.SetTileSize(tile)
		}
		b := make([]float64, 32*32)
		for i := range b {
			b[i] = float64(i % 5)
		}
		s.SetB(b)
		if _, err := s.Solve(Config{MaxIters: 20}); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), s.X()...)
	}
	plain := run(0)
	tiled := run(8)
	for i := range plain {
		if plain[i] != tiled[i] {
			t.Fatalf("tiling changed x[%d]: %v vs %v", i, plain[i], tiled[i])
		}
	}
}

func TestTileValidation(t *testing.T) {
	part, _ := NewPartition2D(8, 1, 1, nil)
	s := NewSolver2D(part, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("negative tile accepted")
		}
	}()
	s.SetTileSize(-1)
}

// TestBlockingMakesLev1Constant is the Section 4.2 claim, tested at a
// fixed probe cache sized between the two untiled knees: the untiled
// lev1WS is O(n/sqrt P) words (measured ~4 KB at n=64, ~8 KB at n=128), so
// the rate at the probe jumps when n doubles; a fixed 8-point tile pins
// the reuse distance (~1 KB), so the tiled rate stays put.
func TestBlockingMakesLev1Constant(t *testing.T) {
	if testing.Short() {
		t.Skip("four traced solves")
	}
	// Measured knees: untiled lev1WS completes at ~4 KB for n=64 and
	// ~8 KB for n=128; tiled at ~1 KB regardless. Probe between the two
	// untiled knees.
	const probe = 4096
	plainSmall := rateAt(matvecMissCurve(t, 64, 0), probe)
	plainBig := rateAt(matvecMissCurve(t, 128, 0), probe)
	tiledSmall := rateAt(matvecMissCurve(t, 64, 8), probe)
	tiledBig := rateAt(matvecMissCurve(t, 128, 8), probe)

	if plainBig <= plainSmall+0.02 {
		t.Errorf("untiled rate at probe should jump when lev1WS outgrows the cache: %v -> %v",
			plainSmall, plainBig)
	}
	if diff := tiledBig - tiledSmall; diff > 0.02 || diff < -0.02 {
		t.Errorf("tiled rate should be size-independent: %v vs %v", tiledSmall, tiledBig)
	}
	if tiledBig >= plainBig-0.02 {
		t.Errorf("tiling should recover the reuse at n=128: tiled %v vs plain %v",
			tiledBig, plainBig)
	}
}
