// Package cg implements the paper's second application class (Section 4):
// the conjugate gradient method on regular 2-D and 3-D grids.
//
// As with the other kernels, the solver is numerically real (it solves
// Laplacian systems and its convergence is tested), emits the per-processor
// reference stream of the parallel program while it runs, and is paired
// with an analytic model of the Figure 4 working-set curves and the
// Section 4.3 grain-size quantities.
package cg

import (
	"fmt"

	"wsstudy/internal/trace"
)

// Vector identifiers for the CG state. Each processor's partition of each
// vector is contiguous in the simulated address space.
const (
	vecX = iota // solution estimate
	vecB        // right-hand side
	vecR        // residual
	vecP        // search direction (the communicated vector)
	vecQ        // A*p
	numVecs
)

const coeffsPerPoint2D = 5 // 5-point stencil rows
const coeffsPerPoint3D = 7 // 7-point stencil rows

// Partition2D maps an n x n grid onto a px x py processor grid, each
// processor owning a contiguous rectangle, and assigns per-processor
// contiguous addresses to the matrix coefficients and the five CG vectors.
type Partition2D struct {
	N      int
	Px, Py int
	bases  []uint64 // per PE base address
	coeffs int      // coefficients per point
}

// NewPartition2D validates and builds the partition. px*py processors;
// px and py must divide n.
func NewPartition2D(n, px, py int, arena *trace.Arena) (*Partition2D, error) {
	if n <= 0 || px <= 0 || py <= 0 {
		return nil, fmt.Errorf("cg: bad partition %dx%d over %d", px, py, n)
	}
	if n%px != 0 || n%py != 0 {
		return nil, fmt.Errorf("cg: %dx%d processor grid must divide n=%d", px, py, n)
	}
	if arena == nil {
		arena = &trace.Arena{}
	}
	p := &Partition2D{N: n, Px: px, Py: py, coeffs: coeffsPerPoint2D}
	pts := (n / px) * (n / py)
	perPE := uint64(pts * (p.coeffs + numVecs))
	p.bases = make([]uint64, px*py)
	for pe := range p.bases {
		p.bases[pe] = arena.AllocDW(perPE)
	}
	return p, nil
}

// P reports the processor count.
func (p *Partition2D) P() int { return p.Px * p.Py }

// RowsPerPE and ColsPerPE report the owned rectangle dimensions.
func (p *Partition2D) RowsPerPE() int { return p.N / p.Px }

// ColsPerPE reports the columns of the owned rectangle.
func (p *Partition2D) ColsPerPE() int { return p.N / p.Py }

// Owner returns the processor owning grid point (i,j).
func (p *Partition2D) Owner(i, j int) int {
	return (i/p.RowsPerPE())*p.Py + j/p.ColsPerPE()
}

// Bounds returns the half-open row/column ranges owned by pe.
func (p *Partition2D) Bounds(pe int) (r0, r1, c0, c1 int) {
	pr, pc := pe/p.Py, pe%p.Py
	rp, cp := p.RowsPerPE(), p.ColsPerPE()
	return pr * rp, (pr + 1) * rp, pc * cp, (pc + 1) * cp
}

// local returns the owning PE and local point index of (i,j) in the
// owner's row-major sweep order.
func (p *Partition2D) local(i, j int) (pe, idx int) {
	pe = p.Owner(i, j)
	r0, _, c0, _ := p.Bounds(pe)
	return pe, (i-r0)*p.ColsPerPE() + (j - c0)
}

// VecAddr returns the simulated address of vector element vec[(i,j)].
func (p *Partition2D) VecAddr(vec, i, j int) uint64 {
	pe, idx := p.local(i, j)
	pts := p.RowsPerPE() * p.ColsPerPE()
	return p.bases[pe] + uint64(pts*p.coeffs+vec*pts+idx)*8
}

// CoeffAddr returns the address of the c-th stencil coefficient of (i,j).
func (p *Partition2D) CoeffAddr(c, i, j int) uint64 {
	pe, idx := p.local(i, j)
	return p.bases[pe] + uint64(idx*p.coeffs+c)*8
}

// PartitionBytes is the per-processor data size in bytes (coefficients
// plus all five vectors): the paper's lev2WS.
func (p *Partition2D) PartitionBytes() uint64 {
	pts := p.RowsPerPE() * p.ColsPerPE()
	return uint64(pts*(p.coeffs+numVecs)) * 8
}

// Partition3D is the 3-D analog: an n^3 grid over a pc^3 processor cube.
type Partition3D struct {
	N, Pc  int // grid side; processors per cube side
	bases  []uint64
	coeffs int
}

// NewPartition3D validates and builds the 3-D partition. pc^3 processors;
// pc must divide n.
func NewPartition3D(n, pc int, arena *trace.Arena) (*Partition3D, error) {
	if n <= 0 || pc <= 0 {
		return nil, fmt.Errorf("cg: bad 3-D partition pc=%d n=%d", pc, n)
	}
	if n%pc != 0 {
		return nil, fmt.Errorf("cg: processor cube side %d must divide n=%d", pc, n)
	}
	if arena == nil {
		arena = &trace.Arena{}
	}
	p := &Partition3D{N: n, Pc: pc, coeffs: coeffsPerPoint3D}
	s := n / pc
	perPE := uint64(s * s * s * (p.coeffs + numVecs))
	p.bases = make([]uint64, pc*pc*pc)
	for pe := range p.bases {
		p.bases[pe] = arena.AllocDW(perPE)
	}
	return p, nil
}

// P reports the processor count, pc^3.
func (p *Partition3D) P() int { return p.Pc * p.Pc * p.Pc }

// Side reports the owned subcube edge length n/pc.
func (p *Partition3D) Side() int { return p.N / p.Pc }

// Owner returns the processor owning (i,j,k).
func (p *Partition3D) Owner(i, j, k int) int {
	s := p.Side()
	return ((i/s)*p.Pc+j/s)*p.Pc + k/s
}

// local returns the owner and local sweep index of (i,j,k).
func (p *Partition3D) local(i, j, k int) (pe, idx int) {
	s := p.Side()
	pe = p.Owner(i, j, k)
	li, lj, lk := i%s, j%s, k%s
	return pe, (li*s+lj)*s + lk
}

// VecAddr returns the address of vector element vec[(i,j,k)].
func (p *Partition3D) VecAddr(vec, i, j, k int) uint64 {
	pe, idx := p.local(i, j, k)
	s := p.Side()
	pts := s * s * s
	return p.bases[pe] + uint64(pts*p.coeffs+vec*pts+idx)*8
}

// CoeffAddr returns the address of the c-th stencil coefficient of (i,j,k).
func (p *Partition3D) CoeffAddr(c, i, j, k int) uint64 {
	pe, idx := p.local(i, j, k)
	return p.bases[pe] + uint64(idx*p.coeffs+c)*8
}

// PartitionBytes is the per-processor data size in bytes.
func (p *Partition3D) PartitionBytes() uint64 {
	s := p.Side()
	pts := s * s * s
	return uint64(pts*(p.coeffs+numVecs)) * 8
}
