package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFFTLinearityProperty: FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	check := func(seed int64, aRe, aIm float64) bool {
		if aRe != aRe || aIm != aIm { // NaN guards from quick
			return true
		}
		if aRe > 1e3 || aRe < -1e3 || aIm > 1e3 || aIm < -1e3 {
			return true
		}
		a := complex(aRe, aIm)
		const n = 64
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		combo := make([]complex128, n)
		for i := range combo {
			combo[i] = a*x[i] + y[i]
		}
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		Serial(fx)
		Serial(fy)
		Serial(combo)
		for i := range combo {
			want := a*fx[i] + fy[i]
			scale := cmplx.Abs(want) + 1
			if cmplx.Abs(combo[i]-want)/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFFTShiftTheoremProperty: a circular shift in time multiplies the
// spectrum by a phase ramp.
func TestFFTShiftTheoremProperty(t *testing.T) {
	check := func(seed int64, shiftRaw uint8) bool {
		const n = 64
		shift := int(shiftRaw) % n
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		shifted := make([]complex128, n)
		for i := range x {
			shifted[i] = x[(i+shift)%n]
		}
		fx := append([]complex128(nil), x...)
		Serial(fx)
		Serial(shifted)
		tw := newTwiddleTable(n)
		for k := range fx {
			// x[(i+s)] transforms to X[k] * w_n^{-ks}.
			want := fx[k] * cmplx.Conj(tw.root(k*shift))
			if cmplx.Abs(shifted[k]-want) > 1e-8*(cmplx.Abs(want)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSerialAgreementProperty fuzzes the parallel decomposition
// against the serial kernel over random shapes.
func TestParallelSerialAgreementProperty(t *testing.T) {
	check := func(seed int64, shape uint8) bool {
		logn := 6 + int(shape%4)     // 64..512 points
		p := 1 << (int(shape/4) % 3) // 1, 2, 4
		radix := []int{2, 4, 8}[int(shape/16)%3]
		cfg := Config{LogN: logn, P: p, InternalRadix: radix}
		if cfg.Validate() != nil {
			return true
		}
		f, err := New(cfg, nil)
		if err != nil {
			return true
		}
		x := randomSignal(cfg.N(), seed)
		f.SetInput(x)
		f.Run()
		want := append([]complex128(nil), x...)
		Serial(want)
		return MaxAbsDiff(f.Output(), want) < 1e-7
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestInverseRoundTrip recovers the input through the conjugate trick:
// IFFT(x) = conj(FFT(conj(x)))/n.
func TestInverseRoundTrip(t *testing.T) {
	const n = 256
	x := randomSignal(n, 21)
	freq := append([]complex128(nil), x...)
	Serial(freq)
	inv := make([]complex128, n)
	for i, v := range freq {
		inv[i] = cmplx.Conj(v)
	}
	Serial(inv)
	for i := range inv {
		inv[i] = cmplx.Conj(inv[i]) / complex(float64(n), 0)
	}
	if d := MaxAbsDiff(inv, x); d > 1e-9 {
		t.Fatalf("round trip error %g", d)
	}
}
