package fft

import (
	"fmt"
	"math"

	"wsstudy/internal/workingset"
)

// Model is the analytic working-set and communication model of Section 5
// and Figure 5.
type Model struct {
	LogN          int
	P             int
	InternalRadix int
}

const bytesPerPoint = 16 // one complex double

// Lev1WS is the internal-radix group: r points plus the (up to r-1)
// distinct twiddles its butterflies touch — about 32r bytes, a few KB at
// most.
func (m Model) Lev1WS() uint64 {
	r := uint64(m.InternalRadix)
	return r*bytesPerPoint + (r-1)*bytesPerPoint
}

// Lev2WS is the data set assigned to one processor, D = N/P points.
func (m Model) Lev2WS() uint64 {
	return uint64((1<<m.LogN)/m.P) * bytesPerPoint
}

// RateBaseline is the miss rate with no blocking captured: each butterfly
// misses its two points and its twiddle, 6 double words per 10 operations.
func (m Model) RateBaseline() float64 { return 0.6 }

// RateAfterLev1 is the plateau once an internal-radix group fits: per
// group, 2r point double words plus 2(r-1) twiddle double words over
// 5*r*log2(r) operations. Radix 2 gives 0.6, radix 8 gives 0.25, radix 32
// gives ~0.1575 — the paper's 0.6 / 0.25 / 0.15.
func (m Model) RateAfterLev1() float64 {
	r := float64(m.InternalRadix)
	return (4*r - 2) / (5 * r * math.Log2(r))
}

// CommRate is the floor once a processor's partition fits: the first
// touch of the input and the two all-to-all exchanges still miss — about
// 6 double words per point over 5*log2(N) operations per point.
func (m Model) CommRate() float64 { return 6 / (5 * float64(m.LogN)) }

// MissRatePerOp evaluates the Figure 5 step curve.
func (m Model) MissRatePerOp(cacheBytes uint64) float64 {
	switch {
	case cacheBytes < m.Lev1WS():
		return m.RateBaseline()
	case cacheBytes < m.Lev2WS():
		return m.RateAfterLev1()
	default:
		return m.CommRate()
	}
}

// Curve samples the model at the given sizes.
func (m Model) Curve(sizes []uint64) *workingset.Curve {
	c := &workingset.Curve{
		Label:  fmt.Sprintf("FFT n=2^%d P=%d radix %d", m.LogN, m.P, m.InternalRadix),
		Metric: "misses/op",
	}
	for _, s := range sizes {
		c.Points = append(c.Points, workingset.Point{CacheBytes: s, MissRate: m.MissRatePerOp(s)})
	}
	return c
}

// WorkingSets lists the two-level hierarchy.
func (m Model) WorkingSets() workingset.Hierarchy {
	return workingset.Hierarchy{
		App: "FFT",
		Levels: []workingset.Level{
			{Name: "lev1WS", SizeBytes: m.Lev1WS(), MissRate: m.RateAfterLev1(),
				Note: "one internal-radix group and its twiddles"},
			{Name: "lev2WS", SizeBytes: m.Lev2WS(), MissRate: m.CommRate(),
				Note: "a PE's D points"},
		},
	}
}

// FLOPs is 5*N*log2(N).
func (m Model) FLOPs() float64 {
	n := float64(uint64(1) << m.LogN)
	return 5 * n * float64(m.LogN)
}

// Exchanges is the number of all-to-all data exchanges; the two-step
// decomposition (valid while P^2 <= N) always uses two, which is why the
// paper finds the ratio unchanged when P drops from 1024 to 64.
func (m Model) Exchanges() int { return 2 }

// CommToCompRatio is the actual (quantized) ratio: 5*N*log2(N) operations
// over 2 exchanges of 2N words each — (5/4)*log2(N), about 33 for the
// prototypical 64M-point problem.
func (m Model) CommToCompRatio() float64 {
	return 5 * float64(m.LogN) / 4
}

// UnquantizedRatio is the idealized per-superstage ratio (5/2)*log2(D)
// used in the paper's grain discussion.
func (m Model) UnquantizedRatio() float64 {
	d := (1 << m.LogN) / m.P
	return 2.5 * math.Log2(float64(d))
}

// GrainForRatio inverts the unquantized ratio: the per-processor memory
// (bytes) needed to sustain R FLOPs per word, N/P = 2^(2R/5) points.
// R=60 needs about 270 MB; R=100 about 18 TB — the paper's argument that
// growing the grain cannot rescue the FFT.
func GrainForRatio(r float64) float64 {
	return math.Exp2(2*r/5) * bytesPerPoint
}

// DataSetBytes is 16*N.
func (m Model) DataSetBytes() uint64 { return uint64(1<<m.LogN) * bytesPerPoint }

// GrainBytes is the per-processor memory, 16*N/P.
func (m Model) GrainBytes() uint64 { return m.DataSetBytes() / uint64(m.P) }
