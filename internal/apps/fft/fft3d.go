package fft

import (
	"fmt"

	"wsstudy/internal/trace"
)

// 3-D complex FFT, completing Section 5's "our analysis ... also applies
// to the complex 2D and 3D FFT". Pencil decomposition: 1-D transforms
// along each axis with two transpose-like redistributions in between, each
// moving the whole 2n^3-word data set — the same two-movement accounting
// as the 1-D and 2-D cases, so the ratio law is again (5/4)*log2(N) with
// N = n^3. (Three axes need two redistributions because the first axis is
// local in the initial slab layout and the last stays local in the final
// one.)

// Config3D parameterizes the transform on an n^3 grid, n = 2^LogN.
type Config3D struct {
	LogN          int // grid side is 2^LogN
	P             int // processors (power of two, P <= n)
	InternalRadix int
}

// Validate checks the configuration.
func (c Config3D) Validate() error {
	if c.LogN < 1 || c.LogN > 9 {
		return fmt.Errorf("fft: 3-D LogN %d out of range", c.LogN)
	}
	if !IsPow2(c.P) || c.P > 1<<c.LogN {
		return fmt.Errorf("fft: 3-D P=%d must be a power of two <= n", c.P)
	}
	if !IsPow2(c.InternalRadix) || c.InternalRadix < 2 {
		return fmt.Errorf("fft: internal radix %d must be a power of two >= 2", c.InternalRadix)
	}
	return nil
}

// N returns the grid side.
func (c Config3D) N() int { return 1 << c.LogN }

// FFT3D is the traced 3-D transform. Data is held as n^2 "pencils" of n
// points; pencils are distributed over processors in contiguous bands.
type FFT3D struct {
	cfg Config3D
	tw  *twiddleTable

	cur, tmp   [][]complex128 // n^2 pencils of n points each
	curB, tmpB []uint64

	twBase uint64
	em     []*trace.Emitter
	batch  *trace.Batcher
	flops  float64
}

// New3D builds the transform. sink may be nil for a pure numeric run.
func New3D(cfg Config3D, sink trace.Consumer) (*FFT3D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N()
	f := &FFT3D{cfg: cfg, tw: newTwiddleTable(n), batch: trace.NewBatcher(sink)}
	var arena trace.Arena
	f.twBase = arena.AllocDW(uint64(n))
	alloc := func() ([][]complex128, []uint64) {
		p := make([][]complex128, n*n)
		b := make([]uint64, n*n)
		for i := range p {
			p[i] = make([]complex128, n)
			b[i] = arena.AllocDW(uint64(2 * n))
		}
		return p, b
	}
	f.cur, f.curB = alloc()
	f.tmp, f.tmpB = alloc()
	f.em = make([]*trace.Emitter, cfg.P)
	for pe := range f.em {
		f.em[pe] = f.batch.Emitter(pe)
	}
	return f, nil
}

// SetInput loads x[(i*n+j)*n+k] (k fastest) into k-pencils.
func (f *FFT3D) SetInput(x []complex128) {
	n := f.cfg.N()
	if len(x) != n*n*n {
		panic("fft: 3-D input length mismatch")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			copy(f.cur[i*n+j], x[(i*n+j)*n:(i*n+j+1)*n])
		}
	}
}

// Output returns the row-major spectrum after Run.
func (f *FFT3D) Output() []complex128 {
	n := f.cfg.N()
	out := make([]complex128, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			copy(out[(i*n+j)*n:(i*n+j+1)*n], f.cur[i*n+j])
		}
	}
	return out
}

// FLOPs reports the operation count of the last Run.
func (f *FFT3D) FLOPs() float64 { return f.flops }

// owner assigns pencil slabs to processors by leading index.
func (f *FFT3D) owner(i int) int { return i / (f.cfg.N() / f.cfg.P) }

// Run executes the transform: FFT along k, redistribute so j is the pencil
// axis, FFT, redistribute so i is the pencil axis, FFT, and restore the
// original layout.
func (f *FFT3D) Run() {
	defer f.batch.Flush()
	f.batch.BeginEpoch(0)
	f.flops = 0
	n := f.cfg.N()

	fftAll := func(p [][]complex128, b []uint64) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				e := f.em[f.owner(i)]
				blockedFFT(p[i*n+j], b[i*n+j], e, f.tw, f.twBase, 1,
					f.cfg.InternalRadix, &f.flops)
			}
		}
	}
	// exchange remaps dst[i*n+j][k] = src[perm(i,j,k)], reader-pulls.
	exchange := func(dst, src [][]complex128, dstB, srcB []uint64,
		perm func(i, j, k int) (int, int, int)) {
		for i := 0; i < n; i++ {
			e := f.em[f.owner(i)]
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					si, sj, sk := perm(i, j, k)
					e.Load(pointAddr(srcB[si*n+sj], sk), 16)
					dst[i*n+j][k] = src[si*n+sj][sk]
					e.Store(pointAddr(dstB[i*n+j], k), 16)
				}
			}
		}
	}

	// Pass 1: pencils along k (cur is (i,j)[k]).
	fftAll(f.cur, f.curB)
	// Swap j <-> k: tmp(i,k)[j] = cur(i,j)[k].
	exchange(f.tmp, f.cur, f.tmpB, f.curB, func(i, a, b int) (int, int, int) { return i, b, a })
	fftAll(f.tmp, f.tmpB) // transforms along j
	// Swap i <-> k (of the current layout): cur(b,k)[i]... we want pencils
	// along i: cur(j,k)[i] = tmp(i,k)[j]: dst index (a=j, b=k), k=i.
	exchange(f.cur, f.tmp, f.curB, f.tmpB, func(a, b, c int) (int, int, int) { return c, b, a })
	fftAll(f.cur, f.curB) // transforms along i
	// Restore natural layout: tmp(i,j)[k] = cur(j,k)[i].
	exchange(f.tmp, f.cur, f.tmpB, f.curB, func(i, j, k int) (int, int, int) { return j, k, i })
	f.cur, f.tmp = f.tmp, f.cur
	f.curB, f.tmpB = f.tmpB, f.curB
}

// Naive3D computes the 3-D DFT via three naive 1-D passes (O(n^4) work),
// the verification ground truth.
func Naive3D(x []complex128, n int) []complex128 {
	if len(x) != n*n*n {
		panic("fft: naive 3-D length mismatch")
	}
	cur := append([]complex128(nil), x...)
	buf := make([]complex128, n)
	// Transform along each axis in turn.
	for axis := 0; axis < 3; axis++ {
		next := make([]complex128, n*n*n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for k := 0; k < n; k++ {
					buf[k] = cur[index3(axis, a, b, k, n)]
				}
				fk := NaiveDFT(buf)
				for k := 0; k < n; k++ {
					next[index3(axis, a, b, k, n)] = fk[k]
				}
			}
		}
		cur = next
	}
	return cur
}

// index3 linearizes coordinates with the transform axis as k.
func index3(axis, a, b, k, n int) int {
	switch axis {
	case 0: // k axis (fastest)
		return (a*n+b)*n + k
	case 1: // j axis
		return (a*n+k)*n + b
	default: // i axis
		return (k*n+a)*n + b
	}
}
