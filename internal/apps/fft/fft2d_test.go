package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"wsstudy/internal/trace"
)

func TestConfig2DValidation(t *testing.T) {
	bad := []Config2D{
		{LogN: 0, P: 1, InternalRadix: 2},
		{LogN: 4, P: 3, InternalRadix: 2},
		{LogN: 4, P: 32, InternalRadix: 2}, // P > n
		{LogN: 4, P: 4, InternalRadix: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config2D{LogN: 5, P: 8, InternalRadix: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFFT2DMatchesNaive(t *testing.T) {
	for _, logn := range []int{2, 3, 4} {
		n := 1 << logn
		cfg := Config2D{LogN: logn, P: 2, InternalRadix: 4}
		f, err := New2D(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n*n, int64(logn))
		f.SetInput(x)
		f.Run()
		want := Naive2D(x, n)
		if d := MaxAbsDiff(f.Output(), want); d > 1e-7 {
			t.Errorf("n=%d: 2-D FFT differs from naive by %g", n, d)
		}
	}
}

func TestFFT2DImpulse(t *testing.T) {
	// A centered impulse transforms to alternating-sign constants.
	const logn, n = 3, 8
	f, _ := New2D(Config2D{LogN: logn, P: 4, InternalRadix: 2}, nil)
	x := make([]complex128, n*n)
	x[0] = 1 // impulse at the origin: flat spectrum of ones
	f.SetInput(x)
	f.Run()
	for i, v := range f.Output() {
		if cmplx.Abs(v-1) > 1e-10 {
			t.Fatalf("spectrum[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFT2DSeparability(t *testing.T) {
	// Property: the 2-D transform of an outer product a_i * b_j is the
	// outer product of the 1-D transforms.
	const logn, n = 4, 16
	a := randomSignal(n, 9)
	b := randomSignal(n, 10)
	x := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i*n+j] = a[i] * b[j]
		}
	}
	f, _ := New2D(Config2D{LogN: logn, P: 4, InternalRadix: 8}, nil)
	f.SetInput(x)
	f.Run()
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	Serial(fa)
	Serial(fb)
	out := f.Output()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := fa[i] * fb[j]
			if cmplx.Abs(out[i*n+j]-want) > 1e-7 {
				t.Fatalf("separability violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestFFT2DTracedEmitsAllPEs(t *testing.T) {
	const logn = 4
	perPE := make([]uint64, 4)
	sink := trace.Func(func(r trace.Ref) { perPE[r.PE]++ })
	f, err := New2D(Config2D{LogN: logn, P: 4, InternalRadix: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	f.SetInput(randomSignal(16*16, 3))
	f.Run()
	for pe, c := range perPE {
		if c == 0 {
			t.Errorf("PE %d emitted nothing", pe)
		}
	}
	// FLOPs: 5 * n^2 * log2(n^2) butterfly operations.
	want := 5.0 * 256 * 8
	if math.Abs(f.FLOPs()-want) > 1 {
		t.Errorf("FLOPs = %v, want %v", f.FLOPs(), want)
	}
}

func TestModel2DLawsMatch1D(t *testing.T) {
	// A 1024x1024 2-D transform has the ratio of a 2^20-point 1-D one.
	m2 := Model2D{LogN: 10, P: 256, InternalRadix: 8}
	m1 := Model{LogN: 20, P: 256, InternalRadix: 8}
	if m2.CommToCompRatio() != m1.CommToCompRatio() {
		t.Error("2-D ratio should equal the 1-D law at N=n^2")
	}
	if m2.RateAfterLev1() != m1.RateAfterLev1() {
		t.Error("plateaus should match for the same radix")
	}
	if m2.Lev2WS() != m1.Lev2WS() {
		t.Error("per-PE data should match")
	}
}

func TestFFT3DMatchesNaive(t *testing.T) {
	for _, logn := range []int{1, 2, 3} {
		n := 1 << logn
		f, err := New3D(Config3D{LogN: logn, P: min(2, n), InternalRadix: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n*n*n, int64(logn+50))
		f.SetInput(x)
		f.Run()
		want := Naive3D(x, n)
		if d := MaxAbsDiff(f.Output(), want); d > 1e-7 {
			t.Errorf("n=%d: 3-D FFT differs from naive by %g", n, d)
		}
	}
}

func TestFFT3DImpulse(t *testing.T) {
	const logn, n = 3, 8
	f, _ := New3D(Config3D{LogN: logn, P: 4, InternalRadix: 4}, nil)
	x := make([]complex128, n*n*n)
	x[0] = 1
	f.SetInput(x)
	f.Run()
	for i, v := range f.Output() {
		if cmplx.Abs(v-1) > 1e-10 {
			t.Fatalf("spectrum[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFT3DSeparability(t *testing.T) {
	// FFT3D of a_i*b_j*c_k is the outer product of the 1-D transforms.
	const logn, n = 3, 8
	a := randomSignal(n, 60)
	b := randomSignal(n, 61)
	c := randomSignal(n, 62)
	x := make([]complex128, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x[(i*n+j)*n+k] = a[i] * b[j] * c[k]
			}
		}
	}
	f, _ := New3D(Config3D{LogN: logn, P: 2, InternalRadix: 8}, nil)
	f.SetInput(x)
	f.Run()
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fc := append([]complex128(nil), c...)
	Serial(fa)
	Serial(fb)
	Serial(fc)
	out := f.Output()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				want := fa[i] * fb[j] * fc[k]
				if cmplx.Abs(out[(i*n+j)*n+k]-want) > 1e-7*(cmplx.Abs(want)+1) {
					t.Fatalf("separability violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestFFT3DTracedEmits(t *testing.T) {
	perPE := make([]uint64, 4)
	sink := trace.Func(func(r trace.Ref) { perPE[r.PE]++ })
	f, err := New3D(Config3D{LogN: 2, P: 4, InternalRadix: 2}, sink)
	if err != nil {
		t.Fatal(err)
	}
	f.SetInput(randomSignal(64, 7))
	f.Run()
	for pe, cnt := range perPE {
		if cnt == 0 {
			t.Errorf("PE %d emitted nothing", pe)
		}
	}
}

func TestConfig3DValidation(t *testing.T) {
	for _, cfg := range []Config3D{
		{LogN: 0, P: 1, InternalRadix: 2},
		{LogN: 3, P: 16, InternalRadix: 2}, // P > n
		{LogN: 3, P: 3, InternalRadix: 2},
		{LogN: 3, P: 2, InternalRadix: 5},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}
