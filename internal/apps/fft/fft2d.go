package fft

import (
	"fmt"

	"wsstudy/internal/trace"
)

// 2-D complex FFT. Section 5 states the 1-D analysis "also applies to the
// complex 2D and 3D FFT"; this file makes that concrete with the standard
// slab (row) decomposition: each processor owns a contiguous band of rows,
// performs row FFTs locally, participates in one all-to-all transpose,
// performs the column FFTs locally, and transposes back — the same
// internal-radix blocking and the same bisection-bound exchanges as the
// 1-D case, with 5*n^2*log(n^2) operations over two movements of the
// 2n^2-word data set (the identical ratio law).

// Config2D parameterizes the 2-D transform on an n x n grid, n = 2^LogN.
type Config2D struct {
	LogN          int // grid side is 2^LogN
	P             int // processors (power of two, P <= n)
	InternalRadix int
}

// Validate checks the configuration.
func (c Config2D) Validate() error {
	if c.LogN < 1 || c.LogN > 14 {
		return fmt.Errorf("fft: 2-D LogN %d out of range", c.LogN)
	}
	if !IsPow2(c.P) || c.P > 1<<c.LogN {
		return fmt.Errorf("fft: 2-D P=%d must be a power of two <= n", c.P)
	}
	if !IsPow2(c.InternalRadix) || c.InternalRadix < 2 {
		return fmt.Errorf("fft: internal radix %d must be a power of two >= 2", c.InternalRadix)
	}
	return nil
}

// N returns the grid side.
func (c Config2D) N() int { return 1 << c.LogN }

// FFT2D is the traced 2-D transform.
type FFT2D struct {
	cfg Config2D
	tw  *twiddleTable // size n

	rows  [][]complex128 // rows[i] of the working grid
	rowsT [][]complex128 // transpose buffer

	rowBase  []uint64 // address of row i
	rowTBase []uint64
	twBase   uint64

	em    []*trace.Emitter
	batch *trace.Batcher
	flops float64
}

// New2D builds the transform. sink may be nil for a pure numeric run.
func New2D(cfg Config2D, sink trace.Consumer) (*FFT2D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N()
	f := &FFT2D{cfg: cfg, tw: newTwiddleTable(n), batch: trace.NewBatcher(sink)}
	var arena trace.Arena
	f.twBase = arena.AllocDW(uint64(n))
	alloc := func() ([][]complex128, []uint64) {
		rows := make([][]complex128, n)
		bases := make([]uint64, n)
		for i := range rows {
			rows[i] = make([]complex128, n)
			bases[i] = arena.AllocDW(uint64(2 * n))
		}
		return rows, bases
	}
	f.rows, f.rowBase = alloc()
	f.rowsT, f.rowTBase = alloc()
	f.em = make([]*trace.Emitter, cfg.P)
	for pe := range f.em {
		f.em[pe] = f.batch.Emitter(pe)
	}
	return f, nil
}

// SetInput loads a row-major n*n input.
func (f *FFT2D) SetInput(x []complex128) {
	n := f.cfg.N()
	if len(x) != n*n {
		panic("fft: 2-D input length mismatch")
	}
	for i := 0; i < n; i++ {
		copy(f.rows[i], x[i*n:(i+1)*n])
	}
}

// Output returns the row-major spectrum after Run.
func (f *FFT2D) Output() []complex128 {
	n := f.cfg.N()
	out := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		copy(out[i*n:(i+1)*n], f.rows[i])
	}
	return out
}

// FLOPs reports the operation count of the last Run.
func (f *FFT2D) FLOPs() float64 { return f.flops }

// owner maps a row to its processor (contiguous bands).
func (f *FFT2D) owner(row int) int { return row / (f.cfg.N() / f.cfg.P) }

// Run executes the transform: row FFTs, transpose, row FFTs (i.e. column
// transforms), transpose back.
func (f *FFT2D) Run() {
	defer f.batch.Flush()
	f.batch.BeginEpoch(0)
	f.flops = 0
	n := f.cfg.N()

	rowFFTs := func(rows [][]complex128, bases []uint64) {
		for i := 0; i < n; i++ {
			e := f.em[f.owner(i)]
			blockedFFT(rows[i], bases[i], e, f.tw, f.twBase, 1,
				f.cfg.InternalRadix, &f.flops)
		}
	}

	// transpose moves dst[j][i] = src[i][j]; the reader pulls: each
	// processor reads the columns it needs from every other band (the
	// all-to-all the ratio law charges as one movement of 2n^2 words).
	transpose := func(dst, src [][]complex128, dstBase, srcBase []uint64) {
		for j := 0; j < n; j++ {
			e := f.em[f.owner(j)]
			for i := 0; i < n; i++ {
				e.Load(pointAddr(srcBase[i], j), 16)
				dst[j][i] = src[i][j]
				e.Store(pointAddr(dstBase[j], i), 16)
			}
		}
	}

	rowFFTs(f.rows, f.rowBase)
	transpose(f.rowsT, f.rows, f.rowTBase, f.rowBase)
	rowFFTs(f.rowsT, f.rowTBase)
	transpose(f.rows, f.rowsT, f.rowBase, f.rowTBase)
}

// Naive2D computes the 2-D DFT by definition (O(n^4) work via row/column
// 1-D naive DFTs), the verification ground truth.
func Naive2D(x []complex128, n int) []complex128 {
	if len(x) != n*n {
		panic("fft: naive 2-D length mismatch")
	}
	// Rows.
	tmp := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		row := NaiveDFT(x[i*n : (i+1)*n])
		copy(tmp[i*n:(i+1)*n], row)
	}
	// Columns.
	out := make([]complex128, n*n)
	col := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = tmp[i*n+j]
		}
		cf := NaiveDFT(col)
		for i := 0; i < n; i++ {
			out[i*n+j] = cf[i]
		}
	}
	return out
}

// Model2D extends the Section 5 ratio law to the 2-D transform: the total
// work is 5*n^2*log2(n^2) and the data crosses the machine twice, so the
// ratio is (5/2)*log2(n^2)/2 per word... evaluated exactly as in the 1-D
// model with N = n^2.
type Model2D struct {
	LogN          int // grid side 2^LogN
	P             int
	InternalRadix int
}

// as1D views the 2-D transform through the 1-D model with N = n^2.
func (m Model2D) as1D() Model {
	return Model{LogN: 2 * m.LogN, P: m.P, InternalRadix: m.InternalRadix}
}

// Lev1WS matches the 1-D internal-radix group.
func (m Model2D) Lev1WS() uint64 { return m.as1D().Lev1WS() }

// Lev2WS is the processor's band of rows, 16*n^2/P bytes.
func (m Model2D) Lev2WS() uint64 { return m.as1D().Lev2WS() }

// CommToCompRatio is (5/4)*log2(n^2): the same law as 1-D at N = n^2,
// because both transforms move the whole data set through the bisection
// twice.
func (m Model2D) CommToCompRatio() float64 { return m.as1D().CommToCompRatio() }

// RateAfterLev1 matches the 1-D plateau for the same internal radix.
func (m Model2D) RateAfterLev1() float64 { return m.as1D().RateAfterLev1() }
