// Package fft implements the paper's third application class (Section 5):
// the 1-D complex FFT, parallelized radix-D with internal-radix cache
// blocking.
//
// The serial kernel (Serial) and the naive DFT ground truth live here; the
// traced parallel algorithm is in parallel.go and the analytic model of
// Figure 5 in model.go.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a power of two.
func Log2(n int) int {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: %d is not a power of two", n))
	}
	return bits.TrailingZeros(uint(n))
}

// bitrev reverses the low `width` bits of x.
func bitrev(x, width int) int {
	return int(bits.Reverse32(uint32(x)) >> (32 - uint(width)))
}

// Serial computes an in-place forward FFT of x (len a power of two) with
// the standard iterative radix-2 decimation-in-time algorithm. It is the
// reference the parallel algorithm is tested against.
func Serial(x []complex128) {
	n := len(x)
	logn := Log2(n)
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := bitrev(i, logn)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for s := 0; s < logn; s++ {
		half := 1 << s
		span := half * 2
		for base := 0; base < n; base += span {
			for j := 0; j < half; j++ {
				tw := cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(span)))
				u := x[base+j]
				v := x[base+j+half] * tw
				x[base+j] = u + v
				x[base+j+half] = u - v
			}
		}
	}
}

// NaiveDFT computes the forward DFT by definition, O(n^2): the ground
// truth for correctness tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// MaxAbsDiff reports the largest elementwise |a[i]-b[i]|.
func MaxAbsDiff(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("fft: length mismatch")
	}
	max := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// twiddleTable precomputes the n/2 roots of unity w_n^j = exp(-2 pi i j/n)
// for j in [0, n/2), the table every butterfly indexes.
type twiddleTable struct {
	n     int
	roots []complex128
}

func newTwiddleTable(n int) *twiddleTable {
	t := &twiddleTable{n: n, roots: make([]complex128, n/2)}
	for j := range t.roots {
		t.roots[j] = cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(n)))
	}
	return t
}

// root returns w_n^j for any j >= 0 (indexes modulo n, using symmetry for
// the upper half).
func (t *twiddleTable) root(j int) complex128 {
	j %= t.n
	if j < t.n/2 {
		return t.roots[j]
	}
	return -t.roots[j-t.n/2]
}

// rootIndex gives the table index used for simulated addressing.
func (t *twiddleTable) rootIndex(j int) int {
	j %= t.n
	if j >= t.n/2 {
		j -= t.n / 2
	}
	return j
}
