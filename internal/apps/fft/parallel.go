package fft

import (
	"fmt"

	"wsstudy/internal/trace"
)

// Config parameterizes the parallel FFT.
type Config struct {
	LogN          int // transform size is N = 2^LogN points
	P             int // processors (power of two, P*P <= N)
	InternalRadix int // cache-blocking radix r (power of two >= 2)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LogN < 1 || c.LogN > 30 {
		return fmt.Errorf("fft: LogN %d out of range", c.LogN)
	}
	if !IsPow2(c.P) {
		return fmt.Errorf("fft: P=%d must be a power of two", c.P)
	}
	n := 1 << c.LogN
	if c.P*c.P > n {
		return fmt.Errorf("fft: need P^2 <= N (P=%d, N=%d) for the two-exchange decomposition", c.P, n)
	}
	if !IsPow2(c.InternalRadix) || c.InternalRadix < 2 {
		return fmt.Errorf("fft: internal radix %d must be a power of two >= 2", c.InternalRadix)
	}
	return nil
}

// N returns the point count.
func (c Config) N() int { return 1 << c.LogN }

// D returns points per processor, N/P.
func (c Config) D() int { return c.N() / c.P }

// FFT is the traced parallel transform: the paper's radix-D organization,
// realized as the four-step factorization FFT_N = (FFT_P twiddle FFT_D)
// over a cyclic input distribution. Each processor performs one D-point
// local FFT (log D butterfly stages, blocked by the internal radix), a
// twiddle scaling, an all-to-all exchange, D/P local P-point FFTs
// (log P stages), and a final all-to-all that leaves the spectrum blocked
// across processors. Two exchanges of all 2N double words — exactly the
// communication accounting behind the paper's ratio of 33 for the
// prototypical problem.
type FFT struct {
	cfg Config
	tw  *twiddleTable

	local [][]complex128 // per PE, D slots; slot l holds x[p + P*l]
	recv  [][]complex128 // per PE, D slots; exchange-1 destination
	out   [][]complex128 // per PE, D slots; blocked spectrum

	localBase, recvBase, outBase []uint64
	twBase                       uint64

	em    []*trace.Emitter
	batch *trace.Batcher
	flops float64
}

// New builds the transform. sink may be nil for a pure numeric run.
func New(cfg Config, sink trace.Consumer) (*FFT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, p, d := cfg.N(), cfg.P, cfg.D()
	f := &FFT{
		cfg:   cfg,
		tw:    newTwiddleTable(n),
		batch: trace.NewBatcher(sink),
	}
	var arena trace.Arena
	f.twBase = arena.AllocDW(uint64(n)) // n/2 complex roots = n double words
	alloc := func() ([][]complex128, []uint64) {
		bufs := make([][]complex128, p)
		bases := make([]uint64, p)
		for pe := 0; pe < p; pe++ {
			bufs[pe] = make([]complex128, d)
			bases[pe] = arena.AllocDW(uint64(2 * d))
		}
		return bufs, bases
	}
	f.local, f.localBase = alloc()
	f.recv, f.recvBase = alloc()
	f.out, f.outBase = alloc()
	f.em = make([]*trace.Emitter, p)
	for pe := range f.em {
		f.em[pe] = f.batch.Emitter(pe)
	}
	return f, nil
}

// SetInput loads a natural-order input of length N into the cyclic
// distribution.
func (f *FFT) SetInput(x []complex128) {
	if len(x) != f.cfg.N() {
		panic("fft: input length mismatch")
	}
	p := f.cfg.P
	for n, v := range x {
		f.local[n%p][n/p] = v
	}
}

// Output returns the natural-order spectrum after Run.
func (f *FFT) Output() []complex128 {
	d := f.cfg.D()
	x := make([]complex128, f.cfg.N())
	for m := range x {
		x[m] = f.out[m/d][m%d]
	}
	return x
}

// FLOPs reports the floating-point operations of the last Run.
func (f *FFT) FLOPs() float64 { return f.flops }

// pointAddr returns the address of complex slot i in a per-PE region.
func pointAddr(base uint64, i int) uint64 { return base + uint64(i)*16 }

// loadPoint/storePoint emit the two-double-word accesses of one complex.
func (f *FFT) loadPoint(e *trace.Emitter, base uint64, i int) {
	e.Load(pointAddr(base, i), 16)
}

func (f *FFT) storePoint(e *trace.Emitter, base uint64, i int) {
	e.Store(pointAddr(base, i), 16)
}

// loadRoot emits the table lookup for w_N^j and returns its value.
func (f *FFT) loadRoot(e *trace.Emitter, j int) complex128 {
	e.Load(f.twBase+uint64(f.tw.rootIndex(j))*16, 16)
	return f.tw.root(j)
}

// Run executes the transform, emitting every processor's references.
// Epoch 0 spans the whole run (the FFT is a one-shot computation; the
// paper does not exclude its cold misses). It stops early, returning the
// sink's stop reason, when the sink reports cancellation between per-PE
// phases (the output is then incomplete).
func (f *FFT) Run() error {
	defer f.batch.Flush()
	f.batch.BeginEpoch(0)
	f.flops = 0
	p, d, n := f.cfg.P, f.cfg.D(), f.cfg.N()
	dp := d / p

	// Step 1: local D-point FFTs (log D stages, radix-blocked), then the
	// step-2 twiddle scaling w_N^(p*k2).
	for pe := 0; pe < p; pe++ {
		if err := f.batch.Err(); err != nil {
			return fmt.Errorf("fft: step 1 pe %d: %w", pe, err)
		}
		f.localFFT(f.local[pe], f.localBase[pe], f.em[pe], n/d)
		for k2 := 0; k2 < d; k2++ {
			f.loadPoint(f.em[pe], f.localBase[pe], k2)
			w := f.loadRoot(f.em[pe], pe*k2)
			f.local[pe][k2] *= w
			f.storePoint(f.em[pe], f.localBase[pe], k2)
			f.flops += 6
		}
	}

	// Exchange 1: receiver pulls. PE pe collects sequence j (global
	// k2 = pe*dp + j) from every other processor.
	for pe := 0; pe < p; pe++ {
		if err := f.batch.Err(); err != nil {
			return fmt.Errorf("fft: exchange 1 pe %d: %w", pe, err)
		}
		e := f.em[pe]
		for j := 0; j < dp; j++ {
			k2 := pe*dp + j
			for n1 := 0; n1 < p; n1++ {
				f.loadPoint(e, f.localBase[n1], k2)
				f.recv[pe][j*p+n1] = f.local[n1][k2]
				f.storePoint(e, f.recvBase[pe], j*p+n1)
			}
		}
	}

	// Step 3: P-point FFTs on each received sequence.
	for pe := 0; pe < p; pe++ {
		if err := f.batch.Err(); err != nil {
			return fmt.Errorf("fft: step 3 pe %d: %w", pe, err)
		}
		for j := 0; j < dp; j++ {
			f.localFFT(f.recv[pe][j*p:(j+1)*p],
				pointAddr(f.recvBase[pe], j*p), f.em[pe], n/p)
		}
	}

	// Exchange 2: blocked redistribution of the spectrum. PE pe owns
	// X[pe*D .. (pe+1)*D); X[k2 + D*k1] sits at recv[k2/dp][(k2%dp)*p+k1].
	for pe := 0; pe < p; pe++ {
		if err := f.batch.Err(); err != nil {
			return fmt.Errorf("fft: exchange 2 pe %d: %w", pe, err)
		}
		e := f.em[pe]
		for t := 0; t < d; t++ {
			k2, k1 := t, pe
			src := k2 / dp
			slot := (k2%dp)*p + k1
			f.loadPoint(e, f.recvBase[src], slot)
			f.out[pe][t] = f.recv[src][slot]
			f.storePoint(e, f.outBase[pe], t)
		}
	}
	return nil
}

// localFFT runs the shared blocked engine with this transform's twiddle
// table and internal radix.
func (f *FFT) localFFT(buf []complex128, base uint64, e *trace.Emitter, rootStride int) {
	blockedFFT(buf, base, e, f.tw, f.twBase, rootStride, f.cfg.InternalRadix, &f.flops)
}

// blockedFFT runs an in-place radix-2 DIT FFT over buf (a power-of-two
// length), blocked into internal-radix groups: the stages are processed in
// chunks of log2(radix), and within a chunk each closed group of `radix`
// points is taken through all the chunk's stages before the next group is
// touched — the paper's "smaller internal groups". rootStride maps local
// twiddle exponents onto the shared w table (stride tw.n/len(buf)); flops
// accumulates the operation count.
func blockedFFT(buf []complex128, base uint64, e *trace.Emitter, tw *twiddleTable, twBase uint64, rootStride, radix int, flops *float64) {
	l := len(buf)
	logl := Log2(l)
	// Bit-reversal permutation.
	for i := 0; i < l; i++ {
		j := bitrev(i, logl)
		if i < j {
			e.Load(pointAddr(base, i), 16)
			e.Load(pointAddr(base, j), 16)
			buf[i], buf[j] = buf[j], buf[i]
			e.Store(pointAddr(base, i), 16)
			e.Store(pointAddr(base, j), 16)
		}
	}
	m := Log2(radix)
	for t := 0; t < logl; t += m {
		mm := m
		if t+mm > logl {
			mm = logl - t
		}
		groupSpan := 1 << (t + mm) // indices a group spreads over
		stride := 1 << t
		for high := 0; high < l; high += groupSpan {
			for low := 0; low < stride; low++ {
				// The group is {high + low + s*stride : s in [0, 2^mm)}.
				// Run its mm stages depth-first.
				for q := 0; q < mm; q++ {
					half := 1 << q
					span := half * 2
					for gb := 0; gb < 1<<mm; gb += span {
						for jj := 0; jj < half; jj++ {
							i0 := high + low + (gb+jj)*stride
							i1 := i0 + half*stride
							// Twiddle exponent: (index mod 2^(t+q)) scaled
							// to the w table.
							jtw := (low + jj*stride) * (l >> (t + q + 1)) * rootStride
							e.Load(twBase+uint64(tw.rootIndex(jtw))*16, 16)
							w := tw.root(jtw)
							e.Load(pointAddr(base, i0), 16)
							e.Load(pointAddr(base, i1), 16)
							u := buf[i0]
							v := buf[i1] * w
							buf[i0] = u + v
							buf[i1] = u - v
							e.Store(pointAddr(base, i0), 16)
							e.Store(pointAddr(base, i1), 16)
							*flops += 10
						}
					}
				}
			}
		}
	}
}
