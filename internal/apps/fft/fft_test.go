package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"wsstudy/internal/cache"
	"wsstudy/internal/trace"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestSerialMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomSignal(n, int64(n))
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		Serial(got)
		if d := MaxAbsDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d: serial FFT differs from DFT by %g", n, d)
		}
	}
}

func TestSerialImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	Serial(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum[%d] = %v, want 1", i, v)
		}
	}
}

func TestSerialParseval(t *testing.T) {
	x := randomSignal(128, 3)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	Serial(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if d := math.Abs(freqEnergy/float64(len(x)) - timeEnergy); d > 1e-8 {
		t.Fatalf("Parseval violated by %g", d)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LogN: 0, P: 1, InternalRadix: 2},
		{LogN: 8, P: 3, InternalRadix: 2},  // P not a power of two
		{LogN: 4, P: 8, InternalRadix: 2},  // P^2 > N
		{LogN: 8, P: 4, InternalRadix: 3},  // radix not a power of two
		{LogN: 8, P: 4, InternalRadix: 1},  // radix too small
		{LogN: 40, P: 4, InternalRadix: 2}, // absurd size
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := Config{LogN: 12, P: 16, InternalRadix: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.N() != 4096 || good.D() != 256 {
		t.Errorf("N/D wrong: %d %d", good.N(), good.D())
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ logn, p, r int }{
		{6, 1, 2}, {6, 4, 2}, {8, 4, 8}, {8, 16, 4}, {10, 8, 32}, {10, 32, 8},
	} {
		cfg := Config{LogN: tc.logn, P: tc.p, InternalRadix: tc.r}
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(cfg.N(), int64(tc.logn*100+tc.p))
		f.SetInput(x)
		f.Run()
		want := append([]complex128(nil), x...)
		Serial(want)
		if d := MaxAbsDiff(f.Output(), want); d > 1e-7 {
			t.Errorf("logN=%d P=%d r=%d: parallel differs from serial by %g",
				tc.logn, tc.p, tc.r, d)
		}
	}
}

func TestParallelRadixInvariance(t *testing.T) {
	// The internal radix is a cache-blocking choice; it must not change
	// the answer.
	x := randomSignal(1024, 5)
	var ref []complex128
	for _, r := range []int{2, 4, 8, 16, 32} {
		f, err := New(Config{LogN: 10, P: 4, InternalRadix: r}, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.SetInput(x)
		f.Run()
		out := f.Output()
		if ref == nil {
			ref = out
			continue
		}
		if d := MaxAbsDiff(out, ref); d > 1e-9 {
			t.Errorf("radix %d changes the spectrum by %g", r, d)
		}
	}
}

func TestTracingDoesNotChangeNumbers(t *testing.T) {
	x := randomSignal(256, 8)
	var counter trace.Counter
	traced, _ := New(Config{LogN: 8, P: 4, InternalRadix: 8}, &counter)
	plain, _ := New(Config{LogN: 8, P: 4, InternalRadix: 8}, nil)
	traced.SetInput(x)
	plain.SetInput(x)
	traced.Run()
	plain.Run()
	if d := MaxAbsDiff(traced.Output(), plain.Output()); d != 0 {
		t.Fatalf("tracing changed results by %g", d)
	}
	if counter.Refs == 0 {
		t.Fatal("no references emitted")
	}
}

func TestFLOPsAccounting(t *testing.T) {
	cfg := Config{LogN: 10, P: 4, InternalRadix: 8}
	f, _ := New(cfg, nil)
	f.SetInput(randomSignal(cfg.N(), 1))
	f.Run()
	// 5*N*logN butterfly FLOPs plus 6N twiddle-scale FLOPs.
	want := 5*1024*10 + 6*1024
	if math.Abs(f.FLOPs()-float64(want)) > 1 {
		t.Fatalf("FLOPs = %v, want %d", f.FLOPs(), want)
	}
}

func TestTwiddleTable(t *testing.T) {
	tw := newTwiddleTable(16)
	for j := 0; j < 32; j++ {
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(j)/16))
		if d := cmplx.Abs(tw.root(j) - want); d > 1e-12 {
			t.Fatalf("root(%d) off by %g", j, d)
		}
		if idx := tw.rootIndex(j); idx < 0 || idx >= 8 {
			t.Fatalf("rootIndex(%d) = %d out of range", j, idx)
		}
	}
}

func TestModelPaperNumbers(t *testing.T) {
	// Figure 5 plateaus.
	cases := []struct {
		radix int
		want  float64
	}{
		{2, 0.6},
		{8, 0.25},
		{32, 0.1575},
	}
	for _, c := range cases {
		m := Model{LogN: 26, P: 1024, InternalRadix: c.radix}
		if got := m.RateAfterLev1(); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("radix %d plateau = %v, want %v", c.radix, got, c.want)
		}
	}
	// Prototypical ratio: 5*26/4 = 32.5 ("yielding a ratio of 33").
	m := Model{LogN: 26, P: 1024, InternalRadix: 8}
	if got := m.CommToCompRatio(); math.Abs(got-32.5) > 1e-9 {
		t.Errorf("ratio = %v, want 32.5", got)
	}
	// Quantization: P=64 leaves the ratio unchanged (still two exchanges).
	m64 := Model{LogN: 26, P: 64, InternalRadix: 8}
	if m64.CommToCompRatio() != m.CommToCompRatio() {
		t.Error("ratio should not change between P=1024 and P=64")
	}
	// Grain blowup: R=60 needs ~270 MB per PE; R=100 ~18 TB.
	if got := GrainForRatio(60) / (1 << 20); math.Abs(got-256) > 1 {
		t.Errorf("grain for R=60 = %v MB, want 256 MB (paper: ~270)", got)
	}
	if got := GrainForRatio(100) / (1 << 40); math.Abs(got-16) > 0.1 {
		t.Errorf("grain for R=100 = %v TB, want 16 TB (paper: ~18)", got)
	}
	// lev1WS stays tiny for realistic radices ("a few Kbytes").
	if ws := m.Lev1WS(); ws > 4096 {
		t.Errorf("lev1WS = %d, want under 4 KB", ws)
	}
}

// TestSimulationMatchesModel profiles one processor of a 2^14-point FFT
// and checks the three model plateaus.
func TestSimulationMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check is slow")
	}
	cfg := Config{LogN: 14, P: 4, InternalRadix: 8}
	model := Model{LogN: cfg.LogN, P: cfg.P, InternalRadix: cfg.InternalRadix}
	prof := cache.MustStackProfiler(8)
	const pe = 1
	f, err := New(cfg, trace.PEFilter{PE: pe, Next: profConsumer{prof}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInput(randomSignal(cfg.N(), 2))
	f.Run()
	opsPerPE := f.FLOPs() / float64(cfg.P)

	rate := func(bytes uint64) float64 {
		return float64(prof.MissesAt(int(bytes/8)).Misses()) / opsPerPE
	}
	// The model's plateau constants follow the paper's convention of
	// counting only the butterfly loop; the measured kernel also pays for
	// bit reversal, the twiddle scaling and the two exchanges, which at
	// this small test scale (logN=14 versus the paper's 26) add a
	// noticeable constant. The checks below therefore bound each plateau
	// and assert the knee structure rather than exact values; the
	// remaining offset is documented in EXPERIMENTS.md.

	// Tiny cache: near the 0.6 baseline.
	if got := rate(64); math.Abs(got-model.RateBaseline()) > 0.15 {
		t.Errorf("baseline rate = %v, want ~%v", got, model.RateBaseline())
	}
	// Radix-8 plateau (lev1WS=240B < 1KB < lev2WS=64KB): between the
	// butterfly-only 0.25 and baseline, and clearly below baseline.
	if got := rate(1024); got < model.RateAfterLev1()*0.8 || got > 0.5 {
		t.Errorf("post-lev1 rate = %v, want in [0.2, 0.5]", got)
	}
	// Beyond the partition: the cold/communication floor.
	if got := rate(1 << 22); got > 0.2 {
		t.Errorf("comm floor = %v, want <= 0.2", got)
	}
	// The knees must be real drops: each plateau well below the previous.
	r0, r1, r2 := rate(64), rate(1024), rate(1<<22)
	if !(r0 > 1.3*r1 && r1 > 1.5*r2) {
		t.Errorf("plateaus not cleanly separated: %v, %v, %v", r0, r1, r2)
	}
}

type profConsumer struct{ p *cache.StackProfiler }

func (c profConsumer) Ref(r trace.Ref) {
	c.p.Access(r.Addr, r.Size, r.Kind == trace.Read)
}
