package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestParallelBankMatchesSerial replays identical randomized op streams —
// mixed-size accesses, invalidations, a mid-stream measurement reset —
// into a serial Bank and ParallelBanks at several shard counts, and
// demands bit-identical per-member statistics. Invalidations are the
// hard case: they are exactly what breaks the one-pass stack-distance
// property, so getting them bit-right through the sharded pipeline is
// the whole point of the Bank.
func TestParallelBankMatchesSerial(t *testing.T) {
	caps := []int{4, 16, 64, 256, 1024}
	for _, workers := range []int{1, 2, 3, 5} {
		serial := MustBank(caps, 8)
		par := MustParallelBank(caps, 8, workers)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			switch {
			case i == 20000:
				serial.SetMeasuring(true)
				par.SetMeasuring(true)
			case rng.Intn(10) == 0:
				addr := uint64(rng.Intn(1 << 14))
				serial.Invalidate(addr)
				par.Invalidate(addr)
			default:
				addr := uint64(rng.Intn(1 << 14))
				size := uint32(1 + rng.Intn(24))
				read := rng.Intn(3) != 0
				serial.Access(addr, size, read)
				par.Access(addr, size, read)
			}
		}
		if got, want := par.Curve(), serial.Curve(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel curve diverged\nparallel: %+v\nserial:   %+v", workers, got, want)
		}
		for i := range caps {
			if got, want := par.Stats(i), serial.Stats(i); got != want {
				t.Errorf("workers=%d member %d: stats diverged\nparallel: %+v\nserial:   %+v", workers, i, got, want)
			}
		}
		if got, want := par.Capacities(), serial.Capacities(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: capacities %v, want %v", workers, got, want)
		}
		par.Close()
	}
}

func TestParallelBankCloseIdempotentAndDrops(t *testing.T) {
	par := MustParallelBank([]int{8, 32}, 8, 2)
	par.Access(0, 8, true)
	par.Close()
	par.Close()
	before := par.Stats(0)
	par.Access(64, 8, true) // dropped after Close
	par.SetMeasuring(true)  // dropped after Close
	if got := par.Stats(0); got != before {
		t.Errorf("ops after Close mutated stats: %+v -> %+v", before, got)
	}
}

func TestParallelBankInvalidConfig(t *testing.T) {
	if _, err := NewParallelBank(nil, 8, 0); err == nil {
		t.Error("empty capacities should fail")
	}
	if _, err := NewParallelBank([]int{8, 8}, 8, 0); err == nil {
		t.Error("non-ascending capacities should fail")
	}
}
