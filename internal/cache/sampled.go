package cache

import (
	"fmt"
	"math"
	"sort"

	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/trace"
)

// Profiler is the consumer contract shared by the exact StackProfiler and
// the spatially-sampled SampledStackProfiler. Everything downstream of a
// profiler — memsys machines, the figure experiments, ProfileCurve — works
// against this interface, so fidelity (exact vs sampled) is a construction
// choice selected by Options.SampleRate, not a separate code path.
type Profiler interface {
	trace.BlockConsumer

	// Access processes a reference to [addr, addr+size); Invalidate turns
	// the line into a coherence hole (see StackProfiler).
	Access(addr uint64, size uint32, read bool)
	Invalidate(addr uint64)

	// Measurement window control (cold-start exclusion).
	SetMeasuring(on bool)
	Measuring() bool

	// Configuration and exact access totals. Reads/Writes/Accesses count
	// every measured reference even under sampling — only the stack
	// machinery is sampled, so miss *rates* keep exact denominators.
	LineSize() uint32
	Reads() uint64
	Writes() uint64
	Accesses() uint64
	ColdMisses() (read, write uint64)
	CoherenceMisses() (read, write uint64)
	DistinctLines() int

	// Curve queries (scaled estimates under sampling).
	MissesAt(capacityLines int) MissCount
	Curve(capacitiesLines []int) []MissCount

	// Sampling introspection: the exact profiler answers rate 1, zero
	// sampled lines, zero error bound.
	SampleRate() int
	SampledLines() int
	ErrorBound() float64

	// Observability (run-scope counters; nil Recorder is a no-op).
	Instrument(rec *obs.Recorder)
}

var (
	_ Profiler = (*StackProfiler)(nil)
	_ Profiler = (*SampledStackProfiler)(nil)
)

// SampleRate reports the spatial sampling rate: 1, the exact profiler
// profiles every line.
func (p *StackProfiler) SampleRate() int { return 1 }

// SampledLines reports how many distinct sampled lines back the estimate;
// zero for the exact profiler, whose counts are not estimates.
func (p *StackProfiler) SampledLines() int { return 0 }

// ErrorBound reports the estimated relative error of the miss counts:
// zero, the exact profiler is exact (modulo the documented hole-model
// approximation under invalidations).
func (p *StackProfiler) ErrorBound() float64 { return 0 }

// fpSampleSelect guards the sample-selection seam: profiler construction,
// where the hashed line filter is chosen. Armed with an error it fails the
// machine build (and therefore the experiment) before any reference is
// consumed — the chaos suite proves such failures surface cleanly and
// never cache a result.
var fpSampleSelect = fault.New("cache.sample.select")

// validateSampleRate rejects rates that are not powers of two: the hash
// filter masks low bits, so only power-of-two subsets of the line space
// are selectable, and the canonical `opt.sample` axis promises as much.
func validateSampleRate(rate int) error {
	if rate < 1 || rate&(rate-1) != 0 {
		return fmt.Errorf("%w: sample rate %d is not a power of two ≥ 1", ErrInvalidConfig, rate)
	}
	return nil
}

// NewProfiler builds the profiler Options.SampleRate asks for: the exact
// StackProfiler at rate 1, a SampledStackProfiler at power-of-two rates
// above it. Invalid line sizes or rates return an error wrapping
// ErrInvalidConfig.
func NewProfiler(lineSize uint32, sampleRate int) (Profiler, error) {
	if err := fpSampleSelect.Inject(nil); err != nil {
		return nil, err
	}
	if err := validateSampleRate(sampleRate); err != nil {
		return nil, err
	}
	if sampleRate == 1 {
		return NewStackProfiler(lineSize)
	}
	return NewSampledStackProfiler(lineSize, sampleRate)
}

// SampledStackProfiler estimates the miss-rate curve from a spatially
// hashed 1/R subset of the line space (SHARDS-style): a deterministic
// 64-bit mix of the line index selects lines with hash(line) ≡ 0 (mod R);
// selected lines run through an exact inner StackProfiler, and every
// distance observed on the subset statistically represents R lines, so a
// sampled stack distance d estimates a true distance of d·R and sampled
// miss counts scale by R. Access totals (Reads/Writes) are counted over
// the full stream, keeping miss-rate denominators exact.
//
// The estimator inherits the exact profiler's hole model for
// invalidations, restricted to sampled lines: invalidations of unsampled
// lines are invisible, so coherence-miss estimates carry the same ×R
// scaling variance as capacity misses (see DESIGN.md §12 for the measured
// bounds).
type SampledStackProfiler struct {
	inner *StackProfiler
	rate  uint64
	mask  uint64 // rate-1; line sampled iff sampleHash(line)&mask == 0

	reads, writes uint64 // full-stream measured totals
}

// NewSampledStackProfiler builds a sampled profiler for the given line
// size and sampling rate R (a power of two ≥ 2; rate 1 callers want the
// exact profiler — use NewProfiler to dispatch). Violations return an
// error wrapping ErrInvalidConfig.
func NewSampledStackProfiler(lineSize uint32, sampleRate int) (*SampledStackProfiler, error) {
	if err := validateSampleRate(sampleRate); err != nil {
		return nil, err
	}
	if sampleRate < 2 {
		return nil, fmt.Errorf("%w: sampled profiler needs rate ≥ 2 (rate 1 is the exact profiler)", ErrInvalidConfig)
	}
	inner, err := NewStackProfiler(lineSize)
	if err != nil {
		return nil, err
	}
	return &SampledStackProfiler{
		inner: inner,
		rate:  uint64(sampleRate),
		mask:  uint64(sampleRate) - 1,
	}, nil
}

// sampleHash is the splitmix64 finalizer: a full-avalanche 64-bit mix, so
// the low bits of the hash select a pseudo-random, deterministic subset of
// the line space regardless of the kernel's address striding.
func sampleHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sampled reports whether the line is in the profiled subset.
func (p *SampledStackProfiler) sampled(line uint64) bool {
	return sampleHash(line)&p.mask == 0
}

// LineSize reports the configured line size in bytes.
func (p *SampledStackProfiler) LineSize() uint32 { return p.inner.lineSize }

// SetMeasuring toggles statistics collection. State updates always happen.
func (p *SampledStackProfiler) SetMeasuring(on bool) { p.inner.SetMeasuring(on) }

// Measuring reports whether statistics are being collected.
func (p *SampledStackProfiler) Measuring() bool { return p.inner.Measuring() }

// Access processes a reference to [addr, addr+size): every touched line
// counts toward the exact access totals, and the sampled subset feeds the
// inner stack simulation.
func (p *SampledStackProfiler) Access(addr uint64, size uint32, read bool) {
	if size == 0 {
		return
	}
	p.inner.mAccesses.Inc()
	first := Line(addr, p.inner.lineSize)
	last := Line(addr+uint64(size)-1, p.inner.lineSize)
	for line := first; ; line++ {
		if p.inner.measuring {
			if read {
				p.reads++
			} else {
				p.writes++
			}
		}
		if p.sampled(line) {
			p.inner.touch(line, read)
		}
		if line == last {
			break
		}
	}
}

// Ref feeds one reference to the profiler (the issuing PE is ignored, as
// with StackProfiler).
func (p *SampledStackProfiler) Ref(r trace.Ref) {
	p.Access(r.Addr, r.Size, r.Kind == trace.Read)
}

// Refs feeds a block of references to the profiler in order.
func (p *SampledStackProfiler) Refs(block []trace.Ref) {
	for i := range block {
		p.Access(block[i].Addr, block[i].Size, block[i].Kind == trace.Read)
	}
}

// Invalidate forwards invalidations of sampled lines to the inner
// profiler; invalidations of unsampled lines cannot affect the sampled
// stack and are dropped.
func (p *SampledStackProfiler) Invalidate(addr uint64) {
	if p.sampled(Line(addr, p.inner.lineSize)) {
		p.inner.Invalidate(addr)
	}
}

// DistinctLines estimates the distinct lines on the full stack: the
// sampled count scaled by R.
func (p *SampledStackProfiler) DistinctLines() int {
	return p.inner.DistinctLines() * int(p.rate)
}

// Reads reports measured read accesses over the full (unsampled) stream.
func (p *SampledStackProfiler) Reads() uint64 { return p.reads }

// Writes reports measured write accesses over the full (unsampled) stream.
func (p *SampledStackProfiler) Writes() uint64 { return p.writes }

// Accesses reports measured reads plus writes over the full stream.
func (p *SampledStackProfiler) Accesses() uint64 { return p.reads + p.writes }

// ColdMisses estimates measured cold misses (read, write): sampled counts
// scaled by R.
func (p *SampledStackProfiler) ColdMisses() (read, write uint64) {
	r, w := p.inner.ColdMisses()
	return r * p.rate, w * p.rate
}

// CoherenceMisses estimates measured coherence misses (read, write):
// sampled counts scaled by R.
func (p *SampledStackProfiler) CoherenceMisses() (read, write uint64) {
	r, w := p.inner.CoherenceMisses()
	return r * p.rate, w * p.rate
}

// MissesAt estimates the miss counts for a fully associative LRU cache of
// the given capacity: the sampled subset behaves like the full stream in a
// cache R times smaller, so capacity C is answered by the inner profiler
// at C/R with counts scaled by R.
func (p *SampledStackProfiler) MissesAt(capacityLines int) MissCount {
	mc := p.inner.MissesAt(capacityLines / int(p.rate))
	mc.CapacityLines = capacityLines
	mc.ReadMisses *= p.rate
	mc.WriteMisses *= p.rate
	return mc
}

// Curve estimates miss counts for each capacity, mapping each capacity to
// the inner profiler's scaled-down stack as MissesAt does. Like the exact
// profiler's Curve, the result is always ascending by capacity.
func (p *SampledStackProfiler) Curve(capacitiesLines []int) []MissCount {
	if !sort.IntsAreSorted(capacitiesLines) {
		sorted := make([]int, len(capacitiesLines))
		copy(sorted, capacitiesLines)
		sort.Ints(sorted)
		capacitiesLines = sorted
	}
	out := make([]MissCount, len(capacitiesLines))
	for i, c := range capacitiesLines {
		out[i] = p.MissesAt(c)
	}
	return out
}

// SampleRate reports the spatial sampling rate R.
func (p *SampledStackProfiler) SampleRate() int { return int(p.rate) }

// SampledLines reports how many distinct sampled lines back the estimate
// (the inner profiler's resident line count).
func (p *SampledStackProfiler) SampledLines() int { return p.inner.DistinctLines() }

// ErrorBound estimates the relative error of the scaled miss counts as
// 1/sqrt(sampled lines) — the usual estimator-variance bound for
// uniform spatial sampling. Zero sampled lines (nothing measured yet, or
// a stream too small for the rate) answers 1: no confidence.
func (p *SampledStackProfiler) ErrorBound() float64 {
	n := p.inner.DistinctLines()
	if n <= 0 {
		return 1
	}
	return 1 / math.Sqrt(float64(n))
}

// Instrument attaches run-scope counters from rec (accesses processed,
// histogram queries answered) to the inner profiler, which fronts both.
func (p *SampledStackProfiler) Instrument(rec *obs.Recorder) {
	p.inner.Instrument(rec)
}

var _ trace.BlockConsumer = (*SampledStackProfiler)(nil)
