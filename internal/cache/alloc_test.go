package cache

import "testing"

// cycleProfiler drives n references over a fixed working set of lines,
// enough to trigger Fenwick-position compactions when n exceeds the tree
// size.
func cycleProfiler(p *StackProfiler, n, lines int) {
	for i := 0; i < n; i++ {
		p.Access(uint64(i%lines)*8, 8, true)
	}
}

// TestCompactReusesAllocations pins down the steady-state allocation
// behavior of the profiler: after warm-up (histograms grown, workspace and
// tree sized), a window of references that includes a full compaction must
// allocate nothing. Before the reuse of the compaction workspace and the
// Fenwick tree, every compaction reallocated both — a half-megabyte of
// garbage per ~64K references.
func TestCompactReusesAllocations(t *testing.T) {
	p := MustStackProfiler(8)
	const lines = 1024
	// Warm up past several compactions so every buffer reaches its
	// steady-state size.
	cycleProfiler(p, 3*initialFenwickSize, lines)
	avg := testing.AllocsPerRun(5, func() {
		cycleProfiler(p, initialFenwickSize, lines)
	})
	if avg > 2 {
		t.Fatalf("steady-state window (with compaction) allocated %.1f times, want <= 2", avg)
	}
}

// BenchmarkStackProfilerSteadyState reports the per-reference cost and
// allocation count of the profiler at steady state, compactions included.
func BenchmarkStackProfilerSteadyState(b *testing.B) {
	p := MustStackProfiler(8)
	const lines = 1024
	cycleProfiler(p, 3*initialFenwickSize, lines)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(i%lines)*8, 8, true)
	}
}
