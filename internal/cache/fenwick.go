package cache

// fenwick is a binary indexed tree over 1-based positions, used by the
// stack-distance profiler to count, in O(log n), how many distinct lines
// have been referenced between two points in the trace.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1)}
}

// reset re-dimensions the tree to n positions, all zero, reusing the
// existing storage when it is large enough. The profiler compacts every
// ~size references at steady state; without reuse each compaction
// reallocates a half-megabyte tree.
func (f *fenwick) reset(n int) {
	if cap(f.tree) >= n+1 {
		f.tree = f.tree[:n+1]
		clear(f.tree)
		return
	}
	f.tree = make([]int, n+1)
}

// size reports the number of positions.
func (f *fenwick) size() int { return len(f.tree) - 1 }

// add adds delta at position i (1-based).
func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum over positions [1, i].
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum over positions [lo, hi], inclusive.
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
