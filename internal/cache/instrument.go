package cache

import "wsstudy/internal/obs"

// Metric names recorded by instrumented caches and profilers.
const (
	// MetricProfilerAccesses counts references processed by stack-distance
	// profilers (one per Access call).
	MetricProfilerAccesses = "cache.profiler.accesses"
	// MetricProfilerQueries counts curve/point queries answered from the
	// profiler's histograms (Curve and MissesAt).
	MetricProfilerQueries = "cache.profiler.queries"
	// MetricEvictions counts capacity-driven line replacements in the
	// concrete simulators (LRU and SetAssoc); coherence removals are
	// counted by the directory, not here.
	MetricEvictions = "cache.evictions"
)

// Instrument attaches run-scope counters from rec: accesses processed and
// histogram queries answered. A nil rec leaves the profiler uninstrumented
// (the default, zero-cost mode; the handles are nil-safe).
func (p *StackProfiler) Instrument(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	p.mAccesses = rec.Counter(MetricProfilerAccesses)
	p.mQueries = rec.Counter(MetricProfilerQueries)
}

// Instrument attaches a run-scope eviction counter from rec.
func (c *LRU) Instrument(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	c.mEvictions = rec.Counter(MetricEvictions)
}

// Instrument attaches a run-scope eviction counter from rec.
func (c *SetAssoc) Instrument(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	c.mEvictions = rec.Counter(MetricEvictions)
}

// instrumentable is satisfied by every simulator with an Instrument
// method; memsys uses it to wire whatever Cache implementation it holds.
type instrumentable interface {
	Instrument(rec *obs.Recorder)
}

// InstrumentCache attaches run-scope counters to c when its concrete type
// supports them; unknown implementations are left untouched.
func InstrumentCache(c Cache, rec *obs.Recorder) {
	if i, ok := c.(instrumentable); ok {
		i.Instrument(rec)
	}
}
