package cache

import (
	"wsstudy/internal/trace"
)

// Trace-stream adapters: the profiler and the concrete caches consume the
// kernel reference stream directly, at per-Ref or block granularity, so
// tools no longer need a trace.Func closure (and its per-reference
// indirect call) between the stream and the simulator.

// Ref feeds one reference to the profiler. The issuing PE is ignored:
// callers that want a single processor's working set wrap the profiler in
// a trace.PEFilter, as the paper's per-processor measurements do.
func (p *StackProfiler) Ref(r trace.Ref) {
	p.Access(r.Addr, r.Size, r.Kind == trace.Read)
}

// Refs feeds a block of references to the profiler in order.
func (p *StackProfiler) Refs(block []trace.Ref) {
	for i := range block {
		p.Access(block[i].Addr, block[i].Size, block[i].Kind == trace.Read)
	}
}

var _ trace.BlockConsumer = (*StackProfiler)(nil)

// Sink adapts a concrete Cache to the trace stream, splitting each
// reference into line-aligned accesses. The issuing PE is ignored — a Sink
// models one processor's cache observing a (usually PE-filtered) stream;
// multi-processor simulation with coherence belongs to memsys.System.
type Sink struct {
	c     Cache
	shift uint
}

// NewSink wraps c, whose line size must match lineSize (the Cache
// interface cannot report it; LRU and SetAssoc expose LineSize() for
// callers that want to assert). An invalid lineSize returns an error
// wrapping ErrInvalidConfig.
func NewSink(c Cache, lineSize uint32) (*Sink, error) {
	if err := validateLineSize(lineSize); err != nil {
		return nil, err
	}
	return &Sink{c: c, shift: lineShift(lineSize)}, nil
}

// Ref accesses every line the reference touches.
func (s *Sink) Ref(r trace.Ref) {
	if r.Size == 0 {
		return
	}
	s.access(r)
}

// Refs accesses every line each reference in the block touches, in order.
func (s *Sink) Refs(block []trace.Ref) {
	for i := range block {
		if block[i].Size == 0 {
			continue
		}
		s.access(block[i])
	}
}

func (s *Sink) access(r trace.Ref) {
	read := r.Kind == trace.Read
	first := r.Addr >> s.shift
	last := (r.Addr + uint64(r.Size) - 1) >> s.shift
	for line := first; ; line++ {
		s.c.Access(line<<s.shift, read)
		if line == last {
			break
		}
	}
}

var _ trace.BlockConsumer = (*Sink)(nil)
