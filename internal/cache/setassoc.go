package cache

import (
	"fmt"

	"wsstudy/internal/obs"
)

// SetAssoc is a set-associative cache with LRU replacement within each set.
// Assoc=1 gives a direct-mapped cache, which Section 6.4 of the paper uses
// to show the Barnes-Hut working set needs roughly 3x the fully associative
// capacity. A miss caused by eviction is classified as ConflictMiss when a
// same-capacity fully associative cache would have hit (approximated by the
// line still being within the last `capacity` distinct lines — we use the
// simpler and standard convention: eviction from a non-full *cache* is a
// conflict; eviction when total occupancy equals capacity is capacity).
type SetAssoc struct {
	lineSize uint32
	sets     int
	assoc    int

	ways        [][]setWay // per set, LRU-ordered slice, most recent first
	occupied    int
	seen        map[uint64]struct{}
	invalidated map[uint64]struct{}

	stats Stats

	// Run-scope capacity/conflict-eviction counter, live only after
	// Instrument.
	mEvictions *obs.Counter
}

type setWay struct {
	line  uint64
	valid bool
}

// NewSetAssoc builds a cache with the given total capacity in lines,
// associativity and line size. capacityLines must be a positive multiple of
// assoc; the set count is capacityLines/assoc and must be a power of two.
// Violations return an error wrapping ErrInvalidConfig.
func NewSetAssoc(capacityLines, assoc int, lineSize uint32) (*SetAssoc, error) {
	if capacityLines <= 0 || assoc <= 0 || capacityLines%assoc != 0 {
		return nil, fmt.Errorf("%w: SetAssoc capacity %d must be a positive multiple of associativity %d",
			ErrInvalidConfig, capacityLines, assoc)
	}
	sets := capacityLines / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("%w: SetAssoc set count %d must be a power of two", ErrInvalidConfig, sets)
	}
	if err := validateLineSize(lineSize); err != nil {
		return nil, err
	}
	ways := make([][]setWay, sets)
	for i := range ways {
		ways[i] = make([]setWay, 0, assoc)
	}
	return &SetAssoc{
		lineSize:    lineSize,
		sets:        sets,
		assoc:       assoc,
		ways:        ways,
		seen:        make(map[uint64]struct{}),
		invalidated: make(map[uint64]struct{}),
	}, nil
}

// MustSetAssoc is NewSetAssoc for statically-valid configurations; it
// panics on error.
func MustSetAssoc(capacityLines, assoc int, lineSize uint32) *SetAssoc {
	c, err := NewSetAssoc(capacityLines, assoc, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// NewDirectMapped builds a direct-mapped cache (associativity 1).
func NewDirectMapped(capacityLines int, lineSize uint32) (*SetAssoc, error) {
	return NewSetAssoc(capacityLines, 1, lineSize)
}

// MustDirectMapped is NewDirectMapped for statically-valid configurations;
// it panics on error.
func MustDirectMapped(capacityLines int, lineSize uint32) *SetAssoc {
	return MustSetAssoc(capacityLines, 1, lineSize)
}

// CapacityBytes reports the capacity in bytes.
func (c *SetAssoc) CapacityBytes() uint64 {
	return uint64(c.sets) * uint64(c.assoc) * uint64(c.lineSize)
}

// Assoc reports the associativity.
func (c *SetAssoc) Assoc() int { return c.assoc }

// LineSize reports the configured line size in bytes.
func (c *SetAssoc) LineSize() uint32 { return c.lineSize }

func (c *SetAssoc) setIndex(line uint64) int {
	return int(line & uint64(c.sets-1))
}

// Access touches the line containing addr and returns the outcome.
func (c *SetAssoc) Access(addr uint64, read bool) AccessResult {
	line := Line(addr, c.lineSize)
	res := c.touch(line)
	c.stats.Record(read, res)
	return res
}

func (c *SetAssoc) touch(line uint64) AccessResult {
	si := c.setIndex(line)
	set := c.ways[si]
	for i := range set {
		if set[i].valid && set[i].line == line {
			// Move to front (LRU position 0).
			w := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = w
			return Hit
		}
	}
	var res AccessResult
	if _, inv := c.invalidated[line]; inv {
		res = CoherenceMiss
		delete(c.invalidated, line)
	} else if _, ok := c.seen[line]; ok {
		// Evicted since last use. If the whole cache was full we call it
		// capacity; otherwise the set filled while the cache had room, a
		// pure conflict.
		if c.occupied >= c.sets*c.assoc {
			res = CapacityMiss
		} else {
			res = ConflictMiss
		}
	} else {
		res = ColdMiss
		c.seen[line] = struct{}{}
	}
	// Insert at LRU position 0, evicting the last way if the set is full.
	if len(set) < c.assoc {
		set = append(set, setWay{})
		c.occupied++
	} else {
		c.mEvictions.Inc()
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = setWay{line: line, valid: true}
	c.ways[si] = set
	return res
}

// Invalidate removes the line containing addr if resident and marks its next
// access as a coherence miss.
func (c *SetAssoc) Invalidate(addr uint64) {
	line := Line(addr, c.lineSize)
	si := c.setIndex(line)
	set := c.ways[si]
	for i := range set {
		if set[i].valid && set[i].line == line {
			copy(set[i:], set[i+1:])
			set = set[:len(set)-1]
			c.ways[si] = set
			c.occupied--
			break
		}
	}
	if _, ok := c.seen[line]; ok {
		c.invalidated[line] = struct{}{}
	}
}

// Stats returns the accumulated statistics.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats clears counters, keeping contents (cold-start exclusion).
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

var _ Cache = (*SetAssoc)(nil)
