package cache

// Infinite is an unbounded cache: its only misses are cold misses and
// coherence misses. The paper uses infinite caches to isolate the inherent
// communication miss rate, the asymptote every working-set curve flattens to.
type Infinite struct {
	lineSize    uint32
	resident    map[uint64]struct{}
	invalidated map[uint64]struct{}
	stats       Stats
}

// NewInfinite builds an infinite cache with the given line size.
func NewInfinite(lineSize uint32) *Infinite {
	lineShift(lineSize)
	return &Infinite{
		lineSize:    lineSize,
		resident:    make(map[uint64]struct{}),
		invalidated: make(map[uint64]struct{}),
	}
}

// Access touches the line containing addr.
func (c *Infinite) Access(addr uint64, read bool) AccessResult {
	line := Line(addr, c.lineSize)
	var res AccessResult
	if _, ok := c.resident[line]; ok {
		res = Hit
	} else if _, inv := c.invalidated[line]; inv {
		res = CoherenceMiss
		delete(c.invalidated, line)
	} else {
		res = ColdMiss
	}
	c.resident[line] = struct{}{}
	c.stats.Record(read, res)
	return res
}

// Invalidate removes the line containing addr.
func (c *Infinite) Invalidate(addr uint64) {
	line := Line(addr, c.lineSize)
	if _, ok := c.resident[line]; ok {
		delete(c.resident, line)
		c.invalidated[line] = struct{}{}
	}
}

// Stats returns the accumulated statistics.
func (c *Infinite) Stats() Stats { return c.stats }

// ResetStats clears counters, keeping contents.
func (c *Infinite) ResetStats() { c.stats = Stats{} }

var _ Cache = (*Infinite)(nil)
