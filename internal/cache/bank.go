package cache

import "fmt"

// Bank runs one exact LRU simulation per candidate capacity, sharing a
// single access stream. It is the slow-but-exact counterpart of
// StackProfiler: under coherence invalidations LRU caches of different
// sizes fill freed slots at different times, which breaks the single-valued
// stack-distance property (no one-pass algorithm can be exact), so
// experiments that need exact per-size miss counts in the presence of
// communication use a Bank. Without invalidations the two agree bit-exactly;
// the ablation benchmark quantifies the cost difference.
type Bank struct {
	caches []*LRU
}

// NewBank builds LRU caches at each capacity (in lines), which must be
// positive and sorted strictly ascending. Violations return an error
// wrapping ErrInvalidConfig.
func NewBank(capacitiesLines []int, lineSize uint32) (*Bank, error) {
	if len(capacitiesLines) == 0 {
		return nil, fmt.Errorf("%w: Bank needs at least one capacity", ErrInvalidConfig)
	}
	if err := validateLineSize(lineSize); err != nil {
		return nil, err
	}
	b := &Bank{caches: make([]*LRU, len(capacitiesLines))}
	prev := 0
	for i, c := range capacitiesLines {
		if c <= prev {
			return nil, fmt.Errorf("%w: Bank capacities must be positive and strictly ascending (got %v)",
				ErrInvalidConfig, capacitiesLines)
		}
		prev = c
		b.caches[i] = MustLRU(c, lineSize)
	}
	return b, nil
}

// MustBank is NewBank for statically-valid configurations; it panics on
// error.
func MustBank(capacitiesLines []int, lineSize uint32) *Bank {
	b, err := NewBank(capacitiesLines, lineSize)
	if err != nil {
		panic(err)
	}
	return b
}

// Access touches the byte range in every member cache.
func (b *Bank) Access(addr uint64, size uint32, read bool) {
	if size == 0 {
		return
	}
	ls := b.caches[0].LineSize()
	first := Line(addr, ls)
	last := Line(addr+uint64(size)-1, ls)
	for line := first; ; line++ {
		a := line << lineShift(ls)
		for _, c := range b.caches {
			c.Access(a, read)
		}
		if line == last {
			break
		}
	}
}

// Invalidate removes the line containing addr from every member cache.
func (b *Bank) Invalidate(addr uint64) {
	for _, c := range b.caches {
		c.Invalidate(addr)
	}
}

// SetMeasuring implements cold-start exclusion: turning measurement on
// resets all counters while keeping contents.
func (b *Bank) SetMeasuring(on bool) {
	if on {
		for _, c := range b.caches {
			c.ResetStats()
		}
	}
}

// Curve reports the exact miss counts at every member capacity.
func (b *Bank) Curve() []MissCount {
	out := make([]MissCount, len(b.caches))
	for i, c := range b.caches {
		s := c.Stats()
		out[i] = MissCount{
			CapacityLines: int(c.CapacityBytes() / uint64(c.LineSize())),
			ReadMisses:    s.ReadMisses,
			WriteMisses:   s.WriteMisses,
		}
	}
	return out
}

// Stats returns the statistics of the cache at index i.
func (b *Bank) Stats(i int) Stats { return b.caches[i].Stats() }

// Capacities reports the member capacities in lines.
func (b *Bank) Capacities() []int {
	out := make([]int, len(b.caches))
	for i, c := range b.caches {
		out[i] = int(c.CapacityBytes() / uint64(c.LineSize()))
	}
	return out
}
