package cache

import (
	"slices"
	"sort"

	"wsstudy/internal/obs"
)

// StackProfiler computes, in a single pass over a reference stream, the
// exact miss counts a fully associative LRU cache of *every* capacity would
// incur (Mattson's stack algorithm). The paper sweeps cache sizes to find
// working-set knees; with the profiler, one kernel run yields the entire
// miss-rate-versus-cache-size curve.
//
// For each access, the profiler computes the reuse (stack) distance: the
// number of stack positions above and including the line's previous access.
// An LRU cache of capacity C lines hits exactly when the distance is at most
// C. Distances are answered in O(log n) with a Fenwick tree over trace
// positions.
//
// Coherence: Invalidate turns the line's stack position into a *hole*. The
// hole still occupies a position, and the next miss-insertion consumes the
// shallowest hole, mirroring the freed slot being filled without an
// eviction. The invalidated line's next access is a miss at every capacity
// (the paper's inherent communication misses) and is recorded separately
// from the distance histogram.
//
// Exactness: without invalidations the profiler matches per-size LRU
// simulation bit-exactly (Mattson's theorem; the tests assert it). With
// invalidations, caches of different sizes fill freed slots at different
// times, so no single-pass stack algorithm can be exact; the hole model
// above can overstate the stack depth of lines that sit below a hole a
// small cache has already refilled. The error is bounded by the number of
// invalidations and is negligible at the communication rates of the paper's
// applications (0.1%-2%). Experiments needing exactness under heavy
// coherence traffic use Bank, the per-size simulation.
//
// Cold-start exclusion: references made before StartMeasuring update the
// LRU state but are not counted, mirroring the paper's practice of omitting
// the first iterations of iterative applications.
type StackProfiler struct {
	lineSize uint32

	lastPos     map[uint64]int // line -> fenwick position of latest access
	invalidated map[uint64]struct{}
	holes       []int // positions of invalidation holes, sorted ascending
	fen         *fenwick
	clock       int        // last used fenwick position
	scratch     []stackEnt // compaction workspace, reused across compactions

	measuring bool

	histRead            []uint64 // histRead[d] = read accesses at stack distance d
	histWrite           []uint64
	coldRead, coldWrite uint64
	cohRead, cohWrite   uint64
	reads, writes       uint64

	// Run-scope counters, live only after Instrument (see instrument.go).
	mAccesses *obs.Counter
	mQueries  *obs.Counter
}

const initialFenwickSize = 1 << 16

// NewStackProfiler builds a profiler for the given line size (which must be
// a power of two; violations return an error wrapping ErrInvalidConfig).
// Measurement starts enabled; call SetMeasuring(false) first to warm up.
func NewStackProfiler(lineSize uint32) (*StackProfiler, error) {
	if err := validateLineSize(lineSize); err != nil {
		return nil, err
	}
	return &StackProfiler{
		lineSize:    lineSize,
		lastPos:     make(map[uint64]int),
		invalidated: make(map[uint64]struct{}),
		fen:         newFenwick(initialFenwickSize),
		measuring:   true,
		histRead:    make([]uint64, 1),
		histWrite:   make([]uint64, 1),
	}, nil
}

// MustStackProfiler is NewStackProfiler for statically-valid line sizes; it
// panics on error.
func MustStackProfiler(lineSize uint32) *StackProfiler {
	p, err := NewStackProfiler(lineSize)
	if err != nil {
		panic(err)
	}
	return p
}

// LineSize reports the configured line size in bytes.
func (p *StackProfiler) LineSize() uint32 { return p.lineSize }

// SetMeasuring toggles statistics collection. State updates always happen.
func (p *StackProfiler) SetMeasuring(on bool) { p.measuring = on }

// Measuring reports whether statistics are being collected.
func (p *StackProfiler) Measuring() bool { return p.measuring }

// Access processes a reference to the byte range [addr, addr+size) and
// updates the distance histograms. Multi-line references touch each line.
func (p *StackProfiler) Access(addr uint64, size uint32, read bool) {
	if size == 0 {
		return
	}
	p.mAccesses.Inc()
	first := Line(addr, p.lineSize)
	last := Line(addr+uint64(size)-1, p.lineSize)
	for line := first; ; line++ {
		p.touch(line, read)
		if line == last {
			break
		}
	}
}

func (p *StackProfiler) touch(line uint64, read bool) {
	if p.measuring {
		if read {
			p.reads++
		} else {
			p.writes++
		}
	}
	pos, resident := p.lastPos[line]
	if resident {
		// Distance counts every occupied position (lines and holes) from
		// the line's slot to the top of the stack, inclusive.
		d := p.fen.rangeSum(pos+1, p.clock) + 1
		if p.measuring {
			p.recordDistance(d, read)
		}
		p.fen.add(pos, -1)
	} else {
		// Miss at every capacity: classify, then fill the shallowest hole
		// (the free slot every affected cache has).
		if p.measuring {
			if _, inv := p.invalidated[line]; inv {
				if read {
					p.cohRead++
				} else {
					p.cohWrite++
				}
			} else if read {
				p.coldRead++
			} else {
				p.coldWrite++
			}
		}
		delete(p.invalidated, line)
		p.consumeHole()
	}
	p.advance(line)
}

// consumeHole removes the most recent (highest-position, shallowest) hole.
func (p *StackProfiler) consumeHole() {
	n := len(p.holes)
	if n == 0 {
		return
	}
	pos := p.holes[n-1]
	p.holes = p.holes[:n-1]
	p.fen.add(pos, -1)
}

// advance assigns the next fenwick position to line, compacting when full.
func (p *StackProfiler) advance(line uint64) {
	if p.clock >= p.fen.size() {
		p.compact()
	}
	p.clock++
	p.lastPos[line] = p.clock
	p.fen.add(p.clock, 1)
}

// stackEnt is one surviving stack position (a line or a hole) during
// compaction.
type stackEnt struct {
	line uint64
	pos  int
	hole bool
}

// compact renumbers the surviving positions 1..k (lines and holes),
// preserving order, and resizes the tree so position space never exhausts.
// The workspace slice and the Fenwick tree are reused across compactions —
// at steady state a compaction runs every ~tree-size references, and
// reallocating both each time made the allocator a measurable fraction of
// profiling (an AllocsPerRun test pins the reuse down).
func (p *StackProfiler) compact() {
	alive := p.scratch[:0]
	for line, pos := range p.lastPos {
		alive = append(alive, stackEnt{line: line, pos: pos})
	}
	for _, pos := range p.holes {
		alive = append(alive, stackEnt{pos: pos, hole: true})
	}
	slices.SortFunc(alive, func(a, b stackEnt) int { return a.pos - b.pos })
	size := initialFenwickSize
	for size < 2*len(alive)+2 {
		size *= 2
	}
	p.fen.reset(size)
	p.holes = p.holes[:0]
	for i, e := range alive {
		if e.hole {
			p.holes = append(p.holes, i+1)
		} else {
			p.lastPos[e.line] = i + 1
		}
		p.fen.add(i+1, 1)
	}
	sort.Ints(p.holes)
	p.clock = len(alive)
	p.scratch = alive[:0]
}

func (p *StackProfiler) recordDistance(d int, read bool) {
	h := &p.histRead
	if !read {
		h = &p.histWrite
	}
	for d >= len(*h) {
		*h = append(*h, make([]uint64, len(*h)+1)...)
	}
	(*h)[d]++
}

// Invalidate turns the line's stack position into a hole; its next access
// is a coherence miss at every capacity.
func (p *StackProfiler) Invalidate(addr uint64) {
	line := Line(addr, p.lineSize)
	pos, ok := p.lastPos[line]
	if !ok {
		return
	}
	delete(p.lastPos, line)
	p.invalidated[line] = struct{}{}
	// Record the hole, keeping the slice sorted (holes are usually few).
	i := sort.SearchInts(p.holes, pos)
	p.holes = append(p.holes, 0)
	copy(p.holes[i+1:], p.holes[i:])
	p.holes[i] = pos
}

// DistinctLines reports how many distinct lines are currently on the stack.
func (p *StackProfiler) DistinctLines() int { return len(p.lastPos) }

// Reads reports measured read accesses.
func (p *StackProfiler) Reads() uint64 { return p.reads }

// Writes reports measured write accesses.
func (p *StackProfiler) Writes() uint64 { return p.writes }

// Accesses reports measured reads plus writes.
func (p *StackProfiler) Accesses() uint64 { return p.reads + p.writes }

// ColdMisses reports measured cold misses (read, write).
func (p *StackProfiler) ColdMisses() (read, write uint64) {
	return p.coldRead, p.coldWrite
}

// CoherenceMisses reports measured coherence misses (read, write).
func (p *StackProfiler) CoherenceMisses() (read, write uint64) {
	return p.cohRead, p.cohWrite
}

// MissCount holds the misses a given capacity would incur.
type MissCount struct {
	CapacityLines int
	ReadMisses    uint64
	WriteMisses   uint64
}

// Misses reports total misses.
func (m MissCount) Misses() uint64 { return m.ReadMisses + m.WriteMisses }

// MissesAt returns the exact miss counts for a fully associative LRU cache
// of the given capacity in lines. Capacity 0 means every access misses.
func (p *StackProfiler) MissesAt(capacityLines int) MissCount {
	p.mQueries.Inc()
	mc := MissCount{CapacityLines: capacityLines}
	mc.ReadMisses = p.coldRead + p.cohRead + tailSum(p.histRead, capacityLines+1)
	mc.WriteMisses = p.coldWrite + p.cohWrite + tailSum(p.histWrite, capacityLines+1)
	return mc
}

func tailSum(h []uint64, from int) uint64 {
	var s uint64
	if from < 1 {
		from = 1
	}
	for d := from; d < len(h); d++ {
		s += h[d]
	}
	return s
}

// Curve returns miss counts for each capacity, computed in one sweep over
// the histograms. Unsorted capacities are sorted into a copy first, so the
// result is always ascending by capacity.
func (p *StackProfiler) Curve(capacitiesLines []int) []MissCount {
	p.mQueries.Add(uint64(len(capacitiesLines)))
	if !sort.IntsAreSorted(capacitiesLines) {
		sorted := make([]int, len(capacitiesLines))
		copy(sorted, capacitiesLines)
		sort.Ints(sorted)
		capacitiesLines = sorted
	}
	out := make([]MissCount, len(capacitiesLines))
	maxD := len(p.histRead)
	if len(p.histWrite) > maxD {
		maxD = len(p.histWrite)
	}
	// Suffix sums make each capacity O(1).
	sufR := suffixSums(p.histRead, maxD)
	sufW := suffixSums(p.histWrite, maxD)
	for i, c := range capacitiesLines {
		mc := MissCount{CapacityLines: c}
		mc.ReadMisses = p.coldRead + p.cohRead + at(sufR, c+1)
		mc.WriteMisses = p.coldWrite + p.cohWrite + at(sufW, c+1)
		out[i] = mc
	}
	return out
}

// suffixSums returns s where s[d] = sum of h[d:], sized maxD+1.
func suffixSums(h []uint64, maxD int) []uint64 {
	s := make([]uint64, maxD+1)
	for d := maxD - 1; d >= 1; d-- {
		v := uint64(0)
		if d < len(h) {
			v = h[d]
		}
		s[d] = s[d+1] + v
	}
	return s
}

func at(suf []uint64, d int) uint64 {
	if d >= len(suf) {
		return 0
	}
	if d < 1 {
		d = 1
	}
	return suf[d]
}
