package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wsstudy/internal/spsc"
)

// ParallelBank is a Bank whose member LRUs are driven by a sharded worker
// pool instead of being walked serially inside every Access. The members
// are fully independent — a sweep of K capacities is embarrassingly
// parallel — so the producer records each touch once into a pooled op
// block and publishes it to every shard's spsc.Ring; each shard replays
// the block into the member caches it owns, member-major for locality.
//
// Every member observes exactly the op sequence the serial Bank would
// have applied to it, in the same order, so the statistics are
// bit-identical to Bank's (the equivalence suite proves this across all
// five kernels). Reads of results (Curve, Stats) drain the pipeline
// first; Close is the final barrier and must be called before the bank is
// discarded so the shard goroutines exit.
//
// The producer side (Access, Invalidate, SetMeasuring, Curve, Stats,
// Close) must be called from a single goroutine.
type ParallelBank struct {
	caches []*LRU
	shards []*bankShard
	wg     sync.WaitGroup
	cur    *bankOps
	closed bool
}

// bankShard is one worker: a ring plus the member caches it owns.
type bankShard struct {
	ring    *spsc.Ring[*bankOps]
	members []*LRU
}

// bankOp is one recorded operation, already expanded to a line address.
type bankOp struct {
	addr uint64
	kind uint8
}

const (
	bankRead uint8 = iota
	bankWrite
	bankInvalidate
	bankReset
)

// bankOps is a pooled block of operations shared by all shards; the last
// shard to finish releases it and closes the attached barrier, if any.
type bankOps struct {
	ops  []bankOp
	rc   atomic.Int32
	done chan struct{} // non-nil on a drain barrier block
}

const (
	// bankOpsCap is the op-block size: 16 bytes per op makes a block
	// 32 KB, enough that one ring publish per block amortizes to noise
	// against replaying the block into several exact LRUs.
	bankOpsCap = 2048
	// bankRingCap bounds in-flight blocks per shard.
	bankRingCap = 16
)

var bankOpsPool = sync.Pool{
	New: func() any { return &bankOps{ops: make([]bankOp, 0, bankOpsCap)} },
}

func (b *bankOps) release() {
	if b.rc.Add(-1) == 0 {
		done := b.done
		b.done = nil
		b.ops = b.ops[:0]
		bankOpsPool.Put(b)
		if done != nil {
			close(done)
		}
	}
}

// NewParallelBank builds LRU caches at each capacity (in lines, positive
// and strictly ascending) and starts the shard workers. workers bounds
// the shard count; zero or negative means min(GOMAXPROCS, number of
// capacities). Member i is pinned to shard i mod W, so the shards'
// aggregate capacities stay balanced even though larger members cost
// more per access.
func NewParallelBank(capacitiesLines []int, lineSize uint32, workers int) (*ParallelBank, error) {
	serial, err := NewBank(capacitiesLines, lineSize)
	if err != nil {
		return nil, err
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(serial.caches) {
		w = len(serial.caches)
	}
	pb := &ParallelBank{
		caches: serial.caches,
		shards: make([]*bankShard, w),
	}
	for i := range pb.shards {
		r, err := spsc.New[*bankOps](bankRingCap)
		if err != nil {
			return nil, fmt.Errorf("%w: parallel bank ring: %v", ErrInvalidConfig, err)
		}
		pb.shards[i] = &bankShard{ring: r}
	}
	for i, c := range pb.caches {
		sh := pb.shards[i%w]
		sh.members = append(sh.members, c)
	}
	for _, sh := range pb.shards {
		pb.wg.Add(1)
		go pb.run(sh)
	}
	return pb, nil
}

// MustParallelBank is NewParallelBank for statically-valid configurations;
// it panics on error.
func MustParallelBank(capacitiesLines []int, lineSize uint32, workers int) *ParallelBank {
	pb, err := NewParallelBank(capacitiesLines, lineSize, workers)
	if err != nil {
		panic(err)
	}
	return pb
}

// run replays published op blocks into this shard's members, member-major
// within each drained batch so each LRU's intrusive list stays cache-hot
// across a full block of operations.
func (pb *ParallelBank) run(sh *bankShard) {
	defer pb.wg.Done()
	batch := make([]*bankOps, sh.ring.Cap())
	for {
		n, open := sh.ring.Recv(batch)
		for _, c := range sh.members {
			for _, blk := range batch[:n] {
				for _, op := range blk.ops {
					switch op.kind {
					case bankRead:
						c.Access(op.addr, true)
					case bankWrite:
						c.Access(op.addr, false)
					case bankInvalidate:
						c.Invalidate(op.addr)
					case bankReset:
						c.ResetStats()
					}
				}
			}
		}
		for _, blk := range batch[:n] {
			blk.release()
		}
		if !open {
			return
		}
	}
}

// record appends one op, publishing the block when it fills.
func (pb *ParallelBank) record(op bankOp) {
	if pb.closed {
		return
	}
	if pb.cur == nil {
		pb.cur = bankOpsPool.Get().(*bankOps)
	}
	pb.cur.ops = append(pb.cur.ops, op)
	if len(pb.cur.ops) == cap(pb.cur.ops) {
		pb.publish(nil)
	}
}

// publish hands the current block (plus an optional barrier) to every
// shard.
func (pb *ParallelBank) publish(done chan struct{}) {
	blk := pb.cur
	pb.cur = nil
	if blk == nil {
		if done == nil {
			return
		}
		blk = bankOpsPool.Get().(*bankOps)
	}
	blk.done = done
	blk.rc.Store(int32(len(pb.shards)))
	one := [1]*bankOps{blk}
	for _, sh := range pb.shards {
		sh.ring.Send(one[:])
	}
}

// drain publishes everything pending plus a barrier block and waits until
// every shard has fully processed it, making member stats safe to read.
func (pb *ParallelBank) drain() {
	if pb.closed {
		return
	}
	done := make(chan struct{})
	pb.publish(done)
	<-done
}

// Access records a touch of the byte range for every member cache.
func (pb *ParallelBank) Access(addr uint64, size uint32, read bool) {
	if size == 0 {
		return
	}
	kind := bankWrite
	if read {
		kind = bankRead
	}
	ls := pb.caches[0].LineSize()
	first := Line(addr, ls)
	last := Line(addr+uint64(size)-1, ls)
	for line := first; ; line++ {
		pb.record(bankOp{addr: line << lineShift(ls), kind: kind})
		if line == last {
			break
		}
	}
}

// Invalidate removes the line containing addr from every member cache.
func (pb *ParallelBank) Invalidate(addr uint64) {
	pb.record(bankOp{addr: addr, kind: bankInvalidate})
}

// SetMeasuring implements cold-start exclusion: turning measurement on
// resets all counters (in stream order) while keeping contents.
func (pb *ParallelBank) SetMeasuring(on bool) {
	if on {
		pb.record(bankOp{kind: bankReset})
	}
}

// Curve drains the pipeline and reports the exact miss counts at every
// member capacity.
func (pb *ParallelBank) Curve() []MissCount {
	pb.drain()
	out := make([]MissCount, len(pb.caches))
	for i, c := range pb.caches {
		s := c.Stats()
		out[i] = MissCount{
			CapacityLines: int(c.CapacityBytes() / uint64(c.LineSize())),
			ReadMisses:    s.ReadMisses,
			WriteMisses:   s.WriteMisses,
		}
	}
	return out
}

// Stats drains the pipeline and returns the statistics of the cache at
// index i.
func (pb *ParallelBank) Stats(i int) Stats {
	pb.drain()
	return pb.caches[i].Stats()
}

// Capacities reports the member capacities in lines.
func (pb *ParallelBank) Capacities() []int {
	out := make([]int, len(pb.caches))
	for i, c := range pb.caches {
		out[i] = int(c.CapacityBytes() / uint64(c.LineSize()))
	}
	return out
}

// Close drains the pipeline and stops the shard workers. It is
// idempotent; ops recorded after Close are dropped.
func (pb *ParallelBank) Close() {
	if pb.closed {
		return
	}
	pb.drain()
	pb.closed = true
	for _, sh := range pb.shards {
		sh.ring.Close()
	}
	pb.wg.Wait()
}
