package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refLRU is an intentionally naive reference implementation of a fully
// associative LRU cache (slice scan), used as the oracle for the
// production implementation.
type refLRU struct {
	cap   int
	order []uint64 // most recent first
	seen  map[uint64]bool
	inval map[uint64]bool
}

func newRefLRU(capacity int) *refLRU {
	return &refLRU{cap: capacity, seen: map[uint64]bool{}, inval: map[uint64]bool{}}
}

func (r *refLRU) access(line uint64) AccessResult {
	for i, l := range r.order {
		if l == line {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = line
			return Hit
		}
	}
	var res AccessResult
	switch {
	case r.inval[line]:
		res = CoherenceMiss
		delete(r.inval, line)
	case r.seen[line]:
		res = CapacityMiss
	default:
		res = ColdMiss
		r.seen[line] = true
	}
	r.order = append([]uint64{line}, r.order...)
	if len(r.order) > r.cap {
		r.order = r.order[:r.cap]
	}
	return res
}

func (r *refLRU) invalidate(line uint64) {
	for i, l := range r.order {
		if l == line {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if r.seen[line] {
		r.inval[line] = true
	}
}

// TestLRUMatchesReference drives random operation sequences through the
// production LRU and the naive oracle; every access outcome must agree.
func TestLRUMatchesReference(t *testing.T) {
	check := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		lru := MustLRU(capacity, 8)
		ref := newRefLRU(capacity)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 500; op++ {
			line := uint64(rng.Intn(40))
			if rng.Intn(6) == 0 {
				lru.Invalidate(line * 8)
				ref.invalidate(line)
				continue
			}
			got := lru.Access(line*8, true)
			want := ref.access(line)
			if got != want {
				t.Logf("seed %d cap %d op %d line %d: got %v want %v",
					seed, capacity, op, line, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProfilerInclusionProperty: for any trace without invalidations, the
// miss count must be non-increasing in capacity and the histogram totals
// must account for every access.
func TestProfilerInclusionProperty(t *testing.T) {
	check := func(seed int64, spanRaw uint8) bool {
		span := int(spanRaw%100) + 2
		p := MustStackProfiler(8)
		rng := rand.New(rand.NewSource(seed))
		const refs = 2000
		for i := 0; i < refs; i++ {
			p.Access(uint64(rng.Intn(span))*8, 8, rng.Intn(2) == 0)
		}
		if p.Accesses() != refs {
			return false
		}
		prev := uint64(refs + 1)
		for c := 1; c <= span+2; c++ {
			m := p.MissesAt(c).Misses()
			if m > prev {
				return false
			}
			prev = m
		}
		// At capacity >= distinct lines, only cold misses remain.
		cr, cw := p.ColdMisses()
		if p.MissesAt(span+1).Misses() != cr+cw {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleSetEqualsLRUProperty: a SetAssoc whose associativity equals
// its capacity has one set and must behave exactly like the fully
// associative LRU on any trace, including invalidations. (Note that a
// partitioned cache can legitimately *beat* fully associative LRU on
// adversarial traces — LRU is pathological on cyclic scans — so no
// domination property holds between the two in general.)
func TestSingleSetEqualsLRUProperty(t *testing.T) {
	check := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		sa := MustSetAssoc(capacity, capacity, 8)
		fa := MustLRU(capacity, 8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			addr := uint64(rng.Intn(48)) * 8
			if rng.Intn(8) == 0 {
				sa.Invalidate(addr)
				fa.Invalidate(addr)
				continue
			}
			read := rng.Intn(2) == 0
			if sa.Access(addr, read).Miss() != fa.Access(addr, read).Miss() {
				return false
			}
		}
		saStats, faStats := sa.Stats(), fa.Stats()
		return saStats.Misses() == faStats.Misses()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBankAgreesWithProfilerProperty: randomized version of the
// exactness theorem.
func TestBankAgreesWithProfilerProperty(t *testing.T) {
	check := func(seed int64) bool {
		caps := []int{1, 3, 7, 20}
		prof := MustStackProfiler(8)
		bank := MustBank(caps, 8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(50)) * 8
			read := rng.Intn(2) == 0
			prof.Access(addr, 8, read)
			bank.Access(addr, 8, read)
		}
		want := bank.Curve()
		got := prof.Curve(caps)
		for i := range caps {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
