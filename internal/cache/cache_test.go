package cache

import (
	"errors"
	"math/rand"
	"testing"
)

func TestLineComputation(t *testing.T) {
	cases := []struct {
		addr     uint64
		lineSize uint32
		want     uint64
	}{
		{0, 8, 0},
		{7, 8, 0},
		{8, 8, 1},
		{63, 64, 0},
		{64, 64, 1},
		{1000, 8, 125},
	}
	for _, c := range cases {
		if got := Line(c.addr, c.lineSize); got != c.want {
			t.Errorf("Line(%d,%d) = %d, want %d", c.addr, c.lineSize, got, c.want)
		}
	}
}

func TestLineSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two line size")
		}
	}()
	Line(0, 24)
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr       uint64
		size, line uint32
		want       int
	}{
		{0, 8, 8, 1},
		{0, 9, 8, 2},
		{4, 8, 8, 2},
		{0, 0, 8, 0},
		{0, 64, 64, 1},
		{63, 2, 64, 2},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.addr, c.size, c.line); got != c.want {
			t.Errorf("LinesSpanned(%d,%d,%d) = %d, want %d", c.addr, c.size, c.line, got, c.want)
		}
	}
}

func TestAccessResultString(t *testing.T) {
	for res, want := range map[AccessResult]string{
		Hit: "hit", ColdMiss: "cold", CapacityMiss: "capacity",
		CoherenceMiss: "coherence", ConflictMiss: "conflict",
	} {
		if res.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(res), res.String(), want)
		}
	}
	if Hit.Miss() {
		t.Error("Hit.Miss() = true")
	}
	if !ColdMiss.Miss() {
		t.Error("ColdMiss.Miss() = false")
	}
}

func TestLRUBasicHitMiss(t *testing.T) {
	c := MustLRU(2, 8)
	if res := c.Access(0, true); res != ColdMiss {
		t.Fatalf("first access: got %v, want cold", res)
	}
	if res := c.Access(0, true); res != Hit {
		t.Fatalf("re-access: got %v, want hit", res)
	}
	if res := c.Access(8, true); res != ColdMiss {
		t.Fatalf("new line: got %v, want cold", res)
	}
	// Capacity 2: accessing a third line evicts LRU line 0... but line 0
	// was most recently... order: 0 (hit), 8 -> stack [8,0]. Access 16
	// evicts 0.
	if res := c.Access(16, true); res != ColdMiss {
		t.Fatalf("third line: got %v, want cold", res)
	}
	if res := c.Access(0, true); res != CapacityMiss {
		t.Fatalf("evicted line: got %v, want capacity", res)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := MustLRU(3, 8)
	for _, a := range []uint64{0, 8, 16} {
		c.Access(a, true)
	}
	c.Access(0, true) // refresh 0; LRU order now [0,16,8]
	c.Access(24, true)
	if c.Contains(8) {
		t.Error("line 8 should have been evicted (LRU)")
	}
	for _, a := range []uint64{0, 16, 24} {
		if !c.Contains(a) {
			t.Errorf("line at %d should be resident", a)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := MustLRU(4, 8)
	c.Access(0, true)
	c.Invalidate(0)
	if c.Contains(0) {
		t.Fatal("line should be gone after invalidation")
	}
	if res := c.Access(0, true); res != CoherenceMiss {
		t.Fatalf("post-invalidation access: got %v, want coherence", res)
	}
	// Invalidating a never-seen line should not fabricate coherence misses.
	c.Invalidate(800)
	if res := c.Access(800, true); res != ColdMiss {
		t.Fatalf("fresh line after stray invalidate: got %v, want cold", res)
	}
}

func TestLRUStatsAndReset(t *testing.T) {
	c := MustLRU(2, 8)
	c.Access(0, true)
	c.Access(0, false)
	c.Access(8, true)
	s := c.Stats()
	if s.Accesses != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ReadMisses != 2 || s.WriteMisses != 0 || s.Cold != 2 {
		t.Fatalf("miss stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if !c.Contains(0) {
		t.Fatal("ResetStats must keep contents")
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.ReadMissRate() != 0 {
		t.Fatal("empty stats should have zero rates")
	}
	s.Record(true, ColdMiss)
	s.Record(true, Hit)
	s.Record(false, CapacityMiss)
	if got := s.ReadMissRate(); got != 0.5 {
		t.Errorf("ReadMissRate = %v, want 0.5", got)
	}
	if got := s.MissRate(); got != 2.0/3.0 {
		t.Errorf("MissRate = %v, want 2/3", got)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Accesses != 6 || sum.Misses() != 4 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestSetAssocDirectMappedConflicts(t *testing.T) {
	// Direct-mapped, 4 lines: addresses 0 and 4*8=32 map to set 0 with
	// line size 8 (lines 0 and 4; 4 mod 4 = 0).
	c := MustDirectMapped(4, 8)
	c.Access(0, true)
	if res := c.Access(32, true); res != ColdMiss {
		t.Fatalf("got %v, want cold", res)
	}
	if res := c.Access(0, true); res != ConflictMiss {
		t.Fatalf("conflicting line: got %v, want conflict", res)
	}
}

func TestSetAssocAssociativityAvoidsConflict(t *testing.T) {
	// 2-way, 4 lines total (2 sets): lines 0 and 2 share set 0 but fit.
	c := MustSetAssoc(4, 2, 8)
	c.Access(0, true)
	c.Access(16, true) // line 2, same set
	if res := c.Access(0, true); res != Hit {
		t.Fatalf("2-way should retain both: got %v", res)
	}
	// A third line in the same set evicts the LRU member (line 2).
	c.Access(32, true) // line 4, set 0
	if res := c.Access(16, true); res == Hit {
		t.Fatal("line 2 should have been evicted from the set")
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := MustSetAssoc(4, 2, 8)
	c.Access(0, true)
	c.Invalidate(0)
	if res := c.Access(0, true); res != CoherenceMiss {
		t.Fatalf("got %v, want coherence", res)
	}
}

func TestSetAssocFullyAssociativeMatchesLRU(t *testing.T) {
	// A SetAssoc with one set IS a fully associative LRU cache; their miss
	// counts must agree on a random trace.
	const capLines = 16
	sa := MustSetAssoc(capLines, capLines, 8)
	lru := MustLRU(capLines, 8)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(64)) * 8
		read := rng.Intn(4) != 0
		r1 := sa.Access(addr, read)
		r2 := lru.Access(addr, read)
		if r1.Miss() != r2.Miss() {
			t.Fatalf("ref %d addr %d: setassoc %v vs lru %v", i, addr, r1, r2)
		}
	}
	saStats, lruStats := sa.Stats(), lru.Stats()
	if saStats.Misses() != lruStats.Misses() {
		t.Fatalf("miss totals differ: %d vs %d", saStats.Misses(), lruStats.Misses())
	}
}

func TestInfiniteCacheOnlyColdAndCoherence(t *testing.T) {
	c := NewInfinite(8)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*8, true)
	}
	for i := 0; i < 100; i++ {
		if res := c.Access(uint64(i)*8, true); res != Hit {
			t.Fatalf("infinite cache missed on re-access: %v", res)
		}
	}
	c.Invalidate(0)
	if res := c.Access(0, true); res != CoherenceMiss {
		t.Fatalf("got %v, want coherence", res)
	}
	s := c.Stats()
	if s.Capacity != 0 || s.Conflict != 0 {
		t.Fatalf("infinite cache reported capacity/conflict misses: %+v", s)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(16)
	f.add(3, 1)
	f.add(7, 1)
	f.add(12, 1)
	if got := f.prefix(16); got != 3 {
		t.Errorf("prefix(16) = %d, want 3", got)
	}
	if got := f.rangeSum(4, 12); got != 2 {
		t.Errorf("rangeSum(4,12) = %d, want 2", got)
	}
	if got := f.rangeSum(8, 3); got != 0 {
		t.Errorf("inverted range = %d, want 0", got)
	}
	f.add(7, -1)
	if got := f.rangeSum(1, 16); got != 2 {
		t.Errorf("after removal = %d, want 2", got)
	}
}

// TestStackProfilerMatchesLRU is the load-bearing correctness property:
// without invalidations, Mattson's theorem says the single-pass profiler
// must report exactly the miss counts of independent LRU simulations at
// every capacity, on an adversarially random trace.
func TestStackProfilerMatchesLRU(t *testing.T) {
	capacities := []int{1, 2, 3, 5, 8, 13, 21, 34, 55}
	p := MustStackProfiler(8)
	lrus := make([]*LRU, len(capacities))
	for i, c := range capacities {
		lrus[i] = MustLRU(c, 8)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(100)) * 8
		read := rng.Intn(3) != 0
		p.Access(addr, 8, read)
		for _, c := range lrus {
			c.Access(addr, read)
		}
	}
	curve := p.Curve(capacities)
	for i, c := range capacities {
		want := lrus[i].Stats()
		got := curve[i]
		if got.ReadMisses != want.ReadMisses || got.WriteMisses != want.WriteMisses {
			t.Errorf("capacity %d: profiler (r=%d,w=%d) vs LRU (r=%d,w=%d)",
				c, got.ReadMisses, got.WriteMisses, want.ReadMisses, want.WriteMisses)
		}
		single := p.MissesAt(c)
		if single != got {
			t.Errorf("capacity %d: MissesAt disagrees with Curve: %+v vs %+v", c, single, got)
		}
	}
}

// TestStackProfilerInvalidationBound checks the documented approximation
// property: with invalidations, the profiler's miss count at each capacity
// stays within the number of invalidation events of the exact per-size
// simulation, and never undercounts coherence effects away entirely.
func TestStackProfilerInvalidationBound(t *testing.T) {
	capacities := []int{1, 2, 3, 5, 8, 13, 21, 34, 55}
	p := MustStackProfiler(8)
	bank := MustBank(capacities, 8)
	rng := rand.New(rand.NewSource(7))
	invals := 0
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(100)) * 8
		if rng.Intn(50) == 0 {
			invals++
			p.Invalidate(addr)
			bank.Invalidate(addr)
			continue
		}
		read := rng.Intn(3) != 0
		p.Access(addr, 8, read)
		bank.Access(addr, 8, read)
	}
	exact := bank.Curve()
	approx := p.Curve(capacities)
	for i, c := range capacities {
		diff := int64(approx[i].Misses()) - int64(exact[i].Misses())
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(invals) {
			t.Errorf("capacity %d: |profiler-exact| = %d exceeds invalidation count %d",
				c, diff, invals)
		}
	}
}

func TestBankMatchesProfilerWithoutInvalidations(t *testing.T) {
	capacities := []int{1, 4, 16, 64}
	p := MustStackProfiler(8)
	bank := MustBank(capacities, 8)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(200)) * 8
		read := rng.Intn(2) == 0
		p.Access(addr, 8, read)
		bank.Access(addr, 8, read)
	}
	got := bank.Curve()
	want := p.Curve(capacities)
	for i := range capacities {
		if got[i] != want[i] {
			t.Errorf("capacity %d: bank %+v vs profiler %+v", capacities[i], got[i], want[i])
		}
	}
}

func TestBankValidation(t *testing.T) {
	for _, caps := range [][]int{{}, {0}, {4, 4}, {8, 4}} {
		if _, err := NewBank(caps, 8); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("NewBank(%v) err = %v, want ErrInvalidConfig", caps, err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustBank(%v) should panic", caps)
				}
			}()
			MustBank(caps, 8)
		}()
	}
}

// TestConstructorValidation exercises every constructor's input checks:
// invalid configurations return ErrInvalidConfig instead of panicking.
func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		make func() error
	}{
		{"LRU zero capacity", func() error { _, err := NewLRU(0, 8); return err }},
		{"LRU negative capacity", func() error { _, err := NewLRU(-4, 8); return err }},
		{"LRU zero line", func() error { _, err := NewLRU(4, 0); return err }},
		{"LRU non-pow2 line", func() error { _, err := NewLRU(4, 24); return err }},
		{"SetAssoc zero capacity", func() error { _, err := NewSetAssoc(0, 2, 8); return err }},
		{"SetAssoc zero assoc", func() error { _, err := NewSetAssoc(8, 0, 8); return err }},
		{"SetAssoc capacity not multiple", func() error { _, err := NewSetAssoc(7, 2, 8); return err }},
		{"SetAssoc non-pow2 sets", func() error { _, err := NewSetAssoc(6, 2, 8); return err }},
		{"SetAssoc bad line", func() error { _, err := NewSetAssoc(8, 2, 3); return err }},
		{"DirectMapped zero capacity", func() error { _, err := NewDirectMapped(0, 8); return err }},
		{"DirectMapped bad line", func() error { _, err := NewDirectMapped(4, 7); return err }},
		{"Bank empty", func() error { _, err := NewBank(nil, 8); return err }},
		{"Bank not ascending", func() error { _, err := NewBank([]int{8, 4}, 8); return err }},
		{"Bank bad line", func() error { _, err := NewBank([]int{4, 8}, 0); return err }},
		{"StackProfiler zero line", func() error { _, err := NewStackProfiler(0); return err }},
		{"StackProfiler non-pow2 line", func() error { _, err := NewStackProfiler(12); return err }},
	}
	for _, c := range cases {
		if err := c.make(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: err = %v, want ErrInvalidConfig", c.name, err)
		}
	}

	// Sanity: valid configurations construct cleanly through every path.
	valid := []func() error{
		func() error { _, err := NewLRU(4, 8); return err },
		func() error { _, err := NewSetAssoc(8, 2, 8); return err },
		func() error { _, err := NewDirectMapped(4, 8); return err },
		func() error { _, err := NewBank([]int{2, 4, 8}, 8); return err },
		func() error { _, err := NewStackProfiler(64); return err },
	}
	for i, f := range valid {
		if err := f(); err != nil {
			t.Errorf("valid constructor %d rejected: %v", i, err)
		}
	}
}

func TestBankColdStartExclusion(t *testing.T) {
	bank := MustBank([]int{2, 8}, 8)
	bank.Access(0, 8, true)
	bank.Access(8, 8, true)
	bank.SetMeasuring(true) // resets counters, keeps contents
	bank.Access(0, 8, true)
	if got := bank.Stats(1).ReadMisses; got != 0 {
		t.Errorf("8-line cache misses after warm-up = %d, want 0", got)
	}
}

// TestStackProfilerCompaction drives enough references through the profiler
// to force position-space compaction and re-checks agreement with LRU.
func TestStackProfilerCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction test needs >64k references")
	}
	p := MustStackProfiler(8)
	lru := MustLRU(10, 8)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300000; i++ {
		addr := uint64(rng.Intn(40)) * 8
		p.Access(addr, 8, true)
		lru.Access(addr, true)
	}
	got := p.MissesAt(10)
	want := lru.Stats()
	if got.ReadMisses != want.ReadMisses {
		t.Fatalf("after compaction: profiler %d misses vs LRU %d", got.ReadMisses, want.ReadMisses)
	}
}

func TestStackProfilerColdStartExclusion(t *testing.T) {
	p := MustStackProfiler(8)
	p.SetMeasuring(false)
	for i := 0; i < 10; i++ {
		p.Access(uint64(i)*8, 8, true)
	}
	if p.Accesses() != 0 {
		t.Fatal("warm-up references must not be counted")
	}
	p.SetMeasuring(true)
	for i := 0; i < 10; i++ {
		p.Access(uint64(i)*8, 8, true)
	}
	// All 10 lines were warmed: a 10-line cache sees zero misses, a
	// 5-line cache sees 10 capacity misses (cyclic sweep), and no cold
	// misses are charged.
	if got := p.MissesAt(10).ReadMisses; got != 0 {
		t.Errorf("10-line cache misses = %d, want 0", got)
	}
	if got := p.MissesAt(5).ReadMisses; got != 10 {
		t.Errorf("5-line cache misses = %d, want 10", got)
	}
	cr, _ := p.ColdMisses()
	if cr != 0 {
		t.Errorf("cold misses = %d, want 0 (excluded by warm-up)", cr)
	}
}

func TestStackProfilerSequentialScan(t *testing.T) {
	// A cyclic scan over N lines: caches smaller than N always miss; a
	// cache of N lines never misses after warm-up.
	const n = 100
	p := MustStackProfiler(8)
	p.SetMeasuring(false)
	for i := 0; i < n; i++ {
		p.Access(uint64(i)*8, 8, true)
	}
	p.SetMeasuring(true)
	const sweeps = 5
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n; i++ {
			p.Access(uint64(i)*8, 8, true)
		}
	}
	if got := p.MissesAt(n).ReadMisses; got != 0 {
		t.Errorf("full-size cache misses = %d, want 0", got)
	}
	if got := p.MissesAt(n - 1).ReadMisses; got != sweeps*n {
		t.Errorf("n-1 cache misses = %d, want %d (LRU pathological scan)", got, sweeps*n)
	}
}

func TestStackProfilerInvalidation(t *testing.T) {
	p := MustStackProfiler(8)
	p.Access(0, 8, true) // cold
	p.Invalidate(0)
	p.Access(0, 8, true) // coherence at every size
	if got := p.MissesAt(1000).ReadMisses; got != 2 {
		t.Errorf("misses at huge cache = %d, want 2 (cold+coherence)", got)
	}
	cr, _ := p.CoherenceMisses()
	if cr != 1 {
		t.Errorf("coherence read misses = %d, want 1", cr)
	}
}

func TestStackProfilerMultiLineAccess(t *testing.T) {
	p := MustStackProfiler(8)
	p.Access(0, 24, true) // touches lines 0,1,2
	if p.DistinctLines() != 3 {
		t.Fatalf("DistinctLines = %d, want 3", p.DistinctLines())
	}
	if p.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3 (one per line)", p.Reads())
	}
}

func TestCurveMonotone(t *testing.T) {
	// Miss counts must be non-increasing in capacity (stack inclusion).
	p := MustStackProfiler(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		p.Access(uint64(rng.Intn(500))*8, 8, rng.Intn(2) == 0)
	}
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	curve := p.Curve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i].Misses() > curve[i-1].Misses() {
			t.Fatalf("miss count increased with capacity: %+v -> %+v", curve[i-1], curve[i])
		}
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := MustLRU(2, 8)
	c.Access(0, false) // dirty line 0
	c.Access(8, true)  // clean line 1
	c.Access(16, true) // evicts line 0 (dirty): writeback
	c.Access(24, true) // evicts line 1 (clean): no writeback
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
	// Invalidating a dirty resident line also writes back.
	c.Access(32, false)
	c.Invalidate(32)
	if got := c.Stats().Writebacks; got != 2 {
		t.Fatalf("writebacks after invalidate = %d, want 2", got)
	}
	// A read hit must not dirty the line.
	d := MustLRU(1, 8)
	d.Access(0, true)
	d.Access(8, true) // evict clean
	if d.Stats().Writebacks != 0 {
		t.Fatal("clean eviction counted as writeback")
	}
}

func TestWritebackDirtyPropagatesOnHit(t *testing.T) {
	c := MustLRU(1, 8)
	c.Access(0, true)  // clean load
	c.Access(0, false) // write hit dirties it
	c.Access(8, true)  // eviction must write back
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}
