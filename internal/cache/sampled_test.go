package cache

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wsstudy/internal/fault"
)

// TestNewProfilerDispatch: rate 1 must yield the exact profiler (the
// equivalence gate depends on it — no sampled code on the rate-1 path),
// higher powers of two the sampled one, and anything else an error.
func TestNewProfilerDispatch(t *testing.T) {
	p, err := NewProfiler(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*StackProfiler); !ok {
		t.Fatalf("rate 1 built %T, want *StackProfiler", p)
	}
	if p.SampleRate() != 1 || p.SampledLines() != 0 || p.ErrorBound() != 0 {
		t.Errorf("exact profiler sampling introspection: rate=%d lines=%d bound=%g",
			p.SampleRate(), p.SampledLines(), p.ErrorBound())
	}
	p, err = NewProfiler(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*SampledStackProfiler); !ok {
		t.Fatalf("rate 16 built %T, want *SampledStackProfiler", p)
	}
	if p.SampleRate() != 16 {
		t.Errorf("SampleRate = %d, want 16", p.SampleRate())
	}
	for _, bad := range []int{0, -1, 3, 12, 1 << 20} {
		if _, err := NewProfiler(8, bad); bad != 1<<20 && !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("rate %d: err = %v, want ErrInvalidConfig", bad, err)
		}
	}
	if _, err := NewSampledStackProfiler(8, 1); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("sampled profiler accepted rate 1: %v", err)
	}
}

// TestSampleSelectFailpoint: arming "cache.sample.select" fails profiler
// construction with the injected error — the machine build surfaces it
// before any reference is consumed.
func TestSampleSelectFailpoint(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	if err := fault.Arm("cache.sample.select", fault.Trigger{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfiler(8, 16); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed failpoint: err = %v, want ErrInjected", err)
	}
	// Disarmed after Count: the next construction succeeds.
	if _, err := NewProfiler(8, 16); err != nil {
		t.Fatalf("after failpoint drained: %v", err)
	}
}

// TestSampledExactDenominators: access totals under sampling count every
// measured reference, not just sampled lines, and respect the measuring
// window exactly like the exact profiler.
func TestSampledExactDenominators(t *testing.T) {
	exact, _ := NewStackProfiler(8)
	samp, _ := NewSampledStackProfiler(8, 8)
	feed := func(p Profiler, measuring bool) {
		p.SetMeasuring(measuring)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 5000; i++ {
			p.Access(uint64(rng.Intn(1<<16))*8, 8, rng.Intn(4) != 0)
		}
	}
	feed(exact, false)
	feed(samp, false)
	if samp.Reads() != 0 || samp.Writes() != 0 {
		t.Fatalf("cold-start window counted: reads=%d writes=%d", samp.Reads(), samp.Writes())
	}
	feed(exact, true)
	feed(samp, true)
	if samp.Reads() != exact.Reads() || samp.Writes() != exact.Writes() {
		t.Errorf("sampled denominators reads=%d writes=%d, exact reads=%d writes=%d",
			samp.Reads(), samp.Writes(), exact.Reads(), exact.Writes())
	}
	if samp.Accesses() != exact.Accesses() {
		t.Errorf("Accesses %d != %d", samp.Accesses(), exact.Accesses())
	}
}

// TestSampledCurveTracksExact: on a two-working-set synthetic stream the
// sampled curve must land within a modest relative error of the exact
// one at every capacity that holds at least a few sampled lines. This is
// the unit-scale version of the kernel-level accuracy harness in
// internal/core.
func TestSampledCurveTracksExact(t *testing.T) {
	const rate = 16
	exact, _ := NewStackProfiler(8)
	samp, _ := NewSampledStackProfiler(8, rate)
	feed := func(p Profiler) {
		p.SetMeasuring(true)
		rng := rand.New(rand.NewSource(11))
		// Small hot set revisited constantly, large cold set streamed:
		// a knee near 4096 lines and a plateau past 65536.
		for i := 0; i < 400000; i++ {
			var line uint64
			if i%4 != 0 {
				line = uint64(rng.Intn(4096))
			} else {
				line = 4096 + uint64(rng.Intn(65536))
			}
			p.Access(line*8, 8, true)
		}
	}
	feed(exact)
	feed(samp)

	caps := []int{1024, 4096, 16384, 65536, 131072}
	ec := exact.Curve(caps)
	sc := samp.Curve(caps)
	for i, c := range caps {
		e := float64(ec[i].Misses())
		s := float64(sc[i].Misses())
		if e == 0 {
			continue
		}
		if rel := math.Abs(s-e) / e; rel > 0.15 {
			t.Errorf("capacity %d: sampled %g vs exact %g (rel err %.3f > 0.15)", c, s, e, rel)
		}
	}
	if got := samp.SampledLines(); got == 0 {
		t.Fatal("no lines sampled")
	}
	// The distinct-line estimate scales back to the true population
	// within the estimator's own error bound (with margin).
	trueLines := float64(exact.DistinctLines())
	estLines := float64(samp.DistinctLines())
	if rel := math.Abs(estLines-trueLines) / trueLines; rel > 3*samp.ErrorBound() {
		t.Errorf("DistinctLines estimate %g vs true %g (rel err %.3f, bound %.3f)",
			estLines, trueLines, rel, samp.ErrorBound())
	}
}

// TestSampledCurveUnsortedInput: like the exact profiler, Curve answers
// ascending capacities even for unsorted input, without mutating the
// caller's slice.
func TestSampledCurveUnsortedInput(t *testing.T) {
	samp, _ := NewSampledStackProfiler(8, 4)
	samp.SetMeasuring(true)
	for i := 0; i < 10000; i++ {
		samp.Access(uint64(i%3000)*8, 8, true)
	}
	in := []int{512, 64, 4096, 1024}
	out := samp.Curve(in)
	for i := 1; i < len(out); i++ {
		if out[i].CapacityLines <= out[i-1].CapacityLines {
			t.Fatalf("curve not ascending: %v then %v", out[i-1].CapacityLines, out[i].CapacityLines)
		}
		if out[i].Misses() > out[i-1].Misses() {
			t.Errorf("misses increased with capacity: %d -> %d", out[i-1].Misses(), out[i].Misses())
		}
	}
	if in[0] != 512 || in[2] != 4096 {
		t.Error("Curve mutated the caller's capacity slice")
	}
}

// TestSampledInvalidate: invalidations of sampled lines register as
// coherence misses on re-reference (scaled by R); unsampled lines are
// dropped without touching the inner stack.
func TestSampledInvalidate(t *testing.T) {
	const rate = 4
	samp, _ := NewSampledStackProfiler(8, rate)
	samp.SetMeasuring(true)
	// Find one sampled and one unsampled line.
	sampled, unsampled := uint64(math.MaxUint64), uint64(math.MaxUint64)
	for l := uint64(0); l < 1000; l++ {
		if samp.sampled(l) {
			if sampled == math.MaxUint64 {
				sampled = l
			}
		} else if unsampled == math.MaxUint64 {
			unsampled = l
		}
	}
	if sampled == math.MaxUint64 || unsampled == math.MaxUint64 {
		t.Fatal("could not find both a sampled and an unsampled line")
	}
	samp.Access(sampled*8, 8, true)
	samp.Access(unsampled*8, 8, true)
	samp.Invalidate(sampled * 8)
	samp.Invalidate(unsampled * 8) // must be a no-op, not a panic
	samp.Access(sampled*8, 8, true)
	samp.Access(unsampled*8, 8, true)
	r, _ := samp.CoherenceMisses()
	if r != rate {
		t.Errorf("coherence read misses = %d, want %d (1 sampled invalidation x rate)", r, rate)
	}
}
