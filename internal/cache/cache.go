// Package cache provides the cache simulators used to measure working sets.
//
// The paper measures working sets with fully associative LRU caches, sweeping
// capacity and looking for knees in the miss-rate-versus-size curve. Running
// one simulation per candidate size is wasteful: LRU obeys Mattson's
// inclusion property, so a single pass that records the reuse (stack)
// distance of every reference yields the exact miss count for every capacity
// at once. StackProfiler implements that; LRU and SetAssoc provide concrete
// per-size simulators (SetAssoc with Assoc=1 is a direct-mapped cache, used
// for the paper's Section 6.4 comparison).
package cache

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig is wrapped by every input-validation error this package
// returns, so callers can classify bad-configuration failures with
// errors.Is regardless of which constructor rejected the input.
var ErrInvalidConfig = errors.New("cache: invalid configuration")

// validateLineSize rejects line sizes that are zero or not a power of two.
// Constructors call it so that the internal lineShift panic stays an
// invariant rather than a reachable input-validation failure.
func validateLineSize(lineSize uint32) error {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("%w: line size %d is not a power of two", ErrInvalidConfig, lineSize)
	}
	return nil
}

// Line computes the cache line index of a byte address for a given line size.
// lineSize must be a power of two.
func Line(addr uint64, lineSize uint32) uint64 {
	return addr >> lineShift(lineSize)
}

// lineShift panics on an invalid line size; constructors validate with
// validateLineSize first, so reaching the panic means an internal invariant
// broke, not bad user input.
func lineShift(lineSize uint32) uint {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d is not a power of two", lineSize))
	}
	s := uint(0)
	for l := lineSize; l > 1; l >>= 1 {
		s++
	}
	return s
}

// LinesSpanned reports how many lines the byte range [addr, addr+size)
// touches.
func LinesSpanned(addr uint64, size, lineSize uint32) int {
	if size == 0 {
		return 0
	}
	first := Line(addr, lineSize)
	last := Line(addr+uint64(size)-1, lineSize)
	return int(last - first + 1)
}

// AccessResult classifies the outcome of a single cache access.
type AccessResult uint8

const (
	// Hit means the line was present.
	Hit AccessResult = iota
	// ColdMiss means the line had never been accessed before.
	ColdMiss
	// CapacityMiss means the line was evicted for space since its last use.
	CapacityMiss
	// CoherenceMiss means the line was invalidated by a remote write since
	// its last use. These are the paper's "inherent communication" misses:
	// no cache size removes them.
	CoherenceMiss
	// ConflictMiss means the line was evicted by a set conflict (only
	// set-associative caches report it; fully associative caches fold
	// conflicts into CapacityMiss by construction).
	ConflictMiss
)

// Miss reports whether the result is any kind of miss.
func (r AccessResult) Miss() bool { return r != Hit }

// String names the result.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case ColdMiss:
		return "cold"
	case CapacityMiss:
		return "capacity"
	case CoherenceMiss:
		return "coherence"
	case ConflictMiss:
		return "conflict"
	}
	return "unknown"
}

// Stats accumulates access counts split by read/write and miss class.
type Stats struct {
	Accesses    uint64
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	Cold        uint64
	Capacity    uint64
	Coherence   uint64
	Conflict    uint64
	// Writebacks counts dirty lines written back to memory on eviction
	// or invalidation — the write-traffic side of the paper's Section 1
	// bus-pressure argument (misses are the read side).
	Writebacks uint64
}

// Record folds one access outcome into the stats.
func (s *Stats) Record(read bool, res AccessResult) {
	s.Accesses++
	if read {
		s.Reads++
	} else {
		s.Writes++
	}
	if !res.Miss() {
		return
	}
	if read {
		s.ReadMisses++
	} else {
		s.WriteMisses++
	}
	switch res {
	case ColdMiss:
		s.Cold++
	case CapacityMiss:
		s.Capacity++
	case CoherenceMiss:
		s.Coherence++
	case ConflictMiss:
		s.Conflict++
	}
}

// Misses reports the total miss count.
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// ReadMissRate reports read misses over read accesses (the metric the paper
// uses for Barnes-Hut and volume rendering). Zero reads yields zero.
func (s *Stats) ReadMissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

// MissRate reports total misses over total accesses. Zero accesses yields
// zero.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadMisses += other.ReadMisses
	s.WriteMisses += other.WriteMisses
	s.Cold += other.Cold
	s.Capacity += other.Capacity
	s.Coherence += other.Coherence
	s.Conflict += other.Conflict
	s.Writebacks += other.Writebacks
}

// Cache is the interface shared by the concrete simulators.
type Cache interface {
	// Access touches one line-aligned address and returns the outcome.
	// read distinguishes loads from stores for the statistics.
	Access(addr uint64, read bool) AccessResult
	// Invalidate removes the line containing addr, if present, and marks
	// it so the next access is classified as a coherence miss.
	Invalidate(addr uint64)
	// Stats returns the accumulated statistics.
	Stats() Stats
	// ResetStats clears counters but keeps cache contents, which is how
	// cold-start exclusion works: warm up, reset, then measure.
	ResetStats()
}
