package cache

import (
	"fmt"

	"wsstudy/internal/obs"
)

// LRU is an exact fully associative cache with least-recently-used
// replacement, the measurement instrument of the paper's Section 2.2.
// Capacity is expressed in lines; byte capacity is capacityLines*lineSize.
type LRU struct {
	lineSize uint32
	capacity int

	// Intrusive doubly linked list over table entries, most recent first.
	table map[uint64]*lruNode
	head  *lruNode // most recently used
	tail  *lruNode // least recently used

	// invalidated remembers lines removed by coherence actions so the next
	// access can be classified as a coherence miss rather than cold.
	invalidated map[uint64]struct{}
	// seen remembers every line ever touched, to distinguish cold misses
	// from capacity misses after eviction.
	seen map[uint64]struct{}

	stats Stats

	// Run-scope capacity-eviction counter, live only after Instrument.
	mEvictions *obs.Counter
}

type lruNode struct {
	line       uint64
	dirty      bool
	prev, next *lruNode
}

// NewLRU builds a fully associative LRU cache holding capacityLines lines of
// lineSize bytes each. capacityLines must be positive and lineSize a power
// of two; violations return an error wrapping ErrInvalidConfig.
func NewLRU(capacityLines int, lineSize uint32) (*LRU, error) {
	if capacityLines <= 0 {
		return nil, fmt.Errorf("%w: LRU capacity %d must be positive", ErrInvalidConfig, capacityLines)
	}
	if err := validateLineSize(lineSize); err != nil {
		return nil, err
	}
	return &LRU{
		lineSize:    lineSize,
		capacity:    capacityLines,
		table:       make(map[uint64]*lruNode, capacityLines+1),
		invalidated: make(map[uint64]struct{}),
		seen:        make(map[uint64]struct{}),
	}, nil
}

// MustLRU is NewLRU for statically-valid configurations; it panics on error.
func MustLRU(capacityLines int, lineSize uint32) *LRU {
	c, err := NewLRU(capacityLines, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// LineSize reports the configured line size in bytes.
func (c *LRU) LineSize() uint32 { return c.lineSize }

// CapacityBytes reports the cache capacity in bytes.
func (c *LRU) CapacityBytes() uint64 {
	return uint64(c.capacity) * uint64(c.lineSize)
}

// Len reports the number of resident lines.
func (c *LRU) Len() int { return len(c.table) }

// Access touches the line containing addr and returns the outcome.
// Writes mark the line dirty; its eventual eviction or invalidation
// counts as a writeback.
func (c *LRU) Access(addr uint64, read bool) AccessResult {
	line := Line(addr, c.lineSize)
	res := c.touch(line, !read)
	c.stats.Record(read, res)
	return res
}

func (c *LRU) touch(line uint64, dirty bool) AccessResult {
	if n, ok := c.table[line]; ok {
		c.moveToFront(n)
		n.dirty = n.dirty || dirty
		return Hit
	}
	var res AccessResult
	switch {
	case c.isInvalidated(line):
		res = CoherenceMiss
		delete(c.invalidated, line)
	case c.wasSeen(line):
		res = CapacityMiss
	default:
		res = ColdMiss
		c.seen[line] = struct{}{}
	}
	c.insert(line, dirty)
	return res
}

func (c *LRU) isInvalidated(line uint64) bool {
	_, ok := c.invalidated[line]
	return ok
}

func (c *LRU) wasSeen(line uint64) bool {
	_, ok := c.seen[line]
	return ok
}

func (c *LRU) insert(line uint64, dirty bool) {
	n := &lruNode{line: line, dirty: dirty}
	c.table[line] = n
	c.pushFront(n)
	if len(c.table) > c.capacity {
		c.evict(c.tail)
		c.mEvictions.Inc()
	}
}

func (c *LRU) evict(n *lruNode) {
	if n.dirty {
		c.stats.Writebacks++
	}
	c.unlink(n)
	delete(c.table, n.line)
}

func (c *LRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Invalidate removes the line containing addr, recording that its next
// access is a coherence miss. Invalidating an absent line still marks it:
// the remote write communicated fresh data either way.
func (c *LRU) Invalidate(addr uint64) {
	line := Line(addr, c.lineSize)
	if n, ok := c.table[line]; ok {
		c.evict(n)
	}
	if c.wasSeen(line) {
		c.invalidated[line] = struct{}{}
	}
}

// Contains reports whether the line holding addr is resident.
func (c *LRU) Contains(addr uint64) bool {
	_, ok := c.table[Line(addr, c.lineSize)]
	return ok
}

// Stats returns the accumulated statistics.
func (c *LRU) Stats() Stats { return c.stats }

// ResetStats clears the counters but keeps cache contents and history,
// implementing the paper's cold-start exclusion.
func (c *LRU) ResetStats() { c.stats = Stats{} }

var _ Cache = (*LRU)(nil)
