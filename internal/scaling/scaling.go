// Package scaling implements the paper's two problem-scaling models —
// memory-constrained (MC) and time-constrained (TC) — and the
// per-application scaling rules of Sections 3-7, including the Barnes-Hut
// n-theta-dt co-scaling of Section 6.2.
package scaling

import (
	"fmt"
	"math"
)

// Model selects how problems grow with the machine.
type Model uint8

const (
	// MC (memory-constrained): the problem fills the enlarged machine's
	// memory, whatever happens to run time.
	MC Model = iota
	// TC (time-constrained): the problem grows only as much as keeps run
	// time equal to the base run.
	TC
)

// String names the model.
func (m Model) String() string {
	if m == MC {
		return "memory-constrained"
	}
	return "time-constrained"
}

// GrowthRates is one row of the paper's Table 1 — symbolic asymptotic
// rates in the problem parameter n and processor count P.
type GrowthRates struct {
	App           string
	Data          string
	Ops           string
	Concurrency   string
	Communication string
	WorkingSet    string
}

// Table1 returns the paper's Table 1 verbatim.
func Table1() []GrowthRates {
	return []GrowthRates{
		{"LU", "n^2", "n^3", "n^2", "n^2*sqrt(P)", "const"},
		{"CG", "n^2", "n^2", "n^2", "n*sqrt(P)", "const"},
		{"FFT", "n", "n log n", "n", "n log P", "const"},
		{"Barnes-Hut", "n", "(1/theta^2) n log n", "n", "n^(1/3) theta^3 P^(2/3) log^(4/3) P", "(1/theta^2) log n"},
		{"Volume Rendering", "n^3", "n^3", "n^2", "n^3", "n"},
	}
}

// BHParams is a Barnes-Hut problem configuration.
type BHParams struct {
	N     float64 // particles
	Theta float64 // accuracy parameter
	DT    float64 // time-step resolution (relative)
}

// ThetaFloor is where the paper stops shrinking theta and switches to
// higher-order (octopole) moments instead.
const ThetaFloor = 0.6

// BHScaleBy applies the paper's realistic co-scaling rule: scaling the
// particle count by s scales theta by s^(-1/8) and dt by s^(-1/4)
// (quadrupole moments), keeping the error contributions balanced. Theta
// is floored at ThetaFloor.
func (b BHParams) BHScaleBy(s float64) BHParams {
	theta := b.Theta * math.Pow(s, -1.0/8)
	if theta < ThetaFloor {
		theta = ThetaFloor
	}
	return BHParams{
		N:     b.N * s,
		Theta: theta,
		DT:    b.DT * math.Pow(s, -0.25),
	}
}

// BHWorkingSet is the paper's lev2WS fit: about 6 KB per decade of n,
// divided by theta^2 (32 KB at n=64K, theta=1).
func BHWorkingSet(n, theta float64) uint64 {
	if n < 10 {
		n = 10
	}
	return uint64(6000 * math.Log10(n) / (theta * theta))
}

// BHDataSetBytes is the paper's ~230 bytes per particle with quadrupole
// moments.
func BHDataSetBytes(n float64) uint64 { return uint64(230 * n) }

// BHRelativeTime is the execution-time proxy the TC solver equalizes:
// (1/theta^2) * n log n / (P * dt), normalized by the same expression for
// the base configuration on baseP processors.
func BHRelativeTime(base BHParams, baseP float64, scaled BHParams, p float64) float64 {
	t := func(b BHParams, procs float64) float64 {
		return (1 / (b.Theta * b.Theta)) * b.N * math.Log2(b.N) / (procs * b.DT)
	}
	return t(scaled, p) / t(base, baseP)
}

// BHScaleMC scales under the MC model: particles grow linearly with the
// machine (constant bytes per processor), with the co-scaling rule
// applied to theta and dt.
func BHScaleMC(base BHParams, k float64) BHParams { return base.BHScaleBy(k) }

// BHScaleTC finds the problem scale s that keeps execution time constant
// when the machine grows by factor k, solving the time equation by
// bisection. It returns the scaled parameters and s.
func BHScaleTC(base BHParams, k float64) (BHParams, float64) {
	lo, hi := 1.0, k*4
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		t := BHRelativeTime(base, 1, base.BHScaleBy(mid), k)
		if t > 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	s := math.Sqrt(lo * hi)
	return base.BHScaleBy(s), s
}

// LU scaling (Section 3.3).

// LUScaleMC keeps the grain fixed: data n^2 grows with P, so n' = n*sqrt(k).
func LUScaleMC(n float64, k float64) float64 { return n * math.Sqrt(k) }

// LUScaleTC keeps time fixed: ops n^3/P constant, so n' = n*k^(1/3); the
// per-processor data n'^2/(kP) then *shrinks* as k^(-1/3) — the paper's
// time-constraint argument for finer grains.
func LUScaleTC(n float64, k float64) float64 { return n * math.Cbrt(k) }

// LUGrainRatioTC is the factor by which per-PE memory changes under TC
// scaling by k: k^(-1/3).
func LUGrainRatioTC(k float64) float64 { return math.Pow(k, -1.0/3) }

// CG scaling (Section 4.3): ops scale with data (n^2 for 2-D), so MC and
// TC coincide up to the slowly growing global-sum term.

// CGScaleMC keeps the grain fixed for a 2-D grid: n' = n*sqrt(k).
func CGScaleMC(n float64, k float64) float64 { return n * math.Sqrt(k) }

// FFT scaling (Section 5.3): ops n log n vs data n; TC growth is slightly
// sublinear. The ratio depends only on the grain, so MC preserves it.

// FFTScaleMC keeps the grain fixed: N' = N*k.
func FFTScaleMC(n float64, k float64) float64 { return n * k }

// Volume rendering (Section 7.3): time and data both scale as n^3, so TC
// and MC coincide; holding rays per processor fixed instead requires the
// grain to grow as the cube root of the data-set factor.

// VRGrainGrowthForConstantRays is the grain multiplier needed when the
// data set grows by factor kData: kData^(1/3).
func VRGrainGrowthForConstantRays(kData float64) float64 {
	return math.Cbrt(kData)
}

// ScaledProblem describes one row of a scaling trajectory.
type ScaledProblem struct {
	Machine float64 // processor multiple k
	Scale   float64 // problem multiple s
	Params  BHParams
	WS      uint64  // lev2WS bytes
	Data    uint64  // total data bytes
	RelTime float64 // execution time relative to base
}

// BHTrajectory tabulates MC or TC scaling of a Barnes-Hut base problem
// across machine sizes, for the Section 6.2 narrative.
func BHTrajectory(base BHParams, model Model, machines []float64) []ScaledProblem {
	out := make([]ScaledProblem, 0, len(machines))
	for _, k := range machines {
		var p BHParams
		var s float64
		switch model {
		case MC:
			s = k
			p = BHScaleMC(base, k)
		default:
			p, s = BHScaleTC(base, k)
		}
		out = append(out, ScaledProblem{
			Machine: k,
			Scale:   s,
			Params:  p,
			WS:      BHWorkingSet(p.N, p.Theta),
			Data:    BHDataSetBytes(p.N),
			RelTime: BHRelativeTime(base, 1, p, k),
		})
	}
	return out
}

// Describe renders a scaled problem compactly.
func (sp ScaledProblem) Describe() string {
	return fmt.Sprintf("k=%.0f: n=%.3g theta=%.2f ws=%dB time=%.2fx",
		sp.Machine, sp.Params.N, sp.Params.Theta, sp.WS, sp.RelTime)
}
