package scaling

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	apps := []string{"LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"}
	for i, want := range apps {
		if rows[i].App != want {
			t.Errorf("row %d app = %q, want %q", i, rows[i].App, want)
		}
		if rows[i].Data == "" || rows[i].Communication == "" || rows[i].WorkingSet == "" {
			t.Errorf("row %d incomplete: %+v", i, rows[i])
		}
	}
	// Spot-check the paper's cells.
	if rows[0].Communication != "n^2*sqrt(P)" {
		t.Errorf("LU communication = %q", rows[0].Communication)
	}
	if !strings.Contains(rows[3].WorkingSet, "log n") {
		t.Errorf("BH working set = %q", rows[3].WorkingSet)
	}
}

func TestBHWorkingSetPaperPoints(t *testing.T) {
	// Section 6.2 checkpoints: 32 KB at 64K particles; 40 KB at 1M;
	// 60 KB at 1G (theta = 1, quadrupole).
	cases := []struct {
		n    float64
		want float64 // KB
	}{
		{65536, 32},
		{1 << 20, 40},
		{1 << 30, 60},
	}
	for _, c := range cases {
		got := float64(BHWorkingSet(c.n, 1.0)) / 1000
		if math.Abs(got-c.want) > 0.15*c.want {
			t.Errorf("WS(%g) = %.1f KB, want ~%.0f KB", c.n, got, c.want)
		}
	}
	// Theta dependence: halving theta quadruples the working set.
	r := float64(BHWorkingSet(65536, 0.5)) / float64(BHWorkingSet(65536, 1.0))
	if math.Abs(r-4) > 1e-3 { // uint64 rounding of the byte sizes
		t.Errorf("theta scaling = %v, want 4", r)
	}
}

func TestBHScaleByRule(t *testing.T) {
	base := BHParams{N: 65536, Theta: 1.0, DT: 1.0}
	// Scale by 16: theta *= 16^(-1/8) = 0.707; dt *= 16^(-1/4) = 0.5.
	s := base.BHScaleBy(16)
	if math.Abs(s.Theta-0.7071) > 1e-3 {
		t.Errorf("theta = %v, want ~0.707 (paper's MC million-particle example)", s.Theta)
	}
	if math.Abs(s.DT-0.5) > 1e-9 {
		t.Errorf("dt = %v, want 0.5", s.DT)
	}
	if s.N != 65536*16 {
		t.Errorf("n = %v", s.N)
	}
	// Theta floors at 0.6.
	deep := base.BHScaleBy(1 << 20)
	if deep.Theta != ThetaFloor {
		t.Errorf("theta = %v, want floored at %v", deep.Theta, ThetaFloor)
	}
}

func TestBHScaleMCMatchesPaper(t *testing.T) {
	// Paper: 64 -> 1024 processors under MC runs 1M particles at
	// theta ~ 0.71.
	base := BHParams{N: 65536, Theta: 1.0, DT: 1.0}
	p := BHScaleMC(base, 16)
	if math.Abs(p.N-1048576) > 1 {
		t.Errorf("MC n = %v, want 1M", p.N)
	}
	if math.Abs(p.Theta-0.71) > 0.01 {
		t.Errorf("MC theta = %v, want ~0.71", p.Theta)
	}
	// And MC time grows rapidly (the paper's reason to reject it).
	if rt := BHRelativeTime(base, 1, p, 16); rt < 2 {
		t.Errorf("MC relative time = %v, want substantially > 1", rt)
	}
}

func TestBHScaleTCMatchesPaper(t *testing.T) {
	base := BHParams{N: 65536, Theta: 1.0, DT: 1.0}
	// 64 -> 1K processors (k=16): paper says ~256K particles,
	// theta ~ 0.84; our time-equation solution lands within a factor
	// ~1.6 on n (the paper's own numbers are approximate).
	p, s := BHScaleTC(base, 16)
	if rt := BHRelativeTime(base, 1, p, 16); math.Abs(rt-1) > 0.02 {
		t.Fatalf("TC did not equalize time: %v", rt)
	}
	if p.N < 200_000 || p.N > 650_000 {
		t.Errorf("TC n = %v, want a few hundred K (paper: 256K)", p.N)
	}
	if s >= 16 {
		t.Error("TC must scale the problem slower than the machine")
	}
	// 64 -> 1M processors (k=16384): paper says ~32M particles,
	// theta = 0.6 (floored), lev2WS ~ 140 KB.
	pBig, _ := BHScaleTC(base, 16384)
	if pBig.Theta != ThetaFloor {
		t.Errorf("big TC theta = %v, want floored 0.6", pBig.Theta)
	}
	if pBig.N < 15e6 || pBig.N > 80e6 {
		t.Errorf("big TC n = %v, want tens of millions (paper: 32M)", pBig.N)
	}
	ws := BHWorkingSet(pBig.N, pBig.Theta)
	if ws < 100_000 || ws > 180_000 {
		t.Errorf("big TC lev2WS = %d, want ~140 KB", ws)
	}
}

func TestBHTrajectoryMonotone(t *testing.T) {
	base := BHParams{N: 65536, Theta: 1.0, DT: 1.0}
	machines := []float64{1, 4, 16, 64, 256}
	for _, model := range []Model{MC, TC} {
		traj := BHTrajectory(base, model, machines)
		if len(traj) != len(machines) {
			t.Fatal("trajectory length mismatch")
		}
		for i := 1; i < len(traj); i++ {
			if traj[i].Params.N <= traj[i-1].Params.N {
				t.Errorf("%v: n not growing at k=%v", model, traj[i].Machine)
			}
			if traj[i].WS < traj[i-1].WS {
				t.Errorf("%v: working set shrank at k=%v", model, traj[i].Machine)
			}
		}
		// TC grows strictly slower than MC.
		if model == TC {
			mc := BHTrajectory(base, MC, machines)
			for i := range traj {
				if machines[i] > 1 && traj[i].Params.N >= mc[i].Params.N {
					t.Errorf("TC n %v should be below MC %v at k=%v",
						traj[i].Params.N, mc[i].Params.N, machines[i])
				}
			}
		}
		if traj[len(traj)-1].Describe() == "" {
			t.Error("Describe empty")
		}
	}
}

func TestLUScaling(t *testing.T) {
	// MC: grain fixed; TC: grain shrinks as k^(-1/3).
	if got := LUScaleMC(10000, 4); math.Abs(got-20000) > 1e-6 {
		t.Errorf("LU MC n = %v, want 20000", got)
	}
	if got := LUScaleTC(10000, 8); math.Abs(got-20000) > 1e-6 {
		t.Errorf("LU TC n = %v, want 20000", got)
	}
	if got := LUGrainRatioTC(8); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("LU TC grain ratio = %v, want 0.5", got)
	}
}

func TestOtherScalingHelpers(t *testing.T) {
	if got := CGScaleMC(4000, 4); got != 8000 {
		t.Errorf("CG MC = %v", got)
	}
	if got := FFTScaleMC(1<<20, 4); got != 1<<22 {
		t.Errorf("FFT MC = %v", got)
	}
	// VR: 8x data needs 2x grain for constant rays/PE.
	if got := VRGrainGrowthForConstantRays(8); math.Abs(got-2) > 1e-9 {
		t.Errorf("VR grain growth = %v, want 2", got)
	}
}

func TestBHDataSetBytes(t *testing.T) {
	// ~230 bytes/particle: 1 GB total at ~4.5M particles (prototypical).
	n := 4.5e6
	if got := BHDataSetBytes(n); got < 900e6 || got > 1.2e9 {
		t.Errorf("data set = %d, want ~1 GB", got)
	}
}

func TestModelString(t *testing.T) {
	if MC.String() == TC.String() {
		t.Fatal("model names must differ")
	}
}
