// Package spsc provides a single-producer single-consumer ring buffer
// with batched, blocking semantics.
//
// The ring is the handoff primitive under trace.Fanout's sharded worker
// pool and cache.ParallelBank: the producer publishes batches of items
// with one atomic store and at most one channel send per batch, and the
// consumer drains everything available with one atomic store on its
// side. Compared with a Go channel the per-item cost collapses from a
// lock acquisition to a slice copy, which is what lets a synchronization
// point amortize over many simulation blocks.
//
// Blocking uses two capacity-1 wake channels rather than spinning, so
// the ring is safe (and fair) under GOMAXPROCS=1: a producer that fills
// the ring parks until the consumer frees space, and an idle consumer
// parks until the producer publishes. A wake token can be pending from
// an earlier advance, so a woken side always re-checks the indices —
// tokens are hints, never state.
package spsc

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer queue. Send may only
// be called from one goroutine and Recv from one goroutine; Close belongs
// to the producer side. The zero value is not usable; construct with New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// head is the next slot to read (advanced only by the consumer);
	// tail is the next slot to write (advanced only by the producer).
	// Plain writes to buf are ordered by the atomic store/load pair.
	head atomic.Uint64
	tail atomic.Uint64

	closed atomic.Bool
	// work wakes a parked consumer after a publish (or Close); space
	// wakes a parked producer after a drain. Both are capacity 1 and
	// written with non-blocking sends: one pending token is enough,
	// because each side re-checks indices after waking.
	work  chan struct{}
	space chan struct{}
}

// New builds a ring with at least the requested capacity, rounded up to a
// power of two.
func New[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("spsc: capacity must be positive, got %d", capacity)
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &Ring[T]{
		buf:   make([]T, n),
		mask:  uint64(n - 1),
		work:  make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}, nil
}

// Cap returns the ring's capacity in items.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len is a racy snapshot of the number of items buffered, for gauges.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Send publishes items in order, blocking while the ring is full. It
// returns the number of times the producer had to park waiting for
// space (the backpressure stall count). Send after Close panics — the
// producer owns Close, so that is always a caller bug.
func (r *Ring[T]) Send(items []T) int {
	if r.closed.Load() {
		panic("spsc: Send after Close")
	}
	stalls := 0
	t := r.tail.Load()
	for len(items) > 0 {
		free := uint64(len(r.buf)) - (t - r.head.Load())
		if free == 0 {
			stalls++
			<-r.space
			continue
		}
		n := uint64(len(items))
		if n > free {
			n = free
		}
		for i := uint64(0); i < n; i++ {
			r.buf[(t+i)&r.mask] = items[i]
		}
		items = items[n:]
		t += n
		r.tail.Store(t)
		select {
		case r.work <- struct{}{}:
		default:
		}
	}
	return stalls
}

// Recv drains up to len(buf) buffered items into buf, blocking while the
// ring is empty and not closed. It returns the number of items copied
// and whether the ring is still open: (0, false) means closed and fully
// drained. Drained slots are zeroed so the ring never retains pointers
// past the handoff.
func (r *Ring[T]) Recv(buf []T) (int, bool) {
	if len(buf) == 0 {
		return 0, !r.closedAndDrained()
	}
	h := r.head.Load()
	var zero T
	for {
		if t := r.tail.Load(); t != h {
			n := t - h
			if n > uint64(len(buf)) {
				n = uint64(len(buf))
			}
			for i := uint64(0); i < n; i++ {
				slot := &r.buf[(h+i)&r.mask]
				buf[i] = *slot
				*slot = zero
			}
			r.head.Store(h + n)
			select {
			case r.space <- struct{}{}:
			default:
			}
			return int(n), true
		}
		if r.closed.Load() {
			// Re-check tail after observing closed: Close happens after
			// the producer's final Send, so an empty ring is final.
			if r.tail.Load() == h {
				return 0, false
			}
			continue
		}
		<-r.work
	}
}

func (r *Ring[T]) closedAndDrained() bool {
	return r.closed.Load() && r.tail.Load() == r.head.Load()
}

// Close marks the ring closed. The consumer drains whatever remains and
// then sees (0, false) from Recv. Close is idempotent and must be called
// from the producer side (after the final Send).
func (r *Ring[T]) Close() {
	if r.closed.Swap(true) {
		return
	}
	select {
	case r.work <- struct{}{}:
	default:
	}
}
