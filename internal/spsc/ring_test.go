package spsc

import (
	"testing"
)

func TestRingOrderAndClose(t *testing.T) {
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	done := make(chan []int)
	go func() {
		var got []int
		buf := make([]int, r.Cap())
		for {
			n, open := r.Recv(buf)
			got = append(got, buf[:n]...)
			if !open {
				done <- got
				return
			}
		}
	}()
	batch := make([]int, 0, 7)
	for i := 0; i < total; i++ {
		batch = append(batch, i)
		if len(batch) == cap(batch) {
			r.Send(batch)
			batch = batch[:0]
		}
	}
	r.Send(batch)
	r.Close()
	got := <-done
	if len(got) != total {
		t.Fatalf("received %d items, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, out of order", i, v)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {100, 128},
	} {
		r, err := New[byte](tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cap() != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, r.Cap(), tc.want)
		}
	}
	if _, err := New[byte](0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New[byte](-1); err == nil {
		t.Error("New(-1) should fail")
	}
}

func TestRingBackpressureStalls(t *testing.T) {
	r, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	drained := make(chan int)
	go func() {
		<-release
		buf := make([]int, 4)
		total := 0
		for {
			n, open := r.Recv(buf)
			total += n
			if !open {
				drained <- total
				return
			}
		}
	}()
	// Fill the ring, then send more: the producer must park at least once.
	stalls := r.Send([]int{1, 2})
	if stalls != 0 {
		t.Fatalf("filling an empty ring stalled %d times", stalls)
	}
	go func() { release <- struct{}{} }()
	stalls = r.Send([]int{3, 4, 5, 6, 7})
	if stalls == 0 {
		t.Error("overfilling a blocked ring should report stalls")
	}
	r.Close()
	if got := <-drained; got != 7 {
		t.Fatalf("drained %d items, want 7", got)
	}
}

func TestRingZeroesDrainedSlots(t *testing.T) {
	r, err := New[*int](4)
	if err != nil {
		t.Fatal(err)
	}
	v := new(int)
	r.Send([]*int{v, v, v, v})
	buf := make([]*int, 4)
	n, open := r.Recv(buf)
	if n != 4 || !open {
		t.Fatalf("Recv = (%d, %v), want (4, true)", n, open)
	}
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after drain", i)
		}
	}
}

func TestRingCloseIdempotentAndWakes(t *testing.T) {
	r, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		buf := make([]int, 4)
		for {
			if _, open := r.Recv(buf); !open {
				close(done)
				return
			}
		}
	}()
	r.Close()
	r.Close()
	<-done
	if n, open := r.Recv(make([]int, 1)); n != 0 || open {
		t.Fatalf("Recv after close = (%d, %v), want (0, false)", n, open)
	}
}

func TestRingSendAfterClosePanics(t *testing.T) {
	r, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	defer func() {
		if recover() == nil {
			t.Error("Send after Close should panic")
		}
	}()
	r.Send([]int{1})
}
