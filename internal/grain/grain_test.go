package grain

import (
	"math"
	"strings"
	"testing"

	"wsstudy/internal/machine"
)

func TestLUScenarios(t *testing.T) {
	// Section 3.3: 1024 PEs comfortable (ratio ~200, 380 blocks);
	// 16K PEs strained (ratio ~50, ~24 blocks).
	mid := LU(10000, 16, 1024)
	if mid.Sustainability == machine.VeryHard {
		t.Errorf("1024-PE LU should be sustainable: %+v", mid)
	}
	if !mid.Healthy() {
		t.Errorf("1024-PE LU should be healthy: %+v", mid)
	}
	fine := LU(10000, 16, 16384)
	if fine.LoadProxy >= loadOK {
		t.Errorf("16K-PE LU blocks/PE = %v, expected under %d", fine.LoadProxy, loadOK)
	}
	if fine.Healthy() {
		t.Error("16K-PE LU should be flagged (load balance)")
	}
	coarse := LU(10000, 16, 64)
	if !coarse.Healthy() {
		t.Errorf("64-PE LU should be healthy: %+v", coarse)
	}
}

func TestCGScenarios(t *testing.T) {
	// 2-D at 1024 PEs: ratio ~312, easy; at 16K: ~78, sustainable.
	if s := CG2D(4000, 1024); s.Sustainability != machine.Easy {
		t.Errorf("CG 2-D 1024: %+v", s)
	}
	if s := CG2D(4000, 16384); s.Sustainability == machine.VeryHard {
		t.Errorf("CG 2-D 16K should still be sustainable: %+v", s)
	}
	// 3-D at 16K PEs: ratio ~20, hard but not impossible; at 1024: ~52.
	s3 := CG3D(225, 16384)
	if s3.Ratio > 25 || s3.Ratio < 15 {
		t.Errorf("CG 3-D 16K ratio = %v, want ~20", s3.Ratio)
	}
}

func TestFFTScenarios(t *testing.T) {
	// The FFT ratio is ~33 regardless of P (two exchanges).
	for _, p := range []int{64, 1024} {
		s := FFT(26, p)
		if math.Abs(s.Ratio-32.5) > 1e-9 {
			t.Errorf("FFT P=%d ratio = %v, want 32.5", p, s.Ratio)
		}
		if s.Sustainability != machine.Sustainable {
			t.Errorf("FFT classification: %+v", s)
		}
		if s.Notes == "" {
			t.Error("FFT scenario should carry the locality caveat")
		}
	}
}

func TestBHCalibration(t *testing.T) {
	// Anchor: 1 dw / 10,000 instructions at the prototypical point.
	if got := BHCommPerInstr(4.5e6, 1.0, 1024); math.Abs(got-1e-4) > 1e-9 {
		t.Fatalf("anchor ratio = %v, want 1e-4", got)
	}
	// Paper: on 16K processors it rises to about 1 dw / 1000 instructions.
	got := BHCommPerInstr(4.5e6, 1.0, 16384)
	if got < 0.7e-3 || got > 1.4e-3 {
		t.Fatalf("16K ratio = %v, want ~1e-3", got)
	}
}

func TestBHScenario(t *testing.T) {
	s := BarnesHut(4.5e6, 1.0, 1024)
	// ~4500 particles per PE, grain ~1 MB.
	if math.Abs(s.LoadProxy-4394.5) > 1 {
		t.Errorf("particles/PE = %v, want ~4395", s.LoadProxy)
	}
	if s.GrainBytes < 900_000 || s.GrainBytes > 1_100_000 {
		t.Errorf("grain = %d, want ~1 MB", s.GrainBytes)
	}
	if !s.Healthy() {
		t.Errorf("prototypical BH should be healthy: %+v", s)
	}
	// 16K PEs: ~280 particles each, communication still cheap.
	fine := BarnesHut(4.5e6, 1.0, 16384)
	if math.Abs(fine.LoadProxy-274.7) > 1 {
		t.Errorf("fine particles/PE = %v, want ~275", fine.LoadProxy)
	}
	if fine.Sustainability == machine.VeryHard {
		t.Error("BH communication should never be the binding constraint")
	}
}

func TestVRScenario(t *testing.T) {
	s := VolumeRendering(600, 1024)
	if s.LoadProxy < 1000 || s.LoadProxy > 1100 {
		t.Errorf("rays/PE = %v, want ~1054", s.LoadProxy)
	}
	fine := VolumeRendering(600, 16384)
	if fine.LoadProxy > loadOK {
		t.Errorf("16K rays/PE = %v, should be near the load threshold", fine.LoadProxy)
	}
	if fine.Healthy() {
		t.Error("66 rays/PE should be flagged for load balance")
	}
}

func TestAdviseAllCoversAllApps(t *testing.T) {
	advice := AdviseAll()
	if len(advice) != 5 {
		t.Fatalf("advice for %d apps, want 5", len(advice))
	}
	for _, a := range advice {
		if len(a.Scenarios) < 3 {
			t.Errorf("%s: only %d scenarios", a.App, len(a.Scenarios))
		}
		if a.DesirableGrain == "" || a.Limiting == "" {
			t.Errorf("%s: incomplete advice", a.App)
		}
		// Every app's desirable grain is at most ~1 MB — the paper's
		// headline conclusion.
		if !strings.Contains(a.DesirableGrain, "1 MB") {
			t.Errorf("%s grain %q should reference the ~1 MB scale", a.App, a.DesirableGrain)
		}
		for _, s := range a.Scenarios {
			if s.Describe() == "" {
				t.Error("empty scenario description")
			}
		}
	}
}

func TestScenarioDescribeFormat(t *testing.T) {
	s := LU(10000, 16, 1024)
	d := s.Describe()
	for _, frag := range []string{"LU", "1024", "blocks/PE"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe %q missing %q", d, frag)
		}
	}
}
