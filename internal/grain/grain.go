// Package grain implements the paper's node-granularity analysis (the
// "Grain Size" subsections of Sections 3-7 and the discussion of Section
// 8): computation-to-communication ratios, load-balance proxies, and a
// desirable-grain advisor that reproduces the paper's 64-PE / 1024-PE /
// 16K-PE scenario comparisons for a fixed 1-Gbyte problem.
package grain

import (
	"fmt"
	"math"

	"wsstudy/internal/apps/cg"
	"wsstudy/internal/apps/fft"
	"wsstudy/internal/apps/lu"
	"wsstudy/internal/apps/volrend"
	"wsstudy/internal/machine"
	"wsstudy/internal/workingset"
)

// Scenario evaluates one (application, problem, machine) point.
type Scenario struct {
	App        string
	P          int
	GrainBytes uint64 // data per processor

	// Ratio is the computation-to-communication ratio in RatioUnit.
	Ratio     float64
	RatioUnit string // "FLOPs/word" or "instr/word"

	// LoadProxy is the per-processor work-unit count the paper uses to
	// judge load balance (blocks, rays, particles...), with its name.
	LoadProxy     float64
	LoadProxyName string

	Sustainability machine.Sustainability
	Notes          string
}

// Describe renders a scenario line.
func (s Scenario) Describe() string {
	return fmt.Sprintf("%-16s P=%-6d grain=%-8s ratio=%6.0f %s (%s)  %s=%.0f",
		s.App, s.P, workingset.FormatBytes(s.GrainBytes), s.Ratio, s.RatioUnit,
		s.Sustainability, s.LoadProxyName, s.LoadProxy)
}

// loadOK is the paper's coarse threshold: below ~100 work units per
// processor, load balance starts to bite (the paper flags 25 blocks/PE
// for LU and 66 rays/PE for volume rendering, and accepts ~280
// particles/PE for Barnes-Hut).
const loadOK = 100

// Healthy reports whether both communication and load balance are
// comfortable at this point.
func (s Scenario) Healthy() bool {
	return s.Sustainability != machine.VeryHard && s.LoadProxy >= loadOK
}

// LU evaluates dense LU of an n x n matrix with block size b on P
// processors.
func LU(n, b, p int) Scenario {
	m := lu.Model{N: n, B: b, P: p}
	ratio := m.CommToCompRatio()
	return Scenario{
		App: "LU", P: p,
		GrainBytes: m.GrainBytes(),
		Ratio:      ratio, RatioUnit: "FLOPs/word",
		LoadProxy: m.BlocksPerPE(), LoadProxyName: "blocks/PE",
		Sustainability: machine.Classify(ratio),
	}
}

// CG2D evaluates conjugate gradient on an n x n grid.
func CG2D(n, p int) Scenario {
	m := cg.Model2D{N: n, P: p}
	ratio := m.CommToCompRatio()
	side := m.Side()
	return Scenario{
		App: "CG 2-D", P: p,
		GrainBytes: m.GrainBytes(),
		Ratio:      ratio, RatioUnit: "FLOPs/word",
		LoadProxy: side * side, LoadProxyName: "points/PE",
		Sustainability: machine.Classify(ratio),
	}
}

// CG3D evaluates conjugate gradient on an n^3 grid.
func CG3D(n, p int) Scenario {
	m := cg.Model3D{N: n, P: p}
	ratio := m.CommToCompRatio()
	side := m.Side()
	return Scenario{
		App: "CG 3-D", P: p,
		GrainBytes: m.GrainBytes(),
		Ratio:      ratio, RatioUnit: "FLOPs/word",
		LoadProxy: side * side * side, LoadProxyName: "points/PE",
		Sustainability: machine.Classify(ratio),
	}
}

// FFT evaluates a 2^logN-point transform.
func FFT(logN, p int) Scenario {
	m := fft.Model{LogN: logN, P: p, InternalRadix: 8}
	ratio := m.CommToCompRatio()
	return Scenario{
		App: "FFT", P: p,
		GrainBytes: m.GrainBytes(),
		Ratio:      ratio, RatioUnit: "FLOPs/word",
		LoadProxy: float64(uint64(1<<logN) / uint64(p)), LoadProxyName: "points/PE",
		Sustainability: machine.Classify(ratio),
		Notes:          "all-to-all communication: bisection-bound, locality-free",
	}
}

// BHRatioCalibration anchors the paper's Barnes-Hut communication fit:
// at n=4.5M, theta=1, p=1024 the ratio is one double word per 10,000
// busy cycles.
const (
	bhAnchorN     = 4.5e6
	bhAnchorP     = 1024
	bhAnchorRatio = 1.0 / 10000 // dw per instruction
)

// BHCommPerInstr evaluates the paper's ratio form
// theta * (p/n)^(2/3) * log^(4/3)(p) / log(n), calibrated at the anchor.
func BHCommPerInstr(n, theta float64, p int) float64 {
	form := func(n, theta, p float64) float64 {
		return theta * math.Pow(p/n, 2.0/3) * math.Pow(math.Log2(p), 4.0/3) / math.Log2(n)
	}
	c := bhAnchorRatio / form(bhAnchorN, 1, bhAnchorP)
	return c * form(n, theta, float64(p))
}

// BarnesHut evaluates an n-particle simulation at accuracy theta.
func BarnesHut(n float64, theta float64, p int) Scenario {
	perInstr := BHCommPerInstr(n, theta, p)
	ratio := 1 / perInstr
	return Scenario{
		App: "Barnes-Hut", P: p,
		GrainBytes: uint64(230 * n / float64(p)),
		Ratio:      ratio, RatioUnit: "instr/word",
		LoadProxy: n / float64(p), LoadProxyName: "particles/PE",
		// Instruction ratios here are far above any FLOP threshold;
		// communication is never the binding constraint for BH.
		Sustainability: machine.Classify(ratio / 4), // ~4 instructions per FLOP
	}
}

// VolumeRendering evaluates rendering an n^3 volume.
func VolumeRendering(n, p int) Scenario {
	m := volrend.Model{N: n, P: p}
	return Scenario{
		App: "Volume Rendering", P: p,
		GrainBytes: m.GrainBytes(),
		Ratio:      m.CommToCompRatio(), RatioUnit: "instr/word",
		LoadProxy: m.RaysPerPE(), LoadProxyName: "rays/PE",
		Sustainability: machine.Classify(m.CommToCompRatio() / 4),
	}
}

// Advice is the outcome of comparing scenarios across machine sizes.
type Advice struct {
	App            string
	Scenarios      []Scenario
	DesirableGrain string // the paper's coarse answer, e.g. "< 1M"
	Limiting       string // what breaks first when the grain shrinks
}

// prototypical 1-Gbyte problems at three machine sizes (Section 2.3's
// comparison points).
var scenarioPs = []int{64, 1024, 16384}

// AdviseAll reproduces the paper's per-application grain discussions for
// the prototypical 1-Gbyte problems.
func AdviseAll() []Advice {
	var out []Advice

	luScen := make([]Scenario, 0, 3)
	for _, p := range scenarioPs {
		luScen = append(luScen, LU(10000, 16, p))
	}
	out = append(out, Advice{
		App: "LU", Scenarios: luScen,
		DesirableGrain: "< 1 MB",
		Limiting:       "load balance (blocks/PE) before communication",
	})

	cgScen := make([]Scenario, 0, 6)
	for _, p := range scenarioPs {
		cgScen = append(cgScen, CG2D(4000, p))
	}
	for _, p := range scenarioPs {
		cgScen = append(cgScen, CG3D(225, p))
	}
	out = append(out, Advice{
		App: "CG", Scenarios: cgScen,
		DesirableGrain: "~1 MB",
		Limiting:       "communication ratio, especially for 3-D and irregular grids",
	})

	fftScen := make([]Scenario, 0, 3)
	for _, p := range scenarioPs {
		fftScen = append(fftScen, FFT(26, p))
	}
	out = append(out, Advice{
		App: "FFT", Scenarios: fftScen,
		DesirableGrain: "~1 MB (larger grains cannot fix the ratio)",
		Limiting:       "bisection-bound all-to-all; grain for ratio R grows as 2^(2R/5)",
	})

	bhScen := make([]Scenario, 0, 3)
	for _, p := range scenarioPs {
		bhScen = append(bhScen, BarnesHut(4.5e6, 1.0, p))
	}
	out = append(out, Advice{
		App: "Barnes-Hut", Scenarios: bhScen,
		DesirableGrain: "< 1 MB (a few hundred KB)",
		Limiting:       "load balance at very small particles/PE; tree phases at extreme P",
	})

	vrScen := make([]Scenario, 0, 3)
	for _, p := range scenarioPs {
		vrScen = append(vrScen, VolumeRendering(600, p))
	}
	out = append(out, Advice{
		App: "Volume Rendering", Scenarios: vrScen,
		DesirableGrain: "< 1 MB (a few hundred KB)",
		Limiting:       "ray stealing overhead once rays/PE gets small",
	})

	return out
}
