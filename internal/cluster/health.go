package cluster

import (
	"sort"
	"sync"
	"time"

	"wsstudy/internal/obs"
)

// Peer states reported by Health. "self" marks this node's own ring
// entry (never fetched from); "degraded" means recent fetches failed
// and peer-fill is bypassing the peer — every owned-elsewhere miss
// computes locally — until the cooldown expires and one fetch probes
// it again.
const (
	StateOK       = "ok"
	StateDegraded = "degraded"
	StateSelf     = "self"
)

// peer is one remote member: its base URL plus the same degradation
// state machine the store runs for its disk and capture subsystems
// (degrade on failure, bypass during the cooldown, let one operation
// through as a probe, heal on success).
type peer struct {
	id   string
	addr string

	cooldown time.Duration
	counter  *obs.Counter // cluster.peer.degraded, shared across peers

	mu       sync.Mutex
	degraded bool
	reason   string
	retryAt  time.Time
}

// available reports whether the next peer-fill should talk to this
// peer: always when healthy, once per cooldown when degraded (the
// probe).
func (p *peer) available() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.degraded {
		return true
	}
	return !time.Now().Before(p.retryAt)
}

// degrade marks the peer failed, starting (or restarting) the bypass
// cooldown. Only the transition into degraded counts, so the metric
// counts incidents, not skipped fills.
func (p *peer) degrade(reason string) {
	p.mu.Lock()
	wasHealthy := !p.degraded
	p.degraded = true
	p.reason = reason
	p.retryAt = time.Now().Add(p.cooldown)
	p.mu.Unlock()
	if wasHealthy {
		p.counter.Inc()
	}
}

// heal clears the degradation after a successful fetch.
func (p *peer) heal() {
	p.mu.Lock()
	p.degraded = false
	p.reason = ""
	p.mu.Unlock()
}

// PeerStatus is one ring member's row in Health.
type PeerStatus struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"` // "ok" | "degraded" | "self"
	// Reason explains a degradation (last fetch failure).
	Reason string `json:"reason,omitempty"`
	// Share is the member's exact fraction of the key space.
	Share float64 `json:"share"`
}

// Health is the cluster's ring and per-peer status, embedded in the
// /healthz document. A degraded peer does not degrade the node: every
// request still answers, at worst by computing locally.
type Health struct {
	Self   string       `json:"self"`
	VNodes int          `json:"vnodes"`
	Peers  []PeerStatus `json:"peers"`
}

// Health snapshots the ring and every member's state, sorted by id.
func (c *Cluster) Health() Health {
	shares := c.ring.Shares()
	h := Health{Self: c.cfg.Self, VNodes: c.ring.VNodes()}
	for _, id := range c.ring.Members() {
		ps := PeerStatus{ID: id, Share: shares[id]}
		if id == c.cfg.Self {
			ps.State = StateSelf
			ps.Addr = c.cfg.Peers[id]
		} else {
			p := c.peers[id]
			ps.Addr = p.addr
			p.mu.Lock()
			if p.degraded {
				ps.State = StateDegraded
				ps.Reason = p.reason
			} else {
				ps.State = StateOK
			}
			p.mu.Unlock()
		}
		h.Peers = append(h.Peers, ps)
	}
	sort.Slice(h.Peers, func(i, j int) bool { return h.Peers[i].ID < h.Peers[j].ID })
	return h
}

// Degraded reports whether any peer is currently degraded.
func (h Health) Degraded() bool {
	for _, p := range h.Peers {
		if p.State == StateDegraded {
			return true
		}
	}
	return false
}
