package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// testExp is a registry-shaped experiment for Fill tests (Fill only
// reads e.ID; nothing here runs it).
func testExp() core.Experiment {
	return core.Experiment{
		ID:    "fillx",
		Title: "fill test experiment",
		Run: func(ctx context.Context, opt core.Options) (*core.Report, error) {
			r := &core.Report{Title: "fill test"}
			r.AddNote("cache=%d", opt.CacheBytes)
			return r, nil
		},
	}
}

// fillFixture is one local node ("a") whose ring peer ("b") is an
// httptest server under test control.
type fillFixture struct {
	cl    *Cluster
	rec   *obs.Recorder
	st    *store.Store
	exp   core.Experiment
	key   store.Key     // a key owned by "b"
	opt   core.Options  // the options deriving key
	body  []byte        // the canonical ReportV1 rendering for key
	owner *atomic.Value // func(w, r) — swapped per test phase
}

// newFillFixture builds the fixture: finds options whose key lands on
// the remote member, pre-computes the canonical rendering with a
// scratch store, and wires a Cluster at "a" pointing at the handler.
func newFillFixture(t *testing.T, cfg Config) *fillFixture {
	t.Helper()
	f := &fillFixture{exp: testExp(), owner: &atomic.Value{}}
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no handler installed", http.StatusInternalServerError)
	}))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.owner.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(srv.Close)

	f.rec = obs.New()
	var err error
	if f.st, err = store.New(store.Config{Recorder: f.rec, Slots: 2}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.st.Close(context.Background()) })

	cfg.Self = "a"
	cfg.Peers = map[string]string{"a": "http://unused.invalid", "b": srv.URL}
	cfg.Store = f.st
	cfg.Recorder = f.rec
	if f.cl, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.cl.Close)

	// Find options owned by the remote member.
	for cache := int64(1); ; cache++ {
		opt := core.Options{Scale: core.ScaleQuick, CacheBytes: uint64(cache) * 4096}
		key := store.KeyFor(f.exp.ID, opt)
		if f.cl.Ring().Owner(key) == "b" {
			f.key, f.opt = key, opt
			break
		}
	}

	// Pre-render the canonical body with a scratch store.
	scratch, err := store.New(store.Config{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close(context.Background())
	res, err := scratch.Get(context.Background(), f.exp, f.opt)
	if err != nil {
		t.Fatal(err)
	}
	f.body = res.JSON
	return f
}

// serveBody answers 200 with the given bytes and a digest computed over
// digestOf (normally the same bytes; tests pass different bytes to
// fake corruption).
func serveBody(body, digestOf []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sum := sha256.Sum256(digestOf)
		w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
		_, _ = w.Write(body)
	}
}

func status(code int, retryAfter string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(code)
	}
}

func (f *fillFixture) fill(t *testing.T, timeout time.Duration) (*store.Result, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return f.cl.Fill(ctx, f.key, f.exp, f.opt)
}

func (f *fillFixture) counter(name string) uint64 {
	return f.rec.Snapshot().Counter(name)
}

func TestFillSelfOwnedKey(t *testing.T) {
	f := newFillFixture(t, Config{})
	// Find a self-owned key; Fill must decline without touching the peer.
	for cache := int64(1); ; cache++ {
		opt := core.Options{Scale: core.ScaleQuick, CacheBytes: uint64(cache) * 4096}
		key := store.KeyFor(f.exp.ID, opt)
		if f.cl.Ring().Owner(key) == "a" {
			if _, ok := f.cl.Fill(context.Background(), key, f.exp, opt); ok {
				t.Fatal("Fill filled a self-owned key")
			}
			if got := f.counter(obs.ClusterPeerMisses); got != 0 {
				t.Fatalf("self-owned fill counted a miss (%d)", got)
			}
			return
		}
	}
}

func TestFillSuccess(t *testing.T) {
	f := newFillFixture(t, Config{})
	f.owner.Store(serveBody(f.body, f.body))
	res, ok := f.fill(t, 5*time.Second)
	if !ok {
		t.Fatal("Fill failed against a healthy owner")
	}
	if res.Key != f.key || res.ID != f.exp.ID || string(res.JSON) != string(f.body) {
		t.Fatalf("Fill returned wrong result: key %s id %s", res.Key, res.ID)
	}
	if got := f.counter(obs.ClusterPeerHits); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if st := f.cl.Health(); st.Degraded() {
		t.Fatalf("healthy fetch left a degraded peer: %+v", st)
	}
}

// TestFillPollsComputingOwner: an owner answering 202 is polled, and
// the fill lands once the owner finishes.
func TestFillPollsComputingOwner(t *testing.T) {
	f := newFillFixture(t, Config{})
	var calls atomic.Int64
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			status(http.StatusAccepted, "1")(w, r)
			return
		}
		serveBody(f.body, f.body)(w, r)
	}))
	res, ok := f.fill(t, 10*time.Second)
	if !ok {
		t.Fatalf("Fill gave up after %d polls", calls.Load())
	}
	if string(res.JSON) != string(f.body) {
		t.Fatal("Fill returned wrong body after polling")
	}
	if calls.Load() < 3 {
		t.Fatalf("owner saw %d calls, want >= 3 (two 202s then a 200)", calls.Load())
	}
}

// TestFillWaitBudgetExhausted: an owner that never finishes costs the
// follower only the wait budget, counts a miss, and does NOT degrade
// the peer (it is alive, just slow).
func TestFillWaitBudgetExhausted(t *testing.T) {
	f := newFillFixture(t, Config{WaitBudget: 200 * time.Millisecond})
	f.owner.Store(status(http.StatusAccepted, "1"))
	start := time.Now()
	if _, ok := f.fill(t, 10*time.Second); ok {
		t.Fatal("Fill succeeded against a never-finishing owner")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("Fill held the request %v, want ~the 200ms wait budget", wall)
	}
	if got := f.counter(obs.ClusterPeerMisses); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if st := f.cl.Health(); st.Degraded() {
		t.Fatal("a computing owner was marked degraded")
	}
}

// TestFillBusyOwner: 429 sheds to local compute immediately, without
// degrading the peer.
func TestFillBusyOwner(t *testing.T) {
	f := newFillFixture(t, Config{})
	var calls atomic.Int64
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		status(http.StatusTooManyRequests, "1")(w, r)
	}))
	if _, ok := f.fill(t, 5*time.Second); ok {
		t.Fatal("Fill succeeded against a shedding owner")
	}
	if calls.Load() != 1 {
		t.Fatalf("owner saw %d calls, want 1 (429 is not retryable)", calls.Load())
	}
	if st := f.cl.Health(); st.Degraded() {
		t.Fatal("a busy owner was marked degraded")
	}
}

// TestFillDegradeAndHeal: a 500 degrades the peer — the next fill skips
// it without a request — and after the cooldown one probe heals it.
func TestFillDegradeAndHeal(t *testing.T) {
	f := newFillFixture(t, Config{ProbeInterval: 100 * time.Millisecond})
	var calls atomic.Int64
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		status(http.StatusInternalServerError, "")(w, r)
	}))
	if _, ok := f.fill(t, 2*time.Second); ok {
		t.Fatal("Fill succeeded against a 500ing owner")
	}
	if got := f.counter(obs.ClusterPeerDegraded); got != 1 {
		t.Fatalf("degraded transitions = %d, want 1", got)
	}
	st := f.cl.Health()
	if !st.Degraded() {
		t.Fatalf("health does not show the degraded peer: %+v", st)
	}
	for _, p := range st.Peers {
		if p.ID == "b" && (p.State != StateDegraded || p.Reason == "") {
			t.Fatalf("peer b: state %q reason %q, want degraded with a reason", p.State, p.Reason)
		}
		if p.ID == "a" && p.State != StateSelf {
			t.Fatalf("peer a: state %q, want %q", p.State, StateSelf)
		}
	}

	// Inside the cooldown: bypassed, no request reaches the owner.
	before := calls.Load()
	if _, ok := f.fill(t, 2*time.Second); ok {
		t.Fatal("Fill used a degraded peer inside its cooldown")
	}
	if calls.Load() != before {
		t.Fatal("a degraded peer was dialed inside its cooldown")
	}
	if got := f.counter(obs.ClusterPeerSkipped); got == 0 {
		t.Fatal("bypassed fill did not count cluster.peer.skipped")
	}

	// After the cooldown: the probe goes through, succeeds, heals.
	time.Sleep(150 * time.Millisecond)
	f.owner.Store(serveBody(f.body, f.body))
	if _, ok := f.fill(t, 5*time.Second); !ok {
		t.Fatal("probe fill failed against a recovered owner")
	}
	if st := f.cl.Health(); st.Degraded() {
		t.Fatal("peer still degraded after a successful probe")
	}
	if got := f.counter(obs.ClusterPeerDegraded); got != 1 {
		t.Fatalf("degraded transitions = %d after heal, want still 1", got)
	}
}

// TestFillRejectsCorruptBody: damaged bytes — digest mismatch, or
// well-formed-but-invalid schema — are never returned, count
// cluster.peer.corrupt, and degrade the peer.
func TestFillRejectsCorruptBody(t *testing.T) {
	for _, tc := range []struct {
		name    string
		handler func(f *fillFixture) http.HandlerFunc
	}{
		{"digest mismatch", func(f *fillFixture) http.HandlerFunc {
			flipped := append([]byte(nil), f.body...)
			flipped[len(flipped)/2] ^= 0x40
			return serveBody(flipped, f.body) // digest of the true body, bytes damaged
		}},
		{"schema garbage", func(f *fillFixture) http.HandlerFunc {
			bad := []byte(`{"schema_version": 9999}`)
			return serveBody(bad, bad) // digest matches, schema gate must catch it
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newFillFixture(t, Config{})
			f.owner.Store(tc.handler(f))
			if res, ok := f.fill(t, 5*time.Second); ok {
				t.Fatalf("Fill accepted corrupt bytes: %q", res.JSON[:40])
			}
			if got := f.counter(obs.ClusterPeerCorrupt); got != 1 {
				t.Fatalf("corrupt = %d, want 1", got)
			}
			if st := f.cl.Health(); !st.Degraded() {
				t.Fatal("a corrupting peer was not degraded")
			}
		})
	}
}

// TestFillUnknownStatus: a plain 4xx (registry/version skew) is a
// one-shot miss — no retry, no degradation.
func TestFillUnknownStatus(t *testing.T) {
	f := newFillFixture(t, Config{})
	var calls atomic.Int64
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		status(http.StatusBadRequest, "")(w, r)
	}))
	if _, ok := f.fill(t, 2*time.Second); ok {
		t.Fatal("Fill succeeded against a 400ing owner")
	}
	if calls.Load() != 1 {
		t.Fatalf("owner saw %d calls, want 1", calls.Load())
	}
	if st := f.cl.Health(); st.Degraded() {
		t.Fatal("a skewed-but-alive owner was marked degraded")
	}
}

// TestFillRequestShape: the fetch URL names the key and every axis in
// canonical form, so the owner can re-derive and verify the key.
func TestFillRequestShape(t *testing.T) {
	f := newFillFixture(t, Config{})
	var path, query atomic.Value
	f.owner.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path.Store(r.URL.Path)
		query.Store(r.URL.Query())
		serveBody(f.body, f.body)(w, r)
	}))
	if _, ok := f.fill(t, 5*time.Second); !ok {
		t.Fatal("Fill failed")
	}
	if got, want := path.Load().(string), InternalReportPath+f.key.String(); got != want {
		t.Fatalf("fetch path = %q, want %q", got, want)
	}
	q := query.Load().(url.Values)
	if got := q.Get("id"); got != f.exp.ID {
		t.Fatalf("fetch id = %q, want %q", got, f.exp.ID)
	}
	for _, axis := range core.AxisFields() {
		if got, want := q.Get("opt."+axis), f.opt.AxisValue(axis); got != want {
			t.Fatalf("fetch opt.%s = %q, want %q", axis, got, want)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	st, err := store.New(store.Config{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close(context.Background())
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"missing self", Config{Store: st, Peers: map[string]string{"a": "http://x"}}},
		{"missing store", Config{Self: "a", Peers: map[string]string{"a": "http://x"}}},
		{"self not in peers", Config{Self: "z", Store: st, Peers: map[string]string{"a": "http://x"}}},
		{"bad peer url", Config{Self: "a", Store: st, Peers: map[string]string{"a": "http://x", "b": ""}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if c, err := New(tc.cfg); err == nil {
				c.Close()
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}

func BenchmarkClusterPeerFetch(b *testing.B) {
	exp := testExp()
	scratch, err := store.New(store.Config{Slots: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer scratch.Close(context.Background())
	opt := core.Options{Scale: core.ScaleQuick, CacheBytes: 4096}
	res, err := scratch.Get(context.Background(), exp, opt)
	if err != nil {
		b.Fatal(err)
	}
	sum := sha256.Sum256(res.JSON)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
		_, _ = w.Write(res.JSON)
	}))
	defer srv.Close()

	st, err := store.New(store.Config{Slots: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close(context.Background())
	// A ring where the httptest member owns everything: self has no
	// vnodes competition because we pick a key owned by "b" below.
	cl, err := New(Config{
		Self:  "a",
		Peers: map[string]string{"a": "http://unused.invalid", "b": srv.URL},
		Store: st,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	key := res.Key
	if owner, _ := cl.Owner(key); owner != "b" {
		// Walk cache sizes until the benchmark key is remote-owned.
		for cache := int64(2); ; cache++ {
			opt = core.Options{Scale: core.ScaleQuick, CacheBytes: uint64(cache) * 4096}
			if k := store.KeyFor(exp.ID, opt); cl.Ring().Owner(k) == "b" {
				r2, err := scratch.Get(context.Background(), exp, opt)
				if err != nil {
					b.Fatal(err)
				}
				res, key = r2, r2.Key
				sum = sha256.Sum256(res.JSON)
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		r, ok := cl.Fill(ctx, key, exp, opt)
		cancel()
		if !ok || r == nil {
			b.Fatal("warm peer fetch failed")
		}
	}
	b.ReportMetric(float64(len(res.JSON)), "body_bytes")
}
