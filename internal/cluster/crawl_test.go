package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
	"wsstudy/internal/sweep"
)

// crawlSpecFor is the lattice the crawler tests walk: gridlu (the
// instant analytic cell from the global registry — StartCrawler
// validates specs through the same sweep canonicalizer as /v1/sweeps,
// which resolves experiments globally) over a few cache sizes.
func crawlSpecFor(interval time.Duration) CrawlSpec {
	return CrawlSpec{
		Experiment: "gridlu",
		Axes: []sweep.Axis{
			{Field: "cache", Values: []string{"4096", "8192", "16384", "32768"}},
		},
		Interval: interval,
	}
}

// crawlCells enumerates the spec's cells the same way the crawler does.
func crawlCells(t *testing.T, spec CrawlSpec) []sweep.Cell {
	t.Helper()
	canon, err := sweep.Spec{Experiment: spec.Experiment, Scale: "quick", Axes: spec.Axes}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	return canon.Cells()
}

func newCrawlCluster(t *testing.T, self string, members []string) (*Cluster, *obs.Recorder, *store.Store) {
	t.Helper()
	rec := obs.New()
	st, err := store.New(store.Config{Recorder: rec, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close(context.Background()) })
	peers := make(map[string]string, len(members))
	for i, id := range members {
		peers[id] = fmt.Sprintf("http://127.0.0.1:%d", 20000+i)
	}
	cl, err := New(Config{Self: self, Peers: peers, Store: st, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, rec, st
}

// TestCrawlerWarmsOwnedCells: a single-member cluster owns the whole
// lattice; the crawler warms every cell into the local store, then
// idles (warm cells are skipped, steps keep ticking).
func TestCrawlerWarmsOwnedCells(t *testing.T) {
	cl, rec, st := newCrawlCluster(t, "a", []string{"a"})
	spec := crawlSpecFor(2 * time.Millisecond)
	cells := crawlCells(t, spec)

	owned, err := cl.StartCrawler(spec)
	if err != nil {
		t.Fatal(err)
	}
	if owned != len(cells) {
		t.Fatalf("single member owns %d cells, want all %d", owned, len(cells))
	}

	deadline := time.Now().Add(10 * time.Second)
	for rec.Snapshot().Counter(obs.ClusterCrawlWarmed) < uint64(len(cells)) {
		if time.Now().After(deadline) {
			t.Fatalf("crawler warmed %d cells, want %d",
				rec.Snapshot().Counter(obs.ClusterCrawlWarmed), len(cells))
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, cell := range cells {
		if !st.Cached(cell.Key) {
			t.Errorf("cell %s not cached after crawl", cell.Key)
		}
	}
	// Once warm, further steps skip without re-warming.
	steps := rec.Snapshot().Counter(obs.ClusterCrawlSteps)
	warmed := rec.Snapshot().Counter(obs.ClusterCrawlWarmed)
	time.Sleep(20 * time.Millisecond)
	if got := rec.Snapshot().Counter(obs.ClusterCrawlWarmed); got != warmed {
		t.Errorf("warm cells were re-warmed (%d -> %d)", warmed, got)
	}
	if got := rec.Snapshot().Counter(obs.ClusterCrawlSteps); got <= steps {
		t.Error("crawler stopped stepping after warming")
	}
}

// TestCrawlerPartitionsLattice: across a 3-member ring, the members'
// owned-cell counts partition the lattice — no cell is crawled twice,
// none is dropped.
func TestCrawlerPartitionsLattice(t *testing.T) {
	members := []string{"a", "b", "c"}
	spec := crawlSpecFor(time.Hour) // never actually steps; ownership math only
	total := 0
	var cells []sweep.Cell
	for _, self := range members {
		cl, _, _ := newCrawlCluster(t, self, members)
		cells = crawlCells(t, spec)
		owned, err := cl.StartCrawler(spec)
		if err != nil {
			t.Fatal(err)
		}
		total += owned
	}
	if total != len(cells) {
		t.Fatalf("members own %d cells in total, want exactly the %d lattice cells", total, len(cells))
	}
}

// TestCrawlerStepFailpoint: an injected crawl fault ("cluster.crawl.step")
// counts an error and skips the step — it never warms a faulted cell and
// never touches the store.
func TestCrawlerStepFailpoint(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	if err := fault.Arm("cluster.crawl.step", fault.Trigger{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	cl, rec, st := newCrawlCluster(t, "a", []string{"a"})
	if _, err := cl.StartCrawler(crawlSpecFor(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.Snapshot().Counter(obs.ClusterCrawlErrors) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("injected crawl faults never surfaced in cluster.crawl.errors")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rec.Snapshot().Counter(obs.ClusterCrawlWarmed); got != 0 {
		t.Fatalf("faulted crawler warmed %d cells, want 0", got)
	}
	if st.Len() != 0 {
		t.Fatalf("faulted crawler populated the store (%d entries)", st.Len())
	}
}

// TestCrawlerValidation: bad specs fail up front, double-start fails,
// and a crawler cannot start on a closed cluster.
func TestCrawlerValidation(t *testing.T) {
	cl, _, _ := newCrawlCluster(t, "a", []string{"a"})
	if _, err := cl.StartCrawler(CrawlSpec{Experiment: "nope",
		Axes: []sweep.Axis{{Field: "cache", Values: []string{"4096"}}}}); err == nil {
		t.Fatal("StartCrawler accepted an unknown experiment")
	}
	if _, err := cl.StartCrawler(CrawlSpec{Experiment: "gridlu"}); err == nil {
		t.Fatal("StartCrawler accepted an empty lattice")
	}
	if _, err := cl.StartCrawler(crawlSpecFor(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StartCrawler(crawlSpecFor(time.Hour)); err == nil {
		t.Fatal("StartCrawler started twice")
	}

	cl2, _, _ := newCrawlCluster(t, "b", []string{"b"})
	cl2.Close()
	if _, err := cl2.StartCrawler(crawlSpecFor(time.Hour)); err == nil {
		t.Fatal("StartCrawler started on a closed cluster")
	}
}
