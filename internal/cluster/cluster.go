package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"wsstudy/internal/core"
	"wsstudy/internal/fault"
	"wsstudy/internal/obs"
	"wsstudy/internal/store"
)

// The cluster's failpoints sit at its two network seams: dialing a
// peer (error mode = a dead or unreachable node, delay mode = a slow
// one) and reading its response (error mode = a broken transfer,
// corrupt/partial modes = damaged bytes that must fail the digest or
// schema check), plus the crawler's per-cell step. The chaos invariant
// they are held to: an injected peer fault never produces a wrong or
// cached-faulted report — only a local compute.
var (
	fpPeerDial  = fault.New("cluster.peer.dial")
	fpPeerFetch = fault.New("cluster.peer.fetch")
	fpCrawlStep = fault.New("cluster.crawl.step")
)

// InternalReportPath is the peer-fill endpoint prefix on every node:
// GET {prefix}{key}?id=<experiment>&opt.<axis>=... answers the frozen
// ReportV1 rendering (200), "still computing" (202 + Retry-After), or
// load-shedding (429).
const InternalReportPath = "/v1/internal/reports/"

// DigestHeader carries the hex SHA-256 of the response body on
// internal report answers, so a follower detects corruption in transit
// before the cheaper-but-weaker schema check runs.
const DigestHeader = "X-Wsstudy-Sha256"

// Sentinel outcomes of one fetch attempt. errComputing is the only
// retryable one — the owner is alive and warming the key, so the
// follower polls; everything else either sheds to local compute
// immediately (errPeerBusy: the owner is alive but saturated) or
// degrades the peer first (errPeerDown wraps transport errors, 5xx,
// and corrupt responses).
var (
	errComputing = errors.New("cluster: owner still computing")
	errPeerBusy  = errors.New("cluster: owner shedding load")
	errPeerDown  = errors.New("cluster: peer unavailable")
)

// Config assembles a Cluster.
type Config struct {
	// Self is this node's member id. Required.
	Self string
	// Peers maps member id -> base URL ("http://host:port") for every
	// ring member, this node included (its own URL is never dialed).
	// Every node must be handed the same map. Required.
	Peers map[string]string
	// VNodes is the per-member virtual-node count (0 = DefaultVNodes).
	VNodes int
	// Store is this node's local result store — the crawler warms it,
	// and Fill validates peer bytes against its schema gate. Required.
	Store *store.Store
	// Registry resolves the crawler's experiment id (nil =
	// core.Registry()).
	Registry []core.Experiment
	// Recorder receives the cluster.* metrics. Nil disables them.
	Recorder *obs.Recorder
	// Client performs peer fetches (nil = a client with a pooled
	// transport; per-attempt deadlines ride the request context).
	Client *http.Client
	// FetchBudget caps one fetch attempt's wall time. A fill also never
	// spends more than 10% of the caller's remaining deadline on a
	// single attempt, so a slow peer costs a bounded slice of the
	// request budget before local compute takes over (0 = 2s).
	FetchBudget time.Duration
	// WaitBudget caps the total time a follower polls an owner that
	// answers "still computing" before giving up and computing locally.
	// A caller deadline tightens it further — polling never eats the
	// time the local fallback would need (0 = 15s).
	WaitBudget time.Duration
	// ProbeInterval is how long a degraded peer is bypassed before the
	// next fill probes it again (0 = 15s).
	ProbeInterval time.Duration
}

// Cluster is one node's view of the serving tier. Safe for concurrent
// use. Install Fill on the local store via store.SetPeerFill to
// activate peer-fill; start the crawler with StartCrawler.
type Cluster struct {
	cfg    Config
	ring   *Ring
	peers  map[string]*peer // remote members only
	client *http.Client
	byID   map[string]core.Experiment

	base   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	crawlOn bool

	hits, misses, skipped, corrupt     *obs.Counter
	crawlSteps, crawlWarmed, crawlErrs *obs.Counter
	fetchWall                          *obs.Histogram
}

// New builds a Cluster from a static peer map. The ring contains every
// id in cfg.Peers; cfg.Self must be one of them.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: Config.Store is required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: Config.Peers must include self id %q", cfg.Self)
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		if id != cfg.Self {
			if _, err := url.Parse(addr); err != nil || addr == "" {
				return nil, fmt.Errorf("cluster: peer %q has invalid URL %q", id, addr)
			}
		}
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.FetchBudget <= 0 {
		cfg.FetchBudget = 2 * time.Second
	}
	if cfg.WaitBudget <= 0 {
		cfg.WaitBudget = 15 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 15 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = core.Registry()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	rec := cfg.Recorder
	base, cancel := context.WithCancel(obs.With(context.Background(), rec))
	c := &Cluster{
		cfg:         cfg,
		ring:        ring,
		peers:       make(map[string]*peer, len(cfg.Peers)-1),
		client:      client,
		byID:        make(map[string]core.Experiment, len(cfg.Registry)),
		base:        base,
		cancel:      cancel,
		hits:        rec.Counter(obs.ClusterPeerHits),
		misses:      rec.Counter(obs.ClusterPeerMisses),
		skipped:     rec.Counter(obs.ClusterPeerSkipped),
		corrupt:     rec.Counter(obs.ClusterPeerCorrupt),
		crawlSteps:  rec.Counter(obs.ClusterCrawlSteps),
		crawlWarmed: rec.Counter(obs.ClusterCrawlWarmed),
		crawlErrs:   rec.Counter(obs.ClusterCrawlErrors),
		fetchWall:   rec.Histogram(obs.ClusterPeerFetchWall),
	}
	degraded := rec.Counter(obs.ClusterPeerDegraded)
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		c.peers[id] = &peer{id: id, addr: strings.TrimSuffix(addr, "/"),
			cooldown: cfg.ProbeInterval, counter: degraded}
	}
	for _, e := range cfg.Registry {
		c.byID[e.ID] = e
	}
	return c, nil
}

// Ring exposes the node's ring view (ownership queries for tests and
// the crawler).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner reports key's owning member id and whether that is this node.
func (c *Cluster) Owner(key store.Key) (id string, self bool) {
	id = c.ring.Owner(key)
	return id, id == c.cfg.Self
}

// Close stops the crawler and any in-flight fills' polling loops.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
}

// Fill is the store.FillFunc: called by a flight leader that missed
// memory and disk, it fetches the finished rendering from the key's
// ring owner. A false return means "compute locally" — the fill path
// is an optimization and every failure mode (self-owned key, degraded
// or dead peer, owner shedding, wait budget exhausted, corrupt bytes)
// falls back to it. ctx carries the request deadline; polling leaves
// at least half of the remaining budget for the local fallback.
func (c *Cluster) Fill(ctx context.Context, key store.Key, e core.Experiment, opt core.Options) (*store.Result, bool) {
	owner, self := c.Owner(key)
	if self {
		return nil, false
	}
	p := c.peers[owner]
	if !p.available() {
		c.skipped.Inc()
		return nil, false
	}

	start := time.Now()
	res, err := c.fetch(ctx, p, key, e, opt)
	c.fetchWall.Observe(time.Since(start))
	if err == nil {
		p.heal()
		c.hits.Inc()
		return res, true
	}
	c.misses.Inc()
	if errors.Is(err, errPeerDown) {
		p.degrade(err.Error())
	}
	return nil, false
}

// fetch runs the owner-poll protocol: attempts are retried only while
// the owner answers "still computing" (202), under core.RetryPolicy's
// deadline budgeting, inside a window that never starves the local
// fallback.
func (c *Cluster) fetch(ctx context.Context, p *peer, key store.Key, e core.Experiment, opt core.Options) (*store.Result, error) {
	// The poll window: WaitBudget, tightened to half of the caller's
	// remaining deadline so local compute still fits in the other half.
	window := c.cfg.WaitBudget
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl) / 2; remain < window {
			window = remain
		}
	}
	if window <= 0 {
		return nil, errComputing
	}
	pollCtx, cancel := context.WithTimeout(ctx, window)
	defer cancel()

	var res *store.Result
	_, err := core.RetryPolicy{
		MaxAttempts: 1 << 10, // the window and budgeting bound real attempts
		Backoff:     50 * time.Millisecond,
		MaxBackoff:  time.Second,
		Jitter:      0.2,
		Classify:    func(err error) bool { return errors.Is(err, errComputing) },
	}.Do(pollCtx, func(int) error {
		r, err := c.fetchOnce(pollCtx, p, key, e, opt)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		if pollCtx.Err() != nil && ctx.Err() == nil {
			// The window closed while the owner was still computing (or
			// mid-attempt): a miss, not a peer failure.
			return nil, errComputing
		}
		return nil, err
	}
	return res, nil
}

// fetchOnce performs one internal-report request against p, bounded by
// its own attempt budget.
func (c *Cluster) fetchOnce(ctx context.Context, p *peer, key store.Key, e core.Experiment, opt core.Options) (*store.Result, error) {
	if err := fpPeerDial.Inject(ctx); err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", errPeerDown, p.id, err)
	}
	// Per-attempt budget: FetchBudget, tightened to 10% of the caller's
	// remaining deadline (floored at 50ms so a tight deadline still
	// gets one real try) — a slow peer costs a thin slice of the
	// request, not the request.
	budget := c.cfg.FetchBudget
	if dl, ok := ctx.Deadline(); ok {
		slice := time.Until(dl) / 10
		if slice < 50*time.Millisecond {
			slice = 50 * time.Millisecond
		}
		if slice < budget {
			budget = slice
		}
	}
	attemptCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, c.reportURL(p, key, e.ID, opt), nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errPeerDown, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errPeerDown, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch {
	case resp.StatusCode == http.StatusOK:
		// Bound the read: a rendering bigger than this is not a report.
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err == nil {
			raw, err = fpPeerFetch.InjectBytes(attemptCtx, raw)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: reading %s: %v", errPeerDown, p.id, err)
		}
		return c.validate(p, key, e.ID, resp.Header.Get(DigestHeader), raw)
	case resp.StatusCode == http.StatusAccepted:
		return nil, errComputing
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, errPeerBusy
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("%w: %s answered %d", errPeerDown, p.id, resp.StatusCode)
	default:
		// 4xx: the owner is alive but disagrees about the request (a
		// registry or version skew). Not retryable, not a peer failure —
		// local compute will answer.
		return nil, fmt.Errorf("cluster: %s answered %d for %s", p.id, resp.StatusCode, key)
	}
}

// validate gates peer bytes exactly like disk revival gates persisted
// bytes, plus a transport-integrity digest: the result key addresses
// the request configuration, not the rendering, so a flipped byte in
// otherwise well-formed JSON would pass the schema check — the digest
// catches it. Either failure counts cluster.peer.corrupt and degrades
// the peer; nothing invalid is ever returned (and so never cached).
func (c *Cluster) validate(p *peer, key store.Key, id, digest string, raw []byte) (*store.Result, error) {
	if digest != "" {
		sum := sha256.Sum256(raw)
		if !strings.EqualFold(digest, hex.EncodeToString(sum[:])) {
			c.corrupt.Inc()
			return nil, fmt.Errorf("%w: %s: body digest mismatch", errPeerDown, p.id)
		}
	}
	res, err := store.DecodeResult(key, id, raw)
	if err != nil {
		c.corrupt.Inc()
		return nil, fmt.Errorf("%w: %s: %v", errPeerDown, p.id, err)
	}
	return res, nil
}

// reportURL builds the internal fetch URL. Every axis is sent
// explicitly in canonical form, so the owner reconstructs byte-equal
// Options regardless of its own defaults; the owner re-derives the key
// from them and rejects a mismatch.
func (c *Cluster) reportURL(p *peer, key store.Key, id string, opt core.Options) string {
	q := url.Values{"id": {id}}
	for _, f := range core.AxisFields() {
		q.Set("opt."+f, opt.AxisValue(f))
	}
	return p.addr + InternalReportPath + key.String() + "?" + q.Encode()
}
